package configvalidator_test

import (
	"fmt"
	"log"
	"os"

	configvalidator "configvalidator"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// Example validates an sshd configuration with one hand-written CVL rule.
func Example() {
	ruleFile, err := cvl.ParseRuleFile("sshd.yaml", []byte(`
config_name: PermitRootLogin
config_path: [""]
preferred_value: ["no"]
matched_description: "Root login is disabled."
not_matched_preferred_value_description: "Root login is enabled!"
`))
	if err != nil {
		log.Fatal(err)
	}

	host := entity.NewMem("example-host", entity.TypeHost)
	host.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\n"))

	v, err := configvalidator.New()
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateRules(host, ruleFile.Rules, []string{"/etc/ssh"})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range report.Results {
		fmt.Printf("[%s] %s: %s\n", r.Status, r.Rule.Name, r.Message)
	}
	// Output:
	// [FAIL] PermitRootLogin: Root login is enabled!
}

// ExampleValidator_Validate runs the full built-in rule library against an
// entity and prints the summary line.
func ExampleValidator_Validate() {
	host := entity.NewMem("clean-host", entity.TypeHost)
	host.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no\nBanner /etc/issue.net\n"))

	v, err := configvalidator.New()
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateTarget(host, "sshd")
	if err != nil {
		log.Fatal(err)
	}
	counts := report.Counts()
	fmt.Printf("sshd checks: %d results, %d failed\n",
		len(report.Results), counts[configvalidator.StatusFail])
	// A host with only two directives set fails the stricter CIS checks.
	// Output:
	// sshd checks: 18 results, 7 failed
}

// ExampleWriteText renders a report in the human-readable format.
func ExampleWriteText() {
	host := entity.NewMem("demo", entity.TypeHost)
	host.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 1\n"))

	v, err := configvalidator.New()
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateTarget(host, "sysctl")
	if err != nil {
		log.Fatal(err)
	}
	report.Results = report.Results[:1] // keep the example output short
	if err := configvalidator.WriteText(os.Stdout, report, configvalidator.OutputOptions{}); err != nil {
		log.Fatal(err)
	}
	// Output:
	// Entity: demo (host)
	// Checks: 1 total, 0 passed, 1 failed, 0 not applicable, 0 errors, 0 degraded
	//
	// [FAIL] sysctl/net/ipv4/ip_forward: IP forwarding is enabled.
	//         file: /etc/sysctl.conf
}
