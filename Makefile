GO ?= go
FUZZTIME ?= 10s

.PHONY: build test vet race lint analyze fuzz resume-smoke worker-kill-smoke enospc-smoke ci bench bench-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static checks: cvlint over the embedded rule library, gofmt, and vet.
lint:
	$(GO) run ./cmd/cvlint -q -builtin
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...

# Semantic rule analysis: cvlint with the constraint-level CVL4xx checks
# over the embedded rule library and the examples/rules project, with no
# baseline suppressions. Any CVL4xx finding — warning or error — fails.
analyze:
	@out=/tmp/analyze-out.txt; : > $$out; \
	$(GO) run ./cmd/cvlint -builtin >> $$out || { cat $$out; exit 1; }; \
	$(GO) run ./cmd/cvlint ./examples/rules >> $$out || { cat $$out; exit 1; }; \
	if grep -E 'CVL4[0-9][0-9]' $$out; then \
		echo "make analyze: semantic findings above"; exit 1; fi; \
	cat $$out

# Fuzz smoke: a short randomized pass over the parsers that face
# untrusted input (one -fuzz target per invocation, as go test requires).
fuzz:
	$(GO) test -fuzz FuzzDecode -fuzztime $(FUZZTIME) -run FuzzDecode ./internal/yaml/
	$(GO) test -fuzz FuzzSSHDParse -fuzztime $(FUZZTIME) -run FuzzSSHDParse ./internal/lens/

# Kill-and-resume smoke: crash a journaled fleet scan partway, resume,
# and require the summary to match an uninterrupted run's.
resume-smoke:
	./scripts/resume_smoke.sh

# Worker-kill smoke: SIGKILL a cvworker process mid-shard during a
# distributed coordinate run and require the merged summary to match an
# in-process run's byte-for-byte.
worker-kill-smoke:
	./scripts/worker_kill_smoke.sh

# Disk-pressure smoke: fill the disk under a journaled fleet scan
# (size-capped tmpfs when privileged, CV_FAULTS ENOSPC injection
# otherwise); the scan must complete degraded, account every failed
# append, and resume journaling on a follow-up run.
enospc-smoke:
	./scripts/enospc_smoke.sh

# The full gate: what CI runs on every change.
ci: build lint analyze race resume-smoke worker-kill-smoke enospc-smoke fuzz

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark regression gate: re-run the gated benchmarks and diff against
# the committed baseline. Fails on a >15% ns/op regression of
# BenchmarkTable2_ConfigValidator, any BenchmarkFleetScan*, or the
# semantic-analysis benchmarks (BenchmarkSemanticLower/Check), or when a
# warm fleet scan is less than 2x faster than its cold counterpart.
BENCH_BASELINE ?= BENCH_parallel.json
bench-check:
	$(GO) test -run '^$$' -bench 'BenchmarkTable2_ConfigValidator$$|BenchmarkFleetScan' -benchtime 3s . > /tmp/bench-check.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSemanticLower$$|BenchmarkSemanticCheck$$' -benchtime 3s ./internal/analysis/sem >> /tmp/bench-check.txt
	$(GO) run ./cmd/benchreport -snapshot /tmp/bench-check.txt > /tmp/bench-check.json
	$(GO) run ./cmd/benchreport -diff $(BENCH_BASELINE) /tmp/bench-check.json
