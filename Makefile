GO ?= go

.PHONY: build test vet race ci bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The full gate: what CI runs on every change.
ci: build vet race

bench:
	$(GO) test -bench=. -benchmem ./...
