GO ?= go

.PHONY: build test vet race lint ci bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static checks: cvlint over the embedded rule library, gofmt, and vet.
lint:
	$(GO) run ./cmd/cvlint -q -builtin
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi
	$(GO) vet ./...

# The full gate: what CI runs on every change.
ci: build lint race

bench:
	$(GO) test -bench=. -benchmem ./...
