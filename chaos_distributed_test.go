// Distributed chaos drills: the coordinator/worker scale-out must survive
// worker death and network partition without losing or double-counting a
// single entity. Each drill compares the merged FleetSummary digest of a
// faulted distributed run against a clean in-process run over the same
// fleet — the two one-line summaries must be byte-identical.
//
// This file is an external test package (configvalidator_test) because it
// wires internal/dist and internal/server together, both of which import
// the root package.
package configvalidator_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dist"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/journal"
	"configvalidator/internal/server"
)

// drillFleetProfile pins the generated fleet so the baseline and the
// faulted distributed run validate identical entities.
var drillFleetProfile = fixtures.Profile{Seed: 424242, MisconfigRate: 0.5}

// drillEntities streams a freshly generated copy of the drill fleet.
func drillEntities(t *testing.T, n int) <-chan configvalidator.Entity {
	t.Helper()
	reg, _ := fixtures.Fleet(n, drillFleetProfile)
	out := make(chan configvalidator.Entity)
	go func() {
		defer close(out)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			out <- img.Entity()
		}
	}()
	return out
}

// baselineSummary runs the same fleet through the in-process scheduler —
// the digest every faulted distributed run must reproduce exactly.
func baselineSummary(t *testing.T, n int) string {
	t.Helper()
	v, err := configvalidator.New()
	if err != nil {
		t.Fatal(err)
	}
	sum := configvalidator.Summarize(v.ValidateFleet(context.Background(),
		drillEntities(t, n), configvalidator.FleetOptions{}))
	return sum.String()
}

// drillWorker starts a cvworker-shaped server: shard scanning with a
// journal segment directory and an artificial per-entity delay so drills
// can land faults mid-shard deterministically.
func drillWorker(t *testing.T, delay time.Duration) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	v, err := configvalidator.New(configvalidator.WithTelemetry(configvalidator.NewCollector()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(v)
	if err != nil {
		t.Fatal(err)
	}
	s.ShardJournalDir = dir
	s.ShardScanDelay = delay
	s.ShardWorkers = 1
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, dir
}

// drillLogf returns a coordinator Logf that is safe to call from
// coordinator goroutines (worker probes) that may outlive the test body.
func drillLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// summarizeAll re-feeds collected results through Summarize.
func summarizeAll(results []configvalidator.FleetResult) configvalidator.FleetSummary {
	ch := make(chan configvalidator.FleetResult, len(results))
	for _, r := range results {
		ch <- r
	}
	close(ch)
	return configvalidator.Summarize(ch)
}

// TestChaosDistributedWorkerKill is the headline drill: two workers share
// a fleet, and the slow worker is killed (connections severed, listener
// closed) as soon as it delivers its first result. The coordinator must
// revoke the dead worker's leases, reassign the undelivered remainder to
// the survivor, drop any duplicate deliveries, and produce a summary
// byte-identical to a clean single-process run.
func TestChaosDistributedWorkerKill(t *testing.T) {
	const fleetSize = 18
	want := baselineSummary(t, fleetSize)

	w1, _ := drillWorker(t, 150*time.Millisecond) // slow: shards in flight when killed
	w2, _ := drillWorker(t, 0)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w1.URL, w2.URL}, dist.Options{
		ShardSize:         3,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		ProbeLimit:        3,
		ProbeBackoff:      30 * time.Millisecond,
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results := v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord})

	killed := false
	var all []configvalidator.FleetResult
	fromSurvivor := 0
	for res := range results {
		if !killed && res.Worker == w1.URL {
			killed = true
			// SIGKILL equivalent for an httptest server: sever every
			// connection (in-flight shard streams die mid-line), then close
			// the listener so /readyz probes see a dead host.
			w1.CloseClientConnections()
			go w1.Close()
		}
		if res.Worker == w2.URL {
			fromSurvivor++
		}
		all = append(all, res)
	}
	if !killed {
		t.Fatal("no result ever arrived from the to-be-killed worker; drill did not exercise reassignment")
	}

	// Exactly-once: every entity appears once, none twice, none lost.
	seen := map[string]int{}
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored after reassignment: %v", res.Entity, res.Err)
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}
	if fromSurvivor == 0 {
		t.Error("surviving worker produced no results")
	}

	if got := summarizeAll(all).String(); got != want {
		t.Errorf("faulted distributed summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments == 0 {
		t.Error("worker killed mid-shard but no lease was reassigned")
	}
	if snap.ShardsCompleted != snap.ShardsDispatched-snap.LeaseReassignments {
		t.Errorf("lease accounting leak: dispatched=%d completed=%d reassigned=%d",
			snap.ShardsDispatched, snap.ShardsCompleted, snap.LeaseReassignments)
	}
	if snap.ActiveLeases != 0 {
		t.Errorf("active lease gauge = %d after run, want 0", snap.ActiveLeases)
	}
}

// tornSegmentTail appends a truncated record to a journal segment — the
// bytes a worker SIGKILLed mid-append leaves behind. Error-returning
// because drills call it off the test goroutine.
func tornSegmentTail(path string) error {
	payload := []byte(`{"entity":"torn","digest":"dead"}`)
	var rec bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	rec.Write(hdr[:])
	rec.Write(payload)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec.Bytes()[:rec.Len()-5]); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// TestChaosDistributedPartitionTornTail drills the uglier recovery path
// on a single worker: the coordinator's connections are severed mid-shard
// (partition — the worker process survives), the shard's journal segment
// is left with a torn tail, and the segment flock is still held when the
// coordinator re-leases (it must see 409 + Retry-After and retry, not
// fail). The re-leased shard replays the worker's completed results from
// the wounded segment, and the final summary still matches a clean run.
func TestChaosDistributedPartitionTornTail(t *testing.T) {
	const fleetSize = 8
	want := baselineSummary(t, fleetSize)

	w, dir := drillWorker(t, 150*time.Millisecond)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w.URL}, dist.Options{
		ShardSize:         4,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		ProbeLimit:        30,
		ProbeBackoff:      150 * time.Millisecond, // give the test the flock race
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results := v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord})

	faulted := make(chan string, 1) // shard segment the fault landed on
	injected := false
	var all []configvalidator.FleetResult
	for res := range results {
		if !injected {
			injected = true
			// Partition: kill the connections but leave the process alive,
			// then wound the journal segment of the in-flight shard while
			// holding its flock across the coordinator's re-lease attempt.
			w.CloseClientConnections()
			go func() {
				seg := filepath.Join(dir, "s0000.cvj")
				deadline := time.Now().Add(30 * time.Second)
				var holder *journal.Journal
				for {
					j, err := journal.Open(seg, journal.Options{})
					if err == nil {
						holder = j
						break
					}
					if !errors.Is(err, journal.ErrBusy) || time.Now().After(deadline) {
						faulted <- ""
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err := tornSegmentTail(seg); err != nil {
					_ = holder.Close()
					faulted <- ""
					return
				}
				// Hold the flock until the coordinator's re-lease has been
				// bounced at least once with 409, then let it through.
				for time.Now().Before(deadline) {
					if collector.Snapshot().WorkerRPCRetries > 0 {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				_ = holder.Close()
				faulted <- seg
			}()
		}
		all = append(all, res)
	}
	if !injected {
		t.Fatal("run produced no results; fault was never injected")
	}
	if seg := <-faulted; seg == "" {
		t.Fatal("could not acquire the shard segment flock after partition")
	}

	seen := map[string]int{}
	resumed := 0
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored after partition recovery: %v", res.Entity, res.Err)
		}
		if res.Resumed {
			resumed++
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}

	if got := summarizeAll(all).String(); got != want {
		t.Errorf("post-partition summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments == 0 {
		t.Error("partition mid-shard but no lease was reassigned")
	}
	if snap.WorkerRPCRetries == 0 {
		t.Error("re-lease never hit the held segment's 409; flock fencing untested")
	}
	if snap.ActiveLeases != 0 {
		t.Errorf("active lease gauge = %d after run, want 0", snap.ActiveLeases)
	}
	t.Logf("drill: reassignments=%d rpc_retries=%d resumed=%d", snap.LeaseReassignments, snap.WorkerRPCRetries, resumed)
}
