// Distributed chaos drills: the coordinator/worker scale-out must survive
// worker death and network partition without losing or double-counting a
// single entity. Each drill compares the merged FleetSummary digest of a
// faulted distributed run against a clean in-process run over the same
// fleet — the two one-line summaries must be byte-identical.
//
// This file is an external test package (configvalidator_test) because it
// wires internal/dist and internal/server together, both of which import
// the root package.
package configvalidator_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dist"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/journal"
	"configvalidator/internal/server"
)

// drillFleetProfile pins the generated fleet so the baseline and the
// faulted distributed run validate identical entities.
var drillFleetProfile = fixtures.Profile{Seed: 424242, MisconfigRate: 0.5}

// drillEntities streams a freshly generated copy of the drill fleet.
func drillEntities(t *testing.T, n int) <-chan configvalidator.Entity {
	t.Helper()
	reg, _ := fixtures.Fleet(n, drillFleetProfile)
	out := make(chan configvalidator.Entity)
	go func() {
		defer close(out)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			out <- img.Entity()
		}
	}()
	return out
}

// baselineSummary runs the same fleet through the in-process scheduler —
// the digest every faulted distributed run must reproduce exactly.
func baselineSummary(t *testing.T, n int) string {
	t.Helper()
	v, err := configvalidator.New()
	if err != nil {
		t.Fatal(err)
	}
	sum := configvalidator.Summarize(v.ValidateFleet(context.Background(),
		drillEntities(t, n), configvalidator.FleetOptions{}))
	return sum.String()
}

// drillWorker starts a cvworker-shaped server: shard scanning with a
// journal segment directory and an artificial per-entity delay so drills
// can land faults mid-shard deterministically.
func drillWorker(t *testing.T, delay time.Duration) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	v, err := configvalidator.New(configvalidator.WithTelemetry(configvalidator.NewCollector()))
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(v)
	if err != nil {
		t.Fatal(err)
	}
	s.ShardJournalDir = dir
	s.ShardScanDelay = delay
	s.ShardWorkers = 1
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, dir
}

// drillLogf returns a coordinator Logf that is safe to call from
// coordinator goroutines (worker probes) that may outlive the test body.
func drillLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// summarizeAll re-feeds collected results through Summarize.
func summarizeAll(results []configvalidator.FleetResult) configvalidator.FleetSummary {
	ch := make(chan configvalidator.FleetResult, len(results))
	for _, r := range results {
		ch <- r
	}
	close(ch)
	return configvalidator.Summarize(ch)
}

// TestChaosDistributedWorkerKill is the headline drill: two workers share
// a fleet, and the slow worker is killed (connections severed, listener
// closed) as soon as it delivers its first result. The coordinator must
// revoke the dead worker's leases, reassign the undelivered remainder to
// the survivor, drop any duplicate deliveries, and produce a summary
// byte-identical to a clean single-process run.
func TestChaosDistributedWorkerKill(t *testing.T) {
	const fleetSize = 18
	want := baselineSummary(t, fleetSize)

	w1, _ := drillWorker(t, 150*time.Millisecond) // slow: shards in flight when killed
	w2, _ := drillWorker(t, 0)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w1.URL, w2.URL}, dist.Options{
		ShardSize:         3,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		ProbeLimit:        3,
		ProbeBackoff:      30 * time.Millisecond,
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results := v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord})

	killed := false
	var all []configvalidator.FleetResult
	fromSurvivor := 0
	for res := range results {
		if !killed && res.Worker == w1.URL {
			killed = true
			// SIGKILL equivalent for an httptest server: sever every
			// connection (in-flight shard streams die mid-line), then close
			// the listener so /readyz probes see a dead host.
			w1.CloseClientConnections()
			go w1.Close()
		}
		if res.Worker == w2.URL {
			fromSurvivor++
		}
		all = append(all, res)
	}
	if !killed {
		t.Fatal("no result ever arrived from the to-be-killed worker; drill did not exercise reassignment")
	}

	// Exactly-once: every entity appears once, none twice, none lost.
	seen := map[string]int{}
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored after reassignment: %v", res.Entity, res.Err)
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}
	if fromSurvivor == 0 {
		t.Error("surviving worker produced no results")
	}

	if got := summarizeAll(all).String(); got != want {
		t.Errorf("faulted distributed summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments == 0 {
		t.Error("worker killed mid-shard but no lease was reassigned")
	}
	if snap.ShardsCompleted != snap.ShardsDispatched-snap.LeaseReassignments {
		t.Errorf("lease accounting leak: dispatched=%d completed=%d reassigned=%d",
			snap.ShardsDispatched, snap.ShardsCompleted, snap.LeaseReassignments)
	}
	if snap.ActiveLeases != 0 {
		t.Errorf("active lease gauge = %d after run, want 0", snap.ActiveLeases)
	}
}

// tornSegmentTail appends a truncated record to a journal segment — the
// bytes a worker SIGKILLed mid-append leaves behind. Error-returning
// because drills call it off the test goroutine.
func tornSegmentTail(path string) error {
	payload := []byte(`{"entity":"torn","digest":"dead"}`)
	var rec bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	rec.Write(hdr[:])
	rec.Write(payload)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec.Bytes()[:rec.Len()-5]); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// TestChaosDistributedPartitionTornTail drills the uglier recovery path
// on a single worker: the coordinator's connections are severed mid-shard
// (partition — the worker process survives), the shard's journal segment
// is left with a torn tail, and the segment flock is still held when the
// coordinator re-leases (it must see 409 + Retry-After and retry, not
// fail). The re-leased shard replays the worker's completed results from
// the wounded segment, and the final summary still matches a clean run.
func TestChaosDistributedPartitionTornTail(t *testing.T) {
	const fleetSize = 8
	want := baselineSummary(t, fleetSize)

	w, dir := drillWorker(t, 150*time.Millisecond)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w.URL}, dist.Options{
		ShardSize:         4,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		ProbeLimit:        30,
		ProbeBackoff:      150 * time.Millisecond, // give the test the flock race
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results := v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord})

	faulted := make(chan string, 1) // shard segment the fault landed on
	injected := false
	var all []configvalidator.FleetResult
	for res := range results {
		if !injected {
			injected = true
			// Partition: kill the connections but leave the process alive,
			// then wound the journal segment of the in-flight shard while
			// holding its flock across the coordinator's re-lease attempt.
			w.CloseClientConnections()
			go func() {
				seg := filepath.Join(dir, "s0000.cvj")
				deadline := time.Now().Add(30 * time.Second)
				var holder *journal.Journal
				for {
					j, err := journal.Open(seg, journal.Options{})
					if err == nil {
						holder = j
						break
					}
					if !errors.Is(err, journal.ErrBusy) || time.Now().After(deadline) {
						faulted <- ""
						return
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err := tornSegmentTail(seg); err != nil {
					_ = holder.Close()
					faulted <- ""
					return
				}
				// Hold the flock until the coordinator's re-lease has been
				// bounced at least once with 409, then let it through.
				for time.Now().Before(deadline) {
					if collector.Snapshot().WorkerRPCRetries > 0 {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				_ = holder.Close()
				faulted <- seg
			}()
		}
		all = append(all, res)
	}
	if !injected {
		t.Fatal("run produced no results; fault was never injected")
	}
	if seg := <-faulted; seg == "" {
		t.Fatal("could not acquire the shard segment flock after partition")
	}

	seen := map[string]int{}
	resumed := 0
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored after partition recovery: %v", res.Entity, res.Err)
		}
		if res.Resumed {
			resumed++
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}

	if got := summarizeAll(all).String(); got != want {
		t.Errorf("post-partition summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments == 0 {
		t.Error("partition mid-shard but no lease was reassigned")
	}
	if snap.WorkerRPCRetries == 0 {
		t.Error("re-lease never hit the held segment's 409; flock fencing untested")
	}
	if snap.ActiveLeases != 0 {
		t.Errorf("active lease gauge = %d after run, want 0", snap.ActiveLeases)
	}
	t.Logf("drill: reassignments=%d rpc_retries=%d resumed=%d", snap.LeaseReassignments, snap.WorkerRPCRetries, resumed)
}

// drillWorkerFaulted starts a worker whose validator carries a fault
// injector — exactly what cvworker does when CV_FAULTS is set — and
// returns its telemetry collector for worker-side assertions.
func drillWorkerFaulted(t *testing.T, inj *configvalidator.FaultInjector, delay time.Duration) (*httptest.Server, *configvalidator.Collector) {
	t.Helper()
	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(
		configvalidator.WithTelemetry(collector),
		configvalidator.WithFaults(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(v)
	if err != nil {
		t.Fatal(err)
	}
	s.ShardJournalDir = t.TempDir()
	s.ShardScanDelay = delay
	s.ShardWorkers = 1
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return srv, collector
}

// TestChaosDistributedSegmentENOSPC: a worker's shard journal segment hits
// ENOSPC mid-shard. The worker streams a degraded-journal record and keeps
// scanning; the coordinator keeps the lease — zero reassignments, zero
// missed heartbeats — and the merged summary is byte-identical to a clean
// in-process run.
func TestChaosDistributedSegmentENOSPC(t *testing.T) {
	const fleetSize = 12
	want := baselineSummary(t, fleetSize)

	// The same spec an operator would set via CV_FAULTS.
	inj, err := configvalidator.ParseFaults("op=segment-write kind=enospc after=2")
	if err != nil {
		t.Fatal(err)
	}
	w, workerCol := drillWorkerFaulted(t, inj, 0)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w.URL}, dist.Options{
		ShardSize:         4,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var all []configvalidator.FleetResult
	for res := range v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord}) {
		all = append(all, res)
	}

	seen := map[string]int{}
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored under worker disk pressure: %v", res.Entity, res.Err)
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}
	if got := summarizeAll(all).String(); got != want {
		t.Errorf("summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments != 0 {
		t.Errorf("lease reassigned %d times; worker disk pressure must not cost the lease", snap.LeaseReassignments)
	}
	if snap.HeartbeatsMissed != 0 {
		t.Errorf("heartbeats missed = %d, want 0", snap.HeartbeatsMissed)
	}
	wsnap := workerCol.Snapshot()
	if wsnap.JournalAppendErrors == 0 {
		t.Error("worker counted no segment append errors; fault never fired")
	}
	if !wsnap.JournalDegraded {
		t.Error("worker journal_degraded gauge not set")
	}
}

// TestChaosDistributedSegment507: the worker cannot even OPEN its journal
// segment (disk full during the header write). It must answer 507, and the
// coordinator must keep the lease and retry in place with worker-side
// resume disabled — the scan completes with zero reassignments.
func TestChaosDistributedSegment507(t *testing.T) {
	const fleetSize = 8
	want := baselineSummary(t, fleetSize)

	// The journal's header fsync is the first write a new segment performs.
	inj, err := configvalidator.ParseFaults("op=fsync kind=enospc times=1")
	if err != nil {
		t.Fatal(err)
	}
	w, _ := drillWorkerFaulted(t, inj, 0)

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	coord := dist.NewCoordinator([]string{w.URL}, dist.Options{
		ShardSize:         4,
		LeaseTTL:          5 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var all []configvalidator.FleetResult
	for res := range v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord}) {
		if res.Err != nil {
			t.Errorf("entity %s errored after 507 re-dispatch: %v", res.Entity, res.Err)
		}
		all = append(all, res)
	}
	if len(all) != fleetSize {
		t.Fatalf("results = %d, want %d", len(all), fleetSize)
	}
	if got := summarizeAll(all).String(); got != want {
		t.Errorf("summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.WorkerRPCRetries == 0 {
		t.Error("no in-place retry recorded; the 507 path never exercised")
	}
	if snap.LeaseReassignments != 0 {
		t.Errorf("lease reassigned %d times; a 507 must be retried in place", snap.LeaseReassignments)
	}
}

// TestChaosDistributedStuckConsumer: the FleetResult consumer wedges for
// several lease TTLs mid-run. Backpressure must hold the shard streams
// without revoking a single healthy lease — the watchdog has to tell
// "consumer stalled" from "worker silent" — the stall must be counted, and
// every goroutine the run spawned must wind down afterwards.
func TestChaosDistributedStuckConsumer(t *testing.T) {
	const fleetSize = 8
	want := baselineSummary(t, fleetSize)

	w, _ := drillWorker(t, 0)
	httpClient := &http.Client{}
	before := runtime.NumGoroutine()

	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	const leaseTTL = 200 * time.Millisecond
	coord := dist.NewCoordinator([]string{w.URL}, dist.Options{
		ShardSize:         4,
		LeaseTTL:          leaseTTL,
		HeartbeatInterval: 25 * time.Millisecond,
		StallWarn:         50 * time.Millisecond,
		HTTPClient:        httpClient,
		Logf:              drillLogf(t),
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	results := v.ValidateFleet(ctx, drillEntities(t, fleetSize),
		configvalidator.FleetOptions{Scheduler: coord})

	stalled := false
	var all []configvalidator.FleetResult
	for res := range results {
		if !stalled {
			stalled = true
			// The consumer wedges for 5 lease TTLs while results are in
			// flight behind it.
			time.Sleep(5 * leaseTTL)
		}
		all = append(all, res)
	}

	seen := map[string]int{}
	for _, res := range all {
		seen[res.Entity]++
		if res.Err != nil {
			t.Errorf("entity %s errored during consumer stall: %v", res.Entity, res.Err)
		}
	}
	if len(seen) != fleetSize {
		t.Fatalf("distinct entities = %d, want %d", len(seen), fleetSize)
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("entity %s counted %d times, want exactly once", name, n)
		}
	}
	if got := summarizeAll(all).String(); got != want {
		t.Errorf("summary diverged from clean run:\n got: %s\nwant: %s", got, want)
	}
	snap := collector.Snapshot()
	if snap.LeaseReassignments != 0 {
		t.Errorf("consumer stall cost %d lease reassignments; healthy workers must not be revoked", snap.LeaseReassignments)
	}
	if snap.HeartbeatsMissed != 0 {
		t.Errorf("heartbeats missed = %d during a consumer stall, want 0", snap.HeartbeatsMissed)
	}
	if snap.MergeStalls == 0 {
		t.Error("merge_stalls_total = 0; the stall was never surfaced")
	}

	// No goroutine leak: with the run drained and idle connections closed,
	// the goroutine count returns to its pre-run level.
	httpClient.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines = %d after drain, want <= %d (+3 slack); run leaked goroutines",
				runtime.NumGoroutine(), before)
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}
