package configvalidator

// Benchmark harness regenerating the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md):
//
//	E2 / Table 2  — BenchmarkTable2_* : the same 40 CIS system-service
//	                rules under four engines (ConfigValidator/CVL,
//	                Inspec-observed script checks, OpenSCAP-style XCCDF,
//	                and the CIS-CAT variant with simulated init cost).
//	E5            — BenchmarkFleetScan* : production-scale image scanning.
//	E6            — BenchmarkComposite : Listing-1 cross-entity rule.
//	E8            — BenchmarkAblation* : design-choice ablations.

import (
	"bytes"
	"testing"
	"time"

	"configvalidator/internal/baseline"
	"configvalidator/internal/baseline/scriptcheck"
	"configvalidator/internal/baseline/xccdf"
	"configvalidator/internal/crawler"
	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
	"configvalidator/internal/lens"
	"configvalidator/internal/rules"
	"configvalidator/internal/schema"
)

// table2Host is the Table-2 workload: one synthetic Ubuntu host carrying
// the system-service configuration the 40 common CIS rules inspect.
func table2Host() *entity.Mem {
	host, _ := fixtures.SystemHost("bench-host", fixtures.Profile{Seed: 1234, MisconfigRate: 0.2})
	return host
}

// cvl40Manifest returns the built-in manifest restricted to the system
// targets the 40-check workload covers (the full system-service rule set,
// 72 rules — a superset of the 40 common checks run through the manifest
// path).
func cvl40Manifest(b *testing.B) (*cvl.Manifest, cvl.FileReader) {
	b.Helper()
	systems := map[string]bool{"sshd": true, "sysctl": true, "audit": true, "fstab": true, "modprobe": true}
	full, err := rules.Manifest()
	if err != nil {
		b.Fatal(err)
	}
	sub := &cvl.Manifest{}
	for _, e := range full.Entries {
		if systems[e.Name] {
			sub.Entries = append(sub.Entries, e)
		}
	}
	return sub, rules.Reader()
}

// BenchmarkTable2_ConfigValidator measures the CVL engine on the Table-2
// workload (full system-service rule set, a superset of the 40 common
// checks — 72 rules; the per-rule cost is what the table compares).
func BenchmarkTable2_ConfigValidator(b *testing.B) {
	host := table2Host()
	manifest, reader := cvl40Manifest(b)
	eng := engine.New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Validate(host, manifest, reader); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_ConfigValidator40 measures exactly the 40 common rules
// through the library's rule-list path.
func BenchmarkTable2_ConfigValidator40(b *testing.B) {
	host := table2Host()
	ruleList, paths := table2CVLRules(b)
	eng := engine.New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.ValidateRules(host, ruleList, paths); err != nil {
			b.Fatal(err)
		}
	}
}

// table2CVLRules resolves the exact 40 built-in CVL rules referenced by
// the neutral specs plus the union of their search paths.
func table2CVLRules(b *testing.B) ([]*cvl.Rule, []string) {
	b.Helper()
	specs := baseline.CIS40()
	want := make(map[string]bool, len(specs))
	for _, s := range specs {
		want[s.CVLTarget+"/"+s.CVLRule] = true
	}
	var out []*cvl.Rule
	pathSet := map[string]bool{}
	for _, t := range rules.Targets() {
		rs, err := rules.Load(t.Name)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if want[t.Name+"/"+r.Name] {
				out = append(out, r)
				for _, p := range t.SearchPaths {
					pathSet[p] = true
				}
			}
		}
	}
	if len(out) != 40 {
		b.Fatalf("resolved %d CVL rules, want 40", len(out))
	}
	paths := make([]string, 0, len(pathSet))
	for p := range pathSet {
		paths = append(paths, p)
	}
	return out, paths
}

// BenchmarkTable2_ChefInspec measures the script-check (Inspec-observed)
// engine on the same 40 checks.
func BenchmarkTable2_ChefInspec(b *testing.B) {
	host := table2Host()
	checks := scriptcheck.FromSpecs(baseline.CIS40())
	eng := scriptcheck.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := eng.Run(host, checks)
		if len(out) != 40 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkTable2_OpenSCAP measures the XCCDF/OVAL engine (document
// pre-loaded, as openscap does) on the same 40 checks.
func BenchmarkTable2_OpenSCAP(b *testing.B) {
	host := table2Host()
	eng := loadXCCDF(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := eng.Evaluate(host)
		if len(out) != 40 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkTable2_CISCAT measures the CIS-CAT-style variant: the same
// XCCDF evaluation behind a simulated JVM/license initialization cost.
func BenchmarkTable2_CISCAT(b *testing.B) {
	host := table2Host()
	cc := xccdf.NewCISCAT(loadXCCDF(b), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := cc.Evaluate(host)
		if len(out) != 40 {
			b.Fatal("short run")
		}
	}
}

func loadXCCDF(b *testing.B) *xccdf.Engine {
	b.Helper()
	benchXML, ovalXML, err := xccdf.Generate("cis-ubuntu-40", baseline.CIS40())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := xccdf.Load(benchXML, ovalXML)
	if err != nil {
		b.Fatal(err)
	}
	return eng
}

// --- E5: fleet scanning (production-scale claim) ---

func benchmarkFleetScan(b *testing.B, n int) {
	reg, _ := fixtures.Fleet(n, fixtures.Profile{Seed: 99, MisconfigRate: 0.3})
	v, err := New()
	if err != nil {
		b.Fatal(err)
	}
	refs := reg.Images()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		failed := 0
		for _, ref := range refs {
			img, err := reg.Pull(ref)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := v.Validate(img.Entity())
			if err != nil {
				b.Fatal(err)
			}
			failed += rep.Counts()[StatusFail]
		}
		if failed == 0 {
			b.Fatal("fleet with misconfigurations reported no failures")
		}
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "images/s")
}

func BenchmarkFleetScan10(b *testing.B)  { benchmarkFleetScan(b, 10) }
func BenchmarkFleetScan100(b *testing.B) { benchmarkFleetScan(b, 100) }

// benchmarkFleetScanWarm measures the tuned configuration the fleet layer
// ships with: a shared content-addressed ParseCache (pre-warmed by one
// untimed pass, as in steady-state scanning where the fleet's distinct
// file payloads are already resident) and Parallelism=GOMAXPROCS. The
// cold serial BenchmarkFleetScan* above is the baseline; benchreport
// -diff gates the warm/cold ratio.
func benchmarkFleetScanWarm(b *testing.B, n int) {
	reg, _ := fixtures.Fleet(n, fixtures.Profile{Seed: 99, MisconfigRate: 0.3})
	v, err := New(WithParseCache(NewParseCache(0)), WithParallelism(0))
	if err != nil {
		b.Fatal(err)
	}
	refs := reg.Images()
	scan := func() {
		failed := 0
		for _, ref := range refs {
			img, err := reg.Pull(ref)
			if err != nil {
				b.Fatal(err)
			}
			rep, err := v.Validate(img.Entity())
			if err != nil {
				b.Fatal(err)
			}
			failed += rep.Counts()[StatusFail]
		}
		if failed == 0 {
			b.Fatal("fleet with misconfigurations reported no failures")
		}
	}
	scan() // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan()
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N), "images/s")
}

func BenchmarkFleetScanWarm10(b *testing.B)  { benchmarkFleetScanWarm(b, 10) }
func BenchmarkFleetScanWarm100(b *testing.B) { benchmarkFleetScanWarm(b, 100) }

// --- E6: composite rule evaluation (Listing 1) ---

func BenchmarkComposite(b *testing.B) {
	host, _ := fixtures.UbuntuHost("stack", fixtures.Profile{Seed: 5})
	files := map[string]string{
		"manifest.yaml": `
nginx:
  config_search_paths: [/etc/nginx]
  cvl_file: nginx.yaml
sysctl:
  config_search_paths: [/etc/sysctl.conf]
  cvl_file: sysctl.yaml
mysql:
  config_search_paths: [/etc/mysql]
  cvl_file: mysql.yaml
stack:
  cvl_file: composite.yaml
`,
		"nginx.yaml":  "config_name: listen\nconfig_path: [\"server\", \"http/server\"]\npreferred_value: [\"ssl\"]\npreferred_value_match: substr,any\n",
		"sysctl.yaml": "config_name: net/ipv4/ip_forward\nconfig_path: [\"\"]\npreferred_value: [\"0\"]\n",
		"mysql.yaml":  "config_name: ssl-ca\nconfig_path: [\"mysqld\"]\n",
		"composite.yaml": `composite_rule_name: stack_tls
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen
`,
	}
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(files["manifest.yaml"]))
	if err != nil {
		b.Fatal(err)
	}
	read := func(p string) ([]byte, error) { return []byte(files[p]), nil }
	eng := engine.New(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Validate(host, manifest, read); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8a: natural-format parsing vs forced conversion ---

// BenchmarkAblationNaturalSchema queries the fstab table directly (the
// paper's chosen design: keep the natural format).
func BenchmarkAblationNaturalSchema(b *testing.B) {
	host := table2Host()
	content, err := host.ReadFile("/etc/fstab")
	if err != nil {
		b.Fatal(err)
	}
	fstab := lens.NewFstab()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fstab.Parse("/etc/fstab", content)
		if err != nil {
			b.Fatal(err)
		}
		out, err := res.Table.Select(schema.Query{Constraints: "dir = ?", Args: []string{"/tmp"}})
		if err != nil {
			b.Fatal(err)
		}
		_ = out
	}
}

// BenchmarkAblationConvertedSchema force-converts the table to a tree and
// answers the same question through tree queries (the rejected design).
func BenchmarkAblationConvertedSchema(b *testing.B) {
	host := table2Host()
	content, err := host.ReadFile("/etc/fstab")
	if err != nil {
		b.Fatal(err)
	}
	fstab := lens.NewFstab()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := fstab.Parse("/etc/fstab", content)
		if err != nil {
			b.Fatal(err)
		}
		tree := lens.TableToTree(res.Table)
		found := false
		for _, row := range tree.Find("row") {
			if v, _ := row.ValueAt("dir"); v == "/tmp" {
				found = true
			}
		}
		_ = found
	}
}

// --- E8b: frame-based vs live validation ---

func BenchmarkAblationLiveScan(b *testing.B) {
	host, _ := fixtures.UbuntuHost("live", fixtures.Profile{Seed: 77})
	v, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.Validate(host); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFrameScan(b *testing.B) {
	host, _ := fixtures.UbuntuHost("live", fixtures.Profile{Seed: 77})
	frame, err := frames.Capture(host, nil, time.Unix(0, 0))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frame.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	v, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		back, err := frames.Read(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := v.Validate(back.Entity()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8c: normalization's share of scan cost ---

// BenchmarkAblationNormalizationOnly isolates the crawl+lens stage.
func BenchmarkAblationNormalizationOnly(b *testing.B) {
	host, _ := fixtures.UbuntuHost("norm", fixtures.Profile{Seed: 77})
	manifest, err := rules.Manifest()
	if err != nil {
		b.Fatal(err)
	}
	var paths []string
	for _, e := range manifest.EnabledEntries() {
		paths = append(paths, e.ConfigSearchPaths...)
	}
	c := crawler.New(nil, crawler.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		configs, err := c.CrawlPaths(host, paths)
		if err != nil {
			b.Fatal(err)
		}
		if len(configs) == 0 {
			b.Fatal("no configs")
		}
	}
}

// --- micro: Listing-6 encodings (E3 sanity; asserted in tests) ---

func BenchmarkRuleParseCVL(b *testing.B) {
	content := []byte(permitRootLoginCVL)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cvl.ParseRuleFile("r.yaml", content); err != nil {
			b.Fatal(err)
		}
	}
}

const permitRootLoginCVL = `config_name: PermitRootLogin
tags: ["#security","#cis", "#cisubuntu14.04_5.2.8"]
config_path: [""]
config_description: "Enable root login."
file_context: ["sshd_config"]
preferred_value: [ "no" ]
preferred_value_match: substr,all
not_present_description: "PermitRootLogin is not present. It is enabled by default."
not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."
matched_description: "Root login is disabled."
`
