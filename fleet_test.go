package configvalidator

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/pkgdb"
)

// feedFleet builds n images in a registry and streams their entities.
func feedFleet(t testing.TB, n int, rate float64) <-chan Entity {
	t.Helper()
	reg, _ := fixtures.Fleet(n, fixtures.Profile{Seed: 7, MisconfigRate: rate})
	ch := make(chan Entity)
	go func() {
		defer close(ch)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				return
			}
			ch <- img.Entity()
		}
	}()
	return ch
}

func TestValidateFleet(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	results := v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 4})
	summary := Summarize(results)
	if summary.Scanned != n || summary.Errors != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.EntitiesWithFindings == 0 || summary.ByStatus[StatusFail] == 0 {
		t.Errorf("dirty fleet reported clean: %+v", summary)
	}
}

func TestValidateFleetSingleWorkerMatchesParallel(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	seq := Summarize(v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 1}))
	par := Summarize(v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 8}))
	if seq.Scanned != par.Scanned || seq.EntitiesWithFindings != par.EntitiesWithFindings {
		t.Fatalf("seq %+v != par %+v", seq, par)
	}
	for status, count := range seq.ByStatus {
		if par.ByStatus[status] != count {
			t.Errorf("status %v: seq %d, par %d", status, count, par.ByStatus[status])
		}
	}
}

func TestValidateFleetTargetFilter(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 3, 0), FleetOptions{Workers: 2, Target: "sshd"})
	for res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for _, r := range res.Report.Results {
			if r.ManifestEntity != "sshd" {
				t.Fatalf("unexpected entity %s in targeted fleet scan", r.ManifestEntity)
			}
		}
	}
}

func TestValidateFleetCancellation(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// An endless stream of entities.
	entities := make(chan Entity)
	go func() {
		i := 0
		for {
			m := entity.NewMem(fmt.Sprintf("e-%d", i), entity.TypeHost)
			m.SetPackages([]pkgdb.Package{})
			select {
			case entities <- m:
				i++
			case <-ctx.Done():
				close(entities)
				return
			}
		}
	}()
	results := v.ValidateFleet(ctx, entities, FleetOptions{Workers: 2})
	got := 0
	for range results {
		got++
		if got == 5 {
			cancel()
		}
	}
	// The channel closed after cancellation: workers exited cleanly.
	if got < 5 {
		t.Fatalf("only %d results before close", got)
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("context not cancelled")
	}
}

func TestValidateFleetBadTarget(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 2, 0), FleetOptions{Workers: 1, Target: "nope"})
	summary := Summarize(results)
	if summary.Errors != 2 || summary.Scanned != 0 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestValidateFleetDefaultWorkers(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 4, 0), FleetOptions{})
	if s := Summarize(results); s.Scanned != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	ch := make(chan FleetResult, 2)
	ch <- FleetResult{Err: errors.New("boom")}
	ch <- FleetResult{Report: &Report{}}
	close(ch)
	s := Summarize(ch)
	if s.Errors != 1 || s.Scanned != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func BenchmarkFleetParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			v, err := New()
			if err != nil {
				b.Fatal(err)
			}
			reg, _ := fixtures.Fleet(50, fixtures.Profile{Seed: 7, MisconfigRate: 0.3})
			var ents []Entity
			for _, ref := range reg.Images() {
				img, err := reg.Pull(ref)
				if err != nil {
					b.Fatal(err)
				}
				ents = append(ents, img.Entity())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := make(chan Entity)
				go func() {
					defer close(ch)
					for _, e := range ents {
						ch <- e
					}
				}()
				s := Summarize(v.ValidateFleet(context.Background(), ch, FleetOptions{Workers: workers}))
				if s.Scanned != 50 {
					b.Fatalf("scanned %d", s.Scanned)
				}
			}
		})
	}
}
