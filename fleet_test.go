package configvalidator

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/pkgdb"
)

// feedFleet builds n images in a registry and streams their entities.
func feedFleet(t testing.TB, n int, rate float64) <-chan Entity {
	t.Helper()
	reg, _ := fixtures.Fleet(n, fixtures.Profile{Seed: 7, MisconfigRate: rate})
	ch := make(chan Entity)
	go func() {
		defer close(ch)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				return
			}
			ch <- img.Entity()
		}
	}()
	return ch
}

func TestValidateFleet(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	results := v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 4})
	summary := Summarize(results)
	if summary.Scanned != n || summary.Errors != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	if summary.EntitiesWithFindings == 0 || summary.ByStatus[StatusFail] == 0 {
		t.Errorf("dirty fleet reported clean: %+v", summary)
	}
}

func TestValidateFleetSingleWorkerMatchesParallel(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	seq := Summarize(v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 1}))
	par := Summarize(v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 8}))
	if seq.Scanned != par.Scanned || seq.EntitiesWithFindings != par.EntitiesWithFindings {
		t.Fatalf("seq %+v != par %+v", seq, par)
	}
	for status, count := range seq.ByStatus {
		if par.ByStatus[status] != count {
			t.Errorf("status %v: seq %d, par %d", status, count, par.ByStatus[status])
		}
	}
}

func TestValidateFleetTargetFilter(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 3, 0), FleetOptions{Workers: 2, Target: "sshd"})
	for res := range results {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		for _, r := range res.Report.Results {
			if r.ManifestEntity != "sshd" {
				t.Fatalf("unexpected entity %s in targeted fleet scan", r.ManifestEntity)
			}
		}
	}
}

func TestValidateFleetCancellation(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// An endless stream of entities.
	entities := make(chan Entity)
	go func() {
		i := 0
		for {
			m := entity.NewMem(fmt.Sprintf("e-%d", i), entity.TypeHost)
			m.SetPackages([]pkgdb.Package{})
			select {
			case entities <- m:
				i++
			case <-ctx.Done():
				close(entities)
				return
			}
		}
	}()
	results := v.ValidateFleet(ctx, entities, FleetOptions{Workers: 2})
	got := 0
	for range results {
		got++
		if got == 5 {
			cancel()
		}
	}
	// The channel closed after cancellation: workers exited cleanly.
	if got < 5 {
		t.Fatalf("only %d results before close", got)
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("context not cancelled")
	}
}

func TestValidateFleetBadTarget(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 2, 0), FleetOptions{Workers: 1, Target: "nope"})
	summary := Summarize(results)
	if summary.Errors != 2 || summary.Scanned != 0 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestValidateFleetDefaultWorkers(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	results := v.ValidateFleet(context.Background(), feedFleet(t, 4, 0), FleetOptions{})
	if s := Summarize(results); s.Scanned != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeErrors(t *testing.T) {
	ch := make(chan FleetResult, 2)
	ch <- FleetResult{Err: errors.New("boom")}
	ch <- FleetResult{Report: &Report{}}
	close(ch)
	s := Summarize(ch)
	if s.Errors != 1 || s.Scanned != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

// panicEntity panics as soon as validation crawls it.
type panicEntity struct {
	*entity.Mem
}

func (p *panicEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	panic("entity exploded mid-crawl")
}

// hangEntity blocks every crawl until release is closed.
type hangEntity struct {
	*entity.Mem
	release chan struct{}
}

func (h *hangEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	<-h.release
	return h.Mem.Walk(root, fn)
}

// flakyEntity fails its first failures crawls with a transient error,
// then behaves normally.
type flakyEntity struct {
	*entity.Mem
	mu       sync.Mutex
	failures int
}

func (f *flakyEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	f.mu.Lock()
	shouldFail := f.failures > 0
	if shouldFail {
		f.failures--
	}
	f.mu.Unlock()
	if shouldFail {
		return MarkTransient(errors.New("registry momentarily unavailable"))
	}
	return f.Mem.Walk(root, fn)
}

// permFailEntity always fails with a permanent (non-transient) error.
type permFailEntity struct {
	*entity.Mem
}

func (p *permFailEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	return errors.New("corrupt layer")
}

func sendEntities(ents ...Entity) <-chan Entity {
	ch := make(chan Entity, len(ents))
	for _, e := range ents {
		ch <- e
	}
	close(ch)
	return ch
}

// TestValidateFleetPanicIsolation is the regression for the pre-recovery
// behavior where a panicking worker killed the process (or, had the panic
// been swallowed, left Summarize deadlocked in its for-range): the results
// channel must still close, and the panic must surface as a per-entity
// error carrying the stack.
func TestValidateFleetPanicIsolation(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ok := entity.NewMem("ok-host", entity.TypeHost)
	boom := &panicEntity{Mem: entity.NewMem("boom-host", entity.TypeHost)}
	results := v.ValidateFleet(context.Background(), sendEntities(ok, boom), FleetOptions{Workers: 2})

	drained := make(chan FleetSummary, 1)
	go func() { drained <- Summarize(results) }()
	var summary FleetSummary
	select {
	case summary = <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("results channel never closed after a worker panic")
	}
	if summary.Errors != 1 || summary.Scanned != 1 {
		t.Fatalf("summary = %+v", summary)
	}
}

func TestValidateFleetPanicErrCarriesStack(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	boom := &panicEntity{Mem: entity.NewMem("boom-host", entity.TypeHost)}
	results := v.ValidateFleet(context.Background(), sendEntities(boom), FleetOptions{Workers: 1})
	res, open := <-results
	if !open {
		t.Fatal("no result for panicking entity")
	}
	if res.Err == nil {
		t.Fatal("panic did not surface as FleetResult.Err")
	}
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", res.Err)
	}
	if pe.Value != "entity exploded mid-crawl" || len(pe.Stack) == 0 {
		t.Fatalf("panic value = %v, stack len = %d", pe.Value, len(pe.Stack))
	}
	if Transient(res.Err) {
		t.Error("panic classified transient; it would be retried")
	}
	if _, open := <-results; open {
		t.Fatal("channel not closed")
	}
}

func TestValidateFleetScanTimeout(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine finish
	hung := &hangEntity{Mem: entity.NewMem("hung-host", entity.TypeHost), release: release}
	ok := entity.NewMem("ok-host", entity.TypeHost)

	start := time.Now()
	results := v.ValidateFleet(context.Background(), sendEntities(hung, ok),
		FleetOptions{Workers: 2, ScanTimeout: 100 * time.Millisecond})
	var timeoutErr error
	scanned := 0
	for res := range results {
		if res.Err != nil {
			timeoutErr = res.Err
		} else {
			scanned++
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("fleet run took %v; hung entity stalled the pool", elapsed)
	}
	if scanned != 1 {
		t.Fatalf("scanned = %d, want 1", scanned)
	}
	if timeoutErr == nil || !errors.Is(timeoutErr, ErrScanTimeout) {
		t.Fatalf("err = %v, want ErrScanTimeout", timeoutErr)
	}
	if !Transient(timeoutErr) {
		t.Error("timeout should classify transient")
	}
}

func TestValidateFleetRetryThenSucceed(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyEntity{Mem: entity.NewMem("flaky-host", entity.TypeHost)}
	flaky.failures = 2
	results := v.ValidateFleet(context.Background(), sendEntities(flaky),
		FleetOptions{Workers: 1, Retries: 3, RetryBackoff: time.Millisecond})
	res := <-results
	if res.Err != nil {
		t.Fatalf("scan failed despite retries: %v", res.Err)
	}
	if res.Report == nil || res.Report.EntityName != "flaky-host" {
		t.Fatalf("report = %+v", res.Report)
	}
	if got := collector.Snapshot().Retries; got != 2 {
		t.Errorf("retries recorded = %d, want 2", got)
	}
}

func TestValidateFleetRetriesExhausted(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyEntity{Mem: entity.NewMem("flaky-host", entity.TypeHost)}
	flaky.failures = 100
	results := v.ValidateFleet(context.Background(), sendEntities(flaky),
		FleetOptions{Workers: 1, Retries: 2, RetryBackoff: time.Millisecond})
	res := <-results
	if res.Err == nil {
		t.Fatal("want error after exhausting retries")
	}
	flaky.mu.Lock()
	remaining := flaky.failures
	flaky.mu.Unlock()
	if got := 100 - remaining; got != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestValidateFleetNoRetryOnPermanentError(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	perm := &permFailEntity{Mem: entity.NewMem("perm-host", entity.TypeHost)}
	start := time.Now()
	results := v.ValidateFleet(context.Background(), sendEntities(perm),
		FleetOptions{Workers: 1, Retries: 5, RetryBackoff: 200 * time.Millisecond})
	res := <-results
	if res.Err == nil {
		t.Fatal("want error")
	}
	// Five retries at 200ms+ backoff would take > 1s; a permanent error
	// must fail fast without any backoff waits.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("permanent error took %v; was it retried?", elapsed)
	}
}

// TestValidateFleetMixedPathologies is the acceptance scenario: a fleet
// containing one panicking and one hanging entity completes, reports both
// as per-entity errors, closes the results channel, and records non-zero
// scan/latency/error telemetry.
func TestValidateFleetMixedPathologies(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	defer close(release)
	ents := sendEntities(
		entity.NewMem("ok-1", entity.TypeHost),
		&panicEntity{Mem: entity.NewMem("boom", entity.TypeHost)},
		&hangEntity{Mem: entity.NewMem("hung", entity.TypeHost), release: release},
		entity.NewMem("ok-2", entity.TypeHost),
	)
	results := v.ValidateFleet(context.Background(), ents,
		FleetOptions{Workers: 3, ScanTimeout: 100 * time.Millisecond})

	byName := map[string]error{}
	scanned := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for res := range results {
			if res.Err != nil {
				byName[res.Err.Error()] = res.Err
			} else {
				scanned++
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("fleet run did not complete")
	}
	if scanned != 2 || len(byName) != 2 {
		t.Fatalf("scanned = %d, errors = %d (%v)", scanned, len(byName), byName)
	}
	var sawPanic, sawTimeout bool
	for _, err := range byName {
		var pe *PanicError
		if errors.As(err, &pe) {
			sawPanic = true
		}
		if errors.Is(err, ErrScanTimeout) {
			sawTimeout = true
		}
	}
	if !sawPanic || !sawTimeout {
		t.Fatalf("sawPanic=%v sawTimeout=%v: %v", sawPanic, sawTimeout, byName)
	}

	s := collector.Snapshot()
	if s.Scans == 0 || s.Errors == 0 || s.Panics != 1 || s.Timeouts != 1 {
		t.Errorf("telemetry = %+v", s)
	}
	if s.ScanLatency.Count == 0 {
		t.Error("no scan latencies recorded")
	}
}

// TestValidateFleetConcurrentSharedValidator exercises the shared
// Validator / CachedSource under several simultaneous fleet runs — the
// configuration the race detector must stay quiet on.
func TestValidateFleetConcurrentSharedValidator(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	const fleets = 3
	const perFleet = 8
	var wg sync.WaitGroup
	summaries := make([]FleetSummary, fleets)
	for i := 0; i < fleets; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results := v.ValidateFleet(context.Background(), feedFleet(t, perFleet, 0.5),
				FleetOptions{Workers: 4, ScanTimeout: 30 * time.Second})
			summaries[i] = Summarize(results)
		}(i)
	}
	wg.Wait()
	for i, s := range summaries {
		if s.Scanned != perFleet || s.Errors != 0 {
			t.Errorf("fleet %d: %+v", i, s)
		}
	}
	if got := collector.Snapshot().Scans; got != fleets*perFleet {
		t.Errorf("telemetry scans = %d, want %d", got, fleets*perFleet)
	}
}

func TestSummarizeCountsErrorEntities(t *testing.T) {
	ch := make(chan FleetResult, 3)
	// An entity whose rules all blew up in the crawler/lens: no failures,
	// but decidedly not a clean scan.
	ch <- FleetResult{Report: &Report{Results: []*Result{
		{Status: StatusError}, {Status: StatusError},
	}}}
	// A normal dirty entity.
	ch <- FleetResult{Report: &Report{Results: []*Result{
		{Status: StatusPass}, {Status: StatusFail},
	}}}
	// A clean entity.
	ch <- FleetResult{Report: &Report{Results: []*Result{{Status: StatusPass}}}}
	close(ch)
	s := Summarize(ch)
	if s.Scanned != 3 {
		t.Fatalf("scanned = %d", s.Scanned)
	}
	if s.EntitiesWithErrors != 1 {
		t.Errorf("EntitiesWithErrors = %d, want 1 (error-only entity reported clean)", s.EntitiesWithErrors)
	}
	if s.EntitiesWithFindings != 1 {
		t.Errorf("EntitiesWithFindings = %d, want 1", s.EntitiesWithFindings)
	}
	text := s.String()
	if !strings.Contains(text, "entities_with_errors=1") {
		t.Errorf("summary renderer omits error entities: %s", text)
	}
}

func BenchmarkFleetParallel(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			v, err := New()
			if err != nil {
				b.Fatal(err)
			}
			reg, _ := fixtures.Fleet(50, fixtures.Profile{Seed: 7, MisconfigRate: 0.3})
			var ents []Entity
			for _, ref := range reg.Images() {
				img, err := reg.Pull(ref)
				if err != nil {
					b.Fatal(err)
				}
				ents = append(ents, img.Entity())
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ch := make(chan Entity)
				go func() {
					defer close(ch)
					for _, e := range ents {
						ch <- e
					}
				}()
				s := Summarize(v.ValidateFleet(context.Background(), ch, FleetOptions{Workers: workers}))
				if s.Scanned != 50 {
					b.Fatalf("scanned %d", s.Scanned)
				}
			}
		})
	}
}

// alwaysTransientEntity fails every crawl with a transient error, so
// retry-path tests can park scanOne in its backoff wait at will.
type alwaysTransientEntity struct {
	*entity.Mem
}

func (a *alwaysTransientEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	return MarkTransient(errors.New("backend always busy"))
}

// TestValidateFleetCancelDuringBackoff pins the backoff wait to the
// context: cancelling mid-wait must return promptly with the context
// error, not sleep out the remaining backoff.
func TestValidateFleetCancelDuringBackoff(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ent := &alwaysTransientEntity{Mem: entity.NewMem("busy-host", entity.TypeHost)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := v.scanOne(ctx, ent, FleetOptions{Retries: 3, RetryBackoff: 30 * time.Second})
	elapsed := time.Since(start)
	if res.Err == nil || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("res.Err = %v, want context.Canceled", res.Err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancel during backoff took %v, want prompt return", elapsed)
	}
}

func TestClassifyScanError(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
		want string
	}{
		{"panic", fmt.Errorf("scan x: %w", &PanicError{Value: "boom"}), ErrorKindPanic},
		{"timeout", fmt.Errorf("scan x: %w", ErrScanTimeout), ErrorKindTimeout},
		{"deadline", fmt.Errorf("scan x: %w", context.DeadlineExceeded), ErrorKindTimeout},
		{"cancelled", fmt.Errorf("scan x: %w", context.Canceled), ErrorKindCancelled},
		{"permanent", errors.New("corrupt layer"), ErrorKindPermanent},
		{"transient-marked", MarkTransient(errors.New("busy")), ErrorKindPermanent},
	} {
		if got := ClassifyScanError(tc.err); got != tc.want {
			t.Errorf("%s: ClassifyScanError = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestFleetErrorsByKind runs one fleet containing a panicking, a hanging,
// and a permanently failing entity and pins the per-kind error breakdown —
// both in the summary struct and in its rendered digest.
func TestFleetErrorsByKind(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	hang := &hangEntity{Mem: entity.NewMem("wedged", entity.TypeImage), release: make(chan struct{})}
	defer close(hang.release)
	results := v.ValidateFleet(context.Background(), sendEntities(
		&panicEntity{Mem: entity.NewMem("explosive", entity.TypeImage)},
		hang,
		&permFailEntity{Mem: entity.NewMem("corrupt", entity.TypeImage)},
	), FleetOptions{Workers: 3, ScanTimeout: 50 * time.Millisecond})
	s := Summarize(results)
	if s.Errors != 3 {
		t.Fatalf("errors = %d, want 3: %+v", s.Errors, s)
	}
	want := map[string]int{ErrorKindPanic: 1, ErrorKindTimeout: 1, ErrorKindPermanent: 1}
	for kind, n := range want {
		if s.ErrorsByKind[kind] != n {
			t.Errorf("ErrorsByKind[%s] = %d, want %d", kind, s.ErrorsByKind[kind], n)
		}
	}
	if s.ErrorsByKind[ErrorKindCancelled] != 0 {
		t.Errorf("phantom cancelled errors: %+v", s.ErrorsByKind)
	}
	text := s.String()
	for _, frag := range []string{"err_timeout=1", "err_panic=1", "err_cancelled=0", "err_permanent=1"} {
		if !strings.Contains(text, frag) {
			t.Errorf("summary digest missing %q: %s", frag, text)
		}
	}
}

// TestFleetCancelledErrorKind: a scan cut short by context cancellation
// classifies as cancelled, not permanent.
func TestFleetCancelledErrorKind(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ent := &alwaysTransientEntity{Mem: entity.NewMem("busy-host", entity.TypeHost)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	res := v.scanOne(ctx, ent, FleetOptions{Retries: 3, RetryBackoff: 30 * time.Second})
	if got := ClassifyScanError(res.Err); got != ErrorKindCancelled {
		t.Fatalf("ClassifyScanError(%v) = %q, want cancelled", res.Err, got)
	}
}

// signalEntity announces when its crawl starts, then blocks until released
// — the handle a test needs to cancel a run with a result in flight.
type signalEntity struct {
	*entity.Mem
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *signalEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return s.Mem.Walk(root, fn)
}

// TestScanAbandonedCounted pins the ScanAbandoned telemetry counter: a
// result computed after the run's context is cancelled — with no receiver
// left — is dropped, and the drop is counted so operators can reconcile
// submitted vs. delivered (or journaled) entity counts.
func TestScanAbandonedCounted(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	se := &signalEntity{
		Mem:     entity.NewMem("in-flight", entity.TypeHost),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	defer close(se.release)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	results := v.ValidateFleet(ctx, sendEntities(se), FleetOptions{Workers: 1})
	// Wait until the worker is mid-scan, then cancel with no receiver on
	// the results channel: the worker's delivery select sees only
	// ctx.Done, so the computed result is deterministically abandoned.
	// Hold off draining until the drop is counted — receiving earlier
	// would race the worker's delivery select.
	<-se.started
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for collector.Snapshot().ScansAbandoned == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := collector.Snapshot().ScansAbandoned; got != 1 {
		t.Fatalf("ScansAbandoned = %d, want 1", got)
	}
	delivered := 0
	for range results {
		delivered++
	}
	if delivered != 0 {
		t.Errorf("delivered = %d results after cancellation, want 0", delivered)
	}
}

// TestValidateFleetJournalResume is the library-level resume contract: a
// second run over an unchanged fleet with the same journal replays every
// report byte-identically, re-scans nothing, and counts each skip.
func TestValidateFleetJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	const n = 6

	j1, err := OpenJournal(path, JournalOptions{Metrics: collector})
	if err != nil {
		t.Fatal(err)
	}
	clean := make(map[string][]byte, n)
	for res := range v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 3, Journal: j1}) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Resumed {
			t.Errorf("first run resumed %s from an empty journal", res.Entity)
		}
		clean[res.Entity] = reportJSON(t, res.Report)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, JournalOptions{Metrics: collector})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	resumed := 0
	for res := range v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{Workers: 3, Journal: j2}) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if !res.Resumed {
			t.Errorf("%s re-scanned on an unchanged fleet", res.Entity)
			continue
		}
		resumed++
		if got := reportJSON(t, res.Report); string(got) != string(clean[res.Entity]) {
			t.Errorf("%s: replayed report not byte-identical\ngot:  %s\nwant: %s", res.Entity, got, clean[res.Entity])
		}
	}
	if resumed != n {
		t.Errorf("resumed = %d, want %d", resumed, n)
	}
	if got := collector.Snapshot().JournalSkippedEntities; got != n {
		t.Errorf("JournalSkippedEntities = %d, want %d", got, n)
	}
}

// TestPanicErrorFormatting pins the *PanicError message shape: the panic
// value and the captured stack must both be present, so fleet logs are
// debuggable without re-reproducing the crash.
func TestPanicErrorFormatting(t *testing.T) {
	pe := &PanicError{Value: "slice index out of range", Stack: []byte("goroutine 7 [running]:\nmain.crash()")}
	msg := pe.Error()
	if !strings.Contains(msg, "scan panicked: slice index out of range") {
		t.Errorf("message %q missing panic value", msg)
	}
	if !strings.Contains(msg, "goroutine 7 [running]") {
		t.Errorf("message %q missing stack", msg)
	}
}

// TestNextBackoffBounds pins the decorrelated-jitter contract: each wait
// is drawn from [base, 3×previous] and never exceeds the 5s cap.
func TestNextBackoffBounds(t *testing.T) {
	defer func(orig func(int64) int64) { jitterInt63n = orig }(jitterInt63n)

	base := 50 * time.Millisecond
	jitterInt63n = func(n int64) int64 { return n - 1 } // worst case: max draw
	if got, want := nextBackoff(base, base), 3*base; got != want {
		t.Errorf("max draw = %v, want %v (3x previous)", got, want)
	}
	if got := nextBackoff(base, maxRetryBackoff); got != maxRetryBackoff {
		t.Errorf("max draw at cap = %v, want %v", got, maxRetryBackoff)
	}
	jitterInt63n = func(n int64) int64 { return 0 } // best case: min draw
	if got := nextBackoff(base, 10*base); got != base {
		t.Errorf("min draw = %v, want base %v", got, base)
	}
	if got := nextBackoff(maxRetryBackoff, maxRetryBackoff); got != maxRetryBackoff {
		t.Errorf("base at cap = %v, want %v", got, maxRetryBackoff)
	}
}

// TestNextBackoffStaysBounded walks the real (unpinned) jitter a few
// hundred steps and asserts the invariant holds for every draw.
func TestNextBackoffStaysBounded(t *testing.T) {
	base := 50 * time.Millisecond
	prev := base
	for i := 0; i < 500; i++ {
		next := nextBackoff(base, prev)
		upper := 3 * prev
		if upper > maxRetryBackoff {
			upper = maxRetryBackoff
		}
		if lower := base; upper < lower {
			upper = lower
		}
		if next < base || next > upper {
			t.Fatalf("step %d: backoff %v outside [%v, %v]", i, next, base, upper)
		}
		prev = next
	}
}

// TestNextBackoffProperty fuzzes the exported NextBackoff over random
// (base, previous) pairs with a seeded RNG: every draw must land in
// [base, min(3×previous, 5s)] (or degenerate to base when that interval
// is empty), the invariant the distributed coordinator relies on when it
// reuses the fleet's jitter for worker probing and dispatch retries.
func TestNextBackoffProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20170901))
	for i := 0; i < 5000; i++ {
		base := time.Duration(1+rng.Intn(2000)) * time.Millisecond
		prev := time.Duration(1+rng.Intn(12000)) * time.Millisecond
		got := NextBackoff(base, prev)
		upper := 3 * prev
		if upper > maxRetryBackoff {
			upper = maxRetryBackoff
		}
		if upper < base {
			upper = base
		}
		if got < base || got > upper {
			t.Fatalf("NextBackoff(%v, %v) = %v, outside [%v, %v]", base, prev, got, base, upper)
		}
	}
	// Cap degeneration: once base and previous both sit at the cap, the
	// draw is exactly the cap forever — backoff cannot creep past 5s.
	if got := NextBackoff(maxRetryBackoff, maxRetryBackoff); got != maxRetryBackoff {
		t.Fatalf("NextBackoff at cap = %v, want %v", got, maxRetryBackoff)
	}
}

// TestScanRevokedClassification pins the lease-revocation path end to
// end: a scan cancelled with ErrLeaseRevoked as the cancellation cause
// (context.WithCancelCause, what the distributed coordinator does when a
// lease expires) must surface the cause in the scan error and classify
// as revoked — distinguishable from a user pressing ^C — all the way
// into the fleet summary digest.
func TestScanRevokedClassification(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ent := &alwaysTransientEntity{Mem: entity.NewMem("leased-host", entity.TypeHost)}
	ctx, cancel := context.WithCancelCause(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel(ErrLeaseRevoked)
	}()
	res := v.scanOne(ctx, ent, FleetOptions{Retries: 5, RetryBackoff: 30 * time.Second})
	if res.Err == nil || !errors.Is(res.Err, ErrLeaseRevoked) {
		t.Fatalf("res.Err = %v, want wrapped ErrLeaseRevoked", res.Err)
	}
	if got := ClassifyScanError(res.Err); got != ErrorKindRevoked {
		t.Fatalf("ClassifyScanError = %q, want %q", got, ErrorKindRevoked)
	}
	ch := make(chan FleetResult, 1)
	ch <- FleetResult{Entity: "leased-host", Err: res.Err}
	close(ch)
	sum := Summarize(ch)
	if sum.ErrorsByKind[ErrorKindRevoked] != 1 {
		t.Fatalf("ErrorsByKind = %v, want revoked=1", sum.ErrorsByKind)
	}
	if !strings.Contains(sum.String(), "err_revoked=1") {
		t.Fatalf("summary digest %q missing err_revoked=1", sum.String())
	}
}

// kindedErr is a test double for remote scan errors that carry their own
// classification across a process boundary (dist.RemoteError in
// production).
type kindedErr struct{ kind string }

func (e *kindedErr) Error() string     { return "remote: " + e.kind }
func (e *kindedErr) ErrorKind() string { return e.kind }

// TestClassifyScanErrorKinder pins the ErrorKinder hook: an error that
// names its own kind classifies as that kind — even wrapped — which is
// how a worker-side classification survives the wire to the coordinator.
func TestClassifyScanErrorKinder(t *testing.T) {
	for _, kind := range []string{ErrorKindTimeout, ErrorKindPanic, ErrorKindRevoked, ErrorKindPermanent} {
		err := fmt.Errorf("scan img:v1: %w", &kindedErr{kind: kind})
		if got := ClassifyScanError(err); got != kind {
			t.Errorf("ClassifyScanError(kinded %q) = %q, want %q", kind, got, kind)
		}
	}
	// A recovered panic outranks a carried kind: a panic during a revoked
	// lease is still a panic.
	wrapped := fmt.Errorf("%w: %w", &kindedErr{kind: ErrorKindTimeout}, &PanicError{Value: "boom"})
	if got := ClassifyScanError(wrapped); got != ErrorKindPanic {
		t.Errorf("ClassifyScanError(panic+kinded) = %q, want %q", got, ErrorKindPanic)
	}
}

// TestFleetMetricsExposition asserts the fleet counters land in the
// Prometheus exposition under their contract names: the retry counter
// driven by a real transiently-failing scan, and the shard-lease counters
// (whose increments are driven end to end by the distributed chaos
// drills) under the names operators alert on.
func TestFleetMetricsExposition(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyEntity{Mem: entity.NewMem("flaky-host", entity.TypeHost)}
	flaky.failures = 2
	results := v.ValidateFleet(context.Background(), sendEntities(flaky),
		FleetOptions{Retries: 3, RetryBackoff: time.Millisecond})
	for range results {
	}
	collector.ShardDispatched()
	collector.LeaseReassigned()
	var buf bytes.Buffer
	if err := collector.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"configvalidator_scan_retries_total 2",
		"configvalidator_shards_dispatched_total 1",
		"configvalidator_scan_lease_reassignments_total 1",
		"configvalidator_lease_heartbeats_missed_total 0",
		"configvalidator_duplicate_results_dropped_total 0",
		"configvalidator_active_leases 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := collector.Snapshot()
	if snap.Retries != 2 {
		t.Errorf("Retries = %d, want 2", snap.Retries)
	}
	if snap.LeaseReassignments != 1 {
		t.Errorf("LeaseReassignments = %d, want 1", snap.LeaseReassignments)
	}
}

// TestClassifyScanErrorWrappedChains pins classification over realistic
// nested chains: sentinels and carried kinds must survive any number of
// fmt.Errorf("%w", ...) layers, context.Cause plumbing, and the fault
// injector's error type.
func TestClassifyScanErrorWrappedChains(t *testing.T) {
	// A carried kind buried two wraps deep.
	deepKinded := fmt.Errorf("retry exhausted: %w", fmt.Errorf("shard 3: %w", &kindedErr{kind: ErrorKindRevoked}))
	if got := ClassifyScanError(deepKinded); got != ErrorKindRevoked {
		t.Errorf("nested ErrorKinder = %q, want %q", got, ErrorKindRevoked)
	}

	// A lease revocation delivered as a cancellation cause: the scheduler
	// cancels with context.WithCancelCause(ErrLeaseRevoked) and the scan
	// error wraps context.Cause(ctx).
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(ErrLeaseRevoked)
	viaCause := fmt.Errorf("scan img:v3: %w", context.Cause(ctx))
	if got := ClassifyScanError(viaCause); got != ErrorKindRevoked {
		t.Errorf("cause-wrapped revocation = %q, want %q", got, ErrorKindRevoked)
	}

	// Plain cancellation through the same path stays "cancelled".
	ctx2, cancel2 := context.WithCancelCause(context.Background())
	cancel2(nil) // cause defaults to context.Canceled
	viaCancel := fmt.Errorf("scan img:v4: %w", context.Cause(ctx2))
	if got := ClassifyScanError(viaCancel); got != ErrorKindCancelled {
		t.Errorf("cause-wrapped cancellation = %q, want %q", got, ErrorKindCancelled)
	}

	// The timeout sentinel nested twice.
	deepTimeout := fmt.Errorf("scan img:v5: %w", fmt.Errorf("attempt 2: %w", ErrScanTimeout))
	if got := ClassifyScanError(deepTimeout); got != ErrorKindTimeout {
		t.Errorf("nested timeout = %q, want %q", got, ErrorKindTimeout)
	}

	// Injected faults (wrapped): permanent errors retrying will not fix.
	inj := faults.MustNew(faults.Rule{Op: faults.OpRead, Kind: faults.KindError})
	_, injErr := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", nil)
	wrappedInj := fmt.Errorf("scan img:v6: %w", injErr)
	var ie *faults.InjectedError
	if !errors.As(wrappedInj, &ie) {
		t.Fatalf("injected error lost in wrap: %v", wrappedInj)
	}
	if got := ClassifyScanError(wrappedInj); got != ErrorKindPermanent {
		t.Errorf("wrapped injected error = %q, want %q", got, ErrorKindPermanent)
	}
	// A transient injected fault that exhausted its retries is still
	// permanent at classification time — retryability is not a kind.
	trans := faults.MustNew(faults.Rule{Op: faults.OpRead, Kind: faults.KindTransient})
	_, transErr := trans.Apply(faults.OpRead, "/f", nil)
	if got := ClassifyScanError(fmt.Errorf("scan: %w", transErr)); got != ErrorKindPermanent {
		t.Errorf("wrapped transient injected error = %q, want %q", got, ErrorKindPermanent)
	}
	// An ErrorKinder nested beneath another wrapper still outranks the
	// sentinel checks below it in the switch.
	kindedOverTimeout := fmt.Errorf("%w: %w", &kindedErr{kind: ErrorKindPermanent}, ErrScanTimeout)
	if got := ClassifyScanError(kindedOverTimeout); got != ErrorKindPermanent {
		t.Errorf("kinded+timeout = %q, want kinded to win: got %q", ErrorKindPermanent, got)
	}
}

// TestJournalDegradedExposition drives a real fleet scan against a
// journal whose disk is "full" and asserts the degradation surfaces
// everywhere the ISSUE promises: the per-result flag, the summary line,
// and the Prometheus exposition under the contract metric names.
func TestJournalDegradedExposition(t *testing.T) {
	collector := NewCollector()
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC})
	jrnl, err := OpenJournal(filepath.Join(t.TempDir(), "fleet.cvj"),
		JournalOptions{Faults: inj, Metrics: collector})
	if err != nil {
		t.Fatal(err)
	}
	defer jrnl.Close()

	const n = 6
	var logged int
	sum := Summarize(v.ValidateFleet(context.Background(), feedFleet(t, n, 0.5), FleetOptions{
		Workers: 2,
		Journal: jrnl,
		Logf:    func(string, ...any) { logged++ },
	}))
	if sum.Scanned != n || sum.Errors != 0 {
		t.Fatalf("summary = %+v: journal degradation must not fail scans", sum)
	}
	if sum.JournalDegraded != n {
		t.Errorf("JournalDegraded = %d, want %d (every append failed)", sum.JournalDegraded, n)
	}
	if !strings.Contains(sum.String(), fmt.Sprintf("journal_degraded=%d", n)) {
		t.Errorf("summary digest %q missing journal_degraded=%d", sum.String(), n)
	}
	if logged != 1 {
		t.Errorf("operator log fired %d times, want exactly 1 per run", logged)
	}
	if !jrnl.Degraded() {
		t.Error("journal not degraded after ENOSPC appends")
	}

	var buf bytes.Buffer
	if err := collector.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		fmt.Sprintf("configvalidator_journal_append_errors_total %d", n),
		"configvalidator_journal_degraded 1",
		"configvalidator_journal_reprobes_total 0",
		"configvalidator_merge_stalls_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	snap := collector.Snapshot()
	if snap.JournalAppendErrors != n || !snap.JournalDegraded {
		t.Errorf("snapshot journal counters = append_errors=%d degraded=%v, want %d/true",
			snap.JournalAppendErrors, snap.JournalDegraded, n)
	}
}
