package configvalidator

import (
	"math/rand"
	"strings"
	"testing"

	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
)

// TestNormalizationInvariance is a metamorphic test of the paper's central
// architectural claim: rules evaluate against *normalized* configuration,
// so semantically neutral formatting changes — comments, blank lines,
// horizontal whitespace — must not change any verdict.
func TestNormalizationInvariance(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2017))
	for iter := 0; iter < 10; iter++ {
		host, _ := fixtures.SystemHost("inv", fixtures.Profile{Seed: int64(iter), MisconfigRate: 0.4})
		baseline, err := v.Validate(host)
		if err != nil {
			t.Fatal(err)
		}

		mangled := entity.NewMem("inv", entity.TypeHost)
		for _, path := range host.Files() {
			content, readErr := host.ReadFile(path)
			if readErr != nil {
				t.Fatal(readErr)
			}
			fi, statErr := host.Stat(path)
			if statErr != nil {
				t.Fatal(statErr)
			}
			mangled.AddFile(path, []byte(mangle(r, string(content))),
				entity.WithMode(fi.Mode), entity.WithOwner(fi.UID, fi.GID))
		}
		db, err := host.Packages()
		if err != nil {
			t.Fatal(err)
		}
		mangled.SetPackages(db.All())
		for _, f := range host.Features() {
			out, featErr := host.RunFeature(f)
			if featErr != nil {
				t.Fatal(featErr)
			}
			mangled.SetFeature(f, out)
		}

		after, err := v.Validate(mangled)
		if err != nil {
			t.Fatal(err)
		}
		if len(baseline.Results) != len(after.Results) {
			t.Fatalf("iter %d: result counts differ: %d vs %d", iter, len(baseline.Results), len(after.Results))
		}
		for i := range baseline.Results {
			b, a := baseline.Results[i], after.Results[i]
			if b.Status != a.Status || ruleName(b) != ruleName(a) {
				t.Errorf("iter %d: verdict changed under reformatting: %s %v -> %s %v (%s)",
					iter, ruleName(b), b.Status, ruleName(a), a.Status, a.Detail)
			}
		}
	}
}

// mangle applies semantically neutral edits: comment lines, blank lines,
// and horizontal-whitespace padding around simple key/value separators.
// It never touches line content itself beyond leading/trailing space on
// formats where that is neutral.
func mangle(r *rand.Rand, content string) string {
	lines := strings.Split(content, "\n")
	var out []string
	for _, line := range lines {
		// Random comment/blank insertions between lines.
		switch r.Intn(4) {
		case 0:
			out = append(out, "# injected comment "+strings.Repeat("x", r.Intn(5)))
		case 1:
			out = append(out, "")
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func ruleName(r *Result) string {
	if r.Rule == nil {
		return "(parse:" + r.File + ")"
	}
	return r.Rule.Name
}
