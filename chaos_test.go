package configvalidator

// Chaos acceptance suite: a 50-entity fleet scanned with deterministic
// faults armed in three pipeline layers — crawler reads, lens parsing,
// and rule evaluation — plus one entity-access (walk) failure. The run
// must complete with zero crashes, every injected fault must surface as
// either a Degraded finding or a classified FleetResult.Err, and entities
// the injector never touched must produce byte-identical reports to a
// fault-free baseline.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
)

const chaosFleetSize = 50

// chaosEntity builds the i-th fleet member. Content varies per index so
// byte-identical report comparison is meaningful, not vacuous.
func chaosEntity(i int) Entity {
	m := entity.NewMem(fmt.Sprintf("chaos-host-%02d", i), entity.TypeHost)
	root := "no"
	if i%3 == 0 {
		root = "yes"
	}
	m.AddFile("/etc/ssh/sshd_config", []byte(fmt.Sprintf(
		"Port %d\nPermitRootLogin %s\nProtocol 2\nPermitEmptyPasswords no\n", 2200+i, root)))
	m.AddFile("/etc/nginx/nginx.conf", []byte(fmt.Sprintf(
		"user nginx;\nhttp {\n    server_tokens off;\n    keepalive_timeout %d;\n}\n", 30+i)))
	return m
}

func reportJSON(t *testing.T, rep *Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rep, OutputOptions{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChaosFleetGracefulDegradation(t *testing.T) {
	// Fault-free baseline, one report per entity.
	baselineV, err := New()
	if err != nil {
		t.Fatal(err)
	}
	baseline := make(map[string][]byte, chaosFleetSize)
	for i := 0; i < chaosFleetSize; i++ {
		ent := chaosEntity(i)
		rep, err := baselineV.Validate(ent)
		if err != nil {
			t.Fatalf("baseline validate %s: %v", ent.Name(), err)
		}
		if len(rep.Degraded()) != 0 {
			t.Fatalf("baseline scan of %s degraded: %+v", ent.Name(), rep.Degraded()[0])
		}
		baseline[ent.Name()] = reportJSON(t, rep)
	}

	// Chaos run: faults in three layers plus one entity-access failure.
	// The walk rule fires on the globally first walk call, which is by
	// construction the first pipeline activity of whichever scan reaches
	// it — so exactly one entity fails entity-level with no other faults
	// consumed by its aborted scan, and the reconciliation below is exact.
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpWalk, Nth: 1, Kind: faults.KindError, Msg: "layer store unreachable"},
		faults.Rule{Op: faults.OpRead, Path: "sshd_config", Every: 3, Times: 5, Kind: faults.KindError, Msg: "disk read failed"},
		faults.Rule{Op: faults.OpParse, Path: "nginx.conf", Every: 4, Times: 4, Kind: faults.KindPanic},
		faults.Rule{Op: faults.OpEval, Path: "sshd/", Every: 7, Times: 8, Kind: faults.KindError, Msg: "evaluator wedged"},
	)
	collector := NewCollector()
	chaosV, err := New(WithFaults(inj), WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Entity)
	go func() {
		defer close(ch)
		for i := 0; i < chaosFleetSize; i++ {
			ch <- chaosEntity(i)
		}
	}()
	var results []FleetResult
	for res := range chaosV.ValidateFleet(context.Background(), ch, FleetOptions{Workers: 8}) {
		results = append(results, res)
	}
	if len(results) != chaosFleetSize {
		t.Fatalf("fleet returned %d results, want %d", len(results), chaosFleetSize)
	}

	// Zero crashes: every result is a report or a classified error, and
	// every error traces back to the injector, not to a real failure.
	var scanErrs int
	var degradedTotal int64
	layers := map[string]int{"read": 0, "parse": 0, "eval": 0}
	var clean, compared int
	for _, res := range results {
		if res.Err != nil {
			scanErrs++
			if !errors.Is(res.Err, faults.ErrInjected) {
				t.Errorf("scan error not classified as injected: %v", res.Err)
			}
			var pe *PanicError
			if errors.As(res.Err, &pe) {
				t.Errorf("injected fault escaped as panic: %v", res.Err)
			}
			continue
		}
		degraded := res.Report.Degraded()
		degradedTotal += int64(len(degraded))
		for _, d := range degraded {
			switch {
			case strings.Contains(d.Message, "crawler: read"):
				layers["read"]++
			case strings.Contains(d.Message, "read/parse panicked"):
				layers["parse"]++
			case strings.Contains(d.Message, "evaluator wedged"):
				layers["eval"]++
			default:
				t.Errorf("unattributed degraded finding: %q", d.Message)
			}
		}
		if len(degraded) == 0 {
			clean++
			want, ok := baseline[res.Report.EntityName]
			if !ok {
				t.Fatalf("unknown entity %q in fleet results", res.Report.EntityName)
			}
			if got := reportJSON(t, res.Report); !bytes.Equal(got, want) {
				t.Errorf("non-faulted entity %s: chaos report differs from fault-free baseline", res.Report.EntityName)
			}
			compared++
		}
	}
	if scanErrs != 1 {
		t.Errorf("scan errors = %d, want exactly 1 (the walk fault)", scanErrs)
	}
	for layer, n := range layers {
		if n == 0 {
			t.Errorf("no degraded findings surfaced from the %s layer", layer)
		}
	}
	if compared == 0 {
		t.Error("no clean entities left to compare against the baseline")
	}

	// Exact reconciliation: every injected fault is accounted for — one
	// walk fault became the scan error, the rest are degraded findings.
	if got := inj.Injected(); got != degradedTotal+1 {
		t.Errorf("injected %d faults, surfaced %d degraded findings + 1 scan error", got, degradedTotal)
	}

	// Telemetry agrees: degraded results counted, in-flight gauge drained.
	snap := collector.Snapshot()
	if got := snap.ResultsByStatus[StatusDegraded]; got != degradedTotal {
		t.Errorf("telemetry degraded = %d, want %d", got, degradedTotal)
	}
	if snap.InFlightScans != 0 {
		t.Errorf("in-flight gauge = %d after fleet drained, want 0", snap.InFlightScans)
	}

	// Summarize sees the same world.
	resend := make(chan FleetResult, len(results))
	for _, r := range results {
		resend <- r
	}
	close(resend)
	sum := Summarize(resend)
	if sum.Errors != scanErrs || sum.Scanned != chaosFleetSize-scanErrs {
		t.Errorf("summary scanned=%d errors=%d, want %d/%d", sum.Scanned, sum.Errors, chaosFleetSize-scanErrs, scanErrs)
	}
	if int64(sum.ByStatus[StatusDegraded]) != degradedTotal {
		t.Errorf("summary degraded = %d, want %d", sum.ByStatus[StatusDegraded], degradedTotal)
	}
	if sum.EntitiesDegraded != chaosFleetSize-scanErrs-clean {
		t.Errorf("summary entities_degraded = %d, want %d", sum.EntitiesDegraded, chaosFleetSize-scanErrs-clean)
	}
	if !strings.Contains(sum.String(), "entities_degraded=") {
		t.Errorf("summary digest missing degraded field: %s", sum.String())
	}
}

// TestChaosFleetParallelEvaluation re-runs the fault-injected fleet drill
// with intra-entity parallelism and a shared parse cache armed: injected
// faults — including panics raised inside worker goroutines — must still
// surface as degraded findings with exact reconciliation, never as
// crashes, and untouched entities must match a fault-free serial baseline
// byte for byte. Unlike the serial drill this one injects no walk fault:
// with entries prepared concurrently, an entity-level abort would discard
// sibling findings whose faults were already consumed, so only
// read/parse/eval faults (which each surface in some report) keep the
// accounting exact. Runs under -race in CI (scripts/ci.sh).
func TestChaosFleetParallelEvaluation(t *testing.T) {
	baselineV, err := New()
	if err != nil {
		t.Fatal(err)
	}
	baseline := make(map[string][]byte, chaosFleetSize)
	for i := 0; i < chaosFleetSize; i++ {
		ent := chaosEntity(i)
		rep, err := baselineV.Validate(ent)
		if err != nil {
			t.Fatalf("baseline validate %s: %v", ent.Name(), err)
		}
		baseline[ent.Name()] = reportJSON(t, rep)
	}

	inj := faults.MustNew(
		faults.Rule{Op: faults.OpRead, Path: "sshd_config", Every: 3, Times: 5, Kind: faults.KindError, Msg: "disk read failed"},
		faults.Rule{Op: faults.OpParse, Path: "nginx.conf", Every: 4, Times: 4, Kind: faults.KindPanic},
		faults.Rule{Op: faults.OpEval, Path: "sshd/", Every: 7, Times: 8, Kind: faults.KindError, Msg: "evaluator wedged"},
		faults.Rule{Op: faults.OpEval, Path: "nginx/", Every: 5, Times: 6, Kind: faults.KindPanic},
	)
	chaosV, err := New(
		WithFaults(inj),
		WithParallelism(8),
		WithParseCache(NewParseCache(0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Entity)
	go func() {
		defer close(ch)
		for i := 0; i < chaosFleetSize; i++ {
			ch <- chaosEntity(i)
		}
	}()
	var results []FleetResult
	for res := range chaosV.ValidateFleet(context.Background(), ch, FleetOptions{Workers: 4}) {
		results = append(results, res)
	}
	if len(results) != chaosFleetSize {
		t.Fatalf("fleet returned %d results, want %d", len(results), chaosFleetSize)
	}

	var degradedTotal int64
	layers := map[string]int{"read": 0, "parse": 0, "eval": 0, "eval-panic": 0}
	var compared int
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("parallel chaos scan errored (faults must degrade, not abort): %v", res.Err)
		}
		degraded := res.Report.Degraded()
		degradedTotal += int64(len(degraded))
		for _, d := range degraded {
			switch {
			case strings.Contains(d.Message, "crawler: read"):
				layers["read"]++
			case strings.Contains(d.Message, "read/parse panicked"):
				layers["parse"]++
			case strings.Contains(d.Message, "evaluator wedged"):
				layers["eval"]++
			case strings.Contains(d.Message, "rule evaluation panicked"):
				layers["eval-panic"]++
			default:
				t.Errorf("unattributed degraded finding: %q", d.Message)
			}
		}
		if len(degraded) == 0 {
			if got := reportJSON(t, res.Report); !bytes.Equal(got, baseline[res.Report.EntityName]) {
				t.Errorf("non-faulted entity %s: parallel cached report differs from serial fault-free baseline", res.Report.EntityName)
			}
			compared++
		}
	}
	for layer, n := range layers {
		if n == 0 {
			t.Errorf("no degraded findings surfaced from the %s layer", layer)
		}
	}
	if compared == 0 {
		t.Error("no clean entities left to compare against the baseline")
	}
	// Exact reconciliation: with no entity-level fault armed, every
	// injection is exactly one degraded finding in exactly one report.
	if got := inj.Injected(); got != degradedTotal {
		t.Errorf("injected %d faults, surfaced %d degraded findings", got, degradedTotal)
	}
	if stats := chaosV.ParseCacheStats(); stats.Hits+stats.Misses == 0 {
		t.Error("parse cache saw no traffic during the parallel chaos run")
	}
}

// TestChaosTransientReadRetriesToClean shows the degradation and retry
// policies composing: a transient *walk* fault aborts the first attempt
// entity-level, the fleet retries, and the second attempt comes back
// clean — no degraded findings, no error.
func TestChaosTransientWalkRetriesToClean(t *testing.T) {
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpWalk, Nth: 1, Kind: faults.KindTransient, Msg: "backend briefly away"},
	)
	v, err := New(WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	ch := sendEntities(chaosEntity(1))
	res := <-v.ValidateFleet(context.Background(), ch, FleetOptions{
		Workers: 1, Retries: 2, RetryBackoff: time.Millisecond,
	})
	if res.Err != nil {
		t.Fatalf("retry did not recover from transient walk fault: %v", res.Err)
	}
	if n := len(res.Report.Degraded()); n != 0 {
		t.Fatalf("recovered scan has %d degraded findings, want 0", n)
	}
	if inj.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", inj.Injected())
	}
}

// chaosFleet returns the first n chaos entities as a slice (for
// sendEntities).
func chaosFleet(n int) []Entity {
	ents := make([]Entity, n)
	for i := range ents {
		ents[i] = chaosEntity(i)
	}
	return ents
}

// summarizeSlice replays drained results through Summarize.
func summarizeSlice(results []FleetResult) FleetSummary {
	ch := make(chan FleetResult, len(results))
	for _, r := range results {
		ch <- r
	}
	close(ch)
	return Summarize(ch)
}

// appendTornRecord leaves the journal in the on-disk state a SIGKILL
// mid-append produces: a record header promising more payload bytes than
// follow it. Layout mirrors the pinned format ([len u32le][crc u32le]
// [payload]; see journal.TestFormatPinned).
func appendTornRecord(t *testing.T, path string) {
	t.Helper()
	payload := []byte(`{"entity":"chaos-host-torn","digest":"deadbeef"}`)
	var rec bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	rec.Write(hdr[:])
	rec.Write(payload)
	torn := rec.Bytes()[:rec.Len()-7]
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCrashDrillResume is the crash drill: a journaled fleet scan is
// "killed" after the Nth entity — the journal simply stops there, plus a
// torn half-record at the tail, exactly what dying mid-append leaves on
// disk. The re-run over the full fleet must recover the journal (truncate
// the torn tail, never abort), replay the N completed entities without
// re-scanning them, scan only the remainder, and produce per-entity
// reports and a summary digest byte-identical to an uninterrupted run's.
func TestChaosCrashDrillResume(t *testing.T) {
	const crashAt = 17

	// Uninterrupted baseline: per-entity reports and the summary line.
	cleanV, err := New()
	if err != nil {
		t.Fatal(err)
	}
	baseline := make(map[string][]byte, chaosFleetSize)
	var clean []FleetResult
	for res := range cleanV.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8}) {
		if res.Err != nil {
			t.Fatalf("clean scan of %s: %v", res.Entity, res.Err)
		}
		baseline[res.Entity] = reportJSON(t, res.Report)
		clean = append(clean, res)
	}
	cleanSummary := summarizeSlice(clean).String()

	// Crashed run: only the first crashAt entities complete, and the tail
	// then gains a torn half-record, as if the kill landed mid-append.
	// The journal handle is closed before the resumed run opens the path:
	// Open now enforces single-writer ownership with a process-death-
	// released flock, so the unclosed-handle variant of this drill can
	// only exist across real processes — which is exactly what
	// scripts/resume_smoke.sh exercises. The on-disk bytes here are
	// identical either way; recovery of the torn tail is unaffected.
	jpath := filepath.Join(t.TempDir(), "fleet.cvj")
	j1, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	crashV, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for res := range crashV.ValidateFleet(context.Background(), sendEntities(chaosFleet(crashAt)...), FleetOptions{Workers: 8, Journal: j1}) {
		if res.Err != nil {
			t.Fatalf("pre-crash scan of %s: %v", res.Entity, res.Err)
		}
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	appendTornRecord(t, jpath)

	// Resume: recovery must swallow the torn tail (one corrupt record,
	// truncated away) and index the crashAt completed entities.
	collector := NewCollector()
	j2, err := OpenJournal(jpath, JournalOptions{Metrics: collector})
	if err != nil {
		t.Fatalf("journal recovery aborted on torn tail: %v", err)
	}
	defer func() { _ = j2.Close() }()
	if st := j2.Stats(); st.Replayed != crashAt || st.CorruptRecords != 1 {
		t.Fatalf("recovered journal: replayed=%d corrupt=%d, want %d/1", st.Replayed, st.CorruptRecords, crashAt)
	}

	resumedNames := make(map[string]bool, crashAt)
	for i := 0; i < crashAt; i++ {
		resumedNames[chaosEntity(i).Name()] = true
	}
	resumeV, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	var resumed []FleetResult
	replayCount := 0
	for res := range resumeV.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j2}) {
		if res.Err != nil {
			t.Fatalf("resumed scan of %s: %v", res.Entity, res.Err)
		}
		if res.Resumed {
			replayCount++
			if !resumedNames[res.Entity] {
				t.Errorf("entity %s replayed but was never journaled", res.Entity)
			}
		} else if resumedNames[res.Entity] {
			t.Errorf("entity %s re-scanned despite a journaled completed record", res.Entity)
		}
		if got := reportJSON(t, res.Report); !bytes.Equal(got, baseline[res.Entity]) {
			t.Errorf("entity %s: resumed-run report differs from clean-run report", res.Entity)
		}
		resumed = append(resumed, res)
	}
	if len(resumed) != chaosFleetSize {
		t.Fatalf("resumed run returned %d results, want %d", len(resumed), chaosFleetSize)
	}
	if replayCount != crashAt {
		t.Errorf("replayed %d entities, want %d", replayCount, crashAt)
	}
	if got := collector.Snapshot().JournalSkippedEntities; got != crashAt {
		t.Errorf("journal_skipped_entities_total = %d, want %d", got, crashAt)
	}
	if got := summarizeSlice(resumed).String(); got != cleanSummary {
		t.Errorf("merged summary differs from clean run:\n  clean:   %s\n  resumed: %s", cleanSummary, got)
	}
	// Only the entities the crash lost were appended on resume.
	if st := j2.Stats(); st.Appends != chaosFleetSize-crashAt {
		t.Errorf("resume appended %d records, want %d", st.Appends, chaosFleetSize-crashAt)
	}
}

// TestChaosCrashDrillErrorRecordRescans pins the failed-scan half of the
// resume protocol: a scan that errors (here, an injected walk panic) is
// journaled as an audit-only error record, so an otherwise-complete run
// resumed under a healthy validator replays everything EXCEPT that
// entity, which gets the re-scan it needs.
func TestChaosCrashDrillErrorRecordRescans(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "fleet.cvj")
	j1, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.MustNew(faults.Rule{Op: faults.OpWalk, Nth: 1, Kind: faults.KindPanic})
	v1, err := New(WithFaults(inj))
	if err != nil {
		t.Fatal(err)
	}
	var failed string
	for res := range v1.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j1}) {
		if res.Err == nil {
			continue
		}
		if failed != "" {
			t.Fatalf("second scan failure %s (already had %s), want exactly one", res.Entity, failed)
		}
		failed = res.Entity
		var pe *PanicError
		if !errors.As(res.Err, &pe) {
			t.Errorf("injected walk panic not isolated as PanicError: %v", res.Err)
		}
	}
	if failed == "" {
		t.Fatal("no scan consumed the injected walk panic")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	collector := NewCollector()
	j2, err := OpenJournal(jpath, JournalOptions{Metrics: collector})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	v2, err := New(WithTelemetry(collector)) // fault-free: the re-scan succeeds
	if err != nil {
		t.Fatal(err)
	}
	for res := range v2.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j2}) {
		if res.Err != nil {
			t.Fatalf("resumed scan of %s: %v", res.Entity, res.Err)
		}
		if res.Entity == failed {
			if res.Resumed {
				t.Errorf("entity %s replayed its error record instead of re-scanning", failed)
			}
		} else if !res.Resumed {
			t.Errorf("entity %s re-scanned despite a journaled completed record", res.Entity)
		}
	}
	if got := collector.Snapshot().JournalSkippedEntities; got != chaosFleetSize-1 {
		t.Errorf("journal_skipped_entities_total = %d, want %d", got, chaosFleetSize-1)
	}
}

// TestValidateTargetUnknownClassified pins the ErrUnknownTarget sentinel
// the HTTP layer uses to keep caller mistakes out of breaker accounting.
func TestValidateTargetUnknownClassified(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	_, err = v.ValidateTarget(chaosEntity(0), "no-such-target")
	if !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("err = %v, want ErrUnknownTarget", err)
	}
}

// TestChaosDrillENOSPCByteIdentical is the disk-pressure acceptance drill:
// ENOSPC at every journal append point of a 50-entity fleet must not change
// a single finding. Per-entity reports are byte-identical to a clean run's,
// degradation is accounted exactly — all 50 results flagged, 50 append
// errors, zero scan errors — and a follow-up run over the same journal file
// resumes journaling once the disk recovers.
func TestChaosDrillENOSPCByteIdentical(t *testing.T) {
	cleanV, err := New()
	if err != nil {
		t.Fatal(err)
	}
	baseline := make(map[string][]byte, chaosFleetSize)
	var clean []FleetResult
	for res := range cleanV.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8}) {
		if res.Err != nil {
			t.Fatalf("clean scan of %s: %v", res.Entity, res.Err)
		}
		baseline[res.Entity] = reportJSON(t, res.Report)
		clean = append(clean, res)
	}
	cleanSummary := summarizeSlice(clean).String()

	// Degraded run: the disk is full for the entire scan.
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC})
	collector := NewCollector()
	jpath := filepath.Join(t.TempDir(), "fleet.cvj")
	j1, err := OpenJournal(jpath, JournalOptions{Faults: inj, Metrics: collector})
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	var all []FleetResult
	for res := range v.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j1}) {
		if res.Err != nil {
			t.Fatalf("degraded-run scan of %s errored: %v (disk pressure must not fail scans)", res.Entity, res.Err)
		}
		if !res.JournalDegraded {
			t.Errorf("result %s not flagged JournalDegraded", res.Entity)
		}
		if got := reportJSON(t, res.Report); !bytes.Equal(got, baseline[res.Entity]) {
			t.Errorf("entity %s: degraded-run report differs from clean-run report", res.Entity)
		}
		all = append(all, res)
	}
	if len(all) != chaosFleetSize {
		t.Fatalf("degraded run returned %d results, want %d", len(all), chaosFleetSize)
	}
	sum := summarizeSlice(all)
	if sum.JournalDegraded != chaosFleetSize {
		t.Errorf("summary journal_degraded = %d, want %d", sum.JournalDegraded, chaosFleetSize)
	}
	// Degradation accounted, everything else byte-identical to the clean run.
	sum.JournalDegraded = 0
	if got := sum.String(); got != cleanSummary {
		t.Errorf("degraded summary diverged from clean run beyond the degraded count:\n got: %s\nwant: %s", got, cleanSummary)
	}
	if st := j1.Stats(); st.Appends != 0 || st.AppendErrors != chaosFleetSize || !st.Degraded {
		t.Errorf("journal stats = %+v, want 0 appends, %d errors, degraded", st, chaosFleetSize)
	}
	snap := collector.Snapshot()
	if snap.JournalAppendErrors != chaosFleetSize {
		t.Errorf("journal_append_errors_total = %d, want %d", snap.JournalAppendErrors, chaosFleetSize)
	}
	if !snap.JournalDegraded {
		t.Error("journal_degraded gauge not set")
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// The disk recovers: the same journal file accepts a fault-free run and
	// journaling resumes in full.
	collector2 := NewCollector()
	j2, err := OpenJournal(jpath, JournalOptions{Metrics: collector2})
	if err != nil {
		t.Fatalf("reopen after disk pressure: %v", err)
	}
	defer func() { _ = j2.Close() }()
	v2, err := New(WithTelemetry(collector2))
	if err != nil {
		t.Fatal(err)
	}
	var second []FleetResult
	for res := range v2.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j2}) {
		if res.Err != nil {
			t.Fatalf("recovered-run scan of %s: %v", res.Entity, res.Err)
		}
		if res.JournalDegraded {
			t.Errorf("result %s flagged degraded on a healthy disk", res.Entity)
		}
		second = append(second, res)
	}
	if got := summarizeSlice(second); got.JournalDegraded != 0 {
		t.Errorf("recovered-run journal_degraded = %d, want 0", got.JournalDegraded)
	}
	if st := j2.Stats(); st.Appends != chaosFleetSize || st.Degraded {
		t.Errorf("recovered journal stats = %+v, want %d appends and healthy", st, chaosFleetSize)
	}
}

// TestChaosDrillENOSPCMidRunRecovery drills in-process recovery: only the
// first append hits ENOSPC, and with a tiny re-probe interval journaling
// resumes inside the same process lifetime — no reopen, no restart. The
// timing-independent invariant: every one of the 50 results either
// journaled or counted an append error, nothing vanished.
func TestChaosDrillENOSPCMidRunRecovery(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC, Times: 1})
	collector := NewCollector()
	jpath := filepath.Join(t.TempDir(), "fleet.cvj")
	j, err := OpenJournal(jpath, JournalOptions{
		Faults:          inj,
		Metrics:         collector,
		ReprobeInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := New(WithTelemetry(collector))
	if err != nil {
		t.Fatal(err)
	}
	degradedResults := 0
	for res := range v.ValidateFleet(context.Background(), sendEntities(chaosFleet(chaosFleetSize)...), FleetOptions{Workers: 8, Journal: j}) {
		if res.Err != nil {
			t.Fatalf("scan of %s errored under journal fault: %v", res.Entity, res.Err)
		}
		if res.JournalDegraded {
			degradedResults++
		}
	}
	st := j.Stats()
	if st.Appends+st.AppendErrors != chaosFleetSize {
		t.Errorf("append accounting leak: appends=%d + errors=%d != %d", st.Appends, st.AppendErrors, chaosFleetSize)
	}
	if st.AppendErrors == 0 {
		t.Error("injected fault never fired")
	}
	if int64(degradedResults) != st.AppendErrors {
		t.Errorf("degraded results = %d, append errors = %d; each failed append must flag exactly one result", degradedResults, st.AppendErrors)
	}

	// Whatever the scan's timing, the re-probe loop must resume journaling
	// promptly once the fault is exhausted.
	deadline := time.Now().Add(10 * time.Second)
	var aerr error
	for time.Now().Before(deadline) {
		if aerr = j.Append(JournalRecord{Entity: "drill-sentinel", Err: "sentinel"}); aerr == nil {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if aerr != nil {
		t.Fatalf("journal never recovered from a cleared fault: %v", aerr)
	}
	if j.Degraded() {
		t.Error("journal still reports degraded after a successful append")
	}
	snap := collector.Snapshot()
	if snap.JournalReprobes == 0 {
		t.Error("recovery happened but no re-probe was recorded")
	}
	if snap.JournalDegraded {
		t.Error("journal_degraded gauge still set after recovery")
	}
	appends := j.Stats().Appends
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing the degraded episode touched corrupts the file: a reopen
	// replays every successful append and only those.
	j2, err := OpenJournal(jpath, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if st := j2.Stats(); st.Replayed != appends || st.CorruptRecords != 0 {
		t.Errorf("replay = %+v, want %d clean records", st, appends)
	}
}
