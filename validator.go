// Package configvalidator is a declarative configuration-validation system
// for applications, systems, and cloud — a reproduction of ConfigValidator
// (Baset et al., Middleware Industry '17). Rules are written in the
// Configuration Validation Language (CVL), a YAML-based declarative
// language with five rule types (config tree, schema, path, script,
// composite), and are applied uniformly across heterogeneous entities:
// hosts, Docker images, running containers, cloud runtimes, and offline
// configuration frames.
//
// The top-level Validator wires the pipeline of the paper's Figure 1:
// config extraction (crawler) → data normalization (lenses) → rule engine →
// output processing.
//
//	v, err := configvalidator.New()                  // built-in 135-rule library
//	report, err := v.Validate(entityToScan)
//	configvalidator.WriteText(os.Stdout, report, configvalidator.OutputOptions{})
package configvalidator

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"configvalidator/internal/crawler"
	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
	"configvalidator/internal/journal"
	"configvalidator/internal/lens"
	"configvalidator/internal/output"
	"configvalidator/internal/remediate"
	"configvalidator/internal/rules"
	"configvalidator/internal/telemetry"
)

// Re-exported core types, so typical use needs only this package.
type (
	// Entity is a validation target: host, image, container, cloud, frame.
	Entity = entity.Entity
	// Report aggregates all rule results for one entity.
	Report = engine.Report
	// Result is one rule outcome.
	Result = engine.Result
	// Status is a rule outcome status (pass/fail/N-A/error).
	Status = engine.Status
	// Rule is a parsed CVL rule.
	Rule = cvl.Rule
	// Manifest describes which entities to validate with which rule files.
	Manifest = cvl.Manifest
	// FileReader resolves rule-file paths to content.
	FileReader = cvl.FileReader
	// OutputOptions control report rendering.
	OutputOptions = output.Options
	// Collector accumulates runtime metrics across scans and HTTP
	// requests; see WithTelemetry and the telemetry package.
	Collector = telemetry.Collector
	// MetricsSnapshot is a point-in-time copy of a Collector's counters.
	MetricsSnapshot = telemetry.Snapshot
	// PanicError is a recovered scan panic carrying the stack; fleet
	// scanning converts worker panics into FleetResult.Err of this type.
	PanicError = engine.PanicError
	// FaultInjector is a deterministic fault injector for chaos testing;
	// see WithFaults and the faults package.
	FaultInjector = faults.Injector
	// ParseCache is the fleet-scoped content-addressed parse cache; see
	// WithParseCache.
	ParseCache = crawler.ParseCache
	// ParseCacheStats is a point-in-time copy of a ParseCache's counters.
	ParseCacheStats = crawler.ParseCacheStats
	// Journal is the durable, replayable per-entity result log that makes
	// fleet scans crash-safe and resumable; see FleetOptions.Journal and
	// the journal package.
	Journal = journal.Journal
	// JournalOptions tune a journal (fsync policy, metrics sink).
	JournalOptions = journal.Options
	// JournalRecord is one journaled per-entity outcome.
	JournalRecord = journal.Record
	// JournalReport is the journaled form of a Report; JournalReport.Report
	// reconstructs a Report that renders byte-identically.
	JournalReport = journal.ReportRecord
	// JournalStats is a point-in-time copy of a journal's counters.
	JournalStats = journal.Stats
)

// ErrNotJournal reports an OpenJournal path holding a file that is not a
// configvalidator journal — recovery refuses to truncate what it does not
// own.
var ErrNotJournal = journal.ErrNotJournal

// OpenJournal creates or recovers the durable result journal at path.
// Recovery replays every valid record and truncates any torn or corrupt
// tail; it never fails on corruption, only on I/O errors or on a file that
// is not a journal (ErrNotJournal). Pass the collector from WithTelemetry
// as JournalOptions.Metrics to surface the journal counters.
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	return journal.Open(path, opts)
}

// NewJournalReport converts a report into its journaled form — what
// cvwatch appends to persist its drift baseline across restarts.
func NewJournalReport(rep *Report) *JournalReport { return journal.NewReportRecord(rep) }

// Status values, re-exported.
const (
	StatusPass          = engine.StatusPass
	StatusFail          = engine.StatusFail
	StatusNotApplicable = engine.StatusNotApplicable
	StatusError         = engine.StatusError
	// StatusDegraded marks a check whose input data was incomplete — an
	// unreadable or corrupt config file, a panicking lens or rule. The
	// scan completed; this one result cannot be trusted.
	StatusDegraded = engine.StatusDegraded
)

// DefaultParseCacheSize is the parse-cache capacity (in files) used when
// NewParseCache is given a non-positive value.
const DefaultParseCacheSize = crawler.DefaultParseCacheSize

// ErrUnknownTarget reports a ValidateTarget call naming a manifest entity
// that does not exist — a caller mistake, not a validation failure. The
// HTTP service uses it to separate client errors from server-side faults
// in its circuit-breaker accounting.
var ErrUnknownTarget = errors.New("unknown manifest entity")

// Validator is the configured validation pipeline. Rule files resolve
// through a shared memoizing source, so repeated scans (fleets, watchers)
// parse the rule library once.
type Validator struct {
	manifest  *cvl.Manifest
	reader    cvl.FileReader
	source    *engine.CachedSource
	engine    *engine.Engine
	telemetry *telemetry.Collector
	faults    *faults.Injector
	cache     *crawler.ParseCache

	// digestMu guards ruleFP, the memoized per-rule-file content hashes
	// ConfigDigest folds into every entity digest.
	digestMu sync.Mutex
	ruleFP   map[string]string
}

// Option customizes a Validator.
type Option func(*config)

type config struct {
	manifest    *cvl.Manifest
	reader      cvl.FileReader
	registry    *lens.Registry
	crawlOpt    crawler.Options
	extended    bool
	telemetry   *telemetry.Collector
	faults      *faults.Injector
	parseCache  *crawler.ParseCache
	parallelism int
}

// WithManifest uses a custom manifest and rule-file reader instead of the
// built-in rule library.
func WithManifest(m *cvl.Manifest, reader cvl.FileReader) Option {
	return func(c *config) {
		c.manifest = m
		c.reader = reader
	}
}

// WithExtendedRules selects the built-in library plus the extended rule
// pack (passwd, group, limits, cron — 147 rules over 15 targets), the
// post-paper expansion described in DESIGN.md.
func WithExtendedRules() Option {
	return func(c *config) { c.extended = true }
}

// WithLensRegistry replaces the default lens registry.
func WithLensRegistry(r *lens.Registry) Option {
	return func(c *config) { c.registry = r }
}

// WithCrawlerOptions tunes configuration extraction.
func WithCrawlerOptions(opts crawler.Options) Option {
	return func(c *config) { c.crawlOpt = opts }
}

// WithTelemetry attaches a metrics collector: every Validate /
// ValidateTarget call (and therefore every fleet scan and HTTP
// validation request routed through this Validator) records its latency
// and result counts into it. Share one collector across a Validator and
// the HTTP server to get a single operational view; read it with
// Collector.Snapshot or render it with Collector.WritePrometheus.
func WithTelemetry(c *telemetry.Collector) Option {
	return func(cfg *config) { cfg.telemetry = c }
}

// NewCollector creates an empty metrics collector for WithTelemetry.
func NewCollector() *Collector { return telemetry.NewCollector() }

// WithFaults arms deterministic fault injection across the pipeline:
// entity access (read/walk/stat/feature), lens parsing, and rule
// evaluation. Chaos runs build the injector from the CV_FAULTS spec via
// FaultsFromEnv; tests construct one programmatically. A nil injector is
// inert, and with injection disabled the pipeline pays only nil checks —
// no wrapping, no allocations.
func WithFaults(inj *FaultInjector) Option {
	return func(c *config) { c.faults = inj }
}

// WithParallelism bounds the engine's intra-entity worker pool: manifest
// entries are prepared concurrently and independent non-composite rules
// evaluate concurrently, with results gathered into the same deterministic
// report order as a serial run. 0 (the default) uses GOMAXPROCS; 1 keeps
// the serial path. This composes with FleetOptions.Workers: fleet workers
// parallelize across entities, this option parallelizes within one.
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = n }
}

// WithParseCache attaches a content-addressed parse cache: identical file
// content (same lens, path, and SHA-256) parses once across every entity
// scanned through this Validator — the fleet-dedup observation that images
// overwhelmingly share /etc payloads. When telemetry is also attached, the
// cache reports hit/miss/eviction counters through it. Share one cache
// across Validators to widen the dedup scope.
func WithParseCache(cache *ParseCache) Option {
	return func(c *config) { c.parseCache = cache }
}

// NewParseCache creates a parse cache for WithParseCache holding at most
// capacity parsed files (<= 0 uses a 4096-entry default), evicting LRU.
func NewParseCache(capacity int) *ParseCache { return crawler.NewParseCache(capacity) }

// ParseFaults builds a fault injector from a CV_FAULTS-style spec string.
func ParseFaults(spec string) (*FaultInjector, error) { return faults.Parse(spec) }

// FaultsFromEnv builds a fault injector from the CV_FAULTS environment
// variable; unset returns (nil, nil) and injection stays disabled.
func FaultsFromEnv() (*FaultInjector, error) { return faults.FromEnv() }

// New builds a Validator. With no options it loads the built-in rule
// library: 135 rules across the 11 targets of the paper's Table 1.
func New(opts ...Option) (*Validator, error) {
	var c config
	for _, o := range opts {
		o(&c)
	}
	if c.manifest == nil {
		var (
			m   *cvl.Manifest
			err error
		)
		if c.extended {
			m, err = rules.ExtendedManifest()
			c.reader = rules.ExtendedReader()
		} else {
			m, err = rules.Manifest()
			c.reader = rules.Reader()
		}
		if err != nil {
			return nil, fmt.Errorf("configvalidator: built-in manifest: %w", err)
		}
		c.manifest = m
	}
	if c.reader == nil {
		return nil, fmt.Errorf("configvalidator: a manifest requires a rule-file reader")
	}
	c.crawlOpt.Faults = c.faults
	if c.parseCache != nil {
		if c.telemetry != nil {
			c.parseCache.SetMetrics(c.telemetry)
		}
		c.crawlOpt.Cache = c.parseCache
	}
	engOpts := engine.Options{Parallelism: c.parallelism}
	if c.parseCache != nil {
		// With a parse cache, identical file content across entities
		// shares one parsed Result — which also makes tree/schema rule
		// verdicts content-addressable, so turn on the engine's verdict
		// memo (pure overhead without the cache).
		engOpts.EvalCacheSize = -1
	}
	eng := engine.NewWithOptions(crawler.New(c.registry, c.crawlOpt), engOpts)
	eng.SetFaults(c.faults)
	return &Validator{
		manifest:  c.manifest,
		reader:    c.reader,
		source:    engine.NewCachedSource(c.reader),
		engine:    eng,
		telemetry: c.telemetry,
		faults:    c.faults,
		cache:     c.parseCache,
	}, nil
}

// ParseCacheStats copies the attached parse cache's counters; the zero
// value is returned when the Validator was built without WithParseCache.
func (v *Validator) ParseCacheStats() ParseCacheStats { return v.cache.Stats() }

// Telemetry returns the attached metrics collector, or nil when the
// Validator was built without WithTelemetry.
func (v *Validator) Telemetry() *Collector { return v.telemetry }

// Faults returns the attached fault injector, or nil when the Validator
// was built without WithFaults. The shard-scan server uses it to arm the
// same CV_FAULTS spec on worker journal segments (op segment-write).
func (v *Validator) Faults() *FaultInjector { return v.faults }

// record instruments one terminal validation outcome. Collector methods
// are nil-safe, so un-instrumented validators pay only a nil check.
func (v *Validator) record(start time.Time, rep *Report, err error) {
	if v.telemetry == nil {
		return
	}
	if err != nil {
		v.telemetry.ScanFailed(time.Since(start))
		return
	}
	v.telemetry.ScanDone(time.Since(start), rep.Counts())
}

// Validate runs every enabled manifest entry (including composite rules)
// against the entity.
func (v *Validator) Validate(e Entity) (*Report, error) {
	start := time.Now()
	v.telemetry.ScanStarted()
	defer v.telemetry.ScanEnded()
	rep, err := v.engine.ValidateWithSource(faults.Wrap(e, v.faults), v.manifest, v.source)
	v.record(start, rep, err)
	return rep, err
}

// ValidateTarget runs only the named manifest entity (e.g. "sshd"). An
// unknown target returns an error wrapping ErrUnknownTarget.
func (v *Validator) ValidateTarget(e Entity, target string) (*Report, error) {
	start := time.Now()
	v.telemetry.ScanStarted()
	defer v.telemetry.ScanEnded()
	entry, ok := v.manifest.Entry(target)
	if !ok {
		err := fmt.Errorf("configvalidator: %w: %q", ErrUnknownTarget, target)
		v.record(start, nil, err)
		return nil, err
	}
	sub := &cvl.Manifest{Entries: []*cvl.ManifestEntry{entry}}
	rep, err := v.engine.ValidateWithSource(faults.Wrap(e, v.faults), sub, v.source)
	v.record(start, rep, err)
	return rep, err
}

// ValidateRules applies an explicit rule list with explicit search paths —
// no manifest, no composite rules.
func (v *Validator) ValidateRules(e Entity, ruleList []*Rule, searchPaths []string) (*Report, error) {
	return v.engine.ValidateRules(faults.Wrap(e, v.faults), ruleList, searchPaths)
}

// Targets lists the built-in target names (Table 1).
func Targets() []string {
	ts := rules.Targets()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return names
}

// LoadRules resolves a rule file (with inheritance) through the reader.
func LoadRules(reader FileReader, path string) ([]*Rule, error) {
	return cvl.ResolveRules(reader, path)
}

// BuiltinRules loads the built-in rules for one target.
func BuiltinRules(target string) ([]*Rule, error) {
	return rules.Load(target)
}

// WithRuntimePlugins wraps an entity with the built-in crawler feature
// plugins, which synthesize runtime state (mysql.ssl, sysctl.runtime) from
// configuration files when the entity cannot answer live queries — the
// paper's application-specific crawler plugins. Native features always win.
func WithRuntimePlugins(e Entity) Entity {
	return crawler.WithPlugins(e, crawler.DefaultPlugins()...)
}

// Transient reports whether a scan error is likely retryable (explicitly
// marked, deadline expiry, or a timeout/temporary network condition).
// ValidateFleet consults it before re-scanning under FleetOptions.Retries.
func Transient(err error) bool { return engine.Transient(err) }

// MarkTransient wraps err so Transient reports it retryable — for entity
// implementations and crawler plugins whose failures are worth retrying.
func MarkTransient(err error) error { return engine.MarkTransient(err) }

// Proposal is a suggested configuration edit for a failing check.
type Proposal = remediate.Proposal

// ProposeFixes builds remediation proposals for every remediable failure
// in the report. Only config-tree rules with an unambiguous preferred
// value and a write-back-capable lens produce proposals.
func (v *Validator) ProposeFixes(e Entity, rep *Report) []*Proposal {
	return remediate.New(nil).ProposeAll(e, rep)
}

// WriteText renders a report as human-readable text.
func WriteText(w io.Writer, rep *Report, opts OutputOptions) error {
	return output.WriteText(w, rep, opts)
}

// WriteJSON renders a report as JSON.
func WriteJSON(w io.Writer, rep *Report, opts OutputOptions) error {
	return output.WriteJSON(w, rep, opts)
}

// WriteJUnit renders a report as JUnit XML, for CI-pipeline integration.
func WriteJUnit(w io.Writer, rep *Report, opts OutputOptions) error {
	return output.WriteJUnit(w, rep, opts)
}

// WriteComplianceSummary renders a per-tag pass/fail table across reports.
func WriteComplianceSummary(w io.Writer, reports []*Report) error {
	return output.WriteComplianceSummary(w, reports)
}
