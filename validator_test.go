package configvalidator

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/cloudsim"
	"configvalidator/internal/cvl"
	"configvalidator/internal/dockersim"
	"configvalidator/internal/engine"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
)

// newRunningContainer starts a container for the image in a fresh registry.
func newRunningContainer(t *testing.T, img *dockersim.Image) *dockersim.Container {
	t.Helper()
	reg := dockersim.NewRegistry()
	reg.Push(img)
	c, err := reg.Run("c-1", img.Ref())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPipelineAcrossEntityClasses is the Figure-1 integration test (E4):
// the same validator scans a host, an image, a container, and a cloud.
func TestPipelineAcrossEntityClasses(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("host", func(t *testing.T) {
		host, _ := fixtures.UbuntuHost("host-1", fixtures.Profile{Seed: 1})
		rep, err := v.Validate(host)
		if err != nil {
			t.Fatal(err)
		}
		assertNoFailures(t, rep)
		if len(rep.Results) < 100 {
			t.Errorf("host results = %d, expected the bulk of the 135-rule library", len(rep.Results))
		}
	})

	t.Run("image", func(t *testing.T) {
		img, _ := fixtures.Image("web", "v1", fixtures.Profile{Seed: 2})
		rep, err := v.Validate(img.Entity())
		if err != nil {
			t.Fatal(err)
		}
		assertNoFailures(t, rep)
		if rep.EntityType != "image" {
			t.Errorf("entity type = %s", rep.EntityType)
		}
	})

	t.Run("container", func(t *testing.T) {
		img, _ := fixtures.Image("web", "v1", fixtures.Profile{Seed: 3})
		rep, err := v.Validate(newRunningContainer(t, img).Entity())
		if err != nil {
			t.Fatal(err)
		}
		assertNoFailures(t, rep)
		if rep.EntityType != "container" {
			t.Errorf("entity type = %s", rep.EntityType)
		}
	})

	t.Run("cloud", func(t *testing.T) {
		cloud, _ := fixtures.Cloud("prod", fixtures.Profile{Seed: 4})
		srv := httptest.NewServer(cloud.Handler())
		defer srv.Close()
		ent, err := cloudsim.NewClient(srv.URL).Crawl("prod")
		if err != nil {
			t.Fatal(err)
		}
		rep, err := v.ValidateTarget(ent, "openstack")
		if err != nil {
			t.Fatal(err)
		}
		assertNoFailures(t, rep)
		if len(rep.Results) != 8 {
			t.Errorf("openstack results = %d, want 8", len(rep.Results))
		}
	})
}

func TestMisconfiguredEntitiesFail(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	host, injected := fixtures.UbuntuHost("dirty", fixtures.Profile{Seed: 9, MisconfigRate: 0.5})
	rep, err := v.Validate(host)
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Counts()[StatusFail]
	if fails == 0 {
		t.Fatalf("no failures despite %d injections", len(injected))
	}
	// Every injected misconfiguration concerns a real target; the failure
	// count should be in the same ballpark (some injections affect rules
	// with overlapping coverage).
	if fails < len(injected)/2 {
		t.Errorf("failures = %d, injections = %d", fails, len(injected))
	}
}

// TestFrameEquivalence is the touchless-validation property (E8b): a scan
// of a frame equals a scan of the live entity it captured.
func TestFrameEquivalence(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.UbuntuHost("live", fixtures.Profile{Seed: 21, MisconfigRate: 0.4})
	liveRep, err := v.Validate(host)
	if err != nil {
		t.Fatal(err)
	}

	frame, err := frames.Capture(host, nil, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := frame.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := frames.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	frameRep, err := v.Validate(back.Entity())
	if err != nil {
		t.Fatal(err)
	}

	if len(liveRep.Results) != len(frameRep.Results) {
		t.Fatalf("result counts differ: live %d, frame %d", len(liveRep.Results), len(frameRep.Results))
	}
	for i := range liveRep.Results {
		l, f := liveRep.Results[i], frameRep.Results[i]
		if l.Status != f.Status || ruleKey(l) != ruleKey(f) {
			t.Errorf("result %d differs: live [%v %s] vs frame [%v %s]",
				i, l.Status, ruleKey(l), f.Status, ruleKey(f))
		}
	}
}

func TestValidateTargetUnknown(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.UbuntuHost("h", fixtures.Profile{Seed: 1})
	if _, err := v.ValidateTarget(host, "kubernetes"); err == nil {
		t.Error("unknown target accepted")
	}
}

func TestCustomManifest(t *testing.T) {
	files := map[string]string{
		"m.yaml": "sshd:\n  config_search_paths: [/etc/ssh]\n  cvl_file: r.yaml\n",
		"r.yaml": "config_name: PermitRootLogin\nconfig_path: [\"\"]\npreferred_value: [\"no\"]\n",
	}
	m, err := cvl.ParseManifest("m.yaml", []byte(files["m.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(p string) ([]byte, error) { return []byte(files[p]), nil }
	v, err := New(WithManifest(m, read))
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.SystemHost("h", fixtures.Profile{Seed: 1})
	rep, err := v.Validate(host)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Status != StatusPass {
		t.Errorf("custom manifest results = %+v", rep.Results)
	}
}

func TestManifestWithoutReaderRejected(t *testing.T) {
	if _, err := New(WithManifest(&cvl.Manifest{}, nil)); err == nil {
		t.Error("manifest without reader accepted")
	}
}

func TestOutputHelpers(t *testing.T) {
	v, err := New()
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.UbuntuHost("h", fixtures.Profile{Seed: 31, MisconfigRate: 0.5})
	rep, err := v.Validate(host)
	if err != nil {
		t.Fatal(err)
	}
	var text, js, summary bytes.Buffer
	if err := WriteText(&text, rep, OutputOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "Entity: h (host)") {
		t.Errorf("text output:\n%s", text.String())
	}
	if err := WriteJSON(&js, rep, OutputOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"entity": "h"`) {
		t.Error("json output missing entity")
	}
	if err := WriteComplianceSummary(&summary, []*Report{rep}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "#cis") {
		t.Error("summary missing #cis")
	}
}

func TestBuiltinRulesAndTargets(t *testing.T) {
	if got := len(Targets()); got != 11 {
		t.Errorf("targets = %d", got)
	}
	rs, err := BuiltinRules("sshd")
	if err != nil || len(rs) != 18 {
		t.Errorf("sshd rules = %d, %v", len(rs), err)
	}
	if _, err := BuiltinRules("nope"); err == nil {
		t.Error("unknown target loaded")
	}
}

func assertNoFailures(t *testing.T, rep *Report) {
	t.Helper()
	for _, r := range rep.Results {
		if r.Status == StatusFail || r.Status == StatusError {
			t.Errorf("[%v] %s/%s: %s (%s)", r.Status, r.ManifestEntity, ruleKey(r), r.Message, r.Detail)
		}
	}
}

func ruleKey(r *engine.Result) string {
	if r.Rule == nil {
		return "(parse)"
	}
	return r.Rule.Name
}
