// Cloud validation: crawling runtime state over an HTTP API (paper §2.1.3).
//
// Starts a simulated OpenStack-like control plane, crawls its security
// groups, users, and identity configuration over the JSON API into virtual
// documents, and validates them with the built-in OSSG rules — the "cloud"
// entity class of Table 1.
//
//	go run ./examples/cloudscan
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"

	configvalidator "configvalidator"
	"configvalidator/internal/cloudsim"
)

func main() {
	// A control plane with some OSSG violations: plaintext identity
	// endpoints, a lingering bootstrap token, and a world-open SSH rule.
	cloud := cloudsim.New("prod-cloud")
	cloud.SetIdentityConfig(cloudsim.IdentityConfig{
		TLSEnabled:             false, // violation
		AdminTokenEnabled:      true,  // violation
		TokenExpirationSeconds: 3600,
		PasswordMinLength:      8, // violation (< 12)
	})
	cloud.AddSecurityGroup(cloudsim.SecurityGroup{
		ID: "sg-web", Name: "web", Project: "acme",
		Rules: []cloudsim.SecurityGroupRule{
			{Direction: "ingress", Protocol: "tcp", PortMin: 443, PortMax: 443, RemoteIPPrefix: "10.0.0.0/8"},
		},
	})
	cloud.AddSecurityGroup(cloudsim.SecurityGroup{
		ID: "sg-bastion", Name: "bastion", Project: "acme",
		Rules: []cloudsim.SecurityGroupRule{
			{Direction: "ingress", Protocol: "tcp", PortMin: 22, PortMax: 22, RemoteIPPrefix: "0.0.0.0/0"}, // violation
		},
	})
	cloud.AddUser(cloudsim.User{ID: "u-1", Name: "admin", Enabled: true, MFAEnabled: true})
	cloud.AddUser(cloudsim.User{ID: "u-2", Name: "intern", Enabled: true, MFAEnabled: false}) // violation
	cloud.AddInstance(cloudsim.Instance{ID: "i-1", Name: "web-1", Project: "acme", Status: "ACTIVE", SecurityGroups: []string{"sg-web"}})

	// Serve the control plane over HTTP and crawl it, exactly as the
	// production system queries cloud APIs.
	srv := httptest.NewServer(cloud.Handler())
	defer srv.Close()
	fmt.Printf("cloud API serving at %s\n", srv.URL)

	ent, err := cloudsim.NewClient(srv.URL).Crawl("prod-cloud")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d virtual documents\n\n", len(ent.Files()))

	v, err := configvalidator.New()
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateTarget(ent, "openstack")
	if err != nil {
		log.Fatal(err)
	}
	if err := configvalidator.WriteText(os.Stdout, report, configvalidator.OutputOptions{ShowPassing: true, Verbose: true}); err != nil {
		log.Fatal(err)
	}
}
