// Quickstart: write a CVL rule, build an entity, validate it.
//
// This example validates an sshd configuration with two hand-written CVL
// rules — the minimal end-to-end use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	configvalidator "configvalidator"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// Two CVL rules in the paper's Listing-6 style: one passes on the sample
// configuration below, one fails.
const sshdRules = `
config_name: PermitRootLogin
config_description: "Disable root login over SSH."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
matched_description: "Root login is disabled."
not_matched_preferred_value_description: "Root login is enabled!"
not_present_description: "PermitRootLogin missing; root login is enabled by default."
tags: ["#cis"]
---
config_name: PasswordAuthentication
config_description: "Require key-based authentication."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
matched_description: "Password authentication is disabled."
not_matched_preferred_value_description: "Password authentication is enabled."
not_present_description: "PasswordAuthentication missing; passwords accepted by default."
tags: ["#cis"]
`

const sampleConfig = `# /etc/ssh/sshd_config
Port 22
PermitRootLogin no
PasswordAuthentication yes
`

func main() {
	// 1. Parse the rules.
	ruleFile, err := cvl.ParseRuleFile("sshd.yaml", []byte(sshdRules))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build an entity to validate. In production this is a crawled
	// host, image, or container; here it is in-memory.
	host := entity.NewMem("quickstart-host", entity.TypeHost)
	host.AddFile("/etc/ssh/sshd_config", []byte(sampleConfig), entity.WithMode(0o600))

	// 3. Validate and print the report.
	v, err := configvalidator.New() // options unused for ValidateRules
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateRules(host, ruleFile.Rules, []string{"/etc/ssh"})
	if err != nil {
		log.Fatal(err)
	}
	if err := configvalidator.WriteText(os.Stdout, report, configvalidator.OutputOptions{ShowPassing: true}); err != nil {
		log.Fatal(err)
	}

	counts := report.Counts()
	fmt.Printf("\nquickstart: %d passed, %d failed\n",
		counts[configvalidator.StatusPass], counts[configvalidator.StatusFail])
}
