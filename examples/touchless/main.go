// Touchless validation as a service: the production deployment shape.
//
// The paper's system ran inside IBM Cloud's Vulnerability Advisor,
// validating entities "without requiring any local installation or remote
// access": a crawler captures a configuration frame where the entity
// lives, and the validation service evaluates the frame elsewhere. This
// example plays both sides in one process:
//
//  1. start the validation service (internal/server) on a local port,
//
//  2. capture a frame from a (misconfigured) host entity,
//
//  3. POST the frame and print the findings from the JSON report,
//
//  4. show that the service never touched the entity itself.
//
//     go run ./examples/touchless
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"configvalidator/internal/fixtures"
	"configvalidator/internal/frames"
	"configvalidator/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The validation service.
	svc, err := server.New(nil)
	if err != nil {
		return err
	}
	listener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = httpServer.Serve(listener) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpServer.Shutdown(ctx); err != nil {
			log.Printf("touchless: server shutdown: %v", err)
		}
	}()
	baseURL := "http://" + listener.Addr().String()
	fmt.Printf("validation service: %s\n", baseURL)

	// 2. The entity lives "far away"; only the crawler sees it.
	host, injected := fixtures.UbuntuHost("prod-web-17", fixtures.Profile{Seed: 99, MisconfigRate: 0.35})
	frame, err := frames.Capture(host, []string{"/etc", "/openstack"}, time.Now())
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if err := frame.Write(&body); err != nil {
		return err
	}
	fmt.Printf("captured frame: %d files, %d packages, %d injected misconfigurations\n\n",
		frame.NumFiles(), frame.NumPackages(), len(injected))

	// 3. Ship the frame to the service.
	resp, err := http.Post(baseURL+"/v1/validate/frame", "application/jsonl", &body)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service returned %s", resp.Status)
	}
	var report struct {
		Entity  string         `json:"entity"`
		Summary map[string]int `json:"summary"`
		Results []struct {
			Status  string `json:"status"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
			File    string `json:"file"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		return err
	}

	fmt.Printf("report for %s: %d pass, %d fail\n", report.Entity,
		report.Summary["pass"], report.Summary["fail"])
	fmt.Println("\nfindings:")
	shown := 0
	for _, r := range report.Results {
		if r.Status != "FAIL" || shown >= 10 {
			continue
		}
		shown++
		fmt.Printf("  ✗ %-40s %s\n", r.Rule, r.Message)
	}
	if report.Summary["fail"] > shown {
		fmt.Printf("  … and %d more\n", report.Summary["fail"]-shown)
	}
	fmt.Println("\nThe service validated a serialized frame; the entity itself was")
	fmt.Println("never connected to, which is the paper's touchless property.")
	return nil
}
