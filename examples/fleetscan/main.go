// Fleet scanning with the robustness + observability layer: the paper's
// production workload (§5, "tens of thousands of containers and images
// daily") run the way an operator actually has to run it — with panic
// isolation, per-scan deadlines, retry of transient failures, and a
// telemetry collector reporting what happened.
//
// The fleet deliberately includes two pathological entities: one whose
// crawl panics and one that hangs past the scan deadline. The run still
// completes, both surface as per-entity errors, and the end-of-run stats
// account for every outcome.
//
//	go run ./examples/fleetscan
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
)

// panicky simulates an entity that crashes the crawler — a malformed
// image that would have killed the whole fleet run before panic isolation.
type panicky struct {
	*entity.Mem
}

func (p *panicky) Walk(root string, fn func(entity.FileInfo) error) error {
	panic("malformed layer metadata")
}

// hung simulates an entity whose crawl never returns — a wedged registry
// connection. The scan deadline abandons it.
type hung struct {
	*entity.Mem
}

func (h *hung) Walk(root string, fn func(entity.FileInfo) error) error {
	select {} // block forever
}

func main() {
	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		log.Fatal(err)
	}

	// A healthy generated fleet, plus the two pathological entities.
	reg, _ := fixtures.Fleet(8, fixtures.Profile{Seed: 2017, MisconfigRate: 0.4})
	entities := make(chan configvalidator.Entity)
	go func() {
		defer close(entities)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			entities <- img.Entity()
		}
		entities <- &panicky{Mem: entity.NewMem("broken-image:v1", entity.TypeImage)}
		entities <- &hung{Mem: entity.NewMem("wedged-image:v1", entity.TypeImage)}
	}()

	results := v.ValidateFleet(context.Background(), entities, configvalidator.FleetOptions{
		Workers:     4,
		ScanTimeout: 500 * time.Millisecond,
		Retries:     2,
	})

	// Drain once, keeping the error lines; replay into Summarize.
	var errors []string
	var drained []configvalidator.FleetResult
	for res := range results {
		if res.Err != nil {
			line := res.Err.Error()
			if i := strings.IndexByte(line, '\n'); i > 0 {
				line = line[:i] + " [stack elided]"
			}
			errors = append(errors, line)
		}
		drained = append(drained, res)
	}
	replay := make(chan configvalidator.FleetResult, len(drained))
	for _, res := range drained {
		replay <- res
	}
	close(replay)
	summary := configvalidator.Summarize(replay)

	fmt.Println("Per-entity scan failures (isolated, fleet run completed):")
	for _, e := range errors {
		fmt.Printf("  - %s\n", e)
	}

	fmt.Println("\nFleet summary:")
	fmt.Printf("  %s\n", summary)

	s := collector.Snapshot()
	fmt.Println("\nEnd-of-run telemetry:")
	fmt.Printf("  %s\n", s)
	fmt.Println("\nPrometheus rendering (what GET /metrics serves):")
	_ = collector.WritePrometheus(os.Stdout)
}
