// Fleet scanning with the robustness + observability layer: the paper's
// production workload (§5, "tens of thousands of containers and images
// daily") run the way an operator actually has to run it — with panic
// isolation, per-scan deadlines, retry of transient failures, a durable
// result journal, and a telemetry collector reporting what happened.
//
// The fleet deliberately includes two pathological entities: one whose
// crawl panics and one that hangs past the scan deadline. The run still
// completes, both surface as per-entity errors, and the end-of-run stats
// account for every outcome.
//
//	go run ./examples/fleetscan
//	go run ./examples/fleetscan -checkpoint fleet.cvj  # crash-safe, resumable
//
// With -checkpoint the run is resumable: -crash-after N kills the process
// partway (a SIGKILL stand-in), and re-running with the same checkpoint
// replays the journaled results and re-scans only what is missing — the
// kill-and-resume smoke in scripts/ci.sh asserts the resumed summary is
// byte-identical to an uninterrupted run's.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/fsutil"
)

// panicky simulates an entity that crashes the crawler — a malformed
// image that would have killed the whole fleet run before panic isolation.
type panicky struct {
	*entity.Mem
}

func (p *panicky) Walk(root string, fn func(entity.FileInfo) error) error {
	panic("malformed layer metadata")
}

// hung simulates an entity whose crawl never returns — a wedged registry
// connection. The scan deadline abandons it.
type hung struct {
	*entity.Mem
}

func (h *hung) Walk(root string, fn func(entity.FileInfo) error) error {
	select {} // block forever
}

func main() {
	var (
		checkpoint  = flag.String("checkpoint", "", "durable result journal: append results as they complete, resume by skipping journaled entities whose config is unchanged")
		crashAfter  = flag.Int("crash-after", 0, "simulate a crash: exit(3) after draining N results (use with -checkpoint, then re-run to resume)")
		quiet       = flag.Bool("quiet", false, "print only the final fleet summary line")
		fleetSize   = flag.Int("fleet", 8, "number of healthy generated images")
		scanTimeout = flag.Duration("scan-timeout", 500*time.Millisecond, "per-entity scan deadline")
	)
	flag.Parse()

	collector := configvalidator.NewCollector()
	vopts := []configvalidator.Option{configvalidator.WithTelemetry(collector)}
	inj, err := configvalidator.FaultsFromEnv()
	if err != nil {
		log.Fatal(err)
	}
	if inj != nil {
		fmt.Fprintln(os.Stderr, "fleetscan: fault injection armed via CV_FAULTS")
		vopts = append(vopts, configvalidator.WithFaults(inj))
		fsutil.ArmFaults(inj)
	}
	v, err := configvalidator.New(vopts...)
	if err != nil {
		log.Fatal(err)
	}

	fopts := configvalidator.FleetOptions{
		Workers:     4,
		ScanTimeout: *scanTimeout,
		Retries:     2,
	}
	var jrnl *configvalidator.Journal
	if *checkpoint != "" {
		jrnl, err = configvalidator.OpenJournal(*checkpoint, configvalidator.JournalOptions{
			Metrics: collector,
			Faults:  inj,
			OnDegraded: func(derr error) {
				fmt.Fprintf(os.Stderr, "fleetscan: journal degraded, results no longer persisted (scan continues): %v\n", derr)
			},
			OnRecovered: func() {
				fmt.Fprintln(os.Stderr, "fleetscan: journal recovered, persistence resumed")
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		defer func() { _ = jrnl.Close() }()
		fopts.Journal = jrnl
	}

	// A healthy generated fleet, plus the two pathological entities.
	reg, _ := fixtures.Fleet(*fleetSize, fixtures.Profile{Seed: 2017, MisconfigRate: 0.4})
	entities := make(chan configvalidator.Entity)
	go func() {
		defer close(entities)
		for _, ref := range reg.Images() {
			img, err := reg.Pull(ref)
			if err != nil {
				continue
			}
			entities <- img.Entity()
		}
		entities <- &panicky{Mem: entity.NewMem("broken-image:v1", entity.TypeImage)}
		entities <- &hung{Mem: entity.NewMem("wedged-image:v1", entity.TypeImage)}
	}()

	results := v.ValidateFleet(context.Background(), entities, fopts)

	// Drain once, keeping the error lines; replay into Summarize. With
	// -crash-after the process dies mid-drain without closing the journal —
	// the closest stand-in for SIGKILL that stays portable in CI.
	var errors []string
	var drained []configvalidator.FleetResult
	for res := range results {
		if res.Err != nil {
			line := res.Err.Error()
			if i := strings.IndexByte(line, '\n'); i > 0 {
				line = line[:i] + " [stack elided]"
			}
			errors = append(errors, line)
		}
		drained = append(drained, res)
		if *crashAfter > 0 && len(drained) >= *crashAfter {
			fmt.Fprintf(os.Stderr, "fleetscan: simulated crash after %d results\n", len(drained))
			os.Exit(3)
		}
	}
	replay := make(chan configvalidator.FleetResult, len(drained))
	for _, res := range drained {
		replay <- res
	}
	close(replay)
	summary := configvalidator.Summarize(replay)

	if *quiet {
		fmt.Println(summary)
		return
	}

	sort.Strings(errors)
	fmt.Println("Per-entity scan failures (isolated, fleet run completed):")
	for _, e := range errors {
		fmt.Printf("  - %s\n", e)
	}

	fmt.Println("\nFleet summary:")
	fmt.Printf("  %s\n", summary)
	if summary.Resumed > 0 {
		fmt.Printf("  (%d of %d reports replayed from %s)\n", summary.Resumed, summary.Scanned, *checkpoint)
	}
	if jrnl != nil {
		st := jrnl.Stats()
		fmt.Printf("\nJournal %s: appends=%d append_errors=%d replayed=%d corrupt=%d entities=%d degraded=%v\n",
			jrnl.Path(), st.Appends, st.AppendErrors, st.Replayed, st.CorruptRecords, st.Entities, st.Degraded)
	}

	s := collector.Snapshot()
	fmt.Println("\nEnd-of-run telemetry:")
	fmt.Printf("  %s\n", s)
	fmt.Println("\nPrometheus rendering (what GET /metrics serves):")
	_ = collector.WritePrometheus(os.Stdout)
}
