// Composite rules: the paper's Listing-1 scenario.
//
// A three-component stack (nginx + MySQL + kernel sysctl) is validated
// with per-entity rules plus one composite rule that only holds when all
// three components are configured consistently:
//
//	mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"
//	  && sysctl.net.ipv4.ip_forward && nginx.listen
//
// The example runs the composite against a compliant stack and then breaks
// one leg at a time, showing how the cross-entity conjunction reacts.
//
//	go run ./examples/composite
package main

import (
	"fmt"
	"log"

	configvalidator "configvalidator"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

var ruleFiles = map[string]string{
	"manifest.yaml": `
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file: nginx.yaml
sysctl:
  enabled: True
  config_search_paths:
    - /etc/sysctl.conf
  cvl_file: sysctl.yaml
mysql:
  enabled: True
  config_search_paths:
    - /etc/mysql
  cvl_file: mysql.yaml
stack:
  enabled: True
  cvl_file: composite.yaml
`,
	"nginx.yaml": `
config_name: listen
config_description: "nginx must listen with SSL."
config_path: ["server", "http/server"]
preferred_value: ["ssl"]
preferred_value_match: substr,any
matched_description: "nginx has SSL enabled on listening sockets."
not_matched_preferred_value_description: "nginx listens without SSL."
not_present_description: "no nginx listen directive found."
tags: ["#ssl"]
`,
	"sysctl.yaml": `
config_name: net/ipv4/ip_forward
config_description: "IP forwarding must be disabled."
config_path: [""]
preferred_value: ["0"]
matched_description: "ip_forward is disabled."
not_matched_preferred_value_description: "ip_forward is enabled."
not_present_description: "net.ipv4.ip_forward is not set."
tags: ["#cis"]
`,
	"mysql.yaml": `
config_name: ssl-ca
config_description: "MySQL must reference the CA certificate."
config_path: ["mysqld"]
matched_description: "mysql ssl-ca is configured."
not_present_description: "mysql ssl-ca is not configured."
tags: ["#ssl"]
`,
	"composite.yaml": `
composite_rule_name: "mysql ssl-ca path and sysctl and nginx SSL"
composite_rule_description: "Check if nginx is running with SSL, ip_forward is disabled, and mysql server ssl-ca has a cert"
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen
tags: ["docker", "nginx", "sysctl"]
matched_description: "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled."
not_matched_preferred_value_description: "Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled."
`,
}

// stack builds the three-component host with the given knob settings.
func stack(nginxListen, ipForward, sslCA string) *entity.Mem {
	m := entity.NewMem("stack-host", entity.TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte(fmt.Sprintf(
		"http {\n  server {\n    listen %s;\n  }\n}\n", nginxListen)))
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = "+ipForward+"\n"))
	m.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\nssl-ca = "+sslCA+"\n"))
	return m
}

func main() {
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(ruleFiles["manifest.yaml"]))
	if err != nil {
		log.Fatal(err)
	}
	read := func(p string) ([]byte, error) {
		src, ok := ruleFiles[p]
		if !ok {
			return nil, fmt.Errorf("no rule file %q", p)
		}
		return []byte(src), nil
	}
	v, err := configvalidator.New(configvalidator.WithManifest(manifest, read))
	if err != nil {
		log.Fatal(err)
	}

	scenarios := []struct {
		name        string
		nginxListen string
		ipForward   string
		sslCA       string
	}{
		{"compliant stack", "443 ssl", "0", "/etc/mysql/cacert.pem"},
		{"nginx without SSL", "80", "0", "/etc/mysql/cacert.pem"},
		{"IP forwarding enabled", "443 ssl", "1", "/etc/mysql/cacert.pem"},
		{"wrong CA certificate", "443 ssl", "0", "/tmp/self-signed.pem"},
	}
	for _, sc := range scenarios {
		report, err := v.Validate(stack(sc.nginxListen, sc.ipForward, sc.sslCA))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("— %s —\n", sc.name)
		for _, r := range report.Results {
			marker := "✓"
			if r.Status == configvalidator.StatusFail {
				marker = "✗"
			}
			fmt.Printf("  %s [%s] %s: %s\n", marker, r.ManifestEntity, r.Rule.Name, r.Message)
		}
		fmt.Println()
	}
}
