// Docker image scanning: the Vulnerability Advisor scenario (paper §5).
//
// Builds a small fleet of simulated Docker images — layered, with
// whiteouts and image config — and scans each with the built-in CIS rules,
// printing a per-image summary and a compliance roll-up. This is the
// production workload ConfigValidator ran in IBM Cloud: "tens of thousands
// of containers and images daily".
//
//	go run ./examples/dockerimage
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/dockersim"
	"configvalidator/internal/fixtures"
	"configvalidator/internal/pkgdb"
)

func main() {
	collector := configvalidator.NewCollector()
	v, err := configvalidator.New(configvalidator.WithTelemetry(collector))
	if err != nil {
		log.Fatal(err)
	}

	// A hand-built image: Dockerfile-style construction with a deliberate
	// set of CIS Docker violations.
	bad := dockersim.NewBuilder("legacy-app", "v0.9").
		From(dockersim.BaseUbuntu(buildTime())).
		AddFile("/etc/nginx/nginx.conf", []byte("user root;\nhttp {\n  server {\n    listen 80;\n  }\n}\n"), 0o644).
		InstallPackages(pkgdb.Package{Name: "nginx", Version: "1.4.6-1ubuntu3", Status: "install ok installed"}).
		Env("DB_PASSWORD=hunter2"). // secret in env (CIS Docker 4.10)
		Expose("22/tcp").           // sshd in a container (CIS Docker 5.6)
		Cmd("/usr/sbin/nginx").     // no USER, no HEALTHCHECK
		Build()

	// A hardened image built on the same base.
	good := dockersim.NewBuilder("modern-app", "v2.0").
		From(dockersim.BaseUbuntu(buildTime())).
		AddFile("/etc/nginx/nginx.conf", []byte(hardenedNginx), 0o644).
		User("app").
		Healthcheck("curl -f http://localhost:8443/health || exit 1").
		Expose("8443/tcp").
		Cmd("/usr/sbin/nginx", "-g", "daemon off;").
		Build()

	// Plus a generated fleet with a 40% misconfiguration rate.
	reg, _ := fixtures.Fleet(8, fixtures.Profile{Seed: 2017, MisconfigRate: 0.4})
	reg.Push(bad)
	reg.Push(good)

	fmt.Printf("%-24s %-10s %6s %6s %6s\n", "IMAGE", "ID", "PASS", "FAIL", "N/A")
	var reports []*configvalidator.Report
	for _, ref := range reg.Images() {
		img, err := reg.Pull(ref)
		if err != nil {
			log.Fatal(err)
		}
		report, err := v.Validate(img.Entity())
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, report)
		c := report.Counts()
		fmt.Printf("%-24s %-10s %6d %6d %6d\n", ref, img.ID()[7:17],
			c[configvalidator.StatusPass], c[configvalidator.StatusFail], c[configvalidator.StatusNotApplicable])
	}

	fmt.Println("\nFindings for legacy-app:v0.9:")
	badReport, err := v.Validate(bad.Entity())
	if err != nil {
		log.Fatal(err)
	}
	if err := configvalidator.WriteText(os.Stdout, badReport, configvalidator.OutputOptions{}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCompliance roll-up across the fleet:")
	if err := configvalidator.WriteComplianceSummary(os.Stdout, reports); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nEnd-of-run telemetry: %s\n", collector.Snapshot())
}

const hardenedNginx = `user www-data;
error_log /var/log/nginx/error.log;
http {
    server_tokens off;
    client_max_body_size 1m;
    add_header X-Frame-Options DENY;
    server {
        listen 8443 ssl;
        ssl_certificate /etc/ssl/cert.pem;
        ssl_certificate_key /etc/ssl/key.pem;
        ssl_protocols TLSv1.2 TLSv1.3;
        ssl_prefer_server_ciphers on;
    }
}
`

// buildTime stamps hand-built image layers for deterministic image IDs.
func buildTime() time.Time {
	return time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
}
