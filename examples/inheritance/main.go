// Rule inheritance: extending a community baseline (paper §3.2).
//
// A site inherits a vendor/community baseline rule file, overrides one
// rule for a deployment-specific peculiarity (root login allowed with keys
// from the bastion), disables a rule that does not apply, and adds a new
// site-specific rule. The example prints the effective rule set and
// validates a host against it.
//
//	go run ./examples/inheritance
package main

import (
	"fmt"
	"log"
	"os"

	configvalidator "configvalidator"
	"configvalidator/internal/entity"
)

var files = map[string]string{
	// The community baseline, as an application vendor might ship it.
	"base/sshd.yaml": `
config_name: PermitRootLogin
config_description: "Disable root login over SSH."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
matched_description: "Root login is disabled."
not_matched_preferred_value_description: "Root login is enabled."
not_present_description: "PermitRootLogin is not present."
tags: ["#cis"]
---
config_name: X11Forwarding
config_description: "Disable X11 forwarding."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
matched_description: "X11 forwarding is disabled."
not_matched_preferred_value_description: "X11 forwarding is enabled."
not_present_description: "X11Forwarding is not present."
tags: ["#cis"]
---
config_name: Banner
config_description: "Configure a warning banner."
config_path: [""]
file_context: ["sshd_config"]
matched_description: "A warning banner is configured."
not_present_description: "No warning banner."
tags: ["#cis"]
`,
	// The site file: inherit, override, disable, extend.
	"site/sshd.yaml": `
parent_cvl_file: base/sshd.yaml
---
# Site override: bastion-initiated root logins with keys are sanctioned.
config_name: PermitRootLogin
override: true
config_description: "Root login allowed with keys only (site policy)."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no", "without-password", "prohibit-password"]
preferred_value_match: exact,any
matched_description: "Root login restricted per site policy."
not_matched_preferred_value_description: "Root password login is enabled."
not_present_description: "PermitRootLogin is not present."
tags: ["#cis", "#site"]
---
# Dev hosts run X11 tooling; the baseline rule does not apply here.
config_name: X11Forwarding
disabled: true
---
# Site-specific addition.
config_name: AllowGroups
config_description: "Restrict SSH to the ssh-users group."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["ssh-users"]
preferred_value_match: substr,any
matched_description: "SSH access is group-restricted."
not_matched_preferred_value_description: "AllowGroups does not include ssh-users."
not_present_description: "SSH access is not group-restricted."
tags: ["#site"]
`,
}

func main() {
	read := func(p string) ([]byte, error) {
		src, ok := files[p]
		if !ok {
			return nil, fmt.Errorf("no rule file %q", p)
		}
		return []byte(src), nil
	}

	effective, err := configvalidator.LoadRules(read, "site/sshd.yaml")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Effective rule set after inheritance:")
	for _, r := range effective {
		origin := "inherited from " + "base/sshd.yaml"
		if r.Source == "site/sshd.yaml" {
			origin = "site-defined"
			if r.Override {
				origin = "site override"
			}
		}
		fmt.Printf("  %-16s (%s)\n", r.Name, origin)
	}

	host := entity.NewMem("dev-box", entity.TypeHost)
	host.AddFile("/etc/ssh/sshd_config", []byte(
		"PermitRootLogin without-password\nX11Forwarding yes\nBanner /etc/issue.net\nAllowGroups ssh-users admins\n"))

	v, err := configvalidator.New()
	if err != nil {
		log.Fatal(err)
	}
	report, err := v.ValidateRules(host, effective, []string{"/etc/ssh"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nValidation against the site rule set:")
	if err := configvalidator.WriteText(os.Stdout, report, configvalidator.OutputOptions{ShowPassing: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("note: X11Forwarding yes raises no finding — the site disabled that rule;")
	fmt.Println("      the baseline alone would have failed it.")
}
