package yaml

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeScalars(t *testing.T) {
	tests := []struct {
		name string
		in   any
		want string
	}{
		{"string", "hello", "hello\n"},
		{"empty string", "", "\"\"\n"},
		{"numeric string quoted", "42", "\"42\"\n"},
		{"bool-like string quoted", "true", "\"true\"\n"},
		{"int", int64(7), "7\n"},
		{"plain int", 7, "7\n"},
		{"float", 2.5, "2.5\n"},
		{"bool", true, "true\n"},
		{"nil", nil, "null\n"},
		{"leading dash quoted", "-x", "\"-x\"\n"},
		{"hash string quoted", "#tag", "\"#tag\"\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Encode(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != tt.want {
				t.Errorf("Encode(%#v) = %q, want %q", tt.in, got, tt.want)
			}
		})
	}
}

func TestEncodeMapOrderPreserved(t *testing.T) {
	m := NewMap()
	m.Set("zebra", int64(1))
	m.Set("alpha", int64(2))
	m.Set("mid", "v")
	out, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	want := "zebra: 1\nalpha: 2\nmid: v\n"
	if string(out) != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestEncodeGoMapSortedKeys(t *testing.T) {
	out, err := Encode(map[string]any{"b": int64(2), "a": int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "a: 1\nb: 2\n" {
		t.Errorf("got %q", out)
	}
}

func TestEncodeNested(t *testing.T) {
	inner := NewMap()
	inner.Set("port", int64(443))
	inner.Set("protocols", []any{"TLSv1.2", "TLSv1.3"})
	outer := NewMap()
	outer.Set("server", inner)
	outer.Set("tags", []string{"#ssl"})
	out, err := Encode(outer)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"server:",
		"  port: 443",
		"  protocols:",
		"    - TLSv1.2",
		"    - TLSv1.3",
		"tags:",
		"  - \"#ssl\"",
		"",
	}, "\n")
	if string(out) != want {
		t.Errorf("got:\n%s\nwant:\n%s", out, want)
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	if _, err := Encode(struct{ X int }{1}); err == nil {
		t.Error("expected error for unsupported type")
	}
}

func TestEncodeDecodeRoundTripFixed(t *testing.T) {
	m := NewMap()
	m.Set("config_name", "PermitRootLogin")
	m.Set("tags", []any{"#security", "#cis"})
	m.Set("preferred_value", []any{"no"})
	m.Set("threshold", int64(10))
	m.Set("ratio", 0.5)
	m.Set("enabled", true)
	m.Set("note", nil)
	sub := NewMap()
	sub.Set("a b", "c: d")
	sub.Set("empty", []any{})
	m.Set("nested", sub)

	enc, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatalf("re-decode of %q: %v", enc, err)
	}
	bm, ok := back.(*Map)
	if !ok || !m.Equal(bm) {
		t.Errorf("round trip mismatch:\nencoded:\n%s\ngot: %#v", enc, back)
	}
}

// randomValue builds a random YAML-representable value for property testing.
func randomValue(r *rand.Rand, depth int) any {
	if depth <= 0 {
		return randomScalar(r)
	}
	switch r.Intn(4) {
	case 0:
		n := r.Intn(4)
		seq := make([]any, n)
		for i := range seq {
			seq[i] = randomValue(r, depth-1)
		}
		return seq
	case 1:
		m := NewMap()
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			m.Set(randomKey(r, i), randomValue(r, depth-1))
		}
		return m
	default:
		return randomScalar(r)
	}
}

func randomScalar(r *rand.Rand) any {
	switch r.Intn(5) {
	case 0:
		return int64(r.Intn(2000) - 1000)
	case 1:
		return r.Intn(2) == 0
	case 2:
		return nil
	case 3:
		return float64(r.Intn(1000)) / 4
	default:
		return randomString(r)
	}
}

const keyAlphabet = "abcdefghijklmnopqrstuvwxyz_-.#/: []{}'\"!@"

func randomString(r *rand.Rand) string {
	n := r.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(keyAlphabet[r.Intn(len(keyAlphabet))])
	}
	return b.String()
}

func randomKey(r *rand.Rand, i int) string {
	// Keys must be unique within a map; suffix with the index.
	base := "abcdefghij"[r.Intn(10)]
	return string(base) + "_" + string(rune('0'+i))
}

// TestQuickEncodeDecodeRoundTrip verifies Decode(Encode(v)) == v for random
// values — the central property of the YAML subset.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 3)
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", v, err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode round trip of %#v failed: %v\nencoded:\n%s", v, err, enc)
		}
		if !valueEqual(normalizeEmpty(v), normalizeEmpty(back)) {
			t.Fatalf("round trip mismatch:\noriginal: %#v\ndecoded:  %#v\nencoded:\n%s", v, back, enc)
		}
	}
}

// normalizeEmpty maps empty sequences to a canonical non-nil form so that
// DeepEqual-style comparison treats []any{} uniformly.
func normalizeEmpty(v any) any {
	switch val := v.(type) {
	case []any:
		out := make([]any, len(val))
		for i := range val {
			out[i] = normalizeEmpty(val[i])
		}
		return out
	case *Map:
		m := NewMap()
		for _, k := range val.Keys() {
			inner, _ := val.Get(k)
			m.Set(k, normalizeEmpty(inner))
		}
		return m
	default:
		return v
	}
}

// TestQuickScalarStringRoundTrip uses testing/quick to check that any string
// survives encode/decode unchanged when used as a mapping value.
func TestQuickScalarStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		if !validRoundTripString(s) {
			return true // outside the supported subset (control chars etc.)
		}
		m := NewMap()
		m.Set("k", s)
		enc, err := Encode(m)
		if err != nil {
			return false
		}
		back, err := Decode(enc)
		if err != nil {
			return false
		}
		bm, ok := back.(*Map)
		if !ok {
			return false
		}
		got, _ := bm.Get("k")
		return got == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// validRoundTripString reports whether s is within the subset the encoder
// guarantees to round trip (printable ASCII plus \n and \t via quoting).
func validRoundTripString(s string) bool {
	for _, r := range s {
		if r == '\n' || r == '\t' {
			continue
		}
		if r < 0x20 || r == 0x7f || r > 0x7e {
			return false
		}
	}
	return true
}

func TestMapOperations(t *testing.T) {
	m := NewMap()
	if m.Len() != 0 {
		t.Error("new map should be empty")
	}
	m.Set("a", int64(1))
	m.Set("b", int64(2))
	m.Set("a", int64(3)) // overwrite keeps position
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("keys = %v", got)
	}
	if v, _ := m.Int("a"); v != 3 {
		t.Errorf("a = %v", v)
	}
	m.Delete("a")
	if m.Has("a") || m.Len() != 1 {
		t.Errorf("delete failed: %v", m.Keys())
	}
	m.Delete("missing") // no-op
	if got := m.SortedKeys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Errorf("sorted keys = %v", got)
	}
}

func TestMapEqual(t *testing.T) {
	a := NewMap()
	a.Set("x", []any{int64(1), "s"})
	b := NewMap()
	b.Set("x", []any{int64(1), "s"})
	if !a.Equal(b) {
		t.Error("equal maps reported unequal")
	}
	b.Set("y", nil)
	if a.Equal(b) {
		t.Error("maps with different sizes reported equal")
	}
}

func TestMapNilReceiverSafe(t *testing.T) {
	var m *Map
	if m.Len() != 0 || m.Keys() != nil || m.Has("x") {
		t.Error("nil map accessors should be zero-valued")
	}
	if _, ok := m.Get("x"); ok {
		t.Error("nil map Get should report absent")
	}
}

func TestEncodeAll(t *testing.T) {
	m1 := NewMap()
	m1.Set("a", int64(1))
	m2 := NewMap()
	m2.Set("b", int64(2))
	out, err := EncodeAll([]any{m1, m2})
	if err != nil {
		t.Fatal(err)
	}
	docs, err := DecodeAll(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("got %d docs from %q", len(docs), out)
	}
}
