// Package yaml implements the YAML subset used by the Configuration
// Validation Language (CVL).
//
// The subset covers everything that appears in CVL rule files and manifests:
// block and flow mappings, block and flow sequences, plain/single/double
// quoted scalars, comments, literal (|) and folded (>) block scalars, and
// multi-document streams. It deliberately excludes anchors, aliases, tags,
// and complex (non-scalar) mapping keys; inputs using those constructs are
// rejected with a descriptive error rather than silently mis-parsed.
//
// Decoded values use the following Go types:
//
//	mapping  -> *yaml.Map (insertion ordered)
//	sequence -> []any
//	string   -> string
//	integer  -> int64
//	float    -> float64
//	boolean  -> bool
//	null     -> nil
package yaml

import (
	"fmt"
	"sort"
)

// Pos is a 1-based source position. The zero value means the position is
// unknown (for example on a Map built programmatically rather than decoded).
type Pos struct {
	Line int
	Col  int
}

// IsZero reports whether the position is unknown.
func (p Pos) IsZero() bool { return p.Line == 0 }

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Map is an insertion-ordered string-keyed mapping. YAML mappings decode to
// *Map so that rule files keep their author-written key order, which matters
// for linting, round-tripping, and stable report output.
//
// Decoded maps additionally carry the source position of each key token
// (see KeyPos and Start), so tools such as the CVL static analyzer can point
// diagnostics at the offending line. Positions inside flow mappings
// ({k: v}) are relative to the start of the flow text and therefore
// approximate in column; block mappings are exact.
type Map struct {
	keys  []string
	vals  map[string]any
	pos   map[string]Pos
	start Pos
}

// NewMap returns an empty ordered map.
func NewMap() *Map {
	return &Map{vals: make(map[string]any)}
}

// Len reports the number of keys.
func (m *Map) Len() int {
	if m == nil {
		return 0
	}
	return len(m.keys)
}

// Keys returns the keys in insertion order. The returned slice is a copy.
func (m *Map) Keys() []string {
	if m == nil {
		return nil
	}
	out := make([]string, len(m.keys))
	copy(out, m.keys)
	return out
}

// Get returns the value stored under key and whether it was present.
func (m *Map) Get(key string) (any, bool) {
	if m == nil {
		return nil, false
	}
	v, ok := m.vals[key]
	return v, ok
}

// Has reports whether key is present.
func (m *Map) Has(key string) bool {
	_, ok := m.Get(key)
	return ok
}

// Set stores value under key, preserving the original position when the key
// already exists.
func (m *Map) Set(key string, value any) {
	if _, ok := m.vals[key]; !ok {
		m.keys = append(m.keys, key)
	}
	m.vals[key] = value
}

// Delete removes key if present.
func (m *Map) Delete(key string) {
	if _, ok := m.vals[key]; !ok {
		return
	}
	delete(m.vals, key)
	delete(m.pos, key)
	for i, k := range m.keys {
		if k == key {
			m.keys = append(m.keys[:i], m.keys[i+1:]...)
			break
		}
	}
}

// KeyPos returns the source position of key's key token. The zero Pos is
// returned for maps built programmatically or keys set after decoding.
func (m *Map) KeyPos(key string) Pos {
	if m == nil {
		return Pos{}
	}
	return m.pos[key]
}

// SetKeyPos records the source position of key's key token. The first
// recorded position also becomes the map's Start when none is set yet.
func (m *Map) SetKeyPos(key string, p Pos) {
	if m.pos == nil {
		m.pos = make(map[string]Pos)
	}
	m.pos[key] = p
	if m.start.IsZero() {
		m.start = p
	}
}

// Start returns the position where the mapping begins (its first decoded
// key), or the zero Pos when unknown.
func (m *Map) Start() Pos {
	if m == nil {
		return Pos{}
	}
	return m.start
}

// String returns the value under key when it is a string. ok is false when
// the key is absent or holds a non-string value.
func (m *Map) String(key string) (string, bool) {
	v, ok := m.Get(key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// Bool returns the value under key when it is a bool.
func (m *Map) Bool(key string) (bool, bool) {
	v, ok := m.Get(key)
	if !ok {
		return false, false
	}
	b, ok := v.(bool)
	return b, ok
}

// Int returns the value under key when it is an integer.
func (m *Map) Int(key string) (int64, bool) {
	v, ok := m.Get(key)
	if !ok {
		return 0, false
	}
	n, ok := v.(int64)
	return n, ok
}

// Map returns the value under key when it is a nested mapping.
func (m *Map) Map(key string) (*Map, bool) {
	v, ok := m.Get(key)
	if !ok {
		return nil, false
	}
	mm, ok := v.(*Map)
	return mm, ok
}

// Seq returns the value under key when it is a sequence.
func (m *Map) Seq(key string) ([]any, bool) {
	v, ok := m.Get(key)
	if !ok {
		return nil, false
	}
	s, ok := v.([]any)
	return s, ok
}

// SortedKeys returns the keys sorted lexicographically. Useful for
// deterministic iteration where insertion order is irrelevant.
func (m *Map) SortedKeys() []string {
	out := m.Keys()
	sort.Strings(out)
	return out
}

// Equal reports deep equality with another map, ignoring key order.
func (m *Map) Equal(other *Map) bool {
	if m.Len() != other.Len() {
		return false
	}
	for _, k := range m.keys {
		ov, ok := other.Get(k)
		if !ok || !valueEqual(m.vals[k], ov) {
			return false
		}
	}
	return true
}

func valueEqual(a, b any) bool {
	switch av := a.(type) {
	case *Map:
		bv, ok := b.(*Map)
		return ok && av.Equal(bv)
	case []any:
		bv, ok := b.([]any)
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if !valueEqual(av[i], bv[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// SyntaxError describes a YAML parse failure with source position.
type SyntaxError struct {
	Line int    // 1-based line number
	Col  int    // 1-based column number
	Msg  string // human-readable description
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("yaml: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

func syntaxErrorf(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
