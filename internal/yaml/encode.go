package yaml

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Encode renders a value as a block-style YAML document. Supported value
// types are the ones produced by Decode (*Map, []any, string, int64, int,
// float64, bool, nil) plus map[string]any (emitted with sorted keys).
func Encode(v any) ([]byte, error) {
	var b strings.Builder
	if err := encodeValue(&b, v, 0, true); err != nil {
		return nil, err
	}
	out := b.String()
	if out != "" && !strings.HasSuffix(out, "\n") {
		out += "\n"
	}
	return []byte(out), nil
}

// EncodeAll renders multiple documents separated by "---" markers.
func EncodeAll(docs []any) ([]byte, error) {
	var b strings.Builder
	for i, d := range docs {
		if i > 0 {
			b.WriteString("---\n")
		}
		enc, err := Encode(d)
		if err != nil {
			return nil, err
		}
		b.Write(enc)
	}
	return []byte(b.String()), nil
}

func encodeValue(b *strings.Builder, v any, indent int, topLevel bool) error {
	switch val := v.(type) {
	case nil:
		b.WriteString("null\n")
	case *Map:
		if val.Len() == 0 {
			b.WriteString("{}\n")
			return nil
		}
		return encodeMapEntries(b, val.Keys(), func(k string) any {
			out, _ := val.Get(k)
			return out
		}, indent)
	case map[string]any:
		if len(val) == 0 {
			b.WriteString("{}\n")
			return nil
		}
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return encodeMapEntries(b, keys, func(k string) any { return val[k] }, indent)
	case []any:
		if len(val) == 0 {
			b.WriteString("[]\n")
			return nil
		}
		for _, item := range val {
			writeIndent(b, indent)
			b.WriteString("-")
			if err := encodeInlineOrNested(b, item, indent); err != nil {
				return err
			}
		}
	case []string:
		anyVals := make([]any, len(val))
		for i, s := range val {
			anyVals[i] = s
		}
		return encodeValue(b, anyVals, indent, topLevel)
	default:
		s, err := scalarString(v)
		if err != nil {
			return err
		}
		b.WriteString(s)
		b.WriteByte('\n')
	}
	return nil
}

func encodeMapEntries(b *strings.Builder, keys []string, get func(string) any, indent int) error {
	for _, k := range keys {
		writeIndent(b, indent)
		b.WriteString(quoteIfNeeded(k))
		b.WriteString(":")
		if err := encodeInlineOrNested(b, get(k), indent); err != nil {
			return err
		}
	}
	return nil
}

// encodeInlineOrNested writes either " scalar\n" on the current line or a
// newline followed by a nested block.
func encodeInlineOrNested(b *strings.Builder, v any, indent int) error {
	switch val := v.(type) {
	case *Map:
		if val.Len() == 0 {
			b.WriteString(" {}\n")
			return nil
		}
		b.WriteByte('\n')
		return encodeValue(b, val, indent+2, false)
	case map[string]any:
		if len(val) == 0 {
			b.WriteString(" {}\n")
			return nil
		}
		b.WriteByte('\n')
		return encodeValue(b, val, indent+2, false)
	case []any:
		if len(val) == 0 {
			b.WriteString(" []\n")
			return nil
		}
		b.WriteByte('\n')
		return encodeValue(b, val, indent+2, false)
	case []string:
		anyVals := make([]any, len(val))
		for i, s := range val {
			anyVals[i] = s
		}
		return encodeInlineOrNested(b, anyVals, indent)
	default:
		s, err := scalarString(v)
		if err != nil {
			return err
		}
		b.WriteByte(' ')
		b.WriteString(s)
		b.WriteByte('\n')
		return nil
	}
}

func scalarString(v any) (string, error) {
	switch val := v.(type) {
	case nil:
		return "null", nil
	case string:
		return quoteIfNeeded(val), nil
	case bool:
		return strconv.FormatBool(val), nil
	case int:
		return strconv.Itoa(val), nil
	case int64:
		return strconv.FormatInt(val, 10), nil
	case float64:
		s := strconv.FormatFloat(val, 'g', -1, 64)
		// Keep a decimal point so the value re-decodes as a float.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	default:
		return "", fmt.Errorf("yaml: cannot encode value of type %T", v)
	}
}

// quoteIfNeeded wraps s in double quotes when emitting it plain would change
// its meaning on re-parse.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	if needsQuoting(s) {
		return strconv.Quote(s)
	}
	return s
}

func needsQuoting(s string) bool {
	switch s {
	case "null", "Null", "NULL", "~", "true", "True", "TRUE", "false", "False", "FALSE":
		return true
	}
	if s != strings.TrimSpace(s) {
		return true
	}
	if looksNumeric(s) {
		if _, err := strconv.ParseInt(s, 0, 64); err == nil {
			return true
		}
		if _, err := strconv.ParseFloat(s, 64); err == nil {
			return true
		}
	}
	switch s[0] {
	case '[', '{', ']', '}', '#', '&', '*', '!', '|', '>', '\'', '"', '%', '@', '`', '-', '?', ':', ',':
		return true
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\n' || c == '\t' {
			return true
		}
		if c == ':' && (i+1 == len(s) || s[i+1] == ' ') {
			return true
		}
		if c == '#' && i > 0 && s[i-1] == ' ' {
			return true
		}
	}
	return false
}

func writeIndent(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteByte(' ')
	}
}
