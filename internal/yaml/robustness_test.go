package yaml

import (
	"math/rand"
	"testing"
)

// TestNoPanicOnMutatedInputs feeds the decoder random mutations of valid
// documents and random garbage; every input must produce a value or an
// error, never a panic.
func TestNoPanicOnMutatedInputs(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	seeds := []string{
		"a: 1\nb:\n  - x\n  - y\nc: {k: v}\n",
		"- 1\n- [a, b]\n- {x: 'q'}\n",
		"key: |\n  block\n  text\n",
		"a: \"esc\\\"aped\"\n---\nb: 2\n",
		"deep:\n  deeper:\n    deepest: [1, 2, 3]\n",
	}
	alphabet := []byte("abc:-[]{}#'\"|>\n\t &*!%?123 .")
	for i := 0; i < 3000; i++ {
		var input []byte
		if i%2 == 0 {
			// Mutate a valid document.
			input = []byte(seeds[r.Intn(len(seeds))])
			for j := 0; j < 1+r.Intn(5); j++ {
				pos := r.Intn(len(input))
				switch r.Intn(3) {
				case 0:
					input[pos] = alphabet[r.Intn(len(alphabet))]
				case 1:
					input = append(input[:pos], input[pos+1:]...)
				default:
					input = append(input[:pos], append([]byte{alphabet[r.Intn(len(alphabet))]}, input[pos:]...)...)
				}
				if len(input) == 0 {
					break
				}
			}
		} else {
			// Pure garbage.
			input = make([]byte, r.Intn(120))
			for j := range input {
				input[j] = alphabet[r.Intn(len(alphabet))]
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on input %q: %v", input, p)
				}
			}()
			_, _ = DecodeAll(input)
		}()
	}
}
