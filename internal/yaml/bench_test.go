package yaml

import "testing"

var benchDoc = []byte(`
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1", "TLSv1.1" ]
non_preferred_value_match: substr,any
preferred_value_match: substr,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non-recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen, ssl_certificate, ssl_certificate_key ]
file_context: ["nginx.conf", "sites-enabled"]
nested:
  level1:
    level2:
      - item1
      - item2
`)

func BenchmarkDecode(b *testing.B) {
	b.ReportAllocs()
	b.SetBytes(int64(len(benchDoc)))
	for i := 0; i < b.N; i++ {
		if _, err := Decode(benchDoc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	v, err := Decode(benchDoc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(v); err != nil {
			b.Fatal(err)
		}
	}
}
