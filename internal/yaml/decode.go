package yaml

import (
	"strconv"
	"strings"
)

// Decode parses a single YAML document. An empty input decodes to nil.
// Inputs containing more than one document are rejected; use DecodeAll.
func Decode(data []byte) (any, error) {
	docs, err := DecodeAll(data)
	if err != nil {
		return nil, err
	}
	switch len(docs) {
	case 0:
		return nil, nil
	case 1:
		return docs[0], nil
	default:
		return nil, syntaxErrorf(1, 1, "expected a single document, found %d", len(docs))
	}
}

// DecodeAll parses a (possibly multi-document) YAML stream and returns one
// value per document.
func DecodeAll(data []byte) ([]any, error) {
	raw := strings.Split(strings.ReplaceAll(string(data), "\r\n", "\n"), "\n")
	var docs []any
	var cur []srcLine
	flush := func() error {
		significant := false
		for _, ln := range cur {
			if !ln.blank {
				significant = true
				break
			}
		}
		if !significant {
			cur = nil
			return nil
		}
		p := &parser{lines: cur}
		v, err := p.parseBlock(0)
		if err != nil {
			return err
		}
		p.skipBlanks()
		if p.pos < len(p.lines) {
			ln := p.lines[p.pos]
			return syntaxErrorf(ln.num, ln.indent+1, "unexpected content %q after document value", ln.text)
		}
		docs = append(docs, v)
		cur = nil
		return nil
	}
	for i, rawLine := range raw {
		num := i + 1
		trimmed := strings.TrimRight(rawLine, " \t")
		bare := strings.TrimSpace(trimmed)
		if bare == "---" || strings.HasPrefix(bare, "--- ") {
			if err := flush(); err != nil {
				return nil, err
			}
			rest := strings.TrimPrefix(bare, "---")
			rest = strings.TrimSpace(stripComment(rest))
			if rest != "" {
				cur = append(cur, srcLine{num: num, indent: 0, text: rest})
			}
			continue
		}
		if bare == "..." {
			if err := flush(); err != nil {
				return nil, err
			}
			continue
		}
		if strings.HasPrefix(bare, "%") && len(cur) == 0 {
			continue // directive such as %YAML 1.1
		}
		if bare == "" || strings.HasPrefix(bare, "#") {
			// Keep blank lines so block scalars can preserve them.
			cur = append(cur, srcLine{num: num, indent: 0, text: "", blank: true, raw: rawLine})
			continue
		}
		indent, err := indentOf(trimmed, num)
		if err != nil {
			return nil, err
		}
		cur = append(cur, srcLine{num: num, indent: indent, text: trimmed[indent:], raw: rawLine})
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return docs, nil
}

// srcLine is one significant source line with its indentation resolved.
type srcLine struct {
	num    int
	indent int
	text   string // content without leading indentation or trailing space
	blank  bool   // blank or comment-only line (kept for block scalars)
	raw    string // original text, used by block scalars
}

type parser struct {
	lines []srcLine
	pos   int
}

// peek returns the next significant (non-blank) line without consuming it.
func (p *parser) peek() (srcLine, bool) {
	for i := p.pos; i < len(p.lines); i++ {
		if !p.lines[i].blank {
			return p.lines[i], true
		}
	}
	return srcLine{}, false
}

// advanceTo moves pos to the given significant line index.
func (p *parser) skipBlanks() {
	for p.pos < len(p.lines) && p.lines[p.pos].blank {
		p.pos++
	}
}

// parseBlock parses a block-level value whose content is indented at least
// minIndent columns.
func (p *parser) parseBlock(minIndent int) (any, error) {
	ln, ok := p.peek()
	if !ok || ln.indent < minIndent {
		return nil, nil
	}
	if ln.text == "-" || strings.HasPrefix(ln.text, "- ") {
		return p.parseSequence(ln.indent)
	}
	if keyLen := mappingKeyLen(ln.text); keyLen >= 0 {
		return p.parseMapping(ln.indent)
	}
	// A bare scalar document (single line, or flow collection).
	p.skipBlanks()
	p.pos++
	content := stripComment(ln.text)
	return parseInline(content, ln.num, ln.indent)
}

func (p *parser) parseMapping(indent int) (any, error) {
	m := NewMap()
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent {
			// Deeper indentation here means a stray continuation line.
			if ok && ln.indent > indent {
				return nil, syntaxErrorf(ln.num, ln.indent+1, "unexpected indentation")
			}
			return m, nil
		}
		keyLen := mappingKeyLen(ln.text)
		if keyLen < 0 {
			return nil, syntaxErrorf(ln.num, ln.indent+1, "expected 'key: value' mapping entry, got %q", ln.text)
		}
		key, err := parseKey(ln.text[:keyLen], ln.num)
		if err != nil {
			return nil, err
		}
		if m.Has(key) {
			return nil, syntaxErrorf(ln.num, ln.indent+1, "duplicate mapping key %q", key)
		}
		rest := strings.TrimSpace(ln.text[keyLen+1:])
		p.skipBlanks()
		p.pos++ // consume the key line
		val, err := p.parseEntryValue(rest, ln)
		if err != nil {
			return nil, err
		}
		m.Set(key, val)
		m.SetKeyPos(key, Pos{Line: ln.num, Col: ln.indent + 1})
	}
}

// parseEntryValue parses the value following "key:" or "- " where rest is
// the remainder of the introducing line.
func (p *parser) parseEntryValue(rest string, ln srcLine) (any, error) {
	restNoComment := strings.TrimSpace(stripComment(rest))
	switch {
	case isBlockScalarHeader(restNoComment):
		return p.parseBlockScalar(restNoComment, ln.indent)
	case restNoComment == "":
		// Nested block or null.
		next, ok := p.peek()
		if ok && next.indent > ln.indent {
			return p.parseBlock(ln.indent + 1)
		}
		return nil, nil
	default:
		return parseInline(restNoComment, ln.num, ln.indent)
	}
}

func (p *parser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for {
		ln, ok := p.peek()
		if !ok || ln.indent != indent {
			if ok && ln.indent > indent {
				return nil, syntaxErrorf(ln.num, ln.indent+1, "unexpected indentation")
			}
			return seq, nil
		}
		if ln.text != "-" && !strings.HasPrefix(ln.text, "- ") {
			return nil, syntaxErrorf(ln.num, ln.indent+1, "expected sequence item, got %q", ln.text)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " "))
		p.skipBlanks()
		if rest == "" {
			p.pos++ // bare "-": nested block item
			next, ok := p.peek()
			if ok && next.indent > indent {
				item, err := p.parseBlock(indent + 1)
				if err != nil {
					return nil, err
				}
				seq = append(seq, item)
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		if keyLen := mappingKeyLen(rest); keyLen >= 0 && !isBlockScalarHeader(strings.TrimSpace(stripComment(rest))) {
			// Compact mapping: "- key: value". Rewrite the current line as the
			// first mapping entry at the item's content indentation and parse a
			// mapping from there.
			offset := len(ln.text) - len(rest)
			p.lines[p.pos] = srcLine{num: ln.num, indent: indent + offset, text: rest}
			item, err := p.parseMapping(indent + offset)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		p.pos++
		item, err := p.parseEntryValue(rest, ln)
		if err != nil {
			return nil, err
		}
		seq = append(seq, item)
	}
}

// parseBlockScalar handles | and > scalars. header is "|", ">", optionally
// followed by a chomping indicator (+ or -).
func (p *parser) parseBlockScalar(header string, parentIndent int) (any, error) {
	style := header[0]
	chomp := byte(0)
	if len(header) > 1 {
		chomp = header[1]
	}
	var body []string
	blockIndent := -1
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.blank {
			body = append(body, "")
			p.pos++
			continue
		}
		if ln.indent <= parentIndent {
			break
		}
		if blockIndent == -1 {
			blockIndent = ln.indent
		}
		if ln.indent < blockIndent {
			break
		}
		body = append(body, ln.raw[blockIndent:])
		p.pos++
	}
	// Trim trailing blank lines recorded past the scalar's end.
	for len(body) > 0 && body[len(body)-1] == "" {
		body = body[:len(body)-1]
	}
	var s string
	if style == '|' {
		s = strings.Join(body, "\n")
	} else {
		s = foldLines(body)
	}
	switch chomp {
	case '-':
		return s, nil
	case '+':
		return s + "\n", nil
	default:
		if s == "" {
			return "", nil
		}
		return s + "\n", nil
	}
}

func foldLines(body []string) string {
	var b strings.Builder
	prevBlank := true
	for i, line := range body {
		switch {
		case line == "":
			b.WriteByte('\n')
			prevBlank = true
		case i == 0 || prevBlank:
			b.WriteString(line)
			prevBlank = false
		default:
			b.WriteByte(' ')
			b.WriteString(line)
		}
	}
	return b.String()
}

// mappingKeyLen returns the byte length of the mapping key in line (the text
// before the value-introducing colon), or -1 when line is not a mapping
// entry. The colon must be outside quotes and followed by a space or EOL.
func mappingKeyLen(line string) int {
	inSingle, inDouble := false, false
	depth := 0
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'':
			inSingle = true
		case c == '"':
			inDouble = true
		case c == '[' || c == '{':
			depth++
		case c == ']' || c == '}':
			depth--
		case c == ':' && depth == 0:
			if i+1 == len(line) || line[i+1] == ' ' || line[i+1] == '\t' {
				return i
			}
		case c == '#' && depth == 0 && i > 0 && (line[i-1] == ' ' || line[i-1] == '\t'):
			return -1
		}
	}
	return -1
}

// parseKey interprets a mapping key, unquoting when necessary.
func parseKey(s string, lineNum int) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", syntaxErrorf(lineNum, 1, "empty mapping key")
	}
	if s[0] == '\'' || s[0] == '"' {
		v, rest, err := parseQuoted(s, lineNum)
		if err != nil {
			return "", err
		}
		if strings.TrimSpace(rest) != "" {
			return "", syntaxErrorf(lineNum, 1, "unexpected content after quoted key")
		}
		return v, nil
	}
	if s[0] == '&' || s[0] == '*' || s[0] == '!' {
		return "", syntaxErrorf(lineNum, 1, "anchors, aliases, and tags are not supported (key %q)", s)
	}
	return s, nil
}

// parseInline parses a value that fits on one line: a flow collection, a
// quoted string, or a plain scalar.
func parseInline(s string, lineNum, col int) (any, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	switch s[0] {
	case '[', '{':
		fp := &flowParser{src: s, line: lineNum}
		v, err := fp.parseValue()
		if err != nil {
			return nil, err
		}
		fp.skipSpace()
		if fp.pos < len(fp.src) {
			return nil, syntaxErrorf(lineNum, col+fp.pos+1, "unexpected content %q after flow value", fp.src[fp.pos:])
		}
		return v, nil
	case '\'', '"':
		v, rest, err := parseQuoted(s, lineNum)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(rest) != "" {
			return nil, syntaxErrorf(lineNum, col+1, "unexpected content after quoted scalar")
		}
		return v, nil
	case '&', '*':
		return nil, syntaxErrorf(lineNum, col+1, "anchors and aliases are not supported")
	}
	if strings.HasPrefix(s, "!!") {
		return nil, syntaxErrorf(lineNum, col+1, "tags are not supported")
	}
	return plainScalar(s), nil
}

// parseQuoted parses a leading quoted string and returns the remainder.
func parseQuoted(s string, lineNum int) (string, string, error) {
	quote := s[0]
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if quote == '\'' {
			if c == '\'' {
				if i+1 < len(s) && s[i+1] == '\'' { // escaped quote
					b.WriteByte('\'')
					i += 2
					continue
				}
				return b.String(), s[i+1:], nil
			}
			b.WriteByte(c)
			i++
			continue
		}
		// double quote
		if c == '"' {
			return b.String(), s[i+1:], nil
		}
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				b.WriteByte('\\')
				b.WriteByte(s[i])
			}
			i++
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", "", syntaxErrorf(lineNum, 1, "unterminated %c-quoted string", quote)
}

// plainScalar resolves an unquoted scalar to its typed value.
func plainScalar(s string) any {
	switch s {
	case "null", "Null", "NULL", "~":
		return nil
	case "true", "True", "TRUE":
		return true
	case "false", "False", "FALSE":
		return false
	}
	if looksNumeric(s) {
		if n, err := strconv.ParseInt(s, 0, 64); err == nil {
			return n
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
	}
	return s
}

func looksNumeric(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	if c == '+' || c == '-' {
		if len(s) == 1 {
			return false
		}
		c = s[1]
	}
	return c >= '0' && c <= '9' || c == '.'
}

// flowParser parses flow collections: [a, b] and {k: v}.
type flowParser struct {
	src  string
	pos  int
	line int
}

func (f *flowParser) skipSpace() {
	for f.pos < len(f.src) && (f.src[f.pos] == ' ' || f.src[f.pos] == '\t') {
		f.pos++
	}
}

func (f *flowParser) errf(format string, args ...any) error {
	return syntaxErrorf(f.line, f.pos+1, format, args...)
}

func (f *flowParser) parseValue() (any, error) {
	f.skipSpace()
	if f.pos >= len(f.src) {
		return nil, f.errf("unexpected end of flow value")
	}
	switch f.src[f.pos] {
	case '[':
		return f.parseSeq()
	case '{':
		return f.parseMap()
	case '\'', '"':
		v, rest, err := parseQuoted(f.src[f.pos:], f.line)
		if err != nil {
			return nil, err
		}
		f.pos = len(f.src) - len(rest)
		return v, nil
	case '&', '*':
		return nil, f.errf("anchors and aliases are not supported")
	}
	return f.parsePlain()
}

func (f *flowParser) parsePlain() (any, error) {
	start := f.pos
	for f.pos < len(f.src) {
		c := f.src[f.pos]
		if c == ',' || c == ']' || c == '}' || c == ':' {
			if c == ':' && (f.pos+1 >= len(f.src) || f.src[f.pos+1] != ' ') {
				// colon not followed by space is part of a plain scalar
				f.pos++
				continue
			}
			break
		}
		f.pos++
	}
	s := strings.TrimSpace(f.src[start:f.pos])
	if s == "" {
		return nil, f.errf("empty flow scalar")
	}
	return plainScalar(s), nil
}

func (f *flowParser) parseSeq() (any, error) {
	f.pos++ // consume '['
	seq := []any{}
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == ']' {
		f.pos++
		return seq, nil
	}
	for {
		v, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, f.errf("unterminated flow sequence")
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
		case ']':
			f.pos++
			return seq, nil
		default:
			return nil, f.errf("expected ',' or ']' in flow sequence, got %q", f.src[f.pos])
		}
	}
}

func (f *flowParser) parseMap() (any, error) {
	f.pos++ // consume '{'
	m := NewMap()
	f.skipSpace()
	if f.pos < len(f.src) && f.src[f.pos] == '}' {
		f.pos++
		return m, nil
	}
	for {
		f.skipSpace()
		keyStart := f.pos
		var key string
		if f.pos < len(f.src) && (f.src[f.pos] == '\'' || f.src[f.pos] == '"') {
			v, rest, err := parseQuoted(f.src[f.pos:], f.line)
			if err != nil {
				return nil, err
			}
			f.pos = len(f.src) - len(rest)
			key = v
		} else {
			start := f.pos
			for f.pos < len(f.src) && f.src[f.pos] != ':' && f.src[f.pos] != ',' && f.src[f.pos] != '}' {
				f.pos++
			}
			key = strings.TrimSpace(f.src[start:f.pos])
		}
		f.skipSpace()
		if f.pos >= len(f.src) || f.src[f.pos] != ':' {
			return nil, f.errf("expected ':' after flow mapping key %q", key)
		}
		f.pos++
		v, err := f.parseValue()
		if err != nil {
			return nil, err
		}
		if m.Has(key) {
			return nil, f.errf("duplicate flow mapping key %q", key)
		}
		m.Set(key, v)
		m.SetKeyPos(key, Pos{Line: f.line, Col: keyStart + 1})
		f.skipSpace()
		if f.pos >= len(f.src) {
			return nil, f.errf("unterminated flow mapping")
		}
		switch f.src[f.pos] {
		case ',':
			f.pos++
		case '}':
			f.pos++
			return m, nil
		default:
			return nil, f.errf("expected ',' or '}' in flow mapping, got %q", f.src[f.pos])
		}
	}
}

// isBlockScalarHeader reports whether s introduces a literal or folded block
// scalar ("|", ">", optionally with a +/- chomping indicator).
func isBlockScalarHeader(s string) bool {
	if s == "" {
		return false
	}
	if s[0] != '|' && s[0] != '>' {
		return false
	}
	return len(s) == 1 || (len(s) == 2 && (s[1] == '+' || s[1] == '-'))
}

// stripComment removes a trailing comment from a line, respecting quoting.
// A '#' begins a comment only at line start or when preceded by whitespace.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inSingle:
			if c == '\'' {
				inSingle = false
			}
		case inDouble:
			if c == '\\' {
				i++
			} else if c == '"' {
				inDouble = false
			}
		case c == '\'':
			inSingle = true
		case c == '"':
			inDouble = true
		case c == '#' && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t'):
			return strings.TrimRight(s[:i], " \t")
		}
	}
	return s
}

// indentOf counts leading spaces; tab indentation is a YAML error.
func indentOf(s string, lineNum int) (int, error) {
	n := 0
	for n < len(s) {
		switch s[n] {
		case ' ':
			n++
		case '\t':
			return 0, syntaxErrorf(lineNum, n+1, "tab characters are not allowed in indentation")
		default:
			return n, nil
		}
	}
	return n, nil
}
