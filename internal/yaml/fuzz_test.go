package yaml

import (
	"testing"
)

// FuzzDecode hammers the YAML decoder with arbitrary bytes — CVL rule
// files arrive over HTTP (/v1/lint) and from user repositories, so the
// decoder must never panic and every accepted document must survive an
// encode/decode round trip.
//
//	go test -fuzz FuzzDecode -fuzztime 10s ./internal/yaml/
func FuzzDecode(f *testing.F) {
	for _, seed := range []string{
		"",
		"key: value\n",
		"rules:\n  - name: a\n    preferred_value: [x, y]\n",
		"a: 1\nb:\n  - 2\n  - 3\nc:\n  d: e\n",
		"name: \"quoted: colon\"\nnum: -3.5\nflag: true\n",
		"block: |\n  line one\n  line two\n",
		"folded: >\n  joined\n  words\n",
		"- one\n- two\n-\n",
		"empty:\nnull_value: ~\n",
		"deep:\n  a:\n    b:\n      c: [1, {d: 2}]\n",
		"tabs:\tafter\n",
		"x: [unclosed\n",
		"---\ndoc: 1\n---\ndoc: 2\n",
		"key: value # trailing comment\n# full comment\n",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err == nil {
			// Accepted input must re-encode, and the re-encoded form must
			// still be accepted — no one-way documents.
			out, err := Encode(v)
			if err != nil {
				t.Fatalf("decoded value does not encode: %v", err)
			}
			if _, err := Decode(out); err != nil {
				t.Fatalf("re-encoded document rejected: %v\n%s", err, out)
			}
		}
		if _, err := DecodeAll(data); err != nil {
			return
		}
	})
}
