package yaml

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func mustDecode(t *testing.T, src string) any {
	t.Helper()
	v, err := Decode([]byte(src))
	if err != nil {
		t.Fatalf("Decode(%q) error: %v", src, err)
	}
	return v
}

func asMap(t *testing.T, v any) *Map {
	t.Helper()
	m, ok := v.(*Map)
	if !ok {
		t.Fatalf("expected *Map, got %T (%v)", v, v)
	}
	return m
}

func TestDecodeScalars(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want any
	}{
		{"string", "hello", "hello"},
		{"int", "42", int64(42)},
		{"negative int", "-7", int64(-7)},
		{"hex int", "0x1f", int64(31)},
		{"float", "3.14", 3.14},
		{"bool true", "true", true},
		{"bool false", "False", false},
		{"null word", "null", nil},
		{"null tilde", "~", nil},
		{"quoted number stays string", `"42"`, "42"},
		{"single quoted", `'hello world'`, "hello world"},
		{"single quote escape", `'it''s'`, "it's"},
		{"double quote escapes", `"a\tb\nc"`, "a\tb\nc"},
		{"version-like string", "1.2.3", "1.2.3"},
		{"plain with comma", "substr ,any", "substr ,any"},
		{"plain with colon no space", "0:0", "0:0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := mustDecode(t, tt.src)
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Decode(%q) = %#v, want %#v", tt.src, got, tt.want)
			}
		})
	}
}

func TestDecodeEmpty(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# just a comment\n", "   \n\t\n"} {
		v, err := Decode([]byte(src))
		if err != nil {
			t.Fatalf("Decode(%q) error: %v", src, err)
		}
		if v != nil {
			t.Errorf("Decode(%q) = %v, want nil", src, v)
		}
	}
}

func TestDecodeBlockMapping(t *testing.T) {
	src := `
name: nginx
enabled: true
port: 8080
weight: 2.5
none: null
`
	m := asMap(t, mustDecode(t, src))
	if got := m.Keys(); !reflect.DeepEqual(got, []string{"name", "enabled", "port", "weight", "none"}) {
		t.Fatalf("key order = %v", got)
	}
	if v, _ := m.String("name"); v != "nginx" {
		t.Errorf("name = %v", v)
	}
	if v, _ := m.Bool("enabled"); v != true {
		t.Errorf("enabled = %v", v)
	}
	if v, _ := m.Int("port"); v != 8080 {
		t.Errorf("port = %v", v)
	}
	if v, ok := m.Get("none"); !ok || v != nil {
		t.Errorf("none = %v ok=%v", v, ok)
	}
}

func TestDecodeNestedMapping(t *testing.T) {
	src := `
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file:
    "component_configs/nginx.yaml"
`
	m := asMap(t, mustDecode(t, src))
	nginx, ok := m.Map("nginx")
	if !ok {
		t.Fatal("nginx key missing or not a map")
	}
	if v, _ := nginx.Bool("enabled"); !v {
		t.Error("enabled should be true")
	}
	paths, ok := nginx.Seq("config_search_paths")
	if !ok || len(paths) != 1 || paths[0] != "/etc/nginx" {
		t.Errorf("config_search_paths = %v", paths)
	}
	// A scalar continued on the next (indented) line is not supported by the
	// subset as a multiline plain scalar, but a quoted scalar on its own
	// indented line decodes as the value.
	if v, _ := nginx.Get("cvl_file"); v != "component_configs/nginx.yaml" {
		t.Errorf("cvl_file = %v", v)
	}
}

func TestDecodeFlowCollections(t *testing.T) {
	src := `
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
tags: ["#security", "#ssl", "#owasp"]
mixed: [1, two, 3.0, true, null]
empty_seq: []
empty_map: {}
inline_map: {a: 1, b: "x"}
nested: [[1, 2], {k: [3]}]
`
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.Seq("preferred_value"); !reflect.DeepEqual(v, []any{"TLSv1.2", "TLSv1.3"}) {
		t.Errorf("preferred_value = %#v", v)
	}
	if v, _ := m.Seq("tags"); !reflect.DeepEqual(v, []any{"#security", "#ssl", "#owasp"}) {
		t.Errorf("tags = %#v", v)
	}
	if v, _ := m.Seq("mixed"); !reflect.DeepEqual(v, []any{int64(1), "two", 3.0, true, nil}) {
		t.Errorf("mixed = %#v", v)
	}
	if v, _ := m.Seq("empty_seq"); len(v) != 0 {
		t.Errorf("empty_seq = %#v", v)
	}
	if v, ok := m.Map("empty_map"); !ok || v.Len() != 0 {
		t.Errorf("empty_map = %#v", v)
	}
	im, _ := m.Map("inline_map")
	if v, _ := im.Int("a"); v != 1 {
		t.Errorf("inline_map.a = %v", v)
	}
	nested, _ := m.Seq("nested")
	if len(nested) != 2 {
		t.Fatalf("nested = %#v", nested)
	}
	if !reflect.DeepEqual(nested[0], []any{int64(1), int64(2)}) {
		t.Errorf("nested[0] = %#v", nested[0])
	}
}

func TestDecodeBlockSequence(t *testing.T) {
	src := `
- alpha
- 2
- true
-
- nested:
    x: 1
`
	v := mustDecode(t, src)
	seq, ok := v.([]any)
	if !ok || len(seq) != 5 {
		t.Fatalf("got %#v", v)
	}
	if seq[0] != "alpha" || seq[1] != int64(2) || seq[2] != true || seq[3] != nil {
		t.Errorf("items = %#v", seq[:4])
	}
	item, ok := seq[4].(*Map)
	if !ok {
		t.Fatalf("seq[4] = %#v", seq[4])
	}
	nested, ok := item.Map("nested")
	if !ok {
		t.Fatalf("nested missing: %#v", item)
	}
	if n, _ := nested.Int("x"); n != 1 {
		t.Errorf("x = %v", n)
	}
}

func TestDecodeCompactSequenceOfMappings(t *testing.T) {
	src := `
rules:
  - config_name: PermitRootLogin
    preferred_value: [ "no" ]
  - config_name: Protocol
    preferred_value: [ "2" ]
`
	m := asMap(t, mustDecode(t, src))
	rules, ok := m.Seq("rules")
	if !ok || len(rules) != 2 {
		t.Fatalf("rules = %#v", rules)
	}
	r0 := rules[0].(*Map)
	if v, _ := r0.String("config_name"); v != "PermitRootLogin" {
		t.Errorf("rule 0 config_name = %v", v)
	}
	pv, _ := r0.Seq("preferred_value")
	if !reflect.DeepEqual(pv, []any{"no"}) {
		t.Errorf("rule 0 preferred_value = %#v", pv)
	}
	r1 := rules[1].(*Map)
	if v, _ := r1.String("config_name"); v != "Protocol" {
		t.Errorf("rule 1 config_name = %v", v)
	}
}

func TestDecodeComments(t *testing.T) {
	src := `
# leading comment
key: value  # trailing comment
quoted: "a # not a comment"
single: 'b # also kept'
tagged: "#security"
`
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.String("key"); v != "value" {
		t.Errorf("key = %q", v)
	}
	if v, _ := m.String("quoted"); v != "a # not a comment" {
		t.Errorf("quoted = %q", v)
	}
	if v, _ := m.String("single"); v != "b # also kept" {
		t.Errorf("single = %q", v)
	}
	if v, _ := m.String("tagged"); v != "#security" {
		t.Errorf("tagged = %q", v)
	}
}

func TestDecodeBlockScalars(t *testing.T) {
	src := `
literal: |
  line one
  line two
folded: >
  word one
  word two
clipped: |-
  no trailing newline
kept: |+
  keeps newline
after: done
`
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.String("literal"); v != "line one\nline two\n" {
		t.Errorf("literal = %q", v)
	}
	if v, _ := m.String("folded"); v != "word one word two\n" {
		t.Errorf("folded = %q", v)
	}
	if v, _ := m.String("clipped"); v != "no trailing newline" {
		t.Errorf("clipped = %q", v)
	}
	if v, _ := m.String("kept"); v != "keeps newline\n" {
		t.Errorf("kept = %q", v)
	}
	if v, _ := m.String("after"); v != "done" {
		t.Errorf("after = %q", v)
	}
}

func TestDecodeMultiDocument(t *testing.T) {
	src := `a: 1
---
b: 2
---
- x
`
	docs, err := DecodeAll([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs", len(docs))
	}
	if n, _ := docs[0].(*Map).Int("a"); n != 1 {
		t.Errorf("doc0 a = %v", n)
	}
	if n, _ := docs[1].(*Map).Int("b"); n != 2 {
		t.Errorf("doc1 b = %v", n)
	}
	if seq := docs[2].([]any); seq[0] != "x" {
		t.Errorf("doc2 = %#v", docs[2])
	}
}

func TestDecodePaperListing2(t *testing.T) {
	// The config tree rule from the paper (Listing 2), verbatim structure.
	src := `
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1", "TLSv1.1" ]
non_preferred_value_match: substr ,any
preferred_value_match: substr ,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non -recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen , ssl_certificate , ssl_certificate_key ]
file_context: ["nginx.conf", "sites -enabled"]
`
	m := asMap(t, mustDecode(t, src))
	if m.Len() != 13 {
		t.Errorf("expected 13 keys, got %d: %v", m.Len(), m.Keys())
	}
	if v, _ := m.String("non_preferred_value_match"); v != "substr ,any" {
		t.Errorf("non_preferred_value_match = %q", v)
	}
	roc, _ := m.Seq("require_other_configs")
	if !reflect.DeepEqual(roc, []any{"listen", "ssl_certificate", "ssl_certificate_key"}) {
		t.Errorf("require_other_configs = %#v", roc)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"tab indentation", "a:\n\tb: 1\n"},
		{"anchor", "a: &anchor 1\n"},
		{"alias", "a: *anchor\n"},
		{"tag", "a: !!str 5\n"},
		{"duplicate key", "a: 1\na: 2\n"},
		{"duplicate flow key", "m: {a: 1, a: 2}\n"},
		{"unterminated quote", `a: "oops` + "\n"},
		{"unterminated flow seq", "a: [1, 2\n"},
		{"unterminated flow map", "a: {x: 1\n"},
		{"empty flow scalar", "a: [1, ,2]\n"},
		{"stray content after flow", "a: [1] extra\n"},
		{"multiple docs via Decode", "a: 1\n---\nb: 2\n"},
		{"mixed seq into map", "a: 1\n- b\n"},
		{"over-indented continuation", "a: 1\n   b: 2\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode([]byte(tt.src)); err == nil {
				t.Errorf("Decode(%q) succeeded, want error", tt.src)
			}
		})
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Decode([]byte("ok: 1\nbad: &x 2\n"))
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("expected *SyntaxError, got %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("error message %q should contain position", se.Error())
	}
}

func TestDecodeCRLF(t *testing.T) {
	src := "a: 1\r\nb: two\r\n"
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.Int("a"); v != 1 {
		t.Errorf("a = %v", v)
	}
	if v, _ := m.String("b"); v != "two" {
		t.Errorf("b = %q", v)
	}
}

func TestDecodeQuotedKeys(t *testing.T) {
	src := `
"quoted key": 1
'single key': 2
`
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.Int("quoted key"); v != 1 {
		t.Errorf("quoted key = %v", v)
	}
	if v, _ := m.Int("single key"); v != 2 {
		t.Errorf("single key = %v", v)
	}
}

func TestDecodeDirectiveSkipped(t *testing.T) {
	src := "%YAML 1.1\n---\na: 1\n"
	m := asMap(t, mustDecode(t, src))
	if v, _ := m.Int("a"); v != 1 {
		t.Errorf("a = %v", v)
	}
}

func TestDecodeDeepNesting(t *testing.T) {
	src := `
l1:
  l2:
    l3:
      l4:
        leaf: deep
`
	m := asMap(t, mustDecode(t, src))
	cur := m
	for _, k := range []string{"l1", "l2", "l3", "l4"} {
		next, ok := cur.Map(k)
		if !ok {
			t.Fatalf("missing level %s", k)
		}
		cur = next
	}
	if v, _ := cur.String("leaf"); v != "deep" {
		t.Errorf("leaf = %q", v)
	}
}

func TestDecodeKeyPositions(t *testing.T) {
	src := `config_name: x
nested:
  inner: 1
list:
  - item_key: v
`
	m := asMap(t, mustDecode(t, src))
	if p := m.KeyPos("config_name"); p.Line != 1 || p.Col != 1 {
		t.Errorf("config_name pos = %v", p)
	}
	if p := m.KeyPos("nested"); p.Line != 2 || p.Col != 1 {
		t.Errorf("nested pos = %v", p)
	}
	inner, _ := m.Map("nested")
	if p := inner.KeyPos("inner"); p.Line != 3 || p.Col != 3 {
		t.Errorf("inner pos = %v", p)
	}
	if p := m.Start(); p.Line != 1 || p.Col != 1 {
		t.Errorf("start = %v", p)
	}
	seq, _ := m.Seq("list")
	item := seq[0].(*Map)
	if p := item.KeyPos("item_key"); p.Line != 5 || p.Col != 5 {
		t.Errorf("item_key pos = %v", p)
	}
}

func TestDecodeKeyPositionsMultiDoc(t *testing.T) {
	src := "---\na: 1\n---\nb: 2\n"
	docs, err := DecodeAll([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p := docs[0].(*Map).KeyPos("a"); p.Line != 2 {
		t.Errorf("a pos = %v", p)
	}
	if p := docs[1].(*Map).KeyPos("b"); p.Line != 4 {
		t.Errorf("b pos = %v", p)
	}
}

func TestKeyPosUnknownForProgrammaticMaps(t *testing.T) {
	m := NewMap()
	m.Set("k", 1)
	if p := m.KeyPos("k"); !p.IsZero() {
		t.Errorf("programmatic key pos = %v, want zero", p)
	}
	if !m.Start().IsZero() {
		t.Errorf("programmatic start = %v, want zero", m.Start())
	}
	m.SetKeyPos("k", Pos{Line: 3, Col: 2})
	if p := m.KeyPos("k"); p.Line != 3 || p.Col != 2 {
		t.Errorf("explicit key pos = %v", p)
	}
	m.Delete("k")
	if p := m.KeyPos("k"); !p.IsZero() {
		t.Errorf("deleted key pos = %v, want zero", p)
	}
}
