// Package remediate turns failing validation results into concrete fix
// proposals: edited configuration files that would make the rule pass.
// It extends the paper's Output Processing stage (which attaches "a
// possible suggestive action" to each failure) from advice to an actual
// candidate edit, using the lenses' write-back direction.
//
// Remediation is deliberately conservative: only config-tree rules with an
// unambiguous correct value (exactly one preferred value, or an exact-match
// preferred list) and a renderer-capable lens produce proposals; everything
// else returns ErrNotRemediable with a reason.
package remediate

import (
	"errors"
	"fmt"

	"configvalidator/internal/configtree"
	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
	"configvalidator/internal/lens"
)

// ErrNotRemediable reports a failure this package cannot propose an edit
// for.
var ErrNotRemediable = errors.New("remediate: not remediable")

// Proposal is one suggested configuration edit.
type Proposal struct {
	// File is the configuration file to change.
	File string
	// Original is the file's current content.
	Original []byte
	// Fixed is the proposed content.
	Fixed []byte
	// Description explains the edit.
	Description string
	// Rule is the rule the edit satisfies.
	Rule *cvl.Rule
}

// Remediator builds proposals from results.
type Remediator struct {
	registry *lens.Registry
}

// New creates a Remediator; a nil registry uses lens.Default().
func New(registry *lens.Registry) *Remediator {
	if registry == nil {
		registry = lens.Default()
	}
	return &Remediator{registry: registry}
}

// Propose builds a fix for one failing result against the entity the scan
// ran on. It returns ErrNotRemediable (wrapped with the reason) when no
// safe automatic edit exists.
func (r *Remediator) Propose(ent entity.Entity, res *engine.Result) (*Proposal, error) {
	if res.Status != engine.StatusFail {
		return nil, fmt.Errorf("%w: result is %v, not FAIL", ErrNotRemediable, res.Status)
	}
	rule := res.Rule
	if rule == nil {
		return nil, fmt.Errorf("%w: no rule attached (config parse error)", ErrNotRemediable)
	}
	if rule.Type != cvl.TypeTree {
		return nil, fmt.Errorf("%w: only config-tree rules are remediable, got %s", ErrNotRemediable, rule.Type)
	}
	fix, err := fixValue(rule)
	if err != nil {
		return nil, err
	}
	file := res.File
	if file == "" {
		return nil, fmt.Errorf("%w: result does not identify a configuration file", ErrNotRemediable)
	}
	l, ok := r.registry.ForFile(file)
	if !ok {
		return nil, fmt.Errorf("%w: no lens for %s", ErrNotRemediable, file)
	}
	renderer, ok := l.(lens.Renderer)
	if !ok {
		return nil, fmt.Errorf("%w: lens %s cannot write back", ErrNotRemediable, l.Name())
	}
	original, err := ent.ReadFile(file)
	if err != nil {
		return nil, fmt.Errorf("remediate: read %s: %w", file, err)
	}
	parsed, err := l.Parse(file, original)
	if err != nil {
		return nil, fmt.Errorf("remediate: parse %s: %w", file, err)
	}
	if parsed.Kind != lens.KindTree {
		return nil, fmt.Errorf("%w: %s normalizes to a %s, not a tree", ErrNotRemediable, file, parsed.Kind)
	}
	tree := parsed.Tree

	edited, err := applyFix(tree, rule, fix)
	if err != nil {
		return nil, err
	}
	if !edited {
		return nil, fmt.Errorf("%w: no matching node to edit in %s", ErrNotRemediable, file)
	}
	fixed, err := renderer.Render(tree)
	if err != nil {
		return nil, fmt.Errorf("remediate: render %s: %w", file, err)
	}
	return &Proposal{
		File:        file,
		Original:    original,
		Fixed:       fixed,
		Description: fmt.Sprintf("set %s to %q in %s", rule.Name, fix, file),
		Rule:        rule,
	}, nil
}

// ProposeAll builds proposals for every remediable failure in the report;
// non-remediable failures are skipped.
func (r *Remediator) ProposeAll(ent entity.Entity, rep *engine.Report) []*Proposal {
	var out []*Proposal
	for _, res := range rep.Failed() {
		p, err := r.Propose(ent, res)
		if err != nil {
			continue
		}
		out = append(out, p)
	}
	return out
}

// fixValue determines the unambiguous correct value for a rule.
func fixValue(rule *cvl.Rule) (string, error) {
	if len(rule.PreferredValue) == 0 {
		return "", fmt.Errorf("%w: rule %s has no preferred value to set", ErrNotRemediable, rule.Name)
	}
	kind := rule.PreferredMatch.Kind
	if kind == cvl.MatchRegex {
		return "", fmt.Errorf("%w: rule %s matches by regex; no canonical value", ErrNotRemediable, rule.Name)
	}
	if len(rule.PreferredValue) > 1 && rule.PreferredMatch.Quant != cvl.QuantAll {
		// Several acceptable alternatives: pick the first, which rule
		// authors conventionally order most-preferred-first.
		return rule.PreferredValue[0], nil
	}
	if len(rule.PreferredValue) > 1 {
		if kind == cvl.MatchExact {
			// exact,all over several values cannot be satisfied by any
			// single assignment.
			return "", fmt.Errorf("%w: rule %s requires several exact values simultaneously", ErrNotRemediable, rule.Name)
		}
		// substr,all style lists (e.g. TLSv1.2 + TLSv1.3) join into one
		// value assignment.
		joined := rule.PreferredValue[0]
		for _, v := range rule.PreferredValue[1:] {
			joined += " " + v
		}
		return joined, nil
	}
	return rule.PreferredValue[0], nil
}

// applyFix sets the fix value on every node the rule addresses; when the
// key is absent it is inserted at the first config path.
func applyFix(tree *configtree.Node, rule *cvl.Rule, fix string) (bool, error) {
	paths := rule.ConfigPath
	if len(paths) == 0 {
		paths = []string{""}
	}
	edited := false
	for _, p := range paths {
		query := rule.Name
		if trimmed := trimSlashes(p); trimmed != "" {
			query = trimmed + "/" + rule.Name
		}
		for _, node := range tree.Find(query) {
			node.Value = fix
			edited = true
		}
	}
	if edited {
		return true, nil
	}
	// Key absent: insert under the first path that exists in the tree.
	for _, p := range paths {
		trimmed := trimSlashes(p)
		if trimmed == "" {
			tree.Add(rule.Name, fix)
			return true, nil
		}
		if containsPattern(trimmed) {
			continue // cannot insert along a glob path
		}
		if parents := tree.Find(trimmed); len(parents) > 0 {
			parents[0].Add(rule.Name, fix)
			return true, nil
		}
	}
	return false, nil
}

func trimSlashes(s string) string {
	for len(s) > 0 && s[0] == '/' {
		s = s[1:]
	}
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func containsPattern(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' || s[i] == '[' {
			return true
		}
	}
	return false
}
