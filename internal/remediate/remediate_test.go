package remediate

import (
	"errors"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
)

func mustRules(t *testing.T, src string) []*cvl.Rule {
	t.Helper()
	rf, err := cvl.ParseRuleFile("r.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return rf.Rules
}

func scan(t *testing.T, ent entity.Entity, rulesSrc string, paths ...string) *engine.Report {
	t.Helper()
	rep, err := engine.New(nil).ValidateRules(ent, mustRules(t, rulesSrc), paths)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// rescan verifies a proposal: applying the fix makes the rule pass.
func rescan(t *testing.T, ent *entity.Mem, p *Proposal, rulesSrc string, paths ...string) {
	t.Helper()
	ent.AddFile(p.File, p.Fixed)
	rep := scan(t, ent, rulesSrc, paths...)
	for _, r := range rep.Results {
		if r.Status == engine.StatusFail || r.Status == engine.StatusError {
			t.Errorf("after remediation: [%v] %s (%s)\nfixed content:\n%s", r.Status, r.Message, r.Detail, p.Fixed)
		}
	}
}

const permitRootRule = `
config_name: PermitRootLogin
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
not_matched_preferred_value_description: "root login enabled"
not_present_description: "PermitRootLogin missing"
`

func TestProposeFixesWrongValue(t *testing.T) {
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("Port 22\nPermitRootLogin yes\n"))
	rep := scan(t, ent, permitRootRule, "/etc/ssh")
	failed := rep.Failed()
	if len(failed) != 1 {
		t.Fatalf("failures = %d", len(failed))
	}
	p, err := New(nil).Propose(ent, failed[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.File != "/etc/ssh/sshd_config" || !strings.Contains(string(p.Fixed), "PermitRootLogin no") {
		t.Errorf("proposal = %+v\nfixed:\n%s", p.Description, p.Fixed)
	}
	if !strings.Contains(string(p.Fixed), "Port 22") {
		t.Error("unrelated directives lost")
	}
	rescan(t, ent, p, permitRootRule, "/etc/ssh")
}

func TestProposeSkipsNonFailures(t *testing.T) {
	r := New(nil)
	if _, err := r.Propose(entity.NewMem("h", entity.TypeHost), &engine.Result{Status: engine.StatusPass}); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("pass result: %v", err)
	}
	if _, err := r.Propose(entity.NewMem("h", entity.TypeHost), &engine.Result{Status: engine.StatusFail}); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("nil rule: %v", err)
	}
}

func TestProposeRejectsRegexRules(t *testing.T) {
	rule := `
config_name: MaxAuthTries
config_path: [""]
preferred_value: ["^[1-4]$"]
preferred_value_match: regex,any
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("MaxAuthTries 9\n"))
	rep := scan(t, ent, rule, "/etc/ssh")
	_, err := New(nil).Propose(ent, rep.Failed()[0])
	if !errors.Is(err, ErrNotRemediable) || !strings.Contains(err.Error(), "regex") {
		t.Errorf("regex rule: %v", err)
	}
}

func TestProposeRejectsExactAllMultiValue(t *testing.T) {
	rule := `
config_name: Impossible
config_path: [""]
preferred_value: ["a", "b"]
preferred_value_match: exact,all
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("Impossible c\n"))
	rep := scan(t, ent, rule, "/etc/ssh")
	if _, err := New(nil).Propose(ent, rep.Failed()[0]); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("exact,all multi-value: %v", err)
	}
}

func TestProposeJoinsSubstrAllValues(t *testing.T) {
	rule := `
config_name: ssl_protocols
config_path: ["http/server"]
file_context: ["nginx.conf"]
preferred_value: ["TLSv1.2", "TLSv1.3"]
preferred_value_match: substr,all
not_present_description: "missing"
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/nginx/nginx.conf", []byte("http {\n    server {\n        listen 443 ssl;\n        ssl_protocols SSLv3;\n    }\n}\n"))
	rep := scan(t, ent, rule, "/etc/nginx")
	p, err := New(nil).Propose(ent, rep.Failed()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(p.Fixed), "ssl_protocols TLSv1.2 TLSv1.3;") {
		t.Errorf("fixed:\n%s", p.Fixed)
	}
	rescan(t, ent, p, rule, "/etc/nginx")
}

func TestProposeInsertsMissingKey(t *testing.T) {
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("Port 22\n"))
	rep := scan(t, ent, permitRootRule, "/etc/ssh")
	failed := rep.Failed()
	if len(failed) != 1 {
		t.Fatalf("failures = %d: %+v", len(failed), rep.Results)
	}
	// The not-present failure carries no file; remediation needs one, so
	// point it at the crawled config.
	failed[0].File = "/etc/ssh/sshd_config"
	p, err := New(nil).Propose(ent, failed[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(p.Fixed), "PermitRootLogin no") {
		t.Errorf("fixed:\n%s", p.Fixed)
	}
	rescan(t, ent, p, permitRootRule, "/etc/ssh")
}

func TestProposeInsertsIntoSection(t *testing.T) {
	rule := `
config_name: local-infile
config_path: ["mysqld"]
file_context: ["my.cnf"]
preferred_value: ["0"]
not_present_description: "missing"
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\nuser = mysql\n"))
	rep := scan(t, ent, rule, "/etc/mysql")
	failed := rep.Failed()
	failed[0].File = "/etc/mysql/my.cnf"
	p, err := New(nil).Propose(ent, failed[0])
	if err != nil {
		t.Fatal(err)
	}
	fixed := string(p.Fixed)
	if !strings.Contains(fixed, "[mysqld]") || !strings.Contains(fixed, "local-infile = 0") {
		t.Errorf("fixed:\n%s", fixed)
	}
	rescan(t, ent, p, rule, "/etc/mysql")
}

func TestProposeAllFiltersNonRemediable(t *testing.T) {
	rules := permitRootRule + `
---
path_name: /etc/shadow
ownership: "0:42"
not_present_description: "missing shadow"
---
config_name: Ciphers
config_path: [""]
non_preferred_value: ["3des"]
non_preferred_value_match: substr,any
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\nCiphers 3des-cbc\n"))
	rep := scan(t, ent, rules, "/etc/ssh")
	if len(rep.Failed()) != 3 {
		t.Fatalf("failures = %d", len(rep.Failed()))
	}
	proposals := New(nil).ProposeAll(ent, rep)
	// Only PermitRootLogin is remediable: the path rule isn't a tree rule,
	// and the Ciphers rule has no preferred value to set.
	if len(proposals) != 1 || proposals[0].Rule.Name != "PermitRootLogin" {
		t.Errorf("proposals = %+v", proposals)
	}
}

func TestProposeMoreNonRemediablePaths(t *testing.T) {
	r := New(nil)
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\n"))

	// Failing result without a file reference.
	rep := scan(t, ent, permitRootRule, "/etc/ssh")
	noFile := *rep.Failed()[0]
	noFile.File = ""
	if _, err := r.Propose(ent, &noFile); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("no file: %v", err)
	}
	// File with no registered lens.
	badLens := *rep.Failed()[0]
	badLens.File = "/opt/unknown.bin"
	if _, err := r.Propose(ent, &badLens); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("no lens: %v", err)
	}
	// File that exists but points at a schema lens (no tree to edit).
	schemaFile := *rep.Failed()[0]
	schemaFile.File = "/etc/fstab"
	ent.AddFile("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"))
	if _, err := r.Propose(ent, &schemaFile); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("schema lens: %v", err)
	}
	// Referenced file missing from the entity.
	gone := *rep.Failed()[0]
	gone.File = "/etc/ssh/ghost_config"
	if _, err := r.Propose(ent, &gone); err == nil {
		t.Error("missing file accepted")
	}
	// Glob config paths cannot host an insertion.
	globRule := `
config_name: NewKey
config_path: ["ser*ion"]
file_context: ["sshd_config"]
preferred_value: ["x"]
`
	globRep := scan(t, ent, globRule, "/etc/ssh")
	res := *globRep.Failed()[0]
	res.File = "/etc/ssh/sshd_config"
	if _, err := r.Propose(ent, &res); !errors.Is(err, ErrNotRemediable) {
		t.Errorf("glob path: %v", err)
	}
}

func TestProposeSchemaRuleNotRemediable(t *testing.T) {
	rule := `
config_schema_name: tmp_partition
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
non_preferred_value: [""]
non_preferred_value_match: exact,all
`
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"))
	rep := scan(t, ent, rule, "/etc/fstab")
	_, err := New(nil).Propose(ent, rep.Failed()[0])
	if !errors.Is(err, ErrNotRemediable) {
		t.Errorf("schema rule: %v", err)
	}
}
