package lens

import (
	"math/rand"
	"testing"
)

// TestLensesNoPanicOnGarbage feeds every registered lens random bytes and
// mutated fragments of real configs; lenses must return a tree, a table,
// or an error — never panic.
func TestLensesNoPanicOnGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	fragments := []string{
		sampleNginx, sampleApache, sampleMyCnf, sampleSSHD, sampleSysctl,
		sampleHadoop, sampleFstab, samplePasswd, sampleAudit,
		"{\"k\": [1,", "<configuration><property>", "install cramfs",
	}
	alphabet := []byte("abcdefgh {};=:#<>/\\\"'\n\t-.*!$()[]0123456789")
	reg := Default()
	lenses := make([]Lens, 0, 16)
	for _, name := range reg.Names() {
		l, _ := reg.ByName(name)
		lenses = append(lenses, l)
	}
	for i := 0; i < 2000; i++ {
		var input []byte
		if i%2 == 0 {
			frag := fragments[r.Intn(len(fragments))]
			start := r.Intn(len(frag))
			end := start + r.Intn(len(frag)-start)
			input = []byte(frag[start:end])
			for j := 0; j < r.Intn(4); j++ {
				if len(input) == 0 {
					break
				}
				input[r.Intn(len(input))] = alphabet[r.Intn(len(alphabet))]
			}
		} else {
			input = make([]byte, r.Intn(200))
			for j := range input {
				input[j] = alphabet[r.Intn(len(alphabet))]
			}
		}
		l := lenses[r.Intn(len(lenses))]
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("lens %s panicked on %q: %v", l.Name(), input, p)
				}
			}()
			_, _ = l.Parse("fuzz", input)
		}()
	}
}
