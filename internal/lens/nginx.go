package lens

import (
	"strings"

	"configvalidator/internal/configtree"
)

// Nginx parses nginx configuration files: semicolon-terminated directives
// and brace-delimited blocks, nested arbitrarily. A directive "listen 443
// ssl;" becomes a node labelled "listen" with value "443 ssl"; a block
// "server { ... }" becomes a section labelled "server" whose value holds the
// block arguments (e.g. "location /api" -> label "location", value "/api").
type Nginx struct{}

var _ Lens = (*Nginx)(nil)

// NewNginx returns the nginx lens.
func NewNginx() *Nginx { return &Nginx{} }

// Name implements Lens.
func (l *Nginx) Name() string { return "nginx" }

// Kind implements Lens.
func (l *Nginx) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *Nginx) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	tok := newNginxTokenizer(string(content))
	if err := parseNginxBlock(tok, root, path, true); err != nil {
		return nil, err
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

// parseNginxBlock consumes tokens into parent until '}' (or EOF at top
// level).
func parseNginxBlock(tok *nginxTokenizer, parent *configtree.Node, path string, top bool) error {
	var words []string
	var firstLine int
	for {
		t, ok := tok.next()
		if !ok {
			if !top {
				return parseErrorf("nginx", path, tok.line, "unexpected end of file inside block")
			}
			if len(words) > 0 {
				return parseErrorf("nginx", path, firstLine, "directive %q missing terminating ';'", strings.Join(words, " "))
			}
			return nil
		}
		switch t.kind {
		case nginxWord:
			if len(words) == 0 {
				firstLine = t.line
			}
			words = append(words, t.text)
		case nginxSemi:
			if len(words) == 0 {
				continue // stray semicolon
			}
			node := parent.Add(words[0], strings.Join(words[1:], " "))
			node.Line = firstLine
			words = nil
		case nginxOpen:
			if len(words) == 0 {
				return parseErrorf("nginx", path, t.line, "'{' without a block name")
			}
			section := parent.Section(words[0])
			section.Value = strings.Join(words[1:], " ")
			section.Line = firstLine
			words = nil
			if err := parseNginxBlock(tok, section, path, false); err != nil {
				return err
			}
		case nginxClose:
			if top {
				return parseErrorf("nginx", path, t.line, "unbalanced '}'")
			}
			if len(words) > 0 {
				return parseErrorf("nginx", path, firstLine, "directive %q missing terminating ';'", strings.Join(words, " "))
			}
			return nil
		}
	}
}

type nginxTokenKind int

const (
	nginxWord nginxTokenKind = iota + 1
	nginxSemi
	nginxOpen
	nginxClose
)

type nginxToken struct {
	kind nginxTokenKind
	text string
	line int
}

type nginxTokenizer struct {
	src  string
	pos  int
	line int
}

func newNginxTokenizer(src string) *nginxTokenizer {
	return &nginxTokenizer{src: src, line: 1}
}

func (t *nginxTokenizer) next() (nginxToken, bool) {
	for t.pos < len(t.src) {
		c := t.src[t.pos]
		switch {
		case c == '\n':
			t.line++
			t.pos++
		case c == ' ' || c == '\t' || c == '\r':
			t.pos++
		case c == '#':
			for t.pos < len(t.src) && t.src[t.pos] != '\n' {
				t.pos++
			}
		case c == ';':
			t.pos++
			return nginxToken{kind: nginxSemi, line: t.line}, true
		case c == '{':
			t.pos++
			return nginxToken{kind: nginxOpen, line: t.line}, true
		case c == '}':
			t.pos++
			return nginxToken{kind: nginxClose, line: t.line}, true
		case c == '"' || c == '\'':
			start := t.pos
			quote := c
			t.pos++
			for t.pos < len(t.src) && t.src[t.pos] != quote {
				if t.src[t.pos] == '\\' {
					t.pos++
				}
				if t.pos < len(t.src) && t.src[t.pos] == '\n' {
					t.line++
				}
				t.pos++
			}
			if t.pos < len(t.src) {
				t.pos++ // closing quote
			}
			raw := t.src[start:t.pos]
			// Keep the unquoted text; rule values in the paper are unquoted.
			text := strings.Trim(raw, string(quote))
			return nginxToken{kind: nginxWord, text: text, line: t.line}, true
		default:
			start := t.pos
			startLine := t.line
			for t.pos < len(t.src) {
				c := t.src[t.pos]
				if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ';' || c == '{' || c == '}' || c == '#' {
					break
				}
				t.pos++
			}
			return nginxToken{kind: nginxWord, text: t.src[start:t.pos], line: startLine}, true
		}
	}
	return nginxToken{}, false
}
