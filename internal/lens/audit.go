package lens

import (
	"strings"

	"configvalidator/internal/schema"
)

// Audit parses Linux audit rules (/etc/audit/audit.rules). Each rule line
// becomes a table row with the flag-based fields decomposed positionally:
//
//	-w /etc/passwd -p wa -k identity
//	-a always,exit -F arch=b64 -S adjtimex -k time-change
//
// Columns:
//
//	kind    "watch" (-w), "syscall" (-a), "control" (-D/-b/-e/-f), "other"
//	target  watch path, or the -a action list (e.g. "always,exit")
//	perms   -p permissions for watch rules
//	key     -k audit key
//	fields  semicolon-joined -F filters
//	syscalls comma-joined -S syscall names
//	raw     the original rule text
type Audit struct{}

var _ Lens = (*Audit)(nil)

// NewAudit returns the audit.rules lens.
func NewAudit() *Audit { return &Audit{} }

// Name implements Lens.
func (l *Audit) Name() string { return "audit" }

// Kind implements Lens.
func (l *Audit) Kind() Kind { return KindSchema }

// auditColumns is exported through the table shape; keep in sync with docs.
var auditColumns = []string{"kind", "target", "perms", "key", "fields", "syscalls", "raw"}

// Parse implements Lens.
func (l *Audit) Parse(path string, content []byte) (*Result, error) {
	t := schema.New(path, auditColumns...)
	t.File = path
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		row, err := parseAuditRule(line)
		if err != nil {
			return nil, parseErrorf("audit", path, i+1, "%v", err)
		}
		if err := t.AddRow(row...); err != nil {
			return nil, parseErrorf("audit", path, i+1, "%v", err)
		}
	}
	return &Result{Kind: KindSchema, Table: t}, nil
}

func parseAuditRule(line string) ([]string, error) {
	parts := fields(line)
	var kind, target, perms, key string
	var ruleFields, syscalls []string
	consumeArg := func(i int, flag string) (string, int, error) {
		if i+1 >= len(parts) {
			return "", i, parseArgError(flag)
		}
		return parts[i+1], i + 1, nil
	}
	for i := 0; i < len(parts); i++ {
		var err error
		var arg string
		switch parts[i] {
		case "-w":
			kind = "watch"
			arg, i, err = consumeArg(i, "-w")
			target = arg
		case "-a":
			kind = "syscall"
			arg, i, err = consumeArg(i, "-a")
			target = arg
		case "-p":
			arg, i, err = consumeArg(i, "-p")
			perms = arg
		case "-k":
			arg, i, err = consumeArg(i, "-k")
			key = arg
		case "-F":
			arg, i, err = consumeArg(i, "-F")
			ruleFields = append(ruleFields, arg)
		case "-S":
			arg, i, err = consumeArg(i, "-S")
			syscalls = append(syscalls, arg)
		case "-D", "-e", "-b", "-f", "-r", "--backlog_wait_time":
			if kind == "" {
				kind = "control"
				target = parts[i]
			}
			if i+1 < len(parts) && !strings.HasPrefix(parts[i+1], "-") {
				perms = parts[i+1]
				i++
			}
		default:
			if kind == "" {
				kind = "other"
				target = parts[i]
			}
		}
		if err != nil {
			return nil, err
		}
	}
	if kind == "" {
		kind = "other"
	}
	return []string{
		kind, target, perms, key,
		strings.Join(ruleFields, ";"),
		strings.Join(syscalls, ","),
		line,
	}, nil
}

type auditArgError struct{ flag string }

func (e *auditArgError) Error() string { return "flag " + e.flag + " requires an argument" }

func parseArgError(flag string) error { return &auditArgError{flag: flag} }
