package lens

import (
	"testing"
)

// FuzzSSHDParse hammers the sshd lens with arbitrary bytes. Config files
// reach lenses straight off scanned entities (including hostile tar
// uploads), so a parser panic here is a crashed scan — the crawler's
// per-file recovery catches it, but the lens should not rely on that.
//
//	go test -fuzz FuzzSSHDParse -fuzztime 10s ./internal/lens/
func FuzzSSHDParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"Port 22\nPermitRootLogin no\n",
		"PermitRootLogin=yes\n",
		"Match User git\n  PasswordAuthentication no\n",
		"# comment only\n",
		"Key value # trailing\n",
		"=\n= =\nKey=\n",
		"Match\nPort 22\n",
		"UsePAM yes\r\nX11Forwarding no\r\n",
		"\x00\x01\x02 binary noise\n",
		"Key    spaced   out   values\n",
	} {
		f.Add([]byte(seed))
	}
	lens := NewSSHD()
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := lens.Parse("/etc/ssh/sshd_config", data)
		if err != nil {
			return
		}
		if res == nil || res.Tree == nil {
			t.Fatal("nil result without error")
		}
	})
}
