package lens

import (
	"strings"

	"configvalidator/internal/configtree"
)

// INI parses INI-style files with [section] headers and key=value entries,
// the format used by MySQL (my.cnf) among others. Keys before the first
// section header attach to the root; bare keys (flags such as skip-networking
// in my.cnf) become nodes with empty values. The "!include"/"!includedir"
// directives used by MySQL are recorded under an "#include" label so rules
// can assert on them without the lens performing file I/O.
type INI struct {
	name string
}

var _ Lens = (*INI)(nil)

// NewINI returns an INI lens registered under the given name (e.g. "mysql").
func NewINI(name string) *INI { return &INI{name: name} }

// Name implements Lens.
func (l *INI) Name() string { return l.name }

// Kind implements Lens.
func (l *INI) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *INI) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	current := root
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		line = strings.TrimSpace(stripLineComment(line, ";"))
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, parseErrorf(l.name, path, i+1, "unterminated section header %q", line)
			}
			name := strings.TrimSpace(line[1 : len(line)-1])
			if name == "" {
				return nil, parseErrorf(l.name, path, i+1, "empty section header")
			}
			section := root.Section(name)
			section.Line = i + 1
			current = section
			continue
		}
		if strings.HasPrefix(line, "!") {
			node := current.Add("#include", strings.TrimSpace(line[1:]))
			node.Line = i + 1
			continue
		}
		if idx := strings.IndexByte(line, '='); idx > 0 {
			key := strings.TrimSpace(line[:idx])
			value := strings.TrimSpace(line[idx+1:])
			value = unquoteINI(value)
			node := current.Add(key, value)
			node.Line = i + 1
			continue
		}
		// Bare flag key, e.g. "skip-networking".
		node := current.Add(line, "")
		node.Line = i + 1
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

func unquoteINI(v string) string {
	if len(v) >= 2 {
		if (v[0] == '"' && v[len(v)-1] == '"') || (v[0] == '\'' && v[len(v)-1] == '\'') {
			return v[1 : len(v)-1]
		}
	}
	return v
}
