// Package lens implements the data-normalization layer of ConfigValidator:
// an Augeas-style framework of per-format parsers ("lenses") that convert
// raw configuration file content into the normalized structures the rule
// engine queries.
//
// Following the paper (§2.1, §3.3), configuration files keep their natural
// format: key-value-tree files (nginx.conf, my.cnf, sshd_config, ...) parse
// into a configtree.Node, while schema-pattern files (/etc/fstab,
// /etc/passwd, audit.rules, ...) parse into a schema.Table. A Registry maps
// file names to lenses, mirroring how Augeas selects a lens by path.
package lens

import (
	"fmt"
	"path"
	"strings"
	"sync"
	"sync/atomic"

	"configvalidator/internal/configtree"
	"configvalidator/internal/schema"
)

// Kind distinguishes the two normalized output shapes.
type Kind int

// Lens output kinds.
const (
	KindTree Kind = iota + 1
	KindSchema
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindTree:
		return "tree"
	case KindSchema:
		return "schema"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Result is the normalized form of one configuration file. Exactly one of
// Tree or Table is set, according to Kind.
//
// A Result handed to the rule engine is treated as immutable: the engine
// only queries it, and a fleet-scoped ParseCache may share one Result
// across many entities and concurrent scans. Code that needs to edit a
// parsed tree (remediation) must parse its own copy or Clone it first.
type Result struct {
	Kind  Kind
	Tree  *configtree.Node
	Table *schema.Table

	// findMu guards findMemo, the per-result tree-query memo. Identical
	// files across a fleet share one cached Result, so each distinct rule
	// query is answered against a given file content exactly once
	// fleet-wide instead of once per entity.
	findMu   sync.RWMutex
	findMemo map[string][]*configtree.Node

	// uid is the lazily assigned process-unique identity, see UID.
	uid atomic.Uint64
}

// resultUID is the source of Result identities; 0 is reserved for
// "unassigned".
var resultUID atomic.Uint64

// UID returns a process-unique identity for this result, assigned on first
// use. Memoization layers key on it instead of the pointer value: unlike an
// address, a UID is never reused after the result is garbage collected, so
// a stale memo entry can never be mistaken for a new parse.
func (r *Result) UID() uint64 {
	if v := r.uid.Load(); v != 0 {
		return v
	}
	n := resultUID.Add(1)
	if r.uid.CompareAndSwap(0, n) {
		return n
	}
	return r.uid.Load()
}

// FindTree answers a tree query against the result, memoized. It returns
// nil for schema-kind results. The returned slice is shared: callers must
// not modify it.
func (r *Result) FindTree(query string) []*configtree.Node {
	if r == nil || r.Tree == nil {
		return nil
	}
	r.findMu.RLock()
	nodes, ok := r.findMemo[query]
	r.findMu.RUnlock()
	if ok {
		return nodes
	}
	nodes = r.Tree.Find(query)
	r.findMu.Lock()
	if r.findMemo == nil {
		r.findMemo = make(map[string][]*configtree.Node)
	}
	r.findMemo[query] = nodes
	r.findMu.Unlock()
	return nodes
}

// Lens converts raw configuration content into a normalized Result.
type Lens interface {
	// Name identifies the lens (e.g. "nginx", "fstab").
	Name() string
	// Kind reports which structure Parse produces.
	Kind() Kind
	// Parse converts content read from path into the normalized form.
	Parse(path string, content []byte) (*Result, error)
}

// ParseError reports a configuration file that the lens could not parse.
type ParseError struct {
	Lens string
	Path string
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("lens %s: %s:%d: %s", e.Lens, e.Path, e.Line, e.Msg)
	}
	return fmt.Sprintf("lens %s: %s: %s", e.Lens, e.Path, e.Msg)
}

func parseErrorf(lens, path string, line int, format string, args ...any) error {
	return &ParseError{Lens: lens, Path: path, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Registry maps file-name patterns to lenses.
type Registry struct {
	entries []registryEntry
	byName  map[string]Lens

	// fileMu guards fileMemo, the path → selection memo for ForFile. A
	// fleet scan asks the same question for the same small set of paths
	// on every entity; answering from the memo skips the pattern walk.
	// A present nil value records "no lens matches". Register invalidates
	// the memo.
	fileMu   sync.RWMutex
	fileMemo map[string]Lens
}

type registryEntry struct {
	pattern string
	lens    Lens
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Lens)}
}

// Register associates a lens with one or more base-name glob patterns
// (path.Match syntax, applied to the file's base name) or, when the pattern
// contains a '/', to a suffix of the full path.
func (r *Registry) Register(l Lens, patterns ...string) {
	r.byName[l.Name()] = l
	for _, p := range patterns {
		r.entries = append(r.entries, registryEntry{pattern: p, lens: l})
	}
	r.fileMu.Lock()
	r.fileMemo = nil
	r.fileMu.Unlock()
}

// ByName returns the lens registered under the given name.
func (r *Registry) ByName(name string) (Lens, bool) {
	l, ok := r.byName[name]
	return l, ok
}

// Names returns the registered lens names (unordered).
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.byName))
	for n := range r.byName {
		out = append(out, n)
	}
	return out
}

// ForFile selects the lens for a file path. Patterns are checked in
// registration order; the first match wins.
func (r *Registry) ForFile(filePath string) (Lens, bool) {
	r.fileMu.RLock()
	l, hit := r.fileMemo[filePath]
	r.fileMu.RUnlock()
	if hit {
		return l, l != nil
	}
	l = r.selectForFile(filePath)
	r.fileMu.Lock()
	if r.fileMemo == nil {
		r.fileMemo = make(map[string]Lens)
	}
	r.fileMemo[filePath] = l
	r.fileMu.Unlock()
	return l, l != nil
}

// selectForFile walks the registered patterns in order; first match wins.
func (r *Registry) selectForFile(filePath string) Lens {
	base := path.Base(filePath)
	for _, e := range r.entries {
		if strings.ContainsRune(e.pattern, '/') {
			if matchPathSuffix(e.pattern, filePath) {
				return e.lens
			}
			continue
		}
		if ok, err := path.Match(e.pattern, base); err == nil && ok {
			return e.lens
		}
	}
	return nil
}

// Parse selects the lens for filePath and parses content with it.
func (r *Registry) Parse(filePath string, content []byte) (*Result, error) {
	l, ok := r.ForFile(filePath)
	if !ok {
		return nil, fmt.Errorf("lens: no lens registered for %q", filePath)
	}
	return l.Parse(filePath, content)
}

func matchPathSuffix(pattern, filePath string) bool {
	patSegs := strings.Split(strings.Trim(pattern, "/"), "/")
	fileSegs := strings.Split(strings.Trim(filePath, "/"), "/")
	if len(patSegs) > len(fileSegs) {
		return false
	}
	offset := len(fileSegs) - len(patSegs)
	for i, ps := range patSegs {
		ok, err := path.Match(ps, fileSegs[offset+i])
		if err != nil || !ok {
			return false
		}
	}
	return true
}

// Default returns a registry with every built-in lens registered under the
// standard file locations of its format — the Go analogue of the stock
// Augeas lens library for the targets in the paper's Table 1.
func Default() *Registry {
	r := NewRegistry()
	r.Register(NewNginx(), "nginx.conf", "*/nginx/*.conf", "*/sites-enabled/*", "*/sites-available/*", "*/conf.d/*.conf")
	r.Register(NewApache(), "apache2.conf", "httpd.conf", "*/apache2/*.conf")
	r.Register(NewINI("mysql"), "my.cnf", "mysqld.cnf", "*.cnf")
	r.Register(NewHadoopXML(), "core-site.xml", "hdfs-site.xml", "yarn-site.xml", "mapred-site.xml")
	r.Register(NewSSHD(), "sshd_config", "ssh_config")
	r.Register(NewSysctl(), "sysctl.conf", "*/sysctl.d/*.conf")
	r.Register(NewFstab(), "fstab")
	r.Register(NewMounts(), "mounts", "mtab")
	r.Register(NewPasswd(), "passwd")
	r.Register(NewGroup(), "group")
	r.Register(NewAudit(), "audit.rules", "*/audit/rules.d/*.rules")
	r.Register(NewModprobe(), "modprobe.conf", "*/modprobe.d/*.conf")
	r.Register(NewHosts(), "hosts")
	r.Register(NewResolv(), "resolv.conf")
	r.Register(NewLimits(), "limits.conf", "*/limits.d/*.conf")
	r.Register(NewCrontab(), "crontab", "*/cron.d/*")
	r.Register(NewJSON("dockerdaemon"), "daemon.json")
	r.Register(NewJSON("json"), "*.json")
	r.Register(NewProperties(), "*.properties")
	r.Register(NewINI("ini"), "*.ini")
	r.Register(NewKeyValue("keyvalue", "="), "*.conf")
	return r
}

// TableToTree converts a schema table into an equivalent tree, used by the
// natural-format ablation (DESIGN.md E8a): rows become numbered sections
// whose children are column nodes.
func TableToTree(t *schema.Table) *configtree.Node {
	root := configtree.New(t.Name)
	root.File = t.File
	for i, row := range t.Rows {
		rowNode := root.Section("row")
		rowNode.Value = fmt.Sprintf("%d", i+1)
		for c, col := range t.Columns {
			rowNode.Add(col, row[c])
		}
	}
	return root
}

// TreeToTable flattens a tree into a two-column (path, value) table, the
// inverse direction of the natural-format ablation.
func TreeToTable(n *configtree.Node) *schema.Table {
	t := schema.New(n.Label, "path", "value")
	t.File = n.File
	n.Walk(func(p string, node *configtree.Node) bool {
		if node == n {
			return true
		}
		rel := strings.TrimPrefix(p, n.Label+"/")
		_ = t.AddRow(rel, node.Value)
		return true
	})
	return t
}

// stripLineComment removes a trailing comment introduced by marker when it
// is at line start or preceded by whitespace.
func stripLineComment(line, marker string) string {
	if idx := strings.Index(line, marker); idx == 0 {
		return ""
	}
	for i := 0; i+len(marker) <= len(line); i++ {
		if strings.HasPrefix(line[i:], marker) && i > 0 && (line[i-1] == ' ' || line[i-1] == '\t') {
			return strings.TrimRight(line[:i], " \t")
		}
	}
	return line
}

// splitLines normalizes newlines and splits content into lines.
func splitLines(content []byte) []string {
	s := strings.ReplaceAll(string(content), "\r\n", "\n")
	return strings.Split(s, "\n")
}

// fields splits on runs of spaces and tabs.
func fields(s string) []string {
	return strings.FieldsFunc(s, func(r rune) bool { return r == ' ' || r == '\t' })
}
