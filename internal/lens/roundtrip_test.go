package lens

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// Round-trip property tests: for generated inputs, parse → render → parse
// must reach a fixed point — the second parse yields a tree/table
// structurally equal to the first. Rendering is canonical (comments and
// formatting are dropped), so equivalence is checked on the normalized
// structures, which is exactly what rules evaluate against. Generation is
// seeded: failures reproduce by seed, never flake.

const roundTripIters = 60

// token draws an identifier-safe string: no comment markers, separators,
// quotes, or section syntax, so the generated text exercises structure
// rather than lexical corner cases the formats cannot represent.
func token(r *rand.Rand, minLen int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-."
	n := minLen + r.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(alphabet[r.Intn(len(alphabet))])
	}
	return b.String()
}

// sprinkle returns a comment or blank line some of the time, exercising
// the content the renderer is allowed to drop.
func sprinkle(r *rand.Rand) string {
	switch r.Intn(4) {
	case 0:
		return "# " + token(r, 1) + "\n"
	case 1:
		return "\n"
	default:
		return ""
	}
}

func TestINIRoundTrip(t *testing.T) {
	l := NewINI("mysql")
	r := rand.New(rand.NewSource(41))
	for iter := 0; iter < roundTripIters; iter++ {
		var b strings.Builder
		// Root-level entries first (after a section header they would
		// attach to that section instead).
		for i := r.Intn(4); i > 0; i-- {
			b.WriteString(sprinkle(r))
			writeRandomINIEntry(&b, r)
		}
		for s := r.Intn(4); s > 0; s-- {
			fmt.Fprintf(&b, "[%s]\n", token(r, 1))
			// At least one entry per section: an empty section renders
			// as a bare key, which the format cannot round-trip.
			for i := 1 + r.Intn(4); i > 0; i-- {
				b.WriteString(sprinkle(r))
				writeRandomINIEntry(&b, r)
			}
		}
		assertTreeRoundTrip(t, l, l, iter, b.String())
	}
}

func writeRandomINIEntry(b *strings.Builder, r *rand.Rand) {
	switch r.Intn(4) {
	case 0: // bare flag, e.g. skip-networking
		fmt.Fprintf(b, "%s\n", token(r, 1))
	case 1: // include directive
		fmt.Fprintf(b, "!include /etc/%s.cnf\n", token(r, 1))
	default:
		fmt.Fprintf(b, "%s = %s\n", token(r, 1), token(r, 0))
	}
}

func TestKeyValueRoundTrip(t *testing.T) {
	l := NewKeyValue("keyvalue", "=")
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < roundTripIters; iter++ {
		var b strings.Builder
		for i := 1 + r.Intn(8); i > 0; i-- {
			b.WriteString(sprinkle(r))
			// Both spaced and compact separators normalize identically;
			// values may be empty and may contain interior spaces.
			value := token(r, 0)
			if r.Intn(3) == 0 {
				value += " " + token(r, 1)
			}
			if r.Intn(2) == 0 {
				fmt.Fprintf(&b, "%s = %s\n", token(r, 1), value)
			} else {
				fmt.Fprintf(&b, "%s=%s\n", token(r, 1), value)
			}
		}
		assertTreeRoundTrip(t, l, l, iter, b.String())
	}
}

// assertTreeRoundTrip parses content, renders the tree, reparses, and
// requires structural equality of the two trees.
func assertTreeRoundTrip(t *testing.T, parse Lens, render Renderer, iter int, content string) {
	t.Helper()
	first, err := parse.Parse("/gen/input", []byte(content))
	if err != nil {
		t.Fatalf("iter %d: first parse: %v\ninput:\n%s", iter, err, content)
	}
	rendered, err := render.Render(first.Tree)
	if err != nil {
		t.Fatalf("iter %d: render: %v\ninput:\n%s", iter, err, content)
	}
	second, err := parse.Parse("/gen/input", rendered)
	if err != nil {
		t.Fatalf("iter %d: reparse: %v\nrendered:\n%s", iter, err, rendered)
	}
	if !first.Tree.Equal(second.Tree) {
		t.Errorf("iter %d: parse(render(parse(x))) differs from parse(x)\ninput:\n%s\nrendered:\n%s\nfirst:\n%s\nsecond:\n%s",
			iter, content, rendered, first.Tree, second.Tree)
	}
}

func TestTabularRoundTrip(t *testing.T) {
	configs := []struct {
		name string
		lens *Tabular
	}{
		{"passwd", NewPasswd()},
		{"group", NewGroup()},
		{"fstab", NewFstab()},
	}
	r := rand.New(rand.NewSource(43))
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			l := cfg.lens
			for iter := 0; iter < roundTripIters; iter++ {
				var b strings.Builder
				for row := 1 + r.Intn(6); row > 0; row-- {
					b.WriteString(sprinkle(r))
					n := l.minFields
					if n < len(l.columns) {
						n += r.Intn(len(l.columns) - l.minFields + 1)
					}
					fields := make([]string, n)
					for i := range fields {
						if l.delimiter != "" && i > 0 && i < n-1 && r.Intn(4) == 0 {
							// Interior empty fields are representable only
							// with an explicit delimiter.
							fields[i] = ""
							continue
						}
						fields[i] = token(r, 1)
					}
					b.WriteString(strings.Join(fields, delimiterOrSpace(l.delimiter)))
					b.WriteByte('\n')
				}
				content := b.String()

				first, err := l.Parse("/gen/table", []byte(content))
				if err != nil {
					t.Fatalf("iter %d: first parse: %v\ninput:\n%s", iter, err, content)
				}
				rendered, err := l.RenderTable(first.Table)
				if err != nil {
					t.Fatalf("iter %d: render: %v\ninput:\n%s", iter, err, content)
				}
				second, err := l.Parse("/gen/table", rendered)
				if err != nil {
					t.Fatalf("iter %d: reparse: %v\nrendered:\n%s", iter, err, rendered)
				}
				if !reflect.DeepEqual(first.Table.Columns, second.Table.Columns) ||
					!reflect.DeepEqual(first.Table.Rows, second.Table.Rows) {
					t.Errorf("iter %d: table round-trip differs\ninput:\n%s\nrendered:\n%s\nfirst rows: %v\nsecond rows: %v",
						iter, content, rendered, first.Table.Rows, second.Table.Rows)
				}
			}
		})
	}
}

// TestTabularRenderRejectsUnrepresentable pins RenderTable's refusal to
// emit rows a whitespace-delimited format cannot encode.
func TestTabularRenderRejectsUnrepresentable(t *testing.T) {
	l := NewFstab()
	res, err := l.Parse("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	res.Table.Rows[0][2] = "has space"
	if _, err := l.RenderTable(res.Table); err == nil {
		t.Fatal("RenderTable accepted a whitespace-containing field in a whitespace-delimited format")
	}
}
