package lens

import (
	"strings"
	"testing"

	"configvalidator/internal/schema"
)

// sel builds a one-constraint query with placeholder args.
func sel(constraints string, args ...string) schema.Query {
	return schema.Query{Constraints: constraints, Args: args}
}

func parseWith(t *testing.T, l Lens, path, content string) *Result {
	t.Helper()
	res, err := l.Parse(path, []byte(content))
	if err != nil {
		t.Fatalf("%s.Parse(%s): %v", l.Name(), path, err)
	}
	if res.Kind != l.Kind() {
		t.Fatalf("result kind %v != lens kind %v", res.Kind, l.Kind())
	}
	switch res.Kind {
	case KindTree:
		if res.Tree == nil {
			t.Fatal("tree result has nil Tree")
		}
	case KindSchema:
		if res.Table == nil {
			t.Fatal("schema result has nil Table")
		}
	}
	return res
}

func TestRegistrySelection(t *testing.T) {
	r := Default()
	tests := []struct {
		path string
		lens string
	}{
		{"/etc/nginx/nginx.conf", "nginx"},
		{"/etc/nginx/sites-enabled/default", "nginx"},
		{"/etc/apache2/apache2.conf", "apache"},
		{"/etc/mysql/my.cnf", "mysql"},
		{"/etc/hadoop/core-site.xml", "hadoop"},
		{"/etc/ssh/sshd_config", "sshd"},
		{"/etc/sysctl.conf", "sysctl"},
		{"/etc/sysctl.d/99-custom.conf", "sysctl"},
		{"/etc/fstab", "fstab"},
		{"/proc/mounts", "mounts"},
		{"/etc/passwd", "passwd"},
		{"/etc/group", "group"},
		{"/etc/audit/audit.rules", "audit"},
		{"/etc/modprobe.d/blacklist.conf", "modprobe"},
		{"/etc/docker/daemon.json", "dockerdaemon"},
		{"/opt/app/config.json", "json"},
		{"/opt/app/server.properties", "properties"},
		{"/opt/app/app.ini", "ini"},
	}
	for _, tt := range tests {
		l, ok := r.ForFile(tt.path)
		if !ok {
			t.Errorf("no lens for %s", tt.path)
			continue
		}
		if l.Name() != tt.lens {
			t.Errorf("lens for %s = %s, want %s", tt.path, l.Name(), tt.lens)
		}
	}
	if _, ok := r.ForFile("/bin/ls"); ok {
		t.Error("unexpected lens for /bin/ls")
	}
}

func TestRegistryByName(t *testing.T) {
	r := Default()
	for _, name := range []string{"nginx", "apache", "mysql", "hadoop", "sshd", "sysctl", "fstab", "passwd", "group", "audit", "modprobe"} {
		if _, ok := r.ByName(name); !ok {
			t.Errorf("lens %q not registered by name", name)
		}
	}
	if _, ok := r.ByName("bogus"); ok {
		t.Error("bogus lens found")
	}
	if len(r.Names()) < 11 {
		t.Errorf("expected >= 11 lens names, got %d", len(r.Names()))
	}
}

func TestRegistryParseUnknown(t *testing.T) {
	r := Default()
	if _, err := r.Parse("/no/lens/for.this", nil); err == nil {
		t.Error("expected error for unknown file type")
	}
}

const sampleNginx = `
user www-data;
worker_processes auto;

http {
    include /etc/nginx/mime.types;
    server {
        listen 80;
        server_name plain.example.com;
    }
    server {
        listen 443 ssl;
        ssl_protocols TLSv1.2 TLSv1.3;
        ssl_certificate "/etc/ssl/cert.pem";
        location /api {
            proxy_pass http://backend;
        }
    }
}
`

func TestNginxLens(t *testing.T) {
	res := parseWith(t, NewNginx(), "nginx.conf", sampleNginx)
	tree := res.Tree
	if v, _ := tree.ValueAt("user"); v != "www-data" {
		t.Errorf("user = %q", v)
	}
	listens := tree.ValuesAt("http/server/listen")
	if len(listens) != 2 || listens[1] != "443 ssl" {
		t.Errorf("listens = %v", listens)
	}
	if v, _ := tree.ValueAt("http/server[2]/ssl_protocols"); v != "TLSv1.2 TLSv1.3" {
		t.Errorf("ssl_protocols = %q", v)
	}
	// Quoted argument is unquoted.
	if v, _ := tree.ValueAt("http/server[2]/ssl_certificate"); v != "/etc/ssl/cert.pem" {
		t.Errorf("ssl_certificate = %q", v)
	}
	// Block arguments stored as section value.
	loc, ok := tree.Get("http/server[2]/location")
	if !ok || loc.Value != "/api" {
		t.Errorf("location = %+v", loc)
	}
	if v, _ := tree.ValueAt("http/server[2]/location/proxy_pass"); v != "http://backend" {
		t.Errorf("proxy_pass = %q", v)
	}
}

func TestNginxLensErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"missing semicolon", "user www-data"},
		{"unbalanced close", "}"},
		{"unclosed block", "http {"},
		{"brace without name", "{ }"},
		{"missing semi in block", "http { user x }"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewNginx().Parse("f", []byte(tt.src)); err == nil {
				t.Errorf("parse of %q succeeded", tt.src)
			}
		})
	}
}

const sampleApache = `
ServerRoot "/etc/apache2"
Timeout 300

<Directory />
    Options FollowSymLinks
    AllowOverride None
    Require all denied
</Directory>

<VirtualHost *:80>
    ServerAdmin webmaster@localhost
    <Directory /var/www/html>
        Options Indexes
    </Directory>
</VirtualHost>
`

func TestApacheLens(t *testing.T) {
	res := parseWith(t, NewApache(), "apache2.conf", sampleApache)
	tree := res.Tree
	if v, _ := tree.ValueAt("ServerRoot"); v != `"/etc/apache2"` {
		t.Errorf("ServerRoot = %q", v)
	}
	if v, _ := tree.ValueAt("Directory[1]/AllowOverride"); v != "None" {
		t.Errorf("AllowOverride = %q", v)
	}
	vh, ok := tree.Get("VirtualHost")
	if !ok || vh.Value != "*:80" {
		t.Fatalf("VirtualHost = %+v", vh)
	}
	if v, _ := tree.ValueAt("VirtualHost/Directory/Options"); v != "Indexes" {
		t.Errorf("nested Options = %q", v)
	}
}

func TestApacheLensErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"mismatched close", "<Directory />\n</VirtualHost>"},
		{"unclosed section", "<Directory />"},
		{"stray close", "</Directory>"},
		{"malformed tag", "<Directory /"},
		{"empty tag", "<>"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewApache().Parse("f", []byte(tt.src)); err == nil {
				t.Errorf("parse of %q succeeded", tt.src)
			}
		})
	}
}

const sampleMyCnf = `
[client]
port = 3306

[mysqld]
user = mysql
bind-address = 127.0.0.1
skip-networking
ssl-ca = "/etc/mysql/cacert.pem"
ssl-cert = /etc/mysql/server-cert.pem
!includedir /etc/mysql/conf.d/
`

func TestINILens(t *testing.T) {
	res := parseWith(t, NewINI("mysql"), "my.cnf", sampleMyCnf)
	tree := res.Tree
	if v, _ := tree.ValueAt("client/port"); v != "3306" {
		t.Errorf("client/port = %q", v)
	}
	if v, _ := tree.ValueAt("mysqld/bind-address"); v != "127.0.0.1" {
		t.Errorf("bind-address = %q", v)
	}
	if _, ok := tree.Get("mysqld/skip-networking"); !ok {
		t.Error("bare flag key missing")
	}
	if v, _ := tree.ValueAt("mysqld/ssl-ca"); v != "/etc/mysql/cacert.pem" {
		t.Errorf("ssl-ca = %q (quotes should be stripped)", v)
	}
	if v, _ := tree.ValueAt("mysqld/#include"); v != "includedir /etc/mysql/conf.d/" {
		t.Errorf("#include = %q", v)
	}
}

func TestINILensErrors(t *testing.T) {
	if _, err := NewINI("ini").Parse("f", []byte("[unterminated\n")); err == nil {
		t.Error("unterminated section accepted")
	}
	if _, err := NewINI("ini").Parse("f", []byte("[]\n")); err == nil {
		t.Error("empty section accepted")
	}
}

const sampleSSHD = `
# OpenSSH server configuration
Port 22
PermitRootLogin no
PasswordAuthentication yes
Protocol 2

Match User sftpuser
    ChrootDirectory /srv/sftp
    X11Forwarding no
`

func TestSSHDLens(t *testing.T) {
	res := parseWith(t, NewSSHD(), "sshd_config", sampleSSHD)
	tree := res.Tree
	if v, _ := tree.ValueAt("PermitRootLogin"); v != "no" {
		t.Errorf("PermitRootLogin = %q", v)
	}
	if v, _ := tree.ValueAt("Port"); v != "22" {
		t.Errorf("Port = %q", v)
	}
	match, ok := tree.Get("Match")
	if !ok || match.Value != "User sftpuser" {
		t.Fatalf("Match = %+v", match)
	}
	if v, _ := tree.ValueAt("Match/ChrootDirectory"); v != "/srv/sftp" {
		t.Errorf("ChrootDirectory = %q", v)
	}
	// Directives inside Match do not leak to top level.
	if _, ok := tree.Child("ChrootDirectory"); ok {
		t.Error("Match-scoped directive leaked to top level")
	}
}

func TestSSHDEqualsSyntax(t *testing.T) {
	res := parseWith(t, NewSSHD(), "sshd_config", "PermitRootLogin=no\nPort = 2222\n")
	if v, _ := res.Tree.ValueAt("PermitRootLogin"); v != "no" {
		t.Errorf("PermitRootLogin = %q", v)
	}
	if v, _ := res.Tree.ValueAt("Port"); v != "2222" {
		t.Errorf("Port = %q", v)
	}
}

const sampleSysctl = `
# Kernel hardening
net.ipv4.ip_forward = 0
net.ipv4.conf.all.send_redirects = 0
kernel.randomize_va_space = 2
fs.suid_dumpable=0
`

func TestSysctlLens(t *testing.T) {
	res := parseWith(t, NewSysctl(), "sysctl.conf", sampleSysctl)
	tree := res.Tree
	if v, _ := tree.ValueAt("net/ipv4/ip_forward"); v != "0" {
		t.Errorf("ip_forward = %q", v)
	}
	if v, _ := tree.ValueAt("kernel/randomize_va_space"); v != "2" {
		t.Errorf("randomize_va_space = %q", v)
	}
	if v, _ := tree.ValueAt("fs/suid_dumpable"); v != "0" {
		t.Errorf("suid_dumpable (no spaces) = %q", v)
	}
	// Shared prefixes merge into one subtree.
	ipv4 := tree.Find("net/ipv4")
	if len(ipv4) != 1 {
		t.Errorf("net/ipv4 nodes = %d, want 1", len(ipv4))
	}
}

func TestSysctlLensError(t *testing.T) {
	if _, err := NewSysctl().Parse("f", []byte("not a sysctl line\n")); err == nil {
		t.Error("invalid sysctl line accepted")
	}
}

func TestKeyValueLens(t *testing.T) {
	res := parseWith(t, NewKeyValue("kv", "="), "app.conf", "a = 1\nb=2\n# comment\n")
	if v, _ := res.Tree.ValueAt("a"); v != "1" {
		t.Errorf("a = %q", v)
	}
	if v, _ := res.Tree.ValueAt("b"); v != "2" {
		t.Errorf("b = %q", v)
	}
	if _, err := NewKeyValue("kv", "=").Parse("f", []byte("novalue\n")); err == nil {
		t.Error("line without separator accepted")
	}
}

func TestPropertiesLens(t *testing.T) {
	src := "app.name=demo\napp.port: 8080\npath.with\\=equals=v\nmultiline=a\\\n  b\nflagonly\n"
	res := parseWith(t, NewProperties(), "server.properties", src)
	tree := res.Tree
	if v, _ := tree.ValueAt("app.name"); v != "demo" {
		t.Errorf("app.name = %q", v)
	}
	if v, _ := tree.ValueAt("app.port"); v != "8080" {
		t.Errorf("app.port = %q", v)
	}
	if v, _ := tree.ValueAt("path.with=equals"); v != "v" {
		t.Errorf("escaped key = %q", v)
	}
	if v, _ := tree.ValueAt("multiline"); v != "ab" {
		t.Errorf("multiline = %q", v)
	}
	if _, ok := tree.Child("flagonly"); !ok {
		t.Error("bare key missing")
	}
}

const sampleHadoop = `<?xml version="1.0"?>
<configuration>
  <property>
    <name>dfs.permissions.enabled</name>
    <value>true</value>
    <final>true</final>
  </property>
  <property>
    <name>hadoop.security.authentication</name>
    <value>kerberos</value>
  </property>
</configuration>
`

func TestHadoopXMLLens(t *testing.T) {
	res := parseWith(t, NewHadoopXML(), "core-site.xml", sampleHadoop)
	tree := res.Tree
	if v, _ := tree.ValueAt("dfs.permissions.enabled"); v != "true" {
		t.Errorf("dfs.permissions.enabled = %q", v)
	}
	if v, _ := tree.ValueAt("dfs.permissions.enabled/final"); v != "true" {
		t.Errorf("final = %q", v)
	}
	if v, _ := tree.ValueAt("hadoop.security.authentication"); v != "kerberos" {
		t.Errorf("authentication = %q", v)
	}
}

func TestHadoopXMLLensErrors(t *testing.T) {
	if _, err := NewHadoopXML().Parse("f", []byte("<configuration><property><value>1</value></property></configuration>")); err == nil {
		t.Error("property without name accepted")
	}
	if _, err := NewHadoopXML().Parse("f", []byte("not xml at all")); err == nil {
		t.Error("non-xml accepted")
	}
}

func TestJSONLens(t *testing.T) {
	src := `{
  "icc": false,
  "log-level": "info",
  "hosts": ["unix:///var/run/docker.sock", "tcp://0.0.0.0:2376"],
  "tlsverify": true,
  "default-ulimits": {"nofile": {"Soft": 1024}},
  "empty": [],
  "nothing": null
}`
	res := parseWith(t, NewJSON("dockerdaemon"), "daemon.json", src)
	tree := res.Tree
	if v, _ := tree.ValueAt("icc"); v != "false" {
		t.Errorf("icc = %q", v)
	}
	hosts := tree.ValuesAt("hosts")
	if len(hosts) != 2 || hosts[1] != "tcp://0.0.0.0:2376" {
		t.Errorf("hosts = %v", hosts)
	}
	if v, _ := tree.ValueAt("default-ulimits/nofile/Soft"); v != "1024" {
		t.Errorf("nested = %q", v)
	}
	if v, ok := tree.ValueAt("nothing"); !ok || v != "" {
		t.Errorf("null value = %q ok=%v", v, ok)
	}
	if _, err := NewJSON("json").Parse("f", []byte("{bad")); err == nil {
		t.Error("bad json accepted")
	}
}

const sampleFstab = `
# /etc/fstab
/dev/sda1  /      ext4  errors=remount-ro  0 1
/dev/sda2  /tmp   ext4  nodev,nosuid,noexec 0 2
tmpfs      /dev/shm tmpfs nodev,nosuid
`

func TestFstabLens(t *testing.T) {
	res := parseWith(t, NewFstab(), "/etc/fstab", sampleFstab)
	tbl := res.Table
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	dirs, err := tbl.Column("dir")
	if err != nil {
		t.Fatal(err)
	}
	if dirs[1] != "/tmp" {
		t.Errorf("dirs = %v", dirs)
	}
	// Optional trailing columns default to empty.
	if tbl.Rows[2][4] != "" || tbl.Rows[2][5] != "" {
		t.Errorf("optional fields = %v", tbl.Rows[2])
	}
	if _, err := NewFstab().Parse("f", []byte("/dev/sda1 /\n")); err == nil {
		t.Error("short fstab row accepted")
	}
}

const samplePasswd = `root:x:0:0:root:/root:/bin/bash
daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin
game:x:5:60:games,with,commas:/usr/games:/usr/sbin/nologin
`

func TestPasswdLens(t *testing.T) {
	res := parseWith(t, NewPasswd(), "/etc/passwd", samplePasswd)
	tbl := res.Table
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	out, err := tbl.Select(sel("uid = ?", "0"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][0] != "root" {
		t.Errorf("uid=0 rows: %v", out.Rows)
	}
	if _, err := NewPasswd().Parse("f", []byte("tooshort:x:1\n")); err == nil {
		t.Error("short passwd row accepted")
	}
}

func TestGroupLens(t *testing.T) {
	src := "root:x:0:\nsudo:x:27:alice,bob\n"
	res := parseWith(t, NewGroup(), "/etc/group", src)
	tbl := res.Table
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if tbl.Rows[1][3] != "alice,bob" {
		t.Errorf("members = %q", tbl.Rows[1][3])
	}
	if tbl.Rows[0][3] != "" {
		t.Errorf("empty members = %q", tbl.Rows[0][3])
	}
}

const sampleAudit = `
-D
-b 8192
-w /etc/passwd -p wa -k identity
-w /var/log/sudo.log -p wa -k actions
-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change
`

func TestAuditLens(t *testing.T) {
	res := parseWith(t, NewAudit(), "audit.rules", sampleAudit)
	tbl := res.Table
	if tbl.Len() != 5 {
		t.Fatalf("rows = %d\n%s", tbl.Len(), tbl)
	}
	watches, err := tbl.Select(sel("kind = ?", "watch"))
	if err != nil {
		t.Fatal(err)
	}
	if watches.Len() != 2 {
		t.Errorf("watch rows = %d", watches.Len())
	}
	pw, err := tbl.Select(sel("target = ?", "/etc/passwd"))
	if err != nil {
		t.Fatal(err)
	}
	if pw.Len() != 1 {
		t.Fatalf("passwd watch missing")
	}
	row := pw.Rows[0]
	if row[2] != "wa" || row[3] != "identity" {
		t.Errorf("perms/key = %q/%q", row[2], row[3])
	}
	syscallRows, err := tbl.Select(sel("kind = ?", "syscall"))
	if err != nil {
		t.Fatal(err)
	}
	if syscallRows.Len() != 1 || syscallRows.Rows[0][5] != "adjtimex,settimeofday" {
		t.Errorf("syscall row = %v", syscallRows.Rows)
	}
	if _, err := NewAudit().Parse("f", []byte("-w\n")); err == nil {
		t.Error("-w without argument accepted")
	}
}

func TestModprobeLens(t *testing.T) {
	src := "install cramfs /bin/true\nblacklist usb-storage\noptions snd-hda-intel model=dell\n"
	res := parseWith(t, NewModprobe(), "blacklist.conf", src)
	tbl := res.Table
	if tbl.Len() != 3 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	cram, err := tbl.Select(sel("module = ?", "cramfs"))
	if err != nil {
		t.Fatal(err)
	}
	if cram.Len() != 1 || cram.Rows[0][0] != "install" || cram.Rows[0][2] != "/bin/true" {
		t.Errorf("cramfs row = %v", cram.Rows)
	}
	if _, err := NewModprobe().Parse("f", []byte("frobnicate xyz\n")); err == nil {
		t.Error("unknown directive accepted")
	}
	if _, err := NewModprobe().Parse("f", []byte("blacklist\n")); err == nil {
		t.Error("directive without module accepted")
	}
}

func TestTableToTreeRoundTrip(t *testing.T) {
	res := parseWith(t, NewFstab(), "/etc/fstab", sampleFstab)
	tree := TableToTree(res.Table)
	if v, _ := tree.ValueAt("row[2]/dir"); v != "/tmp" {
		t.Errorf("row[2]/dir = %q", v)
	}
	if got := len(tree.Find("row*")); got != 3 {
		t.Errorf("row sections = %d", got)
	}
}

func TestTreeToTable(t *testing.T) {
	res := parseWith(t, NewSysctl(), "sysctl.conf", sampleSysctl)
	tbl := TreeToTable(res.Tree)
	out, err := tbl.Select(sel("path = ?", "net/ipv4/ip_forward"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Rows[0][1] != "0" {
		t.Errorf("flattened rows = %v", out.Rows)
	}
}

func TestKindString(t *testing.T) {
	if KindTree.String() != "tree" || KindSchema.String() != "schema" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind should include number")
	}
}

func TestParseErrorMessage(t *testing.T) {
	err := parseErrorf("nginx", "/etc/nginx/nginx.conf", 7, "boom %d", 1)
	msg := err.Error()
	for _, want := range []string{"nginx", "/etc/nginx/nginx.conf", ":7:", "boom 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	err2 := parseErrorf("hadoop", "f", 0, "x")
	if strings.Contains(err2.Error(), ":0:") {
		t.Errorf("zero line should be omitted: %q", err2.Error())
	}
}
