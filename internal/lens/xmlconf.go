package lens

import (
	"bytes"
	"encoding/xml"

	"configvalidator/internal/configtree"
)

// HadoopXML parses Hadoop-style configuration XML:
//
//	<configuration>
//	  <property>
//	    <name>dfs.permissions.enabled</name>
//	    <value>true</value>
//	    <final>true</final>
//	  </property>
//	</configuration>
//
// Each property becomes a node labelled with the property name; the node's
// value is the property value, and a "final" child records finality when
// present.
type HadoopXML struct{}

var _ Lens = (*HadoopXML)(nil)

// NewHadoopXML returns the Hadoop XML lens.
func NewHadoopXML() *HadoopXML { return &HadoopXML{} }

// Name implements Lens.
func (l *HadoopXML) Name() string { return "hadoop" }

// Kind implements Lens.
func (l *HadoopXML) Kind() Kind { return KindTree }

type hadoopConfiguration struct {
	XMLName    xml.Name         `xml:"configuration"`
	Properties []hadoopProperty `xml:"property"`
}

type hadoopProperty struct {
	Name  string `xml:"name"`
	Value string `xml:"value"`
	Final string `xml:"final"`
}

// Parse implements Lens.
func (l *HadoopXML) Parse(path string, content []byte) (*Result, error) {
	var cfg hadoopConfiguration
	dec := xml.NewDecoder(bytes.NewReader(content))
	if err := dec.Decode(&cfg); err != nil {
		return nil, parseErrorf("hadoop", path, 0, "xml: %v", err)
	}
	root := configtree.New(path)
	root.File = path
	for _, p := range cfg.Properties {
		if p.Name == "" {
			return nil, parseErrorf("hadoop", path, 0, "property without <name>")
		}
		node := root.Add(p.Name, p.Value)
		if p.Final != "" {
			node.Add("final", p.Final)
		}
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}
