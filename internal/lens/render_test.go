package lens

import (
	"math/rand"
	"strings"
	"testing"

	"configvalidator/internal/configtree"
)

// roundTrip asserts Parse(Render(Parse(src))) ≡ Parse(src).
func roundTrip(t *testing.T, l Lens, src string) {
	t.Helper()
	r, ok := l.(Renderer)
	if !ok {
		t.Fatalf("lens %s does not implement Renderer", l.Name())
	}
	first, err := l.Parse("f", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rendered, err := r.Render(first.Tree)
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	second, err := l.Parse("f", rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered output failed: %v\n%s", err, rendered)
	}
	if !first.Tree.Equal(second.Tree) {
		t.Errorf("round trip changed the tree:\noriginal:\n%srendered:\n%s\nre-parsed:\n%s",
			first.Tree, rendered, second.Tree)
	}
}

func TestRenderRoundTrips(t *testing.T) {
	tests := []struct {
		name string
		lens Lens
		src  string
	}{
		{"keyvalue", NewKeyValue("kv", "="), "a = 1\nb = two words\n"},
		{"sysctl", NewSysctl(), sampleSysctl},
		{"sshd", NewSSHD(), sampleSSHD},
		{"ini", NewINI("mysql"), sampleMyCnf},
		{"nginx", NewNginx(), sampleNginx},
		{"properties", NewProperties(), "app.name=demo\napp.port=8080\nflagonly\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, tt.lens, tt.src)
		})
	}
}

func TestRenderAfterEdit(t *testing.T) {
	// The remediation flow: parse, change a value, render, re-parse, and
	// observe the new value.
	l := NewSSHD()
	res, err := l.Parse("sshd_config", []byte("Port 22\nPermitRootLogin yes\n"))
	if err != nil {
		t.Fatal(err)
	}
	node, ok := res.Tree.Get("PermitRootLogin")
	if !ok {
		t.Fatal("key missing")
	}
	node.Value = "no"
	rendered, err := l.Render(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	back, err := l.Parse("sshd_config", rendered)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := back.Tree.ValueAt("PermitRootLogin"); v != "no" {
		t.Errorf("edited value = %q\nrendered:\n%s", v, rendered)
	}
	if v, _ := back.Tree.ValueAt("Port"); v != "22" {
		t.Errorf("untouched value = %q", v)
	}
}

func TestRenderErrorsOnUnrepresentableTrees(t *testing.T) {
	nested := configtree.New("f")
	sec := nested.Section("outer")
	sec.Section("inner").Add("k", "v")
	if _, err := NewKeyValue("kv", "=").Render(nested); err == nil {
		t.Error("keyvalue rendered a nested tree")
	}
	if _, err := NewINI("ini").Render(nested); err == nil {
		t.Error("ini rendered a doubly nested tree")
	}
	if _, err := NewProperties().Render(nested); err == nil {
		t.Error("properties rendered a nested tree")
	}
}

func TestNginxRenderNesting(t *testing.T) {
	l := NewNginx()
	res, err := l.Parse("f", []byte(sampleNginx))
	if err != nil {
		t.Fatal(err)
	}
	rendered, err := l.Render(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	out := string(rendered)
	if !strings.Contains(out, "http {") || !strings.Contains(out, "location /api {") {
		t.Errorf("rendered nginx lost structure:\n%s", out)
	}
}

// TestQuickSysctlRenderRoundTrip property-tests the sysctl round trip over
// random key/value sets.
func TestQuickSysctlRenderRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	segs := []string{"net", "ipv4", "ipv6", "conf", "all", "kernel", "fs"}
	l := NewSysctl()
	for i := 0; i < 200; i++ {
		var b strings.Builder
		seen := map[string]bool{}
		n := 1 + r.Intn(10)
		for j := 0; j < n; j++ {
			depth := 1 + r.Intn(4)
			parts := make([]string, depth)
			for d := range parts {
				parts[d] = segs[r.Intn(len(segs))]
			}
			key := strings.Join(parts, ".")
			// A key that is a prefix of another becomes an interior node
			// and can't hold a value; skip duplicates and prefixes.
			conflict := false
			for k := range seen {
				if k == key || strings.HasPrefix(k, key+".") || strings.HasPrefix(key, k+".") {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			seen[key] = true
			b.WriteString(key)
			b.WriteString(" = ")
			b.WriteString([]string{"0", "1", "2", "4096"}[r.Intn(4)])
			b.WriteByte('\n')
		}
		if len(seen) == 0 {
			continue
		}
		roundTrip(t, l, b.String())
	}
}
