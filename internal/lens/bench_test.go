package lens

import (
	"strings"
	"testing"
)

func benchParse(b *testing.B, l Lens, path, src string) {
	b.Helper()
	content := []byte(src)
	b.ReportAllocs()
	b.SetBytes(int64(len(content)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Parse(path, content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseNginx(b *testing.B) {
	benchParse(b, NewNginx(), "nginx.conf", sampleNginx)
}

func BenchmarkParseSSHD(b *testing.B) {
	benchParse(b, NewSSHD(), "sshd_config", strings.Repeat(sampleSSHD, 4))
}

func BenchmarkParseSysctl(b *testing.B) {
	benchParse(b, NewSysctl(), "sysctl.conf", strings.Repeat(sampleSysctl, 8))
}

func BenchmarkParseINI(b *testing.B) {
	benchParse(b, NewINI("mysql"), "my.cnf", sampleMyCnf)
}

func BenchmarkParseFstab(b *testing.B) {
	benchParse(b, NewFstab(), "/etc/fstab", strings.Repeat(sampleFstab, 8))
}

func BenchmarkParseAudit(b *testing.B) {
	benchParse(b, NewAudit(), "audit.rules", strings.Repeat(sampleAudit, 8))
}

func BenchmarkRenderNginx(b *testing.B) {
	l := NewNginx()
	res, err := l.Parse("nginx.conf", []byte(sampleNginx))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Render(res.Tree); err != nil {
			b.Fatal(err)
		}
	}
}
