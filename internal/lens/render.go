package lens

import (
	"fmt"
	"strings"

	"configvalidator/internal/configtree"
)

// Renderer is implemented by lenses that can write a (possibly edited)
// config tree back to the file's native format — the Augeas "editing"
// direction, which powers remediation proposals. Rendering is canonical
// rather than comment/whitespace-preserving: the guarantee, checked by
// property tests, is Parse(Render(t)) ≡ t.
type Renderer interface {
	// Render serializes the tree in the lens's native file format.
	Render(tree *configtree.Node) ([]byte, error)
}

// Compile-time checks: these lenses support write-back.
var (
	_ Renderer = (*KeyValue)(nil)
	_ Renderer = (*Sysctl)(nil)
	_ Renderer = (*SSHD)(nil)
	_ Renderer = (*INI)(nil)
	_ Renderer = (*Nginx)(nil)
	_ Renderer = (*Properties)(nil)
)

// Render implements Renderer for flat key-value files.
func (l *KeyValue) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	sep := l.sep
	if sep == "" {
		sep = " "
	} else {
		sep = " " + sep + " "
	}
	for _, c := range tree.Children {
		if len(c.Children) > 0 {
			return nil, fmt.Errorf("lens %s: cannot render nested node %q", l.name, c.Label)
		}
		fmt.Fprintf(&b, "%s%s%s\n", c.Label, sep, c.Value)
	}
	return []byte(b.String()), nil
}

// Render implements Renderer: nested tree paths collapse back to dotted
// sysctl keys.
func (l *Sysctl) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	var walk func(prefix string, n *configtree.Node)
	walk = func(prefix string, n *configtree.Node) {
		for _, c := range n.Children {
			key := c.Label
			if prefix != "" {
				key = prefix + "." + c.Label
			}
			if len(c.Children) > 0 {
				walk(key, c)
				continue
			}
			fmt.Fprintf(&b, "%s = %s\n", key, c.Value)
		}
	}
	walk("", tree)
	return []byte(b.String()), nil
}

// Render implements Renderer for sshd_config: top-level directives first,
// then Match blocks with indented bodies.
func (l *SSHD) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	var matches []*configtree.Node
	for _, c := range tree.Children {
		if c.Label == "Match" {
			matches = append(matches, c)
			continue
		}
		writeDirective(&b, "", c.Label, c.Value)
	}
	for _, m := range matches {
		fmt.Fprintf(&b, "Match %s\n", m.Value)
		for _, c := range m.Children {
			writeDirective(&b, "    ", c.Label, c.Value)
		}
	}
	return []byte(b.String()), nil
}

func writeDirective(b *strings.Builder, indent, key, value string) {
	b.WriteString(indent)
	b.WriteString(key)
	if value != "" {
		b.WriteByte(' ')
		b.WriteString(value)
	}
	b.WriteByte('\n')
}

// Render implements Renderer for INI files: root-level keys first, then
// one [section] per child section.
func (l *INI) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	var sections []*configtree.Node
	for _, c := range tree.Children {
		if len(c.Children) > 0 {
			sections = append(sections, c)
			continue
		}
		writeINIEntry(&b, c)
	}
	for i, s := range sections {
		if i > 0 || b.Len() > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "[%s]\n", s.Label)
		for _, c := range s.Children {
			if len(c.Children) > 0 {
				return nil, fmt.Errorf("lens %s: cannot render doubly nested node %q", l.name, c.Label)
			}
			writeINIEntry(&b, c)
		}
	}
	return []byte(b.String()), nil
}

func writeINIEntry(b *strings.Builder, n *configtree.Node) {
	switch {
	case n.Label == "#include":
		fmt.Fprintf(b, "!%s\n", n.Value)
	case n.Value == "":
		fmt.Fprintf(b, "%s\n", n.Label)
	default:
		fmt.Fprintf(b, "%s = %s\n", n.Label, n.Value)
	}
}

// Render implements Renderer for nginx configuration: directives become
// "name args;" lines, sections become "name args { ... }" blocks.
func (l *Nginx) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	renderNginxChildren(&b, tree, 0)
	return []byte(b.String()), nil
}

func renderNginxChildren(b *strings.Builder, n *configtree.Node, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, c := range n.Children {
		if len(c.Children) > 0 {
			b.WriteString(indent)
			b.WriteString(c.Label)
			if c.Value != "" {
				b.WriteByte(' ')
				b.WriteString(c.Value)
			}
			b.WriteString(" {\n")
			renderNginxChildren(b, c, depth+1)
			b.WriteString(indent)
			b.WriteString("}\n")
			continue
		}
		b.WriteString(indent)
		b.WriteString(c.Label)
		if c.Value != "" {
			b.WriteByte(' ')
			b.WriteString(c.Value)
		}
		b.WriteString(";\n")
	}
}

// Render implements Renderer for properties files.
func (l *Properties) Render(tree *configtree.Node) ([]byte, error) {
	var b strings.Builder
	replacer := strings.NewReplacer("=", `\=`, ":", `\:`, " ", `\ `)
	for _, c := range tree.Children {
		if len(c.Children) > 0 {
			return nil, fmt.Errorf("lens properties: cannot render nested node %q", c.Label)
		}
		if c.Value == "" {
			fmt.Fprintf(&b, "%s\n", replacer.Replace(c.Label))
			continue
		}
		fmt.Fprintf(&b, "%s=%s\n", replacer.Replace(c.Label), c.Value)
	}
	return []byte(b.String()), nil
}
