package lens

import (
	"testing"
)

func TestHostsLens(t *testing.T) {
	src := "127.0.0.1 localhost\n10.0.0.5 web-01 web-01.internal web\n"
	res := parseWith(t, NewHosts(), "/etc/hosts", src)
	tbl := res.Table
	if tbl.Len() != 2 {
		t.Fatalf("rows = %d", tbl.Len())
	}
	if tbl.Rows[1][0] != "10.0.0.5" || tbl.Rows[1][1] != "web-01" || tbl.Rows[1][2] != "web-01.internal web" {
		t.Errorf("row = %v", tbl.Rows[1])
	}
	out, err := tbl.Select(sel("hostname = ?", "localhost"))
	if err != nil || out.Len() != 1 {
		t.Errorf("query = %v, %v", out, err)
	}
}

func TestResolvLens(t *testing.T) {
	src := "nameserver 10.0.0.2\nnameserver 10.0.0.3\nsearch internal.example.com example.com\noptions timeout:2\n"
	res := parseWith(t, NewResolv(), "/etc/resolv.conf", src)
	out, err := res.Table.Select(sel("directive = ?", "nameserver"))
	if err != nil || out.Len() != 2 {
		t.Fatalf("nameservers = %v, %v", out, err)
	}
	search, err := res.Table.Select(sel("directive = ?", "search"))
	if err != nil || search.Rows[0][1] != "internal.example.com example.com" {
		t.Errorf("search = %v, %v", search.Rows, err)
	}
}

func TestLimitsLens(t *testing.T) {
	src := "* hard core 0\n@admin soft nofile 4096\n"
	res := parseWith(t, NewLimits(), "/etc/security/limits.conf", src)
	out, err := res.Table.Select(sel("item = ? AND type = ?", "core", "hard"))
	if err != nil || out.Len() != 1 || out.Rows[0][3] != "0" {
		t.Errorf("core limit = %v, %v", out, err)
	}
	if _, err := NewLimits().Parse("f", []byte("incomplete line\n")); err == nil {
		t.Error("short limits row accepted")
	}
}

func TestCrontabLens(t *testing.T) {
	src := `SHELL=/bin/sh
PATH=/usr/bin:/bin
17 * * * * root cd / && run-parts --report /etc/cron.hourly
25 6 * * 7 root test -x /usr/sbin/anacron
`
	res := parseWith(t, NewCrontab(), "/etc/crontab", src)
	tbl := res.Table
	if tbl.Len() != 4 {
		t.Fatalf("rows = %d\n%s", tbl.Len(), tbl)
	}
	envs, err := tbl.Select(sel("kind = ?", "env"))
	if err != nil || envs.Len() != 2 {
		t.Errorf("env rows = %v, %v", envs, err)
	}
	jobs, err := tbl.Select(sel("kind = ? AND user = ?", "job", "root"))
	if err != nil || jobs.Len() != 2 {
		t.Errorf("job rows = %v, %v", jobs, err)
	}
	if got := jobs.Rows[0][7]; got != "cd / && run-parts --report /etc/cron.hourly" {
		t.Errorf("command = %q", got)
	}
	if _, err := NewCrontab().Parse("f", []byte("17 * * * root\n")); err == nil {
		t.Error("short crontab line accepted")
	}
}

func TestMiscRegistrySelection(t *testing.T) {
	r := Default()
	for path, want := range map[string]string{
		"/etc/hosts":                    "hosts",
		"/etc/resolv.conf":              "resolv",
		"/etc/security/limits.conf":     "limits",
		"/etc/security/limits.d/x.conf": "limits",
		"/etc/crontab":                  "crontab",
		"/etc/cron.d/backup":            "crontab",
	} {
		l, ok := r.ForFile(path)
		if !ok || l.Name() != want {
			t.Errorf("lens for %s = %v, want %s", path, l, want)
		}
	}
}
