package lens

import (
	"strings"

	"configvalidator/internal/configtree"
)

// Apache parses Apache httpd configuration: one directive per line
// ("Keyword arguments") plus container sections delimited by
// <Section args> ... </Section>. Continuation lines ending in '\' are
// joined. The paper (§6) calls out apache2.conf's modular style as the
// harder-to-parse tree case; this lens preserves the nesting exactly.
type Apache struct{}

var _ Lens = (*Apache)(nil)

// NewApache returns the apache lens.
func NewApache() *Apache { return &Apache{} }

// Name implements Lens.
func (l *Apache) Name() string { return "apache" }

// Kind implements Lens.
func (l *Apache) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *Apache) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	stack := []*configtree.Node{root}
	lines := splitLines(content)
	for i := 0; i < len(lines); i++ {
		lineNum := i + 1
		line := strings.TrimSpace(lines[i])
		for strings.HasSuffix(line, "\\") && i+1 < len(lines) {
			i++
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(lines[i])
		}
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		current := stack[len(stack)-1]
		switch {
		case strings.HasPrefix(line, "</"):
			if !strings.HasSuffix(line, ">") {
				return nil, parseErrorf("apache", path, lineNum, "malformed closing tag %q", line)
			}
			name := strings.TrimSpace(line[2 : len(line)-1])
			if len(stack) == 1 {
				return nil, parseErrorf("apache", path, lineNum, "closing </%s> without opening section", name)
			}
			open := stack[len(stack)-1]
			if !strings.EqualFold(open.Label, name) {
				return nil, parseErrorf("apache", path, lineNum, "closing </%s> does not match open <%s>", name, open.Label)
			}
			stack = stack[:len(stack)-1]
		case strings.HasPrefix(line, "<"):
			if !strings.HasSuffix(line, ">") {
				return nil, parseErrorf("apache", path, lineNum, "malformed section tag %q", line)
			}
			inner := strings.TrimSpace(line[1 : len(line)-1])
			parts := fields(inner)
			if len(parts) == 0 {
				return nil, parseErrorf("apache", path, lineNum, "empty section tag")
			}
			section := current.Section(parts[0])
			section.Value = strings.Join(parts[1:], " ")
			section.Line = lineNum
			stack = append(stack, section)
		default:
			parts := fields(line)
			node := current.Add(parts[0], strings.TrimSpace(line[len(parts[0]):]))
			node.Line = lineNum
		}
	}
	if len(stack) != 1 {
		return nil, parseErrorf("apache", path, len(lines), "unclosed section <%s>", stack[len(stack)-1].Label)
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}
