package lens

import (
	"strings"

	"configvalidator/internal/schema"
)

// Modprobe parses modprobe.d configuration files into a table with columns:
//
//	directive  install | blacklist | options | alias | remove | softdep
//	module     the module (or alias wildcard) the directive applies to
//	args       everything after the module name
//	raw        the original line
//
// CIS rules such as "ensure mounting of cramfs is disabled" check for rows
// like (install, cramfs, /bin/true).
type Modprobe struct{}

var _ Lens = (*Modprobe)(nil)

// NewModprobe returns the modprobe.d lens.
func NewModprobe() *Modprobe { return &Modprobe{} }

// Name implements Lens.
func (l *Modprobe) Name() string { return "modprobe" }

// Kind implements Lens.
func (l *Modprobe) Kind() Kind { return KindSchema }

var modprobeDirectives = map[string]bool{
	"install":   true,
	"blacklist": true,
	"options":   true,
	"alias":     true,
	"remove":    true,
	"softdep":   true,
}

// Parse implements Lens.
func (l *Modprobe) Parse(path string, content []byte) (*Result, error) {
	t := schema.New(path, "directive", "module", "args", "raw")
	t.File = path
	lines := splitLines(content)
	for i := 0; i < len(lines); i++ {
		lineNum := i + 1
		line := strings.TrimSpace(lines[i])
		for strings.HasSuffix(line, "\\") && i+1 < len(lines) {
			i++
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(lines[i])
		}
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		parts := fields(line)
		if !modprobeDirectives[parts[0]] {
			return nil, parseErrorf("modprobe", path, lineNum, "unknown directive %q", parts[0])
		}
		if len(parts) < 2 {
			return nil, parseErrorf("modprobe", path, lineNum, "directive %q requires a module name", parts[0])
		}
		args := ""
		if len(parts) > 2 {
			args = strings.Join(parts[2:], " ")
		}
		if err := t.AddRow(parts[0], parts[1], args, line); err != nil {
			return nil, parseErrorf("modprobe", path, lineNum, "%v", err)
		}
	}
	return &Result{Kind: KindSchema, Table: t}, nil
}
