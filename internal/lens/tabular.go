package lens

import (
	"strings"

	"configvalidator/internal/schema"
)

// Tabular is a generic lens for schema-pattern files (§2.1.1 of the paper):
// one row per line, fields separated by a delimiter, positional meaning.
type Tabular struct {
	name      string
	columns   []string
	delimiter string // "" means whitespace
	// lastCatchAll folds any extra fields into the final column, which is
	// how gecos-style free-text fields behave.
	lastCatchAll bool
	// strict rejects rows with fewer fields than columns (minus optional
	// trailing columns allowed by minFields).
	minFields int
}

var _ Lens = (*Tabular)(nil)

// NewTabular builds a tabular lens. delimiter "" splits on whitespace.
func NewTabular(name, delimiter string, minFields int, columns ...string) *Tabular {
	return &Tabular{name: name, columns: columns, delimiter: delimiter, minFields: minFields}
}

// Name implements Lens.
func (l *Tabular) Name() string { return l.name }

// Kind implements Lens.
func (l *Tabular) Kind() Kind { return KindSchema }

// Parse implements Lens.
func (l *Tabular) Parse(path string, content []byte) (*Result, error) {
	t := schema.New(path, l.columns...)
	t.File = path
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		var parts []string
		if l.delimiter == "" {
			parts = fields(line)
		} else {
			parts = strings.Split(line, l.delimiter)
		}
		if len(parts) < l.minFields {
			return nil, parseErrorf(l.name, path, i+1, "expected at least %d fields, got %d in %q", l.minFields, len(parts), line)
		}
		if len(parts) > len(l.columns) {
			if l.lastCatchAll || l.delimiter == "" {
				head := parts[:len(l.columns)-1]
				tail := strings.Join(parts[len(l.columns)-1:], delimiterOrSpace(l.delimiter))
				parts = append(append([]string(nil), head...), tail)
			} else {
				return nil, parseErrorf(l.name, path, i+1, "expected at most %d fields, got %d in %q", len(l.columns), len(parts), line)
			}
		}
		if err := t.AddRow(parts...); err != nil {
			return nil, parseErrorf(l.name, path, i+1, "%v", err)
		}
	}
	return &Result{Kind: KindSchema, Table: t}, nil
}

func delimiterOrSpace(d string) string {
	if d == "" {
		return " "
	}
	return d
}

// RenderTable serializes a parsed table back to the lens's native line
// format — the schema-side analogue of Renderer, which powers the
// round-trip property tests. Rendering is canonical rather than
// comment/whitespace-preserving: the guarantee is Parse(RenderTable(t)) ≡ t.
// Whitespace-delimited formats cannot represent empty or
// whitespace-containing interior fields; those rows are rejected.
func (l *Tabular) RenderTable(t *schema.Table) ([]byte, error) {
	delim := delimiterOrSpace(l.delimiter)
	var b strings.Builder
	for i, row := range t.Rows {
		end := len(row)
		for end > l.minFields && end > 0 && row[end-1] == "" {
			end--
		}
		fields := row[:end]
		if l.delimiter == "" {
			for _, f := range fields {
				if f == "" || strings.ContainsAny(f, " \t") {
					return nil, parseErrorf(l.name, t.File, i+1,
						"field %q not representable in a whitespace-delimited format", f)
				}
			}
		}
		b.WriteString(strings.Join(fields, delim))
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// NewFstab returns the /etc/fstab lens (whitespace-delimited, six columns;
// dump and pass are optional).
func NewFstab() *Tabular {
	return NewTabular("fstab", "", 4, "device", "dir", "fstype", "options", "dump", "pass")
}

// NewMounts returns the /proc/mounts lens, which shares fstab's format.
func NewMounts() *Tabular {
	return NewTabular("mounts", "", 4, "device", "dir", "fstype", "options", "dump", "pass")
}

// NewPasswd returns the /etc/passwd lens (colon-delimited, seven columns).
func NewPasswd() *Tabular {
	l := NewTabular("passwd", ":", 7, "name", "password", "uid", "gid", "gecos", "home", "shell")
	return l
}

// NewGroup returns the /etc/group lens (colon-delimited, four columns; the
// member list may be empty).
func NewGroup() *Tabular {
	return NewTabular("group", ":", 3, "name", "password", "gid", "members")
}
