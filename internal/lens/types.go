package lens

// Value-type declarations: each lens can declare, for its well-known
// configuration keys, the shape of values that key can legally take. The
// semantic rule analyzer (internal/analysis/sem) uses these declarations
// to prove that a rule's value matcher can never match any legal value of
// the key it constrains (diagnostic CVL407) — a "Port" rule preferring
// "yes", say, or a boolean key matched against a number.
//
// Declarations are deliberately conservative: a key is only declared when
// its legal value set is pinned down by the format's documentation. Keys
// without a declaration are unconstrained.

// ValueKind classifies a declared key type.
type ValueKind int

// Value kinds.
const (
	// KindInt admits any (optionally signed) decimal integer.
	KindInt ValueKind = iota + 1
	// KindUint admits non-negative decimal integers.
	KindUint
	// KindPort admits integers in [0, 65535].
	KindPort
	// KindEnum admits exactly the values listed in ValueType.Enum.
	KindEnum
)

// String names the kind for diagnostics.
func (k ValueKind) String() string {
	switch k {
	case KindInt:
		return "integer"
	case KindUint:
		return "non-negative integer"
	case KindPort:
		return "port number (0-65535)"
	case KindEnum:
		return "enumeration"
	default:
		return "unknown"
	}
}

// ValueType is the declared type of one configuration key.
type ValueType struct {
	// Kind is the value shape.
	Kind ValueKind
	// Enum lists the legal values when Kind is KindEnum.
	Enum []string
}

// yesNo is the classic boolean keyword pair used by sshd and friends.
var yesNo = []string{"yes", "no"}

// declaredTypes maps lens name → key → declared type. Key lookup is
// exact; see DeclaredType.
var declaredTypes = map[string]map[string]ValueType{
	"sshd": {
		// OpenSSH sshd_config(5). Enum sets include every documented
		// keyword so legitimate hardening rules never trip CVL407.
		"Port":                    {Kind: KindPort},
		"MaxAuthTries":            {Kind: KindUint},
		"MaxSessions":             {Kind: KindUint},
		"ClientAliveInterval":     {Kind: KindUint},
		"ClientAliveCountMax":     {Kind: KindUint},
		"LoginGraceTime":          {Kind: KindUint},
		"X11DisplayOffset":        {Kind: KindUint},
		"Protocol":                {Kind: KindEnum, Enum: []string{"1", "2", "1,2", "2,1"}},
		"PermitRootLogin":         {Kind: KindEnum, Enum: []string{"yes", "no", "prohibit-password", "without-password", "forced-commands-only"}},
		"X11Forwarding":           {Kind: KindEnum, Enum: yesNo},
		"IgnoreRhosts":            {Kind: KindEnum, Enum: yesNo},
		"HostbasedAuthentication": {Kind: KindEnum, Enum: yesNo},
		"PermitEmptyPasswords":    {Kind: KindEnum, Enum: yesNo},
		"PermitUserEnvironment":   {Kind: KindEnum, Enum: yesNo},
		"PasswordAuthentication":  {Kind: KindEnum, Enum: yesNo},
		"PubkeyAuthentication":    {Kind: KindEnum, Enum: yesNo},
		"UsePAM":                  {Kind: KindEnum, Enum: yesNo},
		"StrictModes":             {Kind: KindEnum, Enum: yesNo},
		"IgnoreUserKnownHosts":    {Kind: KindEnum, Enum: yesNo},
		"GSSAPIAuthentication":    {Kind: KindEnum, Enum: yesNo},
		"KerberosAuthentication":  {Kind: KindEnum, Enum: yesNo},
		"AllowTcpForwarding":      {Kind: KindEnum, Enum: []string{"yes", "no", "local", "remote"}},
		"LogLevel":                {Kind: KindEnum, Enum: []string{"QUIET", "FATAL", "ERROR", "INFO", "VERBOSE", "DEBUG", "DEBUG1", "DEBUG2", "DEBUG3"}},
	},
	"sysctl": {
		// Kernel parameters validated by the built-in CIS pack. The 0/1
		// toggles are declared as enums; counters as integers.
		"net/ipv4/ip_forward":                        {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/conf/all/send_redirects":           {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/conf/all/accept_redirects":         {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/conf/all/accept_source_route":      {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/conf/all/log_martians":             {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/conf/all/rp_filter":                {Kind: KindEnum, Enum: []string{"0", "1", "2"}},
		"net/ipv4/icmp_echo_ignore_broadcasts":       {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/icmp_ignore_bogus_error_responses": {Kind: KindEnum, Enum: []string{"0", "1"}},
		"net/ipv4/tcp_syncookies":                    {Kind: KindEnum, Enum: []string{"0", "1"}},
		"kernel/randomize_va_space":                  {Kind: KindEnum, Enum: []string{"0", "1", "2"}},
		"fs/suid_dumpable":                           {Kind: KindEnum, Enum: []string{"0", "1", "2"}},
		"net/ipv4/tcp_max_syn_backlog":               {Kind: KindUint},
	},
}

// DeclaredType returns the declared value type of key under the named
// lens, and whether one exists. The empty lens name never matches.
func DeclaredType(lensName, key string) (ValueType, bool) {
	if lensName == "" {
		return ValueType{}, false
	}
	byKey, ok := declaredTypes[lensName]
	if !ok {
		return ValueType{}, false
	}
	vt, ok := byKey[key]
	return vt, ok
}
