package lens

import (
	"strings"

	"configvalidator/internal/schema"
)

// NewHosts returns the /etc/hosts lens: a schema table with columns
// (address, hostname, aliases). Extra host names fold into aliases.
func NewHosts() *Tabular {
	l := NewTabular("hosts", "", 2, "address", "hostname", "aliases")
	l.lastCatchAll = true
	return l
}

// NewResolv returns the /etc/resolv.conf lens: a schema table with columns
// (directive, value) — nameserver/search/options/domain lines.
func NewResolv() *Tabular {
	l := NewTabular("resolv", "", 2, "directive", "value")
	l.lastCatchAll = true
	return l
}

// NewLimits returns the /etc/security/limits.conf lens: columns
// (domain, type, item, value), e.g. "* hard core 0" for the CIS rule that
// restricts core dumps.
func NewLimits() *Tabular {
	return NewTabular("limits", "", 4, "domain", "type", "item", "value")
}

// Crontab parses system crontab files (/etc/crontab, /etc/cron.d/*):
// five time fields, a user, and the command, plus KEY=value environment
// lines which are recorded with kind "env".
//
// Columns: kind (job|env), minute, hour, dom, month, dow, user, command.
type Crontab struct{}

var _ Lens = (*Crontab)(nil)

// NewCrontab returns the system crontab lens.
func NewCrontab() *Crontab { return &Crontab{} }

// Name implements Lens.
func (l *Crontab) Name() string { return "crontab" }

// Kind implements Lens.
func (l *Crontab) Kind() Kind { return KindSchema }

// Parse implements Lens.
func (l *Crontab) Parse(path string, content []byte) (*Result, error) {
	t := schema.New(path, "kind", "minute", "hour", "dom", "month", "dow", "user", "command")
	t.File = path
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		if idx := strings.IndexByte(line, '='); idx > 0 && !strings.ContainsAny(line[:idx], " \t*") {
			if err := t.AddRow("env", "", "", "", "", "", "", line); err != nil {
				return nil, parseErrorf("crontab", path, i+1, "%v", err)
			}
			continue
		}
		parts := fields(line)
		if len(parts) < 7 {
			return nil, parseErrorf("crontab", path, i+1, "expected 'm h dom mon dow user command', got %q", line)
		}
		command := strings.Join(parts[6:], " ")
		row := []string{"job", parts[0], parts[1], parts[2], parts[3], parts[4], parts[5], command}
		if err := t.AddRow(row...); err != nil {
			return nil, parseErrorf("crontab", path, i+1, "%v", err)
		}
	}
	return &Result{Kind: KindSchema, Table: t}, nil
}
