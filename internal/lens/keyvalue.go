package lens

import (
	"strings"

	"configvalidator/internal/configtree"
)

// KeyValue is a generic lens for flat "key <sep> value" files. It covers the
// simplest key-value-tree pattern from §2.1.1 of the paper.
type KeyValue struct {
	name string
	sep  string // separator: "=" or ":"; empty means whitespace
}

var _ Lens = (*KeyValue)(nil)

// NewKeyValue returns a key-value lens using the given separator; pass ""
// for whitespace-separated files.
func NewKeyValue(name, sep string) *KeyValue {
	return &KeyValue{name: name, sep: sep}
}

// Name implements Lens.
func (l *KeyValue) Name() string { return l.name }

// Kind implements Lens.
func (l *KeyValue) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *KeyValue) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		key, value, ok := splitKeyValue(line, l.sep)
		if !ok {
			return nil, parseErrorf(l.name, path, i+1, "expected 'key%svalue', got %q", displaySep(l.sep), line)
		}
		node := root.Add(key, value)
		node.Line = i + 1
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

// Sysctl parses sysctl.conf-style files. Dotted keys expand into nested
// tree paths so that rules can address net/ipv4/ip_forward naturally.
type Sysctl struct{}

var _ Lens = (*Sysctl)(nil)

// NewSysctl returns the sysctl lens.
func NewSysctl() *Sysctl { return &Sysctl{} }

// Name implements Lens.
func (l *Sysctl) Name() string { return "sysctl" }

// Kind implements Lens.
func (l *Sysctl) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *Sysctl) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		key, value, ok := splitKeyValue(line, "=")
		if !ok {
			return nil, parseErrorf("sysctl", path, i+1, "expected 'key = value', got %q", line)
		}
		treePath := strings.ReplaceAll(key, ".", "/")
		node, err := root.Put(treePath, value)
		if err != nil {
			return nil, parseErrorf("sysctl", path, i+1, "key %q: %v", key, err)
		}
		node.Line = i + 1
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

// SSHD parses OpenSSH server/client configuration: whitespace-separated
// "Keyword arguments" lines, with Match blocks becoming sections.
type SSHD struct{}

var _ Lens = (*SSHD)(nil)

// NewSSHD returns the sshd_config lens.
func NewSSHD() *SSHD { return &SSHD{} }

// Name implements Lens.
func (l *SSHD) Name() string { return "sshd" }

// Kind implements Lens.
func (l *SSHD) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *SSHD) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	current := root
	for i, line := range splitLines(content) {
		line = strings.TrimSpace(stripLineComment(line, "#"))
		if line == "" {
			continue
		}
		parts := fields(line)
		if len(parts) == 0 {
			continue
		}
		key := parts[0]
		value := strings.TrimSpace(line[len(key):])
		// sshd_config also accepts "Key=value".
		if eq := strings.IndexByte(key, '='); eq > 0 {
			value = key[eq+1:] + value
			key = key[:eq]
		} else if strings.HasPrefix(value, "=") {
			value = strings.TrimSpace(value[1:])
		}
		if strings.EqualFold(key, "Match") {
			section := root.Section("Match")
			section.Value = value
			section.Line = i + 1
			current = section
			continue
		}
		node := current.Add(key, value)
		node.Line = i + 1
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

// Properties parses Java-style .properties files (key=value or key:value,
// backslash escapes for separators).
type Properties struct{}

var _ Lens = (*Properties)(nil)

// NewProperties returns the properties lens.
func NewProperties() *Properties { return &Properties{} }

// Name implements Lens.
func (l *Properties) Name() string { return "properties" }

// Kind implements Lens.
func (l *Properties) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *Properties) Parse(path string, content []byte) (*Result, error) {
	root := configtree.New(path)
	root.File = path
	lines := splitLines(content)
	for i := 0; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "!") {
			continue
		}
		// Line continuations: a trailing backslash joins the next line.
		for strings.HasSuffix(line, "\\") && i+1 < len(lines) {
			i++
			line = strings.TrimSuffix(line, "\\") + strings.TrimSpace(lines[i])
		}
		sepIdx := -1
		for j := 0; j < len(line); j++ {
			c := line[j]
			if c == '\\' {
				j++
				continue
			}
			if c == '=' || c == ':' {
				sepIdx = j
				break
			}
		}
		var key, value string
		if sepIdx < 0 {
			key, value = line, ""
		} else {
			key = strings.TrimSpace(line[:sepIdx])
			value = strings.TrimSpace(line[sepIdx+1:])
		}
		key = strings.NewReplacer(`\=`, "=", `\:`, ":", `\ `, " ").Replace(key)
		node := root.Add(key, value)
		node.Line = i + 1
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

// splitKeyValue splits a line at the separator; sep=="" means whitespace.
func splitKeyValue(line, sep string) (key, value string, ok bool) {
	if sep == "" {
		parts := fields(line)
		if len(parts) == 0 {
			return "", "", false
		}
		return parts[0], strings.TrimSpace(line[len(parts[0]):]), true
	}
	idx := strings.Index(line, sep)
	if idx <= 0 {
		return "", "", false
	}
	return strings.TrimSpace(line[:idx]), strings.TrimSpace(line[idx+len(sep):]), true
}

func displaySep(sep string) string {
	if sep == "" {
		return " "
	}
	return sep
}
