package lens

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"

	"configvalidator/internal/configtree"
)

// JSON parses JSON configuration files (e.g. Docker's daemon.json) into a
// tree. Objects become sections with one child per key (sorted for
// determinism), arrays become repeated children labelled with the parent
// key, and scalars become leaf values.
type JSON struct {
	name string
}

var _ Lens = (*JSON)(nil)

// NewJSON returns a JSON lens registered under the given name.
func NewJSON(name string) *JSON { return &JSON{name: name} }

// Name implements Lens.
func (l *JSON) Name() string { return l.name }

// Kind implements Lens.
func (l *JSON) Kind() Kind { return KindTree }

// Parse implements Lens.
func (l *JSON) Parse(path string, content []byte) (*Result, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(content))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, parseErrorf(l.name, path, 0, "json: %v", err)
	}
	root := configtree.New(path)
	root.File = path
	if err := jsonToTree(root, "", v); err != nil {
		return nil, parseErrorf(l.name, path, 0, "%v", err)
	}
	return &Result{Kind: KindTree, Tree: root}, nil
}

func jsonToTree(parent *configtree.Node, label string, v any) error {
	switch val := v.(type) {
	case map[string]any:
		target := parent
		if label != "" {
			target = parent.Section(label)
		}
		keys := make([]string, 0, len(val))
		for k := range val {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := jsonToTree(target, k, val[k]); err != nil {
				return err
			}
		}
	case []any:
		if label == "" {
			label = "item"
		}
		for _, item := range val {
			if err := jsonToTree(parent, label, item); err != nil {
				return err
			}
		}
		if len(val) == 0 {
			parent.Section(label)
		}
	case string:
		parent.Add(label, val)
	case json.Number:
		parent.Add(label, val.String())
	case bool:
		parent.Add(label, strconv.FormatBool(val))
	case nil:
		parent.Add(label, "")
	default:
		return fmt.Errorf("unsupported JSON value type %T", v)
	}
	return nil
}
