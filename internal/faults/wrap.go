package faults

import "configvalidator/internal/entity"

// Wrap returns an entity whose filesystem and runtime access runs through
// the injector: reads can fail, truncate, corrupt, or stall; walks, stats,
// and feature calls can fail or panic. With a disabled injector the
// original entity is returned unchanged, so the wrapped path costs nothing
// when injection is off.
func Wrap(e entity.Entity, inj *Injector) entity.Entity {
	if !inj.Enabled() {
		return e
	}
	return &faultEntity{Entity: e, inj: inj}
}

// faultEntity interposes the injector on the Entity methods the crawler
// and rule engine exercise. Remaining methods pass through via embedding.
type faultEntity struct {
	entity.Entity
	inj *Injector
}

func (f *faultEntity) ReadFile(path string) ([]byte, error) {
	data, err := f.Entity.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return f.inj.Apply(OpRead, path, data)
}

func (f *faultEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	if err := f.inj.Check(OpWalk, root); err != nil {
		return err
	}
	return f.Entity.Walk(root, fn)
}

func (f *faultEntity) Stat(path string) (entity.FileInfo, error) {
	if err := f.inj.Check(OpStat, path); err != nil {
		return entity.FileInfo{}, err
	}
	return f.Entity.Stat(path)
}

func (f *faultEntity) RunFeature(name string) (string, error) {
	if err := f.inj.Check(OpFeature, name); err != nil {
		return "", err
	}
	return f.Entity.RunFeature(name)
}
