package faults_test

import (
	"bytes"
	"errors"
	"io"
	"syscall"
	"testing"
	"time"

	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
)

func TestDisabledInjectorIsInert(t *testing.T) {
	var inj *faults.Injector // nil: the production default
	if inj.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	data := []byte("hello")
	got, err := inj.Apply(faults.OpRead, "/etc/x", data)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("nil Apply = %q, %v", got, err)
	}
	if err := inj.Check(faults.OpWalk, "/etc"); err != nil {
		t.Fatalf("nil Check = %v", err)
	}
	if inj.Injected() != 0 {
		t.Fatal("nil injector counted injections")
	}
	empty, err := faults.New()
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() {
		t.Fatal("empty injector reports enabled")
	}
}

// TestDisabledInjectorZeroAlloc pins the zero-cost-when-disabled claim:
// the hot-path calls allocate nothing with injection off.
func TestDisabledInjectorZeroAlloc(t *testing.T) {
	var inj *faults.Injector
	data := []byte("content")
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", data); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("disabled Apply allocates %v per run, want 0", allocs)
	}
	ent := entity.NewMem("h", entity.TypeHost)
	if got := faults.Wrap(ent, nil); got != entity.Entity(ent) {
		t.Error("Wrap with disabled injector did not return the original entity")
	}
}

func TestTriggerNthFiresOnce(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpRead, Nth: 3, Kind: faults.KindError})
	var errs int
	for i := 0; i < 10; i++ {
		if _, err := inj.Apply(faults.OpRead, "/f", nil); err != nil {
			errs++
			if i != 2 {
				t.Errorf("fired on call %d, want call 3", i+1)
			}
		}
	}
	if errs != 1 || inj.Injected() != 1 {
		t.Errorf("errs = %d, injected = %d, want 1, 1", errs, inj.Injected())
	}
}

func TestTriggerEveryAndTimes(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpParse, Every: 2, Times: 3, Kind: faults.KindError})
	var fired []int
	for i := 1; i <= 12; i++ {
		if _, err := inj.Apply(faults.OpParse, "/f", nil); err != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 4, 6} // every 2nd call, capped at 3 firings
	if len(fired) != len(want) {
		t.Fatalf("fired on %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired on %v, want %v", fired, want)
		}
	}
}

func TestTriggerAfter(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpWalk, After: 2, Kind: faults.KindError})
	var errs int
	for i := 0; i < 5; i++ {
		if err := inj.Check(faults.OpWalk, "/etc"); err != nil {
			errs++
		}
	}
	if errs != 3 {
		t.Errorf("errs = %d, want 3 (all calls after the 2nd)", errs)
	}
}

func TestPathMatching(t *testing.T) {
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpRead, Path: "sshd_config", Kind: faults.KindError},
		faults.Rule{Op: faults.OpRead, Path: "*.conf", Kind: faults.KindTransient},
	)
	if _, err := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", nil); err == nil {
		t.Error("substring match missed")
	}
	if _, err := inj.Apply(faults.OpRead, "/etc/nginx/nginx.conf", nil); err == nil {
		t.Error("base-name glob match missed")
	}
	if _, err := inj.Apply(faults.OpRead, "/etc/passwd", nil); err != nil {
		t.Errorf("unmatched path injected: %v", err)
	}
	if _, err := inj.Apply(faults.OpWalk, "/etc/ssh/sshd_config", nil); err != nil {
		t.Errorf("wrong op injected: %v", err)
	}
}

func TestTransientClassification(t *testing.T) {
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpRead, Path: "perm", Kind: faults.KindError},
		faults.Rule{Op: faults.OpRead, Path: "flaky", Kind: faults.KindTransient, Msg: "backend busy"},
	)
	_, permErr := inj.Apply(faults.OpRead, "/perm", nil)
	_, flakyErr := inj.Apply(faults.OpRead, "/flaky", nil)
	if permErr == nil || flakyErr == nil {
		t.Fatalf("faults not injected: %v, %v", permErr, flakyErr)
	}
	if engine.Transient(permErr) {
		t.Error("permanent injected error classified transient")
	}
	if !engine.Transient(flakyErr) {
		t.Error("transient injected error classified permanent")
	}
	if !errors.Is(permErr, faults.ErrInjected) || !errors.Is(flakyErr, faults.ErrInjected) {
		t.Error("injected errors do not wrap ErrInjected")
	}
}

func TestShortRead(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpRead, Kind: faults.KindShort, Bytes: 4})
	got, err := inj.Apply(faults.OpRead, "/f", []byte("PermitRootLogin no\n"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "Perm" {
		t.Errorf("short read = %q, want %q", got, "Perm")
	}
}

func TestCorruptIsDeterministic(t *testing.T) {
	content := []byte("PermitRootLogin no\nPort 22\nUsePAM yes\n")
	run := func() []byte {
		inj := faults.MustNew(faults.Rule{Op: faults.OpRead, Kind: faults.KindCorrupt, Seed: 42})
		out, err := inj.Apply(faults.OpRead, "/f", content)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different corruption")
	}
	if bytes.Equal(a, content) {
		t.Error("corruption changed nothing")
	}
	if !bytes.Equal(content, []byte("PermitRootLogin no\nPort 22\nUsePAM yes\n")) {
		t.Error("corruption mutated the caller's slice")
	}
}

func TestLatencySleeps(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpRead, Kind: faults.KindLatency, Delay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := inj.Apply(faults.OpRead, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("latency fault slept %v, want >= 30ms", elapsed)
	}
}

func TestPanicKind(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpParse, Kind: faults.KindPanic})
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic kind did not panic")
		}
	}()
	_ = inj.Check(faults.OpParse, "/f")
}

func TestWrapInterposesEntityAccess(t *testing.T) {
	mem := entity.NewMem("h", entity.TypeHost)
	mem.AddFile("/etc/ssh/sshd_config", []byte("Port 22\n"))
	mem.SetFeature("sysctl.runtime", "1")
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpRead, Kind: faults.KindError, Msg: "disk gone"},
		faults.Rule{Op: faults.OpStat, Kind: faults.KindError},
		faults.Rule{Op: faults.OpFeature, Kind: faults.KindError},
		faults.Rule{Op: faults.OpWalk, Kind: faults.KindError},
	)
	wrapped := faults.Wrap(mem, inj)
	if _, err := wrapped.ReadFile("/etc/ssh/sshd_config"); err == nil {
		t.Error("read fault not injected")
	}
	if _, err := wrapped.Stat("/etc/ssh/sshd_config"); err == nil {
		t.Error("stat fault not injected")
	}
	if _, err := wrapped.RunFeature("sysctl.runtime"); err == nil {
		t.Error("feature fault not injected")
	}
	if err := wrapped.Walk("/etc", func(entity.FileInfo) error { return nil }); err == nil {
		t.Error("walk fault not injected")
	}
	if wrapped.Name() != "h" {
		t.Error("pass-through method broken")
	}
}

func TestParseSpec(t *testing.T) {
	inj, err := faults.Parse("op=read path=sshd_config every=5 kind=transient msg=flaky; op=parse,nth=3,kind=panic")
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Enabled() {
		t.Fatal("parsed injector disabled")
	}
	// First rule: every 5th sshd_config read is a transient error.
	var errs int
	for i := 0; i < 10; i++ {
		if _, err := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", nil); err != nil {
			errs++
			if !engine.Transient(err) {
				t.Errorf("spec transient fault classified permanent: %v", err)
			}
		}
	}
	if errs != 2 {
		t.Errorf("every=5 over 10 calls fired %d times, want 2", errs)
	}
}

// TestWritePathKinds covers the disk-pressure fault kinds: each injected
// error must carry the matching OS errno in its Unwrap chain (callers
// branch on errors.Is(err, syscall.ENOSPC)), and short-write must hand
// back genuinely truncated data alongside the error.
func TestWritePathKinds(t *testing.T) {
	payload := []byte("0123456789abcdef")
	inj := faults.MustNew(
		faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC},
		faults.Rule{Op: faults.OpFsync, Kind: faults.KindEIO},
		faults.Rule{Op: faults.OpSegmentWrite, Kind: faults.KindShortWrite, Bytes: 5},
		faults.Rule{Op: faults.OpAtomicWrite, Kind: faults.KindShortWrite}, // default: half
	)

	_, enospc := inj.Apply(faults.OpJournalAppend, "/var/lib/cv/results.cvj", payload)
	if !errors.Is(enospc, syscall.ENOSPC) {
		t.Errorf("enospc kind: errors.Is(err, syscall.ENOSPC) = false for %v", enospc)
	}
	if !errors.Is(enospc, faults.ErrInjected) {
		t.Errorf("enospc kind does not wrap ErrInjected: %v", enospc)
	}
	if engine.Transient(enospc) {
		t.Error("ENOSPC classified transient; recovery belongs to the re-probe loop, not scan retries")
	}

	eio := inj.Check(faults.OpFsync, "/var/lib/cv/results.cvj")
	if !errors.Is(eio, syscall.EIO) || !errors.Is(eio, faults.ErrInjected) {
		t.Errorf("eio kind chain wrong: %v", eio)
	}

	short, err := inj.Apply(faults.OpSegmentWrite, "/seg/abc.cvj", payload)
	if !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("short-write kind: errors.Is(err, io.ErrShortWrite) = false for %v", err)
	}
	if string(short) != "01234" {
		t.Errorf("short-write bytes=5 returned %q, want %q", short, "01234")
	}

	half, err := inj.Apply(faults.OpAtomicWrite, "/tmp/ckpt", payload)
	if !errors.Is(err, io.ErrShortWrite) || len(half) != len(payload)/2 {
		t.Errorf("short-write default = %q (%v), want half of %d bytes", half, err, len(payload))
	}
}

// TestParseSpecWritePath pins the CV_FAULTS grammar for the write-path
// ops/kinds that the ENOSPC CI smoke and the chaos drills rely on.
func TestParseSpecWritePath(t *testing.T) {
	inj, err := faults.Parse("op=journal-append kind=enospc after=2; op=segment-write kind=eio; op=fsync kind=short-write bytes=3; op=atomic-write kind=enospc times=1")
	if err != nil {
		t.Fatal(err)
	}
	if !inj.Enabled() {
		t.Fatal("parsed injector disabled")
	}
	// after=2: the first two appends succeed, every later one is ENOSPC.
	var errs int
	for i := 0; i < 5; i++ {
		if err := inj.Check(faults.OpJournalAppend, "/j.cvj"); err != nil {
			errs++
			if !errors.Is(err, syscall.ENOSPC) {
				t.Errorf("append fault missing ENOSPC: %v", err)
			}
		}
	}
	if errs != 3 {
		t.Errorf("after=2 over 5 appends fired %d times, want 3", errs)
	}
	if err := inj.Check(faults.OpSegmentWrite, "/seg.cvj"); !errors.Is(err, syscall.EIO) {
		t.Errorf("segment-write eio = %v", err)
	}
	if _, err := inj.Apply(faults.OpFsync, "/j.cvj", []byte("abcdef")); !errors.Is(err, io.ErrShortWrite) {
		t.Errorf("fsync short-write = %v", err)
	}
	if err := inj.Check(faults.OpAtomicWrite, "/ckpt"); !errors.Is(err, syscall.ENOSPC) {
		t.Errorf("atomic-write enospc = %v", err)
	}
	if err := inj.Check(faults.OpAtomicWrite, "/ckpt"); err != nil {
		t.Errorf("times=1 fired twice: %v", err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                                // no rules
		"op=read kind=nope",               // unknown kind
		"op=teleport kind=error",          // unknown op
		"kind=error",                      // missing op
		"op=read nth=x kind=error",        // bad integer
		"op=read bogus=1 kind=error",      // unknown key
		"op=read delay=fast kind=latency", // bad duration
	} {
		if _, err := faults.Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv(faults.EnvVar, "")
	inj, err := faults.FromEnv()
	if inj != nil || err != nil {
		t.Fatalf("empty env = %v, %v", inj, err)
	}
	t.Setenv(faults.EnvVar, "op=read nth=1 kind=error")
	inj, err = faults.FromEnv()
	if err != nil || !inj.Enabled() {
		t.Fatalf("set env = %v, %v", inj, err)
	}
	t.Setenv(faults.EnvVar, "op=read kind=gibberish")
	if _, err = faults.FromEnv(); err == nil {
		t.Fatal("bad spec accepted")
	}
}

// The benchmark pair backs the zero-cost-when-disabled claim: a nil
// injector's Apply must be free next to an armed one.
//
//	go test -bench BenchmarkApply -benchmem ./internal/faults/
func BenchmarkApplyDisabled(b *testing.B) {
	var inj *faults.Injector
	data := []byte("PermitRootLogin no\nPort 22\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyArmedNonMatching(b *testing.B) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpParse, Path: "never-matches", Kind: faults.KindError})
	data := []byte("PermitRootLogin no\nPort 22\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inj.Apply(faults.OpRead, "/etc/ssh/sshd_config", data); err != nil {
			b.Fatal(err)
		}
	}
}
