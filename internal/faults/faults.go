// Package faults is a deterministic, seedable fault injector for the
// validation pipeline. Production config scanning (the paper's §5 runs
// tens of thousands of entities daily) meets unreadable files, truncated
// reads, hung backends, and crashing parsers as a matter of course; this
// package makes those conditions reproducible so the pipeline's graceful
// degradation can be tested instead of hoped for.
//
// An Injector holds a list of Rules. Each rule names an interception
// point (Op), an optional path pattern, a deterministic trigger (Nth,
// Every, After, Times), and a fault Kind: an injected error (optionally
// transient), a short read, added latency, corrupted bytes, or a panic.
// Interception points call Apply or Check; a nil or empty Injector is
// inert, and every method is nil-receiver safe, so the hot path pays one
// nil check and nothing else when injection is off.
//
// Injection is opt-in: tests construct injectors with New, and chaos runs
// enable them with the CV_FAULTS environment variable (see Parse for the
// spec grammar, and FromEnv).
package faults

import (
	"errors"
	"fmt"
	"io"
	pathpkg "path"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Op names an interception point in the pipeline.
type Op string

// Interception points.
const (
	// OpRead is entity.ReadFile: errors, short reads, corruption, latency.
	OpRead Op = "read"
	// OpWalk is entity.Walk over one search path root.
	OpWalk Op = "walk"
	// OpStat is entity.Stat (path rules).
	OpStat Op = "stat"
	// OpFeature is entity.RunFeature (script rules, crawler plugins).
	OpFeature Op = "feature"
	// OpParse is the lens parse of one crawled file.
	OpParse Op = "parse"
	// OpEval is the evaluation of one rule; the path is "entity/rule".
	OpEval Op = "eval"

	// Write-path interception points: the durability half of the
	// pipeline. Disk exhaustion and I/O faults hit appends, fsyncs, and
	// atomic artifact writes in production; these ops make them
	// reproducible (see docs/OPERATIONS.md, "Disk pressure & degraded
	// journaling").

	// OpJournalAppend is one record append to a result journal.
	OpJournalAppend Op = "journal-append"
	// OpFsync is an fsync of a journal or artifact file.
	OpFsync Op = "fsync"
	// OpAtomicWrite is fsutil.WriteAtomic's data write (checkpoints,
	// compacted journals, baseline artifacts).
	OpAtomicWrite Op = "atomic-write"
	// OpSegmentWrite is a worker-side shard journal segment append.
	OpSegmentWrite Op = "segment-write"
)

// Kind selects what a triggered rule does.
type Kind string

// Fault kinds.
const (
	// KindError injects a permanent error.
	KindError Kind = "error"
	// KindTransient injects an error that classifies as retryable
	// (it self-reports Temporary, which engine.Transient honors).
	KindTransient Kind = "transient"
	// KindShort truncates the operation's data to Bytes bytes — the
	// short-read / truncated-config case.
	KindShort Kind = "short"
	// KindLatency sleeps Delay before the operation proceeds.
	KindLatency Kind = "latency"
	// KindCorrupt deterministically flips bits in the operation's data,
	// derived from Seed and the firing index.
	KindCorrupt Kind = "corrupt"
	// KindPanic panics, exercising panic-isolation paths.
	KindPanic Kind = "panic"

	// Write-path fault kinds. Each injects an error whose chain contains
	// the matching OS errno (or io.ErrShortWrite), so callers that branch
	// on errors.Is(err, syscall.ENOSPC) see exactly what a real kernel
	// failure produces.

	// KindENOSPC injects an error wrapping syscall.ENOSPC — disk full.
	KindENOSPC Kind = "enospc"
	// KindEIO injects an error wrapping syscall.EIO — a failing device.
	KindEIO Kind = "eio"
	// KindShortWrite truncates the operation's data to Bytes bytes
	// (default: half) AND injects an error wrapping io.ErrShortWrite, so
	// write paths observe a genuinely torn partial write.
	KindShortWrite Kind = "short-write"
)

// ErrInjected is the sentinel every injected error wraps, so tests and
// operators can tell a synthetic fault from a real one.
var ErrInjected = errors.New("injected fault")

// InjectedError is the error produced by KindError and KindTransient
// rules. It wraps ErrInjected and, for transient faults, self-reports as
// a temporary condition so the fleet retry classifier treats it as
// retryable without this package importing the engine.
type InjectedError struct {
	// Op and Path locate the interception that fired.
	Op   Op
	Path string
	// Msg is the rule's custom message, if any.
	Msg string
	// IsTransient marks the fault retryable.
	IsTransient bool
	// Under is the OS-level error this fault simulates (syscall.ENOSPC,
	// syscall.EIO, io.ErrShortWrite), nil for plain injected errors. It
	// is part of the Unwrap chain so errors.Is sees the real errno.
	Under error
}

// Error implements error.
func (e *InjectedError) Error() string {
	msg := e.Msg
	if msg == "" && e.Under != nil {
		msg = e.Under.Error()
	}
	if msg == "" {
		msg = "injected fault"
	}
	return fmt.Sprintf("%s (at %s %s)", msg, e.Op, e.Path)
}

// Unwrap lets errors.Is(err, ErrInjected) identify synthetic faults and,
// for write-path kinds, errors.Is(err, syscall.ENOSPC) (etc.) see the
// simulated errno.
func (e *InjectedError) Unwrap() []error {
	if e.Under == nil {
		return []error{ErrInjected}
	}
	return []error{ErrInjected, e.Under}
}

// Temporary reports whether the fault should classify as transient.
func (e *InjectedError) Temporary() bool { return e.IsTransient }

// Rule is one fault-injection rule. The zero trigger fields mean "every
// matching call"; set exactly one of Nth, Every, or After to narrow it,
// and Times to bound the total number of firings.
type Rule struct {
	// Op is the interception point this rule applies to.
	Op Op
	// Path narrows the rule to matching paths: a substring of the full
	// path, or a glob matched against the full path or its base name.
	// Empty matches every path.
	Path string

	// Nth fires only on the Nth matching call (1-based).
	Nth int
	// Every fires on every Every-th matching call.
	Every int
	// After fires on every matching call after the first After calls.
	After int
	// Times caps the total number of firings (0 = unlimited).
	Times int

	// Kind selects the fault; KindError when empty.
	Kind Kind
	// Msg overrides the injected error message (error/transient kinds).
	Msg string
	// Delay is the added latency for KindLatency (default 10ms).
	Delay time.Duration
	// Bytes is the truncated length for KindShort.
	Bytes int
	// Seed drives deterministic corruption for KindCorrupt.
	Seed int64
}

// ruleState is a Rule plus its call/fire counters.
type ruleState struct {
	Rule
	calls atomic.Int64
	fires atomic.Int64
}

func (r *ruleState) matches(op Op, path string) bool {
	if r.Op != op {
		return false
	}
	pat := r.Path
	if pat == "" {
		return true
	}
	if strings.Contains(path, pat) {
		return true
	}
	if ok, err := pathpkg.Match(pat, path); err == nil && ok {
		return true
	}
	if ok, err := pathpkg.Match(pat, pathpkg.Base(path)); err == nil && ok {
		return true
	}
	return false
}

// shouldFire counts one matching call and decides whether the rule fires
// on it. Counters are atomic, so concurrent fleet workers share one
// deterministic total even though interleaving varies.
func (r *ruleState) shouldFire() bool {
	n := r.calls.Add(1)
	switch {
	case r.Nth > 0:
		if n != int64(r.Nth) {
			return false
		}
	case r.Every > 0:
		if n%int64(r.Every) != 0 {
			return false
		}
	case r.After > 0:
		if n <= int64(r.After) {
			return false
		}
	}
	if fired := r.fires.Add(1); r.Times > 0 && fired > int64(r.Times) {
		return false
	}
	return true
}

// Injector evaluates fault rules at pipeline interception points. All
// methods are safe on a nil receiver (no-ops), so callers plumb a
// possibly-nil *Injector unconditionally.
type Injector struct {
	rules    []*ruleState
	injected atomic.Int64
	sleep    func(time.Duration) // test seam; nil means time.Sleep
}

// New builds an injector from rules. Unknown kinds are rejected so a
// typo'd chaos spec fails loudly instead of silently injecting nothing.
func New(rules ...Rule) (*Injector, error) {
	inj := &Injector{}
	for i, r := range rules {
		if r.Kind == "" {
			r.Kind = KindError
		}
		switch r.Kind {
		case KindError, KindTransient, KindShort, KindLatency, KindCorrupt, KindPanic,
			KindENOSPC, KindEIO, KindShortWrite:
		default:
			return nil, fmt.Errorf("faults: rule %d: unknown kind %q", i, r.Kind)
		}
		switch r.Op {
		case OpRead, OpWalk, OpStat, OpFeature, OpParse, OpEval,
			OpJournalAppend, OpFsync, OpAtomicWrite, OpSegmentWrite:
		default:
			return nil, fmt.Errorf("faults: rule %d: unknown op %q", i, r.Op)
		}
		inj.rules = append(inj.rules, &ruleState{Rule: r})
	}
	return inj, nil
}

// MustNew is New for static test fixtures; it panics on invalid rules.
func MustNew(rules ...Rule) *Injector {
	inj, err := New(rules...)
	if err != nil {
		panic(err)
	}
	return inj
}

// Enabled reports whether any rule is loaded. A nil injector is disabled.
func (i *Injector) Enabled() bool { return i != nil && len(i.rules) > 0 }

// Injected returns the total number of faults fired so far — the number
// chaos tests reconcile against degraded findings in reports.
func (i *Injector) Injected() int64 {
	if i == nil {
		return 0
	}
	return i.injected.Load()
}

// Check evaluates op/path against the rules for operations without a data
// payload. It returns an injected error, sleeps for latency faults, or
// panics for panic faults; otherwise nil.
func (i *Injector) Check(op Op, path string) error {
	_, err := i.Apply(op, path, nil)
	return err
}

// Apply evaluates op/path against the rules and returns the (possibly
// truncated or corrupted) data plus any injected error. Latency faults
// sleep inline; panic faults panic. With no matching armed rule, data is
// returned untouched.
func (i *Injector) Apply(op Op, path string, data []byte) ([]byte, error) {
	if i == nil || len(i.rules) == 0 {
		return data, nil
	}
	for _, r := range i.rules {
		if !r.matches(op, path) || !r.shouldFire() {
			continue
		}
		i.injected.Add(1)
		switch r.Kind {
		case KindLatency:
			d := r.Delay
			if d <= 0 {
				d = 10 * time.Millisecond
			}
			if i.sleep != nil {
				i.sleep(d)
			} else {
				time.Sleep(d)
			}
		case KindPanic:
			panic(fmt.Sprintf("faults: injected panic (at %s %s)", op, path))
		case KindShort:
			if n := r.Bytes; data != nil && n >= 0 && n < len(data) {
				data = data[:n]
			}
		case KindCorrupt:
			if len(data) > 0 {
				data = corrupt(data, r.Seed, r.fires.Load())
			}
		case KindTransient:
			return data, &InjectedError{Op: op, Path: path, Msg: r.Msg, IsTransient: true}
		case KindENOSPC:
			// Not IsTransient: ENOSPC only clears when space is freed, so
			// the journal's re-probe loop owns recovery, not scan retries.
			return data, &InjectedError{Op: op, Path: path, Msg: r.Msg, Under: syscall.ENOSPC}
		case KindEIO:
			return data, &InjectedError{Op: op, Path: path, Msg: r.Msg, Under: syscall.EIO}
		case KindShortWrite:
			n := r.Bytes
			if n <= 0 || n >= len(data) {
				n = len(data) / 2
			}
			if data != nil && n >= 0 && n < len(data) {
				data = data[:n]
			}
			return data, &InjectedError{Op: op, Path: path, Msg: r.Msg, Under: io.ErrShortWrite}
		default: // KindError
			return data, &InjectedError{Op: op, Path: path, Msg: r.Msg}
		}
	}
	return data, nil
}

// corrupt returns a copy of data with deterministically chosen bits
// flipped: the positions derive from an xorshift sequence seeded by the
// rule's Seed and the firing index, so the same run corrupts the same
// bytes every time.
func corrupt(data []byte, seed, variant int64) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(variant)
	if x == 0 {
		x = 0x2545F4914F6CDD1D
	}
	flips := len(out)/16 + 1
	for k := 0; k < flips; k++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		pos := int(x % uint64(len(out)))
		out[pos] ^= 1 << ((x >> 8) % 8)
	}
	return out
}
