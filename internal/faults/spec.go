package faults

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// EnvVar is the environment variable chaos runs use to arm an injector
// without code changes: CV_FAULTS holds a spec in the Parse grammar.
// Commands that honor it (cvserver, cvwatch) log loudly when it is set.
const EnvVar = "CV_FAULTS"

// Parse builds an injector from a textual fault spec:
//
//	spec := rule (";" rule)*
//	rule := term ((","|space) term)*
//	term := key "=" value
//
// Keys: op (required: read|walk|stat|feature|parse|eval for the scan
// path; journal-append|fsync|atomic-write|segment-write for the write
// path), kind (required: error|transient|short|latency|corrupt|panic|
// enospc|eio|short-write), path (substring or glob), nth, every, after,
// times (integer triggers), msg (error text), delay (Go duration, latency
// kind), bytes (short / short-write kinds), seed (corrupt kind).
//
// Example — every 5th read of any sshd_config fails, and the 3rd nginx
// parse panics:
//
//	CV_FAULTS="op=read path=sshd_config every=5 kind=error; op=parse path=nginx.conf nth=3 kind=panic"
//
// Example — the disk fills after the 2nd journal append (the ENOSPC CI
// smoke's fallback spec), and every worker segment write hits EIO:
//
//	CV_FAULTS="op=journal-append kind=enospc after=2; op=segment-write kind=eio"
func Parse(spec string) (*Injector, error) {
	var rules []Rule
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		rule, err := parseRule(raw)
		if err != nil {
			return nil, fmt.Errorf("faults: rule %q: %w", raw, err)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q contains no rules", spec)
	}
	return New(rules...)
}

func parseRule(raw string) (Rule, error) {
	var r Rule
	terms := strings.FieldsFunc(raw, func(c rune) bool { return c == ',' || c == ' ' || c == '\t' })
	for _, term := range terms {
		key, value, ok := strings.Cut(term, "=")
		if !ok {
			return r, fmt.Errorf("term %q is not key=value", term)
		}
		var err error
		switch key {
		case "op":
			r.Op = Op(value)
		case "kind":
			r.Kind = Kind(value)
		case "path":
			r.Path = value
		case "msg":
			r.Msg = value
		case "nth":
			r.Nth, err = strconv.Atoi(value)
		case "every":
			r.Every, err = strconv.Atoi(value)
		case "after":
			r.After, err = strconv.Atoi(value)
		case "times":
			r.Times, err = strconv.Atoi(value)
		case "bytes":
			r.Bytes, err = strconv.Atoi(value)
		case "seed":
			r.Seed, err = strconv.ParseInt(value, 10, 64)
		case "delay":
			r.Delay, err = time.ParseDuration(value)
		default:
			return r, fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return r, fmt.Errorf("term %q: %w", term, err)
		}
	}
	if r.Op == "" {
		return r, fmt.Errorf("missing op=")
	}
	return r, nil
}

// FromEnv parses CV_FAULTS. Unset or empty returns (nil, nil): injection
// stays disabled and costs nothing.
func FromEnv() (*Injector, error) {
	spec := strings.TrimSpace(os.Getenv(EnvVar))
	if spec == "" {
		return nil, nil
	}
	return Parse(spec)
}
