// Package dist implements distributed fleet validation: a coordinator
// that partitions an entity stream into shards and hands them to remote
// cvworker processes under time-bounded leases, plus the wire protocol
// both sides speak. The design goal is the one the paper's production
// context (tens of thousands of images a day, §5) forces: worker failure
// is a first-class, tested event, not an outage. A worker that dies — or
// merely goes silent past its lease TTL — has its lease revoked and the
// unfinished remainder of its shard reassigned to a healthy worker;
// results the dead worker already streamed back are kept, so the shard
// resumes rather than restarts, and any duplicates arriving from a
// revoked stream are dropped last-writer-wins, exactly as the journal's
// compaction resolves duplicate records.
//
// # Protocol
//
// A shard scan is one HTTP request to a worker:
//
//	POST /v1/shard/scan?shard=<id>&heartbeat=<dur>&timeout=<dur>&retries=<n>
//
// The request body is newline-delimited JSON, one EntityRecord per
// entity, each carrying the entity serialized as a configuration frame
// (internal/frames) — the same touchless capture format the validation
// service already accepts, so a worker needs no access to the scanned
// entity. The response streams newline-delimited StreamRecords: a
// heartbeat at least every heartbeat interval while scanning, one result
// per entity as it completes, and a final done trailer. Every line doubles
// as a liveness signal; the coordinator revokes the lease when the stream
// goes silent past the lease TTL.
//
// Workers serve the endpoint behind the validation service's existing
// admission gate, so coordinator backpressure ties directly into the
// worker's 429/Retry-After shedding and circuit breaker.
package dist

import (
	"fmt"

	"configvalidator/internal/journal"
)

// EntityRecord is one request-body line: an entity to scan, shipped as a
// serialized configuration frame.
type EntityRecord struct {
	// Name is the entity's name; unique within a fleet run.
	Name string `json:"name"`
	// Digest is the coordinator-computed config digest, echoed back on the
	// entity's result so the coordinator can journal it without
	// recomputing. Empty when the digest could not be computed (the result
	// is then journaled audit-only, as in a local run).
	Digest string `json:"digest,omitempty"`
	// Frame is the entity serialized with frames.Write (JSON encodes it as
	// base64).
	Frame []byte `json:"frame"`
}

// Stream-record types.
const (
	// TypeHeartbeat is a liveness line emitted at least every heartbeat
	// interval while the worker is scanning.
	TypeHeartbeat = "heartbeat"
	// TypeResult carries one completed entity.
	TypeResult = "result"
	// TypeDone is the trailer after the final result; its absence tells
	// the coordinator the stream was cut short.
	TypeDone = "done"
	// TypeDegradedJournal reports that the worker's journal segment for
	// this shard stopped accepting writes (disk pressure); the scan
	// continues and results keep streaming, but worker-side resume is no
	// longer available for the shard. Emitted at most once per stream.
	TypeDegradedJournal = "degraded-journal"
)

// StreamRecord is one response line from a worker.
type StreamRecord struct {
	Type string `json:"type"`
	// Entity and Digest identify the completed entity (Type "result");
	// Digest echoes the request's EntityRecord.Digest.
	Entity string `json:"entity,omitempty"`
	Digest string `json:"digest,omitempty"`
	// Resumed reports the worker replayed the result from its local
	// journal segment instead of re-scanning.
	Resumed bool `json:"resumed,omitempty"`
	// Err and ErrKind carry a failed scan: the error text and its
	// ErrorsByKind classification, computed worker-side where the error
	// chain still exists.
	Err     string `json:"err,omitempty"`
	ErrKind string `json:"err_kind,omitempty"`
	// Report is the completed report in its journaled form, which
	// reconstructs byte-identically on the coordinator.
	Report *journal.ReportRecord `json:"report,omitempty"`
	// Scanned is the running result count (heartbeats) or the final count
	// (done trailer).
	Scanned int `json:"scanned,omitempty"`
}

// RemoteError is a worker-side scan failure reconstructed on the
// coordinator. It implements configvalidator.ErrorKinder, so the kind the
// worker classified (panic, timeout, permanent, ...) survives the wire and
// lands in the same FleetSummary.ErrorsByKind bucket a local run would
// use.
type RemoteError struct {
	// Worker is the base URL of the worker that reported the failure.
	Worker string
	// Kind is the worker-side ClassifyScanError result.
	Kind string
	// Msg is the worker-side error text.
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("worker %s: %s", e.Worker, e.Msg)
}

// ErrorKind returns the worker-side classification.
func (e *RemoteError) ErrorKind() string { return e.Kind }
