package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	configvalidator "configvalidator"
	"configvalidator/internal/frames"
	"configvalidator/internal/journal"
	"configvalidator/internal/telemetry"
)

// Options tune a Coordinator.
type Options struct {
	// ShardSize is the number of entities leased to a worker per request;
	// 0 means 8. Smaller shards re-lease less work after a worker death;
	// larger shards amortize frame-shipping overhead.
	ShardSize int
	// LeaseTTL is how long the coordinator tolerates silence on a shard
	// stream before revoking the lease and reassigning the unfinished
	// remainder; 0 means 10s. Every stream line — heartbeat or result —
	// resets the clock.
	LeaseTTL time.Duration
	// HeartbeatInterval is the heartbeat cadence workers are asked for;
	// 0 means LeaseTTL/4. It must be comfortably under LeaseTTL or healthy
	// slow scans get revoked.
	HeartbeatInterval time.Duration
	// MaxReassignments bounds how many times one shard may be re-leased
	// after failures before its remaining entities are reported as
	// ErrLeaseRevoked errors; 0 means 3.
	MaxReassignments int
	// DispatchRetries bounds in-place retries against one worker's
	// backpressure (429/503 with Retry-After, 409 segment-busy) before the
	// attempt counts as a lease failure; 0 means 8.
	DispatchRetries int
	// ProbeLimit is how many /readyz probes a failed worker gets before it
	// is declared dead; 0 means 30. When every worker is dead, pending
	// shards fail fast instead of queueing forever.
	ProbeLimit int
	// ProbeBackoff is the base delay between probes of a failed worker;
	// 0 means 100ms. Successive probes use the fleet's decorrelated
	// jitter, capped at 5s.
	ProbeBackoff time.Duration
	// StallWarn is how long a merged result may block on the FleetResult
	// consumer before the coordinator counts a merge stall and logs; 0
	// means 1s. Backpressure from a slow consumer is legitimate — shard
	// streams simply stop being read — but a stall past this threshold is
	// surfaced so operators can tell "consumer stalled" from "workers
	// slow".
	StallWarn time.Duration
	// CaptureRoots restricts frame capture to these path roots; empty
	// captures the whole entity. In-memory entities (images, frames) are
	// cheap to capture whole; for OS-backed entities set this to the
	// manifest's config roots.
	CaptureRoots []string
	// HTTPClient overrides the client used for worker RPCs. The default
	// has no global timeout: shard streams are long-lived by design and
	// bounded by the lease watchdog instead.
	HTTPClient *http.Client
	// Logf, when set, receives coordinator lifecycle events (lease
	// revocations, reassignments, worker deaths) — operator visibility,
	// never required for correctness.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.ShardSize <= 0 {
		o.ShardSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = o.LeaseTTL / 4
	}
	if o.MaxReassignments <= 0 {
		o.MaxReassignments = 3
	}
	if o.DispatchRetries <= 0 {
		o.DispatchRetries = 8
	}
	if o.ProbeLimit <= 0 {
		o.ProbeLimit = 30
	}
	if o.ProbeBackoff <= 0 {
		o.ProbeBackoff = 100 * time.Millisecond
	}
	if o.StallWarn <= 0 {
		o.StallWarn = time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Coordinator implements configvalidator.Scheduler over a set of remote
// cvworker processes: it packs the entity stream into shards, leases each
// shard to a worker, and merges the streamed results into the ordinary
// FleetResult channel. Set it as FleetOptions.Scheduler.
//
// Fault tolerance is the point: a lease whose stream goes silent past
// LeaseTTL is revoked, the worker is quarantined behind /readyz probes,
// and the shard's unfinished remainder is re-leased to a healthy worker.
// Results the failed worker already delivered are kept; a revoked stream
// racing its replacement cannot double-count an entity, because the
// coordinator emits each entity exactly once (first writer wins, later
// arrivals are dropped and counted). With FleetOptions.Journal set, every
// merged result is appended to the coordinator's journal exactly as a
// local run would, so a killed coordinator resumes the same way a killed
// local run does.
type Coordinator struct {
	workers []string
	opts    Options
}

// NewCoordinator builds a Coordinator over worker base URLs (e.g.
// "http://10.0.0.7:8080"). The worker list is fixed for the run; workers
// that die mid-run are probed and, failing that, retired.
func NewCoordinator(workers []string, opts Options) *Coordinator {
	ws := make([]string, 0, len(workers))
	for _, w := range workers {
		if w != "" {
			ws = append(ws, w)
		}
	}
	return &Coordinator{workers: ws, opts: opts.withDefaults()}
}

// item is one entity packed into a shard: its identity plus its
// pre-encoded request line, kept per-item so a reassigned shard can carry
// exactly the unfinished subset.
type item struct {
	name   string
	digest string
	line   []byte
}

// shard is one unit of leased work.
type shard struct {
	id      string
	attempt int
	items   []item
	// noSegment marks the shard resume-unavailable: the worker could not
	// open (507) or keep writing (degraded-journal) its journal segment,
	// so further dispatches of this shard skip worker-side resume rather
	// than hit the same full disk again. Results are unaffected — the
	// segment only accelerates re-leases.
	noSegment bool
}

// payload concatenates the shard's request-body lines.
func (s *shard) payload() []byte {
	var buf bytes.Buffer
	for _, it := range s.items {
		buf.Write(it.line)
	}
	return buf.Bytes()
}

// run is the per-Schedule state shared by the producer, dispatcher, and
// lease goroutines.
type run struct {
	ctx     context.Context
	fopts   configvalidator.FleetOptions
	metrics *telemetry.Collector
	results chan configvalidator.FleetResult

	// queue carries shards awaiting a worker; wg counts shards that have
	// been enqueued and not yet terminally resolved (completed or
	// failed out). A reassigned shard keeps its predecessor's wg slot.
	queue chan *shard
	wg    sync.WaitGroup

	// ready is the pool of workers available for a lease; live counts
	// workers not yet declared dead. When live reaches zero, noWorkers is
	// closed and pending shards fail fast.
	ready     chan string
	live      atomic.Int64
	noWorkers chan struct{}

	// mu guards emitted, the exactly-once gate: one FleetResult per entity
	// name, first writer wins.
	mu      sync.Mutex
	emitted map[string]bool

	// stallWarn and logf come from the coordinator's Options; jrnlOnce and
	// stallOnce gate the one-shot operator logs for coordinator-journal
	// degradation and the first merge stall.
	stallWarn time.Duration
	logf      func(format string, args ...any)
	jrnlOnce  sync.Once
	stallOnce sync.Once
}

// emit delivers one result exactly once, journaling it like a local run
// would. Duplicate deliveries — a revoked lease's stream racing its
// replacement — are dropped and counted, never double-journaled.
func (r *run) emit(res configvalidator.FleetResult, digest string) {
	r.mu.Lock()
	if r.emitted[res.Entity] {
		r.mu.Unlock()
		r.metrics.DuplicateResultDropped()
		return
	}
	r.emitted[res.Entity] = true
	r.mu.Unlock()
	if r.fopts.Journal != nil && !res.Resumed {
		rec := journal.Record{Entity: res.Entity}
		if res.Err != nil {
			// Failed scans journal digest-less: audit-only records a resumed
			// run re-scans — the same policy as a local run.
			rec.Err = res.Err.Error()
		} else {
			rec.Report = journal.NewReportRecord(res.Report)
			rec.Digest = digest
		}
		// Append failures (disk full) must not fail the scan: count them,
		// mark the result so the summary reports the lost durability, and
		// tell the operator once — the journal's re-probe loop owns recovery.
		if err := r.fopts.Journal.Append(rec); err != nil {
			r.metrics.JournalAppendError()
			res.JournalDegraded = true
			r.jrnlOnce.Do(func() {
				r.logf("dist: coordinator journal degraded, results no longer persisted (scan continues): %v", err)
			})
		}
	}
	// Delivery blocks when the consumer is slow — that is the backpressure
	// path: this goroutine stops reading its shard stream, the worker
	// blocks writing, and no new work is pulled. A stall past StallWarn is
	// counted and logged so operators can tell a stuck consumer from slow
	// workers; the lease watchdog excludes this wait (see leaseShard).
	stall := time.NewTimer(r.stallWarn)
	defer stall.Stop()
	stallC := stall.C
	for {
		select {
		case r.results <- res:
			return
		case <-stallC:
			r.metrics.MergeStalled()
			r.stallOnce.Do(func() {
				r.logf("dist: merge stalled: FleetResult consumer has not accepted a result for %v (backpressure holding shard streams)", r.stallWarn)
			})
			stallC = nil // count each stalled delivery once, then wait
		case <-r.ctx.Done():
			r.metrics.ScanAbandoned()
			return
		}
	}
}

// remaining returns the shard's not-yet-delivered items.
func (r *run) remaining(s *shard) []item {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rest []item
	for _, it := range s.items {
		if !r.emitted[it.name] {
			rest = append(rest, it)
		}
	}
	return rest
}

// failShard terminally fails every undelivered entity of the shard with a
// lease-revocation error and releases the shard's wg slot.
func (r *run) failShard(s *shard, cause error) {
	err := fmt.Errorf("shard %s: %w: %v", s.id, configvalidator.ErrLeaseRevoked, cause)
	for _, it := range r.remaining(s) {
		r.emit(configvalidator.FleetResult{Entity: it.name, Err: err}, it.digest)
	}
	r.wg.Done()
}

// Schedule implements configvalidator.Scheduler.
func (c *Coordinator) Schedule(ctx context.Context, v *configvalidator.Validator, entities <-chan configvalidator.Entity, fopts configvalidator.FleetOptions) <-chan configvalidator.FleetResult {
	r := &run{
		ctx:       ctx,
		fopts:     fopts,
		metrics:   v.Telemetry(),
		results:   make(chan configvalidator.FleetResult),
		queue:     make(chan *shard, 64),
		ready:     make(chan string, len(c.workers)),
		noWorkers: make(chan struct{}),
	}
	r.emitted = make(map[string]bool)
	r.stallWarn = c.opts.StallWarn
	r.logf = c.opts.Logf
	r.live.Store(int64(len(c.workers)))
	for _, w := range c.workers {
		r.ready <- w
	}
	if len(c.workers) == 0 {
		close(r.noWorkers)
	}

	produced := make(chan struct{})
	go c.produce(r, v, entities, produced)

	// Dispatcher: pair each queued shard with a ready worker and lease it.
	go func() {
		for s := range r.queue {
			w, err := c.acquireWorker(r)
			if err != nil {
				r.failShard(s, err)
				continue
			}
			go c.runShard(r, v, w, s)
		}
	}()

	// Closer: once the producer has packed everything and every shard has
	// terminally resolved, shut the machinery down.
	go func() {
		<-produced
		r.wg.Wait()
		close(r.queue)
		close(r.results)
	}()
	return r.results
}

// produce drains the entity stream: resumable entities are replayed from
// the coordinator journal immediately; the rest are captured as frames
// and packed into shards of ShardSize.
func (c *Coordinator) produce(r *run, v *configvalidator.Validator, entities <-chan configvalidator.Entity, produced chan<- struct{}) {
	defer close(produced)
	var cur []item
	seq := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		s := &shard{id: fmt.Sprintf("s%04d", seq), items: cur}
		seq++
		cur = nil
		r.wg.Add(1)
		select {
		case r.queue <- s:
		case <-r.ctx.Done():
			r.failShard(s, context.Cause(r.ctx))
		}
	}
	for {
		select {
		case <-r.ctx.Done():
			flush()
			return
		case ent, ok := <-entities:
			if !ok {
				flush()
				return
			}
			if it, done := c.pack(r, v, ent); !done {
				cur = append(cur, it)
				if len(cur) >= c.opts.ShardSize {
					flush()
				}
			}
		}
	}
}

// pack prepares one entity for shipping: digest for resume and journaling,
// then frame capture. It reports done=true when the entity needs no remote
// scan — replayed from the coordinator journal, or failed during capture —
// in which case the result has already been emitted.
func (c *Coordinator) pack(r *run, v *configvalidator.Validator, ent configvalidator.Entity) (item, bool) {
	name := ent.Name()
	digest, derr := v.ConfigDigest(ent, r.fopts.Target)
	if derr != nil {
		digest = ""
	}
	if digest != "" && r.fopts.Journal != nil {
		if rec, ok := r.fopts.Journal.Lookup(name, digest); ok {
			r.metrics.JournalEntitySkipped()
			r.emit(configvalidator.FleetResult{Entity: name, Report: rec.Report.Report(), Resumed: true}, digest)
			return item{}, true
		}
	}
	frame, err := frames.Capture(ent, c.opts.CaptureRoots, time.Now())
	if err != nil {
		r.emit(configvalidator.FleetResult{Entity: name, Err: fmt.Errorf("capture frame: %w", err)}, digest)
		return item{}, true
	}
	var fb bytes.Buffer
	if err := frame.Write(&fb); err != nil {
		r.emit(configvalidator.FleetResult{Entity: name, Err: fmt.Errorf("encode frame: %w", err)}, digest)
		return item{}, true
	}
	line, err := json.Marshal(EntityRecord{Name: name, Digest: digest, Frame: fb.Bytes()})
	if err != nil {
		r.emit(configvalidator.FleetResult{Entity: name, Err: fmt.Errorf("encode entity record: %w", err)}, digest)
		return item{}, true
	}
	return item{name: name, digest: digest, line: append(line, '\n')}, false
}

// acquireWorker blocks until a worker is available, every worker is dead,
// or the run is cancelled.
func (c *Coordinator) acquireWorker(r *run) (string, error) {
	select {
	case w := <-r.ready:
		return w, nil
	default:
	}
	select {
	case w := <-r.ready:
		return w, nil
	case <-r.noWorkers:
		return "", fmt.Errorf("no live workers remain")
	case <-r.ctx.Done():
		return "", context.Cause(r.ctx)
	}
}

// runShard executes one lease attempt end to end and routes its outcome:
// complete, reassign, or fail out.
func (c *Coordinator) runShard(r *run, v *configvalidator.Validator, w string, s *shard) {
	r.metrics.ShardDispatched()
	err := c.leaseShard(r, w, s)
	rest := r.remaining(s)
	if len(rest) == 0 {
		// Every entity delivered — a nil err is the normal completion, a
		// non-nil err means the stream died after its last useful line.
		r.metrics.ShardCompleted()
		r.wg.Done()
		r.ready <- w
		return
	}
	if err == nil {
		// The worker said "done" but entities are missing (its scan context
		// was cut short without the stream dying). Treat as a lease failure.
		err = fmt.Errorf("stream completed with %d/%d results", len(s.items)-len(rest), len(s.items))
	}
	c.opts.Logf("dist: shard %s attempt %d on %s failed: %v (%d/%d delivered)",
		s.id, s.attempt+1, w, err, len(s.items)-len(rest), len(s.items))

	// The worker failed its lease: quarantine it behind readiness probes.
	go c.probeWorker(r, w)

	if s.attempt >= c.opts.MaxReassignments {
		r.metrics.ShardCompleted()
		r.failShard(s, fmt.Errorf("lease failed %d times, last: %v", s.attempt+1, err))
		return
	}
	r.metrics.LeaseReassigned()
	ns := &shard{id: s.id, attempt: s.attempt + 1, items: rest, noSegment: s.noSegment}
	c.opts.Logf("dist: reassigning shard %s (attempt %d, %d entities left)", ns.id, ns.attempt+1, len(ns.items))
	// Requeue off the dispatcher goroutine; the queue cannot close under us
	// because our wg slot (carried over to ns) holds the closer back.
	go func() {
		select {
		case r.queue <- ns:
		case <-r.ctx.Done():
			r.failShard(ns, context.Cause(r.ctx))
		}
	}()
}

// leaseShard performs one shard RPC against one worker: dispatch with
// bounded backpressure retries, then consume the result stream under the
// lease watchdog. It returns nil only after the worker's done trailer.
func (c *Coordinator) leaseShard(r *run, w string, s *shard) error {
	// The lease context is the revocation lever: cancelling it aborts the
	// in-flight request (tearing the stream down worker-side too), with
	// ErrLeaseRevoked attached as the cause so anything downstream
	// classifies as revoked rather than user cancellation. The deferred
	// cancel also guarantees the scanner goroutine can always exit.
	leaseCtx, revoke := context.WithCancelCause(r.ctx)
	defer revoke(nil)
	resp, err := c.dispatch(r, leaseCtx, w, s)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()

	lines := make(chan []byte)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
		for sc.Scan() {
			line := append([]byte(nil), sc.Bytes()...)
			select {
			case lines <- line:
			case <-leaseCtx.Done():
				scanErr <- context.Cause(leaseCtx)
				close(lines)
				return
			}
		}
		scanErr <- sc.Err()
		close(lines)
	}()

	watchdog := time.NewTimer(c.opts.LeaseTTL)
	defer watchdog.Stop()
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				// Stream ended without a done trailer: the worker died or was
				// cut off mid-shard.
				err := <-scanErr
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				return fmt.Errorf("shard stream ended early: %w", err)
			}
			var rec StreamRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return fmt.Errorf("bad stream record: %w", err)
			}
			switch rec.Type {
			case TypeHeartbeat:
				// Liveness only; the watchdog reset below is its entire job.
			case TypeResult:
				r.emit(c.remoteResult(w, rec), rec.Digest)
			case TypeDegradedJournal:
				// The worker's journal segment stopped accepting writes. The
				// scan continues and the lease stays healthy; only worker-side
				// resume is lost, so mark the shard accordingly for any
				// future re-dispatch.
				s.noSegment = true
				c.opts.Logf("dist: worker %s journal segment for shard %s degraded (%s); shard resume unavailable, lease continues",
					w, s.id, rec.Err)
			case TypeDone:
				return nil
			}
			// Reset only after the record is fully processed: time spent
			// blocked in emit is consumer backpressure, not worker silence,
			// and must not count against the lease. The non-blocking drain
			// discards a watchdog that fired during the stall — the worker
			// already proved liveness by producing this line.
			if !watchdog.Stop() {
				select {
				case <-watchdog.C:
				default:
				}
			}
			watchdog.Reset(c.opts.LeaseTTL)
		case <-watchdog.C:
			// Lease expired: no heartbeat, no result, nothing — revoke.
			r.metrics.HeartbeatMissed()
			c.opts.Logf("dist: lease on shard %s (worker %s) expired after %v of silence; revoking",
				s.id, w, c.opts.LeaseTTL)
			revoke(configvalidator.ErrLeaseRevoked)
			return fmt.Errorf("lease expired: no heartbeat within %v: %w", c.opts.LeaseTTL, configvalidator.ErrLeaseRevoked)
		case <-r.ctx.Done():
			return context.Cause(r.ctx)
		}
	}
}

// remoteResult reconstructs a worker's streamed result as a FleetResult.
func (c *Coordinator) remoteResult(w string, rec StreamRecord) configvalidator.FleetResult {
	res := configvalidator.FleetResult{Entity: rec.Entity, Resumed: rec.Resumed, Worker: w}
	switch {
	case rec.Err != "":
		kind := rec.ErrKind
		if kind == "" {
			kind = configvalidator.ErrorKindPermanent
		}
		res.Err = &RemoteError{Worker: w, Kind: kind, Msg: rec.Err}
	case rec.Report != nil:
		res.Report = rec.Report.Report()
	default:
		res.Err = &RemoteError{Worker: w, Kind: configvalidator.ErrorKindPermanent, Msg: "result missing report"}
	}
	return res
}

// dispatch POSTs the shard to the worker, retrying in place while the
// worker sheds load (429/503 with Retry-After) or its journal segment is
// still held by a previous lease (409) — coordinator backpressure riding
// the worker's own admission control. Connection-level errors and other
// statuses return immediately as lease failures.
func (c *Coordinator) dispatch(r *run, leaseCtx context.Context, w string, s *shard) (*http.Response, error) {
	payload := s.payload()
	backoff := c.opts.ProbeBackoff
	for attempt := 0; ; attempt++ {
		u := fmt.Sprintf("%s/v1/shard/scan?shard=%s&heartbeat=%s&timeout=%s&retries=%d",
			w, url.QueryEscape(s.id),
			url.QueryEscape(c.opts.HeartbeatInterval.String()),
			url.QueryEscape(r.fopts.ScanTimeout.String()),
			r.fopts.Retries)
		if s.noSegment {
			u += "&segment=0"
		}
		req, err := http.NewRequestWithContext(leaseCtx, http.MethodPost, u, bytes.NewReader(payload))
		if err != nil {
			return nil, fmt.Errorf("build shard request: %w", err)
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			return nil, fmt.Errorf("dispatch shard: %w", err)
		}
		switch resp.StatusCode {
		case http.StatusOK:
			return resp, nil
		case http.StatusInsufficientStorage:
			// 507: the worker cannot open its journal segment (disk
			// pressure). The scan itself needs no segment — retry at once
			// with worker-side resume disabled, keeping the lease. A second
			// 507 means the worker rejects even segment-less work; fall
			// through to a lease failure then.
			_ = resp.Body.Close()
			if s.noSegment {
				return nil, fmt.Errorf("worker out of disk even without a journal segment: %s", resp.Status)
			}
			s.noSegment = true
			r.metrics.WorkerRPCRetry()
			c.opts.Logf("dist: worker %s cannot open journal segment for shard %s (disk pressure); retrying without worker-side resume",
				w, s.id)
		case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusConflict:
			// 429/503: the worker is shedding load. 409: its journal segment
			// for this shard is still flock-held by a previous, revoked lease
			// whose request is tearing down; both heal with a bounded wait.
			_ = resp.Body.Close()
			if attempt >= c.opts.DispatchRetries {
				return nil, fmt.Errorf("worker shedding load: %s after %d attempts", resp.Status, attempt+1)
			}
			r.metrics.WorkerRPCRetry()
			wait := retryAfterHint(resp, backoff)
			backoff = configvalidator.NextBackoff(c.opts.ProbeBackoff, backoff)
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-r.ctx.Done():
				timer.Stop()
				return nil, context.Cause(r.ctx)
			}
		default:
			snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			_ = resp.Body.Close()
			return nil, fmt.Errorf("worker rejected shard: %s: %s", resp.Status, bytes.TrimSpace(snippet))
		}
	}
}

// retryAfterHint honors a Retry-After header when present, falling back to
// the coordinator's own jittered backoff.
func retryAfterHint(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// probeWorker quarantines a failed worker: it re-enters the ready pool
// only after answering a /readyz probe, and is declared dead after
// ProbeLimit failed probes. The last death closes noWorkers, failing
// pending shards fast instead of queueing forever.
func (c *Coordinator) probeWorker(r *run, w string) {
	delay := c.opts.ProbeBackoff
	for i := 0; i < c.opts.ProbeLimit; i++ {
		timer := time.NewTimer(delay)
		select {
		case <-r.ctx.Done():
			timer.Stop()
			// Keep run-level accounting moving: a cancelled run still fails
			// pending shards via acquireWorker's ctx branch.
			return
		case <-timer.C:
		}
		if c.workerReady(r.ctx, w) {
			c.opts.Logf("dist: worker %s is ready again", w)
			r.ready <- w
			return
		}
		delay = configvalidator.NextBackoff(c.opts.ProbeBackoff, delay)
	}
	c.opts.Logf("dist: worker %s declared dead after %d failed probes", w, c.opts.ProbeLimit)
	if r.live.Add(-1) == 0 {
		close(r.noWorkers)
	}
}

// workerReady probes the worker's readiness endpoint.
func (c *Coordinator) workerReady(ctx context.Context, w string) bool {
	probeCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, w+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	_ = resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
