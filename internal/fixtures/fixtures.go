// Package fixtures generates synthetic validation targets: hosts, Docker
// images, containers, and clouds populated with realistic configuration
// files for every Table-1 target, with controllable misconfiguration
// injection. It stands in for the paper's production workload (IBM Cloud
// images and containers) so that evaluation runs are reproducible: the
// generator is fully deterministic given a seed, and reports exactly which
// misconfigurations it injected.
package fixtures

import (
	"fmt"
	"io/fs"
	"math/rand"
	"strings"
	"time"

	"configvalidator/internal/cloudsim"
	"configvalidator/internal/dockersim"
	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

// Profile controls generation.
type Profile struct {
	// Seed makes generation deterministic.
	Seed int64
	// MisconfigRate is the probability in [0,1] that each configuration
	// knob takes a non-compliant value.
	MisconfigRate float64
}

// Injection records one deliberately injected misconfiguration.
type Injection struct {
	// Target is the manifest entity the misconfiguration belongs to.
	Target string
	// Knob names the misconfigured parameter.
	Knob string
}

// generator carries shared RNG state.
type generator struct {
	r        *rand.Rand
	rate     float64
	injected []Injection
}

func newGenerator(p Profile) *generator {
	return &generator{r: rand.New(rand.NewSource(p.Seed)), rate: p.MisconfigRate}
}

// pick returns badValue with probability rate (recording the injection),
// goodValue otherwise.
func (g *generator) pick(target, knob, goodValue, badValue string) string {
	if g.r.Float64() < g.rate {
		g.injected = append(g.injected, Injection{Target: target, Knob: knob})
		return badValue
	}
	return goodValue
}

// omit returns true with probability rate (recording the injection) —
// used for "required line missing" misconfigurations.
func (g *generator) omit(target, knob string) bool {
	if g.r.Float64() < g.rate {
		g.injected = append(g.injected, Injection{Target: target, Knob: knob})
		return true
	}
	return false
}

// UbuntuHost generates a complete host entity carrying configuration for
// every Table-1 target, with injected misconfigurations per the profile.
// It returns the entity and the list of injections.
func UbuntuHost(name string, p Profile) (*entity.Mem, []Injection) {
	g := newGenerator(p)
	m := entity.NewMem(name, entity.TypeHost)
	g.populateSystemServices(m)
	g.populateApplications(m)
	m.AddFile("/etc/docker/daemon.json", []byte(g.dockerDaemonJSON()))
	m.SetPackages(basePackages())
	m.SetFeature("mysql.ssl", g.pick("mysql", "runtime_ssl", "have_ssl YES\n", "have_ssl DISABLED\n"))
	return m, g.injected
}

// SystemHost generates a host carrying only the system-service targets
// (sshd, sysctl, audit, fstab, modprobe) — the Table-2 workload of "40 CIS
// rules targeting validation of system services in Ubuntu Linux".
func SystemHost(name string, p Profile) (*entity.Mem, []Injection) {
	g := newGenerator(p)
	m := entity.NewMem(name, entity.TypeHost)
	g.populateSystemServices(m)
	m.SetPackages(basePackages())
	return m, g.injected
}

func (g *generator) populateSystemServices(m *entity.Mem) {
	m.AddFile("/etc/ssh/sshd_config", []byte(g.sshdConfig()), entity.WithMode(0o600))
	m.AddFile("/etc/sysctl.conf", []byte(g.sysctlConf()))
	m.AddFile("/etc/audit/audit.rules", []byte(g.auditRules()))
	m.AddFile("/etc/fstab", []byte(g.fstab()))
	m.AddFile("/etc/modprobe.d/cis.conf", []byte(g.modprobeConf()))
	m.AddFile("/etc/passwd", []byte(g.passwd()))
	m.AddFile("/etc/group", []byte(g.group()))
	crontabMode := fs.FileMode(0o600)
	if g.omit("cron", "crontab_perms") {
		crontabMode = 0o644
	}
	m.AddFile("/etc/crontab", []byte(g.crontab()), entity.WithMode(crontabMode))
	m.AddFile("/etc/security/limits.conf", []byte(g.limitsConf()))
	m.AddFile("/etc/resolv.conf", []byte(g.resolvConf()))
	m.AddFile("/etc/hosts", []byte("127.0.0.1 localhost\n"))
}

func (g *generator) passwd() string {
	out := basePasswd()
	if g.omit("passwd", "duplicate_uid0") {
		out += "toor:x:0:100:second root:/home/toor:/bin/bash\n"
	}
	return out
}

func (g *generator) group() string {
	shadowMembers := ""
	if g.omit("group", "shadow_members") {
		shadowMembers = "intern"
	}
	return "root:x:0:\nshadow:x:42:" + shadowMembers + "\nwww-data:x:33:\nmysql:x:110:\n"
}

func (g *generator) crontab() string {
	var b strings.Builder
	b.WriteString("SHELL=/bin/sh\n")
	if !g.omit("cron", "path_env") {
		b.WriteString("PATH=/usr/sbin:/usr/bin:/sbin:/bin\n")
	}
	b.WriteString("17 * * * * root cd / && run-parts --report /etc/cron.hourly\n")
	b.WriteString("25 6 * * * root test -x /usr/sbin/anacron || run-parts /etc/cron.daily\n")
	return b.String()
}

func (g *generator) limitsConf() string {
	core := g.pick("limits", "core_dumps", "0", "unlimited")
	var b strings.Builder
	fmt.Fprintf(&b, "* hard core %s\n", core)
	if !g.omit("limits", "nofile") {
		b.WriteString("* soft nofile 4096\n")
	}
	return b.String()
}

func (g *generator) resolvConf() string {
	if g.omit("resolv", "nameserver") {
		return "search internal.example.com\n"
	}
	return "nameserver 10.0.0.2\nnameserver 10.0.0.3\nsearch internal.example.com\n"
}

func (g *generator) populateApplications(m *entity.Mem) {
	mode := fs.FileMode(0o644)
	if g.omit("nginx", "nginx.conf_perms") {
		mode = 0o666
	}
	m.AddFile("/etc/nginx/nginx.conf", []byte(g.nginxConf()), entity.WithMode(mode))
	m.AddFile("/etc/apache2/apache2.conf", []byte(g.apacheConf()), entity.WithMode(0o644))
	myCnfMode := fs.FileMode(0o644)
	if g.omit("mysql", "my.cnf_perms") {
		myCnfMode = 0o777
	}
	m.AddFile("/etc/mysql/my.cnf", []byte(g.myCnf()), entity.WithMode(myCnfMode))
	m.AddFile("/etc/hadoop/core-site.xml", []byte(g.hadoopCoreSite()))
	m.AddFile("/etc/hadoop/hdfs-site.xml", []byte(g.hadoopHDFSSite()))
	m.AddFile("/etc/hadoop/yarn-site.xml", []byte(g.hadoopYarnSite()))
}

func (g *generator) sshdConfig() string {
	var b strings.Builder
	b.WriteString("# OpenSSH server configuration (generated fixture)\nPort 22\n")
	write := func(knob, good, bad string) {
		fmt.Fprintf(&b, "%s %s\n", knob, g.pick("sshd", knob, good, bad))
	}
	write("PermitRootLogin", "no", "yes")
	write("Protocol", "2", "2,1")
	write("X11Forwarding", "no", "yes")
	write("MaxAuthTries", "4", "8")
	write("IgnoreRhosts", "yes", "no")
	write("HostbasedAuthentication", "no", "yes")
	write("PermitEmptyPasswords", "no", "yes")
	write("PermitUserEnvironment", "no", "yes")
	write("ClientAliveInterval", "300", "900")
	write("ClientAliveCountMax", "3", "10")
	write("LoginGraceTime", "60", "240")
	if !g.omit("sshd", "Banner") {
		b.WriteString("Banner /etc/issue.net\n")
	}
	write("UsePAM", "yes", "no")
	write("AllowTcpForwarding", "no", "yes")
	write("LogLevel", "INFO", "QUIET")
	write("Ciphers", "aes256-ctr,aes192-ctr,aes128-ctr", "aes256-ctr,3des-cbc")
	write("MACs", "hmac-sha2-512,hmac-sha2-256", "hmac-sha2-256,hmac-md5")
	write("KexAlgorithms", "curve25519-sha256", "diffie-hellman-group1-sha1")
	return b.String()
}

func (g *generator) sysctlConf() string {
	var b strings.Builder
	b.WriteString("# Kernel hardening (generated fixture)\n")
	write := func(key, good, bad string) {
		fmt.Fprintf(&b, "%s = %s\n", key, g.pick("sysctl", key, good, bad))
	}
	write("net.ipv4.ip_forward", "0", "1")
	write("net.ipv4.conf.all.send_redirects", "0", "1")
	write("net.ipv4.conf.default.send_redirects", "0", "1")
	write("net.ipv4.conf.all.accept_source_route", "0", "1")
	write("net.ipv4.conf.default.accept_source_route", "0", "1")
	write("net.ipv4.conf.all.accept_redirects", "0", "1")
	write("net.ipv4.conf.default.accept_redirects", "0", "1")
	write("net.ipv4.conf.all.secure_redirects", "0", "1")
	write("net.ipv4.conf.all.log_martians", "1", "0")
	write("net.ipv4.icmp_echo_ignore_broadcasts", "1", "0")
	write("net.ipv4.icmp_ignore_bogus_error_responses", "1", "0")
	write("net.ipv4.conf.all.rp_filter", "1", "0")
	write("net.ipv4.conf.default.rp_filter", "1", "0")
	write("net.ipv4.tcp_syncookies", "1", "0")
	write("net.ipv6.conf.all.accept_ra", "0", "1")
	write("net.ipv6.conf.all.accept_redirects", "0", "1")
	write("kernel.randomize_va_space", "2", "0")
	write("fs.suid_dumpable", "0", "1")
	return b.String()
}

func (g *generator) auditRules() string {
	var b strings.Builder
	b.WriteString("-D\n-b 8192\n")
	watch := func(target, perms, key string) {
		if g.omit("audit", "watch_"+target) {
			return
		}
		fmt.Fprintf(&b, "-w %s -p %s -k %s\n", target, perms, key)
	}
	watch("/etc/passwd", "wa", "identity")
	watch("/etc/group", "wa", "identity")
	watch("/etc/shadow", "wa", "identity")
	watch("/etc/gshadow", "wa", "identity")
	watch("/etc/security/opasswd", "wa", "identity")
	watch("/etc/sudoers", "wa", "scope")
	watch("/etc/sudoers.d", "wa", "scope")
	watch("/var/log/sudo.log", "wa", "actions")
	watch("/var/log/faillog", "wa", "logins")
	watch("/var/log/lastlog", "wa", "logins")
	watch("/var/log/tallylog", "wa", "logins")
	watch("/etc/apparmor/", "wa", "MAC-policy")
	watch("/etc/hosts", "wa", "system-locale")
	watch("/etc/network", "wa", "system-locale")
	watch("/var/run/utmp", "wa", "session")
	watch("/var/log/wtmp", "wa", "session")
	watch("/var/log/btmp", "wa", "session")
	if !g.omit("audit", "syscall_time-change") {
		b.WriteString("-a always,exit -F arch=b64 -S adjtimex -S settimeofday -k time-change\n")
	}
	if !g.omit("audit", "syscall_system-locale") {
		b.WriteString("-a always,exit -F arch=b64 -S sethostname -S setdomainname -k system-locale\n")
	}
	if !g.omit("audit", "syscall_perm_mod") {
		b.WriteString("-a always,exit -F arch=b64 -S chmod -S fchmod -S fchmodat -k perm_mod\n")
	}
	return b.String()
}

func (g *generator) fstab() string {
	var b strings.Builder
	b.WriteString("/dev/sda1 / ext4 errors=remount-ro 0 1\n")
	if !g.omit("fstab", "tmp_partition") {
		opts := "nodev,nosuid,noexec"
		if g.omit("fstab", "tmp_options") {
			opts = "defaults"
		}
		fmt.Fprintf(&b, "/dev/sda2 /tmp ext4 %s 0 2\n", opts)
	}
	if !g.omit("fstab", "var_partition") {
		b.WriteString("/dev/sda3 /var ext4 defaults 0 2\n")
	}
	if !g.omit("fstab", "var_log_partition") {
		b.WriteString("/dev/sda5 /var/log ext4 defaults 0 2\n")
	}
	if !g.omit("fstab", "home_partition") {
		b.WriteString("/dev/sda4 /home ext4 nodev 0 2\n")
	}
	shmOpts := g.pick("fstab", "shm_options", "nodev,nosuid,noexec", "defaults")
	fmt.Fprintf(&b, "tmpfs /dev/shm tmpfs %s 0 0\n", shmOpts)
	return b.String()
}

func (g *generator) modprobeConf() string {
	var b strings.Builder
	for _, mod := range []string{"cramfs", "freevxfs", "jffs2", "hfs", "hfsplus", "squashfs", "udf", "usb-storage"} {
		if g.omit("modprobe", mod) {
			continue
		}
		fmt.Fprintf(&b, "install %s /bin/true\n", mod)
	}
	return b.String()
}

func (g *generator) nginxConf() string {
	user := g.pick("nginx", "user", "www-data", "root")
	tokens := g.pick("nginx", "server_tokens", "off", "on")
	protocols := g.pick("nginx", "ssl_protocols", "TLSv1.2 TLSv1.3", "SSLv3 TLSv1.2")
	ciphers := g.pick("nginx", "ssl_ciphers", "HIGH:!aNULL", "HIGH:RC4:MD5")
	autoindex := g.pick("nginx", "autoindex", "off", "on")
	return fmt.Sprintf(`user %s;
worker_processes auto;
error_log /var/log/nginx/error.log;
http {
    server_tokens %s;
    client_max_body_size 10m;
    keepalive_timeout 65;
    add_header X-Frame-Options SAMEORIGIN;
    server {
        listen 443 ssl;
        server_name example.com;
        autoindex %s;
        ssl_certificate /etc/ssl/cert.pem;
        ssl_certificate_key /etc/ssl/key.pem;
        ssl_protocols %s;
        ssl_ciphers %s;
        ssl_prefer_server_ciphers on;
    }
}
`, user, tokens, autoindex, protocols, ciphers)
}

func (g *generator) apacheConf() string {
	tokens := g.pick("apache", "ServerTokens", "Prod", "Full")
	sig := g.pick("apache", "ServerSignature", "Off", "On")
	trace := g.pick("apache", "TraceEnable", "Off", "On")
	options := g.pick("apache", "Options", "FollowSymLinks", "Indexes FollowSymLinks")
	override := g.pick("apache", "AllowOverride", "None", "All")
	sslProto := g.pick("apache", "SSLProtocol", "all -SSLv2 -SSLv3", "all")
	return fmt.Sprintf(`ServerTokens %s
ServerSignature %s
TraceEnable %s
Timeout 300
KeepAliveTimeout 5
FileETag None
LimitRequestBody 102400
SSLProtocol %s
<Directory /var/www/html>
    Options %s
    AllowOverride %s
    Require all granted
</Directory>
`, tokens, sig, trace, sslProto, options, override)
}

func (g *generator) myCnf() string {
	bind := g.pick("mysql", "bind-address", "127.0.0.1", "0.0.0.0")
	infile := g.pick("mysql", "local-infile", "0", "1")
	var b strings.Builder
	b.WriteString("[client]\nport = 3306\n\n[mysqld]\nuser = mysql\n")
	fmt.Fprintf(&b, "bind-address = %s\nlocal-infile = %s\nsymbolic-links = 0\n", bind, infile)
	if !g.omit("mysql", "ssl-ca") {
		b.WriteString("ssl-ca = /etc/mysql/cacert.pem\nssl-cert = /etc/mysql/server-cert.pem\n")
	}
	if !g.omit("mysql", "secure-file-priv") {
		b.WriteString("secure-file-priv = /var/lib/mysql-files\n")
	}
	b.WriteString("skip-show-database\n")
	if g.omit("mysql", "old_passwords") {
		b.WriteString("old_passwords = 1\n")
	}
	return b.String()
}

func hadoopProperty(name, value string) string {
	return fmt.Sprintf("  <property>\n    <name>%s</name>\n    <value>%s</value>\n  </property>\n", name, value)
}

func (g *generator) hadoopCoreSite() string {
	auth := g.pick("hadoop", "hadoop.security.authentication", "kerberos", "simple")
	authz := g.pick("hadoop", "hadoop.security.authorization", "true", "false")
	rpc := g.pick("hadoop", "hadoop.rpc.protection", "privacy", "authentication")
	return "<?xml version=\"1.0\"?>\n<configuration>\n" +
		hadoopProperty("hadoop.security.authentication", auth) +
		hadoopProperty("hadoop.security.authorization", authz) +
		hadoopProperty("hadoop.rpc.protection", rpc) +
		"</configuration>\n"
}

func (g *generator) hadoopHDFSSite() string {
	perms := g.pick("hadoop", "dfs.permissions.enabled", "true", "false")
	encrypt := g.pick("hadoop", "dfs.encrypt.data.transfer", "true", "false")
	policy := g.pick("hadoop", "dfs.http.policy", "HTTPS_ONLY", "HTTP_ONLY")
	acls := g.pick("hadoop", "dfs.namenode.acls.enabled", "true", "false")
	dirPerm := g.pick("hadoop", "dfs.datanode.data.dir.perm", "700", "755")
	return "<?xml version=\"1.0\"?>\n<configuration>\n" +
		hadoopProperty("dfs.permissions.enabled", perms) +
		hadoopProperty("dfs.encrypt.data.transfer", encrypt) +
		hadoopProperty("dfs.http.policy", policy) +
		hadoopProperty("dfs.namenode.acls.enabled", acls) +
		hadoopProperty("dfs.datanode.data.dir.perm", dirPerm) +
		"</configuration>\n"
}

func (g *generator) hadoopYarnSite() string {
	acl := g.pick("hadoop", "yarn.acl.enable", "true", "false")
	return "<?xml version=\"1.0\"?>\n<configuration>\n" +
		hadoopProperty("yarn.acl.enable", acl) +
		"</configuration>\n"
}

func (g *generator) dockerDaemonJSON() string {
	icc := g.pick("docker", "icc", "false", "true")
	proxy := g.pick("docker", "userland-proxy", "false", "true")
	live := g.pick("docker", "live-restore", "true", "false")
	tls := g.pick("docker", "tlsverify", "true", "false")
	var extras []string
	if !g.omit("docker", "log-driver") {
		extras = append(extras, `"log-driver": "syslog"`)
	}
	if !g.omit("docker", "userns-remap") {
		extras = append(extras, `"userns-remap": "default"`)
	}
	extra := ""
	if len(extras) > 0 {
		extra = ",\n  " + strings.Join(extras, ",\n  ")
	}
	return fmt.Sprintf(`{
  "icc": %s,
  "userland-proxy": %s,
  "live-restore": %s,
  "tlsverify": %s%s
}
`, icc, proxy, live, tls, extra)
}

// Image generates one application Docker image with injected
// misconfigurations, built on the simulator's Ubuntu base.
func Image(repository, tag string, p Profile) (*dockersim.Image, []Injection) {
	g := newGenerator(p)
	base := dockersim.BaseUbuntu(fixedTime())
	b := dockersim.NewBuilder(repository, tag).From(base)
	b.AddFile("/etc/ssh/sshd_config", []byte(g.sshdConfig()), 0o600)
	b.AddFile("/etc/sysctl.conf", []byte(g.sysctlConf()), 0o644)
	b.AddFile("/etc/nginx/nginx.conf", []byte(g.nginxConf()), 0o644)
	b.AddFile("/etc/mysql/my.cnf", []byte(g.myCnf()), 0o644)
	b.InstallPackages(
		pkgdb.Package{Name: "nginx", Version: "1.10.3-0ubuntu0.16.04.5", Architecture: "amd64", Status: "install ok installed"},
		pkgdb.Package{Name: "mysql-server", Version: "5.7.21-0ubuntu0.16.04.1", Architecture: "amd64", Status: "install ok installed"},
	)
	if g.omit("docker", "image_user") {
		b.User("") // root default
	} else {
		b.User("app")
	}
	if !g.omit("docker", "image_healthcheck") {
		b.Healthcheck("curl -f http://localhost/ || exit 1")
	}
	if g.omit("docker", "image_ssh_port") {
		b.Expose("22/tcp")
	}
	b.Expose("443/tcp")
	if g.omit("docker", "image_env_secret") {
		b.Env("DB_PASSWORD=hunter2")
	}
	b.Env("MODE=production")
	b.Cmd("/usr/sbin/nginx", "-g", "daemon off;")
	return b.Build(), g.injected
}

// Fleet generates n images pushed into a fresh registry, with per-image
// seeds derived from the profile seed.
func Fleet(n int, p Profile) (*dockersim.Registry, int) {
	reg := dockersim.NewRegistry()
	injected := 0
	for i := 0; i < n; i++ {
		img, inj := Image(fmt.Sprintf("app-%03d", i), "v1", Profile{
			Seed:          p.Seed + int64(i)*7919,
			MisconfigRate: p.MisconfigRate,
		})
		reg.Push(img)
		injected += len(inj)
	}
	return reg, injected
}

// Cloud generates a cloudsim control plane with injected OSSG violations.
func Cloud(name string, p Profile) (*cloudsim.Cloud, []Injection) {
	g := newGenerator(p)
	c := cloudsim.New(name)
	identity := cloudsim.IdentityConfig{
		TLSEnabled:             true,
		TokenExpirationSeconds: 3600,
		PasswordMinLength:      12,
	}
	if g.omit("openstack", "tls_enabled") {
		identity.TLSEnabled = false
	}
	if g.omit("openstack", "admin_token_enabled") {
		identity.AdminTokenEnabled = true
	}
	if g.omit("openstack", "token_expiration") {
		identity.TokenExpirationSeconds = 86400
	}
	if g.omit("openstack", "password_min_length") {
		identity.PasswordMinLength = 6
	}
	c.SetIdentityConfig(identity)

	webPrefix := g.pick("openstack", "sg_world_open", "10.0.0.0/8", "0.0.0.0/0")
	c.AddSecurityGroup(cloudsim.SecurityGroup{
		ID: "sg-web", Name: "web", Project: "demo",
		Rules: []cloudsim.SecurityGroupRule{
			{Direction: "ingress", Protocol: "tcp", PortMin: 443, PortMax: 443, RemoteIPPrefix: webPrefix},
		},
	})
	protocol := g.pick("openstack", "sg_any_protocol", "tcp", "any")
	c.AddSecurityGroup(cloudsim.SecurityGroup{
		ID: "sg-admin", Name: "admin", Project: "demo",
		Rules: []cloudsim.SecurityGroupRule{
			{Direction: "ingress", Protocol: protocol, PortMin: 22, PortMax: 22, RemoteIPPrefix: "10.1.0.0/16"},
		},
	})
	mfa := !g.omit("openstack", "user_mfa")
	c.AddUser(cloudsim.User{ID: "u-admin", Name: "admin", Enabled: true, MFAEnabled: mfa})
	c.AddUser(cloudsim.User{ID: "u-ops", Name: "ops", Enabled: true, MFAEnabled: true})
	c.AddInstance(cloudsim.Instance{ID: "i-1", Name: "web-1", Project: "demo", Status: "ACTIVE", SecurityGroups: []string{"sg-web"}})
	return c, g.injected
}

func basePasswd() string {
	return "root:x:0:0:root:/root:/bin/bash\n" +
		"daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n" +
		"www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin\n" +
		"mysql:x:106:110:MySQL Server:/nonexistent:/bin/false\n"
}

func baseGroup() string {
	return "root:x:0:\nshadow:x:42:\nwww-data:x:33:\nmysql:x:110:\n"
}

func basePackages() []pkgdb.Package {
	return []pkgdb.Package{
		{Name: "openssh-server", Version: "1:7.2p2-4ubuntu2.8", Architecture: "amd64", Status: "install ok installed"},
		{Name: "nginx", Version: "1.10.3-0ubuntu0.16.04.5", Architecture: "amd64", Status: "install ok installed"},
		{Name: "apache2", Version: "2.4.18-2ubuntu3.9", Architecture: "amd64", Status: "install ok installed"},
		{Name: "mysql-server", Version: "5.7.21-0ubuntu0.16.04.1", Architecture: "amd64", Status: "install ok installed"},
		{Name: "auditd", Version: "1:2.4.5-1ubuntu2", Architecture: "amd64", Status: "install ok installed"},
	}
}

// fixedTime stamps generated image layers for deterministic image IDs.
func fixedTime() time.Time {
	return time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
}
