package fixtures

import (
	"strings"
	"testing"

	"configvalidator/internal/crawler"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
	"configvalidator/internal/rules"
)

func TestCleanHostPassesAllRules(t *testing.T) {
	// At misconfiguration rate 0 a generated host must pass every
	// built-in rule (no FAILs, no ERRORs).
	host, injected := UbuntuHost("clean-host", Profile{Seed: 1})
	if len(injected) != 0 {
		t.Fatalf("rate 0 injected %d misconfigurations", len(injected))
	}
	manifest, err := rules.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := engine.New(nil).Validate(host, manifest, rules.Reader())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if r.Status == engine.StatusFail || r.Status == engine.StatusError {
			t.Errorf("[%s] %s/%s: %s (%s) file=%s", r.Status, r.ManifestEntity, ruleName(r), r.Message, r.Detail, r.File)
		}
	}
}

func ruleName(r *engine.Result) string {
	if r.Rule == nil {
		return "(parse)"
	}
	return r.Rule.Name
}

func TestExtendedManifestOnGeneratedHosts(t *testing.T) {
	manifest, err := rules.ExtendedManifest()
	if err != nil {
		t.Fatal(err)
	}
	reader := rules.ExtendedReader()
	eng := engine.New(nil)

	clean, _ := UbuntuHost("clean", Profile{Seed: 61})
	rep, err := eng.Validate(clean, manifest, reader)
	if err != nil {
		t.Fatal(err)
	}
	extendedSeen := 0
	for _, r := range rep.Results {
		if r.Rule != nil && r.Rule.HasTag("#extended") {
			extendedSeen++
		}
		if r.Status == engine.StatusFail || r.Status == engine.StatusError {
			t.Errorf("clean host: [%v] %s/%s: %s (%s)", r.Status, r.ManifestEntity, ruleName(r), r.Message, r.Detail)
		}
	}
	if extendedSeen != 12 {
		t.Errorf("extended rules evaluated = %d, want 12", extendedSeen)
	}

	dirty, _ := UbuntuHost("dirty", Profile{Seed: 62, MisconfigRate: 1})
	rep, err = eng.Validate(dirty, manifest, reader)
	if err != nil {
		t.Fatal(err)
	}
	extendedFails := 0
	for _, r := range rep.Results {
		if r.Status == engine.StatusFail && r.Rule != nil && r.Rule.HasTag("#extended") {
			extendedFails++
		}
	}
	if extendedFails < 6 {
		t.Errorf("extended failures on dirty host = %d", extendedFails)
	}
}

func TestDirtyHostFails(t *testing.T) {
	host, injected := UbuntuHost("dirty-host", Profile{Seed: 2, MisconfigRate: 1.0})
	if len(injected) == 0 {
		t.Fatal("rate 1.0 injected nothing")
	}
	manifest, err := rules.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := engine.New(nil).Validate(host, manifest, rules.Reader())
	if err != nil {
		t.Fatal(err)
	}
	counts := rep.Counts()
	if counts[engine.StatusFail] < 50 {
		t.Errorf("fully misconfigured host failed only %d checks", counts[engine.StatusFail])
	}
	if counts[engine.StatusError] != 0 {
		t.Errorf("errors on generated host: %d", counts[engine.StatusError])
	}
}

func TestDeterminism(t *testing.T) {
	a, injA := UbuntuHost("h", Profile{Seed: 42, MisconfigRate: 0.3})
	b, injB := UbuntuHost("h", Profile{Seed: 42, MisconfigRate: 0.3})
	if len(injA) != len(injB) {
		t.Fatalf("same seed, different injections: %d vs %d", len(injA), len(injB))
	}
	for _, path := range a.Files() {
		da, _ := a.ReadFile(path)
		db, err := b.ReadFile(path)
		if err != nil || string(da) != string(db) {
			t.Errorf("file %s differs between same-seed runs", path)
		}
	}
	c, _ := UbuntuHost("h", Profile{Seed: 43, MisconfigRate: 0.3})
	same := true
	for _, path := range a.Files() {
		da, _ := a.ReadFile(path)
		dc, err := c.ReadFile(path)
		if err != nil || string(da) != string(dc) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical hosts")
	}
}

func TestInjectionRateMonotonic(t *testing.T) {
	count := func(rate float64) int {
		_, inj := UbuntuHost("h", Profile{Seed: 7, MisconfigRate: rate})
		return len(inj)
	}
	low, mid, high := count(0.1), count(0.5), count(1.0)
	if !(low < mid && mid < high) {
		t.Errorf("injection counts not increasing: %d, %d, %d", low, mid, high)
	}
}

func TestSystemHostScopes(t *testing.T) {
	host, _ := SystemHost("sys", Profile{Seed: 3})
	if _, err := host.ReadFile("/etc/ssh/sshd_config"); err != nil {
		t.Error("sshd_config missing")
	}
	if _, err := host.ReadFile("/etc/nginx/nginx.conf"); err == nil {
		t.Error("system host should not carry nginx config")
	}
}

func TestCleanSystemHostPassesSystemRules(t *testing.T) {
	host, _ := SystemHost("sys", Profile{Seed: 4})
	eng := engine.New(crawler.New(nil, crawler.Options{}))
	for _, target := range []string{"sshd", "sysctl", "audit", "fstab", "modprobe"} {
		rs, err := rules.Load(target)
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for _, tgt := range rules.Targets() {
			if tgt.Name == target {
				paths = tgt.SearchPaths
			}
		}
		rep, err := eng.ValidateRules(host, rs, paths)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Results {
			if r.Status == engine.StatusFail || r.Status == engine.StatusError {
				t.Errorf("%s: [%s] %s: %s (%s)", target, r.Status, ruleName(r), r.Message, r.Detail)
			}
		}
	}
}

func TestImageGeneration(t *testing.T) {
	img, injected := Image("web", "v1", Profile{Seed: 5})
	if len(injected) != 0 {
		t.Errorf("clean image injected %v", injected)
	}
	ent := img.Entity()
	if ent.Type() != entity.TypeImage {
		t.Errorf("type = %v", ent.Type())
	}
	// Base files and app layers present.
	for _, path := range []string{"/etc/passwd", "/etc/nginx/nginx.conf", "/etc/mysql/my.cnf"} {
		if _, err := ent.ReadFile(path); err != nil {
			t.Errorf("%s: %v", path, err)
		}
	}
	out, err := ent.RunFeature("docker.image_config")
	if err != nil || !strings.Contains(out, "User app") {
		t.Errorf("image_config = %q, %v", out, err)
	}

	dirty, injected := Image("web", "v2", Profile{Seed: 6, MisconfigRate: 1.0})
	if len(injected) == 0 {
		t.Fatal("dirty image injected nothing")
	}
	out, _ = dirty.Entity().RunFeature("docker.image_config")
	for _, want := range []string{"User root", "Healthcheck none", "ExposedPort 22/tcp", "DB_PASSWORD"} {
		if !strings.Contains(out, want) {
			t.Errorf("dirty image_config missing %q:\n%s", want, out)
		}
	}
}

func TestFleet(t *testing.T) {
	reg, injected := Fleet(10, Profile{Seed: 9, MisconfigRate: 0.4})
	if got := len(reg.Images()); got != 10 {
		t.Errorf("fleet size = %d", got)
	}
	if injected == 0 {
		t.Error("fleet with rate 0.4 injected nothing")
	}
	// Per-image seeds differ: images should not all share an ID.
	ids := make(map[string]bool)
	for _, ref := range reg.Images() {
		img, err := reg.Pull(ref)
		if err != nil {
			t.Fatal(err)
		}
		ids[img.ID()] = true
	}
	if len(ids) < 2 {
		t.Error("all fleet images identical")
	}
}

func TestCloudGeneration(t *testing.T) {
	clean, injected := Cloud("clean", Profile{Seed: 11})
	if len(injected) != 0 {
		t.Errorf("clean cloud injected %v", injected)
	}
	id := clean.IdentityConfig()
	if !id.TLSEnabled || id.AdminTokenEnabled || id.PasswordMinLength < 12 {
		t.Errorf("clean identity = %+v", id)
	}
	dirty, injected := Cloud("dirty", Profile{Seed: 12, MisconfigRate: 1.0})
	if len(injected) == 0 {
		t.Fatal("dirty cloud injected nothing")
	}
	id = dirty.IdentityConfig()
	if id.TLSEnabled || !id.AdminTokenEnabled {
		t.Errorf("dirty identity = %+v", id)
	}
	open := false
	for _, sg := range dirty.SecurityGroups() {
		for _, r := range sg.Rules {
			if r.RemoteIPPrefix == "0.0.0.0/0" {
				open = true
			}
		}
	}
	if !open {
		t.Error("dirty cloud has no world-open rule")
	}
}
