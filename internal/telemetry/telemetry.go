// Package telemetry provides process-local runtime metrics for the
// validation pipeline: scan and result counters, a fixed-bucket scan
// latency histogram, error/retry/panic/timeout counters, and per-route
// HTTP request instrumentation. One Collector is shared by single scans,
// fleet scans, and the HTTP service, so an operator sees the whole
// deployment in a single snapshot — the observability layer the paper's
// production deployment (tens of thousands of scans daily inside IBM
// Vulnerability Advisor) implies but the reproduction lacked.
//
// All counters are atomic; a Collector is safe for concurrent use by any
// number of fleet workers and HTTP handlers. Snapshots are consistent
// enough for operations (each counter is read atomically; the set of
// counters is not read under one lock).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"configvalidator/internal/engine"
)

// LatencyBuckets are the histogram upper bounds in seconds, chosen to
// bracket observed scan times: sub-millisecond in-memory scans up through
// multi-second scans of large entities.
var LatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// numBuckets fixes the bucket-array size at compile time; it must equal
// len(LatencyBuckets) (asserted in the package test).
const numBuckets = 14

// histogram is a fixed-bucket latency histogram with atomic counters. The
// final bucket is the implicit +Inf overflow.
type histogram struct {
	buckets  [numBuckets + 1]atomic.Int64
	count    atomic.Int64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	idx := len(LatencyBuckets) // +Inf
	for i, ub := range LatencyBuckets {
		if secs <= ub {
			idx = i
			break
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

func (h *histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{
		Bounds: LatencyBuckets,
		Counts: make([]int64, len(LatencyBuckets)+1),
		Count:  h.count.Load(),
		Sum:    time.Duration(h.sumNanos.Load()),
	}
	for i := range out.Counts {
		out.Counts[i] = h.buckets[i].Load()
	}
	return out
}

// HistogramSnapshot is a point-in-time copy of a latency histogram.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds in seconds; Counts has one extra
	// trailing element for the +Inf overflow bucket.
	Bounds []float64
	Counts []int64
	// Count and Sum are the total observations and their summed duration.
	Count int64
	Sum   time.Duration
}

// Mean returns the average observed duration, or 0 with no observations.
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / time.Duration(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets,
// attributing each observation to its bucket's upper bound. Good enough
// for progress lines, not for billing.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 || q <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= rank {
			if i < len(h.Bounds) {
				return time.Duration(h.Bounds[i] * float64(time.Second))
			}
			// Overflow bucket: the best upper estimate is the mean of
			// what is left, but the last bound is the honest floor.
			return time.Duration(h.Bounds[len(h.Bounds)-1] * float64(time.Second))
		}
	}
	return h.Mean()
}

// Collector accumulates metrics. The zero value is not usable; construct
// with NewCollector.
type Collector struct {
	scans    atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64
	panics   atomic.Int64
	timeouts atomic.Int64

	// Gauges and counters for the overload-protection layer: scans
	// currently executing, HTTP requests waiting for an admission slot,
	// requests shed at admission, and circuit-breaker state transitions.
	inflight     atomic.Int64
	queueDepth   atomic.Int64
	shed         atomic.Int64
	breakerOpens atomic.Int64
	breakerOpen  atomic.Int64 // 0 closed/half-open, 1 open

	// Parse-cache counters: lookups served from the content-addressed
	// cache, lookups that had to parse, and entries dropped at capacity.
	parseCacheHits      atomic.Int64
	parseCacheMisses    atomic.Int64
	parseCacheEvictions atomic.Int64

	// Journal counters: records appended to the durable result journal,
	// records replayed at recovery, corrupt records dropped at recovery,
	// and entities skipped because a journaled result matched their config
	// digest. ScanAbandoned counts computed fleet results dropped because
	// the run's context was cancelled before they could be delivered.
	journalAppends  atomic.Int64
	journalReplayed atomic.Int64
	journalCorrupt  atomic.Int64
	journalSkipped  atomic.Int64
	scanAbandoned   atomic.Int64

	// Disk-pressure counters: journal appends that failed (ENOSPC, EIO),
	// the degraded-journal gauge (1 while appends are failing fast
	// between re-probes), write re-probes attempted while degraded, and
	// coordinator merge stalls (the FleetResult consumer fell behind long
	// enough to pause shard stream reads).
	journalAppendErrors atomic.Int64
	journalDegraded     atomic.Int64 // gauge: 0 healthy, 1 degraded
	journalReprobes     atomic.Int64
	mergeStalls         atomic.Int64

	// Distributed-fleet counters: shards handed to workers under a lease,
	// shards whose every entity completed, leases revoked and reassigned
	// after a missed heartbeat or worker failure, heartbeats the
	// coordinator waited out, duplicate remote results dropped
	// last-writer-wins, worker RPC dispatch retries, and the number of
	// leases live right now (gauge).
	shardsDispatched   atomic.Int64
	shardsCompleted    atomic.Int64
	leaseReassignments atomic.Int64
	heartbeatsMissed   atomic.Int64
	duplicateResults   atomic.Int64
	workerRPCRetries   atomic.Int64
	activeLeases       atomic.Int64

	// Result counters by engine status. StatusPass..StatusDegraded are
	// 1-based and contiguous; index 0 is unused.
	statuses [6]atomic.Int64

	scanLatency histogram

	httpMu      sync.Mutex
	httpCounts  map[routeCode]int64
	httpLatency histogram
}

type routeCode struct {
	route string
	code  int
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{httpCounts: make(map[routeCode]int64)}
}

// ScanDone records one completed validation: its latency and the per-rule
// result counts from the report.
func (c *Collector) ScanDone(d time.Duration, counts map[engine.Status]int) {
	if c == nil {
		return
	}
	c.scans.Add(1)
	c.scanLatency.observe(d)
	for status, n := range counts {
		if status >= 1 && int(status) < len(c.statuses) {
			c.statuses[status].Add(int64(n))
		}
	}
}

// ScanFailed records a validation attempt that ended in an error.
func (c *Collector) ScanFailed(d time.Duration) {
	if c == nil {
		return
	}
	c.scans.Add(1)
	c.errors.Add(1)
	c.scanLatency.observe(d)
}

// ScanPanicked records a validation attempt that panicked (and was
// recovered by the fleet layer).
func (c *Collector) ScanPanicked(d time.Duration) {
	if c == nil {
		return
	}
	c.panics.Add(1)
	c.ScanFailed(d)
}

// ScanTimedOut records a validation attempt abandoned at its deadline.
func (c *Collector) ScanTimedOut(d time.Duration) {
	if c == nil {
		return
	}
	c.timeouts.Add(1)
	c.ScanFailed(d)
}

// RetryScheduled records one retry of a transient scan failure.
func (c *Collector) RetryScheduled() {
	if c == nil {
		return
	}
	c.retries.Add(1)
}

// ScanStarted marks one validation as executing; pair with ScanEnded. The
// difference is the in-flight-scans gauge.
func (c *Collector) ScanStarted() {
	if c == nil {
		return
	}
	c.inflight.Add(1)
}

// ScanEnded marks one validation as no longer executing.
func (c *Collector) ScanEnded() {
	if c == nil {
		return
	}
	c.inflight.Add(-1)
}

// QueueEnter marks one HTTP request as waiting for an admission slot;
// pair with QueueExit.
func (c *Collector) QueueEnter() {
	if c == nil {
		return
	}
	c.queueDepth.Add(1)
}

// QueueExit marks one queued HTTP request as admitted or abandoned.
func (c *Collector) QueueExit() {
	if c == nil {
		return
	}
	c.queueDepth.Add(-1)
}

// RequestShed records one HTTP request rejected at admission (429).
func (c *Collector) RequestShed() {
	if c == nil {
		return
	}
	c.shed.Add(1)
}

// BreakerOpened records a circuit-breaker trip and sets the open gauge.
func (c *Collector) BreakerOpened() {
	if c == nil {
		return
	}
	c.breakerOpens.Add(1)
	c.breakerOpen.Store(1)
}

// BreakerClosed clears the circuit-breaker open gauge.
func (c *Collector) BreakerClosed() {
	if c == nil {
		return
	}
	c.breakerOpen.Store(0)
}

// ParseCacheHit records one parse-cache lookup served from cache. The
// three ParseCache* methods implement crawler.CacheMetrics, so a Collector
// can be attached directly to a crawler.ParseCache.
func (c *Collector) ParseCacheHit() {
	if c == nil {
		return
	}
	c.parseCacheHits.Add(1)
}

// ParseCacheMiss records one parse-cache lookup that had to parse.
func (c *Collector) ParseCacheMiss() {
	if c == nil {
		return
	}
	c.parseCacheMisses.Add(1)
}

// ParseCacheEviction records one parse-cache entry dropped at capacity.
func (c *Collector) ParseCacheEviction() {
	if c == nil {
		return
	}
	c.parseCacheEvictions.Add(1)
}

// JournalAppended records one record durably appended to the result
// journal. The Journal* methods implement journal.Metrics, so a
// Collector can be attached directly to a journal.
func (c *Collector) JournalAppended() {
	if c == nil {
		return
	}
	c.journalAppends.Add(1)
}

// JournalReplayed records one valid journal record recovered at open.
func (c *Collector) JournalReplayed() {
	if c == nil {
		return
	}
	c.journalReplayed.Add(1)
}

// JournalCorruptRecord records one torn or corrupt journal record dropped
// during recovery.
func (c *Collector) JournalCorruptRecord() {
	if c == nil {
		return
	}
	c.journalCorrupt.Add(1)
}

// JournalAppendError records one failed journal append — the scan
// continued, the result was not persisted (disk full, I/O fault).
func (c *Collector) JournalAppendError() {
	if c == nil {
		return
	}
	c.journalAppendErrors.Add(1)
}

// JournalDegraded flips the degraded-journal gauge: true while appends
// are failing fast between re-probes, false once journaling resumes.
func (c *Collector) JournalDegraded(degraded bool) {
	if c == nil {
		return
	}
	if degraded {
		c.journalDegraded.Store(1)
	} else {
		c.journalDegraded.Store(0)
	}
}

// JournalReprobe records one degraded-mode write re-probe attempt.
func (c *Collector) JournalReprobe() {
	if c == nil {
		return
	}
	c.journalReprobes.Add(1)
}

// MergeStalled records one coordinator merge stall: the FleetResult
// consumer fell behind long enough that shard stream reads paused.
func (c *Collector) MergeStalled() {
	if c == nil {
		return
	}
	c.mergeStalls.Add(1)
}

// JournalEntitySkipped records one fleet entity skipped because its
// journaled result's config digest still matched — the resume fast path.
func (c *Collector) JournalEntitySkipped() {
	if c == nil {
		return
	}
	c.journalSkipped.Add(1)
}

// ScanAbandoned records one computed fleet result dropped because the
// run's context was cancelled before the result could be delivered —
// operators reconcile submitted vs. journaled entity counts with it.
func (c *Collector) ScanAbandoned() {
	if c == nil {
		return
	}
	c.scanAbandoned.Add(1)
}

// ShardDispatched records one shard handed to a worker under a lease;
// pair with either ShardCompleted or LeaseReassigned. It also raises the
// active-leases gauge.
func (c *Collector) ShardDispatched() {
	if c == nil {
		return
	}
	c.shardsDispatched.Add(1)
	c.activeLeases.Add(1)
}

// ShardCompleted records one shard whose every entity produced a result;
// lowers the active-leases gauge.
func (c *Collector) ShardCompleted() {
	if c == nil {
		return
	}
	c.shardsCompleted.Add(1)
	c.activeLeases.Add(-1)
}

// LeaseReassigned records one lease revoked (missed heartbeats, worker
// death, drain) whose remaining entities were handed to another worker;
// lowers the active-leases gauge.
func (c *Collector) LeaseReassigned() {
	if c == nil {
		return
	}
	c.leaseReassignments.Add(1)
	c.activeLeases.Add(-1)
}

// HeartbeatMissed records one lease whose worker went silent past the
// lease TTL — the trigger for revocation.
func (c *Collector) HeartbeatMissed() {
	if c == nil {
		return
	}
	c.heartbeatsMissed.Add(1)
}

// DuplicateResultDropped records one remote result discarded because the
// entity already produced one (a revoked worker's stream racing its
// replacement) — the stream-level twin of the journal's last-writer-wins
// compaction.
func (c *Collector) DuplicateResultDropped() {
	if c == nil {
		return
	}
	c.duplicateResults.Add(1)
}

// WorkerRPCRetry records one shard dispatch retried against a worker
// (connection refusal, 429 backpressure, 503 breaker).
func (c *Collector) WorkerRPCRetry() {
	if c == nil {
		return
	}
	c.workerRPCRetries.Add(1)
}

// RequestDone records one HTTP request against a route pattern.
func (c *Collector) RequestDone(route string, code int, d time.Duration) {
	if c == nil {
		return
	}
	c.httpMu.Lock()
	c.httpCounts[routeCode{route: route, code: code}]++
	c.httpMu.Unlock()
	c.httpLatency.observe(d)
}

// Snapshot is a point-in-time copy of every counter.
type Snapshot struct {
	// Scans counts validation attempts with a terminal outcome (success,
	// error, panic, or timeout). Errors counts the non-success subset;
	// Panics and Timeouts break Errors down further. Retries counts
	// re-attempts of transient failures (each retried attempt is also
	// counted in Scans when it completes).
	Scans, Errors, Retries, Panics, Timeouts int64
	// InFlightScans and QueueDepth are gauges: validations executing right
	// now and HTTP requests waiting for an admission slot. Shed counts
	// requests rejected at admission; BreakerOpens counts circuit-breaker
	// trips and BreakerOpen reports whether it is open right now.
	InFlightScans, QueueDepth, Shed, BreakerOpens int64
	BreakerOpen                                   bool
	// ParseCacheHits/Misses/Evictions describe the content-addressed
	// parse cache: hits are files whose normalized form was reused,
	// misses had to parse, evictions were dropped at capacity.
	ParseCacheHits, ParseCacheMisses, ParseCacheEvictions int64
	// JournalAppends/Replayed/CorruptRecords/SkippedEntities describe the
	// durable result journal: records appended, records replayed at
	// recovery, corrupt records dropped at recovery, and entities skipped
	// on resume because their journaled digest still matched.
	// ScansAbandoned counts computed fleet results dropped at context
	// cancellation before delivery.
	JournalAppends, JournalReplayed, JournalCorruptRecords, JournalSkippedEntities int64
	ScansAbandoned                                                                 int64
	// Disk-pressure counters: appends that failed (the scan continued,
	// the result was not persisted), the degraded-journal gauge, write
	// re-probes while degraded, and coordinator merge stalls (consumer
	// backpressure paused shard stream reads).
	JournalAppendErrors, JournalReprobes, MergeStalls int64
	JournalDegraded                                   bool
	// Distributed-fleet counters: shards dispatched under a lease, shards
	// fully completed, leases revoked and reassigned, heartbeats missed,
	// duplicate remote results dropped, worker RPC dispatch retries, and
	// the active-leases gauge.
	ShardsDispatched, ShardsCompleted, LeaseReassignments, HeartbeatsMissed int64
	DuplicateResults, WorkerRPCRetries, ActiveLeases                        int64
	// ResultsByStatus tallies individual rule results across all scans.
	ResultsByStatus map[engine.Status]int64
	// ScanLatency is the scan-duration histogram.
	ScanLatency HistogramSnapshot
	// HTTPRequests counts requests keyed "ROUTE CODE"
	// (e.g. "POST /v1/validate/frame 200").
	HTTPRequests map[string]int64
	// HTTPLatency is the request-duration histogram.
	HTTPLatency HistogramSnapshot
}

// Snapshot copies the current counter values.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Scans:                  c.scans.Load(),
		Errors:                 c.errors.Load(),
		Retries:                c.retries.Load(),
		Panics:                 c.panics.Load(),
		Timeouts:               c.timeouts.Load(),
		InFlightScans:          c.inflight.Load(),
		QueueDepth:             c.queueDepth.Load(),
		Shed:                   c.shed.Load(),
		BreakerOpens:           c.breakerOpens.Load(),
		BreakerOpen:            c.breakerOpen.Load() != 0,
		ParseCacheHits:         c.parseCacheHits.Load(),
		ParseCacheMisses:       c.parseCacheMisses.Load(),
		ParseCacheEvictions:    c.parseCacheEvictions.Load(),
		JournalAppends:         c.journalAppends.Load(),
		JournalReplayed:        c.journalReplayed.Load(),
		JournalCorruptRecords:  c.journalCorrupt.Load(),
		JournalSkippedEntities: c.journalSkipped.Load(),
		JournalAppendErrors:    c.journalAppendErrors.Load(),
		JournalDegraded:        c.journalDegraded.Load() != 0,
		JournalReprobes:        c.journalReprobes.Load(),
		MergeStalls:            c.mergeStalls.Load(),
		ScansAbandoned:         c.scanAbandoned.Load(),
		ShardsDispatched:       c.shardsDispatched.Load(),
		ShardsCompleted:        c.shardsCompleted.Load(),
		LeaseReassignments:     c.leaseReassignments.Load(),
		HeartbeatsMissed:       c.heartbeatsMissed.Load(),
		DuplicateResults:       c.duplicateResults.Load(),
		WorkerRPCRetries:       c.workerRPCRetries.Load(),
		ActiveLeases:           c.activeLeases.Load(),
		ResultsByStatus:        make(map[engine.Status]int64, 5),
		ScanLatency:            c.scanLatency.snapshot(),
		HTTPRequests:           make(map[string]int64),
		HTTPLatency:            c.httpLatency.snapshot(),
	}
	for _, status := range []engine.Status{engine.StatusPass, engine.StatusFail, engine.StatusNotApplicable, engine.StatusError, engine.StatusDegraded} {
		if n := c.statuses[status].Load(); n != 0 {
			s.ResultsByStatus[status] = n
		}
	}
	c.httpMu.Lock()
	for k, n := range c.httpCounts {
		s.HTTPRequests[fmt.Sprintf("%s %d", k.route, k.code)] = n
	}
	c.httpMu.Unlock()
	return s
}

// String renders a one-line operator summary, the shape cvwatch prints as
// its periodic progress line.
func (s Snapshot) String() string {
	return fmt.Sprintf("scans=%d errors=%d retries=%d panics=%d timeouts=%d mean=%s p95=%s",
		s.Scans, s.Errors, s.Retries, s.Panics, s.Timeouts,
		s.ScanLatency.Mean().Round(time.Microsecond),
		s.ScanLatency.Quantile(0.95).Round(time.Microsecond))
}

// WritePrometheus renders the collector in the Prometheus text exposition
// format (version 0.0.4) — counters, status-labelled result counts, and
// cumulative histogram buckets.
func (c *Collector) WritePrometheus(w io.Writer) error {
	s := c.Snapshot()
	var b strings.Builder

	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("configvalidator_scans_total", "Validation attempts with a terminal outcome.", s.Scans)
	counter("configvalidator_scan_errors_total", "Validation attempts that ended in an error.", s.Errors)
	counter("configvalidator_scan_retries_total", "Retries of transient scan failures.", s.Retries)
	counter("configvalidator_scan_panics_total", "Scans that panicked and were isolated.", s.Panics)
	counter("configvalidator_scan_timeouts_total", "Scans abandoned at their deadline.", s.Timeouts)
	counter("configvalidator_requests_shed_total", "HTTP requests rejected at admission (429).", s.Shed)
	counter("configvalidator_breaker_opens_total", "Circuit-breaker trips.", s.BreakerOpens)
	counter("configvalidator_parse_cache_hits_total", "Parse-cache lookups served from cache.", s.ParseCacheHits)
	counter("configvalidator_parse_cache_misses_total", "Parse-cache lookups that had to parse.", s.ParseCacheMisses)
	counter("configvalidator_parse_cache_evictions_total", "Parse-cache entries dropped at capacity.", s.ParseCacheEvictions)
	counter("configvalidator_journal_appends_total", "Records appended to the durable result journal.", s.JournalAppends)
	counter("configvalidator_journal_replayed_total", "Journal records replayed at recovery.", s.JournalReplayed)
	counter("configvalidator_journal_corrupt_records_total", "Corrupt journal records dropped at recovery.", s.JournalCorruptRecords)
	counter("configvalidator_journal_skipped_entities_total", "Fleet entities skipped on resume (journaled digest matched).", s.JournalSkippedEntities)
	counter("configvalidator_journal_append_errors_total", "Journal appends that failed (scan continued, result not persisted).", s.JournalAppendErrors)
	counter("configvalidator_journal_reprobes_total", "Write re-probes attempted by a degraded journal.", s.JournalReprobes)
	counter("configvalidator_merge_stalls_total", "Coordinator merge stalls (slow FleetResult consumer paused shard reads).", s.MergeStalls)
	counter("configvalidator_scans_abandoned_total", "Computed fleet results dropped at context cancellation.", s.ScansAbandoned)
	counter("configvalidator_shards_dispatched_total", "Shards handed to workers under a lease.", s.ShardsDispatched)
	counter("configvalidator_shards_completed_total", "Shards whose every entity produced a result.", s.ShardsCompleted)
	counter("configvalidator_scan_lease_reassignments_total", "Shard leases revoked and reassigned to another worker.", s.LeaseReassignments)
	counter("configvalidator_lease_heartbeats_missed_total", "Leases whose worker went silent past the lease TTL.", s.HeartbeatsMissed)
	counter("configvalidator_duplicate_results_dropped_total", "Duplicate remote results dropped last-writer-wins.", s.DuplicateResults)
	counter("configvalidator_worker_rpc_retries_total", "Shard dispatches retried against a worker.", s.WorkerRPCRetries)

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	gauge("configvalidator_inflight_scans", "Validations executing right now.", s.InFlightScans)
	gauge("configvalidator_active_leases", "Shard leases live right now.", s.ActiveLeases)
	gauge("configvalidator_server_queue_depth", "HTTP requests waiting for an admission slot.", s.QueueDepth)
	var breakerOpen int64
	if s.BreakerOpen {
		breakerOpen = 1
	}
	gauge("configvalidator_breaker_open", "Whether the validation circuit breaker is open (1) or closed (0).", breakerOpen)
	var journalDegraded int64
	if s.JournalDegraded {
		journalDegraded = 1
	}
	gauge("configvalidator_journal_degraded", "Whether the result journal is degraded (1) — appends failing fast between re-probes — or healthy (0).", journalDegraded)

	fmt.Fprintf(&b, "# HELP configvalidator_results_total Rule results across all scans, by status.\n")
	fmt.Fprintf(&b, "# TYPE configvalidator_results_total counter\n")
	for _, status := range []engine.Status{engine.StatusPass, engine.StatusFail, engine.StatusNotApplicable, engine.StatusError, engine.StatusDegraded} {
		fmt.Fprintf(&b, "configvalidator_results_total{status=%q} %d\n",
			strings.ToLower(status.String()), s.ResultsByStatus[status])
	}

	writeHistogram(&b, "configvalidator_scan_duration_seconds", "Scan latency.", s.ScanLatency)

	fmt.Fprintf(&b, "# HELP configvalidator_http_requests_total HTTP requests by route and status code.\n")
	fmt.Fprintf(&b, "# TYPE configvalidator_http_requests_total counter\n")
	keys := make([]string, 0, len(s.HTTPRequests))
	for k := range s.HTTPRequests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx := strings.LastIndexByte(k, ' ')
		fmt.Fprintf(&b, "configvalidator_http_requests_total{route=%q,code=%q} %d\n",
			k[:idx], k[idx+1:], s.HTTPRequests[k])
	}

	writeHistogram(&b, "configvalidator_http_request_duration_seconds", "HTTP request latency.", s.HTTPLatency)

	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name, help string, h HistogramSnapshot) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i, ub := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, formatBound(ub), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", name, h.Sum.Seconds())
	fmt.Fprintf(b, "%s_count %d\n", name, h.Count)
}

func formatBound(ub float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", ub), "0"), ".")
}
