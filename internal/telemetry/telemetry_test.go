package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"

	"configvalidator/internal/crawler"
	"configvalidator/internal/engine"
)

func TestBucketConstantMatchesBounds(t *testing.T) {
	if len(LatencyBuckets) != numBuckets {
		t.Fatalf("numBuckets = %d, len(LatencyBuckets) = %d", numBuckets, len(LatencyBuckets))
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	c.ScanDone(2*time.Millisecond, map[engine.Status]int{
		engine.StatusPass: 10, engine.StatusFail: 2, engine.StatusError: 1,
	})
	c.ScanFailed(time.Millisecond)
	c.ScanPanicked(time.Millisecond)
	c.ScanTimedOut(50 * time.Millisecond)
	c.RetryScheduled()
	c.RetryScheduled()

	s := c.Snapshot()
	if s.Scans != 4 {
		t.Errorf("Scans = %d, want 4", s.Scans)
	}
	if s.Errors != 3 {
		t.Errorf("Errors = %d, want 3", s.Errors)
	}
	if s.Panics != 1 || s.Timeouts != 1 || s.Retries != 2 {
		t.Errorf("panics/timeouts/retries = %d/%d/%d", s.Panics, s.Timeouts, s.Retries)
	}
	if s.ResultsByStatus[engine.StatusPass] != 10 || s.ResultsByStatus[engine.StatusFail] != 2 {
		t.Errorf("ResultsByStatus = %v", s.ResultsByStatus)
	}
	if s.ScanLatency.Count != 4 {
		t.Errorf("latency count = %d", s.ScanLatency.Count)
	}
	if s.ScanLatency.Mean() <= 0 {
		t.Errorf("mean = %v", s.ScanLatency.Mean())
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.ScanDone(time.Millisecond, nil)
	c.ScanFailed(0)
	c.ScanPanicked(0)
	c.ScanTimedOut(0)
	c.RetryScheduled()
	c.RequestDone("GET /healthz", 200, time.Millisecond)
}

func TestHistogramQuantile(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 99; i++ {
		c.ScanDone(time.Millisecond, nil) // le=0.001 bucket
	}
	c.ScanDone(4*time.Second, nil) // le=5 bucket
	h := c.Snapshot().ScanLatency
	if got := h.Quantile(0.5); got != time.Millisecond {
		t.Errorf("p50 = %v, want 1ms", got)
	}
	if got := h.Quantile(1); got != 5*time.Second {
		t.Errorf("p100 = %v, want 5s (bucket upper bound)", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector()
	c.ScanDone(3*time.Millisecond, map[engine.Status]int{engine.StatusPass: 5})
	c.ScanPanicked(time.Millisecond)
	c.RequestDone("POST /v1/validate/frame", 200, 2*time.Millisecond)
	c.RequestDone("POST /v1/validate/frame", 413, time.Millisecond)

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"configvalidator_scans_total 2",
		"configvalidator_scan_panics_total 1",
		"configvalidator_scan_errors_total 1",
		`configvalidator_results_total{status="pass"} 5`,
		`configvalidator_scan_duration_seconds_bucket{le="+Inf"} 2`,
		"configvalidator_scan_duration_seconds_count 2",
		`configvalidator_http_requests_total{route="POST /v1/validate/frame",code="200"} 1`,
		`configvalidator_http_requests_total{route="POST /v1/validate/frame",code="413"} 1`,
		"configvalidator_http_request_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}

func TestCollectorConcurrency(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.ScanDone(time.Millisecond, map[engine.Status]int{engine.StatusPass: 1})
				c.RequestDone("GET /metrics", 200, time.Microsecond)
				c.RetryScheduled()
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Scans != 4000 || s.Retries != 4000 {
		t.Errorf("scans=%d retries=%d, want 4000 each", s.Scans, s.Retries)
	}
	if s.HTTPRequests["GET /metrics 200"] != 4000 {
		t.Errorf("http = %v", s.HTTPRequests)
	}
	if s.ResultsByStatus[engine.StatusPass] != 4000 {
		t.Errorf("pass results = %d", s.ResultsByStatus[engine.StatusPass])
	}
}

func TestParseCacheCounters(t *testing.T) {
	// The Collector doubles as the crawler's cache metrics sink.
	var _ crawler.CacheMetrics = NewCollector()

	c := NewCollector()
	c.ParseCacheHit()
	c.ParseCacheHit()
	c.ParseCacheMiss()
	c.ParseCacheEviction()

	s := c.Snapshot()
	if s.ParseCacheHits != 2 || s.ParseCacheMisses != 1 || s.ParseCacheEvictions != 1 {
		t.Errorf("hits/misses/evictions = %d/%d/%d, want 2/1/1",
			s.ParseCacheHits, s.ParseCacheMisses, s.ParseCacheEvictions)
	}

	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"configvalidator_parse_cache_hits_total 2",
		"configvalidator_parse_cache_misses_total 1",
		"configvalidator_parse_cache_evictions_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
}
