package convert

import (
	"testing"

	"configvalidator/internal/baseline"
	"configvalidator/internal/baseline/xccdf"
	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/fixtures"
)

// generated produces XCCDF/OVAL documents for the 40-check workload.
func generated(t *testing.T) ([]byte, []byte) {
	t.Helper()
	benchXML, ovalXML, err := xccdf.Generate("cis-ubuntu-40", baseline.CIS40())
	if err != nil {
		t.Fatal(err)
	}
	return benchXML, ovalXML
}

func TestConvertCIS40(t *testing.T) {
	benchXML, ovalXML := generated(t)
	res, err := XCCDFToCVL(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	// The importer's documented scope is key-value configuration: the 30
	// sshd+sysctl checks convert; the 10 schema-file checks (audit watch
	// flags, fstab positional fields, modprobe directive collisions) are
	// skipped with explicit reasons.
	if len(res.Rules) != 30 {
		t.Fatalf("converted %d rules: %+v", len(res.Rules), res.Skipped)
	}
	if len(res.Skipped) != 10 {
		t.Fatalf("skipped %d: %+v", len(res.Skipped), res.Skipped)
	}
	for _, s := range res.Skipped {
		if s.Reason == "" {
			t.Errorf("skip without reason: %+v", s)
		}
	}
	byName := make(map[string]*cvl.Rule, len(res.Rules))
	for _, r := range res.Rules {
		byName[r.Name] = r
	}
	prl, ok := byName["PermitRootLogin"]
	if !ok {
		t.Fatal("PermitRootLogin not converted")
	}
	if prl.Type != cvl.TypeTree || prl.PreferredMatch.Kind != cvl.MatchRegex {
		t.Errorf("converted rule = %+v", prl)
	}
	if len(prl.FileContext) != 1 || prl.FileContext[0] != "sshd_config" {
		t.Errorf("file context = %v", prl.FileContext)
	}
	// Dotted sysctl keys become tree paths.
	if _, ok := byName["net/ipv4/ip_forward"]; !ok {
		t.Error("sysctl key not path-expanded")
	}
	// MissingOK specs become absent_pass rules.
	if proto := byName["Protocol"]; proto == nil || !proto.AbsentPass {
		t.Errorf("Protocol absent_pass = %+v", proto)
	}
}

// TestConvertedRulesAgreeWithXCCDFEngine is the semantic fidelity check:
// the converted CVL rules and the original XCCDF engine must produce the
// same verdicts on the same host.
func TestConvertedRulesAgreeWithXCCDFEngine(t *testing.T) {
	benchXML, ovalXML := generated(t)
	res, err := XCCDFToCVL(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	xEng, err := xccdf.Load(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	host, _ := fixtures.SystemHost("mixed", fixtures.Profile{Seed: 41, MisconfigRate: 0.5})

	xccdfResults := xEng.Evaluate(host)
	xccdfByTitle := make(map[string]bool, len(xccdfResults))
	for _, r := range xccdfResults {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.RuleID, r.Err)
		}
		xccdfByTitle[r.Title] = r.Passed
	}

	searchPaths := []string{"/etc/ssh", "/etc/sysctl.conf", "/etc/audit", "/etc/fstab", "/etc/modprobe.d"}
	rep, err := engine.New(nil).ValidateRules(host, res.Rules, searchPaths)
	if err != nil {
		t.Fatal(err)
	}
	specs := baseline.CIS40()
	specByKey := map[string]string{}
	for _, s := range specs {
		specByKey[s.CVLRule] = s.Title
	}
	compared := 0
	for _, r := range rep.Results {
		if r.Rule == nil {
			continue
		}
		// Audit/fstab/modprobe checks convert to tree rules over files the
		// tree lenses don't serve (schema files); those evaluate N/A under
		// CVL and are excluded from the comparison — the conversion is
		// faithful for key-value targets, which is its documented scope.
		if r.Status == engine.StatusNotApplicable {
			continue
		}
		title, ok := specByKey[r.Rule.Name]
		if !ok {
			continue
		}
		want, ok := xccdfByTitle[title]
		if !ok {
			continue
		}
		got := r.Status == engine.StatusPass
		if got != want {
			t.Errorf("rule %s: CVL %v (%s / %s), XCCDF %v", r.Rule.Name, got, r.Message, r.Detail, want)
		}
		compared++
	}
	if compared < 25 {
		t.Errorf("only %d verdicts compared", compared)
	}
}

func TestConvertedRulesFormatToValidCVL(t *testing.T) {
	benchXML, ovalXML := generated(t)
	res, err := XCCDFToCVL(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	out, err := cvl.FormatRuleFile("", res.Rules)
	if err != nil {
		t.Fatal(err)
	}
	back, err := cvl.ParseRuleFile("imported.yaml", out)
	if err != nil {
		t.Fatalf("formatted import does not parse: %v", err)
	}
	if len(back.Rules) != len(res.Rules) {
		t.Errorf("%d rules in, %d out", len(res.Rules), len(back.Rules))
	}
	if diags := cvl.Lint("imported.yaml", out); cvl.HasErrors(diags) {
		t.Errorf("imported rules have lint errors: %v", diags)
	}
}

func TestConvertSkipsUnconvertible(t *testing.T) {
	benchXML := []byte(`<Benchmark id="b">
  <Rule id="r-missing" selected="true"><title>missing def</title>
    <check system="oval"><check-content-ref name="oval:ghost:def:1"/></check>
  </Rule>
  <Rule id="r-nested" selected="true"><title>nested criteria</title>
    <check system="oval"><check-content-ref name="oval:nested:def:1"/></check>
  </Rule>
  <Rule id="r-unselected" selected="false"><title>not selected</title>
    <check system="oval"><check-content-ref name="oval:ghost:def:2"/></check>
  </Rule>
</Benchmark>`)
	ovalXML := []byte(`<oval_definitions>
  <definitions>
    <definition id="oval:nested:def:1" class="compliance" version="1">
      <criteria operator="AND">
        <criteria operator="OR">
          <criterion test_ref="oval:t:1"/>
        </criteria>
      </criteria>
    </definition>
  </definitions>
  <tests></tests><objects></objects><states></states>
</oval_definitions>`)
	res, err := XCCDFToCVL(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rules) != 0 {
		t.Errorf("rules = %+v", res.Rules)
	}
	if len(res.Skipped) != 2 {
		t.Fatalf("skipped = %+v", res.Skipped)
	}
	for _, s := range res.Skipped {
		if s.Reason == "" {
			t.Errorf("skip without reason: %+v", s)
		}
	}
}

func TestConvertBadXML(t *testing.T) {
	if _, err := XCCDFToCVL([]byte("<nope"), []byte("<oval_definitions/>")); err == nil {
		t.Error("bad XML accepted")
	}
}

func TestExtractKey(t *testing.T) {
	tests := []struct {
		pattern string
		want    string
		ok      bool
	}{
		{`^\s*PermitRootLogin\s+(.+?)\s*$`, "PermitRootLogin", true},
		{`^\s*net\.ipv4\.ip_forward\s*=\s*(\S+)`, "net/ipv4/ip_forward", true},
		{`^install\s+cramfs\s+(\S+)`, "install", true},
		{`^(\S+)`, "", false},
		{`^\s*$`, "", false},
	}
	for _, tt := range tests {
		got, ok := extractKey(tt.pattern)
		if ok != tt.ok || got != tt.want {
			t.Errorf("extractKey(%q) = %q, %v; want %q, %v", tt.pattern, got, ok, tt.want, tt.ok)
		}
	}
}
