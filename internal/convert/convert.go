// Package convert imports XCCDF/OVAL checklists into CVL rules — the
// migration path from the XML-based specification formats the paper
// compares against (§2.2, §4.2) into the declarative language. Conversion
// is best-effort and explicit about its limits: every rule that cannot be
// represented faithfully is reported as Skipped with a reason rather than
// silently approximated.
//
// The importer understands the common shape of compliance OVAL content:
// textfilecontent54 tests whose object pattern extracts a parameter value
// from a configuration file and whose state constrains that value, with
// single-criterion definitions or the OR(absent, value-matches) idiom for
// secure-by-default parameters.
package convert

import (
	"fmt"
	"path"
	"regexp"
	"strings"

	"configvalidator/internal/baseline/xccdf"
	"configvalidator/internal/cvl"
)

// Skipped records one XCCDF rule the importer could not convert.
type Skipped struct {
	// RuleID is the XCCDF rule identifier.
	RuleID string
	// Reason explains why the rule was skipped.
	Reason string
}

// Result carries the conversion outcome.
type Result struct {
	// Rules are the converted CVL rules, in benchmark order.
	Rules []*cvl.Rule
	// Skipped lists rules that could not be converted.
	Skipped []Skipped
}

// XCCDFToCVL converts an XCCDF benchmark plus its OVAL definitions into
// CVL config-tree rules.
func XCCDFToCVL(benchXML, ovalXML []byte) (*Result, error) {
	docs, err := xccdf.Parse(benchXML, ovalXML)
	if err != nil {
		return nil, fmt.Errorf("convert: %w", err)
	}
	out := &Result{}
	type conv struct {
		rule    *cvl.Rule
		xccdfID string
	}
	var converted []conv
	keyCount := make(map[string]int)
	for _, rule := range docs.Benchmark.Rules {
		if !rule.Selected {
			continue
		}
		c, reason := convertRule(docs, &rule)
		if c == nil {
			out.Skipped = append(out.Skipped, Skipped{RuleID: rule.ID, Reason: reason})
			continue
		}
		converted = append(converted, conv{rule: c, xccdfID: rule.ID})
		keyCount[c.Key()]++
	}
	// Two checks deriving the same key would collide in CVL (the pattern
	// distinguished them positionally, which a tree rule cannot); skip
	// every member of such a collision set.
	for _, c := range converted {
		if keyCount[c.rule.Key()] > 1 {
			out.Skipped = append(out.Skipped, Skipped{
				RuleID: c.xccdfID,
				Reason: fmt.Sprintf("derived key %q is ambiguous across multiple checks", c.rule.Name),
			})
			continue
		}
		out.Rules = append(out.Rules, c.rule)
	}
	return out, nil
}

func convertRule(docs *xccdf.Documents, rule *xccdf.BenchRule) (*cvl.Rule, string) {
	def, ok := docs.Definition(rule.Check.ContentRef.Name)
	if !ok {
		return nil, fmt.Sprintf("missing OVAL definition %q", rule.Check.ContentRef.Name)
	}
	shape, reason := analyzeCriteria(docs, &def.Criteria)
	if shape == nil {
		return nil, reason
	}
	obj, ok := docs.Object(shape.objectRef)
	if !ok {
		return nil, fmt.Sprintf("missing OVAL object %q", shape.objectRef)
	}
	key, ok := extractKey(obj.Pattern.Value)
	if !ok {
		return nil, fmt.Sprintf("cannot derive a configuration key from pattern %q", obj.Pattern.Value)
	}
	expect, reason := stateExpectation(docs, shape.stateRefs)
	if expect == "" {
		return nil, reason
	}

	r := &cvl.Rule{
		Type:                  cvl.TypeTree,
		Name:                  key,
		Description:           firstNonEmpty(rule.Description, rule.Title),
		ConfigPath:            []string{""},
		FileContext:           []string{path.Base(obj.Filepath)},
		PreferredValue:        []string{expect},
		PreferredMatch:        cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny},
		AbsentPass:            shape.absentOK,
		MatchedDescription:    rule.Title + ": compliant",
		NotMatchedDescription: rule.Title + ": non-compliant value",
		NotPresentDescription: key + " is not present",
		Permission:            -1,
		MaxPermission:         -1,
	}
	if rule.Severity != "" {
		r.Severity = rule.Severity
	}
	r.Tags = []string{"#imported", "#xccdf"}
	if err := validateConverted(r); err != nil {
		return nil, err.Error()
	}
	return r, ""
}

// criteriaShape is the recognized structure of a definition's criteria.
type criteriaShape struct {
	objectRef string
	stateRefs []xccdf.StateRef
	absentOK  bool
}

// analyzeCriteria recognizes two patterns: a single value test, or
// OR(none_exist test, value test) on the same object.
func analyzeCriteria(docs *xccdf.Documents, c *xccdf.Criteria) (*criteriaShape, string) {
	if len(c.Criterias) > 0 {
		return nil, "nested criteria are not convertible"
	}
	if c.Negate {
		return nil, "negated criteria are not convertible"
	}
	op := strings.ToUpper(c.Operator)
	switch len(c.Criterions) {
	case 1:
		test, ok := docs.Test(c.Criterions[0].TestRef)
		if !ok {
			return nil, fmt.Sprintf("missing OVAL test %q", c.Criterions[0].TestRef)
		}
		if c.Criterions[0].Negate {
			return nil, "negated criterion is not convertible"
		}
		if test.CheckExistence == "none_exist" {
			return nil, "pure absence tests are not convertible to tree rules"
		}
		return &criteriaShape{objectRef: test.Object.Ref, stateRefs: test.States}, ""
	case 2:
		if op != "OR" {
			return nil, "two-criterion AND is not convertible"
		}
		var absent, value *xccdf.TFC54Test
		for _, crit := range c.Criterions {
			test, ok := docs.Test(crit.TestRef)
			if !ok {
				return nil, fmt.Sprintf("missing OVAL test %q", crit.TestRef)
			}
			if test.CheckExistence == "none_exist" {
				absent = test
			} else {
				value = test
			}
		}
		if absent == nil || value == nil {
			return nil, "OR criteria are convertible only as absent-or-compliant"
		}
		if absent.Object.Ref != value.Object.Ref {
			return nil, "absent and value tests reference different objects"
		}
		return &criteriaShape{objectRef: value.Object.Ref, stateRefs: value.States, absentOK: true}, ""
	default:
		return nil, fmt.Sprintf("%d-criterion definitions are not convertible", len(c.Criterions))
	}
}

func stateExpectation(docs *xccdf.Documents, refs []xccdf.StateRef) (string, string) {
	if len(refs) != 1 {
		return "", fmt.Sprintf("expected exactly one state, got %d", len(refs))
	}
	state, ok := docs.State(refs[0].Ref)
	if !ok {
		return "", fmt.Sprintf("missing OVAL state %q", refs[0].Ref)
	}
	if state.Subexpression == nil {
		return "", "state has no subexpression"
	}
	value := strings.TrimSpace(state.Subexpression.Value)
	switch op := state.Subexpression.Operation; op {
	case "pattern match":
		return value, ""
	case "", "equals":
		return "^" + regexp.QuoteMeta(value) + "$", ""
	default:
		return "", fmt.Sprintf("state operation %q is not convertible", op)
	}
}

// extractKey derives the configuration key from an OVAL line pattern by
// taking the literal run before the first capture group, e.g.
//
//	^\s*PermitRootLogin\s+(.+?)\s*$        -> PermitRootLogin
//	^\s*net\.ipv4\.ip_forward\s*=\s*(\S+)  -> net/ipv4/ip_forward
func extractKey(pattern string) (string, bool) {
	s := strings.TrimSpace(pattern)
	s = strings.TrimPrefix(s, "^")
	for _, prefix := range []string{`\s*`, `\s+`} {
		s = strings.TrimPrefix(s, prefix)
	}
	var key strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\\' && i+1 < len(s):
			next := s[i+1]
			if next == '.' || next == '-' || next == '/' {
				key.WriteByte(next)
				i += 2
				continue
			}
			// \s etc. terminates the literal key.
			i = len(s)
		case c == '(' || c == '[' || c == '*' || c == '+' || c == '?' || c == '{' || c == '$' || c == '|' || c == '.':
			i = len(s)
		default:
			key.WriteByte(c)
			i++
		}
	}
	out := key.String()
	if out == "" {
		return "", false
	}
	// Flag-style tokens (audit's "-w", "-a") are positional syntax, not
	// configuration keys; such checks belong to schema rules, out of this
	// importer's scope.
	if out[0] == '-' {
		return "", false
	}
	// Dotted keys address the sysctl-style expanded tree.
	if strings.Contains(out, ".") && !strings.Contains(out, "/") {
		out = strings.ReplaceAll(out, ".", "/")
	}
	return out, true
}

func validateConverted(r *cvl.Rule) error {
	if _, err := regexp.Compile(r.PreferredValue[0]); err != nil {
		return fmt.Errorf("converted expectation is not a valid regex: %v", err)
	}
	return nil
}

func firstNonEmpty(values ...string) string {
	for _, v := range values {
		if v != "" {
			return v
		}
	}
	return ""
}
