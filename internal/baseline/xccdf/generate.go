package xccdf

import (
	"encoding/xml"
	"fmt"

	"configvalidator/internal/baseline"
)

// Generate emits the XCCDF benchmark and OVAL definitions XML for a set of
// neutral check specs, in the verbose style the paper's Listing 6 shows
// (~45 lines per rule across the two documents).
func Generate(benchmarkID string, specs []baseline.CheckSpec) (benchXML, ovalXML []byte, err error) {
	bench := Benchmark{
		ID:    benchmarkID,
		Title: "Generated benchmark " + benchmarkID,
	}
	var oval OvalDefinitions
	for i, s := range specs {
		n := i + 1
		defID := fmt.Sprintf("oval:%s:def:%d", s.ID, n)
		objID := fmt.Sprintf("oval:%s:obj:%d", s.ID, n)
		valueTestID := fmt.Sprintf("oval:%s:tst:%d", s.ID, n)
		stateID := fmt.Sprintf("oval:%s:ste:%d", s.ID, n)

		bench.Rules = append(bench.Rules, BenchRule{
			ID:          "xccdf_rule_" + s.ID,
			Selected:    true,
			Severity:    "medium",
			Title:       s.Title,
			Description: "The value of the parameter checked by " + s.ID + " must comply with the benchmark.",
			Rationale:   "Non-compliant configuration of " + s.Title + " weakens the system security posture.",
			Reference: Reference{
				Href: "http://nvlpubs.nist.gov/nistpubs/SpecialPublications/NIST.SP.800-53r4.pdf",
				Text: "AC-3",
			},
			Ident: Ident{System: "https://nvd.nist.gov/cce/index.cfm", Text: "CCE-" + s.ID},
			Check: RuleCheck{
				System:     "http://oval.mitre.org/XMLSchema/oval-definitions-5",
				ContentRef: ContentRef{Name: defID, Href: "generated-oval.xml"},
			},
		})

		oval.Objects = append(oval.Objects, TFC54Object{
			ID:       objID,
			Filepath: s.FilePath,
			Pattern:  PatternElem{Operation: "pattern match", Value: s.Pattern},
			Instance: InstanceElem{Datatype: "int", Value: "1"},
		})
		oval.States = append(oval.States, TFC54State{
			ID:            stateID,
			Subexpression: &SubexprElem{Operation: "pattern match", Value: s.Expect},
		})
		oval.Tests = append(oval.Tests, TFC54Test{
			ID:             valueTestID,
			Check:          "all",
			CheckExistence: "at_least_one_exists",
			Comment:        "Tests the value of " + s.Title,
			Object:         ObjectRef{Ref: objID},
			States:         []StateRef{{Ref: stateID}},
		})

		criteria := Criteria{
			Comment:    "Check " + s.FilePath,
			Criterions: []Criterion{{TestRef: valueTestID, Comment: "value compliant"}},
		}
		if s.MissingOK {
			// Compliant when the parameter is absent OR its value matches:
			// an OR of a none_exist test and the value test.
			absentTestID := fmt.Sprintf("oval:%s:tst:%d_absent", s.ID, n)
			oval.Tests = append(oval.Tests, TFC54Test{
				ID:             absentTestID,
				Check:          "all",
				CheckExistence: "none_exist",
				Comment:        "Parameter absent (secure default)",
				Object:         ObjectRef{Ref: objID},
			})
			criteria = Criteria{
				Operator: "OR",
				Comment:  "Absent or compliant",
				Criterions: []Criterion{
					{TestRef: absentTestID, Comment: "parameter absent"},
					{TestRef: valueTestID, Comment: "value compliant"},
				},
			}
		}
		oval.Definitions = append(oval.Definitions, Definition{
			ID:      defID,
			Class:   "compliance",
			Version: "1",
			Metadata: Metadata{
				Title:       s.Title,
				Description: "OVAL definition for " + s.ID,
			},
			Criteria: criteria,
		})
	}

	benchXML, err = xml.MarshalIndent(&bench, "", "  ")
	if err != nil {
		return nil, nil, fmt.Errorf("xccdf: marshal benchmark: %w", err)
	}
	ovalXML, err = xml.MarshalIndent(&oval, "", "  ")
	if err != nil {
		return nil, nil, fmt.Errorf("xccdf: marshal oval: %w", err)
	}
	return benchXML, ovalXML, nil
}
