// Package xccdf implements the XCCDF/OVAL validation baseline of the
// paper's Table-2 comparison: an engine in the style of OpenSCAP and
// CIS-CAT that evaluates XML benchmark documents whose checks are OVAL
// textfilecontent54 tests (regex scans over configuration files), plus a
// generator that emits the verbose XML encoding the paper's Listing 6
// contrasts with CVL.
package xccdf

import "encoding/xml"

// Benchmark is an XCCDF benchmark document.
type Benchmark struct {
	XMLName xml.Name    `xml:"Benchmark"`
	ID      string      `xml:"id,attr"`
	Title   string      `xml:"title"`
	Rules   []BenchRule `xml:"Rule"`
}

// BenchRule is one XCCDF rule.
type BenchRule struct {
	ID          string    `xml:"id,attr"`
	Selected    bool      `xml:"selected,attr"`
	Severity    string    `xml:"severity,attr"`
	Title       string    `xml:"title"`
	Description string    `xml:"description"`
	Rationale   string    `xml:"rationale"`
	Reference   Reference `xml:"reference"`
	Ident       Ident     `xml:"ident"`
	Check       RuleCheck `xml:"check"`
}

// Reference cites the authority behind a rule.
type Reference struct {
	Href string `xml:"href,attr"`
	Text string `xml:",chardata"`
}

// Ident carries a CCE-style identifier.
type Ident struct {
	System string `xml:"system,attr"`
	Text   string `xml:",chardata"`
}

// RuleCheck links a rule to its OVAL definition.
type RuleCheck struct {
	System     string     `xml:"system,attr"`
	ContentRef ContentRef `xml:"check-content-ref"`
}

// ContentRef names the OVAL definition implementing the check.
type ContentRef struct {
	Name string `xml:"name,attr"`
	Href string `xml:"href,attr"`
}

// OvalDefinitions is an OVAL definitions document.
type OvalDefinitions struct {
	XMLName     xml.Name      `xml:"oval_definitions"`
	Definitions []Definition  `xml:"definitions>definition"`
	Tests       []TFC54Test   `xml:"tests>textfilecontent54_test"`
	Objects     []TFC54Object `xml:"objects>textfilecontent54_object"`
	States      []TFC54State  `xml:"states>textfilecontent54_state"`
}

// Definition is one OVAL definition: metadata plus a criteria tree.
type Definition struct {
	ID       string   `xml:"id,attr"`
	Class    string   `xml:"class,attr"`
	Version  string   `xml:"version,attr"`
	Metadata Metadata `xml:"metadata"`
	Criteria Criteria `xml:"criteria"`
}

// Metadata carries definition descriptions.
type Metadata struct {
	Title       string `xml:"title"`
	Description string `xml:"description"`
}

// Criteria is a boolean combination of criterion references and nested
// criteria. Operator defaults to AND.
type Criteria struct {
	Operator   string      `xml:"operator,attr"`
	Negate     bool        `xml:"negate,attr"`
	Comment    string      `xml:"comment,attr"`
	Criterias  []Criteria  `xml:"criteria"`
	Criterions []Criterion `xml:"criterion"`
}

// Criterion references one test.
type Criterion struct {
	TestRef string `xml:"test_ref,attr"`
	Negate  bool   `xml:"negate,attr"`
	Comment string `xml:"comment,attr"`
}

// TFC54Test is an OVAL textfilecontent54_test.
type TFC54Test struct {
	ID string `xml:"id,attr"`
	// Check governs how many collected items must satisfy the states:
	// "all" or "at least one".
	Check string `xml:"check,attr"`
	// CheckExistence governs how many items must exist:
	// "at_least_one_exists", "none_exist", or "any_exist".
	CheckExistence string     `xml:"check_existence,attr"`
	Comment        string     `xml:"comment,attr"`
	Object         ObjectRef  `xml:"object"`
	States         []StateRef `xml:"state"`
}

// ObjectRef references a test's object.
type ObjectRef struct {
	Ref string `xml:"object_ref,attr"`
}

// StateRef references a test's state.
type StateRef struct {
	Ref string `xml:"state_ref,attr"`
}

// TFC54Object is an OVAL textfilecontent54_object: a file and a pattern.
type TFC54Object struct {
	ID       string       `xml:"id,attr"`
	Filepath string       `xml:"filepath"`
	Pattern  PatternElem  `xml:"pattern"`
	Instance InstanceElem `xml:"instance"`
}

// PatternElem is the object's regex, with its operation attribute.
type PatternElem struct {
	Operation string `xml:"operation,attr"`
	Value     string `xml:",chardata"`
}

// InstanceElem selects which match instances the object collects.
type InstanceElem struct {
	Datatype string `xml:"datatype,attr"`
	Value    string `xml:",chardata"`
}

// TFC54State is an OVAL textfilecontent54_state constraining collected
// items.
type TFC54State struct {
	ID            string       `xml:"id,attr"`
	Subexpression *SubexprElem `xml:"subexpression"`
}

// SubexprElem constrains the first capture group of the object pattern.
type SubexprElem struct {
	Operation string `xml:"operation,attr"`
	Value     string `xml:",chardata"`
}
