package xccdf

import (
	"strings"
	"testing"

	"configvalidator/internal/entity"
)

// loadRaw builds an engine from raw XML for edge-case tests.
func loadRaw(t *testing.T, benchXML, ovalXML string) *Engine {
	t.Helper()
	eng, err := Load([]byte(benchXML), []byte(ovalXML))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

const edgeBench = `<Benchmark id="edge">
  <Rule id="r1" selected="true"><title>t1</title>
    <check system="oval"><check-content-ref name="oval:edge:def:1"/></check>
  </Rule>
</Benchmark>`

func edgeOval(defBody string) string {
	return `<oval_definitions>
  <definitions>
    <definition id="oval:edge:def:1" class="compliance" version="1">` + defBody + `</definition>
  </definitions>
  <tests>
    <textfilecontent54_test id="oval:t:value" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:1"/><state state_ref="oval:s:eq"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:notequal" check="at least one" check_existence="at_least_one_exists">
      <object object_ref="oval:o:1"/><state state_ref="oval:s:ne"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:nostate" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:1"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badexist" check="all" check_existence="exactly_11_exist">
      <object object_ref="oval:o:1"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badcheck" check="a majority" check_existence="at_least_one_exists">
      <object object_ref="oval:o:1"/><state state_ref="oval:s:eq"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badop" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:1"/><state state_ref="oval:s:badop"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badobj" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:missing"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badpattern" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:badre"/>
    </textfilecontent54_test>
    <textfilecontent54_test id="oval:t:badpatternop" check="all" check_existence="at_least_one_exists">
      <object object_ref="oval:o:badop"/>
    </textfilecontent54_test>
  </tests>
  <objects>
    <textfilecontent54_object id="oval:o:1">
      <filepath>/etc/app.conf</filepath>
      <pattern operation="pattern match">^Key\s+(\S+)</pattern>
      <instance datatype="int">1</instance>
    </textfilecontent54_object>
    <textfilecontent54_object id="oval:o:badre">
      <filepath>/etc/app.conf</filepath>
      <pattern operation="pattern match">(unclosed</pattern>
      <instance datatype="int">1</instance>
    </textfilecontent54_object>
    <textfilecontent54_object id="oval:o:badop">
      <filepath>/etc/app.conf</filepath>
      <pattern operation="substring after">Key</pattern>
      <instance datatype="int">1</instance>
    </textfilecontent54_object>
  </objects>
  <states>
    <textfilecontent54_state id="oval:s:eq"><subexpression operation="equals">good</subexpression></textfilecontent54_state>
    <textfilecontent54_state id="oval:s:ne"><subexpression operation="not equal">bad</subexpression></textfilecontent54_state>
    <textfilecontent54_state id="oval:s:badop"><subexpression operation="levenshtein">x</subexpression></textfilecontent54_state>
  </states>
</oval_definitions>`
}

func appEntity(value string) *entity.Mem {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/app.conf", []byte("Key "+value+"\n"))
	return m
}

func evalOne(t *testing.T, defBody string, ent entity.Entity) RuleResult {
	t.Helper()
	eng := loadRaw(t, edgeBench, edgeOval(defBody))
	res := eng.Evaluate(ent)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	return res[0]
}

func TestCriteriaORAndNegate(t *testing.T) {
	or := `<criteria operator="OR">
      <criterion test_ref="oval:t:value"/>
      <criterion test_ref="oval:t:notequal"/>
    </criteria>`
	// value "other": equals-good fails, not-equal-bad passes -> OR true.
	if r := evalOne(t, or, appEntity("other")); r.Err != nil || !r.Passed {
		t.Errorf("OR = %+v", r)
	}
	negated := `<criteria negate="true"><criterion test_ref="oval:t:value"/></criteria>`
	if r := evalOne(t, negated, appEntity("good")); r.Err != nil || r.Passed {
		t.Errorf("negate = %+v", r)
	}
	negCriterion := `<criteria><criterion test_ref="oval:t:value" negate="true"/></criteria>`
	if r := evalOne(t, negCriterion, appEntity("bad")); r.Err != nil || !r.Passed {
		t.Errorf("negated criterion = %+v", r)
	}
	nested := `<criteria operator="AND">
      <criteria operator="OR">
        <criterion test_ref="oval:t:value"/>
        <criterion test_ref="oval:t:notequal"/>
      </criteria>
      <criterion test_ref="oval:t:nostate"/>
    </criteria>`
	if r := evalOne(t, nested, appEntity("good")); r.Err != nil || !r.Passed {
		t.Errorf("nested = %+v", r)
	}
	empty := `<criteria/>`
	if r := evalOne(t, empty, appEntity("good")); r.Err == nil {
		t.Error("empty criteria evaluated")
	}
}

func TestTestEdgeErrors(t *testing.T) {
	cases := map[string]string{
		"missing test":          `<criteria><criterion test_ref="oval:t:ghost"/></criteria>`,
		"missing object":        `<criteria><criterion test_ref="oval:t:badobj"/></criteria>`,
		"bad existence":         `<criteria><criterion test_ref="oval:t:badexist"/></criteria>`,
		"bad check mode":        `<criteria><criterion test_ref="oval:t:badcheck"/></criteria>`,
		"bad state op":          `<criteria><criterion test_ref="oval:t:badop"/></criteria>`,
		"bad object regex":      `<criteria><criterion test_ref="oval:t:badpattern"/></criteria>`,
		"bad pattern operation": `<criteria><criterion test_ref="oval:t:badpatternop"/></criteria>`,
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if r := evalOne(t, body, appEntity("good")); r.Err == nil {
				t.Errorf("expected evaluation error, got %+v", r)
			}
		})
	}
}

func TestNotEqualState(t *testing.T) {
	body := `<criteria><criterion test_ref="oval:t:notequal"/></criteria>`
	if r := evalOne(t, body, appEntity("bad")); r.Passed {
		t.Error("not-equal against equal value passed")
	}
	if r := evalOne(t, body, appEntity("fine")); !r.Passed {
		t.Error("not-equal against different value failed")
	}
}

func TestNoStateTestIsExistenceOnly(t *testing.T) {
	body := `<criteria><criterion test_ref="oval:t:nostate"/></criteria>`
	if r := evalOne(t, body, appEntity("anything")); !r.Passed {
		t.Error("existence-only test failed on present key")
	}
	empty := entity.NewMem("h", entity.TypeHost)
	if r := evalOne(t, body, empty); r.Passed {
		t.Error("existence-only test passed on missing file")
	}
}

func TestCollectWholeMatchWithoutGroup(t *testing.T) {
	bench := strings.Replace(edgeBench, "oval:edge:def:1", "oval:edge:def:1", 1)
	oval := strings.Replace(edgeOval(`<criteria><criterion test_ref="oval:t:nostate"/></criteria>`),
		`^Key\s+(\S+)`, `^Key\s+\S+`, 1)
	eng := loadRaw(t, bench, oval)
	res := eng.Evaluate(appEntity("x"))
	if len(res) != 1 || res[0].Err != nil || !res[0].Passed {
		t.Errorf("group-less pattern = %+v", res)
	}
}
