package xccdf

import (
	"strings"
	"testing"
	"time"

	"configvalidator/internal/baseline"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
)

func loadCIS40(t *testing.T) *Engine {
	t.Helper()
	benchXML, ovalXML, err := Generate("cis-ubuntu-40", baseline.CIS40())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Load(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestGenerateAndLoad(t *testing.T) {
	eng := loadCIS40(t)
	if got := eng.RuleCount(); got != 40 {
		t.Errorf("selected rules = %d", got)
	}
}

func TestEvaluateCleanAndDirty(t *testing.T) {
	eng := loadCIS40(t)
	clean, _ := fixtures.SystemHost("clean", fixtures.Profile{Seed: 1})
	for _, r := range eng.Evaluate(clean) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.RuleID, r.Err)
		}
		if !r.Passed {
			t.Errorf("%s failed on clean host", r.RuleID)
		}
	}
	dirty, _ := fixtures.SystemHost("dirty", fixtures.Profile{Seed: 2, MisconfigRate: 1.0})
	failed := 0
	for _, r := range eng.Evaluate(dirty) {
		if r.Err != nil {
			t.Errorf("%s: %v", r.RuleID, r.Err)
		}
		if !r.Passed {
			failed++
		}
	}
	if failed < 30 {
		t.Errorf("dirty host failed only %d/40 xccdf rules", failed)
	}
}

func TestAgreementWithScriptSemantics(t *testing.T) {
	// The xccdf and neutral-spec semantics must agree check by check on a
	// partially misconfigured host.
	eng := loadCIS40(t)
	host, _ := fixtures.SystemHost("mixed", fixtures.Profile{Seed: 77, MisconfigRate: 0.5})
	results := eng.Evaluate(host)
	specs := baseline.CIS40()
	if len(results) != len(specs) {
		t.Fatalf("results = %d, specs = %d", len(results), len(specs))
	}
	for i, r := range results {
		if !strings.Contains(r.RuleID, specs[i].ID) {
			t.Errorf("result %d = %s, spec = %s (order broken)", i, r.RuleID, specs[i].ID)
		}
	}
}

func TestMissingOKGeneratesORCriteria(t *testing.T) {
	// A MissingOK spec passes when the parameter is absent.
	spec := baseline.CheckSpec{
		ID: "t1", Title: "t", FilePath: "/etc/app.conf",
		Pattern: `^Key\s+(\S+)`, Expect: "^good$", MissingOK: true,
	}
	benchXML, ovalXML, err := Generate("b", []baseline.CheckSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Load(benchXML, ovalXML)
	if err != nil {
		t.Fatal(err)
	}
	empty := entity.NewMem("h", entity.TypeHost)
	empty.AddFile("/etc/app.conf", []byte("Other x\n"))
	res := eng.Evaluate(empty)
	if len(res) != 1 || !res[0].Passed {
		t.Errorf("absent param with MissingOK = %+v", res)
	}
	bad := entity.NewMem("h", entity.TypeHost)
	bad.AddFile("/etc/app.conf", []byte("Key bad\n"))
	res = eng.Evaluate(bad)
	if res[0].Passed {
		t.Error("present bad value must fail even with MissingOK")
	}
}

func TestVerboseEncodingSize(t *testing.T) {
	// Listing 6: the XCCDF/OVAL encoding of one rule is ~45 lines.
	benchXML, ovalXML, err := Generate("one", baseline.CIS40()[:1])
	if err != nil {
		t.Fatal(err)
	}
	total := strings.Count(string(benchXML), "\n") + strings.Count(string(ovalXML), "\n") + 2
	if total < 30 || total > 60 {
		t.Errorf("single-rule XCCDF/OVAL encoding = %d lines, paper reports ~45", total)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load([]byte("<not-xccdf"), []byte("<oval_definitions/>")); err == nil {
		t.Error("bad benchmark XML accepted")
	}
	if _, err := Load([]byte("<Benchmark/>"), []byte("<nope")); err == nil {
		t.Error("bad oval XML accepted")
	}
}

func TestEvaluateErrorPaths(t *testing.T) {
	benchXML := `<Benchmark id="b"><Rule id="r1" selected="true"><title>t</title><check system="oval"><check-content-ref name="oval:missing:def:1"/></check></Rule></Benchmark>`
	ovalXML := `<oval_definitions></oval_definitions>`
	eng, err := Load([]byte(benchXML), []byte(ovalXML))
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Evaluate(entity.NewMem("h", entity.TypeHost))
	if len(res) != 1 || res[0].Err == nil {
		t.Errorf("missing definition = %+v", res)
	}
}

func TestCISCATInitCost(t *testing.T) {
	eng := loadCIS40(t)
	cc := NewCISCAT(eng, 5*time.Millisecond)
	host, _ := fixtures.SystemHost("h", fixtures.Profile{Seed: 1})
	start := time.Now()
	res := cc.Evaluate(host)
	elapsed := time.Since(start)
	if len(res) != 40 {
		t.Errorf("results = %d", len(res))
	}
	if elapsed < 5*time.Millisecond {
		t.Errorf("init cost not paid: %v", elapsed)
	}
	if NewCISCAT(eng, 0).InitCost() != DefaultCISCATInitCost {
		t.Error("default init cost not applied")
	}
}
