package xccdf

import (
	"time"

	"configvalidator/internal/entity"
)

// DefaultCISCATInitCost is the default simulated per-run initialization
// overhead of the CIS-CAT-style engine. The paper (§4.2) attributes
// CIS-CAT's outsized runtime (14.5s vs 0.4–1.9s for the other engines) to
// JVM startup and license checking rather than to XCCDF evaluation itself;
// since this reproduction has no JVM or license server, the overhead is
// simulated as a fixed delay, documented as a substitution in DESIGN.md.
// The value is calibrated so the Table-2 *shape* holds: the paper reports
// CIS-CAT at ~7.5x ConfigValidator (14.5s vs 1.92s); with our Go engines
// completing the 40-rule run in a few hundred microseconds, a 2ms init
// cost lands the ratio in the same band.
const DefaultCISCATInitCost = 2 * time.Millisecond

// CISCAT wraps the XCCDF engine with the simulated initialization cost.
type CISCAT struct {
	engine   *Engine
	initCost time.Duration
}

// NewCISCAT builds the CIS-CAT-style engine; initCost <= 0 selects the
// default.
func NewCISCAT(engine *Engine, initCost time.Duration) *CISCAT {
	if initCost <= 0 {
		initCost = DefaultCISCATInitCost
	}
	return &CISCAT{engine: engine, initCost: initCost}
}

// Evaluate pays the simulated startup cost, then evaluates the benchmark
// exactly as the plain XCCDF engine does.
func (c *CISCAT) Evaluate(ent entity.Entity) []RuleResult {
	time.Sleep(c.initCost)
	return c.engine.Evaluate(ent)
}

// InitCost reports the simulated startup overhead.
func (c *CISCAT) InitCost() time.Duration { return c.initCost }
