package xccdf

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"configvalidator/internal/entity"
)

// RuleResult is the outcome of one XCCDF rule.
type RuleResult struct {
	// RuleID is the XCCDF rule identifier.
	RuleID string
	// Title is the rule title.
	Title string
	// Passed reports compliance.
	Passed bool
	// Err is set when the rule could not be evaluated.
	Err error
}

// Engine evaluates an XCCDF benchmark whose checks reference OVAL
// textfilecontent54 definitions.
type Engine struct {
	docs  *Documents
	regex map[string]*regexp.Regexp
}

// Load parses the benchmark and OVAL documents and indexes them.
func Load(benchXML, ovalXML []byte) (*Engine, error) {
	docs, err := Parse(benchXML, ovalXML)
	if err != nil {
		return nil, err
	}
	return &Engine{docs: docs, regex: make(map[string]*regexp.Regexp)}, nil
}

// RuleCount returns the number of selected rules in the benchmark.
func (e *Engine) RuleCount() int {
	n := 0
	for _, r := range e.docs.Benchmark.Rules {
		if r.Selected {
			n++
		}
	}
	return n
}

// Evaluate runs every selected rule against the entity.
func (e *Engine) Evaluate(ent entity.Entity) []RuleResult {
	out := make([]RuleResult, 0, len(e.docs.Benchmark.Rules))
	for _, rule := range e.docs.Benchmark.Rules {
		if !rule.Selected {
			continue
		}
		res := RuleResult{RuleID: rule.ID, Title: rule.Title}
		def, ok := e.docs.Definition(rule.Check.ContentRef.Name)
		if !ok {
			res.Err = fmt.Errorf("xccdf: rule %s: missing OVAL definition %q", rule.ID, rule.Check.ContentRef.Name)
			out = append(out, res)
			continue
		}
		passed, err := e.evalCriteria(ent, &def.Criteria)
		res.Passed = passed
		res.Err = err
		out = append(out, res)
	}
	return out
}

func (e *Engine) evalCriteria(ent entity.Entity, c *Criteria) (bool, error) {
	op := strings.ToUpper(c.Operator)
	if op == "" {
		op = "AND"
	}
	var values []bool
	for i := range c.Criterias {
		v, err := e.evalCriteria(ent, &c.Criterias[i])
		if err != nil {
			return false, err
		}
		values = append(values, v)
	}
	for _, crit := range c.Criterions {
		v, err := e.evalTest(ent, crit.TestRef)
		if err != nil {
			return false, err
		}
		if crit.Negate {
			v = !v
		}
		values = append(values, v)
	}
	if len(values) == 0 {
		return false, errors.New("xccdf: empty criteria")
	}
	result := op == "AND"
	for _, v := range values {
		if op == "AND" {
			result = result && v
		} else {
			result = result || v
		}
	}
	if c.Negate {
		result = !result
	}
	return result, nil
}

// evalTest evaluates a textfilecontent54 test: collect items via the
// object's pattern, apply existence semantics, then state checks.
func (e *Engine) evalTest(ent entity.Entity, testRef string) (bool, error) {
	test, ok := e.docs.Test(testRef)
	if !ok {
		return false, fmt.Errorf("xccdf: missing test %q", testRef)
	}
	obj, ok := e.docs.Object(test.Object.Ref)
	if !ok {
		return false, fmt.Errorf("xccdf: test %s: missing object %q", test.ID, test.Object.Ref)
	}
	items, err := e.collect(ent, obj)
	if err != nil {
		return false, err
	}
	switch test.CheckExistence {
	case "none_exist":
		return len(items) == 0, nil
	case "", "at_least_one_exists":
		if len(items) == 0 {
			return false, nil
		}
	case "any_exist":
		// No existence requirement.
	default:
		return false, fmt.Errorf("xccdf: test %s: unsupported check_existence %q", test.ID, test.CheckExistence)
	}
	if len(test.States) == 0 {
		return true, nil
	}
	mode := strings.ToLower(test.Check)
	if mode == "" {
		mode = "all"
	}
	satisfied := 0
	for _, item := range items {
		ok, err := e.itemSatisfiesStates(item, test.States)
		if err != nil {
			return false, err
		}
		if ok {
			satisfied++
		}
	}
	switch mode {
	case "all":
		return satisfied == len(items), nil
	case "at least one":
		return satisfied > 0, nil
	default:
		return false, fmt.Errorf("xccdf: test %s: unsupported check %q", test.ID, test.Check)
	}
}

// collect gathers the first-capture-group values of every line matching
// the object's pattern.
func (e *Engine) collect(ent entity.Entity, obj *TFC54Object) ([]string, error) {
	if op := obj.Pattern.Operation; op != "" && op != "pattern match" {
		return nil, fmt.Errorf("xccdf: object %s: unsupported pattern operation %q", obj.ID, op)
	}
	re, err := e.compile(strings.TrimSpace(obj.Pattern.Value))
	if err != nil {
		return nil, fmt.Errorf("xccdf: object %s: %w", obj.ID, err)
	}
	content, err := ent.ReadFile(obj.Filepath)
	if err != nil {
		if errors.Is(err, entity.ErrNotExist) {
			return nil, nil // no file, no items
		}
		return nil, err
	}
	var items []string
	for _, line := range strings.Split(string(content), "\n") {
		m := re.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if len(m) > 1 {
			items = append(items, m[1])
		} else {
			items = append(items, m[0])
		}
	}
	return items, nil
}

func (e *Engine) itemSatisfiesStates(item string, refs []StateRef) (bool, error) {
	for _, ref := range refs {
		state, ok := e.docs.State(ref.Ref)
		if !ok {
			return false, fmt.Errorf("xccdf: missing state %q", ref.Ref)
		}
		if state.Subexpression == nil {
			continue
		}
		want := strings.TrimSpace(state.Subexpression.Value)
		switch op := state.Subexpression.Operation; op {
		case "", "equals":
			if item != want {
				return false, nil
			}
		case "not equal":
			if item == want {
				return false, nil
			}
		case "pattern match":
			re, err := e.compile(want)
			if err != nil {
				return false, fmt.Errorf("xccdf: state %s: %w", state.ID, err)
			}
			if !re.MatchString(item) {
				return false, nil
			}
		default:
			return false, fmt.Errorf("xccdf: state %s: unsupported operation %q", state.ID, op)
		}
	}
	return true, nil
}

func (e *Engine) compile(pattern string) (*regexp.Regexp, error) {
	if re, ok := e.regex[pattern]; ok {
		return re, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	e.regex[pattern] = re
	return re, nil
}
