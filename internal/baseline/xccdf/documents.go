package xccdf

import (
	"encoding/xml"
	"fmt"
)

// Documents is a parsed, indexed pair of XCCDF benchmark and OVAL
// definitions documents, usable by both the evaluation engine and external
// consumers (such as the XCCDF→CVL importer).
type Documents struct {
	// Benchmark is the XCCDF document.
	Benchmark *Benchmark
	// Oval is the OVAL definitions document.
	Oval *OvalDefinitions

	defs   map[string]*Definition
	tests  map[string]*TFC54Test
	objs   map[string]*TFC54Object
	states map[string]*TFC54State
}

// Parse decodes and indexes the two XML documents.
func Parse(benchXML, ovalXML []byte) (*Documents, error) {
	var bench Benchmark
	if err := xml.Unmarshal(benchXML, &bench); err != nil {
		return nil, fmt.Errorf("xccdf: parse benchmark: %w", err)
	}
	var oval OvalDefinitions
	if err := xml.Unmarshal(ovalXML, &oval); err != nil {
		return nil, fmt.Errorf("xccdf: parse oval: %w", err)
	}
	d := &Documents{
		Benchmark: &bench,
		Oval:      &oval,
		defs:      make(map[string]*Definition, len(oval.Definitions)),
		tests:     make(map[string]*TFC54Test, len(oval.Tests)),
		objs:      make(map[string]*TFC54Object, len(oval.Objects)),
		states:    make(map[string]*TFC54State, len(oval.States)),
	}
	for i := range oval.Definitions {
		d.defs[oval.Definitions[i].ID] = &oval.Definitions[i]
	}
	for i := range oval.Tests {
		d.tests[oval.Tests[i].ID] = &oval.Tests[i]
	}
	for i := range oval.Objects {
		d.objs[oval.Objects[i].ID] = &oval.Objects[i]
	}
	for i := range oval.States {
		d.states[oval.States[i].ID] = &oval.States[i]
	}
	return d, nil
}

// Definition looks up an OVAL definition by id.
func (d *Documents) Definition(id string) (*Definition, bool) {
	out, ok := d.defs[id]
	return out, ok
}

// Test looks up an OVAL test by id.
func (d *Documents) Test(id string) (*TFC54Test, bool) {
	out, ok := d.tests[id]
	return out, ok
}

// Object looks up an OVAL object by id.
func (d *Documents) Object(id string) (*TFC54Object, bool) {
	out, ok := d.objs[id]
	return out, ok
}

// State looks up an OVAL state by id.
func (d *Documents) State(id string) (*TFC54State, bool) {
	out, ok := d.states[id]
	return out, ok
}
