package baseline

import (
	"strings"
	"testing"
)

func TestCIS40Composition(t *testing.T) {
	specs := CIS40()
	if len(specs) != 40 {
		t.Fatalf("specs = %d, want 40 (Table 2 workload)", len(specs))
	}
	byFile := make(map[string]int)
	ids := make(map[string]bool)
	for _, s := range specs {
		byFile[s.FilePath]++
		if ids[s.ID] {
			t.Errorf("duplicate spec id %s", s.ID)
		}
		ids[s.ID] = true
		if s.Pattern == "" || s.Expect == "" || s.CVLTarget == "" || s.CVLRule == "" {
			t.Errorf("spec %s incomplete: %+v", s.ID, s)
		}
	}
	wants := map[string]int{
		"/etc/ssh/sshd_config":     15,
		"/etc/sysctl.conf":         15,
		"/etc/audit/audit.rules":   5,
		"/etc/fstab":               3,
		"/etc/modprobe.d/cis.conf": 2,
	}
	for file, want := range wants {
		if byFile[file] != want {
			t.Errorf("%s checks = %d, want %d", file, byFile[file], want)
		}
	}
}

func TestCVLRuleReferencesExist(t *testing.T) {
	// Every spec must reference a real rule in the built-in library so
	// the Table-2 comparison runs identical checks per engine. Verified
	// via name lookup in the baseline-to-CVL map used by the harness;
	// here we check target names are among the known system targets.
	valid := map[string]bool{"sshd": true, "sysctl": true, "audit": true, "fstab": true, "modprobe": true}
	for _, s := range CIS40() {
		if !valid[s.CVLTarget] {
			t.Errorf("spec %s references unknown CVL target %q", s.ID, s.CVLTarget)
		}
	}
}

func TestHelperEscapes(t *testing.T) {
	if got := regexpEscapeDots("net.ipv4.ip_forward"); got != `net\.ipv4\.ip_forward` {
		t.Errorf("escape = %q", got)
	}
	if got := dotsToSlashes("net.ipv4.ip_forward"); got != "net/ipv4/ip_forward" {
		t.Errorf("slashes = %q", got)
	}
	for _, s := range CIS40() {
		if strings.Contains(s.CVLRule, "\\") {
			t.Errorf("spec %s CVL rule contains escapes: %q", s.ID, s.CVLRule)
		}
	}
}
