package scriptcheck

import (
	"strings"
	"testing"

	"configvalidator/internal/baseline"
	"configvalidator/internal/entity"
	"configvalidator/internal/fixtures"
)

func TestRunOnCleanAndDirtyHosts(t *testing.T) {
	checks := FromSpecs(baseline.CIS40())
	eng := New()

	clean, _ := fixtures.SystemHost("clean", fixtures.Profile{Seed: 1})
	for _, o := range eng.Run(clean, checks) {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Check.ID, o.Err)
		}
		if !o.Passed {
			t.Errorf("%s failed on clean host (found %q)", o.Check.ID, o.Found)
		}
	}

	dirty, _ := fixtures.SystemHost("dirty", fixtures.Profile{Seed: 2, MisconfigRate: 1.0})
	failed := 0
	for _, o := range eng.Run(dirty, checks) {
		if o.Err != nil {
			t.Errorf("%s: %v", o.Check.ID, o.Err)
		}
		if !o.Passed {
			failed++
		}
	}
	if failed < 30 {
		t.Errorf("dirty host failed only %d/40 script checks", failed)
	}
}

func TestMissingFileSemantics(t *testing.T) {
	empty := entity.NewMem("empty", entity.TypeHost)
	strict := Check{ID: "x", File: "/etc/nope", Grep: `^Key\s+(\S+)`, Expect: "^v$"}
	lenient := strict
	lenient.MissingOK = true
	eng := New()
	if out := eng.Run(empty, []Check{strict}); out[0].Passed || out[0].Err != nil {
		t.Errorf("strict missing file: %+v", out[0])
	}
	if out := eng.Run(empty, []Check{lenient}); !out[0].Passed {
		t.Errorf("lenient missing file: %+v", out[0])
	}
}

func TestFirstMatchWins(t *testing.T) {
	// grep | head -1 semantics: only the first matching line counts.
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/app.conf", []byte("Key good\nKey bad\n"))
	c := Check{ID: "x", File: "/etc/app.conf", Grep: `^Key\s+(\S+)`, Expect: "^good$"}
	out := New().Run(m, []Check{c})
	if !out[0].Passed || out[0].Found != "good" {
		t.Errorf("first-match = %+v", out[0])
	}
}

func TestMissingKeySemantics(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/app.conf", []byte("Other x\n"))
	c := Check{ID: "x", File: "/etc/app.conf", Grep: `^Key\s+(\S+)`, Expect: "^v$"}
	if out := New().Run(m, []Check{c}); out[0].Passed {
		t.Error("missing key should fail a strict check")
	}
	c.MissingOK = true
	if out := New().Run(m, []Check{c}); !out[0].Passed {
		t.Error("missing key should pass a MissingOK check")
	}
}

func TestBadRegexSurfacesError(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/f", []byte("x\n"))
	for _, c := range []Check{
		{ID: "badgrep", File: "/f", Grep: "(unclosed", Expect: "x"},
		{ID: "badexpect", File: "/f", Grep: "(x)", Expect: "(unclosed"},
	} {
		out := New().Run(m, []Check{c})
		if out[0].Err == nil {
			t.Errorf("%s: expected error", c.ID)
		}
	}
}

func TestRenderShape(t *testing.T) {
	c := FromSpec(baseline.CIS40()[0])
	rendered := Render(c)
	for _, want := range []string{"control", "describe bash(", "grep -E", "head -1", "should match"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered check missing %q:\n%s", want, rendered)
		}
	}
	// The paper's observed Inspec encoding is ~7 lines.
	lines := strings.Count(strings.TrimSpace(rendered), "\n") + 1
	if lines < 6 || lines > 9 {
		t.Errorf("rendered check = %d lines, expected ~7 (Listing 6)", lines)
	}
}
