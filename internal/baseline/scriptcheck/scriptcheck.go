// Package scriptcheck implements the script-based validation baseline of
// the paper's Table-2 comparison: the "Observed" Chef Inspec encoding,
// where each CIS check boils down to a bash grep pipeline
//
//	grep '^\s*PermitRootLogin\s' /etc/ssh/sshd_config | head -1
//
// followed by a capture and string comparison (Listing 6, bottom). The Go
// engine reproduces that execution model faithfully: each check
// independently re-reads and re-scans its target file and re-compiles its
// expressions, exactly as a per-check shell pipeline would — no shared
// normalization step, which is the architectural difference the paper
// highlights against ConfigValidator.
package scriptcheck

import (
	"errors"
	"fmt"
	"regexp"
	"strings"

	"configvalidator/internal/baseline"
	"configvalidator/internal/entity"
)

// Check is one script-style check: grep, head -1, extract, compare.
type Check struct {
	// ID and Title identify the check.
	ID    string
	Title string
	// File is the file the pipeline greps.
	File string
	// Grep is the line pattern (the grep stage).
	Grep string
	// Expect is the regex the first capture of Grep must match.
	Expect string
	// MissingOK passes the check when grep finds nothing.
	MissingOK bool
}

// FromSpec derives the script encoding of a neutral check spec.
func FromSpec(s baseline.CheckSpec) Check {
	return Check{
		ID:        s.ID,
		Title:     s.Title,
		File:      s.FilePath,
		Grep:      s.Pattern,
		Expect:    s.Expect,
		MissingOK: s.MissingOK,
	}
}

// FromSpecs derives script encodings for a spec list.
func FromSpecs(specs []baseline.CheckSpec) []Check {
	out := make([]Check, len(specs))
	for i, s := range specs {
		out[i] = FromSpec(s)
	}
	return out
}

// Outcome is one check result.
type Outcome struct {
	Check  Check
	Passed bool
	// Found is the extracted value, empty when the grep matched nothing.
	Found string
	// Err is set when the check could not run (bad regex).
	Err error
}

// Engine runs script checks against entities.
type Engine struct{}

// New creates a script-check engine.
func New() *Engine { return &Engine{} }

// Run executes every check independently, mirroring one shell pipeline per
// control. Regexes are deliberately compiled per execution: that is the
// cost model of spawning grep per check.
func (e *Engine) Run(ent entity.Entity, checks []Check) []Outcome {
	out := make([]Outcome, 0, len(checks))
	for _, c := range checks {
		out = append(out, e.runOne(ent, c))
	}
	return out
}

func (e *Engine) runOne(ent entity.Entity, c Check) Outcome {
	o := Outcome{Check: c}
	grep, err := regexp.Compile(c.Grep)
	if err != nil {
		o.Err = fmt.Errorf("scriptcheck %s: grep pattern: %w", c.ID, err)
		return o
	}
	expect, err := regexp.Compile(c.Expect)
	if err != nil {
		o.Err = fmt.Errorf("scriptcheck %s: expect pattern: %w", c.ID, err)
		return o
	}
	content, err := ent.ReadFile(c.File)
	if err != nil {
		if errors.Is(err, entity.ErrNotExist) {
			o.Passed = c.MissingOK
			return o
		}
		o.Err = fmt.Errorf("scriptcheck %s: %w", c.ID, err)
		return o
	}
	// grep | head -1: first matching line only.
	for _, line := range strings.Split(string(content), "\n") {
		m := grep.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if len(m) > 1 {
			o.Found = m[1]
		} else {
			o.Found = m[0]
		}
		o.Passed = expect.MatchString(o.Found)
		return o
	}
	o.Passed = c.MissingOK
	return o
}

// Render returns the bash-style encoding of a check, used by the
// Listing-6 encoding-size comparison. The shape follows the paper's
// "Chef Inspec: Ruby (Observed)" listing.
func Render(c Check) string {
	var b strings.Builder
	fmt.Fprintf(&b, "control %q do\n", c.ID)
	fmt.Fprintf(&b, "  title %q\n", c.Title)
	b.WriteString("  impact 1.0\n")
	fmt.Fprintf(&b, "  describe bash(\"grep -E '%s' %s | head -1\").stdout.to_s.[](/%s/, 1) do\n",
		c.Grep, c.File, c.Grep)
	fmt.Fprintf(&b, "    it { should match(/%s/) }\n", c.Expect)
	b.WriteString("  end\nend\n")
	return b.String()
}
