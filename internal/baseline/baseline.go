// Package baseline defines the neutral specification of the "40 CIS rules
// common to ConfigValidator, Chef Inspec and CIS-CAT" used by the paper's
// Table-2 comparison (§4.2). Each CheckSpec describes one check in an
// engine-independent way; the scriptcheck engine (Inspec-observed style),
// the xccdf engine (OpenSCAP/CIS-CAT style), and the CVL rule library each
// provide their native encoding of the same checks.
package baseline

// CheckSpec is one engine-independent check over a line-oriented
// configuration file.
type CheckSpec struct {
	// ID is a stable check identifier, e.g. "cis_5.2.8_sshd_permitrootlogin".
	ID string
	// Title is the human-readable check title.
	Title string
	// FilePath is the file inside the entity to scan.
	FilePath string
	// Pattern is a line regex whose first capture group extracts the
	// configured value.
	Pattern string
	// Expect is the regex the captured value must match for a pass.
	Expect string
	// MissingOK makes the check pass when no line matches Pattern
	// (secure-by-default parameters).
	MissingOK bool
	// CVLTarget and CVLRule reference the equivalent rule in the built-in
	// CVL library (target name and rule name), keeping the three engines'
	// encodings aligned.
	CVLTarget string
	// CVLRule is the rule name within CVLTarget.
	CVLRule string
}

// CIS40 returns the 40 system-service checks of the Table-2 workload:
// 15 sshd, 15 sysctl, 5 audit, 3 fstab, 2 modprobe.
func CIS40() []CheckSpec {
	var out []CheckSpec
	sshd := func(id, key, expect string, missingOK bool) {
		out = append(out, CheckSpec{
			ID:        "cis_sshd_" + id,
			Title:     "sshd: " + key,
			FilePath:  "/etc/ssh/sshd_config",
			Pattern:   `^\s*` + key + `\s+(.+?)\s*$`,
			Expect:    expect,
			MissingOK: missingOK,
			CVLTarget: "sshd",
			CVLRule:   key,
		})
	}
	sshd("permitrootlogin", "PermitRootLogin", "^no$", false)
	sshd("protocol", "Protocol", "^2$", true)
	sshd("x11forwarding", "X11Forwarding", "^no$", false)
	sshd("maxauthtries", "MaxAuthTries", "^[1-4]$", false)
	sshd("ignorerhosts", "IgnoreRhosts", "^yes$", true)
	sshd("hostbasedauth", "HostbasedAuthentication", "^no$", true)
	sshd("permitemptypasswords", "PermitEmptyPasswords", "^no$", true)
	sshd("permituserenvironment", "PermitUserEnvironment", "^no$", true)
	sshd("clientaliveinterval", "ClientAliveInterval", "^([1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300)$", false)
	sshd("clientalivecountmax", "ClientAliveCountMax", "^[0-3]$", true)
	sshd("logingracetime", "LoginGraceTime", "^([1-9]|[1-5][0-9]|60)$", false)
	sshd("usepam", "UsePAM", "^yes$", true)
	sshd("allowtcpforwarding", "AllowTcpForwarding", "^no$", false)
	sshd("loglevel", "LogLevel", "^(INFO|VERBOSE)$", true)
	sshd("banner", "Banner", `^\S+$`, false)

	sysctl := func(id, key, expect string) {
		out = append(out, CheckSpec{
			ID:        "cis_sysctl_" + id,
			Title:     "sysctl: " + key,
			FilePath:  "/etc/sysctl.conf",
			Pattern:   `^\s*` + regexpEscapeDots(key) + `\s*=\s*(\S+)`,
			Expect:    expect,
			CVLTarget: "sysctl",
			CVLRule:   dotsToSlashes(key),
		})
	}
	sysctl("ip_forward", "net.ipv4.ip_forward", "^0$")
	sysctl("all_send_redirects", "net.ipv4.conf.all.send_redirects", "^0$")
	sysctl("default_send_redirects", "net.ipv4.conf.default.send_redirects", "^0$")
	sysctl("all_accept_source_route", "net.ipv4.conf.all.accept_source_route", "^0$")
	sysctl("all_accept_redirects", "net.ipv4.conf.all.accept_redirects", "^0$")
	sysctl("all_secure_redirects", "net.ipv4.conf.all.secure_redirects", "^0$")
	sysctl("all_log_martians", "net.ipv4.conf.all.log_martians", "^1$")
	sysctl("icmp_echo_ignore_broadcasts", "net.ipv4.icmp_echo_ignore_broadcasts", "^1$")
	sysctl("icmp_ignore_bogus", "net.ipv4.icmp_ignore_bogus_error_responses", "^1$")
	sysctl("all_rp_filter", "net.ipv4.conf.all.rp_filter", "^1$")
	sysctl("default_rp_filter", "net.ipv4.conf.default.rp_filter", "^1$")
	sysctl("tcp_syncookies", "net.ipv4.tcp_syncookies", "^1$")
	sysctl("ipv6_accept_ra", "net.ipv6.conf.all.accept_ra", "^0$")
	sysctl("randomize_va_space", "kernel.randomize_va_space", "^2$")
	sysctl("suid_dumpable", "fs.suid_dumpable", "^0$")

	auditWatch := func(id, path, cvlRule string) {
		out = append(out, CheckSpec{
			ID:        "cis_audit_" + id,
			Title:     "audit: watch " + path,
			FilePath:  "/etc/audit/audit.rules",
			Pattern:   `^-w\s+(` + path + `)\s`,
			Expect:    "^" + path + "$",
			CVLTarget: "audit",
			CVLRule:   cvlRule,
		})
	}
	auditWatch("passwd", "/etc/passwd", "audit_identity_passwd")
	auditWatch("group", "/etc/group", "audit_identity_group")
	auditWatch("shadow", "/etc/shadow", "audit_identity_shadow")
	auditWatch("sudoers", "/etc/sudoers", "audit_sudoers")
	out = append(out, CheckSpec{
		ID:        "cis_audit_time_change",
		Title:     "audit: time-change syscalls",
		FilePath:  "/etc/audit/audit.rules",
		Pattern:   `^-a\s+always,exit\s+.*-k\s+(time-change)`,
		Expect:    "^time-change$",
		CVLTarget: "audit",
		CVLRule:   "audit_time_change",
	})

	fstab := func(id, dir, cvlRule string) {
		out = append(out, CheckSpec{
			ID:        "cis_fstab_" + id,
			Title:     "fstab: " + dir + " on a separate partition",
			FilePath:  "/etc/fstab",
			Pattern:   `^\S+\s+(` + dir + `)\s`,
			Expect:    "^" + dir + "$",
			CVLTarget: "fstab",
			CVLRule:   cvlRule,
		})
	}
	fstab("tmp", "/tmp", "check_tmp_separate_partition")
	fstab("var", "/var", "check_var_separate_partition")
	fstab("home", "/home", "check_home_separate_partition")

	modprobe := func(id, module, cvlRule string) {
		out = append(out, CheckSpec{
			ID:        "cis_modprobe_" + id,
			Title:     "modprobe: disable " + module,
			FilePath:  "/etc/modprobe.d/cis.conf",
			Pattern:   `^install\s+` + module + `\s+(\S+)`,
			Expect:    `^/bin/true$`,
			CVLTarget: "modprobe",
			CVLRule:   cvlRule,
		})
	}
	modprobe("cramfs", "cramfs", "disable_cramfs")
	modprobe("usb_storage", "usb-storage", "disable_usb_storage")

	return out
}

func regexpEscapeDots(s string) string {
	out := make([]byte, 0, len(s)+8)
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}

func dotsToSlashes(s string) string {
	out := []byte(s)
	for i := range out {
		if out[i] == '.' {
			out[i] = '/'
		}
	}
	return string(out)
}
