package dockersim

import (
	"errors"
	"strings"
	"testing"

	"configvalidator/internal/entity"
)

const demoDockerfile = `
# Web frontend image
FROM ubuntu:16.04
COPY nginx.conf /etc/nginx/nginx.conf
COPY --chown=33:33 --chmod=640 site.conf /etc/nginx/sites-enabled/
RUN apt-get install -y nginx=1.10.3 curl=7.47.0
RUN rm /etc/fstab
ENV MODE=production REGION=us-south
EXPOSE 443/tcp 8080
USER app
HEALTHCHECK CMD curl -f http://localhost/ || exit 1
LABEL maintainer="ops" tier="frontend"
CMD ["/usr/sbin/nginx", "-g", "daemon off;"]
`

func demoContext() BuildContext {
	return BuildContext{
		"nginx.conf": []byte("user www-data;\n"),
		"site.conf":  []byte("server {\n    listen 443 ssl;\n}\n"),
	}
}

func resolver(t *testing.T) BaseResolver {
	t.Helper()
	reg := NewRegistry()
	reg.Push(BaseUbuntu(testTime))
	return reg.Pull
}

func TestParseDockerfile(t *testing.T) {
	img, err := ParseDockerfile("web", "v1", demoDockerfile, demoContext(), resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	ent := img.Entity()

	// COPY with defaults.
	data, err := ent.ReadFile("/etc/nginx/nginx.conf")
	if err != nil || string(data) != "user www-data;\n" {
		t.Errorf("nginx.conf = %q, %v", data, err)
	}
	// COPY --chown/--chmod into a directory destination.
	fi, err := ent.Stat("/etc/nginx/sites-enabled/site.conf")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Perm() != 0o640 || fi.Ownership() != "33:33" {
		t.Errorf("site.conf metadata = %04o %s", fi.Perm(), fi.Ownership())
	}
	// RUN apt-get install.
	db, err := ent.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := db.Get("nginx"); !ok || p.Version != "1.10.3" {
		t.Errorf("nginx pkg = %+v ok=%v", p, ok)
	}
	// Base image package retained.
	if _, ok := db.Get("openssh-server"); !ok {
		t.Error("base package lost")
	}
	// RUN rm produced a whiteout over the base file.
	if _, err := ent.ReadFile("/etc/fstab"); !errors.Is(err, entity.ErrNotExist) {
		t.Error("RUN rm did not remove /etc/fstab")
	}
	// Image config.
	out, err := ent.RunFeature("docker.image_config")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"User app", "ExposedPort 443/tcp", "ExposedPort 8080/tcp",
		"Env MODE=production", "Env REGION=us-south", "Healthcheck curl -f",
		"Cmd /usr/sbin/nginx -g daemon off;"} {
		if !strings.Contains(out, want) {
			t.Errorf("image_config missing %q:\n%s", want, out)
		}
	}
	if img.Config.Labels["tier"] != "frontend" {
		t.Errorf("labels = %v", img.Config.Labels)
	}
}

func TestParseDockerfileScratchAndLegacyEnv(t *testing.T) {
	df := "FROM scratch\nENV LEGACY some value with spaces\n"
	img, err := ParseDockerfile("minimal", "v1", df, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Config.Env) != 1 || img.Config.Env[0] != "LEGACY=some value with spaces" {
		t.Errorf("env = %v", img.Config.Env)
	}
}

func TestParseDockerfileContinuations(t *testing.T) {
	df := "FROM scratch\nENV A=1 \\\n    B=2\n"
	img, err := ParseDockerfile("x", "v1", df, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.Config.Env) != 2 {
		t.Errorf("env = %v", img.Config.Env)
	}
}

func TestParseDockerfileHealthcheckNone(t *testing.T) {
	img, err := ParseDockerfile("x", "v1", "FROM scratch\nHEALTHCHECK NONE\n", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.Config.Healthcheck != "" {
		t.Errorf("healthcheck = %q", img.Config.Healthcheck)
	}
}

func TestParseDockerfileErrors(t *testing.T) {
	cases := []struct {
		name string
		df   string
		ctx  BuildContext
	}{
		{"unknown instruction", "FROM scratch\nFROBNICATE x\n", nil},
		{"missing base", "FROM ghost:latest\n", nil},
		{"copy outside context", "FROM scratch\nCOPY missing.conf /etc/x\n", BuildContext{}},
		{"copy argument count", "FROM scratch\nCOPY onlyone\n", nil},
		{"unsupported run", "FROM scratch\nRUN make install\n", nil},
		{"empty apt install", "FROM scratch\nRUN apt-get install -y\n", nil},
		{"user arity", "FROM scratch\nUSER a b\n", nil},
		{"bad env", "FROM scratch\nENV =broken noequals\n", nil},
		{"bad label", "FROM scratch\nLABEL notkv\n", nil},
		{"bad chown", "FROM scratch\nCOPY --chown=app:app f /f\n", BuildContext{"f": nil}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseDockerfile("x", "v1", tt.df, tt.ctx, resolver(t)); err == nil {
				t.Errorf("Dockerfile accepted:\n%s", tt.df)
			}
		})
	}
}

func TestParseDockerfileScansLikeBuilderImage(t *testing.T) {
	// The Dockerfile route and the Builder route produce equivalent
	// filesystem state for the same operations.
	df := "FROM ubuntu:16.04\nCOPY nginx.conf /etc/nginx/nginx.conf\n"
	imgA, err := ParseDockerfile("a", "v1", df, demoContext(), resolver(t))
	if err != nil {
		t.Fatal(err)
	}
	imgB := NewBuilder("b", "v1").
		From(BaseUbuntu(testTime)).
		AddFile("/etc/nginx/nginx.conf", demoContext()["nginx.conf"], 0o644).
		Build()
	entA, entB := imgA.Entity(), imgB.Entity()
	for _, path := range entB.Files() {
		da, errA := entA.ReadFile(path)
		db, errB := entB.ReadFile(path)
		if (errA == nil) != (errB == nil) || string(da) != string(db) {
			t.Errorf("file %s differs between build routes", path)
		}
	}
}
