package dockersim

import (
	"fmt"
	"io/fs"
	"strconv"
	"strings"

	"configvalidator/internal/pkgdb"
)

// BuildContext supplies the files a Dockerfile's COPY instructions read,
// keyed by context-relative path.
type BuildContext map[string][]byte

// BaseResolver resolves FROM references to base images (a registry Pull,
// typically).
type BaseResolver func(ref string) (*Image, error)

// ParseDockerfile builds an image from Dockerfile text against a build
// context. Supported instructions (the subset that affects validation):
//
//	FROM <ref>                   resolve via bases (or scratch)
//	COPY <src> <dst>             one layer per instruction
//	COPY --chown=u:g <src> <dst>
//	RUN rm <path>                whiteout layer
//	RUN apt-get install <p>=<v>  package-database layer
//	USER / ENV / EXPOSE / CMD / HEALTHCHECK / LABEL
//
// Unknown instructions are rejected; this is a simulator, and silently
// ignoring an instruction would make scan results lie.
func ParseDockerfile(repository, tag string, dockerfile string, ctx BuildContext, bases BaseResolver) (*Image, error) {
	b := NewBuilder(repository, tag)
	lines := strings.Split(strings.ReplaceAll(dockerfile, "\r\n", "\n"), "\n")
	lineNo := 0
	for i := 0; i < len(lines); i++ {
		lineNo = i + 1
		line := strings.TrimSpace(lines[i])
		for strings.HasSuffix(line, "\\") && i+1 < len(lines) {
			i++
			line = strings.TrimSuffix(line, "\\") + " " + strings.TrimSpace(lines[i])
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		instr := strings.ToUpper(fields[0])
		args := fields[1:]
		rest := strings.TrimSpace(line[len(fields[0]):])
		var err error
		switch instr {
		case "FROM":
			err = applyFrom(b, args, bases)
		case "COPY", "ADD":
			err = applyCopy(b, args, ctx)
		case "RUN":
			err = applyRun(b, args)
		case "USER":
			if len(args) != 1 {
				err = fmt.Errorf("USER takes one argument")
			} else {
				b.User(args[0])
			}
		case "ENV":
			err = applyEnv(b, args)
		case "EXPOSE":
			for _, port := range args {
				if !strings.Contains(port, "/") {
					port += "/tcp"
				}
				b.Expose(port)
			}
		case "CMD":
			b.Cmd(parseExecForm(rest)...)
		case "HEALTHCHECK":
			if len(args) > 0 && strings.EqualFold(args[0], "NONE") {
				b.Healthcheck("")
			} else {
				b.Healthcheck(strings.TrimSpace(strings.TrimPrefix(rest, "CMD")))
			}
		case "LABEL":
			err = applyLabel(b, rest)
		case "WORKDIR", "ENTRYPOINT", "ARG", "STOPSIGNAL", "SHELL", "VOLUME", "MAINTAINER":
			// Accepted no-ops: they don't affect configuration validation.
		default:
			err = fmt.Errorf("unsupported instruction %s", instr)
		}
		if err != nil {
			return nil, fmt.Errorf("dockersim: Dockerfile line %d: %w", lineNo, err)
		}
	}
	return b.Build(), nil
}

func applyFrom(b *Builder, args []string, bases BaseResolver) error {
	if len(args) < 1 {
		return fmt.Errorf("FROM requires an image reference")
	}
	ref := args[0]
	if ref == "scratch" {
		return nil
	}
	if bases == nil {
		return fmt.Errorf("FROM %s: no base resolver provided", ref)
	}
	base, err := bases(ref)
	if err != nil {
		return fmt.Errorf("FROM %s: %w", ref, err)
	}
	b.From(base)
	return nil
}

func applyCopy(b *Builder, args []string, ctx BuildContext) error {
	mode := fs.FileMode(0o644)
	uid, gid := 0, 0
	for len(args) > 0 && strings.HasPrefix(args[0], "--") {
		opt := args[0]
		args = args[1:]
		switch {
		case strings.HasPrefix(opt, "--chown="):
			parts := strings.SplitN(strings.TrimPrefix(opt, "--chown="), ":", 2)
			u, err := strconv.Atoi(parts[0])
			if err != nil {
				return fmt.Errorf("--chown requires numeric ids in the simulator")
			}
			uid, gid = u, u
			if len(parts) == 2 {
				g, err := strconv.Atoi(parts[1])
				if err != nil {
					return fmt.Errorf("--chown requires numeric ids in the simulator")
				}
				gid = g
			}
		case strings.HasPrefix(opt, "--chmod="):
			n, err := strconv.ParseUint(strings.TrimPrefix(opt, "--chmod="), 8, 32)
			if err != nil {
				return fmt.Errorf("--chmod: %v", err)
			}
			mode = fs.FileMode(n)
		default:
			return fmt.Errorf("unsupported COPY option %s", opt)
		}
	}
	if len(args) != 2 {
		return fmt.Errorf("COPY requires exactly <src> <dst> in the simulator")
	}
	src, dst := args[0], args[1]
	content, ok := ctx[src]
	if !ok {
		return fmt.Errorf("COPY %s: not in build context", src)
	}
	if strings.HasSuffix(dst, "/") {
		base := src
		if idx := strings.LastIndexByte(src, '/'); idx >= 0 {
			base = src[idx+1:]
		}
		dst += base
	}
	b.AddFileOwned(dst, content, mode, uid, gid)
	return nil
}

// applyRun supports the two RUN shapes that change validated state.
func applyRun(b *Builder, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("RUN requires a command")
	}
	cmd := strings.Join(args, " ")
	switch {
	case args[0] == "rm":
		for _, target := range args[1:] {
			if strings.HasPrefix(target, "-") {
				continue
			}
			b.Remove(target)
		}
		return nil
	case strings.HasPrefix(cmd, "apt-get install"):
		var pkgs []pkgdb.Package
		for _, spec := range args[2:] {
			if strings.HasPrefix(spec, "-") {
				continue
			}
			name, version := spec, ""
			if idx := strings.IndexByte(spec, '='); idx >= 0 {
				name, version = spec[:idx], spec[idx+1:]
			}
			pkgs = append(pkgs, pkgdb.Package{Name: name, Version: version, Status: "install ok installed"})
		}
		if len(pkgs) == 0 {
			return fmt.Errorf("apt-get install with no packages")
		}
		b.InstallPackages(pkgs...)
		return nil
	default:
		return fmt.Errorf("unsupported RUN command %q (the simulator executes only 'rm' and 'apt-get install')", cmd)
	}
}

func applyEnv(b *Builder, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("ENV requires arguments")
	}
	// ENV KEY=value [KEY=value...] or legacy "ENV KEY value".
	if !strings.Contains(args[0], "=") {
		if len(args) < 2 {
			return fmt.Errorf("ENV %s: missing value", args[0])
		}
		b.Env(args[0] + "=" + strings.Join(args[1:], " "))
		return nil
	}
	for _, kv := range args {
		if !strings.Contains(kv, "=") {
			return fmt.Errorf("ENV entry %q is not KEY=value", kv)
		}
		b.Env(kv)
	}
	return nil
}

func applyLabel(b *Builder, rest string) error {
	for _, kv := range strings.Fields(rest) {
		idx := strings.IndexByte(kv, '=')
		if idx <= 0 {
			return fmt.Errorf("LABEL entry %q is not key=value", kv)
		}
		b.Label(strings.Trim(kv[:idx], `"`), strings.Trim(kv[idx+1:], `"`))
	}
	return nil
}

// parseExecForm handles CMD ["a", "b"] and shell-form CMD a b.
func parseExecForm(rest string) []string {
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "[") && strings.HasSuffix(rest, "]") {
		inner := rest[1 : len(rest)-1]
		var out []string
		for _, part := range strings.Split(inner, ",") {
			out = append(out, strings.Trim(strings.TrimSpace(part), `"`))
		}
		return out
	}
	return strings.Fields(rest)
}
