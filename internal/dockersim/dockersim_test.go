package dockersim

import (
	"errors"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

var testTime = time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)

func TestUnionLastLayerWins(t *testing.T) {
	img := NewBuilder("app", "v1").
		AddFile("/etc/app.conf", []byte("version=1\n"), 0o644).
		AddFile("/etc/app.conf", []byte("version=2\n"), 0o600).
		Build()
	m := img.Entity()
	data, err := m.ReadFile("/etc/app.conf")
	if err != nil || string(data) != "version=2\n" {
		t.Errorf("content = %q, %v", data, err)
	}
	fi, err := m.Stat("/etc/app.conf")
	if err != nil || fi.Perm() != 0o600 {
		t.Errorf("upper layer mode = %o, %v", fi.Perm(), err)
	}
}

func TestWhiteoutRemovesLowerFile(t *testing.T) {
	img := NewBuilder("app", "v1").
		AddFile("/etc/secret.key", []byte("sssh"), 0o600).
		Remove("/etc/secret.key").
		Build()
	m := img.Entity()
	if _, err := m.ReadFile("/etc/secret.key"); !errors.Is(err, entity.ErrNotExist) {
		t.Errorf("whiteout did not remove file: %v", err)
	}
}

func TestFileReappearsAfterWhiteout(t *testing.T) {
	img := NewBuilder("app", "v1").
		AddFile("/etc/a", []byte("1"), 0o644).
		Remove("/etc/a").
		AddFile("/etc/a", []byte("2"), 0o644).
		Build()
	data, err := img.Entity().ReadFile("/etc/a")
	if err != nil || string(data) != "2" {
		t.Errorf("re-added file = %q, %v", data, err)
	}
}

func TestOpaqueDirectoryHidesLowerContent(t *testing.T) {
	lower := Layer{
		CreatedBy: "lower",
		Entries: []FileEntry{
			{Path: "/opt/app/old1.conf", Data: []byte("x"), Mode: 0o644},
			{Path: "/opt/app/old2.conf", Data: []byte("y"), Mode: 0o644},
			{Path: "/opt/other/keep.conf", Data: []byte("z"), Mode: 0o644},
		},
	}
	upper := Layer{
		CreatedBy: "upper",
		Entries: []FileEntry{
			{Path: "/opt/app", Opaque: true, Mode: 0o755},
			{Path: "/opt/app/new.conf", Data: []byte("n"), Mode: 0o644},
		},
	}
	img := &Image{Repository: "a", Tag: "b", Layers: []Layer{lower, upper}}
	m := img.Entity()
	if _, err := m.ReadFile("/opt/app/old1.conf"); !errors.Is(err, entity.ErrNotExist) {
		t.Error("opaque dir should hide old1.conf")
	}
	if _, err := m.ReadFile("/opt/app/new.conf"); err != nil {
		t.Errorf("new.conf missing: %v", err)
	}
	if _, err := m.ReadFile("/opt/other/keep.conf"); err != nil {
		t.Errorf("sibling dir affected: %v", err)
	}
}

func TestPackageAccumulation(t *testing.T) {
	img := NewBuilder("app", "v1").
		InstallPackages(pkgdb.Package{Name: "nginx", Version: "1.10.0"}).
		InstallPackages(pkgdb.Package{Name: "curl", Version: "7.47.0"}).
		InstallPackages(pkgdb.Package{Name: "nginx", Version: "1.10.3"}). // upgrade
		Build()
	db, err := img.Entity().Packages()
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Errorf("packages = %d", db.Len())
	}
	if p, _ := db.Get("nginx"); p.Version != "1.10.3" {
		t.Errorf("nginx version = %s", p.Version)
	}
}

func TestImageConfigFeature(t *testing.T) {
	img := NewBuilder("web", "v2").
		User("app").
		Env("MODE=prod").
		Expose("443/tcp").
		Cmd("/usr/sbin/nginx", "-g", "daemon off;").
		Healthcheck("curl -f http://localhost/ || exit 1").
		Label("maintainer", "ops").
		Build()
	out, err := img.Entity().RunFeature("docker.image_config")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"User app", "ExposedPort 443/tcp", "Env MODE=prod", "Healthcheck curl"} {
		if !strings.Contains(out, want) {
			t.Errorf("image_config missing %q:\n%s", want, out)
		}
	}
	rootImg := NewBuilder("web", "v3").Build()
	out, _ = rootImg.Entity().RunFeature("docker.image_config")
	if !strings.Contains(out, "User root") || !strings.Contains(out, "Healthcheck none") {
		t.Errorf("defaults missing:\n%s", out)
	}
}

func TestImageIDDeterministicAndSensitive(t *testing.T) {
	build := func(content string) *Image {
		return NewBuilder("a", "1").AddFile("/f", []byte(content), 0o644).Build()
	}
	if build("x").ID() != build("x").ID() {
		t.Error("same inputs produced different IDs")
	}
	if build("x").ID() == build("y").ID() {
		t.Error("different content produced same ID")
	}
	withUser := NewBuilder("a", "1").AddFile("/f", []byte("x"), 0o644).User("app").Build()
	if build("x").ID() == withUser.ID() {
		t.Error("config change did not change ID")
	}
	if !strings.HasPrefix(build("x").ID(), "sha256:") {
		t.Error("ID should be sha256-prefixed")
	}
}

func TestBuilderFromInheritsAndIsolates(t *testing.T) {
	base := BaseUbuntu(testTime)
	child := NewBuilder("app", "v1").
		From(base).
		AddFile("/etc/nginx/nginx.conf", []byte("user www-data;\n"), 0o644).
		Env("CHILD=1").
		Build()
	if len(child.Layers) != len(base.Layers)+1 {
		t.Errorf("child layers = %d", len(child.Layers))
	}
	// Base files visible through the child.
	if _, err := child.Entity().ReadFile("/etc/passwd"); err != nil {
		t.Errorf("base file missing: %v", err)
	}
	// Mutating child config must not affect the base image.
	if len(base.Config.Env) != 0 {
		t.Errorf("base env mutated: %v", base.Config.Env)
	}
}

func TestContainerRWLayer(t *testing.T) {
	base := BaseUbuntu(testTime)
	c := NewContainer("c1", base)
	c.WriteFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\n"), 0o600)
	c.DeleteFile("/etc/fstab")
	m := c.Entity()

	data, err := m.ReadFile("/etc/ssh/sshd_config")
	if err != nil || !strings.Contains(string(data), "yes") {
		t.Errorf("rw overwrite = %q, %v", data, err)
	}
	if _, err := m.ReadFile("/etc/fstab"); !errors.Is(err, entity.ErrNotExist) {
		t.Error("rw whiteout failed")
	}
	// The image itself is untouched.
	imgData, err := base.Entity().ReadFile("/etc/ssh/sshd_config")
	if err != nil || strings.Contains(string(imgData), "yes") {
		t.Errorf("image mutated: %q, %v", imgData, err)
	}
}

func TestContainerInspectFeature(t *testing.T) {
	base := BaseUbuntu(testTime)
	c := NewContainer("c-prod-1", base)
	c.State = StateRunning
	c.Privileged = true
	c.HostNetwork = true
	c.Mounts = []string{"/var/run/docker.sock:/var/run/docker.sock"}
	c.SetFeature("mysql.ssl", "have_ssl YES")
	m := c.Entity()
	out, err := m.RunFeature("docker.inspect")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Id c-prod-1", "State running", "Privileged true", "HostNetwork true", "Mount /var/run/docker.sock"} {
		if !strings.Contains(out, want) {
			t.Errorf("inspect missing %q:\n%s", want, out)
		}
	}
	if out, _ := m.RunFeature("mysql.ssl"); out != "have_ssl YES" {
		t.Errorf("custom feature = %q", out)
	}
	if m.Type() != entity.TypeContainer {
		t.Errorf("type = %v", m.Type())
	}
}

func TestContainerDiff(t *testing.T) {
	base := BaseUbuntu(testTime)
	c := NewContainer("c1", base)
	c.WriteFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\n"), 0o600) // modify
	c.WriteFile("/opt/dropped.sh", []byte("#!/bin/sh\n"), 0o755)                // add
	c.DeleteFile("/etc/fstab")                                                  // delete
	c.DeleteFile("/never/existed")                                              // no-op
	c.WriteFile("/opt/dropped.sh", []byte("v2"), 0o755)                         // dedup: same path

	diff := c.Diff()
	if len(diff) != 3 {
		t.Fatalf("diff = %v", diff)
	}
	got := map[string]ChangeKind{}
	for _, ch := range diff {
		got[ch.Path] = ch.Kind
	}
	if got["/etc/ssh/sshd_config"] != ChangeModified {
		t.Errorf("sshd_config = %c", got["/etc/ssh/sshd_config"])
	}
	if got["/opt/dropped.sh"] != ChangeAdded {
		t.Errorf("dropped.sh = %c", got["/opt/dropped.sh"])
	}
	if got["/etc/fstab"] != ChangeDeleted {
		t.Errorf("fstab = %c", got["/etc/fstab"])
	}
	// docker-diff notation.
	if diff[0].String() != "D /etc/fstab" {
		t.Errorf("rendering = %q", diff[0].String())
	}
	// A fresh container has no changes.
	if d := NewContainer("c2", base).Diff(); len(d) != 0 {
		t.Errorf("fresh container diff = %v", d)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	img := BaseUbuntu(testTime)
	r.Push(img)
	got, err := r.Pull("ubuntu:16.04")
	if err != nil || got != img {
		t.Errorf("pull = %v, %v", got, err)
	}
	if _, err := r.Pull("missing:latest"); err == nil {
		t.Error("missing image pulled")
	}
	c, err := r.Run("web-1", "ubuntu:16.04")
	if err != nil || c.State != StateRunning {
		t.Errorf("run = %+v, %v", c, err)
	}
	if _, err := r.Run("web-1", "ubuntu:16.04"); err == nil {
		t.Error("duplicate container id accepted")
	}
	if _, err := r.Run("web-2", "missing:latest"); err == nil {
		t.Error("run from missing image accepted")
	}
	back, err := r.Container("web-1")
	if err != nil || back != c {
		t.Errorf("container lookup = %v, %v", back, err)
	}
	if _, err := r.Container("ghost"); err == nil {
		t.Error("ghost container found")
	}
	if imgs := r.Images(); len(imgs) != 1 || imgs[0] != "ubuntu:16.04" {
		t.Errorf("images = %v", imgs)
	}
	if cs := r.Containers(); len(cs) != 1 || cs[0] != "web-1" {
		t.Errorf("containers = %v", cs)
	}
}

func TestContainerStateString(t *testing.T) {
	if StateCreated.String() != "created" || StateRunning.String() != "running" || StateExited.String() != "exited" {
		t.Error("state names wrong")
	}
	if !strings.Contains(ContainerState(9).String(), "9") {
		t.Error("unknown state should include number")
	}
}

// TestQuickUnionEquivalence checks the union-fs property: materializing N
// layers equals sequentially applying each operation to a single map.
func TestQuickUnionEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	paths := []string{"/a", "/b", "/d/x", "/d/y", "/d/z"}
	for iter := 0; iter < 300; iter++ {
		var layers []Layer
		expect := make(map[string]string)
		numLayers := 1 + r.Intn(4)
		for l := 0; l < numLayers; l++ {
			var layer Layer
			ops := 1 + r.Intn(4)
			for o := 0; o < ops; o++ {
				p := paths[r.Intn(len(paths))]
				switch r.Intn(3) {
				case 0, 1:
					content := strconv.Itoa(r.Intn(100))
					layer.Entries = append(layer.Entries, FileEntry{Path: p, Data: []byte(content), Mode: 0o644})
					expect[p] = content
				case 2:
					layer.Entries = append(layer.Entries, FileEntry{Path: p, Whiteout: true})
					delete(expect, p)
				}
			}
			layers = append(layers, layer)
		}
		img := &Image{Repository: "q", Tag: "t", Layers: layers}
		m := img.Entity()
		for _, p := range paths {
			data, err := m.ReadFile(p)
			want, ok := expect[p]
			if ok {
				if err != nil || string(data) != want {
					t.Fatalf("iter %d: %s = %q (%v), want %q", iter, p, data, err, want)
				}
			} else if err == nil {
				t.Fatalf("iter %d: %s exists (%q), want absent", iter, p, data)
			}
		}
	}
}
