package dockersim

import (
	"io/fs"
	"time"

	"configvalidator/internal/pkgdb"
)

// Builder assembles images layer by layer, in the spirit of a Dockerfile:
// each instruction produces one layer.
type Builder struct {
	img *Image
}

// NewBuilder starts an image build for repository:tag.
func NewBuilder(repository, tag string) *Builder {
	return &Builder{img: &Image{Repository: repository, Tag: tag}}
}

// From copies all layers and config from a base image, like the FROM
// instruction.
func (b *Builder) From(base *Image) *Builder {
	b.img.Layers = append(b.img.Layers, base.Layers...)
	b.img.Config = base.Config
	if base.Config.Labels != nil {
		b.img.Config.Labels = make(map[string]string, len(base.Config.Labels))
		for k, v := range base.Config.Labels {
			b.img.Config.Labels[k] = v
		}
	}
	b.img.Config.Env = append([]string(nil), base.Config.Env...)
	b.img.Config.ExposedPorts = append([]string(nil), base.Config.ExposedPorts...)
	b.img.Config.Cmd = append([]string(nil), base.Config.Cmd...)
	return b
}

// AddFile adds one file in its own layer (like COPY).
func (b *Builder) AddFile(path string, data []byte, mode fs.FileMode) *Builder {
	b.img.Layers = append(b.img.Layers, Layer{
		CreatedBy: "COPY " + path,
		Entries:   []FileEntry{{Path: path, Data: data, Mode: mode}},
	})
	return b
}

// AddFileOwned adds one file with explicit ownership in its own layer.
func (b *Builder) AddFileOwned(path string, data []byte, mode fs.FileMode, uid, gid int) *Builder {
	b.img.Layers = append(b.img.Layers, Layer{
		CreatedBy: "COPY --chown " + path,
		Entries:   []FileEntry{{Path: path, Data: data, Mode: mode, UID: uid, GID: gid}},
	})
	return b
}

// Layer appends a pre-built layer (like a RUN step's filesystem delta).
func (b *Builder) Layer(layer Layer) *Builder {
	b.img.Layers = append(b.img.Layers, layer)
	return b
}

// Remove records a whiteout for path in its own layer (like RUN rm).
func (b *Builder) Remove(path string) *Builder {
	b.img.Layers = append(b.img.Layers, Layer{
		CreatedBy: "RUN rm " + path,
		Entries:   []FileEntry{{Path: path, Whiteout: true}},
	})
	return b
}

// InstallPackages records package installs in their own layer (like RUN
// apt-get install).
func (b *Builder) InstallPackages(pkgs ...pkgdb.Package) *Builder {
	b.img.Layers = append(b.img.Layers, Layer{
		CreatedBy: "RUN apt-get install",
		Packages:  pkgs,
	})
	return b
}

// User sets the image's default user (the USER instruction).
func (b *Builder) User(user string) *Builder {
	b.img.Config.User = user
	return b
}

// Env appends an environment entry (the ENV instruction).
func (b *Builder) Env(kv string) *Builder {
	b.img.Config.Env = append(b.img.Config.Env, kv)
	return b
}

// Expose appends an exposed port like "443/tcp" (the EXPOSE instruction).
func (b *Builder) Expose(port string) *Builder {
	b.img.Config.ExposedPorts = append(b.img.Config.ExposedPorts, port)
	return b
}

// Cmd sets the default command (the CMD instruction).
func (b *Builder) Cmd(argv ...string) *Builder {
	b.img.Config.Cmd = argv
	return b
}

// Healthcheck sets the HEALTHCHECK command.
func (b *Builder) Healthcheck(cmd string) *Builder {
	b.img.Config.Healthcheck = cmd
	return b
}

// Label sets an image label.
func (b *Builder) Label(key, value string) *Builder {
	if b.img.Config.Labels == nil {
		b.img.Config.Labels = make(map[string]string)
	}
	b.img.Config.Labels[key] = value
	return b
}

// Build finalizes and returns the image.
func (b *Builder) Build() *Image {
	return b.img
}

// BaseUbuntu constructs a minimal Ubuntu-like base image with the standard
// system files the Table-1 system-service rules inspect. The modTime stamps
// all files for deterministic image IDs.
func BaseUbuntu(modTime time.Time) *Image {
	passwd := "root:x:0:0:root:/root:/bin/bash\n" +
		"daemon:x:1:1:daemon:/usr/sbin:/usr/sbin/nologin\n" +
		"www-data:x:33:33:www-data:/var/www:/usr/sbin/nologin\n"
	group := "root:x:0:\nshadow:x:42:\nwww-data:x:33:\n"
	base := Layer{
		CreatedBy: "FROM scratch (ubuntu base)",
		Entries: []FileEntry{
			{Path: "/etc/passwd", Data: []byte(passwd), Mode: 0o644, ModTime: modTime},
			{Path: "/etc/group", Data: []byte(group), Mode: 0o644, ModTime: modTime},
			{Path: "/etc/fstab", Data: []byte("/dev/sda1 / ext4 errors=remount-ro 0 1\n"), Mode: 0o644, ModTime: modTime},
			{Path: "/etc/sysctl.conf", Data: []byte("net.ipv4.ip_forward = 0\n"), Mode: 0o644, ModTime: modTime},
			{Path: "/etc/ssh/sshd_config", Data: []byte("Port 22\nPermitRootLogin no\nProtocol 2\n"), Mode: 0o600, ModTime: modTime},
		},
		Packages: []pkgdb.Package{
			{Name: "base-files", Version: "9.4ubuntu4", Architecture: "amd64", Status: "install ok installed"},
			{Name: "openssh-server", Version: "1:7.2p2-4ubuntu2.8", Architecture: "amd64", Status: "install ok installed"},
		},
	}
	return &Image{
		Repository: "ubuntu",
		Tag:        "16.04",
		Layers:     []Layer{base},
		Config:     ImageConfig{Cmd: []string{"/bin/bash"}},
	}
}
