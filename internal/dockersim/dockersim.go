// Package dockersim simulates the Docker substrate that ConfigValidator
// scans in production: images made of ordered copy-on-write layers (with
// whiteouts), running containers (an image plus a read-write layer and
// runtime state), and a registry. The paper's production deployment scans
// "tens of thousands of containers and images daily" through the agentless
// crawler; this simulator provides the same two entity classes with the
// same union-filesystem semantics so the identical validation code path is
// exercised.
//
// Union semantics follow overlayfs/AUFS: layers apply bottom-up, the upper
// layer wins for regular files, a whiteout entry removes the lower path,
// and an opaque directory entry hides all lower content of that directory.
package dockersim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

// FileEntry is one filesystem operation recorded in a layer.
type FileEntry struct {
	// Path is the absolute path the entry affects.
	Path string
	// Data is the file content (nil for directories and whiteouts).
	Data []byte
	// Mode carries permissions; directories must include fs.ModeDir.
	Mode fs.FileMode
	// UID and GID are the numeric owner.
	UID int
	GID int
	// ModTime is the recorded modification time.
	ModTime time.Time
	// Whiteout marks the path deleted relative to lower layers.
	Whiteout bool
	// Opaque (directories only) hides all lower-layer content below Path.
	Opaque bool
}

// Layer is an ordered list of file operations plus provenance.
type Layer struct {
	// CreatedBy records the instruction that produced the layer, like a
	// Dockerfile history entry.
	CreatedBy string
	// Entries apply in order within the layer.
	Entries []FileEntry
	// Packages optionally records package-database changes made by the
	// layer (install/remove of dpkg entries).
	Packages []pkgdb.Package
}

// Digest returns a deterministic content hash of the layer.
func (l *Layer) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "created-by:%s\n", l.CreatedBy)
	for _, e := range l.Entries {
		fmt.Fprintf(h, "%s|%o|%d:%d|wh=%t|op=%t|", e.Path, e.Mode, e.UID, e.GID, e.Whiteout, e.Opaque)
		h.Write(e.Data)
		h.Write([]byte{'\n'})
	}
	for _, p := range l.Packages {
		fmt.Fprintf(h, "pkg:%s=%s\n", p.Name, p.Version)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// ImageConfig carries the non-filesystem image metadata that CIS Docker
// rules assert on (user, exposed ports, environment, healthcheck).
type ImageConfig struct {
	// User is the default user the container runs as ("" means root).
	User string
	// Env holds KEY=value environment entries.
	Env []string
	// ExposedPorts lists ports like "443/tcp".
	ExposedPorts []string
	// Cmd is the default command.
	Cmd []string
	// Labels are arbitrary image labels.
	Labels map[string]string
	// Healthcheck is the HEALTHCHECK command; empty means none declared.
	Healthcheck string
}

// Image is an immutable stack of layers plus config.
type Image struct {
	// Repository and Tag name the image, e.g. "web-frontend" and "v1.2".
	Repository string
	Tag        string
	// Layers apply bottom-up.
	Layers []Layer
	// Config is the image runtime configuration.
	Config ImageConfig
}

// Ref returns "repository:tag".
func (img *Image) Ref() string { return img.Repository + ":" + img.Tag }

// ID returns a deterministic image identifier derived from layer digests
// and config.
func (img *Image) ID() string {
	h := sha256.New()
	for i := range img.Layers {
		fmt.Fprintln(h, img.Layers[i].Digest())
	}
	fmt.Fprintf(h, "user:%s|hc:%s|", img.Config.User, img.Config.Healthcheck)
	fmt.Fprintf(h, "env:%s|ports:%s|cmd:%s|",
		strings.Join(img.Config.Env, ","),
		strings.Join(img.Config.ExposedPorts, ","),
		strings.Join(img.Config.Cmd, " "))
	labels := make([]string, 0, len(img.Config.Labels))
	for k, v := range img.Config.Labels {
		labels = append(labels, k+"="+v)
	}
	sort.Strings(labels)
	fmt.Fprintf(h, "labels:%s", strings.Join(labels, ","))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Entity materializes the image's union filesystem as a read-only entity,
// the form the crawler scans. Image metadata is exposed as the
// "docker.image_config" runtime feature in "key value" lines so script
// rules can assert on it.
func (img *Image) Entity() *entity.Mem {
	m := entity.NewMem(img.Ref(), entity.TypeImage)
	applyLayers(m, img.Layers)
	m.SetFeature("docker.image_config", img.configFeature())
	return m
}

func (img *Image) configFeature() string {
	var b strings.Builder
	user := img.Config.User
	if user == "" {
		user = "root"
	}
	fmt.Fprintf(&b, "User %s\n", user)
	fmt.Fprintf(&b, "Healthcheck %s\n", orNone(img.Config.Healthcheck))
	for _, p := range img.Config.ExposedPorts {
		fmt.Fprintf(&b, "ExposedPort %s\n", p)
	}
	for _, e := range img.Config.Env {
		fmt.Fprintf(&b, "Env %s\n", e)
	}
	if len(img.Config.Cmd) > 0 {
		fmt.Fprintf(&b, "Cmd %s\n", strings.Join(img.Config.Cmd, " "))
	}
	return b.String()
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// applyLayers folds layers bottom-up into the entity, implementing
// last-writer-wins, whiteouts, and opaque directories. Package-database
// deltas accumulate across layers (a later layer replaces same-named
// packages).
func applyLayers(m *entity.Mem, layers []Layer) {
	pkgs := make(map[string]pkgdb.Package)
	var pkgOrder []string
	for li := range layers {
		layer := &layers[li]
		for _, e := range layer.Entries {
			switch {
			case e.Whiteout:
				m.RemoveFile(e.Path)
			case e.Opaque:
				removeUnder(m, e.Path)
				m.AddDir(e.Path, entity.WithMode(e.Mode), entity.WithOwner(e.UID, e.GID))
			case e.Mode.IsDir():
				m.AddDir(e.Path, entity.WithMode(e.Mode), entity.WithOwner(e.UID, e.GID))
			default:
				mode := e.Mode
				if mode == 0 {
					mode = 0o644
				}
				m.AddFile(e.Path, e.Data,
					entity.WithMode(mode),
					entity.WithOwner(e.UID, e.GID),
					entity.WithModTime(e.ModTime))
			}
		}
		for _, p := range layer.Packages {
			if _, ok := pkgs[p.Name]; !ok {
				pkgOrder = append(pkgOrder, p.Name)
			}
			pkgs[p.Name] = p
		}
	}
	out := make([]pkgdb.Package, 0, len(pkgOrder))
	for _, name := range pkgOrder {
		out = append(out, pkgs[name])
	}
	m.SetPackages(out)
}

func removeUnder(m *entity.Mem, dir string) {
	dir = entity.Clean(dir)
	for _, p := range m.Files() {
		if strings.HasPrefix(p, dir+"/") {
			m.RemoveFile(p)
		}
	}
}

// ExportTar writes the image's materialized union filesystem (with its
// package database embedded as a dpkg status file) as a tar stream — the
// `docker export` analogue. The archive can be re-scanned through
// entity.NewFromTar without access to this simulator.
func (img *Image) ExportTar(w io.Writer) error {
	return img.Entity().WriteTar(w)
}

// ContainerState enumerates simulated container lifecycle states.
type ContainerState int

// Container states.
const (
	StateCreated ContainerState = iota + 1
	StateRunning
	StateExited
)

// String returns the state name.
func (s ContainerState) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateRunning:
		return "running"
	case StateExited:
		return "exited"
	default:
		return fmt.Sprintf("ContainerState(%d)", int(s))
	}
}

// Container is a running (or stopped) instance of an image: the image
// layers plus a read-write layer and runtime state.
type Container struct {
	// ID is the container identifier.
	ID string
	// Image is the source image.
	Image *Image
	// State is the lifecycle state.
	State ContainerState
	// RW is the read-write top layer capturing changes made at runtime.
	RW Layer
	// Privileged mirrors docker run --privileged.
	Privileged bool
	// HostNetwork mirrors docker run --net=host.
	HostNetwork bool
	// Mounts lists host paths mounted into the container.
	Mounts []string
	// features holds extra runtime plugin outputs.
	features map[string]string
}

// NewContainer creates a container for the image.
func NewContainer(id string, img *Image) *Container {
	return &Container{ID: id, Image: img, State: StateCreated, features: make(map[string]string)}
}

// WriteFile records a runtime modification in the read-write layer.
func (c *Container) WriteFile(path string, data []byte, mode fs.FileMode) {
	c.RW.Entries = append(c.RW.Entries, FileEntry{Path: path, Data: data, Mode: mode})
}

// DeleteFile records a runtime deletion (whiteout in the RW layer).
func (c *Container) DeleteFile(path string) {
	c.RW.Entries = append(c.RW.Entries, FileEntry{Path: path, Whiteout: true})
}

// SetFeature attaches extra runtime state to the container.
func (c *Container) SetFeature(name, output string) {
	c.features[name] = output
}

// Entity materializes the container: image layers + RW layer, plus runtime
// features describing the container configuration (the docker.inspect
// analogue CIS Docker runtime rules consume).
func (c *Container) Entity() *entity.Mem {
	m := entity.NewMem(c.ID, entity.TypeContainer)
	layers := make([]Layer, 0, len(c.Image.Layers)+1)
	layers = append(layers, c.Image.Layers...)
	layers = append(layers, c.RW)
	applyLayers(m, layers)
	m.SetFeature("docker.image_config", c.Image.configFeature())
	m.SetFeature("docker.inspect", c.inspectFeature())
	for name, out := range c.features {
		m.SetFeature(name, out)
	}
	return m
}

func (c *Container) inspectFeature() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Id %s\n", c.ID)
	fmt.Fprintf(&b, "Image %s\n", c.Image.Ref())
	fmt.Fprintf(&b, "State %s\n", c.State)
	fmt.Fprintf(&b, "Privileged %t\n", c.Privileged)
	fmt.Fprintf(&b, "HostNetwork %t\n", c.HostNetwork)
	for _, mnt := range c.Mounts {
		fmt.Fprintf(&b, "Mount %s\n", mnt)
	}
	return b.String()
}

// ChangeKind classifies a container filesystem change, following
// `docker diff` (A = added, C = changed, D = deleted).
type ChangeKind byte

// Change kinds.
const (
	ChangeAdded    ChangeKind = 'A'
	ChangeModified ChangeKind = 'C'
	ChangeDeleted  ChangeKind = 'D'
)

// Change is one entry of a container diff.
type Change struct {
	Kind ChangeKind
	Path string
}

// String renders the change in docker-diff notation ("C /etc/passwd").
func (c Change) String() string { return string(c.Kind) + " " + c.Path }

// Diff reports the container's filesystem changes relative to its image —
// the `docker diff` analogue, and the raw material for drift detection on
// running containers.
func (c *Container) Diff() []Change {
	imageFS := c.Image.Entity()
	var out []Change
	seen := make(map[string]bool)
	for _, e := range c.RW.Entries {
		if seen[e.Path] {
			continue
		}
		seen[e.Path] = true
		path := entity.Clean(e.Path)
		_, statErr := imageFS.Stat(path)
		existed := statErr == nil
		switch {
		case e.Whiteout && existed:
			out = append(out, Change{Kind: ChangeDeleted, Path: path})
		case e.Whiteout:
			// Deleting something the image never had: no visible change.
		case existed:
			out = append(out, Change{Kind: ChangeModified, Path: path})
		default:
			out = append(out, Change{Kind: ChangeAdded, Path: path})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Registry stores images and containers, standing in for a Docker daemon +
// registry pair.
type Registry struct {
	images     map[string]*Image
	containers map[string]*Container
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		images:     make(map[string]*Image),
		containers: make(map[string]*Container),
	}
}

// Push stores an image under its ref, replacing any existing one.
func (r *Registry) Push(img *Image) {
	r.images[img.Ref()] = img
}

// Pull retrieves an image by "repository:tag" ref.
func (r *Registry) Pull(ref string) (*Image, error) {
	img, ok := r.images[ref]
	if !ok {
		return nil, fmt.Errorf("dockersim: image %q not found", ref)
	}
	return img, nil
}

// Images lists all image refs, sorted.
func (r *Registry) Images() []string {
	out := make([]string, 0, len(r.images))
	for ref := range r.images {
		out = append(out, ref)
	}
	sort.Strings(out)
	return out
}

// Run creates and starts a container from the referenced image.
func (r *Registry) Run(id, ref string) (*Container, error) {
	img, err := r.Pull(ref)
	if err != nil {
		return nil, err
	}
	if _, exists := r.containers[id]; exists {
		return nil, fmt.Errorf("dockersim: container %q already exists", id)
	}
	c := NewContainer(id, img)
	c.State = StateRunning
	r.containers[id] = c
	return c, nil
}

// Container retrieves a container by id.
func (r *Registry) Container(id string) (*Container, error) {
	c, ok := r.containers[id]
	if !ok {
		return nil, fmt.Errorf("dockersim: container %q not found", id)
	}
	return c, nil
}

// Containers lists all container ids, sorted.
func (r *Registry) Containers() []string {
	out := make([]string, 0, len(r.containers))
	for id := range r.containers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
