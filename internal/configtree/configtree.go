// Package configtree defines the normalized key-value tree structure that
// the data normalizer produces from raw configuration files and that the
// rule engine queries.
//
// The tree mirrors the Augeas model used by ConfigValidator: every node has
// a label, an optional scalar value, and ordered children. Repeated labels
// are allowed (an nginx configuration may contain several "server" blocks).
// Nodes are addressed with slash-separated paths supporting per-segment
// globs, 1-based indices for repeated labels, and a "**" descendant
// wildcard:
//
//	server/listen        every listen directive in every server block
//	server[2]/listen     listen directives of the second server block only
//	*/ssl_*              any ssl_-prefixed key one level down
//	**/PermitRootLogin   the key at any depth
package configtree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Node is one element of a configuration tree.
type Node struct {
	// Label is the node name, e.g. a configuration key or section name.
	Label string
	// Value is the scalar value for leaf-style nodes; empty for sections.
	Value string
	// Children holds nested nodes in file order.
	Children []*Node
	// File is the source file this node was parsed from, when known.
	File string
	// Line is the 1-based source line this node starts on, when known.
	Line int
}

// New returns a root node with the given label. Roots conventionally use the
// file path or entity name as label.
func New(label string) *Node {
	return &Node{Label: label}
}

// Add appends a child with the given label and value and returns it.
func (n *Node) Add(label, value string) *Node {
	child := &Node{Label: label, Value: value, File: n.File}
	n.Children = append(n.Children, child)
	return child
}

// AddNode appends an existing node as a child and returns it.
func (n *Node) AddNode(child *Node) *Node {
	n.Children = append(n.Children, child)
	return child
}

// Section appends (or reuses the last) child section with the given label
// and returns it. Unlike Add it leaves Value empty.
func (n *Node) Section(label string) *Node {
	child := &Node{Label: label, File: n.File}
	n.Children = append(n.Children, child)
	return child
}

// ChildrenByLabel returns all direct children whose label equals label.
func (n *Node) ChildrenByLabel(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// Child returns the first direct child with the given label.
func (n *Node) Child(label string) (*Node, bool) {
	for _, c := range n.Children {
		if c.Label == label {
			return c, true
		}
	}
	return nil, false
}

// Find returns every node matching the path expression, in document order.
// An empty path matches the receiver itself.
func (n *Node) Find(path string) []*Node {
	segs := compilePath(path)
	if len(segs) == 0 {
		return []*Node{n}
	}
	current := []*Node{n}
	for _, seg := range segs {
		var next []*Node
		if seg.descend {
			for _, c := range current {
				c.walkAll(func(d *Node) {
					if matchSegment(d, seg) {
						next = append(next, d)
					}
				})
			}
			// Overlapping "**" roots can reach the same descendant
			// through more than one ancestor; plain child expansion
			// cannot duplicate (every node has one parent).
			next = dedup(next)
		} else {
			for _, c := range current {
				next = append(next, c.matchChildren(seg)...)
			}
		}
		if len(next) == 0 {
			return nil
		}
		current = next
	}
	return current
}

// Get returns the first node matching the path expression.
func (n *Node) Get(path string) (*Node, bool) {
	matches := n.Find(path)
	if len(matches) == 0 {
		return nil, false
	}
	return matches[0], true
}

// ValueAt returns the value of the first node matching path.
func (n *Node) ValueAt(path string) (string, bool) {
	node, ok := n.Get(path)
	if !ok {
		return "", false
	}
	return node.Value, true
}

// ValuesAt returns the values of every node matching path.
func (n *Node) ValuesAt(path string) []string {
	matches := n.Find(path)
	out := make([]string, len(matches))
	for i, m := range matches {
		out[i] = m.Value
	}
	return out
}

// Put creates (or reuses) the nodes along a plain path (no globs or
// indices), sets the final node's value, and returns that node. Existing
// nodes are reused; missing ones are appended.
func (n *Node) Put(path, value string) (*Node, error) {
	segs := strings.Split(strings.Trim(path, "/"), "/")
	cur := n
	for _, label := range segs {
		if label == "" {
			continue
		}
		if strings.ContainsAny(label, "*[") {
			return nil, fmt.Errorf("configtree: Put path %q contains pattern syntax", path)
		}
		child, ok := cur.Child(label)
		if !ok {
			child = cur.Add(label, "")
		}
		cur = child
	}
	cur.Value = value
	return cur, nil
}

// Walk visits the receiver and all descendants in depth-first document
// order. Returning false from fn stops the walk.
func (n *Node) Walk(fn func(path string, node *Node) bool) {
	n.walk("", fn)
}

func (n *Node) walk(prefix string, fn func(string, *Node) bool) bool {
	path := n.Label
	if prefix != "" {
		path = prefix + "/" + n.Label
	}
	if !fn(path, n) {
		return false
	}
	for _, c := range n.Children {
		if !c.walk(path, fn) {
			return false
		}
	}
	return true
}

// walkAll visits all descendants (excluding the receiver).
func (n *Node) walkAll(fn func(*Node)) {
	for _, c := range n.Children {
		fn(c)
		c.walkAll(fn)
	}
}

// Leaves returns all descendant nodes that have no children.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.walkAll(func(d *Node) {
		if len(d.Children) == 0 {
			out = append(out, d)
		}
	})
	if len(n.Children) == 0 {
		out = append(out, n)
	}
	return out
}

// Size returns the total number of nodes in the tree including the receiver.
func (n *Node) Size() int {
	total := 1
	for _, c := range n.Children {
		total += c.Size()
	}
	return total
}

// String renders the tree in a compact indented form for debugging and
// golden tests.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(n.Label)
	if n.Value != "" {
		b.WriteString(" = ")
		b.WriteString(n.Value)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// Clone returns a deep copy of the tree.
func (n *Node) Clone() *Node {
	out := &Node{Label: n.Label, Value: n.Value, File: n.File, Line: n.Line}
	if len(n.Children) > 0 {
		out.Children = make([]*Node, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = c.Clone()
		}
	}
	return out
}

// Equal reports structural equality (label, value, children; ignores
// File/Line provenance).
func (n *Node) Equal(other *Node) bool {
	if n == nil || other == nil {
		return n == other
	}
	if n.Label != other.Label || n.Value != other.Value || len(n.Children) != len(other.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(other.Children[i]) {
			return false
		}
	}
	return true
}

// segment is one parsed path component.
type segment struct {
	label   string // label pattern, may contain * wildcards
	index   int    // 1-based index among matching siblings; 0 = all
	descend bool   // true for "**": match at any depth
}

// compiledQueries memoizes parsed path expressions. Queries come from CVL
// rule files — a small, library-bounded set reused across every file of
// every entity in a fleet scan — so parsing each expression once removes a
// per-Find allocation from the engine's hottest loop. The cache is
// size-capped as a safety valve against pathological dynamic queries.
var (
	queryMu         sync.RWMutex
	compiledQueries = make(map[string][]segment)
)

const maxCompiledQueries = 4096

// compilePath returns the parsed form of a path expression, memoized.
// Returned segments are shared and must not be mutated.
func compilePath(path string) []segment {
	queryMu.RLock()
	segs, ok := compiledQueries[path]
	queryMu.RUnlock()
	if ok {
		return segs
	}
	segs = splitPath(path)
	queryMu.Lock()
	if len(compiledQueries) < maxCompiledQueries {
		compiledQueries[path] = segs
	}
	queryMu.Unlock()
	return segs
}

func splitPath(path string) []segment {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil
	}
	parts := strings.Split(path, "/")
	segs := make([]segment, 0, len(parts))
	for _, p := range parts {
		if p == "" {
			continue
		}
		if p == "**" {
			segs = append(segs, segment{label: "*", descend: true})
			continue
		}
		s := segment{label: p}
		if i := strings.IndexByte(p, '['); i >= 0 && strings.HasSuffix(p, "]") {
			if idx, err := strconv.Atoi(p[i+1 : len(p)-1]); err == nil && idx > 0 {
				s.label = p[:i]
				s.index = idx
			}
		}
		segs = append(segs, s)
	}
	return segs
}

func (n *Node) matchChildren(seg segment) []*Node {
	var out []*Node
	nth := 0
	for _, c := range n.Children {
		if !matchGlob(seg.label, c.Label) {
			continue
		}
		nth++
		if seg.index != 0 && nth != seg.index {
			continue
		}
		out = append(out, c)
	}
	return out
}

func matchSegment(n *Node, seg segment) bool {
	return matchGlob(seg.label, n.Label)
}

// matchGlob matches pattern against s where '*' matches any run of
// characters (including none).
func matchGlob(pattern, s string) bool {
	if pattern == "*" {
		return true
	}
	if !strings.ContainsRune(pattern, '*') {
		return pattern == s
	}
	parts := strings.Split(pattern, "*")
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for i := 1; i < len(parts)-1; i++ {
		idx := strings.Index(s, parts[i])
		if idx < 0 {
			return false
		}
		s = s[idx+len(parts[i]):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}

func dedup(nodes []*Node) []*Node {
	seen := make(map[*Node]struct{}, len(nodes))
	out := nodes[:0]
	for _, n := range nodes {
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		out = append(out, n)
	}
	return out
}

// SortChildren orders the direct children by label (stable), which is
// useful for deterministic output of unordered sources.
func (n *Node) SortChildren() {
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].Label < n.Children[j].Label
	})
}
