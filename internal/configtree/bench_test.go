package configtree

import (
	"strconv"
	"testing"
)

func benchTree() *Node {
	root := New("nginx.conf")
	http := root.Section("http")
	for i := 0; i < 50; i++ {
		s := http.Section("server")
		s.Add("listen", strconv.Itoa(8000+i))
		s.Add("server_name", "host"+strconv.Itoa(i)+".example.com")
		s.Add("ssl_protocols", "TLSv1.2")
		loc := s.Section("location")
		loc.Value = "/api"
		loc.Add("proxy_pass", "http://backend")
	}
	return root
}

func BenchmarkFindExact(b *testing.B) {
	root := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if nodes := root.Find("http/server/ssl_protocols"); len(nodes) != 50 {
			b.Fatal(len(nodes))
		}
	}
}

func BenchmarkFindIndexed(b *testing.B) {
	root := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := root.Get("http/server[25]/listen"); !ok {
			b.Fatal("missing")
		}
	}
}

func BenchmarkFindDescendant(b *testing.B) {
	root := benchTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if nodes := root.Find("**/proxy_pass"); len(nodes) != 50 {
			b.Fatal(len(nodes))
		}
	}
}
