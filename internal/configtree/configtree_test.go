package configtree

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// buildNginxLike constructs a tree shaped like a parsed nginx.conf.
func buildNginxLike() *Node {
	root := New("nginx.conf")
	root.Add("user", "www-data")
	http := root.Section("http")
	s1 := http.Section("server")
	s1.Add("listen", "80")
	s1.Add("server_name", "a.example.com")
	s2 := http.Section("server")
	s2.Add("listen", "443 ssl")
	s2.Add("server_name", "b.example.com")
	s2.Add("ssl_protocols", "TLSv1.2 TLSv1.3")
	s2.Add("ssl_certificate", "/etc/ssl/cert.pem")
	return root
}

func TestFindExactPath(t *testing.T) {
	root := buildNginxLike()
	got := root.ValuesAt("http/server/listen")
	want := []string{"80", "443 ssl"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("listen values = %v, want %v", got, want)
	}
}

func TestFindIndexedSegment(t *testing.T) {
	root := buildNginxLike()
	if v, ok := root.ValueAt("http/server[2]/listen"); !ok || v != "443 ssl" {
		t.Errorf("server[2]/listen = %q ok=%v", v, ok)
	}
	if v, ok := root.ValueAt("http/server[1]/server_name"); !ok || v != "a.example.com" {
		t.Errorf("server[1]/server_name = %q ok=%v", v, ok)
	}
	if _, ok := root.Get("http/server[3]"); ok {
		t.Error("server[3] should not exist")
	}
}

func TestFindGlobSegment(t *testing.T) {
	root := buildNginxLike()
	got := root.ValuesAt("http/server/ssl_*")
	if len(got) != 2 {
		t.Fatalf("ssl_* matches = %v", got)
	}
	if got[0] != "TLSv1.2 TLSv1.3" {
		t.Errorf("first ssl value = %q", got[0])
	}
	all := root.Find("http/*/server_name")
	if len(all) != 2 {
		t.Errorf("*/server_name matched %d nodes", len(all))
	}
}

func TestFindDescendant(t *testing.T) {
	root := buildNginxLike()
	nodes := root.Find("**/ssl_protocols")
	if len(nodes) != 1 || nodes[0].Value != "TLSv1.2 TLSv1.3" {
		t.Errorf("descendant search = %v", nodes)
	}
	listens := root.Find("**/listen")
	if len(listens) != 2 {
		t.Errorf("**/listen matched %d", len(listens))
	}
}

func TestFindEmptyPathIsSelf(t *testing.T) {
	root := buildNginxLike()
	for _, p := range []string{"", "/", "//"} {
		nodes := root.Find(p)
		if len(nodes) != 1 || nodes[0] != root {
			t.Errorf("Find(%q) = %v, want self", p, nodes)
		}
	}
}

func TestFindMissing(t *testing.T) {
	root := buildNginxLike()
	if nodes := root.Find("http/upstream"); nodes != nil {
		t.Errorf("missing path returned %v", nodes)
	}
	if _, ok := root.ValueAt("nope/nope"); ok {
		t.Error("missing path ValueAt should report absent")
	}
}

func TestPutAndGet(t *testing.T) {
	root := New("sysctl.conf")
	if _, err := root.Put("net/ipv4/ip_forward", "0"); err != nil {
		t.Fatal(err)
	}
	if _, err := root.Put("net/ipv4/tcp_syncookies", "1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := root.ValueAt("net/ipv4/ip_forward"); v != "0" {
		t.Errorf("ip_forward = %q", v)
	}
	// Put reuses intermediate nodes.
	ipv4 := root.Find("net/ipv4")
	if len(ipv4) != 1 {
		t.Fatalf("expected one net/ipv4 node, got %d", len(ipv4))
	}
	if len(ipv4[0].Children) != 2 {
		t.Errorf("net/ipv4 children = %d", len(ipv4[0].Children))
	}
	// Overwrite.
	if _, err := root.Put("net/ipv4/ip_forward", "1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := root.ValueAt("net/ipv4/ip_forward"); v != "1" {
		t.Errorf("ip_forward after overwrite = %q", v)
	}
}

func TestPutRejectsPatterns(t *testing.T) {
	root := New("x")
	if _, err := root.Put("a/*/b", "v"); err == nil {
		t.Error("Put with glob should fail")
	}
	if _, err := root.Put("a[1]/b", "v"); err == nil {
		t.Error("Put with index should fail")
	}
}

func TestWalkOrderAndStop(t *testing.T) {
	root := buildNginxLike()
	var visited []string
	root.Walk(func(path string, n *Node) bool {
		visited = append(visited, path)
		return true
	})
	if visited[0] != "nginx.conf" || visited[1] != "nginx.conf/user" {
		t.Errorf("walk order start = %v", visited[:2])
	}
	count := 0
	root.Walk(func(string, *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestLeaves(t *testing.T) {
	root := buildNginxLike()
	leaves := root.Leaves()
	for _, l := range leaves {
		if len(l.Children) != 0 {
			t.Errorf("leaf %q has children", l.Label)
		}
	}
	if len(leaves) != 7 {
		t.Errorf("leaf count = %d, want 7", len(leaves))
	}
	single := New("only")
	if got := single.Leaves(); len(got) != 1 || got[0] != single {
		t.Errorf("single-node leaves = %v", got)
	}
}

func TestCloneAndEqual(t *testing.T) {
	root := buildNginxLike()
	clone := root.Clone()
	if !root.Equal(clone) {
		t.Fatal("clone not equal to original")
	}
	clone.Children[0].Value = "changed"
	if root.Equal(clone) {
		t.Error("mutated clone still equal")
	}
	if root.Children[0].Value != "www-data" {
		t.Error("mutating clone affected original")
	}
	if (*Node)(nil).Equal(nil) != true {
		t.Error("nil==nil")
	}
	if root.Equal(nil) {
		t.Error("non-nil == nil")
	}
}

func TestStringRendering(t *testing.T) {
	root := New("f")
	root.Add("a", "1")
	s := root.Section("sec")
	s.Add("b", "2")
	got := root.String()
	want := "f\n  a = 1\n  sec\n    b = 2\n"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestSize(t *testing.T) {
	root := buildNginxLike()
	if got := root.Size(); got != 11 {
		t.Errorf("Size = %d, want 11", got)
	}
}

func TestMatchGlob(t *testing.T) {
	tests := []struct {
		pattern, s string
		want       bool
	}{
		{"*", "anything", true},
		{"ssl_*", "ssl_protocols", true},
		{"ssl_*", "listen", false},
		{"*_name", "server_name", true},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"a*b*c", "aXbYc", true},
		{"a*b*c", "acb", false},
		{"exact", "exact", true},
		{"exact", "exactx", false},
	}
	for _, tt := range tests {
		if got := matchGlob(tt.pattern, tt.s); got != tt.want {
			t.Errorf("matchGlob(%q, %q) = %v, want %v", tt.pattern, tt.s, got, tt.want)
		}
	}
}

func TestSortChildren(t *testing.T) {
	root := New("r")
	root.Add("c", "3")
	root.Add("a", "1")
	root.Add("b", "2")
	root.SortChildren()
	labels := make([]string, len(root.Children))
	for i, c := range root.Children {
		labels[i] = c.Label
	}
	if !reflect.DeepEqual(labels, []string{"a", "b", "c"}) {
		t.Errorf("sorted labels = %v", labels)
	}
}

// TestQuickPutThenFind checks the property: after Put(path, v), ValueAt(path)
// returns v, for random plain paths.
func TestQuickPutThenFind(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	labels := []string{"alpha", "beta", "gamma", "delta", "eps"}
	for i := 0; i < 300; i++ {
		root := New("root")
		type kv struct{ path, val string }
		var inserted []kv
		last := make(map[string]string)
		n := 1 + r.Intn(8)
		for j := 0; j < n; j++ {
			depth := 1 + r.Intn(4)
			segs := make([]string, depth)
			for d := range segs {
				segs[d] = labels[r.Intn(len(labels))]
			}
			path := strings.Join(segs, "/")
			val := labels[r.Intn(len(labels))] + "-" + string(rune('0'+j))
			if _, err := root.Put(path, val); err != nil {
				t.Fatalf("Put(%q): %v", path, err)
			}
			inserted = append(inserted, kv{path, val})
			last[path] = val
		}
		for _, e := range inserted {
			got, ok := root.ValueAt(e.path)
			if !ok {
				t.Fatalf("iteration %d: path %q not found after Put", i, e.path)
			}
			// A later Put to the same path (or to a prefix extension that
			// reuses a node) may overwrite; compare against last write.
			if want := last[e.path]; got != want && !isPrefixOfAnother(e.path, last) {
				t.Fatalf("iteration %d: ValueAt(%q) = %q, want %q", i, e.path, got, want)
			}
		}
	}
}

// isPrefixOfAnother reports whether path is a strict prefix of another
// inserted path, in which case its node may have been reused as a section.
func isPrefixOfAnother(path string, all map[string]string) bool {
	for other := range all {
		if other != path && strings.HasPrefix(other, path+"/") {
			return true
		}
	}
	return false
}

// TestQuickGlobSuperset checks that a glob query's results always include
// every exact-match query result it generalizes.
func TestQuickGlobSuperset(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	labels := []string{"aa", "ab", "ba", "bb"}
	for i := 0; i < 200; i++ {
		root := New("root")
		for j := 0; j < 10; j++ {
			path := labels[r.Intn(4)] + "/" + labels[r.Intn(4)]
			if _, err := root.Put(path, "v"); err != nil {
				t.Fatal(err)
			}
		}
		for _, l1 := range labels {
			for _, l2 := range labels {
				exact := root.Find(l1 + "/" + l2)
				glob := root.Find("*/" + l2)
				star := root.Find("**/" + l2)
				if !containsAll(glob, exact) {
					t.Fatalf("glob */%s missing exact %s/%s results", l2, l1, l2)
				}
				if !containsAll(star, exact) {
					t.Fatalf("** missing exact results for %s/%s", l1, l2)
				}
			}
		}
	}
}

func containsAll(haystack, needles []*Node) bool {
	set := make(map[*Node]struct{}, len(haystack))
	for _, n := range haystack {
		set[n] = struct{}{}
	}
	for _, n := range needles {
		if _, ok := set[n]; !ok {
			return false
		}
	}
	return true
}
