package rules

import (
	"testing"

	"configvalidator/internal/cvl"
)

func TestExtendedPackComposition(t *testing.T) {
	if got := len(ExtendedTargets()); got != 4 {
		t.Errorf("extended targets = %d", got)
	}
	m, err := ExtendedManifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 15 { // 11 base + 4 extended
		t.Errorf("combined manifest entries = %d", len(m.Entries))
	}
	reader := ExtendedReader()
	total := 0
	for _, target := range ExtendedTargets() {
		rs, err := cvl.ResolveRules(reader, target.RuleFile)
		if err != nil {
			t.Fatalf("%s: %v", target.Name, err)
		}
		total += len(rs)
		for _, r := range rs {
			if !r.HasTag("#extended") {
				t.Errorf("%s/%s missing #extended tag", target.Name, r.Name)
			}
		}
	}
	if total != 12 {
		t.Errorf("extended rules = %d, want 12", total)
	}
	// The base library is untouched: Table-1 still counts 135.
	if n, err := TotalRules(); err != nil || n != 135 {
		t.Errorf("base rules = %d, %v", n, err)
	}
}

func TestExtendedPackLintClean(t *testing.T) {
	files := ExtendedFiles()
	for _, target := range ExtendedTargets() {
		content := files[target.RuleFile]
		if diags := cvl.Lint(target.RuleFile, []byte(content)); cvl.HasErrors(diags) {
			t.Errorf("%s: %v", target.RuleFile, diags)
		}
	}
}

func TestExtendedReaderMissing(t *testing.T) {
	if _, err := ExtendedReader()("ghost.yaml"); err == nil {
		t.Error("missing file read")
	}
}
