package rules

// System-service rules (CIS Ubuntu benchmark style): sshd (18), sysctl
// (18), audit (20), fstab (8), modprobe (8) — 72 rules.

// sshdRules validate /etc/ssh/sshd_config (CIS 5.2.x).
const sshdRules = `
config_name: PermitRootLogin
tags: ["#cis", "#security", "#cisubuntu14.04_5.2.8"]
config_path: [""]
config_description: "Disable root login over SSH."
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "PermitRootLogin is not present. It is enabled by default."
not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."
matched_description: "Root login is disabled."
suggested_action: "Set 'PermitRootLogin no' in sshd_config."
---
config_name: Protocol
tags: ["#cis", "#cisubuntu14.04_5.2.2"]
config_description: "Use SSH protocol 2 only."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["2"]
preferred_value_match: exact,any
not_present_description: "Protocol is not present; ensure the server defaults to protocol 2."
not_matched_preferred_value_description: "SSH protocol 1 is permitted."
matched_description: "SSH protocol is restricted to version 2."
absent_pass: true
---
config_name: X11Forwarding
tags: ["#cis", "#cisubuntu14.04_5.2.6"]
config_description: "Disable X11 forwarding."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "X11Forwarding is not present."
not_matched_preferred_value_description: "X11 forwarding is enabled."
matched_description: "X11 forwarding is disabled."
---
config_name: MaxAuthTries
tags: ["#cis", "#cisubuntu14.04_5.2.7"]
config_description: "Limit authentication attempts to at most 4."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["^[1-4]$"]
preferred_value_match: regex,any
not_present_description: "MaxAuthTries is not present; the default (6) is too high."
not_matched_preferred_value_description: "MaxAuthTries exceeds 4."
matched_description: "MaxAuthTries is 4 or lower."
---
config_name: IgnoreRhosts
tags: ["#cis", "#cisubuntu14.04_5.2.9"]
config_description: "Ignore .rhosts files."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["yes"]
preferred_value_match: exact,any
not_present_description: "IgnoreRhosts is not present."
not_matched_preferred_value_description: "IgnoreRhosts is disabled."
matched_description: "IgnoreRhosts is enabled."
absent_pass: true
---
config_name: HostbasedAuthentication
tags: ["#cis", "#cisubuntu14.04_5.2.10"]
config_description: "Disable host-based authentication."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "HostbasedAuthentication is not present."
not_matched_preferred_value_description: "Host-based authentication is enabled."
matched_description: "Host-based authentication is disabled."
absent_pass: true
---
config_name: PermitEmptyPasswords
tags: ["#cis", "#cisubuntu14.04_5.2.11"]
config_description: "Forbid empty passwords."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "PermitEmptyPasswords is not present."
not_matched_preferred_value_description: "Empty passwords are permitted."
matched_description: "Empty passwords are forbidden."
absent_pass: true
---
config_name: PermitUserEnvironment
tags: ["#cis", "#cisubuntu14.04_5.2.12"]
config_description: "Do not allow users to set environment options."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "PermitUserEnvironment is not present."
not_matched_preferred_value_description: "PermitUserEnvironment is enabled."
matched_description: "PermitUserEnvironment is disabled."
absent_pass: true
---
config_name: ClientAliveInterval
tags: ["#cis", "#cisubuntu14.04_5.2.13"]
config_description: "Set an idle timeout interval of at most 300 seconds."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["^([1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300)$"]
preferred_value_match: regex,any
not_present_description: "ClientAliveInterval is not present; idle sessions never time out."
not_matched_preferred_value_description: "ClientAliveInterval exceeds 300 seconds."
matched_description: "Idle timeout interval is at most 300 seconds."
---
config_name: ClientAliveCountMax
tags: ["#cis", "#cisubuntu14.04_5.2.13"]
config_description: "Allow at most 3 client-alive probes."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["^[0-3]$"]
preferred_value_match: regex,any
not_present_description: "ClientAliveCountMax is not present."
not_matched_preferred_value_description: "ClientAliveCountMax exceeds 3."
matched_description: "ClientAliveCountMax is at most 3."
absent_pass: true
---
config_name: LoginGraceTime
tags: ["#cis", "#cisubuntu14.04_5.2.14"]
config_description: "Limit the login grace period to at most 60 seconds."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["^([1-9]|[1-5][0-9]|60)$"]
preferred_value_match: regex,any
not_present_description: "LoginGraceTime is not present; the default (120s) is too long."
not_matched_preferred_value_description: "LoginGraceTime exceeds 60 seconds."
matched_description: "LoginGraceTime is at most 60 seconds."
---
config_name: Banner
tags: ["#cis", "#cisubuntu14.04_5.2.16"]
config_description: "Configure a warning banner."
config_path: [""]
file_context: ["sshd_config"]
not_present_description: "No SSH warning banner is configured."
matched_description: "A warning banner is configured."
---
config_name: UsePAM
tags: ["#cis", "#security"]
config_description: "Enable PAM authentication."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["yes"]
preferred_value_match: exact,any
not_present_description: "UsePAM is not present."
not_matched_preferred_value_description: "PAM is disabled."
matched_description: "PAM is enabled."
absent_pass: true
---
config_name: AllowTcpForwarding
tags: ["#cis", "#security"]
config_description: "Disable TCP forwarding unless required."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["no"]
preferred_value_match: exact,any
not_present_description: "AllowTcpForwarding is not present; it is enabled by default."
not_matched_preferred_value_description: "TCP forwarding is enabled."
matched_description: "TCP forwarding is disabled."
---
config_name: LogLevel
tags: ["#cis", "#cisubuntu14.04_5.2.3"]
config_description: "Log at INFO or VERBOSE level."
config_path: [""]
file_context: ["sshd_config"]
preferred_value: ["INFO", "VERBOSE"]
preferred_value_match: exact,any
not_present_description: "LogLevel is not present."
not_matched_preferred_value_description: "LogLevel is not INFO or VERBOSE."
matched_description: "LogLevel is INFO or VERBOSE."
absent_pass: true
---
config_name: Ciphers
tags: ["#cis", "#cisubuntu14.04_5.2.15"]
config_description: "Use only strong ciphers."
config_path: [""]
file_context: ["sshd_config"]
non_preferred_value: ["3des", "arcfour", "blowfish", "cast128"]
non_preferred_value_match: substr,any
not_present_description: "Ciphers not restricted; server defaults apply."
not_matched_preferred_value_description: "Weak ciphers are enabled."
matched_description: "No weak ciphers are enabled."
absent_pass: true
---
config_name: MACs
tags: ["#cis", "#security"]
config_description: "Use only strong MAC algorithms."
config_path: [""]
file_context: ["sshd_config"]
non_preferred_value: ["md5", "ripemd", "sha1-96"]
non_preferred_value_match: substr,any
not_present_description: "MACs not restricted; server defaults apply."
not_matched_preferred_value_description: "Weak MAC algorithms are enabled."
matched_description: "No weak MAC algorithms are enabled."
absent_pass: true
---
config_name: KexAlgorithms
tags: ["#cis", "#security"]
config_description: "Use only strong key-exchange algorithms."
config_path: [""]
file_context: ["sshd_config"]
non_preferred_value: ["diffie-hellman-group1-sha1", "diffie-hellman-group-exchange-sha1"]
non_preferred_value_match: substr,any
not_present_description: "KexAlgorithms not restricted; server defaults apply."
not_matched_preferred_value_description: "Weak key-exchange algorithms are enabled."
matched_description: "No weak key-exchange algorithms are enabled."
absent_pass: true
`

// sysctlRules validate kernel parameters (CIS 3.x).
const sysctlRules = `
config_name: net/ipv4/ip_forward
tags: ["#cis", "#cisubuntu14.04_7.2.1"]
config_description: "Disable IP forwarding."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.ip_forward is not set."
not_matched_preferred_value_description: "IP forwarding is enabled."
matched_description: "IP forwarding is disabled."
---
config_name: net/ipv4/conf/all/send_redirects
tags: ["#cis", "#cisubuntu14.04_7.2.2"]
config_description: "Disable sending ICMP redirects (all)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.send_redirects is not set."
not_matched_preferred_value_description: "ICMP redirect sending is enabled (all)."
matched_description: "ICMP redirect sending is disabled (all)."
---
config_name: net/ipv4/conf/default/send_redirects
tags: ["#cis", "#cisubuntu14.04_7.2.2"]
config_description: "Disable sending ICMP redirects (default)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.default.send_redirects is not set."
not_matched_preferred_value_description: "ICMP redirect sending is enabled (default)."
matched_description: "ICMP redirect sending is disabled (default)."
---
config_name: net/ipv4/conf/all/accept_source_route
tags: ["#cis", "#cisubuntu14.04_7.3.1"]
config_description: "Do not accept source-routed packets (all)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.accept_source_route is not set."
not_matched_preferred_value_description: "Source-routed packets are accepted (all)."
matched_description: "Source-routed packets are rejected (all)."
---
config_name: net/ipv4/conf/default/accept_source_route
tags: ["#cis", "#cisubuntu14.04_7.3.1"]
config_description: "Do not accept source-routed packets (default)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.default.accept_source_route is not set."
not_matched_preferred_value_description: "Source-routed packets are accepted (default)."
matched_description: "Source-routed packets are rejected (default)."
---
config_name: net/ipv4/conf/all/accept_redirects
tags: ["#cis", "#cisubuntu14.04_7.3.2"]
config_description: "Do not accept ICMP redirects (all)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.accept_redirects is not set."
not_matched_preferred_value_description: "ICMP redirects are accepted (all)."
matched_description: "ICMP redirects are rejected (all)."
---
config_name: net/ipv4/conf/default/accept_redirects
tags: ["#cis", "#cisubuntu14.04_7.3.2"]
config_description: "Do not accept ICMP redirects (default)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.default.accept_redirects is not set."
not_matched_preferred_value_description: "ICMP redirects are accepted (default)."
matched_description: "ICMP redirects are rejected (default)."
---
config_name: net/ipv4/conf/all/secure_redirects
tags: ["#cis", "#cisubuntu14.04_7.3.3"]
config_description: "Do not accept secure ICMP redirects (all)."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.secure_redirects is not set."
not_matched_preferred_value_description: "Secure ICMP redirects are accepted."
matched_description: "Secure ICMP redirects are rejected."
---
config_name: net/ipv4/conf/all/log_martians
tags: ["#cis", "#cisubuntu14.04_7.3.4"]
config_description: "Log suspicious (martian) packets."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.log_martians is not set."
not_matched_preferred_value_description: "Martian packets are not logged."
matched_description: "Martian packets are logged."
---
config_name: net/ipv4/icmp_echo_ignore_broadcasts
tags: ["#cis", "#cisubuntu14.04_7.3.5"]
config_description: "Ignore broadcast ICMP echo requests."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.icmp_echo_ignore_broadcasts is not set."
not_matched_preferred_value_description: "Broadcast pings are answered."
matched_description: "Broadcast pings are ignored."
---
config_name: net/ipv4/icmp_ignore_bogus_error_responses
tags: ["#cis", "#cisubuntu14.04_7.3.6"]
config_description: "Ignore bogus ICMP error responses."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.icmp_ignore_bogus_error_responses is not set."
not_matched_preferred_value_description: "Bogus ICMP errors are processed."
matched_description: "Bogus ICMP errors are ignored."
---
config_name: net/ipv4/conf/all/rp_filter
tags: ["#cis", "#cisubuntu14.04_7.3.7"]
config_description: "Enable reverse-path filtering (all)."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.all.rp_filter is not set."
not_matched_preferred_value_description: "Reverse-path filtering is disabled (all)."
matched_description: "Reverse-path filtering is enabled (all)."
---
config_name: net/ipv4/conf/default/rp_filter
tags: ["#cis", "#cisubuntu14.04_7.3.7"]
config_description: "Enable reverse-path filtering (default)."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.conf.default.rp_filter is not set."
not_matched_preferred_value_description: "Reverse-path filtering is disabled (default)."
matched_description: "Reverse-path filtering is enabled (default)."
---
config_name: net/ipv4/tcp_syncookies
tags: ["#cis", "#cisubuntu14.04_7.3.8"]
config_description: "Enable TCP SYN cookies."
config_path: [""]
preferred_value: ["1"]
preferred_value_match: exact,any
not_present_description: "net.ipv4.tcp_syncookies is not set."
not_matched_preferred_value_description: "TCP SYN cookies are disabled."
matched_description: "TCP SYN cookies are enabled."
---
config_name: net/ipv6/conf/all/accept_ra
tags: ["#cis", "#cisubuntu14.04_7.4.1"]
config_description: "Do not accept IPv6 router advertisements."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv6.conf.all.accept_ra is not set."
not_matched_preferred_value_description: "IPv6 router advertisements are accepted."
matched_description: "IPv6 router advertisements are rejected."
---
config_name: net/ipv6/conf/all/accept_redirects
tags: ["#cis", "#cisubuntu14.04_7.4.2"]
config_description: "Do not accept IPv6 redirects."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "net.ipv6.conf.all.accept_redirects is not set."
not_matched_preferred_value_description: "IPv6 redirects are accepted."
matched_description: "IPv6 redirects are rejected."
---
config_name: kernel/randomize_va_space
tags: ["#cis", "#cisubuntu14.04_4.3"]
config_description: "Enable full address-space layout randomization."
config_path: [""]
preferred_value: ["2"]
preferred_value_match: exact,any
not_present_description: "kernel.randomize_va_space is not set."
not_matched_preferred_value_description: "ASLR is not fully enabled."
matched_description: "Full ASLR is enabled."
---
config_name: fs/suid_dumpable
tags: ["#cis", "#cisubuntu14.04_4.1"]
config_description: "Disable core dumps for setuid programs."
config_path: [""]
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "fs.suid_dumpable is not set."
not_matched_preferred_value_description: "Setuid core dumps are enabled."
matched_description: "Setuid core dumps are disabled."
`

// auditRules validate /etc/audit/audit.rules (CIS 8.1.x): watch rules on
// sensitive files plus syscall rules, matching the Ubuntu audit checklist.
const auditRules = `
config_schema_name: audit_identity_passwd
tags: ["#cis", "#cisubuntu14.04_8.1.5"]
config_schema_description: "Watch /etc/passwd for identity changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/passwd"]
expect_rows: ">=1"
matched_description: "/etc/passwd is audited."
not_matched_preferred_value_description: "/etc/passwd is not audited."
---
config_schema_name: audit_identity_group
tags: ["#cis", "#cisubuntu14.04_8.1.5"]
config_schema_description: "Watch /etc/group for identity changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/group"]
expect_rows: ">=1"
matched_description: "/etc/group is audited."
not_matched_preferred_value_description: "/etc/group is not audited."
---
config_schema_name: audit_identity_shadow
tags: ["#cis", "#cisubuntu14.04_8.1.5"]
config_schema_description: "Watch /etc/shadow for identity changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/shadow"]
expect_rows: ">=1"
matched_description: "/etc/shadow is audited."
not_matched_preferred_value_description: "/etc/shadow is not audited."
---
config_schema_name: audit_identity_gshadow
tags: ["#cis", "#cisubuntu14.04_8.1.5"]
config_schema_description: "Watch /etc/gshadow for identity changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/gshadow"]
expect_rows: ">=1"
matched_description: "/etc/gshadow is audited."
not_matched_preferred_value_description: "/etc/gshadow is not audited."
---
config_schema_name: audit_identity_opasswd
tags: ["#cis", "#cisubuntu14.04_8.1.5"]
config_schema_description: "Watch /etc/security/opasswd for identity changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/security/opasswd"]
expect_rows: ">=1"
matched_description: "/etc/security/opasswd is audited."
not_matched_preferred_value_description: "/etc/security/opasswd is not audited."
---
config_schema_name: audit_sudoers
tags: ["#cis", "#cisubuntu14.04_8.1.14"]
config_schema_description: "Watch /etc/sudoers for scope changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/sudoers"]
expect_rows: ">=1"
matched_description: "/etc/sudoers is audited."
not_matched_preferred_value_description: "/etc/sudoers is not audited."
---
config_schema_name: audit_sudoers_d
tags: ["#cis", "#cisubuntu14.04_8.1.14"]
config_schema_description: "Watch /etc/sudoers.d for scope changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/sudoers.d"]
expect_rows: ">=1"
matched_description: "/etc/sudoers.d is audited."
not_matched_preferred_value_description: "/etc/sudoers.d is not audited."
---
config_schema_name: audit_sudo_log
tags: ["#cis", "#cisubuntu14.04_8.1.15"]
config_schema_description: "Watch the sudo log for administrator actions."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/sudo.log"]
expect_rows: ">=1"
matched_description: "The sudo log is audited."
not_matched_preferred_value_description: "The sudo log is not audited."
---
config_schema_name: audit_faillog
tags: ["#cis", "#cisubuntu14.04_8.1.7"]
config_schema_description: "Watch /var/log/faillog for login-failure records."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/faillog"]
expect_rows: ">=1"
matched_description: "/var/log/faillog is audited."
not_matched_preferred_value_description: "/var/log/faillog is not audited."
---
config_schema_name: audit_lastlog
tags: ["#cis", "#cisubuntu14.04_8.1.7"]
config_schema_description: "Watch /var/log/lastlog for login records."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/lastlog"]
expect_rows: ">=1"
matched_description: "/var/log/lastlog is audited."
not_matched_preferred_value_description: "/var/log/lastlog is not audited."
---
config_schema_name: audit_tallylog
tags: ["#cis", "#cisubuntu14.04_8.1.7"]
config_schema_description: "Watch /var/log/tallylog for login records."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/tallylog"]
expect_rows: ">=1"
matched_description: "/var/log/tallylog is audited."
not_matched_preferred_value_description: "/var/log/tallylog is not audited."
---
config_schema_name: audit_apparmor
tags: ["#cis", "#cisubuntu14.04_8.1.8"]
config_schema_description: "Watch AppArmor policy for MAC changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/apparmor/"]
expect_rows: ">=1"
matched_description: "AppArmor policy is audited."
not_matched_preferred_value_description: "AppArmor policy is not audited."
---
config_schema_name: audit_hosts
tags: ["#cis", "#cisubuntu14.04_8.1.6"]
config_schema_description: "Watch /etc/hosts for network-environment changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/hosts"]
expect_rows: ">=1"
matched_description: "/etc/hosts is audited."
not_matched_preferred_value_description: "/etc/hosts is not audited."
---
config_schema_name: audit_network_interfaces
tags: ["#cis", "#cisubuntu14.04_8.1.6"]
config_schema_description: "Watch /etc/network for network-environment changes."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/etc/network"]
expect_rows: ">=1"
matched_description: "/etc/network is audited."
not_matched_preferred_value_description: "/etc/network is not audited."
---
config_schema_name: audit_utmp
tags: ["#cis", "#cisubuntu14.04_8.1.9"]
config_schema_description: "Watch /var/run/utmp for session initiation."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/run/utmp"]
expect_rows: ">=1"
matched_description: "/var/run/utmp is audited."
not_matched_preferred_value_description: "/var/run/utmp is not audited."
---
config_schema_name: audit_wtmp
tags: ["#cis", "#cisubuntu14.04_8.1.9"]
config_schema_description: "Watch /var/log/wtmp for session initiation."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/wtmp"]
expect_rows: ">=1"
matched_description: "/var/log/wtmp is audited."
not_matched_preferred_value_description: "/var/log/wtmp is not audited."
---
config_schema_name: audit_btmp
tags: ["#cis", "#cisubuntu14.04_8.1.9"]
config_schema_description: "Watch /var/log/btmp for session initiation."
query_constraints: "kind = ? AND target = ?"
query_constraints_value: ["watch", "/var/log/btmp"]
expect_rows: ">=1"
matched_description: "/var/log/btmp is audited."
not_matched_preferred_value_description: "/var/log/btmp is not audited."
---
config_schema_name: audit_time_change
tags: ["#cis", "#cisubuntu14.04_8.1.4"]
config_schema_description: "Audit time-change syscalls."
query_constraints: "kind = ? AND key = ?"
query_constraints_value: ["syscall", "time-change"]
expect_rows: ">=1"
matched_description: "Time changes are audited."
not_matched_preferred_value_description: "Time changes are not audited."
---
config_schema_name: audit_system_locale
tags: ["#cis", "#cisubuntu14.04_8.1.6"]
config_schema_description: "Audit system-locale (network) syscalls."
query_constraints: "kind = ? AND key = ?"
query_constraints_value: ["syscall", "system-locale"]
expect_rows: ">=1"
matched_description: "System-locale changes are audited."
not_matched_preferred_value_description: "System-locale changes are not audited."
---
config_schema_name: audit_perm_mod
tags: ["#cis", "#cisubuntu14.04_8.1.10"]
config_schema_description: "Audit permission-modification syscalls."
query_constraints: "kind = ? AND key = ?"
query_constraints_value: ["syscall", "perm_mod"]
expect_rows: ">=1"
matched_description: "Permission modifications are audited."
not_matched_preferred_value_description: "Permission modifications are not audited."
`

// fstabRules validate /etc/fstab mount layout (CIS 2.x).
const fstabRules = `
config_schema_name: check_tmp_separate_partition
tags: ["#cis", "#cisubuntu14.04_2.1"]
config_schema_description: "Check if /tmp is on a separate partition"
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
---
config_schema_name: tmp_nodev
tags: ["#cis", "#cisubuntu14.04_2.2"]
config_schema_description: "Mount /tmp with nodev."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: ["options"]
preferred_value: ["nodev"]
preferred_value_match: substr,all
not_matched_preferred_value_description: "/tmp is not mounted nodev."
matched_description: "/tmp is mounted nodev."
---
config_schema_name: tmp_nosuid
tags: ["#cis", "#cisubuntu14.04_2.3"]
config_schema_description: "Mount /tmp with nosuid."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: ["options"]
preferred_value: ["nosuid"]
preferred_value_match: substr,all
not_matched_preferred_value_description: "/tmp is not mounted nosuid."
matched_description: "/tmp is mounted nosuid."
---
config_schema_name: tmp_noexec
tags: ["#cis", "#cisubuntu14.04_2.4"]
config_schema_description: "Mount /tmp with noexec."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: ["options"]
preferred_value: ["noexec"]
preferred_value_match: substr,all
not_matched_preferred_value_description: "/tmp is not mounted noexec."
matched_description: "/tmp is mounted noexec."
---
config_schema_name: check_var_separate_partition
tags: ["#cis", "#cisubuntu14.04_2.5"]
config_schema_description: "Check if /var is on a separate partition."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/var"]
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/var not on a separate partition."
matched_description: "/var is on a separate partition."
---
config_schema_name: check_var_log_separate_partition
tags: ["#cis", "#cisubuntu14.04_2.8"]
config_schema_description: "Check if /var/log is on a separate partition."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/var/log"]
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/var/log not on a separate partition."
matched_description: "/var/log is on a separate partition."
---
config_schema_name: check_home_separate_partition
tags: ["#cis", "#cisubuntu14.04_2.10"]
config_schema_description: "Check if /home is on a separate partition."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/home"]
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/home not on a separate partition."
matched_description: "/home is on a separate partition."
---
config_schema_name: shm_hardened
tags: ["#cis", "#cisubuntu14.04_2.14"]
config_schema_description: "Mount /dev/shm nodev, nosuid, and noexec."
applies_to: ["host"]
query_constraints: "dir = ?"
query_constraints_value: ["/dev/shm"]
query_columns: ["options"]
preferred_value: ["nodev", "nosuid", "noexec"]
preferred_value_match: substr,all
not_matched_preferred_value_description: "/dev/shm lacks nodev/nosuid/noexec."
matched_description: "/dev/shm is mounted nodev, nosuid, noexec."
`

// modprobeRules disable uncommon filesystems and drivers (CIS 1.1.x).
const modprobeRules = `
config_schema_name: disable_cramfs
tags: ["#cis", "#cisubuntu14.04_1.1"]
config_schema_description: "Disable mounting of cramfs filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "cramfs"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "cramfs is not disabled."
matched_description: "cramfs is disabled."
---
config_schema_name: disable_freevxfs
tags: ["#cis", "#cisubuntu14.04_1.2"]
config_schema_description: "Disable mounting of freevxfs filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "freevxfs"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "freevxfs is not disabled."
matched_description: "freevxfs is disabled."
---
config_schema_name: disable_jffs2
tags: ["#cis", "#cisubuntu14.04_1.3"]
config_schema_description: "Disable mounting of jffs2 filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "jffs2"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "jffs2 is not disabled."
matched_description: "jffs2 is disabled."
---
config_schema_name: disable_hfs
tags: ["#cis", "#cisubuntu14.04_1.4"]
config_schema_description: "Disable mounting of hfs filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "hfs"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "hfs is not disabled."
matched_description: "hfs is disabled."
---
config_schema_name: disable_hfsplus
tags: ["#cis", "#cisubuntu14.04_1.5"]
config_schema_description: "Disable mounting of hfsplus filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "hfsplus"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "hfsplus is not disabled."
matched_description: "hfsplus is disabled."
---
config_schema_name: disable_squashfs
tags: ["#cis", "#cisubuntu14.04_1.6"]
config_schema_description: "Disable mounting of squashfs filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "squashfs"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "squashfs is not disabled."
matched_description: "squashfs is disabled."
---
config_schema_name: disable_udf
tags: ["#cis", "#cisubuntu14.04_1.7"]
config_schema_description: "Disable mounting of udf filesystems."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "udf"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "udf is not disabled."
matched_description: "udf is disabled."
---
config_schema_name: disable_usb_storage
tags: ["#cis", "#security"]
config_schema_description: "Disable the usb-storage driver."
query_constraints: "directive = ? AND module = ?"
query_constraints_value: ["install", "usb-storage"]
query_columns: ["args"]
preferred_value: ["/bin/true"]
preferred_value_match: exact,any
not_matched_preferred_value_description: "usb-storage is not disabled."
matched_description: "usb-storage is disabled."
`
