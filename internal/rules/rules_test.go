package rules

import (
	"testing"

	"configvalidator/internal/cvl"
)

// TestTable1RuleCounts asserts the exact Table-1 coverage numbers: 11
// targets, 135 rules total.
func TestTable1RuleCounts(t *testing.T) {
	wants := map[string]int{
		"sshd":      18,
		"sysctl":    18,
		"audit":     20,
		"fstab":     8,
		"modprobe":  8,
		"nginx":     11,
		"apache":    11,
		"mysql":     11,
		"hadoop":    9,
		"docker":    13,
		"openstack": 8,
	}
	if len(Targets()) != 11 {
		t.Errorf("targets = %d, want 11 (Table 1)", len(Targets()))
	}
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for target, want := range wants {
		got := len(all[target])
		if got != want {
			t.Errorf("target %s rules = %d, want %d", target, got, want)
		}
		total += got
	}
	if total != 135 {
		t.Errorf("total rules = %d, want 135 (Table 1)", total)
	}
	if n, err := TotalRules(); err != nil || n != 135 {
		t.Errorf("TotalRules() = %d, %v", n, err)
	}
}

// TestCoverageClaims reproduces the §4.1 coverage statements.
func TestCoverageClaims(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	// "ConfigValidator presently covers 41% of the CIS Docker checklist."
	dockerPct := float64(len(all["docker"])) / float64(CISDockerChecklistSize) * 100
	if dockerPct < 40 || dockerPct > 42 {
		t.Errorf("CIS Docker coverage = %.1f%%, want ~41%%", dockerPct)
	}
	// "...and all of the audit rules of the Ubuntu checklist."
	if len(all["audit"]) != UbuntuAuditChecklistSize {
		t.Errorf("audit coverage = %d/%d, want full", len(all["audit"]), UbuntuAuditChecklistSize)
	}
}

func TestAllRulesLintClean(t *testing.T) {
	files := Files()
	for path, content := range files {
		if path == "manifest.yaml" {
			continue
		}
		diags := cvl.Lint(path, []byte(content))
		for _, d := range diags {
			if d.Level == cvl.LintError {
				t.Errorf("%s: %s", path, d)
			}
		}
	}
}

func TestAllRulesHaveDescriptionsAndTags(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for target, rs := range all {
		for _, r := range rs {
			if r.Description == "" {
				t.Errorf("%s/%s: missing description", target, r.Name)
			}
			if len(r.Tags) == 0 {
				t.Errorf("%s/%s: missing tags", target, r.Name)
			}
		}
	}
}

func TestStandardsPerTable1(t *testing.T) {
	// System services and docker follow CIS; apache/nginx/mysql follow
	// OWASP; hadoop HIPAA/PCI; openstack OSSG (§4.1).
	cov, err := CoverageByStandard()
	if err != nil {
		t.Fatal(err)
	}
	if cov["#cis"] < 70 {
		t.Errorf("#cis rules = %d, want >= 70", cov["#cis"])
	}
	if cov["#owasp"] < 30 {
		t.Errorf("#owasp rules = %d, want >= 30", cov["#owasp"])
	}
	if cov["#hipaa"] == 0 {
		t.Error("no #hipaa rules")
	}
	if cov["#ossg"] == 0 {
		t.Error("no #ossg rules")
	}
}

func TestManifestParsesAndCoversTargets(t *testing.T) {
	m, err := Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Entries) != 11 {
		t.Errorf("manifest entries = %d", len(m.Entries))
	}
	for _, target := range Targets() {
		entry, ok := m.Entry(target.Name)
		if !ok {
			t.Errorf("manifest missing %s", target.Name)
			continue
		}
		if !entry.Enabled || entry.CVLFile != target.RuleFile {
			t.Errorf("entry %s = %+v", target.Name, entry)
		}
	}
}

func TestLoadUnknownTarget(t *testing.T) {
	if _, err := Load("kubernetes"); err == nil {
		t.Error("unknown target loaded")
	}
}

func TestReaderMissingFile(t *testing.T) {
	if _, err := Reader()("ghost.yaml"); err == nil {
		t.Error("missing file read")
	}
}

func TestSortedTargetNames(t *testing.T) {
	names := SortedTargetNames()
	if len(names) != 11 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}

// TestFormatRoundTripEntireLibrary re-formats all 135 built-in rules and
// re-parses them, proving the formatter covers the full vocabulary in use.
func TestFormatRoundTripEntireLibrary(t *testing.T) {
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for target, rs := range all {
		formatted, err := cvl.FormatRuleFile("", rs)
		if err != nil {
			t.Fatalf("%s: format: %v", target, err)
		}
		back, err := cvl.ParseRuleFile(target+".yaml", formatted)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", target, err)
		}
		if len(back.Rules) != len(rs) {
			t.Errorf("%s: %d rules in, %d out", target, len(rs), len(back.Rules))
		}
		for i := range rs {
			if rs[i].Name != back.Rules[i].Name || rs[i].Type != back.Rules[i].Type {
				t.Errorf("%s rule %d changed identity: %s/%v -> %s/%v",
					target, i, rs[i].Name, rs[i].Type, back.Rules[i].Name, back.Rules[i].Type)
			}
		}
		total += len(back.Rules)
	}
	if total != 135 {
		t.Errorf("round-tripped %d rules", total)
	}
}

func TestRuleTypeMix(t *testing.T) {
	// The library exercises all four per-entity rule types.
	all, err := All()
	if err != nil {
		t.Fatal(err)
	}
	byType := make(map[cvl.RuleType]int)
	for _, rs := range all {
		for _, r := range rs {
			byType[r.Type]++
		}
	}
	if byType[cvl.TypeTree] == 0 || byType[cvl.TypeSchema] == 0 || byType[cvl.TypePath] == 0 || byType[cvl.TypeScript] == 0 {
		t.Errorf("rule type mix = %v", byType)
	}
}
