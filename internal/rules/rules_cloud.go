package rules

// Cloud rules: docker (13, CIS Docker benchmark — 41% of the targeted
// checklist) and openstack (8, OSSG) — 21 rules.

// dockerRules validate Docker images (docker.image_config feature),
// running containers (docker.inspect feature), and the daemon
// configuration (/etc/docker/daemon.json).
const dockerRules = `
script_name: image_user_not_root
script_description: "Containers must not default to the root user (CIS Docker 4.1)."
script_feature: docker.image_config
non_preferred_value: ["User root"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Image runs as root by default."
matched_description: "Image runs as a non-root user."
tags: ["#cis", "#cisdocker_4.1"]
applies_to: ["image", "container"]
---
script_name: image_healthcheck_present
script_description: "Images should declare a HEALTHCHECK (CIS Docker 4.6)."
script_feature: docker.image_config
non_preferred_value: ["Healthcheck none"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Image declares no HEALTHCHECK."
matched_description: "Image declares a HEALTHCHECK."
tags: ["#cis", "#cisdocker_4.6"]
applies_to: ["image", "container"]
---
script_name: image_no_ssh_port
script_description: "Images must not expose the SSH port (CIS Docker 4.x)."
script_feature: docker.image_config
non_preferred_value: ["ExposedPort 22/tcp"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Image exposes port 22 (sshd in a container)."
matched_description: "Image does not expose SSH."
tags: ["#cis", "#cisdocker_5.6"]
applies_to: ["image", "container"]
---
script_name: image_no_secrets_in_env
script_description: "Images must not carry secrets in environment variables (CIS Docker 4.10)."
script_feature: docker.image_config
non_preferred_value: ["PASSWORD=", "SECRET=", "API_KEY=", "TOKEN="]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Image environment contains a secret-like variable."
matched_description: "No secret-like environment variables."
tags: ["#cis", "#cisdocker_4.10"]
applies_to: ["image", "container"]
---
script_name: container_not_privileged
script_description: "Containers must not run privileged (CIS Docker 5.4)."
script_feature: docker.inspect
non_preferred_value: ["Privileged true"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Container runs with --privileged."
matched_description: "Container is not privileged."
tags: ["#cis", "#cisdocker_5.4"]
applies_to: ["container"]
---
script_name: container_no_host_network
script_description: "Containers must not share the host network namespace (CIS Docker 5.9)."
script_feature: docker.inspect
non_preferred_value: ["HostNetwork true"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Container uses --net=host."
matched_description: "Container has an isolated network namespace."
tags: ["#cis", "#cisdocker_5.9"]
applies_to: ["container"]
---
script_name: container_no_docker_socket
script_description: "The Docker socket must not be mounted into containers (CIS Docker 5.31)."
script_feature: docker.inspect
non_preferred_value: ["Mount /var/run/docker.sock"]
non_preferred_value_match: substr,any
not_matched_preferred_value_description: "Container mounts the Docker daemon socket."
matched_description: "Docker socket is not mounted."
tags: ["#cis", "#cisdocker_5.31"]
applies_to: ["container"]
---
config_name: icc
config_path: [""]
config_description: "Restrict inter-container communication (CIS Docker 2.1)."
preferred_value: ["false"]
preferred_value_match: exact,any
not_present_description: "icc is not set; inter-container traffic is unrestricted."
not_matched_preferred_value_description: "Inter-container communication is unrestricted."
matched_description: "Inter-container communication is restricted."
tags: ["#cis", "#cisdocker_2.1"]
file_context: ["daemon.json"]
---
config_name: userland-proxy
config_path: [""]
config_description: "Disable the userland proxy (CIS Docker 2.15)."
preferred_value: ["false"]
preferred_value_match: exact,any
not_present_description: "userland-proxy is not set."
not_matched_preferred_value_description: "The userland proxy is enabled."
matched_description: "The userland proxy is disabled."
tags: ["#cis", "#cisdocker_2.15"]
file_context: ["daemon.json"]
---
config_name: live-restore
config_path: [""]
config_description: "Enable live restore so containers survive daemon restarts (CIS Docker 2.14)."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "live-restore is not set."
not_matched_preferred_value_description: "Live restore is disabled."
matched_description: "Live restore is enabled."
tags: ["#cis", "#cisdocker_2.14"]
file_context: ["daemon.json"]
---
config_name: tlsverify
config_path: [""]
config_description: "Require TLS verification when the daemon listens on TCP (CIS Docker 2.6)."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "tlsverify is not set; a TCP listener would be unauthenticated."
not_matched_preferred_value_description: "Daemon TCP listener does not verify TLS clients."
matched_description: "Daemon TLS verification is on."
tags: ["#cis", "#cisdocker_2.6"]
file_context: ["daemon.json"]
---
config_name: log-driver
config_path: [""]
config_description: "Configure centralized logging (CIS Docker 2.12)."
not_present_description: "log-driver is not set; logs stay on the host."
matched_description: "A log driver is configured."
tags: ["#cis", "#cisdocker_2.12"]
file_context: ["daemon.json"]
---
config_name: userns-remap
config_path: [""]
config_description: "Enable user-namespace remapping (CIS Docker 2.8)."
not_present_description: "userns-remap is not set; container root is host root."
matched_description: "User-namespace remapping is enabled."
tags: ["#cis", "#cisdocker_2.8"]
file_context: ["daemon.json"]
`

// openstackRules validate OpenStack control-plane state crawled from the
// cloud API into /openstack/*.json (OSSG guidance).
const openstackRules = `
config_name: tls_enabled
config_path: ["identity"]
config_description: "Identity API endpoints must require TLS."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "tls_enabled is not reported by the identity service."
not_matched_preferred_value_description: "Identity endpoints accept plaintext connections."
matched_description: "Identity endpoints require TLS."
tags: ["#ossg", "#ssl"]
file_context: ["identity.json"]
---
config_name: admin_token_enabled
config_path: ["identity"]
config_description: "The bootstrap admin_token must be disabled."
preferred_value: ["false"]
preferred_value_match: exact,any
not_present_description: "admin_token_enabled is not reported."
not_matched_preferred_value_description: "The insecure bootstrap admin token is still enabled."
matched_description: "The bootstrap admin token is disabled."
tags: ["#ossg", "#security"]
file_context: ["identity.json"]
---
config_name: token_expiration_seconds
config_path: ["identity"]
config_description: "Auth tokens must expire within 4 hours."
preferred_value: ["^([1-9][0-9]{0,3}|1[0-3][0-9]{3}|14[0-3][0-9]{2}|14400)$"]
preferred_value_match: regex,any
not_present_description: "token_expiration_seconds is not reported."
not_matched_preferred_value_description: "Token lifetime exceeds 4 hours."
matched_description: "Token lifetime is bounded."
tags: ["#ossg", "#security"]
file_context: ["identity.json"]
---
config_name: password_min_length
config_path: ["identity"]
config_description: "Password policy must require at least 12 characters."
preferred_value: ["^(1[2-9]|[2-9][0-9]|[1-9][0-9]{2,})$"]
preferred_value_match: regex,any
not_present_description: "password_min_length is not reported."
not_matched_preferred_value_description: "Password minimum length is below 12."
matched_description: "Password minimum length is at least 12."
tags: ["#ossg", "#security"]
file_context: ["identity.json"]
---
config_name: remote_ip_prefix
config_path: ["security_groups/rules"]
config_description: "No security group rule may be open to the world."
non_preferred_value: ["0.0.0.0/0", "::/0"]
non_preferred_value_match: exact,any
occurrence: all
not_present_description: "No security group rules found."
not_matched_preferred_value_description: "A security group rule is open to 0.0.0.0/0."
matched_description: "No world-open security group rules."
tags: ["#ossg", "#network"]
file_context: ["security_groups.json"]
absent_pass: true
---
config_name: protocol
config_path: ["security_groups/rules"]
config_description: "Security group rules must name a concrete protocol."
non_preferred_value: ["any", ""]
non_preferred_value_match: exact,any
occurrence: all
not_present_description: "No security group rules found."
not_matched_preferred_value_description: "A security group rule allows any protocol."
matched_description: "All rules name a concrete protocol."
tags: ["#ossg", "#network"]
file_context: ["security_groups.json"]
absent_pass: true
---
config_name: port_range_min
config_path: ["security_groups/rules"]
config_description: "Security group rules must not open all ports."
non_preferred_value: ["0"]
non_preferred_value_match: exact,any
occurrence: all
not_present_description: "No security group rules found."
not_matched_preferred_value_description: "A security group rule opens the full port range."
matched_description: "No all-port rules."
tags: ["#ossg", "#network"]
file_context: ["security_groups.json"]
absent_pass: true
---
config_name: mfa_enabled
config_path: ["users"]
config_description: "All identity users must have MFA enabled."
preferred_value: ["true"]
preferred_value_match: exact,any
occurrence: all
not_present_description: "No users reported."
not_matched_preferred_value_description: "A user has MFA disabled."
matched_description: "All users have MFA enabled."
tags: ["#ossg", "#security"]
file_context: ["users.json"]
absent_pass: true
`
