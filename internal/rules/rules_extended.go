package rules

import (
	"fmt"

	"configvalidator/internal/cvl"
)

// Extended rule pack: rules added beyond the paper's Table-1 snapshot,
// reflecting §5's note that "the rule set is constantly being expanded".
// These cover the account database (passwd/group), resource limits,
// cron, and name resolution — 12 rules across 4 additional targets. They
// are delivered separately from the 135-rule Table-1 library so the
// coverage reproduction stays exact.

// passwdRules validate the account database (CIS 9.2.x / 13.x).
const passwdRules = `
config_schema_name: only_root_uid0
tags: ["#cis", "#cisubuntu14.04_9.2.5", "#extended"]
config_schema_description: "Only root may have UID 0."
query_constraints: "uid = ?"
query_constraints_value: ["0"]
query_columns: ["name"]
preferred_value: ["root"]
preferred_value_match: exact,any
matched_description: "root is the only UID-0 account."
not_matched_preferred_value_description: "A non-root account has UID 0."
---
config_schema_name: no_empty_password_fields
tags: ["#cis", "#cisubuntu14.04_9.2.1", "#extended"]
config_schema_description: "Every account must have a password field set."
query_constraints: "password = ?"
query_constraints_value: [""]
expect_rows: "0"
matched_description: "No empty password fields."
not_matched_preferred_value_description: "An account has an empty password field."
---
config_schema_name: no_legacy_plus_entries
tags: ["#cis", "#cisubuntu14.04_13.2", "#extended"]
config_schema_description: "No legacy NIS '+' entries."
query_constraints: "name LIKE ?"
query_constraints_value: ["+%"]
expect_rows: "0"
matched_description: "No legacy '+' entries."
not_matched_preferred_value_description: "A legacy NIS '+' entry is present."
---
config_schema_name: system_accounts_nologin
tags: ["#cis", "#extended"]
config_schema_description: "The daemon account must not have a login shell."
query_constraints: "name = ?"
query_constraints_value: ["daemon"]
query_columns: ["shell"]
non_preferred_value: ["/bin/bash", "/bin/sh", "/bin/zsh"]
non_preferred_value_match: exact,any
matched_description: "daemon has no login shell."
not_matched_preferred_value_description: "daemon has a login shell."
`

// groupRules validate /etc/group.
const groupRules = `
config_schema_name: root_group_gid0
tags: ["#cis", "#extended"]
config_schema_description: "The root group must have GID 0."
query_constraints: "name = ?"
query_constraints_value: ["root"]
query_columns: ["gid"]
preferred_value: ["0"]
preferred_value_match: exact,any
matched_description: "root group has GID 0."
not_matched_preferred_value_description: "root group GID is not 0."
---
config_schema_name: shadow_group_empty
tags: ["#cis", "#cisubuntu14.04_9.2.20", "#extended"]
config_schema_description: "The shadow group must have no members."
query_constraints: "name = ?"
query_constraints_value: ["shadow"]
query_columns: ["members"]
preferred_value: [""]
preferred_value_match: exact,any
matched_description: "shadow group is empty."
not_matched_preferred_value_description: "The shadow group has members."
`

// limitsRules validate /etc/security/limits.conf.
const limitsRules = `
config_schema_name: core_dumps_restricted
tags: ["#cis", "#cisubuntu14.04_4.1", "#extended"]
config_schema_description: "Restrict core dumps with a hard limit of 0."
query_constraints: "type = ? AND item = ?"
query_constraints_value: ["hard", "core"]
query_columns: ["value"]
preferred_value: ["0"]
preferred_value_match: exact,any
matched_description: "Core dumps are restricted."
not_matched_preferred_value_description: "Core dumps are not restricted to 0."
---
config_schema_name: nofile_bounded
tags: ["#extended", "#dos"]
config_schema_description: "An explicit open-file limit must be configured."
query_constraints: "item = ?"
query_constraints_value: ["nofile"]
expect_rows: ">=1"
matched_description: "An open-file limit is configured."
not_matched_preferred_value_description: "No open-file limit is configured."
`

// crontabRules validate the system crontab.
const crontabRules = `
config_schema_name: cron_jobs_run_as_named_users
tags: ["#cis", "#extended"]
config_schema_description: "Every cron job must name a user."
query_constraints: "kind = ? AND user = ?"
query_constraints_value: ["job", ""]
expect_rows: "0"
matched_description: "All cron jobs name a user."
not_matched_preferred_value_description: "A cron job lacks a user field."
---
config_schema_name: cron_path_set
tags: ["#cis", "#extended"]
config_schema_description: "The crontab must pin PATH explicitly."
query_constraints: "kind = ? AND command LIKE ?"
query_constraints_value: ["env", "PATH=%"]
expect_rows: ">=1"
matched_description: "Crontab pins PATH."
not_matched_preferred_value_description: "Crontab does not pin PATH."
---
path_name: /etc/crontab
path_description: "The system crontab must be root-owned and not world-readable."
ownership: "0:0"
max_permission: 600
tags: ["#cis", "#cisubuntu14.04_9.1.2", "#extended"]
matched_description: "/etc/crontab metadata is correct."
not_matched_preferred_value_description: "/etc/crontab ownership or permissions are too open."
---
config_schema_name: resolv_nameserver_present
tags: ["#extended"]
config_schema_description: "At least one nameserver must be configured."
query_constraints: "directive = ?"
query_constraints_value: ["nameserver"]
expect_rows: ">=1"
matched_description: "A nameserver is configured."
not_matched_preferred_value_description: "No nameserver is configured."
`

// ExtendedTargets returns the post-paper target additions.
func ExtendedTargets() []Target {
	return []Target{
		{Name: "passwd", Category: "system", Standard: "CIS", RuleFile: "component_configs/passwd.yaml", SearchPaths: []string{"/etc/passwd"}},
		{Name: "group", Category: "system", Standard: "CIS", RuleFile: "component_configs/group.yaml", SearchPaths: []string{"/etc/group"}},
		{Name: "limits", Category: "system", Standard: "CIS", RuleFile: "component_configs/limits.yaml", SearchPaths: []string{"/etc/security"}},
		{Name: "cron", Category: "system", Standard: "CIS", RuleFile: "component_configs/cron.yaml", SearchPaths: []string{"/etc/crontab", "/etc/cron.d", "/etc/resolv.conf"}},
	}
}

// ExtendedFiles returns the extended pack's rule files plus a manifest
// covering base and extended targets together.
func ExtendedFiles() map[string]string {
	out := Files()
	out["component_configs/passwd.yaml"] = passwdRules
	out["component_configs/group.yaml"] = groupRules
	out["component_configs/limits.yaml"] = limitsRules
	out["component_configs/cron.yaml"] = crontabRules
	manifest := out["manifest.yaml"]
	for _, t := range ExtendedTargets() {
		manifest += t.Name + ":\n  enabled: True\n  config_search_paths:\n"
		for _, p := range t.SearchPaths {
			manifest += "    - " + p + "\n"
		}
		manifest += "  cvl_file: " + t.RuleFile + "\n"
	}
	out["manifest.yaml"] = manifest
	return out
}

// ExtendedReader reads from the combined base+extended library.
func ExtendedReader() cvl.FileReader {
	files := ExtendedFiles()
	return func(path string) ([]byte, error) {
		content, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("rules: no embedded file %q", path)
		}
		return []byte(content), nil
	}
}

// ExtendedManifest parses the combined manifest (15 targets).
func ExtendedManifest() (*cvl.Manifest, error) {
	return cvl.ParseManifest("manifest.yaml", []byte(ExtendedFiles()["manifest.yaml"]))
}
