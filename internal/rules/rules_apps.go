package rules

// Application rules: nginx (11), apache (11), mysql (11), hadoop (9) — 42
// rules, conforming to OWASP / HIPAA / PCI guidance per Table 1.

// nginxRules validate nginx web-server configuration.
const nginxRules = `
config_name: ssl_protocols
config_path: ["server", "http/server", "http"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
preferred_value_match: substr,any
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1 ", "TLSv1.1" ]
non_preferred_value_match: substr,any
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non-recommended TLS version enabled."
matched_description: "ssl_protocols is set to TLS v1.2/1.3"
tags: ["#owasp", "#security", "#ssl"]
require_other_configs: [ listen, ssl_certificate, ssl_certificate_key ]
file_context: ["nginx.conf", "sites-enabled"]
---
config_name: server_tokens
config_path: ["http", "server", "http/server"]
config_description: "Hide the nginx version in responses and error pages."
preferred_value: ["off"]
preferred_value_match: exact,any
not_present_description: "server_tokens is not set; the version is disclosed."
not_matched_preferred_value_description: "server_tokens is enabled; the version is disclosed."
matched_description: "Server version disclosure is off."
tags: ["#owasp", "#security"]
file_context: ["nginx.conf", "sites-enabled"]
---
config_name: ssl_prefer_server_ciphers
config_path: ["server", "http/server", "http"]
config_description: "Prefer server cipher order during TLS negotiation."
preferred_value: ["on"]
preferred_value_match: exact,any
not_present_description: "ssl_prefer_server_ciphers is not set."
not_matched_preferred_value_description: "Client cipher order is preferred."
matched_description: "Server cipher order is preferred."
tags: ["#owasp", "#ssl"]
require_other_configs: [ ssl_certificate ]
file_context: ["nginx.conf", "sites-enabled"]
---
config_name: ssl_ciphers
config_path: ["server", "http/server", "http"]
config_description: "Exclude weak ciphers from the TLS cipher list."
non_preferred_value: ["RC4", "MD5", "DES", "EXPORT"]
non_preferred_value_match: substr,any
not_present_description: "ssl_ciphers is not set; built-in defaults apply."
not_matched_preferred_value_description: "Weak ciphers are enabled."
matched_description: "No weak ciphers are configured."
tags: ["#owasp", "#ssl"]
require_other_configs: [ ssl_certificate ]
file_context: ["nginx.conf", "sites-enabled"]
absent_pass: true
---
config_name: autoindex
config_path: ["http", "server", "http/server", "http/server/location"]
config_description: "Disable automatic directory listings."
non_preferred_value: ["on"]
non_preferred_value_match: exact,any
not_present_description: "autoindex is not set (off by default)."
not_matched_preferred_value_description: "Directory listings are enabled."
matched_description: "Directory listings are disabled."
tags: ["#owasp", "#security"]
file_context: ["nginx.conf", "sites-enabled"]
absent_pass: true
---
config_name: user
config_path: [""]
config_description: "Run worker processes as an unprivileged user."
non_preferred_value: ["root"]
non_preferred_value_match: exact,any
not_present_description: "user is not set; workers may run as the master's user."
not_matched_preferred_value_description: "Workers run as root."
matched_description: "Workers run as an unprivileged user."
tags: ["#owasp", "#security"]
file_context: ["nginx.conf"]
---
config_name: client_max_body_size
config_path: ["http", "server", "http/server"]
config_description: "Bound request body size to mitigate abuse."
not_present_description: "client_max_body_size is not set; the 1m default applies silently."
matched_description: "Request body size is bounded."
tags: ["#owasp", "#dos"]
file_context: ["nginx.conf", "sites-enabled"]
---
config_name: keepalive_timeout
config_path: ["http", "server", "http/server"]
config_description: "Bound keep-alive timeout to limit idle connections."
non_preferred_value: ["3600", "0"]
non_preferred_value_match: exact,any
not_present_description: "keepalive_timeout is not set."
not_matched_preferred_value_description: "keepalive_timeout is unbounded or excessive."
matched_description: "keepalive_timeout is bounded."
tags: ["#owasp", "#dos"]
file_context: ["nginx.conf", "sites-enabled"]
absent_pass: true
---
config_name: add_header
config_path: ["http", "server", "http/server"]
config_description: "Send the X-Frame-Options header on at least one level."
preferred_value: ["X-Frame-Options"]
preferred_value_match: substr,any
occurrence: any
not_present_description: "No security headers are configured."
not_matched_preferred_value_description: "X-Frame-Options is not sent."
matched_description: "X-Frame-Options is configured."
tags: ["#owasp", "#headers"]
file_context: ["nginx.conf", "sites-enabled"]
---
config_name: error_log
config_path: ["", "http"]
config_description: "Configure an error log."
not_present_description: "No error log is configured."
matched_description: "An error log is configured."
tags: ["#owasp", "#logging"]
file_context: ["nginx.conf"]
---
path_name: /etc/nginx/nginx.conf
path_description: "nginx.conf must be owned by root and not world-writable."
ownership: "0:0"
max_permission: 644
tags: ["#owasp", "#security"]
not_matched_preferred_value_description: "nginx.conf ownership or permissions are too open."
matched_description: "nginx.conf metadata is correct."
`

// apacheRules validate Apache httpd configuration.
const apacheRules = `
config_name: ServerTokens
config_path: [""]
config_description: "Limit server version disclosure in the Server header."
preferred_value: ["Prod", "ProductOnly"]
preferred_value_match: exact,any
not_present_description: "ServerTokens is not set; full version details are disclosed."
not_matched_preferred_value_description: "ServerTokens discloses version details."
matched_description: "Server header discloses the product only."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf", "security.conf"]
---
config_name: ServerSignature
config_path: [""]
config_description: "Disable the server signature on generated pages."
preferred_value: ["Off"]
preferred_value_match: exact,any
case_insensitive: true
not_present_description: "ServerSignature is not set."
not_matched_preferred_value_description: "Server signature is enabled."
matched_description: "Server signature is disabled."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf", "security.conf"]
---
config_name: TraceEnable
config_path: [""]
config_description: "Disable the TRACE method."
preferred_value: ["Off"]
preferred_value_match: exact,any
case_insensitive: true
not_present_description: "TraceEnable is not set; TRACE is allowed by default."
not_matched_preferred_value_description: "TRACE is enabled."
matched_description: "TRACE is disabled."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf", "security.conf"]
---
config_name: Timeout
config_path: [""]
config_description: "Bound the request timeout to at most 300 seconds."
preferred_value: ["^([1-9]|[1-9][0-9]|[1-2][0-9][0-9]|300)$"]
preferred_value_match: regex,any
not_present_description: "Timeout is not set."
not_matched_preferred_value_description: "Timeout exceeds 300 seconds."
matched_description: "Timeout is bounded."
tags: ["#owasp", "#dos"]
file_context: ["apache2.conf", "httpd.conf"]
---
config_name: KeepAliveTimeout
config_path: [""]
config_description: "Bound keep-alive timeout to at most 15 seconds."
preferred_value: ["^([1-9]|1[0-5])$"]
preferred_value_match: regex,any
not_present_description: "KeepAliveTimeout is not set."
not_matched_preferred_value_description: "KeepAliveTimeout exceeds 15 seconds."
matched_description: "KeepAliveTimeout is bounded."
tags: ["#owasp", "#dos"]
file_context: ["apache2.conf", "httpd.conf"]
absent_pass: true
---
config_name: FileETag
config_path: [""]
config_description: "Avoid inode-revealing ETags."
preferred_value: ["None"]
preferred_value_match: exact,any
not_present_description: "FileETag is not set; defaults may expose inode data."
not_matched_preferred_value_description: "FileETag exposes filesystem details."
matched_description: "FileETag is None."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf", "security.conf"]
absent_pass: true
---
config_name: Options
config_path: ["Directory"]
config_description: "Disable directory indexes in Directory sections."
non_preferred_value: ["Indexes"]
non_preferred_value_match: substr,any
not_present_description: "No Options directives present."
not_matched_preferred_value_description: "Directory indexes are enabled."
matched_description: "Directory indexes are disabled."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf"]
absent_pass: true
---
config_name: AllowOverride
config_path: ["Directory"]
config_description: "Disallow .htaccess overrides."
preferred_value: ["None"]
preferred_value_match: exact,any
occurrence: all
not_present_description: "AllowOverride is not set."
not_matched_preferred_value_description: ".htaccess overrides are permitted."
matched_description: ".htaccess overrides are disabled."
tags: ["#owasp", "#security"]
file_context: ["apache2.conf", "httpd.conf"]
absent_pass: true
---
config_name: LimitRequestBody
config_path: ["", "Directory"]
config_description: "Bound the request body size."
non_preferred_value: ["0"]
non_preferred_value_match: exact,any
not_present_description: "LimitRequestBody is not set (unlimited)."
not_matched_preferred_value_description: "Request body size is unlimited."
matched_description: "Request body size is bounded."
tags: ["#owasp", "#dos"]
file_context: ["apache2.conf", "httpd.conf"]
---
config_name: SSLProtocol
config_path: ["", "VirtualHost"]
config_description: "Explicitly disable SSLv2 and SSLv3."
preferred_value: ["-SSLv2", "-SSLv3"]
preferred_value_match: substr,all
not_present_description: "SSLProtocol is not set."
not_matched_preferred_value_description: "SSLv2/SSLv3 are not explicitly disabled."
matched_description: "Legacy SSL protocols are excluded."
tags: ["#owasp", "#ssl"]
file_context: ["apache2.conf", "httpd.conf", "ssl.conf"]
absent_pass: true
---
path_name: /etc/apache2/apache2.conf
path_description: "apache2.conf must be owned by root and not world-writable."
ownership: "0:0"
max_permission: 644
tags: ["#owasp", "#security"]
not_matched_preferred_value_description: "apache2.conf ownership or permissions are too open."
matched_description: "apache2.conf metadata is correct."
`

// mysqlRules validate MySQL server configuration, file metadata (Listing
// 4), and runtime SSL state (a script rule).
const mysqlRules = `
config_name: bind-address
config_path: ["mysqld"]
config_description: "Bind MySQL to localhost unless remote access is required."
preferred_value: ["127.0.0.1", "::1"]
preferred_value_match: exact,any
not_present_description: "bind-address is not set; MySQL listens on all interfaces."
not_matched_preferred_value_description: "MySQL listens on a non-loopback address."
matched_description: "MySQL is bound to localhost."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: local-infile
config_path: ["mysqld"]
config_description: "Disable LOAD DATA LOCAL INFILE."
preferred_value: ["0", "OFF"]
preferred_value_match: exact,any
not_present_description: "local-infile is not set; local infile is enabled by default."
not_matched_preferred_value_description: "LOAD DATA LOCAL INFILE is enabled."
matched_description: "LOAD DATA LOCAL INFILE is disabled."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: symbolic-links
config_path: ["mysqld"]
config_description: "Disable symbolic links to prevent data-directory escapes."
preferred_value: ["0"]
preferred_value_match: exact,any
not_present_description: "symbolic-links is not set."
not_matched_preferred_value_description: "Symbolic links are enabled."
matched_description: "Symbolic links are disabled."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: ssl-ca
config_path: ["mysqld"]
config_description: "Configure a CA certificate for TLS connections."
not_present_description: "ssl-ca is not configured; TLS is unavailable."
matched_description: "ssl-ca is configured."
tags: ["#owasp", "#ssl"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: ssl-cert
config_path: ["mysqld"]
config_description: "Configure a server certificate for TLS connections."
not_present_description: "ssl-cert is not configured."
matched_description: "ssl-cert is configured."
tags: ["#owasp", "#ssl"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: old_passwords
config_path: ["mysqld"]
config_description: "Do not use legacy password hashing."
non_preferred_value: ["1", "ON"]
non_preferred_value_match: exact,any
not_present_description: "old_passwords is not set (good)."
not_matched_preferred_value_description: "Legacy password hashing is enabled."
matched_description: "Legacy password hashing is disabled."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
absent_pass: true
---
config_name: secure-file-priv
config_path: ["mysqld"]
config_description: "Restrict file import/export to a dedicated directory."
not_present_description: "secure-file-priv is not set; file operations are unrestricted."
matched_description: "secure-file-priv is configured."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: skip-show-database
config_path: ["mysqld"]
config_description: "Hide the database list from unprivileged users."
not_present_description: "skip-show-database is not set."
matched_description: "skip-show-database is enabled."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
---
config_name: allow-suspicious-udfs
config_path: ["mysqld"]
config_description: "Do not allow suspicious user-defined functions."
non_preferred_value: ["1", "ON", "true"]
non_preferred_value_match: exact,any
not_present_description: "allow-suspicious-udfs is not set (good)."
not_matched_preferred_value_description: "Suspicious UDFs are allowed."
matched_description: "Suspicious UDFs are not allowed."
tags: ["#owasp", "#security"]
file_context: ["my.cnf", "mysqld.cnf"]
absent_pass: true
---
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: ["#owasp"]
not_matched_preferred_value_description: "my.cnf ownership or permissions are wrong."
matched_description: "my.cnf metadata is correct."
---
script_name: mysql_ssl_enabled
script_description: "Verify at runtime that the server reports SSL support."
script_feature: mysql.ssl
preferred_value: ["have_ssl YES"]
preferred_value_match: substr,all
not_matched_preferred_value_description: "MySQL runtime reports SSL disabled."
matched_description: "MySQL runtime reports SSL enabled."
tags: ["#owasp", "#ssl"]
`

// hadoopRules validate Hadoop *-site.xml security settings.
const hadoopRules = `
config_name: hadoop.security.authentication
config_path: [""]
config_description: "Require Kerberos authentication."
preferred_value: ["kerberos"]
preferred_value_match: exact,any
not_present_description: "hadoop.security.authentication is not set (simple auth)."
not_matched_preferred_value_description: "Cluster does not require Kerberos."
matched_description: "Kerberos authentication is required."
tags: ["#hipaa", "#pci", "#security"]
file_context: ["core-site.xml"]
---
config_name: hadoop.security.authorization
config_path: [""]
config_description: "Enable service-level authorization."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "hadoop.security.authorization is not set."
not_matched_preferred_value_description: "Service-level authorization is disabled."
matched_description: "Service-level authorization is enabled."
tags: ["#hipaa", "#pci", "#security"]
file_context: ["core-site.xml"]
---
config_name: hadoop.rpc.protection
config_path: [""]
config_description: "Protect RPC traffic with privacy (encryption)."
preferred_value: ["privacy"]
preferred_value_match: exact,any
not_present_description: "hadoop.rpc.protection is not set."
not_matched_preferred_value_description: "RPC traffic is not encrypted."
matched_description: "RPC traffic is encrypted."
tags: ["#hipaa", "#pci", "#ssl"]
file_context: ["core-site.xml"]
---
config_name: dfs.permissions.enabled
config_path: [""]
config_description: "Enable HDFS permission checking."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "dfs.permissions.enabled is not set."
not_matched_preferred_value_description: "HDFS permission checking is disabled."
matched_description: "HDFS permission checking is enabled."
tags: ["#hipaa", "#pci", "#security"]
file_context: ["hdfs-site.xml"]
---
config_name: dfs.encrypt.data.transfer
config_path: [""]
config_description: "Encrypt HDFS data transfer."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "dfs.encrypt.data.transfer is not set."
not_matched_preferred_value_description: "HDFS data transfer is not encrypted."
matched_description: "HDFS data transfer is encrypted."
tags: ["#hipaa", "#pci", "#ssl"]
file_context: ["hdfs-site.xml"]
---
config_name: dfs.http.policy
config_path: [""]
config_description: "Serve web UIs over HTTPS only."
preferred_value: ["HTTPS_ONLY"]
preferred_value_match: exact,any
not_present_description: "dfs.http.policy is not set (HTTP)."
not_matched_preferred_value_description: "Web UIs are served over HTTP."
matched_description: "Web UIs are HTTPS-only."
tags: ["#hipaa", "#pci", "#ssl"]
file_context: ["hdfs-site.xml"]
---
config_name: dfs.namenode.acls.enabled
config_path: [""]
config_description: "Enable HDFS ACLs."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "dfs.namenode.acls.enabled is not set."
not_matched_preferred_value_description: "HDFS ACLs are disabled."
matched_description: "HDFS ACLs are enabled."
tags: ["#hipaa", "#security"]
file_context: ["hdfs-site.xml"]
---
config_name: dfs.datanode.data.dir.perm
config_path: [""]
config_description: "Restrict datanode data directories to 700."
preferred_value: ["700"]
preferred_value_match: exact,any
not_present_description: "dfs.datanode.data.dir.perm is not set."
not_matched_preferred_value_description: "Datanode data directories are too open."
matched_description: "Datanode data directories are restricted."
tags: ["#hipaa", "#pci", "#security"]
file_context: ["hdfs-site.xml"]
---
config_name: yarn.acl.enable
config_path: [""]
config_description: "Enable YARN ACLs."
preferred_value: ["true"]
preferred_value_match: exact,any
not_present_description: "yarn.acl.enable is not set."
not_matched_preferred_value_description: "YARN ACLs are disabled."
matched_description: "YARN ACLs are enabled."
tags: ["#hipaa", "#security"]
file_context: ["yarn-site.xml"]
`
