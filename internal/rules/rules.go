// Package rules ships ConfigValidator's built-in rule library: the Table-1
// coverage of the paper — 11 target types spanning 135 rules. System
// services (sshd, sysctl, audit, fstab, modprobe) follow CIS benchmarks;
// applications (apache, nginx, hadoop, mysql) follow OWASP/HIPAA/PCI
// guidance; cloud services cover Docker (CIS Docker benchmark) and
// OpenStack (OSSG).
package rules

import (
	"fmt"
	"sort"

	"configvalidator/internal/cvl"
)

// Checklist-size constants used for the paper's coverage claims.
const (
	// CISDockerChecklistSize is the number of automatable checks in the
	// CIS Docker benchmark sections this library targets; the built-in
	// docker rules cover 13 of them (~41%, matching §4.1).
	CISDockerChecklistSize = 32
	// UbuntuAuditChecklistSize is the number of auditd rules in the CIS
	// Ubuntu checklist; the built-in audit rules cover all of them
	// ("all of the audit rules of the Ubuntu checklist", §4.1).
	UbuntuAuditChecklistSize = 20
)

// Target describes one supported target type (a Table-1 row item).
type Target struct {
	// Name is the manifest entity name.
	Name string
	// Category is "application", "system", or "cloud" (Table 1 grouping).
	Category string
	// Standard is the checklist the rules conform to.
	Standard string
	// RuleFile is the library path of the target's CVL rules.
	RuleFile string
	// SearchPaths are the default configuration search paths.
	SearchPaths []string
}

// Targets returns the 11 supported targets in Table-1 order.
func Targets() []Target {
	return []Target{
		{Name: "apache", Category: "application", Standard: "OWASP", RuleFile: "component_configs/apache.yaml", SearchPaths: []string{"/etc/apache2"}},
		{Name: "nginx", Category: "application", Standard: "OWASP", RuleFile: "component_configs/nginx.yaml", SearchPaths: []string{"/etc/nginx"}},
		{Name: "hadoop", Category: "application", Standard: "HIPAA/PCI", RuleFile: "component_configs/hadoop.yaml", SearchPaths: []string{"/etc/hadoop"}},
		{Name: "mysql", Category: "application", Standard: "OWASP", RuleFile: "component_configs/mysql.yaml", SearchPaths: []string{"/etc/mysql"}},
		{Name: "audit", Category: "system", Standard: "CIS", RuleFile: "component_configs/audit.yaml", SearchPaths: []string{"/etc/audit"}},
		{Name: "fstab", Category: "system", Standard: "CIS", RuleFile: "component_configs/fstab.yaml", SearchPaths: []string{"/etc/fstab"}},
		{Name: "sshd", Category: "system", Standard: "CIS", RuleFile: "component_configs/sshd.yaml", SearchPaths: []string{"/etc/ssh"}},
		{Name: "sysctl", Category: "system", Standard: "CIS", RuleFile: "component_configs/sysctl.yaml", SearchPaths: []string{"/etc/sysctl.conf", "/etc/sysctl.d"}},
		{Name: "modprobe", Category: "system", Standard: "CIS", RuleFile: "component_configs/modprobe.yaml", SearchPaths: []string{"/etc/modprobe.d"}},
		{Name: "openstack", Category: "cloud", Standard: "OSSG", RuleFile: "component_configs/openstack.yaml", SearchPaths: []string{"/openstack"}},
		{Name: "docker", Category: "cloud", Standard: "CIS", RuleFile: "component_configs/docker.yaml", SearchPaths: []string{"/etc/docker"}},
	}
}

// Files returns the embedded rule library as path → YAML content, including
// the manifest. The layout mirrors the paper's Listing 5
// ("component_configs/nginx.yaml").
func Files() map[string]string {
	out := map[string]string{
		"manifest.yaml":                    manifestYAML(),
		"component_configs/sshd.yaml":      sshdRules,
		"component_configs/sysctl.yaml":    sysctlRules,
		"component_configs/audit.yaml":     auditRules,
		"component_configs/fstab.yaml":     fstabRules,
		"component_configs/modprobe.yaml":  modprobeRules,
		"component_configs/nginx.yaml":     nginxRules,
		"component_configs/apache.yaml":    apacheRules,
		"component_configs/mysql.yaml":     mysqlRules,
		"component_configs/hadoop.yaml":    hadoopRules,
		"component_configs/docker.yaml":    dockerRules,
		"component_configs/openstack.yaml": openstackRules,
	}
	return out
}

func manifestYAML() string {
	out := ""
	for _, t := range Targets() {
		out += t.Name + ":\n  enabled: True\n  config_search_paths:\n"
		for _, p := range t.SearchPaths {
			out += "    - " + p + "\n"
		}
		out += "  cvl_file: " + t.RuleFile + "\n"
	}
	return out
}

// Reader returns a cvl.FileReader over the embedded library.
func Reader() cvl.FileReader {
	files := Files()
	return func(path string) ([]byte, error) {
		content, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("rules: no embedded file %q", path)
		}
		return []byte(content), nil
	}
}

// Manifest parses the embedded manifest covering all 11 targets.
func Manifest() (*cvl.Manifest, error) {
	return cvl.ParseManifest("manifest.yaml", []byte(manifestYAML()))
}

// Load parses the rule file for one target.
func Load(target string) ([]*cvl.Rule, error) {
	for _, t := range Targets() {
		if t.Name == target {
			return cvl.ResolveRules(Reader(), t.RuleFile)
		}
	}
	return nil, fmt.Errorf("rules: unknown target %q", target)
}

// All parses every target's rules and returns them keyed by target name.
func All() (map[string][]*cvl.Rule, error) {
	out := make(map[string][]*cvl.Rule, len(Targets()))
	for _, t := range Targets() {
		rules, err := Load(t.Name)
		if err != nil {
			return nil, fmt.Errorf("rules: target %s: %w", t.Name, err)
		}
		out[t.Name] = rules
	}
	return out, nil
}

// TotalRules returns the total number of built-in rules across all targets.
func TotalRules() (int, error) {
	all, err := All()
	if err != nil {
		return 0, err
	}
	total := 0
	for _, rs := range all {
		total += len(rs)
	}
	return total, nil
}

// CoverageByStandard counts rules per leading compliance tag (the first
// "#"-prefixed tag of each rule).
func CoverageByStandard() (map[string]int, error) {
	all, err := All()
	if err != nil {
		return nil, err
	}
	out := make(map[string]int)
	for _, rs := range all {
		for _, r := range rs {
			for _, tag := range r.Tags {
				if len(tag) > 0 && tag[0] == '#' {
					out[tag]++
					break
				}
			}
		}
	}
	return out, nil
}

// SortedTargetNames returns target names sorted alphabetically.
func SortedTargetNames() []string {
	ts := Targets()
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	sort.Strings(names)
	return names
}
