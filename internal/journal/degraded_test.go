package journal

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"configvalidator/internal/faults"
	"configvalidator/internal/fsutil"
)

// fakeClock pins the journal's re-probe timing so degraded-mode tests
// advance time explicitly instead of sleeping.
func fakeClock(j *Journal) *time.Time {
	now := time.Unix(1_700_000_000, 0)
	j.now = func() time.Time { return now }
	j.randN = func(int64) int64 { return 0 } // jitter floor: wait == base
	return &now
}

func TestDegradedEntersOnENOSPCAndFailsFast(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC})
	var degradedCalls, recoveredCalls int
	var firstErr error
	m := &fakeMetrics{}
	j := mustOpen(t, filepath.Join(t.TempDir(), "fleet.cvj"), Options{
		Faults:  inj,
		Metrics: m,
		OnDegraded: func(err error) {
			degradedCalls++
			firstErr = err
		},
		OnRecovered: func() { recoveredCalls++ },
	})
	defer j.Close()
	fakeClock(j)

	if j.Degraded() {
		t.Fatal("journal degraded before any append")
	}
	for i := 0; i < 5; i++ {
		err := j.Append(sampleRecord(i))
		if err == nil {
			t.Fatalf("append %d succeeded under permanent ENOSPC", i)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("append %d error chain missing ENOSPC: %v", i, err)
		}
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after append failures")
	}
	if !errors.Is(j.DegradedErr(), syscall.ENOSPC) {
		t.Errorf("DegradedErr = %v, want ENOSPC chain", j.DegradedErr())
	}
	if degradedCalls != 1 {
		t.Errorf("OnDegraded called %d times, want 1 (one-shot per episode)", degradedCalls)
	}
	if firstErr == nil || !errors.Is(firstErr, faults.ErrInjected) {
		t.Errorf("OnDegraded error = %v, want injected chain", firstErr)
	}
	if recoveredCalls != 0 {
		t.Errorf("OnRecovered called %d times without a recovery", recoveredCalls)
	}
	// Fail-fast: only the first append (and any probes) touch the disk.
	// With the clock pinned before the first probe time, exactly one
	// injection fired for five append attempts.
	if inj.Injected() != 1 {
		t.Errorf("injector fired %d times, want 1 (appends must fail fast between probes)", inj.Injected())
	}
	st := j.Stats()
	if st.Appends != 0 || st.AppendErrors != 5 || !st.Degraded {
		t.Errorf("stats = %+v, want 0 appends, 5 errors, degraded", st)
	}
	if len(m.degradedFlips) != 1 || !m.degradedFlips[0] {
		t.Errorf("degraded gauge flips = %v, want [true]", m.degradedFlips)
	}
}

func TestDegradedReprobeResumesJournaling(t *testing.T) {
	// Only the first append hits ENOSPC; the disk "clears" afterwards.
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC, Times: 1})
	var recovered int
	m := &fakeMetrics{}
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{Faults: inj, Metrics: m, OnRecovered: func() { recovered++ }})
	now := fakeClock(j)

	if err := j.Append(sampleRecord(0)); err == nil {
		t.Fatal("first append succeeded despite fault")
	}
	// Before the probe time the same append fails fast.
	if err := j.Append(sampleRecord(0)); err == nil {
		t.Fatal("append succeeded before probe time")
	}
	if st := j.Stats(); st.Reprobes != 0 {
		t.Fatalf("probed before ReprobeInterval elapsed: %+v", st)
	}
	// Past the probe time the append goes through and clears degradation.
	*now = now.Add(time.Minute)
	if err := j.Append(sampleRecord(0)); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	if j.Degraded() {
		t.Error("journal still degraded after successful re-probe")
	}
	if recovered != 1 {
		t.Errorf("OnRecovered called %d times, want 1", recovered)
	}
	if err := j.Append(sampleRecord(1)); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	st := j.Stats()
	if st.Appends != 2 || st.AppendErrors != 2 || st.Reprobes != 1 || st.Degraded {
		t.Errorf("stats = %+v, want 2 appends, 2 errors, 1 reprobe, healthy", st)
	}
	if m.reprobes != 1 {
		t.Errorf("reprobe metric = %d, want 1", m.reprobes)
	}
	if len(m.degradedFlips) != 2 || !m.degradedFlips[0] || m.degradedFlips[1] {
		t.Errorf("degraded gauge flips = %v, want [true false]", m.degradedFlips)
	}
	j.Close()

	// The recovered journal replays cleanly: both post-recovery records,
	// nothing torn.
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 2 || st.CorruptRecords != 0 {
		t.Errorf("replay after recovery = %+v, want 2 clean records", st)
	}
}

// TestShortWriteTornTailRestored proves the re-probe's truncate-restore:
// a short write deposits a genuinely torn record in the file, and the
// next probe discards it before appending, so the journal never replays
// garbage and never loses the frame boundary.
func TestShortWriteTornTailRestored(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindShortWrite, Times: 1})
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{Faults: inj})
	now := fakeClock(j)

	if err := j.Append(sampleRecord(0)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short-write append = %v", err)
	}
	// The torn prefix really is on disk.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(len(magic)) {
		t.Fatalf("file size %d: short write left no torn bytes to restore", fi.Size())
	}
	*now = now.Add(time.Minute)
	if err := j.Append(sampleRecord(1)); err != nil {
		t.Fatalf("append after short write: %v", err)
	}
	j.Close()

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 1 || st.CorruptRecords != 0 {
		t.Errorf("replay = %+v, want exactly the 1 good record and no corruption", st)
	}
	if _, ok := j2.Lookup("host-01", "digest-01"); !ok {
		t.Error("post-restore record not replayed")
	}
	if _, ok := j2.Lookup("host-00", "digest-00"); ok {
		t.Error("torn record replayed")
	}
}

// TestDegradedCrashLeavesRecoverableJournal: a process that dies while
// its journal is degraded (torn tail still on disk, no probe ran) must
// leave a file the next Open recovers — the torn tail truncates as
// ordinary corruption.
func TestDegradedCrashLeavesRecoverableJournal(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindShortWrite, After: 2})
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{Faults: inj})
	fakeClock(j)
	appendN(t, j, 2)
	if err := j.Append(sampleRecord(2)); err == nil {
		t.Fatal("faulted append succeeded")
	}
	j.Close() // "crash": no probe, torn tail persists

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 2 || st.CorruptRecords != 1 {
		t.Errorf("recovery = %+v, want 2 replayed + 1 torn record dropped", st)
	}
}

func TestSyncFailureDegrades(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpFsync, Kind: faults.KindEIO, Times: 1})
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	// Arm the injector after Open so the header fsync does not consume
	// the single fault (in production the spec's triggers handle this).
	j := mustOpen(t, path, Options{SyncEvery: 1})
	j.opts.Faults = inj
	now := fakeClock(j)

	err := j.Append(sampleRecord(0))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("append under fsync EIO = %v", err)
	}
	if !j.Degraded() {
		t.Fatal("fsync failure did not degrade the journal")
	}
	*now = now.Add(time.Minute)
	if err := j.Append(sampleRecord(1)); err != nil {
		t.Fatalf("append after sync fault cleared: %v", err)
	}
	if j.Degraded() {
		t.Error("journal still degraded after recovery")
	}
	j.Close()

	// The record whose fsync failed was still written; both replay.
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 2 || st.CorruptRecords != 0 {
		t.Errorf("replay = %+v, want both records", st)
	}
}

// TestCompactUnderENOSPCLeavesLiveFileIntact: a compaction that cannot
// write its snapshot (disk full) must fail without touching the live
// journal — same guarantee as a crash mid-compaction.
func TestCompactUnderENOSPCLeavesLiveFileIntact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	defer j.Close()
	appendN(t, j, 3)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fsutil.ArmFaults(faults.MustNew(faults.Rule{Op: faults.OpAtomicWrite, Kind: faults.KindENOSPC}))
	defer fsutil.ArmFaults(nil)
	if err := j.Compact(); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("compact under ENOSPC = %v, want ENOSPC chain", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("failed compaction modified the live journal")
	}
	// The handle stays fully usable: appends and lookups keep working.
	if err := j.Append(sampleRecord(3)); err != nil {
		t.Fatalf("append after failed compact: %v", err)
	}
	if _, ok := j.Lookup("host-00", "digest-00"); !ok {
		t.Error("index lost after failed compact")
	}
	fsutil.ArmFaults(nil)
	if err := j.Compact(); err != nil {
		t.Fatalf("compact after fault cleared: %v", err)
	}
	if err := j.Append(sampleRecord(4)); err != nil {
		t.Fatalf("append after successful compact: %v", err)
	}
	if st := j.Stats(); st.Entities != 5 {
		t.Errorf("entities = %d, want 5", st.Entities)
	}
}

// TestCompactClearsDegradation: a successful compaction proves the disk
// writes again, so a degraded journal resumes without waiting for a probe.
func TestCompactClearsDegradation(t *testing.T) {
	inj := faults.MustNew(faults.Rule{Op: faults.OpJournalAppend, Kind: faults.KindENOSPC, Times: 1})
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{Faults: inj})
	defer j.Close()
	fakeClock(j)

	if err := j.Append(sampleRecord(0)); err == nil {
		t.Fatal("faulted append succeeded")
	}
	if !j.Degraded() {
		t.Fatal("not degraded")
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if j.Degraded() {
		t.Error("successful compaction did not clear degradation")
	}
	// No probe wait needed: the append goes straight through.
	if err := j.Append(sampleRecord(1)); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
}
