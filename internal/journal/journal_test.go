package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/output"
)

// sampleReport builds a small but renderer-complete report for entity i.
func sampleReport(i int) *engine.Report {
	rule := &cvl.Rule{
		Type:            cvl.TypeTree,
		Name:            "PermitRootLogin",
		Tags:            []string{"#cis", "#ssh"},
		Severity:        "high",
		SuggestedAction: "set PermitRootLogin no",
	}
	return &engine.Report{
		EntityName: fmt.Sprintf("host-%02d", i),
		EntityType: "host",
		Results: []*engine.Result{
			{
				EntityName:     fmt.Sprintf("host-%02d", i),
				ManifestEntity: "sshd",
				Rule:           rule,
				Status:         engine.StatusFail,
				Message:        "root login enabled",
				Detail:         fmt.Sprintf("observed value yes (entity %d)", i),
				File:           "/etc/ssh/sshd_config",
			},
			{
				EntityName:     fmt.Sprintf("host-%02d", i),
				ManifestEntity: "sshd",
				Status:         engine.StatusDegraded,
				Message:        "crawler: read failed",
			},
		},
	}
}

func sampleRecord(i int) Record {
	return Record{
		Entity: fmt.Sprintf("host-%02d", i),
		Digest: fmt.Sprintf("digest-%02d", i),
		Report: NewReportRecord(sampleReport(i)),
	}
}

func mustOpen(t *testing.T, path string, opts Options) *Journal {
	t.Helper()
	j, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := j.Append(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
}

// renderJSON renders a report the way the fleet acceptance drill compares
// them, so round-trip equality here means byte-identical reports there.
func renderJSON(t *testing.T, rep *engine.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := output.WriteJSON(&buf, rep, output.Options{}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestOpenFreshAndReopenEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	if st := j.Stats(); st.Replayed != 0 || st.CorruptRecords != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen the empty (header-only) journal: still nothing to replay.
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 0 || st.CorruptRecords != 0 {
		t.Fatalf("reopened empty stats = %+v", st)
	}
}

// TestOpenZeroByteFile covers a crash after create but before the header
// write hit the disk.
func TestOpenZeroByteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, path, Options{})
	defer j.Close()
	if err := j.Append(sampleRecord(0)); err != nil {
		t.Fatal(err)
	}
}

// TestOpenTornHeader covers a crash mid-way through writing the magic.
func TestOpenTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	if err := os.WriteFile(path, []byte(magic[:3]), 0o644); err != nil {
		t.Fatal(err)
	}
	j := mustOpen(t, path, Options{})
	if st := j.Stats(); st.CorruptRecords != 1 {
		t.Fatalf("corrupt = %d, want 1", st.CorruptRecords)
	}
	appendN(t, j, 2)
	j.Close()
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", st.Replayed)
	}
}

func TestOpenNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, []byte(`{"entity":"web-01"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path, Options{})
	if !errors.Is(err, ErrNotJournal) {
		t.Fatalf("err = %v, want ErrNotJournal", err)
	}
	// The foreign file must be left byte-for-byte intact.
	got, _ := os.ReadFile(path)
	if string(got) != `{"entity":"web-01"}` {
		t.Fatalf("foreign file modified: %q", got)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	appendN(t, j, 5)
	if err := j.Append(Record{Entity: "broken-image:v1", Err: "scan panicked"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 6 || st.CorruptRecords != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entities != 5 {
		t.Fatalf("entities = %d, want 5 (failure records are not indexed)", st.Entities)
	}
	for i := 0; i < 5; i++ {
		rec, ok := j2.Lookup(fmt.Sprintf("host-%02d", i), fmt.Sprintf("digest-%02d", i))
		if !ok {
			t.Fatalf("lookup host-%02d missed", i)
		}
		got := renderJSON(t, rec.Report.Report())
		want := renderJSON(t, sampleReport(i))
		if !bytes.Equal(got, want) {
			t.Errorf("host-%02d: replayed report not byte-identical\ngot:  %s\nwant: %s", i, got, want)
		}
	}
	// A failed scan is replayed for audit but never satisfies Lookup.
	if _, ok := j2.Lookup("broken-image:v1", "anything"); ok {
		t.Error("failure record satisfied Lookup")
	}
	// Digest mismatch (config changed) must force a re-scan.
	if _, ok := j2.Lookup("host-00", "some-other-digest"); ok {
		t.Error("stale digest satisfied Lookup")
	}
	// Empty digest never matches.
	if _, ok := j2.Lookup("host-00", ""); ok {
		t.Error("empty digest satisfied Lookup")
	}
}

// TestTornTailEveryTruncationPoint is the core recovery guarantee: for
// every possible truncation point inside the final record, replay recovers
// all preceding records, truncates the tail, and the journal stays
// appendable.
func TestTornTailEveryTruncationPoint(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.cvj")
	j := mustOpen(t, full, Options{})
	appendN(t, j, 3)
	j.Close()
	blob, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Find where the final record begins by re-walking the headers.
	offsets := recordOffsets(t, blob)
	if len(offsets) != 4 { // 3 record starts + end-of-file
		t.Fatalf("offsets = %v", offsets)
	}
	lastStart, end := offsets[2], offsets[3]
	if end != int64(len(blob)) {
		t.Fatalf("end %d != file size %d", end, len(blob))
	}

	for cut := lastStart + 1; cut < end; cut++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.cvj", cut))
		if err := os.WriteFile(path, blob[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tj, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		st := tj.Stats()
		if st.Replayed != 2 || st.CorruptRecords != 1 {
			t.Fatalf("cut %d: stats = %+v, want 2 replayed + 1 corrupt", cut, st)
		}
		// The tail is gone: the file ends exactly at the last valid record.
		if fi, _ := os.Stat(path); fi.Size() != lastStart {
			t.Fatalf("cut %d: size %d after recovery, want %d", cut, fi.Size(), lastStart)
		}
		// The journal is live: the lost record can simply be re-appended.
		if err := tj.Append(sampleRecord(2)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		tj.Close()
		rj := mustOpen(t, path, Options{})
		if st := rj.Stats(); st.Replayed != 3 || st.CorruptRecords != 0 {
			t.Fatalf("cut %d: reopened stats = %+v", cut, st)
		}
		rj.Close()
	}
}

// recordOffsets walks the record headers and returns each record's start
// offset plus the end-of-file offset.
func recordOffsets(t *testing.T, blob []byte) []int64 {
	t.Helper()
	offsets := []int64{}
	off := int64(len(magic))
	for off < int64(len(blob)) {
		offsets = append(offsets, off)
		length := binary.LittleEndian.Uint32(blob[off : off+4])
		off += 8 + int64(length)
	}
	return append(offsets, off)
}

// TestBitFlipMidFile pins the documented mid-file corruption semantics:
// replay stops at the last valid record before the flip, drops the rest,
// and the journal continues to work.
func TestBitFlipMidFile(t *testing.T) {
	for _, tc := range []struct {
		name string
		// target picks the byte to flip inside record 2 of 4: its CRC
		// field or its payload.
		target func(start int64) int64
	}{
		{"crc", func(start int64) int64 { return start + 5 }},
		{"payload", func(start int64) int64 { return start + 8 + 3 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "fleet.cvj")
			j := mustOpen(t, path, Options{})
			appendN(t, j, 4)
			j.Close()
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			offsets := recordOffsets(t, blob)
			flip := tc.target(offsets[1])
			blob[flip] ^= 0x40
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}

			j2 := mustOpen(t, path, Options{})
			st := j2.Stats()
			if st.Replayed != 1 || st.CorruptRecords != 1 {
				t.Fatalf("stats = %+v, want 1 replayed + 1 corrupt", st)
			}
			if _, ok := j2.Lookup("host-00", "digest-00"); !ok {
				t.Error("record before the flip lost")
			}
			if _, ok := j2.Lookup("host-02", "digest-02"); ok {
				t.Error("record after the flip survived a truncating recovery")
			}
			// Still appendable; the dropped records are simply re-scanned.
			appendN(t, j2, 4)
			j2.Close()
			j3 := mustOpen(t, path, Options{})
			defer j3.Close()
			if st := j3.Stats(); st.Replayed != 5 || st.Entities != 4 {
				t.Fatalf("reopened stats = %+v", st)
			}
		})
	}
}

// TestDuplicateEntityLastWriterWins pins the resume index semantics when
// one entity is journaled twice (a re-scan after its config changed).
func TestDuplicateEntityLastWriterWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	old := sampleRecord(0)
	if err := j.Append(old); err != nil {
		t.Fatal(err)
	}
	updated := Record{Entity: "host-00", Digest: "digest-v2", Report: NewReportRecord(sampleReport(7))}
	if err := j.Append(updated); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if _, ok := j2.Lookup("host-00", "digest-00"); ok {
		t.Error("superseded record still resumable")
	}
	rec, ok := j2.Lookup("host-00", "digest-v2")
	if !ok {
		t.Fatal("latest record not resumable")
	}
	if !bytes.Equal(renderJSON(t, rec.Report.Report()), renderJSON(t, sampleReport(7))) {
		t.Error("lookup returned the older duplicate")
	}
	if st := j2.Stats(); st.Entities != 1 {
		t.Errorf("entities = %d, want 1", st.Entities)
	}
}

// TestCompactThenTail covers the snapshot+tail replay pair: compaction
// collapses duplicates and failures into one snapshot record per entity,
// appends continue behind it, and a reopen replays both parts.
func TestCompactThenTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	appendN(t, j, 3)
	// Duplicate host-01 and add an audit-only failure; both must vanish in
	// the snapshot.
	if err := j.Append(Record{Entity: "host-01", Digest: "digest-v2", Report: NewReportRecord(sampleReport(9))}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Entity: "flaky", Err: "timeout"}); err != nil {
		t.Fatal(err)
	}
	before, _ := os.Stat(path)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink the file: %d -> %d", before.Size(), after.Size())
	}
	// The tail: two more records after the snapshot.
	if err := j.Append(sampleRecord(5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(sampleRecord(6)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	st := j2.Stats()
	if st.Replayed != 5 { // 3 snapshot records + 2 tail records
		t.Fatalf("replayed = %d, want 5 (snapshot 3 + tail 2)", st.Replayed)
	}
	if st.Entities != 5 {
		t.Fatalf("entities = %d, want 5", st.Entities)
	}
	if _, ok := j2.Lookup("host-01", "digest-v2"); !ok {
		t.Error("compacted record lost its last-writer-wins value")
	}
	if rec, ok := j2.Lookup("host-05", "digest-05"); !ok || rec.Report == nil {
		t.Error("tail record after snapshot not replayed")
	}
}

// TestCompactedJournalSurvivesTornTail composes the two recovery paths: a
// snapshot with a torn tail record replays the snapshot and truncates the
// tail.
func TestCompactedJournalSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	appendN(t, j, 3)
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(sampleRecord(4)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	blob, _ := os.ReadFile(path)
	if err := os.WriteFile(path, blob[:len(blob)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 3 || st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v, want snapshot's 3 + 1 corrupt", st)
	}
}

func TestLatestFollowsAppendsAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "watch.cvj")
	j := mustOpen(t, path, Options{})
	if _, ok := j.Latest(); ok {
		t.Fatal("fresh journal has a latest record")
	}
	appendN(t, j, 2)
	rec, ok := j.Latest()
	if !ok || rec.Entity != "host-01" {
		t.Fatalf("latest = %+v, %v", rec, ok)
	}
	// Failure records never become the baseline.
	if err := j.Append(Record{Entity: "host-01", Err: "boom"}); err != nil {
		t.Fatal(err)
	}
	if rec, _ := j.Latest(); rec.Err != "" {
		t.Error("failure record became the latest baseline")
	}
	j.Close()
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	rec, ok = j2.Latest()
	if !ok || rec.Entity != "host-01" || rec.Report == nil {
		t.Fatalf("replayed latest = %+v, %v", rec, ok)
	}
}

type fakeMetrics struct {
	appended, replayed, corrupt, reprobes int
	degradedFlips                         []bool
}

func (m *fakeMetrics) JournalAppended()       { m.appended++ }
func (m *fakeMetrics) JournalReplayed()       { m.replayed++ }
func (m *fakeMetrics) JournalCorruptRecord()  { m.corrupt++ }
func (m *fakeMetrics) JournalDegraded(d bool) { m.degradedFlips = append(m.degradedFlips, d) }
func (m *fakeMetrics) JournalReprobe()        { m.reprobes++ }

func TestMetricsPlumbing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	m1 := &fakeMetrics{}
	j := mustOpen(t, path, Options{Metrics: m1})
	appendN(t, j, 3)
	j.Close()
	if m1.appended != 3 || m1.replayed != 0 || m1.corrupt != 0 {
		t.Fatalf("metrics after appends = %+v", m1)
	}
	blob, _ := os.ReadFile(path)
	if err := os.WriteFile(path, blob[:len(blob)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	m2 := &fakeMetrics{}
	j2 := mustOpen(t, path, Options{Metrics: m2})
	defer j2.Close()
	if m2.replayed != 2 || m2.corrupt != 1 {
		t.Fatalf("metrics after recovery = %+v", m2)
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, every := range []int{0, 1, 3, -1} {
		path := filepath.Join(t.TempDir(), "fleet.cvj")
		j := mustOpen(t, path, Options{SyncEvery: every})
		appendN(t, j, 5)
		if err := j.Sync(); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j2 := mustOpen(t, path, Options{})
		if st := j2.Stats(); st.Replayed != 5 {
			t.Fatalf("SyncEvery=%d: replayed = %d", every, st.Replayed)
		}
		j2.Close()
	}
}

func TestAppendAfterClose(t *testing.T) {
	j := mustOpen(t, filepath.Join(t.TempDir(), "fleet.cvj"), Options{})
	j.Close()
	if err := j.Append(sampleRecord(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if st := j.Stats(); st.AppendErrors != 1 {
		t.Errorf("append errors = %d, want 1", st.AppendErrors)
	}
}

// TestCRCCatchesLengthPreservingCorruption: same-length garbage payload
// with a stale CRC must not replay.
func TestCRCCatchesLengthPreservingCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.cvj")
	j := mustOpen(t, path, Options{})
	appendN(t, j, 2)
	j.Close()
	blob, _ := os.ReadFile(path)
	offsets := recordOffsets(t, blob)
	// Overwrite record 1's payload with zeroes, keeping length + CRC.
	for i := offsets[1] + 8; i < offsets[2]; i++ {
		blob[i] = 0
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, path, Options{})
	defer j2.Close()
	if st := j2.Stats(); st.Replayed != 1 || st.CorruptRecords != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// sanity check that the CRC in use is the standard IEEE table (pinned so
// the on-disk format cannot silently change).
func TestFormatPinned(t *testing.T) {
	if got := crc32.ChecksumIEEE([]byte("configvalidator")); got != 0x69aa3b76 {
		t.Fatalf("crc32(configvalidator) = %#x; on-disk format changed", got)
	}
}

// TestSingleWriterGuard is the regression for concurrent-writer
// corruption: while one handle owns a journal, a second Open of the same
// path must fail fast with ErrBusy instead of interleaving appends into
// the record stream. Close releases ownership; the next Open then
// replays normally.
func TestSingleWriterGuard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "guard.cvj")
	j1, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j1.Append(Record{Entity: "host-00", Digest: "d0", Report: NewReportRecord(sampleReport(0))}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("second Open = %v, want ErrBusy", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after Close = %v, want success", err)
	}
	defer func() { _ = j2.Close() }()
	if _, ok := j2.Lookup("host-00", "d0"); !ok {
		t.Fatal("record lost across ownership handoff")
	}
}

// TestCompactKeepsOwnership pins the Compact/flock interaction: the
// atomic rewrite replaces the file under the handle, and the reopened
// post-rename file must carry the exclusive lock forward — a second
// writer stays locked out straight through and after a compaction.
func TestCompactKeepsOwnership(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact-own.cvj")
	j1, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j1.Append(Record{Entity: "host-00", Digest: fmt.Sprintf("d%d", i), Report: NewReportRecord(sampleReport(0))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j1.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Open after Compact = %v, want ErrBusy (ownership must survive the rewrite)", err)
	}
	// The owner keeps working after compaction...
	if err := j1.Append(Record{Entity: "host-01", Digest: "x", Report: NewReportRecord(sampleReport(1))}); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	// ...and a post-Close Open sees the compacted content plus the append.
	j2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if _, ok := j2.Lookup("host-00", "d2"); !ok {
		t.Fatal("compacted last-writer record missing")
	}
	if _, ok := j2.Lookup("host-01", "x"); !ok {
		t.Fatal("post-compaction append missing")
	}
}
