// Package journal implements a durable, replayable result log for fleet
// validation — the crash-safety layer that makes the paper's production
// cadence ("tens of thousands of containers and images daily", §5)
// operable. A fleet scan appends one record per completed entity; a run
// killed at entity 49,000 of 50,000 resumes by replaying the journal and
// re-scanning only what is missing or changed, and a warm re-run over an
// unchanged fleet is near-free. ConfEx (arXiv:2008.08656) frames
// cloud-scale config analysis as exactly this continuously re-run pipeline
// over a largely-unchanged corpus; Rehearsal (arXiv:1509.05100) argues
// idempotence is what makes config tooling trustworthy — replaying a
// journaled result must be indistinguishable from re-scanning an unchanged
// entity.
//
// # File format
//
// A journal is an 8-byte magic ("CVJRNL01") followed by records:
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// The payload is a JSON-encoded Record. The format is append-only; nothing
// in the file is ever updated in place, so the only corruption a crash can
// cause is a torn tail — which recovery truncates, never fails on.
//
// # Recovery
//
// Open replays the file record by record and stops at the first record
// that cannot be trusted: a short header, an implausible length, a torn
// payload, a CRC mismatch, or undecodable JSON. Everything after that
// point is discarded (the file is truncated back to the last valid record)
// and counted as corrupt; everything before it is replayed into the
// resume index. A mid-file bit flip therefore loses the records after it —
// they are simply re-scanned — but never aborts a run.
//
// # Compaction
//
// Compact rewrites the journal as a snapshot holding only the latest
// completed record per entity, via temp file + rename + directory fsync
// (never in place), then continues appending to the compacted file — so a
// long-lived journal is a snapshot plus a tail of recent appends.
//
// # Degraded mode
//
// A journal whose disk stops accepting writes (ENOSPC, EIO) must not
// take the scan down with it: crash-safety is a feature of the run, not
// a precondition. On an append or sync failure the journal flips to
// degraded — Degraded() reports true, the first error is retained, and
// subsequent appends fail fast without touching the disk. A jittered
// re-probe (ReprobeInterval) periodically truncates any torn partial
// write back to the last known-good byte and retries for real; the first
// success exits degraded mode and journaling resumes. Callers observe
// failures per append (they are never silent) but the scan itself
// continues and produces identical findings — only durability degrades.
//
// # Ownership
//
// A journal path is owned by exactly one handle at a time: Open takes an
// exclusive flock on the file and a second Open — same process or
// another — fails fast with ErrBusy instead of risking interleaved
// appends or a compaction racing a concurrent writer. The lock dies with
// the owning process, so crash-resume (the whole point of the journal)
// never meets a stale lock. Any number of fleet workers may share the
// *one* handle; Append serializes internally.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/faults"
	"configvalidator/internal/fsutil"
)

// magic identifies (and versions) the on-disk format.
const magic = "CVJRNL01"

// maxRecordSize bounds a single record payload (64 MiB). A length field
// beyond it is treated as corruption, not as an allocation request.
const maxRecordSize = 64 << 20

// Re-probe pacing for degraded journals: the first probe happens no
// sooner than defaultReprobeInterval after the failure, later probes
// back off with decorrelated jitter up to maxReprobeInterval — disk
// pressure rarely clears in milliseconds, and a fleet of degraded
// validators must not retry-storm the moment it does.
const (
	defaultReprobeInterval = 500 * time.Millisecond
	maxReprobeInterval     = 10 * time.Second
)

// ErrNotJournal reports a file whose header is present but is not a
// journal — recovery refuses to truncate what it does not own.
var ErrNotJournal = errors.New("journal: file is not a configvalidator journal")

// ErrClosed reports an operation on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrBusy reports an Open of a journal another live handle already owns.
// A journal is single-writer: exactly one handle (in one process) may
// append to or compact a given path at a time. Without this guard a
// second writer could interleave appends mid-record — torn garbage
// recovery would silently truncate — or keep appending to the pre-compact
// inode after Compact renames a snapshot over the path, losing records.
// Ownership is enforced with an exclusive flock on the journal file, so a
// SIGKILLed owner releases it automatically and crash-resume never meets
// a stale lock.
var ErrBusy = errors.New("journal: already open by another writer (journals are single-writer)")

// Metrics receives journal events; *telemetry.Collector implements it. The
// interface lives here so the journal does not import telemetry.
type Metrics interface {
	// JournalAppended records one record durably appended.
	JournalAppended()
	// JournalReplayed records one valid record recovered at Open.
	JournalReplayed()
	// JournalCorruptRecord records one torn or corrupt record dropped
	// during recovery.
	JournalCorruptRecord()
	// JournalDegraded flips the degraded-journal gauge: true when an
	// append/sync failure degrades the journal, false on recovery.
	JournalDegraded(degraded bool)
	// JournalReprobe records one degraded-mode write re-probe attempt.
	JournalReprobe()
}

// Options tune a journal.
type Options struct {
	// SyncEvery is the number of appends between fsyncs. 0 (the default)
	// and 1 sync after every record — an interrupted run loses at most the
	// in-flight record, at the cost of one fsync per entity. N > 1
	// amortizes the fsync over N records and risks losing up to N-1
	// journaled results on a power failure (a process crash loses nothing:
	// the OS page cache survives it). -1 never syncs explicitly.
	SyncEvery int
	// Metrics optionally receives append/replay/corruption events.
	Metrics Metrics

	// Faults optionally injects write-path faults into appends and syncs
	// (chaos drills, the ENOSPC CI smoke). Nil means no injection.
	Faults *faults.Injector
	// WriteOp is the fault op consulted per append when Faults is armed;
	// empty defaults to faults.OpJournalAppend. The worker shard handler
	// passes faults.OpSegmentWrite so drills can target worker segments
	// without touching coordinator journals.
	WriteOp faults.Op
	// ReprobeInterval is the minimum wait before a degraded journal
	// re-probes the disk with a real write; 0 means 500ms. Probes back
	// off with decorrelated jitter up to 10s while failures persist.
	ReprobeInterval time.Duration
	// OnDegraded, if set, is called once per degradation episode with
	// the first append/sync error — the one-shot operator log hook. It
	// runs under the journal lock: log and return, do not call back.
	OnDegraded func(error)
	// OnRecovered, if set, is called when a re-probe succeeds and
	// journaling resumes. Same locking caveat as OnDegraded.
	OnRecovered func()
}

// Record is one journaled per-entity outcome. Exactly one of Report and
// Err is set.
type Record struct {
	// Entity is the scanned entity's name.
	Entity string `json:"entity"`
	// Digest is the entity's config digest at scan time; records with an
	// empty digest are audit-only and never satisfy a Lookup.
	Digest string `json:"digest,omitempty"`
	// Err is the scan failure, when the scan did not complete. Failed
	// scans are journaled for reconciliation but never replayed — a
	// resumed run re-scans them.
	Err string `json:"err,omitempty"`
	// Report is the completed validation report.
	Report *ReportRecord `json:"report,omitempty"`
}

// Stats is a point-in-time copy of a journal's counters.
type Stats struct {
	// Appends counts records durably appended through this handle;
	// AppendErrors counts appends that failed (disk full, closed file).
	Appends, AppendErrors int64
	// Replayed counts valid records recovered at Open; CorruptRecords
	// counts torn/corrupt records dropped during recovery.
	Replayed, CorruptRecords int64
	// Entities is the number of entities with a live completed record.
	Entities int
	// Degraded reports whether the journal is currently in degraded mode
	// (appends failing fast between re-probes); Reprobes counts the
	// write re-probes attempted while degraded.
	Degraded bool
	Reprobes int64
}

// Journal is an append-only, CRC-checksummed record log. Safe for
// concurrent use by any number of fleet workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	// index maps entity name to its latest completed record — duplicate
	// records for one entity resolve last-writer-wins.
	index    map[string]Record
	latest   *Record // most recent completed record (replay, then appends)
	replayed []Record

	appends, appendErrs, replayedN, corrupt int64
	sinceSync                               int
	closed                                  bool

	// Degraded mode: after an append/sync failure the journal fails
	// appends fast (the scan must not block on a dead disk) until a
	// jittered re-probe writes successfully again. goodOff is the offset
	// one past the last known-good byte; a re-probe truncates back to it
	// first, discarding any torn partial write from the failing period.
	degraded    bool
	degradedErr error // first error of the current episode
	reprobes    int64
	goodOff     int64
	nextProbe   time.Time
	probeWait   time.Duration

	now   func() time.Time    // test seam; nil means time.Now
	randN func(n int64) int64 // test seam; nil means rand.Int63n
}

// Open creates or recovers the journal at path. Recovery replays every
// valid record into the resume index and truncates any torn or corrupt
// tail; it never fails on corruption, only on I/O errors, on a file that
// is not a journal at all, or on a journal another live handle already
// owns (ErrBusy — journals are single-writer; see that error's doc).
func Open(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if err := fsutil.LockFile(f); err != nil {
		_ = f.Close()
		if errors.Is(err, fsutil.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrBusy, path)
		}
		return nil, fmt.Errorf("journal: lock %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, opts: opts, index: make(map[string]Record)}
	if err := j.recover(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return j, nil
}

// recover replays the file, truncating at the first untrusted byte.
func (j *Journal) recover() error {
	fi, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat %s: %w", j.path, err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := j.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("journal: write header %s: %w", j.path, err)
		}
		j.goodOff = int64(len(magic))
		return j.syncNow()
	}
	header := make([]byte, len(magic))
	n, err := io.ReadFull(j.f, header)
	switch {
	case err == io.ErrUnexpectedEOF || err == io.EOF || n < len(magic):
		// Crash during initial creation: the header itself is torn.
		j.noteCorrupt()
		return j.truncateTo(0, true)
	case err != nil:
		return fmt.Errorf("journal: read header %s: %w", j.path, err)
	case string(header) != magic:
		return fmt.Errorf("%w: %s", ErrNotJournal, j.path)
	}

	offset := int64(len(magic))
	head := make([]byte, 8)
	for offset < size {
		if _, err := io.ReadFull(j.f, head); err != nil {
			j.noteCorrupt() // torn record header
			return j.truncateTo(offset, false)
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if length == 0 || length > maxRecordSize || offset+8+int64(length) > size {
			j.noteCorrupt() // implausible length or torn payload
			return j.truncateTo(offset, false)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			j.noteCorrupt()
			return j.truncateTo(offset, false)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			j.noteCorrupt() // bit flip: drop this record and everything after
			return j.truncateTo(offset, false)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			j.noteCorrupt()
			return j.truncateTo(offset, false)
		}
		j.absorb(rec)
		j.replayed = append(j.replayed, rec)
		j.replayedN++
		if j.opts.Metrics != nil {
			j.opts.Metrics.JournalReplayed()
		}
		offset += 8 + int64(length)
	}
	j.goodOff = offset
	return nil
}

// truncateTo discards everything at and after offset — the recovery path
// for a torn or corrupt tail. With rewriteMagic set the header itself was
// torn and is rewritten.
func (j *Journal) truncateTo(offset int64, rewriteMagic bool) error {
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("journal: truncate %s: %w", j.path, err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek %s: %w", j.path, err)
	}
	if rewriteMagic {
		if _, err := j.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("journal: write header %s: %w", j.path, err)
		}
		offset += int64(len(magic))
	}
	j.goodOff = offset
	return j.syncNow()
}

func (j *Journal) noteCorrupt() {
	j.corrupt++
	if j.opts.Metrics != nil {
		j.opts.Metrics.JournalCorruptRecord()
	}
}

// absorb folds one valid record into the resume index (last-writer-wins).
// Failed-scan records are audit-only and not indexed.
func (j *Journal) absorb(rec Record) {
	if rec.Report == nil {
		return
	}
	j.index[rec.Entity] = rec
	cp := rec
	j.latest = &cp
}

// Append durably logs one record. Concurrent appends are serialized; each
// record is written in a single Write call, so a crash tears at most the
// final record — which recovery truncates.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("journal: record for %s exceeds %d bytes", rec.Entity, maxRecordSize)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		j.appendErrs++
		return ErrClosed
	}
	if j.degraded {
		if j.clock().Before(j.nextProbe) {
			// Fail fast between probes: a scan must not block on (or
			// hammer) a dead disk for every entity.
			j.appendErrs++
			return fmt.Errorf("journal: append %s (degraded, next probe in %v): %w",
				j.path, j.nextProbe.Sub(j.clock()).Round(time.Millisecond), j.degradedErr)
		}
		// Probe time: restore the file to the last known-good byte so any
		// torn partial write from the failing period is discarded, then
		// fall through and attempt the append for real.
		j.reprobes++
		if j.opts.Metrics != nil {
			j.opts.Metrics.JournalReprobe()
		}
		if err := j.restoreGood(); err != nil {
			j.appendErrs++
			j.scheduleReprobe()
			return fmt.Errorf("journal: append %s (degraded, restore failed): %w", j.path, err)
		}
	}
	if err := j.writeRecord(buf); err != nil {
		j.appendErrs++
		j.degrade(err)
		return fmt.Errorf("journal: append %s: %w", j.path, err)
	}
	if j.degraded {
		j.clearDegraded()
	}
	j.goodOff += int64(len(buf))
	j.appends++
	j.absorb(rec)
	if j.opts.Metrics != nil {
		j.opts.Metrics.JournalAppended()
	}
	j.sinceSync++
	every := j.opts.SyncEvery
	if every == 0 {
		every = 1
	}
	if every > 0 && j.sinceSync >= every {
		if err := j.syncNow(); err != nil {
			// The record is in the page cache but its durability is not
			// proven; degrade (the re-probe's restoreGood keeps it — the
			// bytes are known-good as written) and surface the error.
			j.appendErrs++
			j.degrade(err)
			return err
		}
	}
	return nil
}

// writeRecord puts one framed record at the current file offset, passing
// it through the armed write-fault injector first. A short-write fault
// deposits its truncated prefix in the file so the degraded period leaves
// a genuinely torn tail for restoreGood (and Open recovery) to discard.
func (j *Journal) writeRecord(buf []byte) error {
	if j.opts.Faults.Enabled() {
		op := j.opts.WriteOp
		if op == "" {
			op = faults.OpJournalAppend
		}
		data, err := j.opts.Faults.Apply(op, j.path, buf)
		if err != nil {
			if len(data) > 0 && len(data) < len(buf) {
				_, _ = j.f.Write(data)
			}
			return err
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return err
	}
	return nil
}

// degrade enters (or stays in) degraded mode: the first error of the
// episode is retained for Degraded()/fast-fail messages, the gauge and
// one-shot operator hook fire on entry, and the next re-probe is
// scheduled with jittered backoff.
func (j *Journal) degrade(err error) {
	if !j.degraded {
		j.degraded = true
		j.degradedErr = err
		if j.opts.Metrics != nil {
			j.opts.Metrics.JournalDegraded(true)
		}
		if j.opts.OnDegraded != nil {
			j.opts.OnDegraded(err)
		}
	}
	j.scheduleReprobe()
}

// clearDegraded exits degraded mode after a successful write.
func (j *Journal) clearDegraded() {
	j.degraded = false
	j.degradedErr = nil
	j.probeWait = 0
	j.nextProbe = time.Time{}
	if j.opts.Metrics != nil {
		j.opts.Metrics.JournalDegraded(false)
	}
	if j.opts.OnRecovered != nil {
		j.opts.OnRecovered()
	}
}

// scheduleReprobe picks the next probe time with decorrelated jitter:
// uniform in [base, 3×previous], capped — the same shape as the fleet
// retry backoff, for the same reason (no synchronized retry storms).
func (j *Journal) scheduleReprobe() {
	base := j.opts.ReprobeInterval
	if base <= 0 {
		base = defaultReprobeInterval
	}
	prev := j.probeWait
	if prev < base {
		prev = base
	}
	hi := 3 * prev
	if hi > maxReprobeInterval {
		hi = maxReprobeInterval
	}
	wait := base
	if span := int64(hi - base); span > 0 {
		wait = base + time.Duration(j.rand(span))
	}
	j.probeWait = wait
	j.nextProbe = j.clock().Add(wait)
}

// restoreGood truncates the file back to the last known-good byte and
// repositions the write offset there — idempotent, and the only repair a
// torn degraded-period tail ever needs (the framing recovers the rest).
func (j *Journal) restoreGood() error {
	if err := j.f.Truncate(j.goodOff); err != nil {
		return err
	}
	if _, err := j.f.Seek(j.goodOff, io.SeekStart); err != nil {
		return err
	}
	return nil
}

func (j *Journal) clock() time.Time {
	if j.now != nil {
		return j.now()
	}
	return time.Now()
}

func (j *Journal) rand(n int64) int64 {
	if j.randN != nil {
		return j.randN(n)
	}
	return rand.Int63n(n)
}

// Degraded reports whether the journal is in degraded mode: appends are
// failing fast between re-probes and results are not being persisted.
func (j *Journal) Degraded() bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// DegradedErr returns the first error of the current degradation episode,
// or nil when the journal is healthy.
func (j *Journal) DegradedErr() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degradedErr
}

func (j *Journal) syncNow() error {
	j.sinceSync = 0
	if j.opts.Faults.Enabled() {
		if err := j.opts.Faults.Check(faults.OpFsync, j.path); err != nil {
			return fmt.Errorf("journal: sync %s: %w", j.path, err)
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	return nil
}

// Lookup returns the latest completed record for the entity when its
// journaled digest matches — the resume test ValidateFleet applies before
// re-scanning. An empty digest never matches.
func (j *Journal) Lookup(entity, digest string) (Record, bool) {
	if j == nil || digest == "" {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.index[entity]
	if !ok || rec.Digest != digest {
		return Record{}, false
	}
	return rec, true
}

// Latest returns the most recent completed record — replayed or appended —
// which is the durable drift baseline cvwatch restores on restart.
func (j *Journal) Latest() (Record, bool) {
	if j == nil {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.latest == nil {
		return Record{}, false
	}
	return *j.latest, true
}

// Replayed returns the records recovered at Open, in file order.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.replayed))
	copy(out, j.replayed)
	return out
}

// Stats copies the current counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:        j.appends,
		AppendErrors:   j.appendErrs,
		Replayed:       j.replayedN,
		CorruptRecords: j.corrupt,
		Entities:       len(j.index),
		Degraded:       j.degraded,
		Reprobes:       j.reprobes,
	}
}

// Compact atomically rewrites the journal as a snapshot holding only the
// latest completed record per entity (sorted by entity name), dropping
// superseded duplicates and audit-only failure records. The rewrite goes
// through a temp file + rename + directory fsync, so a crash mid-compaction
// leaves the previous journal fully intact.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	names := make([]string, 0, len(j.index))
	for name := range j.index {
		names = append(names, name)
	}
	sort.Strings(names)

	err := fsutil.WriteAtomic(j.path, 0o644, func(w io.Writer) error {
		if _, err := w.Write([]byte(magic)); err != nil {
			return err
		}
		head := make([]byte, 8)
		for _, name := range names {
			payload, err := json.Marshal(j.index[name])
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
			if _, err := w.Write(head); err != nil {
				return err
			}
			if _, err := w.Write(payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Swap the handle to the compacted file and position at its end for
	// subsequent appends (the snapshot's tail). The rename replaced the
	// inode, so ownership is re-asserted on the new file before the old
	// (still-locked) handle is released — the single-writer guarantee
	// holds across the swap.
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	if err := fsutil.LockFile(f); err != nil {
		_ = f.Close()
		if errors.Is(err, fsutil.ErrLocked) {
			return fmt.Errorf("%w: %s (stolen during compaction)", ErrBusy, j.path)
		}
		return fmt.Errorf("journal: relock after compact: %w", err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: seek after compact: %w", err)
	}
	_ = j.f.Close()
	j.f = f
	j.sinceSync = 0
	j.goodOff = end
	// A successful compaction proves the disk accepts writes again; a
	// degraded journal can resume appending without waiting for a probe.
	if j.degraded {
		j.clearDegraded()
	}
	return nil
}

// Sync forces an fsync regardless of the sync policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncNow()
}

// Close syncs and closes the journal. Further appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: sync on close %s: %w", j.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close %s: %w", j.path, cerr)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Remove deletes a journal file (after Close); missing files are fine.
func Remove(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return fsutil.SyncDir(filepath.Dir(path))
}

// ReportRecord is the journal's serialized form of an engine.Report. It
// carries every field the output renderers (text, JSON, JUnit, drift) read,
// so a replayed report renders byte-identically to the report produced by
// re-scanning the unchanged entity.
type ReportRecord struct {
	Entity  string         `json:"entity"`
	Type    string         `json:"type"`
	Results []ResultRecord `json:"results"`
}

// ResultRecord is one serialized rule outcome.
type ResultRecord struct {
	Entity         string      `json:"entity,omitempty"`
	ManifestEntity string      `json:"manifest_entity,omitempty"`
	Status         int         `json:"status"`
	Message        string      `json:"message,omitempty"`
	Detail         string      `json:"detail,omitempty"`
	File           string      `json:"file,omitempty"`
	Rule           *RuleRecord `json:"rule,omitempty"`
}

// RuleRecord preserves the rule fields reports render; the full rule
// specification is not journaled (it lives in the rule library, whose
// fingerprint participates in the config digest).
type RuleRecord struct {
	Name            string   `json:"name"`
	Type            string   `json:"type,omitempty"`
	Tags            []string `json:"tags,omitempty"`
	Severity        string   `json:"severity,omitempty"`
	SuggestedAction string   `json:"suggested_action,omitempty"`
}

// NewReportRecord converts an engine report into its journaled form.
func NewReportRecord(rep *engine.Report) *ReportRecord {
	if rep == nil {
		return nil
	}
	out := &ReportRecord{
		Entity:  rep.EntityName,
		Type:    rep.EntityType,
		Results: make([]ResultRecord, 0, len(rep.Results)),
	}
	for _, r := range rep.Results {
		rr := ResultRecord{
			Entity:         r.EntityName,
			ManifestEntity: r.ManifestEntity,
			Status:         int(r.Status),
			Message:        r.Message,
			Detail:         r.Detail,
			File:           r.File,
		}
		if r.Rule != nil {
			rr.Rule = &RuleRecord{
				Name:            r.Rule.Name,
				Type:            r.Rule.Type.String(),
				Tags:            r.Rule.Tags,
				Severity:        r.Rule.Severity,
				SuggestedAction: r.Rule.SuggestedAction,
			}
		}
		out.Results = append(out.Results, rr)
	}
	return out
}

// Report reconstructs the engine report. Rules are rebuilt with the
// renderer-visible fields only; Report.ByTag, drift diffing, and all four
// output formats behave identically to the original.
func (rr *ReportRecord) Report() *engine.Report {
	if rr == nil {
		return nil
	}
	rep := &engine.Report{
		EntityName: rr.Entity,
		EntityType: rr.Type,
		Results:    make([]*engine.Result, 0, len(rr.Results)),
	}
	for _, r := range rr.Results {
		res := &engine.Result{
			EntityName:     r.Entity,
			ManifestEntity: r.ManifestEntity,
			Status:         engine.Status(r.Status),
			Message:        r.Message,
			Detail:         r.Detail,
			File:           r.File,
		}
		if r.Rule != nil {
			rule := &cvl.Rule{
				Name:            r.Rule.Name,
				Tags:            r.Rule.Tags,
				Severity:        r.Rule.Severity,
				SuggestedAction: r.Rule.SuggestedAction,
			}
			if t, err := cvl.ParseRuleType(r.Rule.Type); err == nil {
				rule.Type = t
			}
			res.Rule = rule
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}
