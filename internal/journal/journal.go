// Package journal implements a durable, replayable result log for fleet
// validation — the crash-safety layer that makes the paper's production
// cadence ("tens of thousands of containers and images daily", §5)
// operable. A fleet scan appends one record per completed entity; a run
// killed at entity 49,000 of 50,000 resumes by replaying the journal and
// re-scanning only what is missing or changed, and a warm re-run over an
// unchanged fleet is near-free. ConfEx (arXiv:2008.08656) frames
// cloud-scale config analysis as exactly this continuously re-run pipeline
// over a largely-unchanged corpus; Rehearsal (arXiv:1509.05100) argues
// idempotence is what makes config tooling trustworthy — replaying a
// journaled result must be indistinguishable from re-scanning an unchanged
// entity.
//
// # File format
//
// A journal is an 8-byte magic ("CVJRNL01") followed by records:
//
//	[uint32 LE payload length][uint32 LE CRC-32 (IEEE) of payload][payload]
//
// The payload is a JSON-encoded Record. The format is append-only; nothing
// in the file is ever updated in place, so the only corruption a crash can
// cause is a torn tail — which recovery truncates, never fails on.
//
// # Recovery
//
// Open replays the file record by record and stops at the first record
// that cannot be trusted: a short header, an implausible length, a torn
// payload, a CRC mismatch, or undecodable JSON. Everything after that
// point is discarded (the file is truncated back to the last valid record)
// and counted as corrupt; everything before it is replayed into the
// resume index. A mid-file bit flip therefore loses the records after it —
// they are simply re-scanned — but never aborts a run.
//
// # Compaction
//
// Compact rewrites the journal as a snapshot holding only the latest
// completed record per entity, via temp file + rename + directory fsync
// (never in place), then continues appending to the compacted file — so a
// long-lived journal is a snapshot plus a tail of recent appends.
//
// # Ownership
//
// A journal path is owned by exactly one handle at a time: Open takes an
// exclusive flock on the file and a second Open — same process or
// another — fails fast with ErrBusy instead of risking interleaved
// appends or a compaction racing a concurrent writer. The lock dies with
// the owning process, so crash-resume (the whole point of the journal)
// never meets a stale lock. Any number of fleet workers may share the
// *one* handle; Append serializes internally.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/fsutil"
)

// magic identifies (and versions) the on-disk format.
const magic = "CVJRNL01"

// maxRecordSize bounds a single record payload (64 MiB). A length field
// beyond it is treated as corruption, not as an allocation request.
const maxRecordSize = 64 << 20

// ErrNotJournal reports a file whose header is present but is not a
// journal — recovery refuses to truncate what it does not own.
var ErrNotJournal = errors.New("journal: file is not a configvalidator journal")

// ErrClosed reports an operation on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrBusy reports an Open of a journal another live handle already owns.
// A journal is single-writer: exactly one handle (in one process) may
// append to or compact a given path at a time. Without this guard a
// second writer could interleave appends mid-record — torn garbage
// recovery would silently truncate — or keep appending to the pre-compact
// inode after Compact renames a snapshot over the path, losing records.
// Ownership is enforced with an exclusive flock on the journal file, so a
// SIGKILLed owner releases it automatically and crash-resume never meets
// a stale lock.
var ErrBusy = errors.New("journal: already open by another writer (journals are single-writer)")

// Metrics receives journal events; *telemetry.Collector implements it. The
// interface lives here so the journal does not import telemetry.
type Metrics interface {
	// JournalAppended records one record durably appended.
	JournalAppended()
	// JournalReplayed records one valid record recovered at Open.
	JournalReplayed()
	// JournalCorruptRecord records one torn or corrupt record dropped
	// during recovery.
	JournalCorruptRecord()
}

// Options tune a journal.
type Options struct {
	// SyncEvery is the number of appends between fsyncs. 0 (the default)
	// and 1 sync after every record — an interrupted run loses at most the
	// in-flight record, at the cost of one fsync per entity. N > 1
	// amortizes the fsync over N records and risks losing up to N-1
	// journaled results on a power failure (a process crash loses nothing:
	// the OS page cache survives it). -1 never syncs explicitly.
	SyncEvery int
	// Metrics optionally receives append/replay/corruption events.
	Metrics Metrics
}

// Record is one journaled per-entity outcome. Exactly one of Report and
// Err is set.
type Record struct {
	// Entity is the scanned entity's name.
	Entity string `json:"entity"`
	// Digest is the entity's config digest at scan time; records with an
	// empty digest are audit-only and never satisfy a Lookup.
	Digest string `json:"digest,omitempty"`
	// Err is the scan failure, when the scan did not complete. Failed
	// scans are journaled for reconciliation but never replayed — a
	// resumed run re-scans them.
	Err string `json:"err,omitempty"`
	// Report is the completed validation report.
	Report *ReportRecord `json:"report,omitempty"`
}

// Stats is a point-in-time copy of a journal's counters.
type Stats struct {
	// Appends counts records durably appended through this handle;
	// AppendErrors counts appends that failed (disk full, closed file).
	Appends, AppendErrors int64
	// Replayed counts valid records recovered at Open; CorruptRecords
	// counts torn/corrupt records dropped during recovery.
	Replayed, CorruptRecords int64
	// Entities is the number of entities with a live completed record.
	Entities int
}

// Journal is an append-only, CRC-checksummed record log. Safe for
// concurrent use by any number of fleet workers.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	opts Options

	// index maps entity name to its latest completed record — duplicate
	// records for one entity resolve last-writer-wins.
	index    map[string]Record
	latest   *Record // most recent completed record (replay, then appends)
	replayed []Record

	appends, appendErrs, replayedN, corrupt int64
	sinceSync                               int
	closed                                  bool
}

// Open creates or recovers the journal at path. Recovery replays every
// valid record into the resume index and truncates any torn or corrupt
// tail; it never fails on corruption, only on I/O errors, on a file that
// is not a journal at all, or on a journal another live handle already
// owns (ErrBusy — journals are single-writer; see that error's doc).
func Open(path string, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if err := fsutil.LockFile(f); err != nil {
		_ = f.Close()
		if errors.Is(err, fsutil.ErrLocked) {
			return nil, fmt.Errorf("%w: %s", ErrBusy, path)
		}
		return nil, fmt.Errorf("journal: lock %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, opts: opts, index: make(map[string]Record)}
	if err := j.recover(); err != nil {
		_ = f.Close()
		return nil, err
	}
	return j, nil
}

// recover replays the file, truncating at the first untrusted byte.
func (j *Journal) recover() error {
	fi, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("journal: stat %s: %w", j.path, err)
	}
	size := fi.Size()
	if size == 0 {
		if _, err := j.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("journal: write header %s: %w", j.path, err)
		}
		return j.syncNow()
	}
	header := make([]byte, len(magic))
	n, err := io.ReadFull(j.f, header)
	switch {
	case err == io.ErrUnexpectedEOF || err == io.EOF || n < len(magic):
		// Crash during initial creation: the header itself is torn.
		j.noteCorrupt()
		return j.truncateTo(0, true)
	case err != nil:
		return fmt.Errorf("journal: read header %s: %w", j.path, err)
	case string(header) != magic:
		return fmt.Errorf("%w: %s", ErrNotJournal, j.path)
	}

	offset := int64(len(magic))
	head := make([]byte, 8)
	for offset < size {
		if _, err := io.ReadFull(j.f, head); err != nil {
			j.noteCorrupt() // torn record header
			return j.truncateTo(offset, false)
		}
		length := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if length == 0 || length > maxRecordSize || offset+8+int64(length) > size {
			j.noteCorrupt() // implausible length or torn payload
			return j.truncateTo(offset, false)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(j.f, payload); err != nil {
			j.noteCorrupt()
			return j.truncateTo(offset, false)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			j.noteCorrupt() // bit flip: drop this record and everything after
			return j.truncateTo(offset, false)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			j.noteCorrupt()
			return j.truncateTo(offset, false)
		}
		j.absorb(rec)
		j.replayed = append(j.replayed, rec)
		j.replayedN++
		if j.opts.Metrics != nil {
			j.opts.Metrics.JournalReplayed()
		}
		offset += 8 + int64(length)
	}
	return nil
}

// truncateTo discards everything at and after offset — the recovery path
// for a torn or corrupt tail. With rewriteMagic set the header itself was
// torn and is rewritten.
func (j *Journal) truncateTo(offset int64, rewriteMagic bool) error {
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("journal: truncate %s: %w", j.path, err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek %s: %w", j.path, err)
	}
	if rewriteMagic {
		if _, err := j.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("journal: write header %s: %w", j.path, err)
		}
	}
	return j.syncNow()
}

func (j *Journal) noteCorrupt() {
	j.corrupt++
	if j.opts.Metrics != nil {
		j.opts.Metrics.JournalCorruptRecord()
	}
}

// absorb folds one valid record into the resume index (last-writer-wins).
// Failed-scan records are audit-only and not indexed.
func (j *Journal) absorb(rec Record) {
	if rec.Report == nil {
		return
	}
	j.index[rec.Entity] = rec
	cp := rec
	j.latest = &cp
}

// Append durably logs one record. Concurrent appends are serialized; each
// record is written in a single Write call, so a crash tears at most the
// final record — which recovery truncates.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecordSize {
		return fmt.Errorf("journal: record for %s exceeds %d bytes", rec.Entity, maxRecordSize)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		j.appendErrs++
		return ErrClosed
	}
	if _, err := j.f.Write(buf); err != nil {
		j.appendErrs++
		return fmt.Errorf("journal: append %s: %w", j.path, err)
	}
	j.appends++
	j.absorb(rec)
	if j.opts.Metrics != nil {
		j.opts.Metrics.JournalAppended()
	}
	j.sinceSync++
	every := j.opts.SyncEvery
	if every == 0 {
		every = 1
	}
	if every > 0 && j.sinceSync >= every {
		return j.syncNow()
	}
	return nil
}

func (j *Journal) syncNow() error {
	j.sinceSync = 0
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync %s: %w", j.path, err)
	}
	return nil
}

// Lookup returns the latest completed record for the entity when its
// journaled digest matches — the resume test ValidateFleet applies before
// re-scanning. An empty digest never matches.
func (j *Journal) Lookup(entity, digest string) (Record, bool) {
	if j == nil || digest == "" {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.index[entity]
	if !ok || rec.Digest != digest {
		return Record{}, false
	}
	return rec, true
}

// Latest returns the most recent completed record — replayed or appended —
// which is the durable drift baseline cvwatch restores on restart.
func (j *Journal) Latest() (Record, bool) {
	if j == nil {
		return Record{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.latest == nil {
		return Record{}, false
	}
	return *j.latest, true
}

// Replayed returns the records recovered at Open, in file order.
func (j *Journal) Replayed() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Record, len(j.replayed))
	copy(out, j.replayed)
	return out
}

// Stats copies the current counters.
func (j *Journal) Stats() Stats {
	if j == nil {
		return Stats{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:        j.appends,
		AppendErrors:   j.appendErrs,
		Replayed:       j.replayedN,
		CorruptRecords: j.corrupt,
		Entities:       len(j.index),
	}
}

// Compact atomically rewrites the journal as a snapshot holding only the
// latest completed record per entity (sorted by entity name), dropping
// superseded duplicates and audit-only failure records. The rewrite goes
// through a temp file + rename + directory fsync, so a crash mid-compaction
// leaves the previous journal fully intact.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	names := make([]string, 0, len(j.index))
	for name := range j.index {
		names = append(names, name)
	}
	sort.Strings(names)

	err := fsutil.WriteAtomic(j.path, 0o644, func(w io.Writer) error {
		if _, err := w.Write([]byte(magic)); err != nil {
			return err
		}
		head := make([]byte, 8)
		for _, name := range names {
			payload, err := json.Marshal(j.index[name])
			if err != nil {
				return err
			}
			binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(head[4:8], crc32.ChecksumIEEE(payload))
			if _, err := w.Write(head); err != nil {
				return err
			}
			if _, err := w.Write(payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	// Swap the handle to the compacted file and position at its end for
	// subsequent appends (the snapshot's tail). The rename replaced the
	// inode, so ownership is re-asserted on the new file before the old
	// (still-locked) handle is released — the single-writer guarantee
	// holds across the swap.
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopen after compact: %w", err)
	}
	if err := fsutil.LockFile(f); err != nil {
		_ = f.Close()
		if errors.Is(err, fsutil.ErrLocked) {
			return fmt.Errorf("%w: %s (stolen during compaction)", ErrBusy, j.path)
		}
		return fmt.Errorf("journal: relock after compact: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return fmt.Errorf("journal: seek after compact: %w", err)
	}
	_ = j.f.Close()
	j.f = f
	j.sinceSync = 0
	return nil
}

// Sync forces an fsync regardless of the sync policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncNow()
}

// Close syncs and closes the journal. Further appends fail with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	serr := j.f.Sync()
	cerr := j.f.Close()
	if serr != nil {
		return fmt.Errorf("journal: sync on close %s: %w", j.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: close %s: %w", j.path, cerr)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Remove deletes a journal file (after Close); missing files are fine.
func Remove(path string) error {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return fsutil.SyncDir(filepath.Dir(path))
}

// ReportRecord is the journal's serialized form of an engine.Report. It
// carries every field the output renderers (text, JSON, JUnit, drift) read,
// so a replayed report renders byte-identically to the report produced by
// re-scanning the unchanged entity.
type ReportRecord struct {
	Entity  string         `json:"entity"`
	Type    string         `json:"type"`
	Results []ResultRecord `json:"results"`
}

// ResultRecord is one serialized rule outcome.
type ResultRecord struct {
	Entity         string      `json:"entity,omitempty"`
	ManifestEntity string      `json:"manifest_entity,omitempty"`
	Status         int         `json:"status"`
	Message        string      `json:"message,omitempty"`
	Detail         string      `json:"detail,omitempty"`
	File           string      `json:"file,omitempty"`
	Rule           *RuleRecord `json:"rule,omitempty"`
}

// RuleRecord preserves the rule fields reports render; the full rule
// specification is not journaled (it lives in the rule library, whose
// fingerprint participates in the config digest).
type RuleRecord struct {
	Name            string   `json:"name"`
	Type            string   `json:"type,omitempty"`
	Tags            []string `json:"tags,omitempty"`
	Severity        string   `json:"severity,omitempty"`
	SuggestedAction string   `json:"suggested_action,omitempty"`
}

// NewReportRecord converts an engine report into its journaled form.
func NewReportRecord(rep *engine.Report) *ReportRecord {
	if rep == nil {
		return nil
	}
	out := &ReportRecord{
		Entity:  rep.EntityName,
		Type:    rep.EntityType,
		Results: make([]ResultRecord, 0, len(rep.Results)),
	}
	for _, r := range rep.Results {
		rr := ResultRecord{
			Entity:         r.EntityName,
			ManifestEntity: r.ManifestEntity,
			Status:         int(r.Status),
			Message:        r.Message,
			Detail:         r.Detail,
			File:           r.File,
		}
		if r.Rule != nil {
			rr.Rule = &RuleRecord{
				Name:            r.Rule.Name,
				Type:            r.Rule.Type.String(),
				Tags:            r.Rule.Tags,
				Severity:        r.Rule.Severity,
				SuggestedAction: r.Rule.SuggestedAction,
			}
		}
		out.Results = append(out.Results, rr)
	}
	return out
}

// Report reconstructs the engine report. Rules are rebuilt with the
// renderer-visible fields only; Report.ByTag, drift diffing, and all four
// output formats behave identically to the original.
func (rr *ReportRecord) Report() *engine.Report {
	if rr == nil {
		return nil
	}
	rep := &engine.Report{
		EntityName: rr.Entity,
		EntityType: rr.Type,
		Results:    make([]*engine.Result, 0, len(rr.Results)),
	}
	for _, r := range rr.Results {
		res := &engine.Result{
			EntityName:     r.Entity,
			ManifestEntity: r.ManifestEntity,
			Status:         engine.Status(r.Status),
			Message:        r.Message,
			Detail:         r.Detail,
			File:           r.File,
		}
		if r.Rule != nil {
			rule := &cvl.Rule{
				Name:            r.Rule.Name,
				Tags:            r.Rule.Tags,
				Severity:        r.Rule.Severity,
				SuggestedAction: r.Rule.SuggestedAction,
			}
			if t, err := cvl.ParseRuleType(r.Rule.Type); err == nil {
				rule.Type = t
			}
			res.Rule = rule
		}
		rep.Results = append(rep.Results, res)
	}
	return rep
}
