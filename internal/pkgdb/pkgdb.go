// Package pkgdb models the installed-software state of an entity: package
// names, versions, and architecture, as recorded by a dpkg-style status
// database. Validation rules use it for the "software packages and their
// versions" portion of system state (paper §2.1.2).
package pkgdb

import (
	"fmt"
	"sort"
	"strings"
)

// Package describes one installed package.
type Package struct {
	// Name is the package name, e.g. "openssh-server".
	Name string
	// Version is the full dpkg version, e.g. "1:7.2p2-4ubuntu2.8".
	Version string
	// Architecture is e.g. "amd64".
	Architecture string
	// Status is the dpkg status line, e.g. "install ok installed".
	Status string
}

// Installed reports whether the package status marks it installed. An empty
// status is treated as installed (sources that don't track status).
func (p Package) Installed() bool {
	return p.Status == "" || strings.HasSuffix(p.Status, "installed")
}

// DB is a queryable package database.
type DB struct {
	packages map[string]Package
}

// New builds a database from a package list. Later duplicates win.
func New(packages []Package) *DB {
	db := &DB{packages: make(map[string]Package, len(packages))}
	for _, p := range packages {
		db.packages[p.Name] = p
	}
	return db
}

// Get returns the named package.
func (db *DB) Get(name string) (Package, bool) {
	p, ok := db.packages[name]
	return p, ok
}

// Len returns the number of packages.
func (db *DB) Len() int { return len(db.packages) }

// All returns every package sorted by name.
func (db *DB) All() []Package {
	out := make([]Package, 0, len(db.packages))
	for _, p := range db.packages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ParseStatusFile parses a dpkg-style status database:
//
//	Package: openssh-server
//	Status: install ok installed
//	Version: 1:7.2p2-4ubuntu2.8
//	Architecture: amd64
//	<blank line between stanzas>
func ParseStatusFile(content []byte) ([]Package, error) {
	var out []Package
	var cur Package
	flush := func(line int) error {
		if cur == (Package{}) {
			return nil
		}
		if cur.Name == "" {
			return fmt.Errorf("pkgdb: stanza ending at line %d has no Package field", line)
		}
		out = append(out, cur)
		cur = Package{}
		return nil
	}
	lines := strings.Split(strings.ReplaceAll(string(content), "\r\n", "\n"), "\n")
	for i, line := range lines {
		if strings.TrimSpace(line) == "" {
			if err := flush(i + 1); err != nil {
				return nil, err
			}
			continue
		}
		if line[0] == ' ' || line[0] == '\t' {
			continue // continuation of a multi-line field (e.g. Description)
		}
		idx := strings.IndexByte(line, ':')
		if idx < 0 {
			return nil, fmt.Errorf("pkgdb: line %d: expected 'Field: value', got %q", i+1, line)
		}
		field := line[:idx]
		value := strings.TrimSpace(line[idx+1:])
		switch field {
		case "Package":
			cur.Name = value
		case "Version":
			cur.Version = value
		case "Architecture":
			cur.Architecture = value
		case "Status":
			cur.Status = value
		}
	}
	if err := flush(len(lines)); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatStatusFile renders packages in the dpkg status format parsed by
// ParseStatusFile.
func FormatStatusFile(packages []Package) []byte {
	var b strings.Builder
	for _, p := range packages {
		fmt.Fprintf(&b, "Package: %s\n", p.Name)
		if p.Status != "" {
			fmt.Fprintf(&b, "Status: %s\n", p.Status)
		}
		if p.Architecture != "" {
			fmt.Fprintf(&b, "Architecture: %s\n", p.Architecture)
		}
		if p.Version != "" {
			fmt.Fprintf(&b, "Version: %s\n", p.Version)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// CompareVersions compares two dpkg versions, returning -1, 0, or 1. It
// implements the dpkg algorithm: [epoch:]upstream[-revision], where the
// upstream and revision parts alternate non-digit and digit runs, '~' sorts
// before everything (including the empty string), and letters sort before
// non-letters.
func CompareVersions(a, b string) int {
	ae, au, ar := splitVersion(a)
	be, bu, br := splitVersion(b)
	if ae != be {
		if ae < be {
			return -1
		}
		return 1
	}
	if c := compareDpkgPart(au, bu); c != 0 {
		return c
	}
	return compareDpkgPart(ar, br)
}

func splitVersion(v string) (epoch int, upstream, revision string) {
	if idx := strings.IndexByte(v, ':'); idx >= 0 {
		for _, c := range v[:idx] {
			if c < '0' || c > '9' {
				epoch = 0
				goto noEpoch
			}
		}
		for _, c := range v[:idx] {
			epoch = epoch*10 + int(c-'0')
		}
		v = v[idx+1:]
	}
noEpoch:
	if idx := strings.LastIndexByte(v, '-'); idx >= 0 {
		return epoch, v[:idx], v[idx+1:]
	}
	return epoch, v, ""
}

func compareDpkgPart(a, b string) int {
	for a != "" || b != "" {
		// Compare non-digit prefixes.
		an, a2 := takeNonDigits(a)
		bn, b2 := takeNonDigits(b)
		if c := compareNonDigits(an, bn); c != 0 {
			return c
		}
		a, b = a2, b2
		// Compare digit prefixes numerically.
		ad, a3 := takeDigits(a)
		bd, b3 := takeDigits(b)
		if c := compareNumeric(ad, bd); c != 0 {
			return c
		}
		a, b = a3, b3
	}
	return 0
}

func takeNonDigits(s string) (string, string) {
	i := 0
	for i < len(s) && (s[i] < '0' || s[i] > '9') {
		i++
	}
	return s[:i], s[i:]
}

func takeDigits(s string) (string, string) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return s[:i], s[i:]
}

// compareNonDigits compares per dpkg rules: '~' < end-of-string < letters <
// non-letters, otherwise byte order.
func compareNonDigits(a, b string) int {
	i := 0
	for {
		var ca, cb int
		switch {
		case i < len(a):
			ca = dpkgOrder(a[i])
		default:
			ca = 0
		}
		switch {
		case i < len(b):
			cb = dpkgOrder(b[i])
		default:
			cb = 0
		}
		if i >= len(a) && i >= len(b) {
			return 0
		}
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		i++
	}
}

func dpkgOrder(c byte) int {
	switch {
	case c == '~':
		return -1
	case (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		return int(c)
	default:
		return int(c) + 256
	}
}

func compareNumeric(a, b string) int {
	a = strings.TrimLeft(a, "0")
	b = strings.TrimLeft(b, "0")
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	return strings.Compare(a, b)
}

// SatisfiesMin reports whether the installed version is at least min.
func SatisfiesMin(installed, min string) bool {
	return CompareVersions(installed, min) >= 0
}
