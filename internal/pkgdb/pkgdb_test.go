package pkgdb

import (
	"math/rand"
	"strings"
	"testing"
)

const sampleStatus = `Package: openssh-server
Status: install ok installed
Architecture: amd64
Version: 1:7.2p2-4ubuntu2.8
Description: secure shell (SSH) server
 This is a continuation line that must be ignored.

Package: nginx
Status: install ok installed
Architecture: amd64
Version: 1.10.3-0ubuntu0.16.04.5

Package: removed-pkg
Status: deinstall ok config-files
Version: 1.0
`

func TestParseStatusFile(t *testing.T) {
	pkgs, err := ParseStatusFile([]byte(sampleStatus))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("parsed %d packages", len(pkgs))
	}
	ssh := pkgs[0]
	if ssh.Name != "openssh-server" || ssh.Version != "1:7.2p2-4ubuntu2.8" || ssh.Architecture != "amd64" {
		t.Errorf("ssh = %+v", ssh)
	}
	if !ssh.Installed() {
		t.Error("openssh-server should be installed")
	}
	if pkgs[2].Installed() {
		t.Error("deinstalled package reported installed")
	}
}

func TestParseStatusFileErrors(t *testing.T) {
	if _, err := ParseStatusFile([]byte("Version: 1.0\n\n")); err == nil {
		t.Error("stanza without Package accepted")
	}
	if _, err := ParseStatusFile([]byte("not a field line\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	in := []Package{
		{Name: "a", Version: "1.0", Architecture: "amd64", Status: "install ok installed"},
		{Name: "b", Version: "2:3.4-5"},
	}
	out, err := ParseStatusFile(FormatStatusFile(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip: %+v", out)
	}
}

func TestDB(t *testing.T) {
	db := New([]Package{{Name: "a", Version: "1"}, {Name: "b", Version: "2"}, {Name: "a", Version: "3"}})
	if db.Len() != 2 {
		t.Errorf("len = %d", db.Len())
	}
	p, ok := db.Get("a")
	if !ok || p.Version != "3" {
		t.Errorf("duplicate handling: %+v ok=%v", p, ok)
	}
	all := db.All()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Errorf("All() = %+v", all)
	}
	if _, ok := db.Get("zzz"); ok {
		t.Error("missing package found")
	}
}

func TestCompareVersions(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.0", "1.0", 0},
		{"1.0", "2.0", -1},
		{"2.0", "1.0", 1},
		{"1.10", "1.9", 1},     // numeric, not lexicographic
		{"1.0-1", "1.0-2", -1}, // revision compare
		{"1.0", "1.0-1", -1},   // empty revision sorts first
		{"1:1.0", "2.0", 1},    // epoch dominates
		{"0:1.0", "1.0", 0},    // explicit zero epoch
		{"1.0~rc1", "1.0", -1}, // tilde sorts before release
		{"1.0~rc1", "1.0~rc2", -1},
		{"1.0a", "1.0", 1}, // letters after digits extend
		{"1.0a", "1.0b", -1},
		{"1.0+b1", "1.0a", 1}, // non-letters sort after letters
		{"7.2p2", "7.2p1", 1},
		{"1:7.2p2-4ubuntu2.8", "1:7.2p2-4ubuntu2.10", -1},
		{"007", "7", 0}, // leading zeros
		{"1.2.3", "1.2", 1},
	}
	for _, tt := range tests {
		if got := CompareVersions(tt.a, tt.b); got != tt.want {
			t.Errorf("CompareVersions(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		// Antisymmetry.
		if got := CompareVersions(tt.b, tt.a); got != -tt.want {
			t.Errorf("CompareVersions(%q, %q) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestSatisfiesMin(t *testing.T) {
	if !SatisfiesMin("1.10", "1.9") {
		t.Error("1.10 >= 1.9")
	}
	if SatisfiesMin("1.8", "1.9") {
		t.Error("1.8 < 1.9")
	}
	if !SatisfiesMin("1.9", "1.9") {
		t.Error("equal versions satisfy")
	}
}

// TestQuickCompareVersionsTotalOrder checks reflexivity, antisymmetry, and
// transitivity on random versions.
func TestQuickCompareVersionsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	randVersion := func() string {
		var b strings.Builder
		if r.Intn(4) == 0 {
			b.WriteString(strings.Repeat("1", 1+r.Intn(2)))
			b.WriteByte(':')
		}
		parts := 1 + r.Intn(3)
		for i := 0; i < parts; i++ {
			if i > 0 {
				b.WriteByte('.')
			}
			b.WriteString([]string{"0", "1", "2", "10", "3a", "rc", "~b", "p2"}[r.Intn(8)])
		}
		if r.Intn(3) == 0 {
			b.WriteByte('-')
			b.WriteString([]string{"1", "2ubuntu1", "0+deb9"}[r.Intn(3)])
		}
		return b.String()
	}
	for i := 0; i < 500; i++ {
		a, b, c := randVersion(), randVersion(), randVersion()
		if CompareVersions(a, a) != 0 {
			t.Fatalf("reflexivity broken for %q", a)
		}
		if CompareVersions(a, b) != -CompareVersions(b, a) {
			t.Fatalf("antisymmetry broken for %q vs %q", a, b)
		}
		// Transitivity: a<=b and b<=c implies a<=c.
		if CompareVersions(a, b) <= 0 && CompareVersions(b, c) <= 0 && CompareVersions(a, c) > 0 {
			t.Fatalf("transitivity broken: %q <= %q <= %q but a > c", a, b, c)
		}
	}
}
