// Package engine implements the Rule Engine of ConfigValidator (§3.1): it
// applies CVL validation checks to normalized configuration data and
// produces validation results. Tree, schema, path, and script rules are
// evaluated per entity; composite rules are evaluated as a logical
// combination over per-entity rule results and configuration values.
package engine

import (
	"fmt"

	"configvalidator/internal/cvl"
)

// Status is the outcome of applying one rule.
type Status int

// Statuses.
const (
	// StatusPass means the configuration matched the rule's expectation.
	StatusPass Status = iota + 1
	// StatusFail means a misconfiguration was detected.
	StatusFail
	// StatusNotApplicable means the rule had nothing to check on this
	// entity (no matching config files, feature unavailable, entity-type
	// filter).
	StatusNotApplicable
	// StatusError means the rule could not be evaluated (parse failure,
	// bad regex, missing column).
	StatusError
	// StatusDegraded means the input data for the check was incomplete —
	// an unreadable or corrupt configuration file, a panicking lens, a
	// crashed rule evaluation. Unlike StatusError (a bad rule), degraded
	// results point at the entity's data; unlike a scan error, they never
	// abort the entity: one unreadable sshd_config must not hide the 400
	// other results of the scan.
	StatusDegraded
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusPass:
		return "PASS"
	case StatusFail:
		return "FAIL"
	case StatusNotApplicable:
		return "N/A"
	case StatusError:
		return "ERROR"
	case StatusDegraded:
		return "DEGRADED"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Result is one rule evaluation outcome, the unit the output-processing
// module formats.
type Result struct {
	// EntityName is the validated entity (hostname, image ref, ...).
	EntityName string
	// ManifestEntity is the manifest entry the rule belongs to ("nginx").
	ManifestEntity string
	// Rule is the evaluated rule.
	Rule *cvl.Rule
	// Status is the outcome.
	Status Status
	// Message is the chosen rule description for the outcome (the
	// matched / not-matched / not-present description from the rule).
	Message string
	// Detail describes what was actually observed, for reports.
	Detail string
	// File is the configuration file involved, when applicable.
	File string
}

// Passed reports whether the result is a pass.
func (r *Result) Passed() bool { return r.Status == StatusPass }

// Report aggregates the results of validating one entity against a
// manifest.
type Report struct {
	// EntityName and EntityType identify the validated entity.
	EntityName string
	EntityType string
	// Results holds every rule outcome in evaluation order.
	Results []*Result
}

// Counts tallies results by status.
func (rep *Report) Counts() map[Status]int {
	out := make(map[Status]int, 4)
	for _, r := range rep.Results {
		out[r.Status]++
	}
	return out
}

// Failed returns only the failing results.
func (rep *Report) Failed() []*Result {
	var out []*Result
	for _, r := range rep.Results {
		if r.Status == StatusFail {
			out = append(out, r)
		}
	}
	return out
}

// Degraded returns the results whose input data was incomplete — the
// checks an operator cannot trust on this scan.
func (rep *Report) Degraded() []*Result {
	var out []*Result
	for _, r := range rep.Results {
		if r.Status == StatusDegraded {
			out = append(out, r)
		}
	}
	return out
}

// ByTag returns results whose rule carries the tag.
func (rep *Report) ByTag(tag string) []*Result {
	var out []*Result
	for _, r := range rep.Results {
		if r.Rule != nil && r.Rule.HasTag(tag) {
			out = append(out, r)
		}
	}
	return out
}
