package engine

import (
	"context"
	"errors"
	"fmt"
)

// transientError marks an error as retryable. See MarkTransient.
type transientError struct {
	err error
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient wraps err so that Transient reports it as retryable —
// the hook crawler plugins and entity implementations use to flag
// failures worth retrying (a flaky registry pull, a momentarily
// unreachable cloud API). A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Transient classifies an error as likely-retryable: it was explicitly
// marked with MarkTransient, it is a deadline expiry, or any error in its
// chain self-reports as a timeout or temporary condition (net.Error and
// friends). Permanent failures — unknown targets, malformed rules,
// panics — are not transient; retrying them burns fleet throughput for
// the same outcome, which is why the fleet retry policy consults this
// before re-scanning (cf. ConfEx's robustness requirements for
// cloud-scale config analysis).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var marked *transientError
	if errors.As(err, &marked) {
		return true
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var timeout interface{ Timeout() bool }
	if errors.As(err, &timeout) && timeout.Timeout() {
		return true
	}
	var temporary interface{ Temporary() bool }
	if errors.As(err, &temporary) && temporary.Temporary() {
		return true
	}
	return false
}

// PanicError records a panic recovered during a scan: the recovered value
// and the goroutine stack at the point of the panic. It is never
// transient.
type PanicError struct {
	// Value is the value the scan panicked with.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scan panicked: %v\n%s", e.Value, e.Stack)
}
