package engine

import (
	"fmt"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// listing1Files is a complete manifest + rule-file set reproducing the
// paper's Listing 1 composite scenario: nginx SSL + sysctl ip_forward +
// mysql ssl-ca, combined in a composite rule.
var listing1Files = map[string]string{
	"manifest.yaml": `
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file: nginx.yaml
sysctl:
  enabled: True
  config_search_paths:
    - /etc/sysctl.conf
  cvl_file: sysctl.yaml
mysql:
  enabled: True
  config_search_paths:
    - /etc/mysql
  cvl_file: mysql.yaml
stack:
  enabled: True
  cvl_file: composite.yaml
`,
	"nginx.yaml": `
config_name: listen
config_path: ["server", "http/server"]
preferred_value: ["ssl"]
preferred_value_match: substr,any
matched_description: "nginx has SSL enabled on listening sockets"
`,
	// The sysctl lens expands dotted keys into nested paths, so the rule
	// addresses the key as a slash path from the root.
	"sysctl.yaml": `
config_name: net/ipv4/ip_forward
config_path: [""]
preferred_value: ["0"]
matched_description: "ip_forward is disabled"
`,
	"mysql.yaml": `
config_name: ssl-ca
config_path: ["mysqld"]
preferred_value: ["/etc/mysql/cacert.pem"]
matched_description: "mysql ssl-ca is configured"
`,
	"composite.yaml": `
composite_rule_name: "mysql ssl-ca path and sysctl and nginx SSL"
composite_rule_description: "Check if nginx is running with SSL, ip_forward is disabled, and mysql server ssl-ca has a cert"
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen
tags: ["docker", "nginx", "sysctl"]
matched_description: "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled."
not_matched_preferred_value_description: "Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled."
`,
}

// stackEntity builds a host carrying all three applications, with knobs for
// each leg of the composite.
func stackEntity(sslListen bool, ipForward string, sslCA string) *entity.Mem {
	m := entity.NewMem("stack-host", entity.TypeHost)
	listen := "443 ssl"
	if !sslListen {
		listen = "80"
	}
	m.AddFile("/etc/nginx/nginx.conf", []byte(fmt.Sprintf("http {\n  server {\n    listen %s;\n  }\n}\n", listen)))
	m.AddFile("/etc/sysctl.conf", []byte(fmt.Sprintf("net.ipv4.ip_forward = %s\n", ipForward)))
	m.AddFile("/etc/mysql/my.cnf", []byte(fmt.Sprintf("[mysqld]\nssl-ca = %s\n", sslCA)))
	return m
}

func validateStack(t *testing.T, m *entity.Mem) *Report {
	t.Helper()
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(listing1Files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(path string) ([]byte, error) {
		src, ok := listing1Files[path]
		if !ok {
			return nil, fmt.Errorf("no file %q", path)
		}
		return []byte(src), nil
	}
	rep, err := New(nil).Validate(m, manifest, read)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func compositeResult(t *testing.T, rep *Report) *Result {
	t.Helper()
	for _, r := range rep.Results {
		if r.Rule != nil && r.Rule.Type == cvl.TypeComposite {
			return r
		}
	}
	t.Fatalf("no composite result in %+v", rep.Results)
	return nil
}

func TestCompositeListing1TruthTable(t *testing.T) {
	tests := []struct {
		name      string
		sslListen bool
		ipForward string
		sslCA     string
		want      Status
	}{
		{"all good", true, "0", "/etc/mysql/cacert.pem", StatusPass},
		{"nginx without ssl", false, "0", "/etc/mysql/cacert.pem", StatusFail},
		{"ip forwarding on", true, "1", "/etc/mysql/cacert.pem", StatusFail},
		{"wrong mysql cert", true, "0", "/tmp/rogue.pem", StatusFail},
		{"everything wrong", false, "1", "/tmp/rogue.pem", StatusFail},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rep := validateStack(t, stackEntity(tt.sslListen, tt.ipForward, tt.sslCA))
			res := compositeResult(t, rep)
			if res.Status != tt.want {
				t.Errorf("composite = %v, want %v (detail: %s)", res.Status, tt.want, res.Detail)
			}
			if tt.want == StatusPass && res.Message != "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled." {
				t.Errorf("message = %q", res.Message)
			}
		})
	}
}

func TestManifestValidationAllEntities(t *testing.T) {
	rep := validateStack(t, stackEntity(true, "0", "/etc/mysql/cacert.pem"))
	// Three per-entity rules + one composite.
	if len(rep.Results) != 4 {
		t.Fatalf("results = %d: %+v", len(rep.Results), rep.Results)
	}
	for _, r := range rep.Results {
		if r.Status != StatusPass {
			t.Errorf("rule %s on %s = %v (%s)", r.Rule.Name, r.ManifestEntity, r.Status, r.Detail)
		}
	}
	// Entity attribution is preserved.
	byEntity := make(map[string]int)
	for _, r := range rep.Results {
		byEntity[r.ManifestEntity]++
	}
	for _, want := range []string{"nginx", "sysctl", "mysql", "stack"} {
		if byEntity[want] != 1 {
			t.Errorf("entity %s results = %d", want, byEntity[want])
		}
	}
}

func TestManifestDisabledEntitySkipped(t *testing.T) {
	files := map[string]string{
		"manifest.yaml": "nginx:\n  enabled: False\n  cvl_file: nginx.yaml\n",
		"nginx.yaml":    "config_name: listen\n",
	}
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(path string) ([]byte, error) { return []byte(files[path]), nil }
	rep, err := New(nil).Validate(entity.NewMem("h", entity.TypeHost), manifest, read)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Errorf("disabled entity produced results: %+v", rep.Results)
	}
}

func TestManifestMissingRuleFile(t *testing.T) {
	manifest, err := cvl.ParseManifest("m.yaml", []byte("nginx:\n  cvl_file: ghost.yaml\n"))
	if err != nil {
		t.Fatal(err)
	}
	read := func(path string) ([]byte, error) { return nil, fmt.Errorf("no file %q", path) }
	if _, err := New(nil).Validate(entity.NewMem("h", entity.TypeHost), manifest, read); err == nil {
		t.Error("missing rule file accepted")
	}
}

func TestManifestEntryTagFilter(t *testing.T) {
	files := map[string]string{
		"manifest.yaml": "sshd:\n  config_search_paths: [/etc/ssh]\n  cvl_file: sshd.yaml\n  tags: [\"#ssl\"]\n",
		"sshd.yaml": strings.Join([]string{
			"config_name: PermitRootLogin",
			"config_path: [\"\"]",
			"preferred_value: [\"no\"]",
			"tags: [\"#cis\"]",
			"---",
			"config_name: Ciphers",
			"config_path: [\"\"]",
			"non_preferred_value: [\"3des\"]",
			"non_preferred_value_match: substr,any",
			"tags: [\"#ssl\"]",
		}, "\n"),
	}
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(p string) ([]byte, error) { return []byte(files[p]), nil }
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin yes\nCiphers aes256-ctr\n"))
	rep, err := New(nil).Validate(m, manifest, read)
	if err != nil {
		t.Fatal(err)
	}
	// Only the #ssl-tagged rule runs.
	if len(rep.Results) != 1 || rep.Results[0].Rule.Name != "Ciphers" {
		t.Fatalf("results = %+v", rep.Results)
	}
}

func TestCompositeParenthesesAtManifestLevel(t *testing.T) {
	files := map[string]string{
		"manifest.yaml": "sysctl:\n  config_search_paths: [/etc/sysctl.conf]\n  cvl_file: sysctl.yaml\nagg:\n  cvl_file: agg.yaml\n",
		"sysctl.yaml": strings.Join([]string{
			"config_name: net/ipv4/ip_forward",
			"config_path: [\"\"]",
			"preferred_value: [\"0\"]",
			"---",
			"config_name: net/ipv4/tcp_syncookies",
			"config_path: [\"\"]",
			"preferred_value: [\"1\"]",
		}, "\n"),
		"agg.yaml": "composite_rule_name: either\ncomposite_rule: (sysctl.net.ipv4.ip_forward || sysctl.net.ipv4.tcp_syncookies) && !sysctl.missing.rule\n",
	}
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(p string) ([]byte, error) { return []byte(files[p]), nil }
	m := entity.NewMem("h", entity.TypeHost)
	// ip_forward fails, syncookies passes -> OR true; missing ref false,
	// negated true -> composite passes.
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 1\nnet.ipv4.tcp_syncookies = 1\n"))
	rep, err := New(nil).Validate(m, manifest, read)
	if err != nil {
		t.Fatal(err)
	}
	res := compositeResult(t, rep)
	if res.Status != StatusPass {
		t.Fatalf("composite = %v (%s)", res.Status, res.Detail)
	}
}

func TestCompositeMissingEntityRefs(t *testing.T) {
	// A composite referencing entities with no crawled config: bare ref
	// falls back to existence and fails gracefully.
	rep := validateStack(t, entity.NewMem("bare-host", entity.TypeHost))
	res := compositeResult(t, rep)
	if res.Status != StatusFail {
		t.Errorf("composite on empty host = %v", res.Status)
	}
}
