package engine

import (
	"fmt"
	"regexp"
	"strings"
	"sync"

	"configvalidator/internal/cvl"
)

// matcher evaluates CVL value-match specifications with a shared compiled
// regex cache.
type matcher struct {
	mu    sync.Mutex
	cache map[string]*regexp.Regexp
}

func newMatcher() *matcher {
	return &matcher{cache: make(map[string]*regexp.Regexp)}
}

// defaults for unspecified match specs: a value passes when it equals any
// preferred value, and fails when it equals any non-preferred value.
var (
	defaultPreferredSpec    = cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}
	defaultNonPreferredSpec = cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}
)

// valueMatches reports whether value matches the expected set under spec.
func (m *matcher) valueMatches(value string, expected []string, spec cvl.MatchSpec, caseInsensitive bool) (bool, error) {
	if len(expected) == 0 {
		return false, nil
	}
	matched := 0
	for _, e := range expected {
		ok, err := m.matchOne(value, e, spec.Kind, caseInsensitive)
		if err != nil {
			return false, err
		}
		if ok {
			if spec.Quant == cvl.QuantAny {
				return true, nil
			}
			matched++
		} else if spec.Quant == cvl.QuantAll {
			return false, nil
		}
	}
	return spec.Quant == cvl.QuantAll && matched == len(expected), nil
}

func (m *matcher) matchOne(value, expected string, kind cvl.MatchKind, caseInsensitive bool) (bool, error) {
	if caseInsensitive && kind != cvl.MatchRegex {
		value = strings.ToLower(value)
		expected = strings.ToLower(expected)
	}
	switch kind {
	case cvl.MatchExact:
		return value == expected, nil
	case cvl.MatchSubstr:
		return strings.Contains(value, expected), nil
	case cvl.MatchRegex:
		re, err := m.compile(expected, caseInsensitive)
		if err != nil {
			return false, err
		}
		return re.MatchString(value), nil
	default:
		return false, fmt.Errorf("engine: unknown match kind %d", kind)
	}
}

func (m *matcher) compile(pattern string, caseInsensitive bool) (*regexp.Regexp, error) {
	key := pattern
	if caseInsensitive {
		key = "(?i)" + pattern
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if re, ok := m.cache[key]; ok {
		return re, nil
	}
	re, err := regexp.Compile(key)
	if err != nil {
		return nil, fmt.Errorf("engine: regex %q: %w", pattern, err)
	}
	m.cache[key] = re
	return re, nil
}

// checkValue applies a rule's preferred / non-preferred matchers to one
// candidate value. Returns pass/fail plus a short reason for the report.
func (m *matcher) checkValue(rule *cvl.Rule, value string) (bool, string, error) {
	nonPrefSpec := rule.NonPreferredMatch
	if nonPrefSpec.IsZero() {
		nonPrefSpec = defaultNonPreferredSpec
	}
	if len(rule.NonPreferredValue) > 0 {
		bad, err := m.valueMatches(value, rule.NonPreferredValue, nonPrefSpec, rule.CaseInsensitive)
		if err != nil {
			return false, "", err
		}
		if bad {
			return false, fmt.Sprintf("value %q matches a non-preferred value", value), nil
		}
	}
	if len(rule.PreferredValue) > 0 {
		prefSpec := rule.PreferredMatch
		if prefSpec.IsZero() {
			prefSpec = defaultPreferredSpec
		}
		good, err := m.valueMatches(value, rule.PreferredValue, prefSpec, rule.CaseInsensitive)
		if err != nil {
			return false, "", err
		}
		if !good {
			return false, fmt.Sprintf("value %q does not match the preferred values", value), nil
		}
		return true, fmt.Sprintf("value %q matches", value), nil
	}
	return true, fmt.Sprintf("value %q has no non-preferred match", value), nil
}
