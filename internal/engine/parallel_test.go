package engine

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// resultKeys flattens a report into comparable strings, one per result in
// order, capturing everything the output layer renders.
func resultKeys(rep *Report) []string {
	out := make([]string, len(rep.Results))
	for i, r := range rep.Results {
		name := ""
		if r.Rule != nil {
			name = r.Rule.Name
		}
		out[i] = fmt.Sprintf("%s|%s|%s|%v|%s|%s|%s",
			r.EntityName, r.ManifestEntity, name, r.Status, r.Message, r.Detail, r.File)
	}
	return out
}

// TestParallelReportMatchesSerial runs the Listing 1 stack — four manifest
// entries including a composite — serial and at several parallelism levels
// and requires identical result sequences.
func TestParallelReportMatchesSerial(t *testing.T) {
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(listing1Files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(path string) ([]byte, error) {
		src, ok := listing1Files[path]
		if !ok {
			return nil, fmt.Errorf("no file %q", path)
		}
		return []byte(src), nil
	}
	for _, ent := range []*entity.Mem{
		stackEntity(true, "0", "/etc/mysql/cacert.pem"), // all legs pass
		stackEntity(false, "1", "/tmp/nope"),            // all legs fail
	} {
		serialRep, err := NewWithOptions(nil, Options{Parallelism: 1}).Validate(ent, manifest, read)
		if err != nil {
			t.Fatal(err)
		}
		want := resultKeys(serialRep)
		for _, par := range []int{2, 8} {
			rep, err := NewWithOptions(nil, Options{Parallelism: par}).Validate(ent, manifest, read)
			if err != nil {
				t.Fatalf("parallelism %d: %v", par, err)
			}
			got := resultKeys(rep)
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("parallelism %d: results differ from serial\nserial:\n%s\nparallel:\n%s",
					par, strings.Join(want, "\n"), strings.Join(got, "\n"))
			}
		}
	}
}

// TestRunParallelPanicDeterminism pins the pool's panic contract: every
// task still runs, and the surviving panic value is the one from the
// lowest task index, independent of scheduling.
func TestRunParallelPanicDeterminism(t *testing.T) {
	var executed atomic.Int64
	pv := runParallel(4, 16, func(i int) {
		executed.Add(1)
		if i == 11 || i == 3 || i == 7 {
			panic(i)
		}
	})
	if got := executed.Load(); got != 16 {
		t.Errorf("executed %d tasks, want 16 (pool must drain past panics)", got)
	}
	if pv != 3 {
		t.Errorf("surviving panic value = %v, want 3 (lowest index)", pv)
	}
	if pv := runParallel(3, 5, func(int) {}); pv != nil {
		t.Errorf("panic value = %v for panic-free run, want nil", pv)
	}
}

// panicWalkEntity panics during entity access — the failure mode of a
// corrupted backend — to prove worker panics in the prepare phase
// propagate to the caller (where the fleet layer converts them).
type panicWalkEntity struct {
	*entity.Mem
}

func (p *panicWalkEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	panic("walk exploded")
}

func TestParallelPrepPanicPropagates(t *testing.T) {
	manifest, err := cvl.ParseManifest("manifest.yaml", []byte(listing1Files["manifest.yaml"]))
	if err != nil {
		t.Fatal(err)
	}
	read := func(path string) ([]byte, error) { return []byte(listing1Files[path]), nil }
	ent := &panicWalkEntity{Mem: stackEntity(true, "0", "/etc/mysql/cacert.pem")}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("entity-access panic was swallowed by the worker pool")
		}
		if s, ok := r.(string); !ok || s != "walk exploded" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	_, _ = NewWithOptions(nil, Options{Parallelism: 4}).Validate(ent, manifest, read)
}

// TestCachedSourceDefensiveCopy pins the aliasing fix: callers may append
// to and reorder the slice Resolve returns without corrupting what later
// callers see.
func TestCachedSourceDefensiveCopy(t *testing.T) {
	const twoRules = `
config_name: first
config_path: [""]
preferred_value: ["1"]
---
config_name: second
config_path: [""]
preferred_value: ["2"]
`
	src := NewCachedSource(func(path string) ([]byte, error) { return []byte(twoRules), nil })
	got, err := src.Resolve("rules.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("resolved %d rules, want 2", len(got))
	}
	// Mutations a filtering caller performs: reorder and append.
	got[0], got[1] = got[1], got[0]
	_ = append(got, got[0])

	again, err := src.Resolve("rules.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 2 || again[0].Name != "first" || again[1].Name != "second" {
		names := make([]string, len(again))
		for i, r := range again {
			names[i] = r.Name
		}
		t.Fatalf("second Resolve sees mutated slice %v, want [first second]", names)
	}
	// And the two calls must not share a backing array.
	if &got[0] == &again[0] {
		t.Fatal("Resolve returned the same backing array twice")
	}
}
