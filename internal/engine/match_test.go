package engine

import (
	"math/rand"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
)

func TestValueMatchesKinds(t *testing.T) {
	m := newMatcher()
	tests := []struct {
		name     string
		value    string
		expected []string
		spec     cvl.MatchSpec
		ci       bool
		want     bool
	}{
		{"exact any hit", "no", []string{"yes", "no"}, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}, false, true},
		{"exact any miss", "maybe", []string{"yes", "no"}, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}, false, false},
		{"exact all single", "no", []string{"no"}, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAll}, false, true},
		{"exact all multi impossible", "no", []string{"no", "yes"}, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAll}, false, false},
		{"substr all", "TLSv1.2 TLSv1.3", []string{"TLSv1.2", "TLSv1.3"}, cvl.MatchSpec{Kind: cvl.MatchSubstr, Quant: cvl.QuantAll}, false, true},
		{"substr all partial", "TLSv1.2", []string{"TLSv1.2", "TLSv1.3"}, cvl.MatchSpec{Kind: cvl.MatchSubstr, Quant: cvl.QuantAll}, false, false},
		{"substr any", "SSLv3 enabled", []string{"SSLv2", "SSLv3"}, cvl.MatchSpec{Kind: cvl.MatchSubstr, Quant: cvl.QuantAny}, false, true},
		{"regex any", "without-password", []string{"^(no|without-password)$"}, cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny}, false, true},
		{"case-insensitive exact", "NO", []string{"no"}, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}, true, true},
		{"case-insensitive regex", "Yes", []string{"^yes$"}, cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny}, true, true},
		{"empty expected", "x", nil, cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny}, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := m.valueMatches(tt.value, tt.expected, tt.spec, tt.ci)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("valueMatches(%q, %v, %v) = %v, want %v", tt.value, tt.expected, tt.spec, got, tt.want)
			}
		})
	}
}

func TestMatcherBadRegex(t *testing.T) {
	m := newMatcher()
	if _, err := m.valueMatches("x", []string{"(unclosed"}, cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAny}, false); err == nil {
		t.Error("bad regex accepted")
	}
}

func TestMatcherRegexCacheReuse(t *testing.T) {
	m := newMatcher()
	for i := 0; i < 3; i++ {
		ok, err := m.valueMatches("abc", []string{"^a.c$"}, cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAll}, false)
		if err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if len(m.cache) != 1 {
		t.Errorf("cache entries = %d", len(m.cache))
	}
	// Case-insensitive variant caches separately.
	if _, err := m.valueMatches("ABC", []string{"^a.c$"}, cvl.MatchSpec{Kind: cvl.MatchRegex, Quant: cvl.QuantAll}, true); err != nil {
		t.Fatal(err)
	}
	if len(m.cache) != 2 {
		t.Errorf("cache entries = %d", len(m.cache))
	}
}

// TestQuickAnyAllDuality property-tests the matcher algebra: for exact and
// substr kinds, any(value, set) == !all-fail and all(value, set) implies
// any(value, set).
func TestQuickAnyAllDuality(t *testing.T) {
	m := newMatcher()
	r := rand.New(rand.NewSource(77))
	words := []string{"a", "b", "ab", "ba", "abc", "", "aa"}
	kinds := []cvl.MatchKind{cvl.MatchExact, cvl.MatchSubstr}
	for i := 0; i < 2000; i++ {
		value := words[r.Intn(len(words))] + words[r.Intn(len(words))]
		n := 1 + r.Intn(3)
		set := make([]string, n)
		for j := range set {
			set[j] = words[r.Intn(len(words))]
		}
		kind := kinds[r.Intn(2)]
		anyMatch, err := m.valueMatches(value, set, cvl.MatchSpec{Kind: kind, Quant: cvl.QuantAny}, false)
		if err != nil {
			t.Fatal(err)
		}
		allMatch, err := m.valueMatches(value, set, cvl.MatchSpec{Kind: kind, Quant: cvl.QuantAll}, false)
		if err != nil {
			t.Fatal(err)
		}
		// all implies any.
		if allMatch && !anyMatch {
			t.Fatalf("all without any: value %q set %v kind %v", value, set, kind)
		}
		// any == exists a member that matches individually.
		exists := false
		for _, e := range set {
			var one bool
			if kind == cvl.MatchExact {
				one = value == e
			} else {
				one = strings.Contains(value, e)
			}
			if one {
				exists = true
			}
		}
		if anyMatch != exists {
			t.Fatalf("any mismatch: value %q set %v kind %v: %v vs %v", value, set, kind, anyMatch, exists)
		}
	}
}
