package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type fakeTimeoutErr struct{}

func (fakeTimeoutErr) Error() string { return "i/o timeout" }
func (fakeTimeoutErr) Timeout() bool { return true }

type fakeTemporaryErr struct{}

func (fakeTemporaryErr) Error() string   { return "connection reset" }
func (fakeTemporaryErr) Temporary() bool { return true }

func TestTransient(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marked", MarkTransient(errors.New("registry flake")), true},
		{"marked and wrapped", fmt.Errorf("scan x: %w", MarkTransient(errors.New("flake"))), true},
		{"deadline", context.DeadlineExceeded, true},
		{"wrapped deadline", fmt.Errorf("scan: %w", context.DeadlineExceeded), true},
		{"cancellation", context.Canceled, false},
		{"timeout iface", fakeTimeoutErr{}, true},
		{"temporary iface", fmt.Errorf("dial: %w", fakeTemporaryErr{}), true},
		{"panic", &PanicError{Value: "boom"}, false},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("%s: Transient(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

func TestMarkTransientNil(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}

func TestMarkTransientPreservesChain(t *testing.T) {
	base := errors.New("base")
	err := MarkTransient(fmt.Errorf("outer: %w", base))
	if !errors.Is(err, base) {
		t.Fatal("chain broken")
	}
	if err.Error() != "outer: base" {
		t.Fatalf("message = %q", err.Error())
	}
}

func TestPanicErrorMessage(t *testing.T) {
	err := &PanicError{Value: "kaboom", Stack: []byte("goroutine 1 [running]:")}
	msg := err.Error()
	if want := "scan panicked: kaboom"; len(msg) == 0 || msg[:len(want)] != want {
		t.Fatalf("message = %q", msg)
	}
}
