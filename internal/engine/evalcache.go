package engine

import (
	"crypto/sha256"
	"strconv"
	"sync"

	"configvalidator/internal/crawler"
	"configvalidator/internal/cvl"
)

// The evaluation memo extends content-addressing from parsing to verdicts:
// tree and schema rules are pure functions of (rule, normalized configs),
// so when the parse cache makes two entities' configs literally the same
// Results, the rule outcome is provably identical and the evaluation can
// be skipped. Path and script rules read entity state (file metadata,
// runtime features) that the config signature does not capture, and
// composites read other rules' per-entity outcomes; none of those are
// memoized.
//
// Only worth enabling together with a crawler.ParseCache — without one,
// every scan allocates fresh Results, no signature ever repeats, and the
// memo is pure overhead.

// DefaultEvalCacheSize bounds the verdict memo of an engine constructed
// with EvalCacheSize < 0.
const DefaultEvalCacheSize = 1 << 16

// verdict is the entity-independent part of a Result: everything except
// the EntityName/ManifestEntity attribution stamped per report.
type verdict struct {
	status  Status
	message string
	detail  string
	file    string
}

// evalMemo is a bounded concurrent two-level map of rule verdicts: config
// signature → rule → verdict. The signature level is resolved once per
// manifest entry (or per script output), so the per-rule lookup on the hot
// path hashes a pointer, not a digest. The bound is a safety valve, not a
// working-set tuner — the natural population is (#rules × #distinct config
// payloads), far below the cap — so overflow clears the map instead of
// paying LRU bookkeeping on every hit.
type evalMemo struct {
	mu    sync.Mutex
	cap   int
	count int
	m     map[string]*sigVerdicts
}

// sigVerdicts holds every memoized verdict for one config signature.
type sigVerdicts struct {
	memo *evalMemo
	mu   sync.RWMutex
	m    map[*cvl.Rule]verdict
}

func newEvalMemo(capacity int) *evalMemo {
	if capacity < 0 {
		capacity = DefaultEvalCacheSize
	}
	if capacity == 0 {
		return nil
	}
	return &evalMemo{cap: capacity, m: make(map[string]*sigVerdicts)}
}

// forSig resolves the verdict table for one config signature, creating it
// on first sight.
func (c *evalMemo) forSig(sig string) *sigVerdicts {
	c.mu.Lock()
	sv, ok := c.m[sig]
	if !ok {
		sv = &sigVerdicts{memo: c, m: make(map[*cvl.Rule]verdict)}
		c.m[sig] = sv
	}
	c.mu.Unlock()
	return sv
}

func (s *sigVerdicts) get(rule *cvl.Rule) (verdict, bool) {
	s.mu.RLock()
	v, ok := s.m[rule]
	s.mu.RUnlock()
	return v, ok
}

func (s *sigVerdicts) put(rule *cvl.Rule, v verdict) {
	c := s.memo
	c.mu.Lock()
	if c.count >= c.cap {
		// Clear the whole memo; tables still referenced by in-flight
		// runs keep filling, which at worst overshoots the cap by one
		// fleet generation.
		c.m = make(map[string]*sigVerdicts)
		c.count = 0
	}
	c.count++
	c.mu.Unlock()
	s.mu.Lock()
	s.m[rule] = v
	s.mu.Unlock()
}

// memoizable reports whether a rule's outcome is a pure function of the
// crawled configs.
func memoizable(rule *cvl.Rule) bool {
	return rule.Type == cvl.TypeTree || rule.Type == cvl.TypeSchema
}

// configSig fingerprints a config set by each file's path, parse identity
// (the Result UID — stable for cache-shared Results, never reused), and
// error text. Two entities with equal signatures present rule evaluation
// with indistinguishable input. The fingerprint is folded to a SHA-256
// digest so map lookups hash 32 bytes per rule instead of the full
// manifest payload. An empty set gets a constant marker: "this entry
// crawled nothing" is itself content, and the resulting not-applicable
// verdicts are the most common outcome in a heterogeneous fleet (most
// images don't carry most applications).
func configSig(configs []*crawler.FileConfig) string {
	if len(configs) == 0 {
		return "\x00empty"
	}
	h := sha256.New()
	var buf [24]byte
	for _, fc := range configs {
		h.Write([]byte(fc.Path))
		buf[0] = 0
		h.Write(buf[:1])
		if fc.Err != nil {
			h.Write([]byte{'E'})
			h.Write([]byte(fc.Err.Error()))
		} else if fc.Result != nil {
			h.Write(strconv.AppendUint(buf[:0], fc.Result.UID(), 36))
		}
		buf[0] = 1
		h.Write(buf[:1])
	}
	return string(h.Sum(nil))
}

// scriptSig keys a script-rule verdict by the feature output it judged:
// checkValue is a pure function of (rule, output), so entities whose
// runtime feature answered identically share one verdict.
func scriptSig(output string) string {
	sum := sha256.Sum256([]byte("script\x00" + output))
	return string(sum[:])
}
