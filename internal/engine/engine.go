package engine

import (
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"
	"sync"

	"configvalidator/internal/configtree"
	"configvalidator/internal/crawler"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
	"configvalidator/internal/lens"
	"configvalidator/internal/schema"
)

// Engine applies CVL rules to entities.
type Engine struct {
	crawler *crawler.Crawler
	match   *matcher
	faults  *faults.Injector
}

// New creates an engine. A nil crawler gets default options and the default
// lens registry.
func New(c *crawler.Crawler) *Engine {
	if c == nil {
		c = crawler.New(nil, crawler.Options{})
	}
	return &Engine{crawler: c, match: newMatcher()}
}

// SetFaults arms fault injection on rule evaluation (faults.OpEval, keyed
// "entity/rule"). A nil injector — the production default — is inert.
func (e *Engine) SetFaults(inj *faults.Injector) { e.faults = inj }

// entityRun is the per-manifest-entry working state of one validation.
type entityRun struct {
	entry   *cvl.ManifestEntry
	rules   []*cvl.Rule
	configs []*crawler.FileConfig
	results []*Result
}

// RuleSource resolves a rule-file path to its effective rules (inheritance
// applied). Implementations may cache: the engine treats returned rules as
// immutable.
type RuleSource interface {
	Resolve(path string) ([]*cvl.Rule, error)
}

// readerSource adapts a FileReader into a RuleSource without caching.
type readerSource struct {
	read cvl.FileReader
}

func (s readerSource) Resolve(path string) ([]*cvl.Rule, error) {
	return cvl.ResolveRules(s.read, path)
}

// CachedSource memoizes rule-file resolution — the production
// configuration for fleet scans, where the same rule library applies to
// every image and re-parsing it per entity would dominate scan time. Safe
// for concurrent use.
type CachedSource struct {
	read   cvl.FileReader
	mu     sync.Mutex
	byFile map[string][]*cvl.Rule
}

var _ RuleSource = (*CachedSource)(nil)

// NewCachedSource wraps a FileReader with memoization.
func NewCachedSource(read cvl.FileReader) *CachedSource {
	return &CachedSource{read: read, byFile: make(map[string][]*cvl.Rule)}
}

// Resolve implements RuleSource.
func (s *CachedSource) Resolve(path string) ([]*cvl.Rule, error) {
	s.mu.Lock()
	cached, ok := s.byFile[path]
	s.mu.Unlock()
	if ok {
		return cached, nil
	}
	rules, err := cvl.ResolveRules(s.read, path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.byFile[path] = rules
	s.mu.Unlock()
	return rules, nil
}

// Validate runs every enabled manifest entry against the entity and returns
// the report. Rule files are resolved through read (with inheritance).
// Composite rules are evaluated last, over the per-entity outcomes.
func (e *Engine) Validate(ent entity.Entity, manifest *cvl.Manifest, read cvl.FileReader) (*Report, error) {
	return e.ValidateWithSource(ent, manifest, readerSource{read: read})
}

// ValidateWithSource is Validate with a caller-controlled rule source
// (typically a CachedSource shared across a fleet scan).
func (e *Engine) ValidateWithSource(ent entity.Entity, manifest *cvl.Manifest, src RuleSource) (*Report, error) {
	report := &Report{EntityName: ent.Name(), EntityType: ent.Type().String()}
	runs := make(map[string]*entityRun)
	var order []string
	type deferredComposite struct {
		entry *cvl.ManifestEntry
		rule  *cvl.Rule
	}
	var composites []deferredComposite

	for _, entry := range manifest.EnabledEntries() {
		rules, err := src.Resolve(entry.CVLFile)
		if err != nil {
			return nil, fmt.Errorf("engine: entity %s: %w", entry.Name, err)
		}
		rules = cvl.FilterByTags(rules, entry.Tags)
		rules = cvl.FilterByEntityType(rules, ent.Type().String())
		configs, err := e.crawler.CrawlPaths(ent, entry.ConfigSearchPaths)
		if err != nil {
			return nil, fmt.Errorf("engine: entity %s: %w", entry.Name, err)
		}
		run := &entityRun{entry: entry, rules: rules, configs: configs}
		runs[entry.Name] = run
		order = append(order, entry.Name)

		// Surface unreadable or unparseable configuration as degraded
		// results: the scan continues, but these files' checks cannot be
		// trusted on this pass.
		for _, fc := range configs {
			if fc.Err != nil {
				run.results = append(run.results, &Result{
					EntityName:     ent.Name(),
					ManifestEntity: entry.Name,
					Status:         StatusDegraded,
					Message:        fc.Err.Error(),
					File:           fc.Path,
				})
			}
		}
		for _, rule := range rules {
			if rule.Type == cvl.TypeComposite {
				composites = append(composites, deferredComposite{entry: entry, rule: rule})
				continue
			}
			res := e.safeEvalRule(ent, entry, rule, configs)
			run.results = append(run.results, res)
		}
	}

	resolver := &runResolver{runs: runs}
	for _, dc := range composites {
		res := e.safeEvalComposite(ent, dc.entry, dc.rule, resolver)
		runs[dc.entry.Name].results = append(runs[dc.entry.Name].results, res)
	}

	for _, name := range order {
		report.Results = append(report.Results, runs[name].results...)
	}
	return report, nil
}

// ValidateRules applies a flat rule list to an entity using the given
// search paths — the single-entity path used by examples, tests, and the
// benchmark harness (no manifest, no composites).
func (e *Engine) ValidateRules(ent entity.Entity, rules []*cvl.Rule, searchPaths []string) (*Report, error) {
	entry := &cvl.ManifestEntry{Name: "default", Enabled: true, ConfigSearchPaths: searchPaths}
	configs, err := e.crawler.CrawlPaths(ent, searchPaths)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	report := &Report{EntityName: ent.Name(), EntityType: ent.Type().String()}
	for _, fc := range configs {
		if fc.Err != nil {
			report.Results = append(report.Results, &Result{
				EntityName:     ent.Name(),
				ManifestEntity: entry.Name,
				Status:         StatusDegraded,
				Message:        fc.Err.Error(),
				File:           fc.Path,
			})
		}
	}
	for _, rule := range cvl.FilterByEntityType(rules, ent.Type().String()) {
		if rule.Type == cvl.TypeComposite {
			report.Results = append(report.Results, e.errorResult(ent, entry, rule, errors.New("composite rules require a manifest context")))
			continue
		}
		report.Results = append(report.Results, e.safeEvalRule(ent, entry, rule, configs))
	}
	return report, nil
}

// safeEvalRule evaluates one rule with per-rule fault injection and panic
// isolation: a panicking matcher, lens structure, or injected eval fault
// degrades that single rule's result instead of aborting the entity scan.
func (e *Engine) safeEvalRule(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = e.degradedResult(ent, entry, rule, fmt.Errorf("rule evaluation panicked: %v", r))
		}
	}()
	if err := e.faults.Check(faults.OpEval, entry.Name+"/"+rule.Name); err != nil {
		return e.degradedResult(ent, entry, rule, err)
	}
	return e.evalRule(ent, entry, rule, configs)
}

// safeEvalComposite is safeEvalRule for composite rules.
func (e *Engine) safeEvalComposite(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, resolver cvl.CompositeResolver) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = e.degradedResult(ent, entry, rule, fmt.Errorf("composite evaluation panicked: %v", r))
		}
	}()
	if err := e.faults.Check(faults.OpEval, entry.Name+"/"+rule.Name); err != nil {
		return e.degradedResult(ent, entry, rule, err)
	}
	return e.evalComposite(ent, entry, rule, resolver)
}

func (e *Engine) evalRule(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	switch rule.Type {
	case cvl.TypeTree:
		return e.evalTree(ent, entry, rule, configs)
	case cvl.TypeSchema:
		return e.evalSchema(ent, entry, rule, configs)
	case cvl.TypePath:
		return e.evalPath(ent, entry, rule, configs)
	case cvl.TypeScript:
		return e.evalScript(ent, entry, rule)
	default:
		return e.errorResult(ent, entry, rule, fmt.Errorf("unsupported rule type %v", rule.Type))
	}
}

// --- tree rules ---

func (e *Engine) evalTree(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	candidates := selectTreeConfigs(configs, rule.FileContext)
	if len(candidates) == 0 {
		return e.notApplicable(ent, entry, rule, "no matching configuration files found")
	}

	// require_other_configs: every listed key must exist somewhere in the
	// candidate trees, else the rule does not apply (e.g. ssl_protocols
	// rules only bind to servers that actually configure SSL).
	for _, required := range rule.RequireOtherConfigs {
		if !anyTreeHasKey(candidates, required) {
			return e.notApplicable(ent, entry, rule,
				fmt.Sprintf("required config %q not present", required))
		}
	}

	paths := rule.ConfigPath
	if len(paths) == 0 {
		paths = []string{""}
	}
	type hit struct {
		node *configtree.Node
		file string
	}
	var hits []hit
	for _, fc := range candidates {
		for _, p := range paths {
			query := joinTreePath(p, rule.Name)
			for _, n := range fc.Result.Tree.Find(query) {
				hits = append(hits, hit{node: n, file: fc.Path})
			}
		}
	}
	if len(hits) == 0 {
		if rule.AbsentPass {
			return e.pass(ent, entry, rule, orDefault(rule.NotPresentDescription, rule.Name+" is not present"), "")
		}
		return e.fail(ent, entry, rule,
			orDefault(rule.NotPresentDescription, rule.Name+" is not present"),
			"key not found in "+candidateFiles(candidates), "")
	}

	occurrence := rule.Occurrence
	if occurrence == "" {
		occurrence = "all"
	}
	passCount := 0
	var firstFailDetail, firstFailFile string
	for i, h := range hits {
		if occurrence == "first" && i > 0 {
			break
		}
		ok, detail, err := e.checkNodeValue(rule, h.node.Value)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if ok {
			passCount++
		} else if firstFailDetail == "" {
			firstFailDetail = detail
			firstFailFile = h.file
		}
	}
	considered := len(hits)
	if occurrence == "first" {
		considered = 1
	}
	passed := false
	switch occurrence {
	case "any":
		passed = passCount > 0
	default: // "all", "first"
		passed = passCount == considered
	}
	if passed {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" is configured correctly"),
			hits[0].file)
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" has a non-preferred value"),
		firstFailDetail, firstFailFile)
}

// checkNodeValue applies the rule's matchers to one node value. When the
// rule declares a value_separator, the value is split and every element
// must pass individually (list-valued keys such as sshd's Ciphers are then
// checked element-wise rather than as one string).
func (e *Engine) checkNodeValue(rule *cvl.Rule, value string) (bool, string, error) {
	if rule.ValueSeparator == "" {
		return e.match.checkValue(rule, value)
	}
	parts := strings.Split(value, rule.ValueSeparator)
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ok, detail, err := e.match.checkValue(rule, part)
		if err != nil || !ok {
			return ok, detail, err
		}
	}
	return true, "all elements match", nil
}

func selectTreeConfigs(configs []*crawler.FileConfig, fileContext []string) []*crawler.FileConfig {
	var out []*crawler.FileConfig
	for _, fc := range configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindTree {
			continue
		}
		if matchesFileContext(fc.Path, fileContext) {
			out = append(out, fc)
		}
	}
	return out
}

// matchesFileContext reports whether the file path matches any context
// pattern: a substring of the path or a glob against the base name. An
// empty context matches everything.
func matchesFileContext(filePath string, contexts []string) bool {
	if len(contexts) == 0 {
		return true
	}
	base := path.Base(filePath)
	for _, ctx := range contexts {
		if strings.Contains(filePath, ctx) {
			return true
		}
		if ok, err := path.Match(ctx, base); err == nil && ok {
			return true
		}
	}
	return false
}

func anyTreeHasKey(configs []*crawler.FileConfig, key string) bool {
	for _, fc := range configs {
		if len(fc.Result.Tree.Find("**/"+key)) > 0 {
			return true
		}
		if _, ok := fc.Result.Tree.Child(key); ok {
			return true
		}
	}
	return false
}

func joinTreePath(configPath, name string) string {
	configPath = strings.Trim(configPath, "/")
	if configPath == "" {
		return name
	}
	return configPath + "/" + name
}

func candidateFiles(configs []*crawler.FileConfig) string {
	names := make([]string, len(configs))
	for i, fc := range configs {
		names[i] = fc.Path
	}
	return strings.Join(names, ", ")
}

// --- schema rules ---

func (e *Engine) evalSchema(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	var tables []*schema.Table
	for _, fc := range configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindSchema {
			continue
		}
		tables = append(tables, fc.Result.Table)
	}
	if len(tables) == 0 {
		return e.notApplicable(ent, entry, rule, "no schema-pattern configuration files found")
	}
	query := schema.Query{
		Columns:     rule.QueryColumns,
		Constraints: rule.QueryConstraints,
		Args:        rule.QueryConstraintsValue,
	}
	totalRows := 0
	var values []string
	var sourceFile string
	for _, t := range tables {
		out, err := t.Select(query)
		if err != nil {
			// A table without the constrained columns simply doesn't
			// apply (an fstab query against /etc/passwd).
			if strings.Contains(err.Error(), "no column") {
				continue
			}
			return e.errorResult(ent, entry, rule, err)
		}
		if sourceFile == "" && out.Len() > 0 {
			sourceFile = t.File
		}
		totalRows += out.Len()
		for _, row := range out.Rows {
			values = append(values, strings.Join(row, " "))
		}
	}
	if rule.ExpectRows != "" {
		ok, err := expectRowsSatisfied(rule.ExpectRows, totalRows)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if !ok {
			return e.fail(ent, entry, rule,
				orDefault(rule.NotMatchedDescription, rule.Name+" row-count expectation failed"),
				fmt.Sprintf("query returned %d rows, expected %s", totalRows, rule.ExpectRows), sourceFile)
		}
		if len(rule.PreferredValue) == 0 && len(rule.NonPreferredValue) == 0 {
			return e.pass(ent, entry, rule,
				orDefault(rule.MatchedDescription, rule.Name+" row-count expectation met"), sourceFile)
		}
	}
	// Value matching over result rows; an empty result contributes the
	// single empty-string candidate, which is how Listing 3 detects
	// "/tmp not on a separate partition" with non_preferred_value [""].
	if len(values) == 0 {
		values = []string{""}
	}
	for _, v := range values {
		ok, detail, err := e.match.checkValue(rule, v)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if !ok {
			return e.fail(ent, entry, rule,
				orDefault(rule.NotMatchedDescription, rule.Name+" failed"),
				detail, sourceFile)
		}
	}
	return e.pass(ent, entry, rule, orDefault(rule.MatchedDescription, rule.Name+" passed"), sourceFile)
}

func expectRowsSatisfied(spec string, rows int) (bool, error) {
	switch {
	case strings.HasPrefix(spec, ">="):
		n, err := strconv.Atoi(spec[2:])
		return rows >= n, err
	case strings.HasPrefix(spec, "<="):
		n, err := strconv.Atoi(spec[2:])
		return rows <= n, err
	default:
		n, err := strconv.Atoi(spec)
		return rows == n, err
	}
}

// --- path rules ---

func (e *Engine) evalPath(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	fi, err := ent.Stat(rule.Name)
	if err != nil {
		if !errors.Is(err, entity.ErrNotExist) {
			return e.errorResult(ent, entry, rule, err)
		}
		if rule.Exists != nil && !*rule.Exists {
			return e.pass(ent, entry, rule,
				orDefault(rule.MatchedDescription, rule.Name+" is absent as required"), rule.Name)
		}
		// When the manifest entry searched for configuration and found
		// none, the application is not present on this entity and the
		// path rule does not apply (an image without Apache shouldn't
		// fail Apache's file-permission checks).
		if len(configs) == 0 && len(entry.ConfigSearchPaths) > 0 {
			return e.notApplicable(ent, entry, rule, "target application not present on this entity")
		}
		return e.fail(ent, entry, rule,
			orDefault(rule.NotPresentDescription, rule.Name+" does not exist"),
			"path not found", rule.Name)
	}
	if rule.Exists != nil && !*rule.Exists {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" must not exist"),
			"path exists", rule.Name)
	}
	if rule.Ownership != "" && fi.Ownership() != rule.Ownership {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" has wrong ownership"),
			fmt.Sprintf("ownership %s, want %s", fi.Ownership(), rule.Ownership), rule.Name)
	}
	if rule.Permission >= 0 && fi.Perm() != rule.Permission {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" has wrong permissions"),
			fmt.Sprintf("mode %04o, want %04o", fi.Perm(), rule.Permission), rule.Name)
	}
	if rule.MaxPermission >= 0 && fi.Perm()&^rule.MaxPermission != 0 {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" permissions too open"),
			fmt.Sprintf("mode %04o exceeds maximum %04o", fi.Perm(), rule.MaxPermission), rule.Name)
	}
	return e.pass(ent, entry, rule,
		orDefault(rule.MatchedDescription, rule.Name+" metadata is correct"), rule.Name)
}

// --- script rules ---

func (e *Engine) evalScript(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule) *Result {
	output, err := ent.RunFeature(rule.ScriptFeature)
	if err != nil {
		if errors.Is(err, entity.ErrNoFeature) {
			return e.notApplicable(ent, entry, rule,
				fmt.Sprintf("runtime feature %q not available on this entity", rule.ScriptFeature))
		}
		return e.errorResult(ent, entry, rule, err)
	}
	ok, detail, err := e.match.checkValue(rule, output)
	if err != nil {
		return e.errorResult(ent, entry, rule, err)
	}
	if ok {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" runtime state is correct"), "")
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" runtime state check failed"), detail, "")
}

// --- composite rules ---

func (e *Engine) evalComposite(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, resolver cvl.CompositeResolver) *Result {
	ok, err := rule.CompositeExpr.Eval(resolver)
	if err != nil {
		return e.errorResult(ent, entry, rule, err)
	}
	if ok {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" holds across entities"), "")
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" does not hold"),
		"composite expression evaluated false", "")
}

// runResolver resolves composite references against the per-entity runs.
type runResolver struct {
	runs map[string]*entityRun
}

var _ cvl.CompositeResolver = (*runResolver)(nil)

// RuleResult implements cvl.CompositeResolver: rule names match the CVL
// rule name within the referenced manifest entity. Dotted and slashed key
// spellings are equivalent (net.ipv4.ip_forward ~ net/ipv4/ip_forward), so
// composite references can use the natural sysctl notation.
func (r *runResolver) RuleResult(entityName, ruleName string) (bool, bool) {
	run, ok := r.runs[entityName]
	if !ok {
		return false, false
	}
	want := strings.ReplaceAll(ruleName, "/", ".")
	for _, res := range run.results {
		if res.Rule != nil && strings.ReplaceAll(res.Rule.Name, "/", ".") == want {
			return res.Status == StatusPass, true
		}
	}
	return false, false
}

// ConfigValue implements cvl.CompositeResolver: it searches the entity's
// normalized trees for the key (optionally under a section), trying the
// natural spelling and the dotted-path expansion.
func (r *runResolver) ConfigValue(entityName, key, section string) (string, bool) {
	run, ok := r.runs[entityName]
	if !ok {
		return "", false
	}
	var queries []string
	slashKey := strings.ReplaceAll(key, ".", "/")
	if section != "" {
		queries = append(queries, section+"/"+key, section+"/"+slashKey, "**/"+section+"/"+key)
	} else {
		queries = append(queries, key, slashKey, "**/"+key)
	}
	for _, fc := range run.configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindTree {
			continue
		}
		for _, q := range queries {
			if v, ok := fc.Result.Tree.ValueAt(q); ok {
				return v, true
			}
		}
	}
	return "", false
}

// --- result helpers ---

func (e *Engine) pass(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, msg, file string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusPass,
		Message:        msg,
		File:           file,
	}
}

func (e *Engine) fail(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, msg, detail, file string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusFail,
		Message:        msg,
		Detail:         detail,
		File:           file,
	}
}

func (e *Engine) notApplicable(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, detail string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusNotApplicable,
		Message:        rule.Name + " not applicable",
		Detail:         detail,
	}
}

func (e *Engine) errorResult(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, err error) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusError,
		Message:        err.Error(),
	}
}

func (e *Engine) degradedResult(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, err error) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusDegraded,
		Message:        err.Error(),
	}
}

func orDefault(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}
