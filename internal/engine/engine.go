package engine

import (
	"errors"
	"fmt"
	"path"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"configvalidator/internal/configtree"
	"configvalidator/internal/crawler"
	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
	"configvalidator/internal/lens"
	"configvalidator/internal/schema"
)

// Options tune engine execution.
type Options struct {
	// Parallelism bounds the worker pool used inside one entity
	// validation: manifest entries resolve and crawl concurrently, and
	// independent non-composite rules evaluate concurrently. 0 (the
	// default) uses runtime.GOMAXPROCS(0); 1 runs the serial path with
	// no pool at all. Reports are identical at every setting — results
	// are gathered into manifest order and composite rules still
	// evaluate last, serially — only wall-clock time changes.
	//
	// Entities validated with Parallelism > 1 must tolerate concurrent
	// reads (every built-in entity backend does: they are immutable
	// snapshots or read-only filesystem views).
	Parallelism int

	// EvalCacheSize bounds the verdict memo for tree and schema rules,
	// which are pure functions of (rule, parsed configs): when a shared
	// crawler.ParseCache makes two entities' configs the same Results,
	// the verdict is reused instead of re-evaluated (see evalcache.go).
	// 0 (the default) disables memoization — the correct setting
	// whenever no parse cache is attached; < 0 enables it with
	// DefaultEvalCacheSize.
	EvalCacheSize int
}

// Engine applies CVL rules to entities.
type Engine struct {
	crawler *crawler.Crawler
	match   *matcher
	faults  *faults.Injector
	opts    Options
	memo    *evalMemo
}

// New creates an engine. A nil crawler gets default options and the default
// lens registry.
func New(c *crawler.Crawler) *Engine {
	return NewWithOptions(c, Options{})
}

// NewWithOptions creates an engine with explicit execution options.
func NewWithOptions(c *crawler.Crawler, opts Options) *Engine {
	if c == nil {
		c = crawler.New(nil, crawler.Options{})
	}
	return &Engine{crawler: c, match: newMatcher(), opts: opts, memo: newEvalMemo(opts.EvalCacheSize)}
}

// parallelism resolves Options.Parallelism to an effective worker count.
func (e *Engine) parallelism() int {
	p := e.opts.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// SetFaults arms fault injection on rule evaluation (faults.OpEval, keyed
// "entity/rule"). A nil injector — the production default — is inert.
func (e *Engine) SetFaults(inj *faults.Injector) { e.faults = inj }

// entityRun is the per-manifest-entry working state of one validation.
type entityRun struct {
	entry   *cvl.ManifestEntry
	rules   []*cvl.Rule
	configs []*crawler.FileConfig
	results []*Result
	// verdicts is the memo table for this run's config signature; nil
	// when the memo is disabled.
	verdicts *sigVerdicts
}

// RuleSource resolves a rule-file path to its effective rules (inheritance
// applied). Implementations may cache: the engine treats returned rules as
// immutable.
type RuleSource interface {
	Resolve(path string) ([]*cvl.Rule, error)
}

// readerSource adapts a FileReader into a RuleSource without caching.
type readerSource struct {
	read cvl.FileReader
}

func (s readerSource) Resolve(path string) ([]*cvl.Rule, error) {
	return cvl.ResolveRules(s.read, path)
}

// CachedSource memoizes rule-file resolution — the production
// configuration for fleet scans, where the same rule library applies to
// every image and re-parsing it per entity would dominate scan time. Safe
// for concurrent use.
type CachedSource struct {
	read   cvl.FileReader
	mu     sync.Mutex
	byFile map[string][]*cvl.Rule
}

var _ RuleSource = (*CachedSource)(nil)

// NewCachedSource wraps a FileReader with memoization.
func NewCachedSource(read cvl.FileReader) *CachedSource {
	return &CachedSource{read: read, byFile: make(map[string][]*cvl.Rule)}
}

// Resolve implements RuleSource. The returned slice is a fresh copy on
// every call: callers routinely append to or re-slice rule lists (tag and
// entity-type filtering), and handing out the cached backing array would
// let one caller's append clobber another's view of the shared library.
// The *cvl.Rule pointees stay shared and must be treated as immutable.
func (s *CachedSource) Resolve(path string) ([]*cvl.Rule, error) {
	s.mu.Lock()
	cached, ok := s.byFile[path]
	s.mu.Unlock()
	if !ok {
		rules, err := cvl.ResolveRules(s.read, path)
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		if incumbent, raced := s.byFile[path]; raced {
			// Lost a race with a concurrent resolve; keep the incumbent
			// so every caller copies from one canonical slice.
			cached = incumbent
		} else {
			s.byFile[path] = rules
			cached = rules
		}
		s.mu.Unlock()
	}
	out := make([]*cvl.Rule, len(cached))
	copy(out, cached)
	return out, nil
}

// Validate runs every enabled manifest entry against the entity and returns
// the report. Rule files are resolved through read (with inheritance).
// Composite rules are evaluated last, over the per-entity outcomes.
func (e *Engine) Validate(ent entity.Entity, manifest *cvl.Manifest, read cvl.FileReader) (*Report, error) {
	return e.ValidateWithSource(ent, manifest, readerSource{read: read})
}

// ValidateWithSource is Validate with a caller-controlled rule source
// (typically a CachedSource shared across a fleet scan).
//
// With Options.Parallelism > 1 the manifest entries are prepared (rule
// resolution + crawl) and their non-composite rules evaluated on a bounded
// worker pool; every result lands in a slot fixed by its manifest position,
// so the assembled report is identical to a serial run regardless of
// scheduling. Composite rules always run last, serially, in manifest order.
func (e *Engine) ValidateWithSource(ent entity.Entity, manifest *cvl.Manifest, src RuleSource) (*Report, error) {
	entries := manifest.EnabledEntries()
	if par := e.parallelism(); par > 1 && len(entries) > 0 {
		return e.validateParallel(ent, entries, src, par)
	}

	report := &Report{EntityName: ent.Name(), EntityType: ent.Type().String()}
	runs := make(map[string]*entityRun)
	var order []string
	type deferredComposite struct {
		entry *cvl.ManifestEntry
		rule  *cvl.Rule
	}
	var composites []deferredComposite

	for _, entry := range entries {
		run, err := e.prepareRun(ent, entry, src)
		if err != nil {
			return nil, fmt.Errorf("engine: entity %s: %w", entry.Name, err)
		}
		runs[entry.Name] = run
		order = append(order, entry.Name)

		for _, rule := range run.rules {
			if rule.Type == cvl.TypeComposite {
				composites = append(composites, deferredComposite{entry: entry, rule: rule})
				continue
			}
			res := e.safeEvalRule(ent, entry, rule, run.configs, run.verdicts)
			run.results = append(run.results, res)
		}
	}

	resolver := &runResolver{runs: runs}
	for _, dc := range composites {
		res := e.safeEvalComposite(ent, dc.entry, dc.rule, resolver)
		runs[dc.entry.Name].results = append(runs[dc.entry.Name].results, res)
	}

	for _, name := range order {
		report.Results = append(report.Results, runs[name].results...)
	}
	return report, nil
}

// prepareRun resolves, filters, and crawls one manifest entry, seeding the
// run's results with degraded findings for configuration files that could
// not be read or parsed: the scan continues, but those files' checks
// cannot be trusted on this pass.
func (e *Engine) prepareRun(ent entity.Entity, entry *cvl.ManifestEntry, src RuleSource) (*entityRun, error) {
	rules, err := src.Resolve(entry.CVLFile)
	if err != nil {
		return nil, err
	}
	rules = cvl.FilterByTags(rules, entry.Tags)
	rules = cvl.FilterByEntityType(rules, ent.Type().String())
	configs, err := e.crawler.CrawlPaths(ent, entry.ConfigSearchPaths)
	if err != nil {
		return nil, err
	}
	run := &entityRun{entry: entry, rules: rules, configs: configs}
	if e.memo != nil {
		run.verdicts = e.memo.forSig(configSig(configs))
	}
	for _, fc := range configs {
		if fc.Err != nil {
			run.results = append(run.results, &Result{
				EntityName:     ent.Name(),
				ManifestEntity: entry.Name,
				Status:         StatusDegraded,
				Message:        fc.Err.Error(),
				File:           fc.Path,
			})
		}
	}
	return run, nil
}

// validateParallel is the Parallelism > 1 execution of ValidateWithSource.
func (e *Engine) validateParallel(ent entity.Entity, entries []*cvl.ManifestEntry, src RuleSource, par int) (*Report, error) {
	report := &Report{EntityName: ent.Name(), EntityType: ent.Type().String()}
	runs := make([]*entityRun, len(entries))
	errs := make([]error, len(entries))

	// Phase 1: resolve rules and crawl configuration for every entry
	// concurrently. Each worker writes only its own slot.
	if pv := runParallel(par, len(entries), func(i int) {
		runs[i], errs[i] = e.prepareRun(ent, entries[i], src)
	}); pv != nil {
		panic(pv)
	}
	for i, err := range errs {
		// Earliest-entry error wins, matching the serial abort order.
		if err != nil {
			return nil, fmt.Errorf("engine: entity %s: %w", entries[i].Name, err)
		}
	}

	// Phase 2: evaluate independent non-composite rules concurrently.
	// Each run's result slice is pre-sized so every rule writes the slot
	// its manifest position dictates — the gather is order-free.
	type evalTask struct {
		run  *entityRun
		slot int
		rule *cvl.Rule
	}
	type compositeRef struct {
		run  *entityRun
		rule *cvl.Rule
	}
	var tasks []evalTask
	var composites []compositeRef
	for _, run := range runs {
		nonComposite := 0
		for _, rule := range run.rules {
			if rule.Type != cvl.TypeComposite {
				nonComposite++
			}
		}
		slot := len(run.results)
		run.results = append(run.results, make([]*Result, nonComposite)...)
		for _, rule := range run.rules {
			if rule.Type == cvl.TypeComposite {
				composites = append(composites, compositeRef{run: run, rule: rule})
				continue
			}
			tasks = append(tasks, evalTask{run: run, slot: slot, rule: rule})
			slot++
		}
	}
	if pv := runParallel(par, len(tasks), func(i int) {
		t := tasks[i]
		t.run.results[t.slot] = e.safeEvalRule(ent, t.run.entry, t.rule, t.run.configs, t.run.verdicts)
	}); pv != nil {
		panic(pv)
	}

	// Phase 3: composites last, serially, in manifest order — matching
	// the serial path, and letting a later composite observe an earlier
	// composite's outcome exactly as it would serially.
	byName := make(map[string]*entityRun, len(runs))
	for _, run := range runs {
		byName[run.entry.Name] = run
	}
	resolver := &runResolver{runs: byName}
	for _, c := range composites {
		c.run.results = append(c.run.results, e.safeEvalComposite(ent, c.run.entry, c.rule, resolver))
	}

	for _, run := range runs {
		report.Results = append(report.Results, run.results...)
	}
	return report, nil
}

// runParallel executes task(0..n-1) on min(par, n) workers pulling indices
// from a shared counter. A panicking task is recovered and remembered; the
// pool drains fully and the panic value of the lowest task index is
// returned for the caller to re-panic, so panic propagation is
// deterministic and never leaks a goroutine mid-flight.
func runParallel(par, n int, task func(i int)) (panicVal any) {
	if n == 0 {
		return nil
	}
	if par > n {
		par = n
	}
	var (
		next     int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicIdx = -1
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicIdx < 0 || i < panicIdx {
								panicIdx, panicVal = i, r
							}
							mu.Unlock()
						}
					}()
					task(i)
				}()
			}
		}()
	}
	wg.Wait()
	return panicVal
}

// ValidateRules applies a flat rule list to an entity using the given
// search paths — the single-entity path used by examples, tests, and the
// benchmark harness (no manifest, no composites).
func (e *Engine) ValidateRules(ent entity.Entity, rules []*cvl.Rule, searchPaths []string) (*Report, error) {
	entry := &cvl.ManifestEntry{Name: "default", Enabled: true, ConfigSearchPaths: searchPaths}
	configs, err := e.crawler.CrawlPaths(ent, searchPaths)
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	report := &Report{EntityName: ent.Name(), EntityType: ent.Type().String()}
	for _, fc := range configs {
		if fc.Err != nil {
			report.Results = append(report.Results, &Result{
				EntityName:     ent.Name(),
				ManifestEntity: entry.Name,
				Status:         StatusDegraded,
				Message:        fc.Err.Error(),
				File:           fc.Path,
			})
		}
	}
	var verdicts *sigVerdicts
	if e.memo != nil {
		verdicts = e.memo.forSig(configSig(configs))
	}
	for _, rule := range cvl.FilterByEntityType(rules, ent.Type().String()) {
		if rule.Type == cvl.TypeComposite {
			report.Results = append(report.Results, e.errorResult(ent, entry, rule, errors.New("composite rules require a manifest context")))
			continue
		}
		report.Results = append(report.Results, e.safeEvalRule(ent, entry, rule, configs, verdicts))
	}
	return report, nil
}

// safeEvalRule evaluates one rule with per-rule fault injection and panic
// isolation: a panicking matcher, lens structure, or injected eval fault
// degrades that single rule's result instead of aborting the entity scan.
//
// verdicts is the memo table for the run's config signature (nil disables
// verdict memoization for this call). Fault injection is checked before the
// memo lookup so a chaos schedule consumes injections identically on warm
// and cold caches, and a degraded or panicked outcome is never stored.
func (e *Engine) safeEvalRule(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig, verdicts *sigVerdicts) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = e.degradedResult(ent, entry, rule, fmt.Errorf("rule evaluation panicked: %v", r))
		}
	}()
	if e.faults != nil {
		if err := e.faults.Check(faults.OpEval, entry.Name+"/"+rule.Name); err != nil {
			return e.degradedResult(ent, entry, rule, err)
		}
	}
	if verdicts != nil && memoizable(rule) {
		if v, ok := verdicts.get(rule); ok {
			return &Result{
				EntityName:     ent.Name(),
				ManifestEntity: entry.Name,
				Rule:           rule,
				Status:         v.status,
				Message:        v.message,
				Detail:         v.detail,
				File:           v.file,
			}
		}
		res := e.evalRule(ent, entry, rule, configs)
		verdicts.put(rule, verdict{status: res.Status, message: res.Message, detail: res.Detail, file: res.File})
		return res
	}
	return e.evalRule(ent, entry, rule, configs)
}

// safeEvalComposite is safeEvalRule for composite rules.
func (e *Engine) safeEvalComposite(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, resolver cvl.CompositeResolver) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = e.degradedResult(ent, entry, rule, fmt.Errorf("composite evaluation panicked: %v", r))
		}
	}()
	if e.faults != nil {
		if err := e.faults.Check(faults.OpEval, entry.Name+"/"+rule.Name); err != nil {
			return e.degradedResult(ent, entry, rule, err)
		}
	}
	return e.evalComposite(ent, entry, rule, resolver)
}

func (e *Engine) evalRule(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	switch rule.Type {
	case cvl.TypeTree:
		return e.evalTree(ent, entry, rule, configs)
	case cvl.TypeSchema:
		return e.evalSchema(ent, entry, rule, configs)
	case cvl.TypePath:
		return e.evalPath(ent, entry, rule, configs)
	case cvl.TypeScript:
		return e.evalScript(ent, entry, rule)
	default:
		return e.errorResult(ent, entry, rule, fmt.Errorf("unsupported rule type %v", rule.Type))
	}
}

// --- tree rules ---

func (e *Engine) evalTree(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	candidates := selectTreeConfigs(configs, rule.FileContext)
	if len(candidates) == 0 {
		return e.notApplicable(ent, entry, rule, "no matching configuration files found")
	}

	// require_other_configs: every listed key must exist somewhere in the
	// candidate trees, else the rule does not apply (e.g. ssl_protocols
	// rules only bind to servers that actually configure SSL).
	for _, required := range rule.RequireOtherConfigs {
		if !anyTreeHasKey(candidates, required) {
			return e.notApplicable(ent, entry, rule,
				fmt.Sprintf("required config %q not present", required))
		}
	}

	paths := rule.ConfigPath
	if len(paths) == 0 {
		paths = []string{""}
	}
	queries := make([]string, len(paths))
	for i, p := range paths {
		queries[i] = joinTreePath(p, rule.Name)
	}
	type hit struct {
		node *configtree.Node
		file string
	}
	var hits []hit
	for _, fc := range candidates {
		for _, q := range queries {
			for _, n := range fc.Result.FindTree(q) {
				hits = append(hits, hit{node: n, file: fc.Path})
			}
		}
	}
	if len(hits) == 0 {
		if rule.AbsentPass {
			return e.pass(ent, entry, rule, orDefault(rule.NotPresentDescription, rule.Name+" is not present"), "")
		}
		return e.fail(ent, entry, rule,
			orDefault(rule.NotPresentDescription, rule.Name+" is not present"),
			"key not found in "+candidateFiles(candidates), "")
	}

	occurrence := rule.Occurrence
	if occurrence == "" {
		occurrence = "all"
	}
	passCount := 0
	var firstFailDetail, firstFailFile string
	for i, h := range hits {
		if occurrence == "first" && i > 0 {
			break
		}
		ok, detail, err := e.checkNodeValue(rule, h.node.Value)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if ok {
			passCount++
		} else if firstFailDetail == "" {
			firstFailDetail = detail
			firstFailFile = h.file
		}
	}
	considered := len(hits)
	if occurrence == "first" {
		considered = 1
	}
	passed := false
	switch occurrence {
	case "any":
		passed = passCount > 0
	default: // "all", "first"
		passed = passCount == considered
	}
	if passed {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" is configured correctly"),
			hits[0].file)
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" has a non-preferred value"),
		firstFailDetail, firstFailFile)
}

// checkNodeValue applies the rule's matchers to one node value. When the
// rule declares a value_separator, the value is split and every element
// must pass individually (list-valued keys such as sshd's Ciphers are then
// checked element-wise rather than as one string).
func (e *Engine) checkNodeValue(rule *cvl.Rule, value string) (bool, string, error) {
	if rule.ValueSeparator == "" {
		return e.match.checkValue(rule, value)
	}
	parts := strings.Split(value, rule.ValueSeparator)
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ok, detail, err := e.match.checkValue(rule, part)
		if err != nil || !ok {
			return ok, detail, err
		}
	}
	return true, "all elements match", nil
}

func selectTreeConfigs(configs []*crawler.FileConfig, fileContext []string) []*crawler.FileConfig {
	var out []*crawler.FileConfig
	for _, fc := range configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindTree {
			continue
		}
		if matchesFileContext(fc.Path, fileContext) {
			out = append(out, fc)
		}
	}
	return out
}

// matchesFileContext reports whether the file path matches any context
// pattern: a substring of the path or a glob against the base name. An
// empty context matches everything.
func matchesFileContext(filePath string, contexts []string) bool {
	if len(contexts) == 0 {
		return true
	}
	base := path.Base(filePath)
	for _, ctx := range contexts {
		if strings.Contains(filePath, ctx) {
			return true
		}
		if ok, err := path.Match(ctx, base); err == nil && ok {
			return true
		}
	}
	return false
}

func anyTreeHasKey(configs []*crawler.FileConfig, key string) bool {
	query := "**/" + key
	for _, fc := range configs {
		if len(fc.Result.FindTree(query)) > 0 {
			return true
		}
		if _, ok := fc.Result.Tree.Child(key); ok {
			return true
		}
	}
	return false
}

func joinTreePath(configPath, name string) string {
	configPath = strings.Trim(configPath, "/")
	if configPath == "" {
		return name
	}
	return configPath + "/" + name
}

func candidateFiles(configs []*crawler.FileConfig) string {
	names := make([]string, len(configs))
	for i, fc := range configs {
		names[i] = fc.Path
	}
	return strings.Join(names, ", ")
}

// --- schema rules ---

func (e *Engine) evalSchema(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	var tables []*schema.Table
	for _, fc := range configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindSchema {
			continue
		}
		tables = append(tables, fc.Result.Table)
	}
	if len(tables) == 0 {
		return e.notApplicable(ent, entry, rule, "no schema-pattern configuration files found")
	}
	query := schema.Query{
		Columns:     rule.QueryColumns,
		Constraints: rule.QueryConstraints,
		Args:        rule.QueryConstraintsValue,
	}
	totalRows := 0
	var values []string
	var sourceFile string
	for _, t := range tables {
		out, err := t.Select(query)
		if err != nil {
			// A table without the constrained columns simply doesn't
			// apply (an fstab query against /etc/passwd).
			if strings.Contains(err.Error(), "no column") {
				continue
			}
			return e.errorResult(ent, entry, rule, err)
		}
		if sourceFile == "" && out.Len() > 0 {
			sourceFile = t.File
		}
		totalRows += out.Len()
		for _, row := range out.Rows {
			values = append(values, strings.Join(row, " "))
		}
	}
	if rule.ExpectRows != "" {
		ok, err := expectRowsSatisfied(rule.ExpectRows, totalRows)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if !ok {
			return e.fail(ent, entry, rule,
				orDefault(rule.NotMatchedDescription, rule.Name+" row-count expectation failed"),
				fmt.Sprintf("query returned %d rows, expected %s", totalRows, rule.ExpectRows), sourceFile)
		}
		if len(rule.PreferredValue) == 0 && len(rule.NonPreferredValue) == 0 {
			return e.pass(ent, entry, rule,
				orDefault(rule.MatchedDescription, rule.Name+" row-count expectation met"), sourceFile)
		}
	}
	// Value matching over result rows; an empty result contributes the
	// single empty-string candidate, which is how Listing 3 detects
	// "/tmp not on a separate partition" with non_preferred_value [""].
	if len(values) == 0 {
		values = []string{""}
	}
	for _, v := range values {
		ok, detail, err := e.match.checkValue(rule, v)
		if err != nil {
			return e.errorResult(ent, entry, rule, err)
		}
		if !ok {
			return e.fail(ent, entry, rule,
				orDefault(rule.NotMatchedDescription, rule.Name+" failed"),
				detail, sourceFile)
		}
	}
	return e.pass(ent, entry, rule, orDefault(rule.MatchedDescription, rule.Name+" passed"), sourceFile)
}

func expectRowsSatisfied(spec string, rows int) (bool, error) {
	switch {
	case strings.HasPrefix(spec, ">="):
		n, err := strconv.Atoi(spec[2:])
		return rows >= n, err
	case strings.HasPrefix(spec, "<="):
		n, err := strconv.Atoi(spec[2:])
		return rows <= n, err
	default:
		n, err := strconv.Atoi(spec)
		return rows == n, err
	}
}

// --- path rules ---

func (e *Engine) evalPath(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, configs []*crawler.FileConfig) *Result {
	fi, err := ent.Stat(rule.Name)
	if err != nil {
		if !errors.Is(err, entity.ErrNotExist) {
			return e.errorResult(ent, entry, rule, err)
		}
		if rule.Exists != nil && !*rule.Exists {
			return e.pass(ent, entry, rule,
				orDefault(rule.MatchedDescription, rule.Name+" is absent as required"), rule.Name)
		}
		// When the manifest entry searched for configuration and found
		// none, the application is not present on this entity and the
		// path rule does not apply (an image without Apache shouldn't
		// fail Apache's file-permission checks).
		if len(configs) == 0 && len(entry.ConfigSearchPaths) > 0 {
			return e.notApplicable(ent, entry, rule, "target application not present on this entity")
		}
		return e.fail(ent, entry, rule,
			orDefault(rule.NotPresentDescription, rule.Name+" does not exist"),
			"path not found", rule.Name)
	}
	if rule.Exists != nil && !*rule.Exists {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" must not exist"),
			"path exists", rule.Name)
	}
	if rule.Ownership != "" && fi.Ownership() != rule.Ownership {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" has wrong ownership"),
			fmt.Sprintf("ownership %s, want %s", fi.Ownership(), rule.Ownership), rule.Name)
	}
	if rule.Permission >= 0 && fi.Perm() != rule.Permission {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" has wrong permissions"),
			fmt.Sprintf("mode %04o, want %04o", fi.Perm(), rule.Permission), rule.Name)
	}
	if rule.MaxPermission >= 0 && fi.Perm()&^rule.MaxPermission != 0 {
		return e.fail(ent, entry, rule,
			orDefault(rule.NotMatchedDescription, rule.Name+" permissions too open"),
			fmt.Sprintf("mode %04o exceeds maximum %04o", fi.Perm(), rule.MaxPermission), rule.Name)
	}
	return e.pass(ent, entry, rule,
		orDefault(rule.MatchedDescription, rule.Name+" metadata is correct"), rule.Name)
}

// --- script rules ---

func (e *Engine) evalScript(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule) *Result {
	output, err := ent.RunFeature(rule.ScriptFeature)
	if err != nil {
		if errors.Is(err, entity.ErrNoFeature) {
			return e.notApplicable(ent, entry, rule,
				fmt.Sprintf("runtime feature %q not available on this entity", rule.ScriptFeature))
		}
		return e.errorResult(ent, entry, rule, err)
	}
	// The verdict on a feature output is entity-independent — memoize it
	// so fleets whose entities answer a feature identically judge that
	// answer once.
	if e.memo != nil {
		sv := e.memo.forSig(scriptSig(output))
		if v, ok := sv.get(rule); ok {
			return &Result{
				EntityName:     ent.Name(),
				ManifestEntity: entry.Name,
				Rule:           rule,
				Status:         v.status,
				Message:        v.message,
				Detail:         v.detail,
				File:           v.file,
			}
		}
		res := e.evalScriptOutput(ent, entry, rule, output)
		sv.put(rule, verdict{status: res.Status, message: res.Message, detail: res.Detail, file: res.File})
		return res
	}
	return e.evalScriptOutput(ent, entry, rule, output)
}

// evalScriptOutput judges one feature output against the rule's matchers.
func (e *Engine) evalScriptOutput(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, output string) *Result {
	ok, detail, err := e.match.checkValue(rule, output)
	if err != nil {
		return e.errorResult(ent, entry, rule, err)
	}
	if ok {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" runtime state is correct"), "")
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" runtime state check failed"), detail, "")
}

// --- composite rules ---

func (e *Engine) evalComposite(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, resolver cvl.CompositeResolver) *Result {
	ok, err := rule.CompositeExpr.Eval(resolver)
	if err != nil {
		return e.errorResult(ent, entry, rule, err)
	}
	if ok {
		return e.pass(ent, entry, rule,
			orDefault(rule.MatchedDescription, rule.Name+" holds across entities"), "")
	}
	return e.fail(ent, entry, rule,
		orDefault(rule.NotMatchedDescription, rule.Name+" does not hold"),
		"composite expression evaluated false", "")
}

// runResolver resolves composite references against the per-entity runs.
type runResolver struct {
	runs map[string]*entityRun
}

var _ cvl.CompositeResolver = (*runResolver)(nil)

// RuleResult implements cvl.CompositeResolver: rule names match the CVL
// rule name within the referenced manifest entity. Dotted and slashed key
// spellings are equivalent (net.ipv4.ip_forward ~ net/ipv4/ip_forward), so
// composite references can use the natural sysctl notation.
func (r *runResolver) RuleResult(entityName, ruleName string) (bool, bool) {
	run, ok := r.runs[entityName]
	if !ok {
		return false, false
	}
	want := strings.ReplaceAll(ruleName, "/", ".")
	for _, res := range run.results {
		if res != nil && res.Rule != nil && strings.ReplaceAll(res.Rule.Name, "/", ".") == want {
			return res.Status == StatusPass, true
		}
	}
	return false, false
}

// ConfigValue implements cvl.CompositeResolver: it searches the entity's
// normalized trees for the key (optionally under a section), trying the
// natural spelling and the dotted-path expansion.
func (r *runResolver) ConfigValue(entityName, key, section string) (string, bool) {
	run, ok := r.runs[entityName]
	if !ok {
		return "", false
	}
	var queries []string
	slashKey := strings.ReplaceAll(key, ".", "/")
	if section != "" {
		queries = append(queries, section+"/"+key, section+"/"+slashKey, "**/"+section+"/"+key)
	} else {
		queries = append(queries, key, slashKey, "**/"+key)
	}
	for _, fc := range run.configs {
		if fc.Err != nil || fc.Result == nil || fc.Result.Kind != lens.KindTree {
			continue
		}
		for _, q := range queries {
			if nodes := fc.Result.FindTree(q); len(nodes) > 0 {
				return nodes[0].Value, true
			}
		}
	}
	return "", false
}

// --- result helpers ---

func (e *Engine) pass(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, msg, file string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusPass,
		Message:        msg,
		File:           file,
	}
}

func (e *Engine) fail(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, msg, detail, file string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusFail,
		Message:        msg,
		Detail:         detail,
		File:           file,
	}
}

func (e *Engine) notApplicable(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, detail string) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusNotApplicable,
		Message:        rule.Name + " not applicable",
		Detail:         detail,
	}
}

func (e *Engine) errorResult(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, err error) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusError,
		Message:        err.Error(),
	}
}

func (e *Engine) degradedResult(ent entity.Entity, entry *cvl.ManifestEntry, rule *cvl.Rule, err error) *Result {
	return &Result{
		EntityName:     ent.Name(),
		ManifestEntity: entry.Name,
		Rule:           rule,
		Status:         StatusDegraded,
		Message:        err.Error(),
	}
}

func orDefault(s, fallback string) string {
	if s != "" {
		return s
	}
	return fallback
}
