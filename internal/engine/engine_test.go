package engine

import (
	"fmt"
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/entity"
)

// mustRules parses a CVL rule-file source.
func mustRules(t *testing.T, src string) []*cvl.Rule {
	t.Helper()
	rf, err := cvl.ParseRuleFile("test.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return rf.Rules
}

func runRules(t *testing.T, ent entity.Entity, src string, paths ...string) *Report {
	t.Helper()
	report, err := New(nil).ValidateRules(ent, mustRules(t, src), paths)
	if err != nil {
		t.Fatal(err)
	}
	return report
}

// one extracts the single rule result from a report (ignoring config-error
// results).
func one(t *testing.T, rep *Report) *Result {
	t.Helper()
	var out *Result
	for _, r := range rep.Results {
		if r.Rule != nil {
			if out != nil {
				t.Fatalf("multiple rule results: %+v", rep.Results)
			}
			out = r
		}
	}
	if out == nil {
		t.Fatalf("no rule results in %+v", rep.Results)
	}
	return out
}

func nginxEntity(sslProtocols string) *entity.Mem {
	m := entity.NewMem("web", entity.TypeHost)
	conf := fmt.Sprintf(`user www-data;
http {
    server {
        listen 443 ssl;
        ssl_certificate /etc/ssl/cert.pem;
        ssl_certificate_key /etc/ssl/key.pem;
        ssl_protocols %s;
    }
}
`, sslProtocols)
	m.AddFile("/etc/nginx/nginx.conf", []byte(conf))
	return m
}

const listing2Rule = `
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1 ", "TLSv1;" ]
non_preferred_value_match: substr,any
preferred_value_match: substr,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non-recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen, ssl_certificate, ssl_certificate_key ]
file_context: ["nginx.conf", "sites-enabled"]
`

func TestTreeRuleListing2Pass(t *testing.T) {
	rep := runRules(t, nginxEntity("TLSv1.2 TLSv1.3"), listing2Rule, "/etc/nginx")
	res := one(t, rep)
	if res.Status != StatusPass {
		t.Fatalf("status = %v: %s (%s)", res.Status, res.Message, res.Detail)
	}
	if res.Message != "ssl_protocols key is set to TLS v1.2/1.3" {
		t.Errorf("message = %q", res.Message)
	}
	if res.File != "/etc/nginx/nginx.conf" {
		t.Errorf("file = %q", res.File)
	}
}

func TestTreeRuleListing2FailNonPreferred(t *testing.T) {
	rep := runRules(t, nginxEntity("SSLv3 TLSv1.2 TLSv1.3"), listing2Rule, "/etc/nginx")
	res := one(t, rep)
	if res.Status != StatusFail {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Message != "Non-recommended TLS ver." {
		t.Errorf("message = %q", res.Message)
	}
	if !strings.Contains(res.Detail, "non-preferred") {
		t.Errorf("detail = %q", res.Detail)
	}
}

func TestTreeRuleListing2FailMissingPreferred(t *testing.T) {
	rep := runRules(t, nginxEntity("TLSv1.2"), listing2Rule, "/etc/nginx")
	if res := one(t, rep); res.Status != StatusFail {
		t.Fatalf("substr,all should require both protocols: %v", res.Status)
	}
}

func TestTreeRuleNotPresent(t *testing.T) {
	m := entity.NewMem("web", entity.TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte("http {\n  server {\n    listen 443 ssl;\n    ssl_certificate a;\n    ssl_certificate_key b;\n  }\n}\n"))
	rep := runRules(t, m, listing2Rule, "/etc/nginx")
	res := one(t, rep)
	if res.Status != StatusFail || res.Message != "ssl_protocols is not present." {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
}

func TestTreeRuleRequireOtherConfigsNA(t *testing.T) {
	// Server without SSL configured: the ssl_protocols rule must not fire.
	m := entity.NewMem("web", entity.TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte("http {\n  server {\n    listen 80;\n  }\n}\n"))
	rep := runRules(t, m, listing2Rule, "/etc/nginx")
	res := one(t, rep)
	if res.Status != StatusNotApplicable {
		t.Fatalf("status = %v, want N/A", res.Status)
	}
	if !strings.Contains(res.Detail, "ssl_certificate") {
		t.Errorf("detail = %q", res.Detail)
	}
}

func TestTreeRuleNoConfigsNA(t *testing.T) {
	m := entity.NewMem("empty", entity.TypeHost)
	rep := runRules(t, m, listing2Rule, "/etc/nginx")
	if res := one(t, rep); res.Status != StatusNotApplicable {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestTreeRuleFileContextFilters(t *testing.T) {
	m := entity.NewMem("web", entity.TypeHost)
	// Same key in a file the context excludes.
	m.AddFile("/etc/sysctl.conf", []byte("ssl_protocols = bad\n"))
	rule := `
config_name: ssl_protocols
config_path: [""]
file_context: ["nginx.conf"]
preferred_value: ["TLSv1.2"]
`
	rep := runRules(t, m, rule, "/etc")
	if res := one(t, rep); res.Status != StatusNotApplicable {
		t.Fatalf("file_context should exclude sysctl.conf: %v", res.Status)
	}
}

func TestTreeRuleAbsentPass(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("Port 22\n"))
	rule := `
config_name: DebugLevel
config_path: [""]
absent_pass: true
non_preferred_value: ["3"]
not_present_description: "DebugLevel not set (good)"
`
	rep := runRules(t, m, rule, "/etc/ssh")
	res := one(t, rep)
	if res.Status != StatusPass || res.Message != "DebugLevel not set (good)" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
}

func TestTreeRuleOccurrence(t *testing.T) {
	conf := `http {
    server {
        listen 443 ssl;
        ssl_protocols TLSv1.2;
    }
    server {
        listen 8443 ssl;
        ssl_protocols SSLv3;
    }
}
`
	m := entity.NewMem("web", entity.TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte(conf))
	base := `
config_name: ssl_protocols
config_path: ["http/server"]
preferred_value: ["TLSv1.2"]
preferred_value_match: substr,any
occurrence: %s
`
	// all (default): one bad server block fails the rule.
	rep := runRules(t, m, fmt.Sprintf(base, "all"), "/etc/nginx")
	if res := one(t, rep); res.Status != StatusFail {
		t.Errorf("occurrence all = %v", res.Status)
	}
	// any: one good server block passes.
	rep = runRules(t, m, fmt.Sprintf(base, "any"), "/etc/nginx")
	if res := one(t, rep); res.Status != StatusPass {
		t.Errorf("occurrence any = %v", res.Status)
	}
	// first: only the first hit is considered (it is good).
	rep = runRules(t, m, fmt.Sprintf(base, "first"), "/etc/nginx")
	if res := one(t, rep); res.Status != StatusPass {
		t.Errorf("occurrence first = %v", res.Status)
	}
}

func TestTreeRuleCaseInsensitive(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin NO\n"))
	rule := `
config_name: PermitRootLogin
config_path: [""]
preferred_value: ["no"]
case_insensitive: true
`
	rep := runRules(t, m, rule, "/etc/ssh")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("case-insensitive match failed: %v", res.Status)
	}
}

func TestTreeRuleRegexMatch(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin without-password\n"))
	rule := `
config_name: PermitRootLogin
config_path: [""]
preferred_value: ["^(no|without-password)$"]
preferred_value_match: regex,any
`
	rep := runRules(t, m, rule, "/etc/ssh")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("regex match failed: %v %s", res.Status, res.Detail)
	}
	bad := `
config_name: PermitRootLogin
config_path: [""]
preferred_value: ["(unclosed"]
preferred_value_match: regex,any
`
	rep = runRules(t, m, bad, "/etc/ssh")
	if res := one(t, rep); res.Status != StatusError {
		t.Fatalf("bad regex should be an error result: %v", res.Status)
	}
}

func TestTreeRulePresenceOnly(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("Banner /etc/issue.net\n"))
	rule := "config_name: Banner\nconfig_path: [\"\"]\n"
	rep := runRules(t, m, rule, "/etc/ssh")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("presence check = %v", res.Status)
	}
}

func TestTreeRuleValueSeparator(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("Ciphers aes256-ctr,aes128-ctr\n"))
	rule := `
config_name: Ciphers
config_path: [""]
value_separator: ","
preferred_value: ["^aes(128|192|256)-ctr$"]
preferred_value_match: regex,any
`
	rep := runRules(t, m, rule, "/etc/ssh")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("element-wise pass: %v (%s)", res.Status, res.Detail)
	}
	// One weak element in the list fails the whole rule.
	m.AddFile("/etc/ssh/sshd_config", []byte("Ciphers aes256-ctr,3des-cbc\n"))
	rep = runRules(t, m, rule, "/etc/ssh")
	res := one(t, rep)
	if res.Status != StatusFail || !strings.Contains(res.Detail, "3des-cbc") {
		t.Fatalf("element-wise fail: %v (%s)", res.Status, res.Detail)
	}
}

// --- schema rules ---

const listing3Rule = `
config_schema_name: check_tmp_separate_partition
config_schema_description: "Check if /tmp is on a separate partition"
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact,all
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
tags: ["#cis", "#cisubuntu14.04_2.1"]
`

func TestSchemaRuleListing3(t *testing.T) {
	withTmp := entity.NewMem("h", entity.TypeHost)
	withTmp.AddFile("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n/dev/sda2 /tmp ext4 nodev 0 2\n"))
	rep := runRules(t, withTmp, listing3Rule, "/etc/fstab")
	res := one(t, rep)
	if res.Status != StatusPass || res.Message != "/tmp is on a separate partition" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}

	withoutTmp := entity.NewMem("h", entity.TypeHost)
	withoutTmp.AddFile("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"))
	rep = runRules(t, withoutTmp, listing3Rule, "/etc/fstab")
	res = one(t, rep)
	if res.Status != StatusFail || res.Message != "/tmp not on sep. partition" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
}

func TestSchemaRuleExpectRows(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/audit/audit.rules", []byte("-w /etc/passwd -p wa -k identity\n-w /etc/group -p wa -k identity\n"))
	rule := `
config_schema_name: identity_watches
query_constraints: "key = ?"
query_constraints_value: ["identity"]
expect_rows: ">=2"
matched_description: "identity files are watched"
`
	rep := runRules(t, m, rule, "/etc/audit")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("expect_rows >=2 = %v (%s)", res.Status, res.Detail)
	}
	strict := strings.Replace(rule, ">=2", "3", 1)
	rep = runRules(t, m, strict, "/etc/audit")
	res := one(t, rep)
	if res.Status != StatusFail || !strings.Contains(res.Detail, "2 rows") {
		t.Fatalf("exact expect_rows = %v (%s)", res.Status, res.Detail)
	}
}

func TestSchemaRuleValueMatchOnRows(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/passwd", []byte("root:x:0:0:root:/root:/bin/bash\nbad:x:0:1:dup root uid:/home/bad:/bin/bash\n"))
	// CIS: only root may have UID 0.
	rule := `
config_schema_name: only_root_uid0
query_constraints: "uid = ?"
query_constraints_value: ["0"]
query_columns: ["name"]
preferred_value: ["root"]
not_matched_preferred_value_description: "non-root account with UID 0"
`
	rep := runRules(t, m, rule, "/etc/passwd")
	res := one(t, rep)
	if res.Status != StatusFail || res.Message != "non-root account with UID 0" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
}

func TestSchemaRuleNoTablesNA(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	rep := runRules(t, m, listing3Rule, "/etc/fstab")
	if res := one(t, rep); res.Status != StatusNotApplicable {
		t.Fatalf("status = %v", res.Status)
	}
}

func TestSchemaRuleSkipsForeignTables(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/fstab", []byte("/dev/sda2 /tmp ext4 nodev 0 2\n"))
	m.AddFile("/etc/passwd", []byte("root:x:0:0:root:/root:/bin/bash\n"))
	rep := runRules(t, m, listing3Rule, "/etc")
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("foreign table broke query: %v (%s)", res.Status, res.Message)
	}
}

// --- path rules ---

func TestPathRuleListing4(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\n"), entity.WithMode(0o644), entity.WithOwner(0, 0))
	rule := `
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: [ "#owasp" ]
`
	rep := runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("res = %v (%s)", res.Status, res.Detail)
	}

	m2 := entity.NewMem("h", entity.TypeHost)
	m2.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\n"), entity.WithMode(0o666), entity.WithOwner(0, 0))
	rep = runRules(t, m2, rule)
	res := one(t, rep)
	if res.Status != StatusFail || !strings.Contains(res.Detail, "0666") {
		t.Fatalf("res = %v (%s)", res.Status, res.Detail)
	}

	m3 := entity.NewMem("h", entity.TypeHost)
	m3.AddFile("/etc/mysql/my.cnf", []byte("x"), entity.WithMode(0o644), entity.WithOwner(106, 110))
	rep = runRules(t, m3, rule)
	res = one(t, rep)
	if res.Status != StatusFail || !strings.Contains(res.Detail, "106:110") {
		t.Fatalf("ownership fail = %v (%s)", res.Status, res.Detail)
	}
}

func TestPathRuleMissing(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	rule := "path_name: /etc/shadow\nownership: \"0:42\"\nnot_present_description: \"shadow file missing!\"\n"
	rep := runRules(t, m, rule)
	res := one(t, rep)
	if res.Status != StatusFail || res.Message != "shadow file missing!" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
}

func TestPathRuleExists(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/hosts.equiv", []byte(""))
	rule := "path_name: /etc/hosts.equiv\nexists: false\nnot_matched_preferred_value_description: \"hosts.equiv must be removed\"\n"
	rep := runRules(t, m, rule)
	res := one(t, rep)
	if res.Status != StatusFail || res.Message != "hosts.equiv must be removed" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}
	m.RemoveFile("/etc/hosts.equiv")
	rep = runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("absent forbidden path = %v", res.Status)
	}
}

func TestPathRuleMaxPermission(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/crontab", []byte(""), entity.WithMode(0o600))
	rule := "path_name: /etc/crontab\nmax_permission: 600\n"
	rep := runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("0600 within max 0600 = %v", res.Status)
	}
	m.AddFile("/etc/crontab", []byte(""), entity.WithMode(0o644))
	rep = runRules(t, m, rule)
	res := one(t, rep)
	if res.Status != StatusFail || !strings.Contains(res.Detail, "exceeds maximum") {
		t.Fatalf("0644 vs max 0600 = %v (%s)", res.Status, res.Detail)
	}
}

func TestPathRuleDirectory(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddDir("/etc/cron.d", entity.WithMode(0o700), entity.WithOwner(0, 0))
	rule := "path_name: /etc/cron.d\nownership: \"0:0\"\npermission: 700\n"
	rep := runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusPass {
		t.Fatalf("directory rule = %v (%s)", res.Status, res.Detail)
	}
}

// --- script rules ---

func TestScriptRule(t *testing.T) {
	m := entity.NewMem("db", entity.TypeContainer)
	m.SetFeature("mysql.ssl", "have_ssl YES\nhave_openssl YES\n")
	rule := `
script_name: mysql_ssl_enabled
script_feature: mysql.ssl
preferred_value: ["have_ssl YES"]
preferred_value_match: substr,all
matched_description: "MySQL has SSL enabled"
not_matched_preferred_value_description: "MySQL SSL is disabled"
`
	rep := runRules(t, m, rule)
	res := one(t, rep)
	if res.Status != StatusPass || res.Message != "MySQL has SSL enabled" {
		t.Fatalf("res = %v %q", res.Status, res.Message)
	}

	m.SetFeature("mysql.ssl", "have_ssl DISABLED\n")
	rep = runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusFail {
		t.Fatalf("res = %v", res.Status)
	}
}

func TestScriptRuleFeatureUnavailable(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	rule := "script_name: x\nscript_feature: absent.plugin\npreferred_value: [y]\n"
	rep := runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusNotApplicable {
		t.Fatalf("res = %v", res.Status)
	}
}

// --- error handling & misc ---

func TestBrokenConfigYieldsErrorResult(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/nginx/nginx.conf", []byte("server {\n")) // unclosed block
	rep := runRules(t, m, "config_name: user\nconfig_path: [\"\"]\n", "/etc/nginx")
	var errRes, ruleRes *Result
	for _, r := range rep.Results {
		if r.Rule == nil {
			errRes = r
		} else {
			ruleRes = r
		}
	}
	if errRes == nil || errRes.Status != StatusDegraded || errRes.File != "/etc/nginx/nginx.conf" {
		t.Fatalf("parse error result = %+v", errRes)
	}
	if ruleRes == nil || ruleRes.Status != StatusNotApplicable {
		t.Fatalf("rule result = %+v", ruleRes)
	}
}

func TestEntityTypeFilter(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("Port 22\n"))
	rule := "config_name: Port\nconfig_path: [\"\"]\napplies_to: [\"image\"]\n"
	rep := runRules(t, m, rule, "/etc/ssh")
	if len(rep.Results) != 0 {
		t.Fatalf("image-only rule ran on host: %+v", rep.Results)
	}
}

func TestCompositeInValidateRulesErrors(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	rule := "composite_rule_name: x\ncomposite_rule: a.b && c.d\n"
	rep := runRules(t, m, rule)
	if res := one(t, rep); res.Status != StatusError {
		t.Fatalf("composite without manifest = %v", res.Status)
	}
}

func TestReportHelpers(t *testing.T) {
	rep := &Report{Results: []*Result{
		{Status: StatusPass, Rule: &cvl.Rule{Name: "a", Tags: []string{"#cis"}}},
		{Status: StatusFail, Rule: &cvl.Rule{Name: "b", Tags: []string{"#owasp"}}},
		{Status: StatusFail, Rule: &cvl.Rule{Name: "c", Tags: []string{"#cis"}}},
		{Status: StatusError},
	}}
	counts := rep.Counts()
	if counts[StatusPass] != 1 || counts[StatusFail] != 2 || counts[StatusError] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if got := rep.Failed(); len(got) != 2 {
		t.Errorf("failed = %d", len(got))
	}
	if got := rep.ByTag("#cis"); len(got) != 2 {
		t.Errorf("by tag = %d", len(got))
	}
	if !(&Result{Status: StatusPass}).Passed() || (&Result{Status: StatusFail}).Passed() {
		t.Error("Passed() broken")
	}
}

func TestStatusString(t *testing.T) {
	if StatusPass.String() != "PASS" || StatusFail.String() != "FAIL" ||
		StatusNotApplicable.String() != "N/A" || StatusError.String() != "ERROR" {
		t.Error("status names wrong")
	}
	if !strings.Contains(Status(42).String(), "42") {
		t.Error("unknown status should include number")
	}
}
