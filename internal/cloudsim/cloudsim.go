// Package cloudsim simulates the cloud entity class of the paper: an
// OpenStack-like control plane whose configuration lives in runtime state
// "typically accessible over APIs or HTTP(S) endpoints" (§2.1.3) rather
// than in files. The simulator serves security groups, instances, users,
// and identity-service configuration over a JSON HTTP API; the Client
// crawls those endpoints into virtual JSON documents that the standard JSON
// lens normalizes, so cloud validation exercises exactly the same rule
// engine path as file-based targets.
package cloudsim

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// SecurityGroupRule is one ingress/egress rule.
type SecurityGroupRule struct {
	// Direction is "ingress" or "egress".
	Direction string `json:"direction"`
	// Protocol is "tcp", "udp", "icmp", or "any".
	Protocol string `json:"protocol"`
	// PortMin and PortMax bound the destination port range.
	PortMin int `json:"port_range_min"`
	PortMax int `json:"port_range_max"`
	// RemoteIPPrefix is the allowed CIDR, e.g. "0.0.0.0/0".
	RemoteIPPrefix string `json:"remote_ip_prefix"`
}

// SecurityGroup is a named rule set attached to instances.
type SecurityGroup struct {
	ID      string              `json:"id"`
	Name    string              `json:"name"`
	Project string              `json:"project"`
	Rules   []SecurityGroupRule `json:"rules"`
}

// Instance is a compute instance.
type Instance struct {
	ID             string   `json:"id"`
	Name           string   `json:"name"`
	Project        string   `json:"project"`
	Status         string   `json:"status"`
	SecurityGroups []string `json:"security_groups"`
}

// User is an identity-service user account.
type User struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Enabled bool   `json:"enabled"`
	// MFAEnabled mirrors multi-factor enforcement per OSSG guidance.
	MFAEnabled bool `json:"mfa_enabled"`
}

// IdentityConfig is the keystone-style identity configuration OSSG rules
// inspect.
type IdentityConfig struct {
	// TLSEnabled reports whether API endpoints require TLS.
	TLSEnabled bool `json:"tls_enabled"`
	// TokenExpirationSeconds is the auth token lifetime.
	TokenExpirationSeconds int `json:"token_expiration_seconds"`
	// AdminToken reports whether the insecure bootstrap admin_token is
	// still enabled (OSSG says it must be disabled).
	AdminTokenEnabled bool `json:"admin_token_enabled"`
	// PasswordMinLength is the password policy minimum length.
	PasswordMinLength int `json:"password_min_length"`
}

// Cloud holds the simulated control-plane state. All methods are safe for
// concurrent use.
type Cloud struct {
	mu             sync.RWMutex
	name           string
	securityGroups map[string]*SecurityGroup
	instances      map[string]*Instance
	users          map[string]*User
	identity       IdentityConfig
}

// New creates an empty cloud with secure identity defaults.
func New(name string) *Cloud {
	return &Cloud{
		name:           name,
		securityGroups: make(map[string]*SecurityGroup),
		instances:      make(map[string]*Instance),
		users:          make(map[string]*User),
		identity: IdentityConfig{
			TLSEnabled:             true,
			TokenExpirationSeconds: 3600,
			PasswordMinLength:      12,
		},
	}
}

// Name returns the cloud's name.
func (c *Cloud) Name() string { return c.name }

// AddSecurityGroup stores a security group (replacing by ID).
func (c *Cloud) AddSecurityGroup(sg SecurityGroup) {
	c.mu.Lock()
	defer c.mu.Unlock()
	copied := sg
	copied.Rules = append([]SecurityGroupRule(nil), sg.Rules...)
	c.securityGroups[sg.ID] = &copied
}

// AddInstance stores an instance (replacing by ID).
func (c *Cloud) AddInstance(inst Instance) {
	c.mu.Lock()
	defer c.mu.Unlock()
	copied := inst
	copied.SecurityGroups = append([]string(nil), inst.SecurityGroups...)
	c.instances[inst.ID] = &copied
}

// AddUser stores a user (replacing by ID).
func (c *Cloud) AddUser(u User) {
	c.mu.Lock()
	defer c.mu.Unlock()
	copied := u
	c.users[u.ID] = &copied
}

// SetIdentityConfig replaces the identity configuration.
func (c *Cloud) SetIdentityConfig(cfg IdentityConfig) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.identity = cfg
}

// SecurityGroups returns all groups sorted by ID.
func (c *Cloud) SecurityGroups() []SecurityGroup {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]SecurityGroup, 0, len(c.securityGroups))
	for _, sg := range c.securityGroups {
		out = append(out, *sg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Instances returns all instances sorted by ID.
func (c *Cloud) Instances() []Instance {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]Instance, 0, len(c.instances))
	for _, in := range c.instances {
		out = append(out, *in)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Users returns all users sorted by ID.
func (c *Cloud) Users() []User {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]User, 0, len(c.users))
	for _, u := range c.users {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IdentityConfig returns the current identity configuration.
func (c *Cloud) IdentityConfig() IdentityConfig {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.identity
}

// Handler returns the HTTP API for the cloud:
//
//	GET /v2/security-groups
//	GET /v2/instances
//	GET /v2/users
//	GET /v2/identity-config
//
// Responses are JSON objects with a single top-level key matching the
// resource name, in the OpenStack style.
func (c *Cloud) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/security-groups", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"security_groups": c.SecurityGroups()})
	})
	mux.HandleFunc("GET /v2/instances", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"instances": c.Instances()})
	})
	mux.HandleFunc("GET /v2/users", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"users": c.Users()})
	})
	mux.HandleFunc("GET /v2/identity-config", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]any{"identity": c.IdentityConfig()})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, fmt.Sprintf("encode: %v", err), http.StatusInternalServerError)
	}
}
