package cloudsim

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"configvalidator/internal/entity"
)

// Client crawls a cloud API into an entity. Each endpoint's JSON response
// is stored as a virtual document under /openstack/, which the registry's
// JSON lens then normalizes into config trees — validating cloud runtime
// state through the same pipeline as file-based configuration.
type Client struct {
	baseURL string
	http    *http.Client
}

// endpoints maps virtual document paths to API paths.
var endpoints = map[string]string{
	"/openstack/security_groups.json": "/v2/security-groups",
	"/openstack/instances.json":       "/v2/instances",
	"/openstack/users.json":           "/v2/users",
	"/openstack/identity.json":        "/v2/identity-config",
}

// NewClient creates a crawler client for the API at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		baseURL: baseURL,
		http:    &http.Client{Timeout: 10 * time.Second},
	}
}

// Crawl fetches every endpoint and materializes the cloud as an entity
// named name.
func (c *Client) Crawl(name string) (*entity.Mem, error) {
	m := entity.NewMem(name, entity.TypeCloud)
	for vpath, api := range endpoints {
		data, err := c.get(api)
		if err != nil {
			return nil, fmt.Errorf("crawl %s: %w", api, err)
		}
		m.AddFile(vpath, data)
	}
	return m, nil
}

func (c *Client) get(path string) ([]byte, error) {
	resp, err := c.http.Get(c.baseURL + path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("read body: %w", err)
	}
	return body, nil
}
