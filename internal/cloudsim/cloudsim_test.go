package cloudsim

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"configvalidator/internal/entity"
	"configvalidator/internal/lens"
)

func demoCloud() *Cloud {
	c := New("prod-cloud")
	c.AddSecurityGroup(SecurityGroup{
		ID:      "sg-1",
		Name:    "web",
		Project: "acme",
		Rules: []SecurityGroupRule{
			{Direction: "ingress", Protocol: "tcp", PortMin: 443, PortMax: 443, RemoteIPPrefix: "0.0.0.0/0"},
		},
	})
	c.AddSecurityGroup(SecurityGroup{
		ID:      "sg-2",
		Name:    "admin",
		Project: "acme",
		Rules: []SecurityGroupRule{
			{Direction: "ingress", Protocol: "tcp", PortMin: 22, PortMax: 22, RemoteIPPrefix: "0.0.0.0/0"},
		},
	})
	c.AddInstance(Instance{ID: "i-1", Name: "web-1", Project: "acme", Status: "ACTIVE", SecurityGroups: []string{"sg-1"}})
	c.AddUser(User{ID: "u-1", Name: "admin", Enabled: true, MFAEnabled: false})
	return c
}

func TestCloudStateAccessors(t *testing.T) {
	c := demoCloud()
	if c.Name() != "prod-cloud" {
		t.Errorf("name = %q", c.Name())
	}
	sgs := c.SecurityGroups()
	if len(sgs) != 2 || sgs[0].ID != "sg-1" || sgs[1].ID != "sg-2" {
		t.Errorf("security groups = %+v", sgs)
	}
	if got := c.Instances(); len(got) != 1 || got[0].Name != "web-1" {
		t.Errorf("instances = %+v", got)
	}
	if got := c.Users(); len(got) != 1 || got[0].MFAEnabled {
		t.Errorf("users = %+v", got)
	}
	// Defaults are secure.
	id := c.IdentityConfig()
	if !id.TLSEnabled || id.AdminTokenEnabled {
		t.Errorf("identity defaults = %+v", id)
	}
	// Replace by ID.
	c.AddUser(User{ID: "u-1", Name: "admin", Enabled: false})
	if got := c.Users(); len(got) != 1 || got[0].Enabled {
		t.Errorf("user replacement failed: %+v", got)
	}
}

func TestMutationIsolation(t *testing.T) {
	c := New("x")
	rules := []SecurityGroupRule{{Direction: "ingress"}}
	c.AddSecurityGroup(SecurityGroup{ID: "sg", Rules: rules})
	rules[0].Direction = "egress"
	if got := c.SecurityGroups()[0].Rules[0].Direction; got != "ingress" {
		t.Errorf("caller mutation leaked: %q", got)
	}
}

func TestHTTPAPI(t *testing.T) {
	srv := httptest.NewServer(demoCloud().Handler())
	defer srv.Close()

	var payload struct {
		SecurityGroups []SecurityGroup `json:"security_groups"`
	}
	resp, err := http.Get(srv.URL + "/v2/security-groups")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.SecurityGroups) != 2 {
		t.Errorf("groups over API = %d", len(payload.SecurityGroups))
	}
	if payload.SecurityGroups[1].Rules[0].PortMin != 22 {
		t.Errorf("rule = %+v", payload.SecurityGroups[1].Rules[0])
	}

	for _, path := range []string{"/v2/instances", "/v2/users", "/v2/identity-config"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		_ = r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status = %s", path, r.Status)
		}
	}
	r, err := http.Get(srv.URL + "/v2/nope")
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown endpoint status = %s", r.Status)
	}
}

func TestClientCrawl(t *testing.T) {
	srv := httptest.NewServer(demoCloud().Handler())
	defer srv.Close()

	m, err := NewClient(srv.URL).Crawl("prod-cloud")
	if err != nil {
		t.Fatal(err)
	}
	if m.Type() != entity.TypeCloud {
		t.Errorf("type = %v", m.Type())
	}
	// Every virtual doc exists and is valid JSON normalizable by the lens.
	reg := lens.Default()
	for _, vpath := range []string{
		"/openstack/security_groups.json",
		"/openstack/instances.json",
		"/openstack/users.json",
		"/openstack/identity.json",
	} {
		data, err := m.ReadFile(vpath)
		if err != nil {
			t.Fatalf("%s: %v", vpath, err)
		}
		res, err := reg.Parse(vpath, data)
		if err != nil {
			t.Fatalf("normalize %s: %v", vpath, err)
		}
		if res.Kind != lens.KindTree {
			t.Errorf("%s kind = %v", vpath, res.Kind)
		}
	}

	// The normalized tree supports the queries OSSG rules need: find
	// world-open SSH ingress.
	data, _ := m.ReadFile("/openstack/security_groups.json")
	res, err := reg.Parse("/openstack/security_groups.json", data)
	if err != nil {
		t.Fatal(err)
	}
	open := 0
	for _, rule := range res.Tree.Find("security_groups/rules") {
		prefix, _ := rule.ValueAt("remote_ip_prefix")
		portMin, _ := rule.ValueAt("port_range_min")
		if prefix == "0.0.0.0/0" && portMin == "22" {
			open++
		}
	}
	if open != 1 {
		t.Errorf("world-open ssh rules found = %d, want 1", open)
	}
}

func TestClientCrawlErrors(t *testing.T) {
	// Server that 500s everything.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if _, err := NewClient(srv.URL).Crawl("x"); err == nil {
		t.Error("crawl of failing API succeeded")
	}
	// Unreachable server.
	if _, err := NewClient("http://127.0.0.1:1").Crawl("x"); err == nil {
		t.Error("crawl of unreachable API succeeded")
	}
}

func TestIdentityConfigOverAPI(t *testing.T) {
	c := demoCloud()
	c.SetIdentityConfig(IdentityConfig{TLSEnabled: false, AdminTokenEnabled: true, TokenExpirationSeconds: 86400, PasswordMinLength: 4})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	m, err := NewClient(srv.URL).Crawl("c")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := m.ReadFile("/openstack/identity.json")
	if !strings.Contains(string(data), `"tls_enabled":false`) {
		t.Errorf("identity json = %s", data)
	}
	res, err := lens.Default().Parse("/openstack/identity.json", data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Tree.ValueAt("identity/admin_token_enabled"); v != "true" {
		t.Errorf("admin_token_enabled = %q", v)
	}
}
