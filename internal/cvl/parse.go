package cvl

import (
	"fmt"
	"strconv"
	"strings"

	"configvalidator/internal/yaml"
)

// ParseRuleFile parses a CVL rule file. The file may be a single YAML
// mapping (one rule), a sequence of mappings, or a multi-document stream of
// mappings — the paper's listings use one mapping per rule. A top-level
// "parent_cvl_file" key (in its own document or as the first sequence
// element with only common keys) declares inheritance.
func ParseRuleFile(path string, content []byte) (*RuleFile, error) {
	docs, err := yaml.DecodeAll(content)
	if err != nil {
		return nil, fmt.Errorf("cvl: %s: %w", path, err)
	}
	rf := &RuleFile{Path: path}
	var ruleMaps []*yaml.Map
	for _, doc := range docs {
		switch v := doc.(type) {
		case nil:
			continue
		case *yaml.Map:
			ruleMaps = append(ruleMaps, v)
		case []any:
			for i, item := range v {
				m, ok := item.(*yaml.Map)
				if !ok {
					return nil, fmt.Errorf("cvl: %s: rule %d is %T, want a mapping", path, i+1, item)
				}
				ruleMaps = append(ruleMaps, m)
			}
		default:
			return nil, fmt.Errorf("cvl: %s: document is %T, want a mapping or sequence of mappings", path, doc)
		}
	}
	for i, m := range ruleMaps {
		// A map holding only parent_cvl_file is a directive, not a rule.
		if m.Len() == 1 && m.Has("parent_cvl_file") {
			parent, ok := m.String("parent_cvl_file")
			if !ok {
				return nil, fmt.Errorf("cvl: %s: parent_cvl_file must be a string", path)
			}
			if rf.Parent != "" {
				return nil, fmt.Errorf("cvl: %s: duplicate parent_cvl_file", path)
			}
			rf.Parent = parent
			continue
		}
		rule, err := ParseRule(m)
		if err != nil {
			return nil, fmt.Errorf("cvl: %s: rule %d: %w", path, i+1, err)
		}
		rule.Source = path
		rule.Line = i + 1
		rf.Rules = append(rf.Rules, rule)
	}
	return rf, nil
}

// ParseRule converts one YAML mapping into a Rule, validating keywords and
// type-specific requirements.
func ParseRule(m *yaml.Map) (*Rule, error) {
	ruleType, err := DetectRuleType(m)
	if err != nil {
		return nil, err
	}
	allowed := AllowedGroups(ruleType)
	r := &Rule{Type: ruleType, Permission: -1, MaxPermission: -1}
	for _, key := range m.Keys() {
		group, known := Keywords[key]
		if !known {
			return nil, fmt.Errorf("unknown keyword %q%s", key, keywordSuggestion(key))
		}
		if !allowed[group] {
			return nil, fmt.Errorf("keyword %q belongs to %s rules, not %s rules", key, group, ruleType)
		}
		value, _ := m.Get(key)
		if err := applyKeyword(r, key, value); err != nil {
			return nil, fmt.Errorf("keyword %q: %w", key, err)
		}
	}
	if err := validateRule(r); err != nil {
		return nil, err
	}
	return r, nil
}

// DetectRuleType determines a rule mapping's type: an explicit rule_type
// declaration wins, otherwise exactly one type-specific name keyword
// (config_name, config_schema_name, path_name, script_name,
// composite_rule_name) must be present.
func DetectRuleType(m *yaml.Map) (RuleType, error) {
	if declared, ok := m.String("rule_type"); ok {
		return ParseRuleType(declared)
	}
	var found []RuleType
	for t, kw := range typeNameKeyword {
		if m.Has(kw) {
			found = append(found, t)
		}
	}
	switch len(found) {
	case 1:
		return found[0], nil
	case 0:
		return 0, fmt.Errorf("rule has no name keyword (one of config_name, config_schema_name, path_name, script_name, composite_rule_name) and no rule_type")
	default:
		return 0, fmt.Errorf("rule mixes name keywords of %d different rule types", len(found))
	}
}

func applyKeyword(r *Rule, key string, value any) error {
	switch key {
	case "config_name", "config_schema_name", "path_name", "script_name", "composite_rule_name":
		return setString(&r.Name, value)
	case "config_description", "config_schema_description", "path_description", "script_description", "composite_rule_description", "description":
		return setString(&r.Description, value)
	case "tags":
		return setStringSlice(&r.Tags, value)
	case "severity":
		return setString(&r.Severity, value)
	case "suggested_action":
		return setString(&r.SuggestedAction, value)
	case "disabled":
		return setBool(&r.Disabled, value)
	case "override":
		return setBool(&r.Override, value)
	case "applies_to":
		return setStringSlice(&r.AppliesTo, value)
	case "preferred_value":
		return setStringSlice(&r.PreferredValue, value)
	case "non_preferred_value":
		return setStringSlice(&r.NonPreferredValue, value)
	case "preferred_value_match":
		return setMatchSpec(&r.PreferredMatch, value)
	case "non_preferred_value_match":
		return setMatchSpec(&r.NonPreferredMatch, value)
	case "matched_description":
		return setString(&r.MatchedDescription, value)
	case "not_matched_preferred_value_description":
		return setString(&r.NotMatchedDescription, value)
	case "not_present_description":
		return setString(&r.NotPresentDescription, value)
	case "config_path":
		return setStringSlice(&r.ConfigPath, value)
	case "file_context":
		return setStringSlice(&r.FileContext, value)
	case "require_other_configs":
		return setStringSlice(&r.RequireOtherConfigs, value)
	case "value_separator":
		return setString(&r.ValueSeparator, value)
	case "case_insensitive":
		return setBool(&r.CaseInsensitive, value)
	case "occurrence":
		if err := setString(&r.Occurrence, value); err != nil {
			return err
		}
		switch r.Occurrence {
		case "any", "all", "first":
			return nil
		default:
			return fmt.Errorf("occurrence must be any, all, or first; got %q", r.Occurrence)
		}
	case "absent_pass":
		return setBool(&r.AbsentPass, value)
	case "query_constraints":
		return setString(&r.QueryConstraints, value)
	case "query_constraints_value":
		return setStringSlice(&r.QueryConstraintsValue, value)
	case "query_columns":
		return setStringSlice(&r.QueryColumns, value)
	case "expect_rows":
		return setString(&r.ExpectRows, value)
	case "ownership":
		return setString(&r.Ownership, value)
	case "permission":
		return setOctal(&r.Permission, value)
	case "max_permission":
		return setOctal(&r.MaxPermission, value)
	case "exists":
		var b bool
		if err := setBool(&b, value); err != nil {
			return err
		}
		r.Exists = &b
		return nil
	case "script_feature":
		return setString(&r.ScriptFeature, value)
	case "composite_rule":
		var src string
		if err := setString(&src, value); err != nil {
			return err
		}
		expr, err := ParseComposite(src)
		if err != nil {
			return err
		}
		r.CompositeExpr = expr
		return nil
	case "rule_type", "parent_cvl_file", "enabled", "config_search_paths":
		// rule_type handled in detectRuleType; the rest are manifest-level
		// keys that are tolerated but ignored inside a rule mapping only
		// for rule_type.
		if key == "rule_type" {
			return nil
		}
		return fmt.Errorf("manifest keyword not valid inside a rule")
	default:
		return fmt.Errorf("unhandled keyword") // unreachable: Keywords gate
	}
}

func validateRule(r *Rule) error {
	if r.Name == "" {
		return fmt.Errorf("rule has an empty name")
	}
	switch r.Type {
	case TypeTree:
		// No further requirements: a tree rule with no preferred values is
		// a pure presence check.
	case TypeSchema:
		if r.QueryConstraints == "" && r.ExpectRows == "" && len(r.PreferredValue) == 0 && len(r.NonPreferredValue) == 0 {
			return fmt.Errorf("schema rule %q asserts nothing (need query_constraints, expect_rows, or value matchers)", r.Name)
		}
		if err := validateExpectRows(r.ExpectRows); err != nil {
			return err
		}
	case TypePath:
		if r.Ownership == "" && r.Permission < 0 && r.MaxPermission < 0 && r.Exists == nil {
			return fmt.Errorf("path rule %q asserts nothing (need ownership, permission, max_permission, or exists)", r.Name)
		}
		if r.Ownership != "" && !validOwnership(r.Ownership) {
			return fmt.Errorf("path rule %q: ownership %q must be 'uid:gid'", r.Name, r.Ownership)
		}
	case TypeScript:
		if r.ScriptFeature == "" {
			return fmt.Errorf("script rule %q requires script_feature", r.Name)
		}
		if len(r.PreferredValue) == 0 && len(r.NonPreferredValue) == 0 {
			return fmt.Errorf("script rule %q asserts nothing (need value matchers)", r.Name)
		}
	case TypeComposite:
		if r.CompositeExpr == nil {
			return fmt.Errorf("composite rule %q requires composite_rule", r.Name)
		}
	}
	return nil
}

func validateExpectRows(s string) error {
	if s == "" {
		return nil
	}
	trimmed := strings.TrimPrefix(strings.TrimPrefix(s, ">="), "<=")
	if _, err := strconv.Atoi(trimmed); err != nil {
		return fmt.Errorf("expect_rows %q must be N, >=N, or <=N", s)
	}
	return nil
}

func validOwnership(s string) bool {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return false
	}
	for _, p := range parts {
		if _, err := strconv.Atoi(p); err != nil {
			return false
		}
	}
	return true
}

// ParseManifest parses a manifest document (Listing 5): a mapping from
// entity name to entity settings.
func ParseManifest(path string, content []byte) (*Manifest, error) {
	doc, err := yaml.Decode(content)
	if err != nil {
		return nil, fmt.Errorf("cvl: manifest %s: %w", path, err)
	}
	root, ok := doc.(*yaml.Map)
	if !ok {
		return nil, fmt.Errorf("cvl: manifest %s: document is %T, want a mapping of entities", path, doc)
	}
	m := &Manifest{}
	for _, name := range root.Keys() {
		body, ok := root.Map(name)
		if !ok {
			return nil, fmt.Errorf("cvl: manifest %s: entity %q must be a mapping", path, name)
		}
		entry := &ManifestEntry{Name: name, Enabled: true}
		for _, key := range body.Keys() {
			value, _ := body.Get(key)
			switch key {
			case "enabled":
				if err := setBool(&entry.Enabled, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			case "config_search_paths":
				if err := setStringSlice(&entry.ConfigSearchPaths, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			case "cvl_file":
				if err := setString(&entry.CVLFile, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			case "parent_cvl_file":
				if err := setString(&entry.ParentCVLFile, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			case "rule_type":
				if err := setString(&entry.RuleType, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
				if _, err := ParseRuleType(entry.RuleType); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			case "tags":
				if err := setStringSlice(&entry.Tags, value); err != nil {
					return nil, manifestErr(path, name, key, err)
				}
			default:
				return nil, fmt.Errorf("cvl: manifest %s: entity %q: unknown key %q", path, name, key)
			}
		}
		if entry.CVLFile == "" {
			return nil, fmt.Errorf("cvl: manifest %s: entity %q missing cvl_file", path, name)
		}
		m.Entries = append(m.Entries, entry)
	}
	return m, nil
}

func manifestErr(path, entity, key string, err error) error {
	return fmt.Errorf("cvl: manifest %s: entity %q: key %q: %w", path, entity, key, err)
}

// --- value coercion helpers ---

func setString(dst *string, value any) error {
	switch v := value.(type) {
	case string:
		*dst = v
	case int64:
		*dst = strconv.FormatInt(v, 10)
	case float64:
		*dst = strconv.FormatFloat(v, 'g', -1, 64)
	case bool:
		*dst = strconv.FormatBool(v)
	default:
		return fmt.Errorf("want a string, got %T", value)
	}
	return nil
}

func setStringSlice(dst *[]string, value any) error {
	switch v := value.(type) {
	case []any:
		out := make([]string, 0, len(v))
		for _, item := range v {
			var s string
			if err := setString(&s, item); err != nil {
				return fmt.Errorf("list element: %w", err)
			}
			out = append(out, s)
		}
		*dst = out
		return nil
	case nil:
		*dst = nil
		return nil
	case string:
		// A single string is accepted as a one-element list, matching the
		// paper's `query_columns: "*"` usage.
		*dst = []string{v}
		return nil
	default:
		return fmt.Errorf("want a list of strings, got %T", value)
	}
}

func setBool(dst *bool, value any) error {
	b, ok := value.(bool)
	if !ok {
		return fmt.Errorf("want a boolean, got %T", value)
	}
	*dst = b
	return nil
}

func setMatchSpec(dst *MatchSpec, value any) error {
	var s string
	if err := setString(&s, value); err != nil {
		return err
	}
	spec, err := ParseMatchSpec(s)
	if err != nil {
		return err
	}
	*dst = spec
	return nil
}

// setOctal accepts permissions either as integers written in octal
// convention (the paper's Listing 4 uses "permission: 644") or as strings
// ("0644", "644").
func setOctal(dst *int, value any) error {
	switch v := value.(type) {
	case int64:
		// YAML decodes 644 as decimal six hundred forty-four; reinterpret
		// its digits as octal, matching admin convention.
		n, err := strconv.ParseInt(strconv.FormatInt(v, 10), 8, 32)
		if err != nil {
			return fmt.Errorf("permission %d has non-octal digits", v)
		}
		*dst = int(n)
	case string:
		n, err := strconv.ParseInt(strings.TrimPrefix(v, "0o"), 8, 32)
		if err != nil {
			return fmt.Errorf("permission %q is not octal", v)
		}
		*dst = int(n)
	default:
		return fmt.Errorf("want a permission, got %T", value)
	}
	if *dst < 0 || *dst > 0o7777 {
		return fmt.Errorf("permission %o out of range", *dst)
	}
	return nil
}

// SuggestKeyword returns the known CVL keyword closest to key (edit
// distance at most 2), or "" when nothing is close enough to suggest.
func SuggestKeyword(key string) string {
	best := ""
	bestDist := 3 // suggest only close matches
	for kw := range Keywords {
		if d := editDistance(key, kw); d < bestDist {
			best, bestDist = kw, d
		}
	}
	return best
}

// keywordSuggestion proposes the closest known keyword for typo diagnostics.
func keywordSuggestion(key string) string {
	best := SuggestKeyword(key)
	if best == "" {
		return ""
	}
	return fmt.Sprintf(" (did you mean %q?)", best)
}

func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = minInt(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func minInt(nums ...int) int {
	out := nums[0]
	for _, n := range nums[1:] {
		if n < out {
			out = n
		}
	}
	return out
}
