package cvl

import (
	"fmt"
)

// FileReader resolves a rule-file path to its content. Implementations map
// to the local filesystem, an embedded rule library, or test fixtures.
type FileReader func(path string) ([]byte, error)

// ResolveRules loads the rule file at path and resolves its inheritance
// chain (§3.2 "Inheritance"): parent rules load first, child rules with the
// same type+name replace them, and rules marked disabled are removed from
// the effective set. Cycles in parent references are detected.
func ResolveRules(read FileReader, path string) ([]*Rule, error) {
	return resolveRules(read, path, map[string]bool{})
}

func resolveRules(read FileReader, path string, visiting map[string]bool) ([]*Rule, error) {
	if visiting[path] {
		return nil, fmt.Errorf("cvl: inheritance cycle through %q", path)
	}
	visiting[path] = true
	defer delete(visiting, path)

	content, err := read(path)
	if err != nil {
		return nil, fmt.Errorf("cvl: read rule file %s: %w", path, err)
	}
	rf, err := ParseRuleFile(path, content)
	if err != nil {
		return nil, err
	}
	var effective []*Rule
	if rf.Parent != "" {
		parentRules, err := resolveRules(read, rf.Parent, visiting)
		if err != nil {
			return nil, err
		}
		effective = parentRules
	}
	return mergeRules(effective, rf.Rules), nil
}

// mergeRules applies child rules over a parent's effective set: same-key
// rules replace in place, new rules append, disabled rules are removed.
func mergeRules(parent, child []*Rule) []*Rule {
	out := make([]*Rule, 0, len(parent)+len(child))
	index := make(map[string]int, len(parent))
	for _, r := range parent {
		index[r.Key()] = len(out)
		out = append(out, r)
	}
	for _, r := range child {
		if pos, exists := index[r.Key()]; exists {
			if r.Disabled {
				out[pos] = nil
				continue
			}
			out[pos] = r
			continue
		}
		if r.Disabled {
			// Disabling a rule that doesn't exist in the parent: drop it.
			continue
		}
		index[r.Key()] = len(out)
		out = append(out, r)
	}
	compact := out[:0]
	for _, r := range out {
		if r != nil {
			compact = append(compact, r)
		}
	}
	return compact
}

// FilterByTags returns the rules carrying at least one of the given tags.
// An empty tag list returns all rules.
func FilterByTags(rules []*Rule, tags []string) []*Rule {
	if len(tags) == 0 {
		return rules
	}
	out := make([]*Rule, 0, len(rules))
	for _, r := range rules {
		for _, t := range tags {
			if r.HasTag(t) {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// FilterByEntityType returns the rules applicable to the given entity type
// name. Rules with no applies_to restriction always apply.
func FilterByEntityType(rules []*Rule, entityType string) []*Rule {
	out := make([]*Rule, 0, len(rules))
	for _, r := range rules {
		if len(r.AppliesTo) == 0 {
			out = append(out, r)
			continue
		}
		for _, t := range r.AppliesTo {
			if t == entityType {
				out = append(out, r)
				break
			}
		}
	}
	return out
}
