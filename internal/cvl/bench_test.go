package cvl

import "testing"

func BenchmarkParseRuleFile(b *testing.B) {
	content := []byte(listing2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseRuleFile("r.yaml", content); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseComposite(b *testing.B) {
	src := `mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseComposite(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalComposite(b *testing.B) {
	expr, err := ParseComposite(`mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen`)
	if err != nil {
		b.Fatal(err)
	}
	res := mapResolver{
		rules:  map[string]bool{"sysctl/net.ipv4.ip_forward": true, "nginx/listen": true},
		values: map[string]string{"mysql/ssl-ca/mysqld": "/etc/mysql/cacert.pem"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := expr.Eval(res)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

func BenchmarkLint(b *testing.B) {
	content := []byte(listing2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if diags := Lint("r.yaml", content); HasErrors(diags) {
			b.Fatal(diags)
		}
	}
}
