package cvl

import (
	"strings"
	"testing"
)

func TestKeywordGroupString(t *testing.T) {
	wants := map[KeywordGroup]string{
		GroupCommon:     "common",
		GroupTree:       "config_tree",
		GroupSchema:     "schema",
		GroupPath:       "path",
		GroupScript:     "script",
		GroupComposite:  "composite",
		KeywordGroup(0): "unknown",
	}
	for g, want := range wants {
		if got := g.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", g, got, want)
		}
	}
}

func TestLintLevelAndDiagnosticString(t *testing.T) {
	if LintError.String() != "error" || LintWarning.String() != "warning" {
		t.Error("lint level names")
	}
	d := Diagnostic{Level: LintWarning, Rule: "x", Msg: "m"}
	if got := d.String(); got != `warning: rule "x": m` {
		t.Errorf("diagnostic = %q", got)
	}
	d2 := Diagnostic{Level: LintError, Msg: "m"}
	if got := d2.String(); got != "error: m" {
		t.Errorf("diagnostic without rule = %q", got)
	}
}

func TestCompositeRefsNestedCollect(t *testing.T) {
	expr, err := ParseComposite("!(a.x && b.y) || c.z")
	if err != nil {
		t.Fatal(err)
	}
	refs := expr.Refs()
	if len(refs) != 3 || refs[0].Entity != "a" || refs[2].Key != "z" {
		t.Errorf("refs = %+v", refs)
	}
}

func TestLintSequenceAndScalarDocuments(t *testing.T) {
	// Sequence with a non-mapping element.
	diags := Lint("f.yaml", []byte("- config_name: a\n- just_a_string\n"))
	if !HasErrors(diags) {
		t.Errorf("non-mapping sequence element not reported: %v", diags)
	}
	// A scalar document.
	diags = Lint("f.yaml", []byte("scalar-doc\n"))
	if !HasErrors(diags) {
		t.Errorf("scalar document not reported: %v", diags)
	}
	// Regression for the old silent-skip path: a parent-only document must
	// not error (single-file lint cannot resolve it), but it must no longer
	// pass silently either — the unresolved parent is surfaced as a warning
	// pointing authors at project analysis.
	diags = Lint("f.yaml", []byte("parent_cvl_file: base.yaml\n"))
	if HasErrors(diags) {
		t.Errorf("parent directive errored: %v", diags)
	}
	if len(diags) != 1 || diags[0].Level != LintWarning || !strings.Contains(diags[0].Msg, "base.yaml") {
		t.Errorf("unresolved parent not warned: %v", diags)
	}
	// A non-string parent is an error.
	diags = Lint("f.yaml", []byte("parent_cvl_file: [a, b]\n"))
	if !HasErrors(diags) {
		t.Errorf("non-string parent not reported: %v", diags)
	}
}

func TestFormatDescriptionKeywordPerType(t *testing.T) {
	srcs := map[RuleType]string{
		TypeSchema:    "config_schema_name: s\nconfig_schema_description: d\nexpect_rows: \"1\"\n",
		TypePath:      "path_name: /p\npath_description: d\nownership: \"0:0\"\n",
		TypeScript:    "script_name: sc\nscript_description: d\nscript_feature: f\npreferred_value: [x]\n",
		TypeComposite: "composite_rule_name: c\ncomposite_rule_description: d\ncomposite_rule: a.b\n",
	}
	keywords := map[RuleType]string{
		TypeSchema:    "config_schema_description",
		TypePath:      "path_description",
		TypeScript:    "script_description",
		TypeComposite: "composite_rule_description",
	}
	for typ, src := range srcs {
		rf, err := ParseRuleFile("f.yaml", []byte(src))
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		out, err := FormatRule(rf.Rules[0])
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(out), keywords[typ]+": d") {
			t.Errorf("%v formatted without %s:\n%s", typ, keywords[typ], out)
		}
	}
	if got := descriptionKeyword(RuleType(99)); got != "description" {
		t.Errorf("unknown type keyword = %q", got)
	}
}

func TestSetStringCoercions(t *testing.T) {
	// Numeric and boolean scalars coerce into string-typed keywords.
	r := parseOneRule(t, "config_name: x\nvalue_separator: \",\"\npreferred_value: [\"1\"]\nseverity: 2\n")
	if r.Severity != "2" {
		t.Errorf("severity = %q", r.Severity)
	}
	r = parseOneRule(t, "config_name: x\noccurrence: all\npreferred_value: [\"y\"]\nsuggested_action: true\n")
	if r.SuggestedAction != "true" {
		t.Errorf("suggested_action = %q", r.SuggestedAction)
	}
	// Float scalar.
	r = parseOneRule(t, "config_name: x\nseverity: 1.5\n")
	if r.Severity != "1.5" {
		t.Errorf("severity = %q", r.Severity)
	}
	// Mapping where a string is required errors.
	if _, err := ParseRuleFile("f.yaml", []byte("config_name: x\nseverity:\n  a: 1\n")); err == nil {
		t.Error("mapping severity accepted")
	}
	// Numeric list elements coerce too.
	r = parseOneRule(t, "config_name: x\npreferred_value: [1, 2.5, true]\n")
	if len(r.PreferredValue) != 3 || r.PreferredValue[0] != "1" || r.PreferredValue[1] != "2.5" || r.PreferredValue[2] != "true" {
		t.Errorf("coerced list = %v", r.PreferredValue)
	}
}

func TestManifestEntryLookupMiss(t *testing.T) {
	m := &Manifest{Entries: []*ManifestEntry{{Name: "a"}}}
	if _, ok := m.Entry("b"); ok {
		t.Error("missing entry found")
	}
}

func TestManifestNullEntityAndTags(t *testing.T) {
	if _, err := ParseManifest("m.yaml", []byte("nginx: null\n")); err == nil {
		t.Error("null entity accepted")
	}
	m, err := ParseManifest("m.yaml", []byte("nginx:\n  cvl_file: x\n  tags: [\"#a\"]\n  rule_type: config_tree\n  parent_cvl_file: p.yaml\n"))
	if err != nil {
		t.Fatal(err)
	}
	e := m.Entries[0]
	if len(e.Tags) != 1 || e.RuleType != "config_tree" || e.ParentCVLFile != "p.yaml" {
		t.Errorf("entry = %+v", e)
	}
	if _, err := ParseManifest("m.yaml", []byte("nginx:\n  cvl_file: x\n  tags: 5\n")); err == nil {
		t.Error("bad tags accepted")
	}
}
