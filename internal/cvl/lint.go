package cvl

import (
	"fmt"

	"configvalidator/internal/yaml"
)

// Severity of a lint diagnostic.
type LintLevel int

// Lint levels.
const (
	LintError LintLevel = iota + 1
	LintWarning
)

// String returns the level name.
func (l LintLevel) String() string {
	if l == LintError {
		return "error"
	}
	return "warning"
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	// Level is error (file unusable) or warning (style/maintainability).
	Level LintLevel
	// Rule is the rule name the finding concerns, when attributable.
	Rule string
	// Msg describes the finding.
	Msg string
}

// String renders the diagnostic as "level: [rule] msg".
func (d Diagnostic) String() string {
	if d.Rule != "" {
		return fmt.Sprintf("%s: rule %q: %s", d.Level, d.Rule, d.Msg)
	}
	return fmt.Sprintf("%s: %s", d.Level, d.Msg)
}

// Lint checks a CVL rule file: syntax, unknown keywords (errors), plus
// maintainability warnings — rules without descriptions or tags, duplicate
// names, overrides not marked override, and missing output descriptions.
// The returned slice is empty for a clean file.
func Lint(path string, content []byte) []Diagnostic {
	var out []Diagnostic
	docs, err := yaml.DecodeAll(content)
	if err != nil {
		return []Diagnostic{{Level: LintError, Msg: err.Error()}}
	}
	var ruleMaps []*yaml.Map
	for _, doc := range docs {
		switch v := doc.(type) {
		case nil:
		case *yaml.Map:
			ruleMaps = append(ruleMaps, v)
		case []any:
			for _, item := range v {
				if m, ok := item.(*yaml.Map); ok {
					ruleMaps = append(ruleMaps, m)
				} else {
					out = append(out, Diagnostic{Level: LintError, Msg: fmt.Sprintf("sequence element is %T, want a mapping", item)})
				}
			}
		default:
			out = append(out, Diagnostic{Level: LintError, Msg: fmt.Sprintf("document is %T, want a mapping", doc)})
		}
	}
	seen := make(map[string]bool)
	for i, m := range ruleMaps {
		if m.Len() == 1 && m.Has("parent_cvl_file") {
			// Single-file lint cannot resolve the parent chain; surface
			// that instead of skipping silently, so authors know missing
			// or cyclic parents are only caught by project analysis.
			if parent, ok := m.String("parent_cvl_file"); ok {
				out = append(out, Diagnostic{Level: LintWarning, Msg: fmt.Sprintf("parent_cvl_file %q is not resolved by single-file lint; run project analysis to verify the inheritance chain", parent)})
			} else {
				out = append(out, Diagnostic{Level: LintError, Msg: "parent_cvl_file must be a string"})
			}
			continue
		}
		rule, err := ParseRule(m)
		if err != nil {
			out = append(out, Diagnostic{Level: LintError, Msg: fmt.Sprintf("rule %d: %v", i+1, err)})
			continue
		}
		if seen[rule.Key()] {
			out = append(out, Diagnostic{Level: LintError, Rule: rule.Name, Msg: "duplicate rule (same type and name)"})
		}
		seen[rule.Key()] = true
		out = append(out, lintRule(rule)...)
	}
	return out
}

func lintRule(r *Rule) []Diagnostic {
	var out []Diagnostic
	warn := func(format string, args ...any) {
		out = append(out, Diagnostic{Level: LintWarning, Rule: r.Name, Msg: fmt.Sprintf(format, args...)})
	}
	if r.Description == "" {
		warn("missing description")
	}
	if len(r.Tags) == 0 {
		warn("missing tags (add a compliance tag such as \"#cis\")")
	}
	switch r.Type {
	case TypeTree, TypeScript:
		if len(r.PreferredValue) > 0 && r.NotMatchedDescription == "" {
			warn("missing not_matched_preferred_value_description")
		}
		if r.MatchedDescription == "" {
			warn("missing matched_description")
		}
		if r.Type == TypeTree && !r.AbsentPass && r.NotPresentDescription == "" {
			warn("missing not_present_description")
		}
	case TypeSchema:
		if r.MatchedDescription == "" {
			warn("missing matched_description")
		}
	case TypeComposite:
		if r.MatchedDescription == "" {
			warn("missing matched_description")
		}
	}
	if len(r.PreferredValue) > 0 && r.PreferredMatch.IsZero() {
		warn("preferred_value without preferred_value_match (defaults to exact,any)")
	}
	if len(r.NonPreferredValue) > 0 && r.NonPreferredMatch.IsZero() {
		warn("non_preferred_value without non_preferred_value_match (defaults to exact,any)")
	}
	return out
}

// HasErrors reports whether any diagnostic is level error.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Level == LintError {
			return true
		}
	}
	return false
}
