package cvl

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// Listing 2 of the paper, verbatim.
const listing2 = `
config_name: ssl_protocols
config_path: ["server", "http/server"]
config_description: "Enables the specified SSL protocols."
preferred_value: [ "TLSv1.2", "TLSv1.3" ]
non_preferred_value: [ "SSLv2", "SSLv3", "TLSv1", "TLSv1.1" ]
non_preferred_value_match: substr ,any
preferred_value_match: substr ,all
not_present_description: "ssl_protocols is not present."
not_matched_preferred_value_description: "Non -recommended TLS ver."
matched_description: "ssl_protocols key is set to TLS v1.2/1.3"
tags: ["#security", "#ssl", "#owasp"]
require_other_configs: [ listen , ssl_certificate , ssl_certificate_key ]
file_context: ["nginx.conf", "sites -enabled"]
`

// Listing 3 of the paper, verbatim.
const listing3 = `
config_schema_name: check_tmp_separate_partition
config_schema_description: "Check if /tmp is on a separate partition"
query_constraints: "dir = ?"
query_constraints_value: ["/tmp"]
query_columns: "*"
non_preferred_value: [""]
non_preferred_value_match: exact ,all
not_matched_preferred_value_description: "/tmp not on sep. partition"
matched_description: "/tmp is on a separate partition"
tags: ["#cis", "#cisubuntu14.04_2.1"]
`

// Listing 4 of the paper, verbatim.
const listing4 = `
path_name: /etc/mysql/my.cnf
path_description: "Permissions and ownership for mysql config file"
ownership: "0:0"
permission: 644
tags: [ "#owasp" ]
`

// Listing 1 of the paper (composite), with the PDF's spurious spaces fixed.
const listing1 = `
composite_rule_name: "mysql ssl-ca path and sysctl and nginx SSL"
composite_rule_description: "Check if nginx is running with SSL, ip_forward is disabled, and mysql server ssl-ca has a cert"
composite_rule: mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen
tags: ["docker", "nginx", "sysctl"]
matched_description: "mysql server ssl-ca has a cert, ip_forward is disabled, and nginx has SSL enabled."
not_matched_preferred_value_description: "Either mysql server ssl-ca does not have a cert, or ip_forward is enabled, or nginx has SSL disabled."
`

// Listing 5 of the paper, verbatim.
const listing5 = `
nginx:
  enabled: True
  config_search_paths:
    - /etc/nginx
  cvl_file:
    "component_configs/nginx.yaml"
`

func parseOneRule(t *testing.T, src string) *Rule {
	t.Helper()
	rf, err := ParseRuleFile("test.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rf.Rules) != 1 {
		t.Fatalf("parsed %d rules, want 1", len(rf.Rules))
	}
	return rf.Rules[0]
}

func TestKeywordCounts(t *testing.T) {
	// The paper: 46 keywords total; 19 common; tree 9, schema 6, path 6,
	// script 3, composite 3.
	if got := KeywordCount(0); got != 46 {
		t.Errorf("total keywords = %d, want 46", got)
	}
	wants := map[KeywordGroup]int{
		GroupCommon:    19,
		GroupTree:      9,
		GroupSchema:    6,
		GroupPath:      6,
		GroupScript:    3,
		GroupComposite: 3,
	}
	for g, want := range wants {
		if got := KeywordCount(g); got != want {
			t.Errorf("%s keywords = %d, want %d", g, got, want)
		}
	}
}

func TestParseListing2TreeRule(t *testing.T) {
	r := parseOneRule(t, listing2)
	if r.Type != TypeTree {
		t.Fatalf("type = %v", r.Type)
	}
	if r.Name != "ssl_protocols" {
		t.Errorf("name = %q", r.Name)
	}
	if !reflect.DeepEqual(r.ConfigPath, []string{"server", "http/server"}) {
		t.Errorf("config_path = %v", r.ConfigPath)
	}
	if !reflect.DeepEqual(r.PreferredValue, []string{"TLSv1.2", "TLSv1.3"}) {
		t.Errorf("preferred_value = %v", r.PreferredValue)
	}
	if r.PreferredMatch != (MatchSpec{Kind: MatchSubstr, Quant: QuantAll}) {
		t.Errorf("preferred_value_match = %+v", r.PreferredMatch)
	}
	if r.NonPreferredMatch != (MatchSpec{Kind: MatchSubstr, Quant: QuantAny}) {
		t.Errorf("non_preferred_value_match = %+v", r.NonPreferredMatch)
	}
	if !r.HasTag("#owasp") || r.HasTag("#cis") {
		t.Errorf("tags = %v", r.Tags)
	}
	if !reflect.DeepEqual(r.RequireOtherConfigs, []string{"listen", "ssl_certificate", "ssl_certificate_key"}) {
		t.Errorf("require_other_configs = %v", r.RequireOtherConfigs)
	}
	if len(r.FileContext) != 2 {
		t.Errorf("file_context = %v", r.FileContext)
	}
}

func TestParseListing3SchemaRule(t *testing.T) {
	r := parseOneRule(t, listing3)
	if r.Type != TypeSchema {
		t.Fatalf("type = %v", r.Type)
	}
	if r.Name != "check_tmp_separate_partition" {
		t.Errorf("name = %q", r.Name)
	}
	if r.QueryConstraints != "dir = ?" {
		t.Errorf("query_constraints = %q", r.QueryConstraints)
	}
	if !reflect.DeepEqual(r.QueryConstraintsValue, []string{"/tmp"}) {
		t.Errorf("query_constraints_value = %v", r.QueryConstraintsValue)
	}
	// "*" scalar accepted as one-element list.
	if !reflect.DeepEqual(r.QueryColumns, []string{"*"}) {
		t.Errorf("query_columns = %v", r.QueryColumns)
	}
	if r.NonPreferredMatch != (MatchSpec{Kind: MatchExact, Quant: QuantAll}) {
		t.Errorf("non_preferred_value_match = %+v", r.NonPreferredMatch)
	}
}

func TestParseListing4PathRule(t *testing.T) {
	r := parseOneRule(t, listing4)
	if r.Type != TypePath {
		t.Fatalf("type = %v", r.Type)
	}
	if r.Name != "/etc/mysql/my.cnf" {
		t.Errorf("name = %q", r.Name)
	}
	if r.Ownership != "0:0" {
		t.Errorf("ownership = %q", r.Ownership)
	}
	if r.Permission != 0o644 {
		t.Errorf("permission = %o (YAML 644 should mean octal 644)", r.Permission)
	}
	if r.MaxPermission != -1 {
		t.Errorf("max_permission = %d, want unset", r.MaxPermission)
	}
}

func TestParseListing1CompositeRule(t *testing.T) {
	r := parseOneRule(t, listing1)
	if r.Type != TypeComposite {
		t.Fatalf("type = %v", r.Type)
	}
	refs := r.CompositeExpr.Refs()
	if len(refs) != 3 {
		t.Fatalf("refs = %+v", refs)
	}
	mysql := refs[0]
	if mysql.Entity != "mysql" || mysql.Key != "ssl-ca" || mysql.Section != "mysqld" || !mysql.WantValue {
		t.Errorf("mysql ref = %+v", mysql)
	}
	if mysql.Op != "==" || mysql.Literal != "/etc/mysql/cacert.pem" {
		t.Errorf("mysql comparison = %q %q", mysql.Op, mysql.Literal)
	}
	if refs[1].Entity != "sysctl" || refs[1].Key != "net.ipv4.ip_forward" || refs[1].WantValue {
		t.Errorf("sysctl ref = %+v", refs[1])
	}
	if refs[2].Entity != "nginx" || refs[2].Key != "listen" {
		t.Errorf("nginx ref = %+v", refs[2])
	}
}

func TestParseListing5Manifest(t *testing.T) {
	m, err := ParseManifest("manifest.yaml", []byte(listing5))
	if err != nil {
		t.Fatal(err)
	}
	entry, ok := m.Entry("nginx")
	if !ok {
		t.Fatal("nginx entry missing")
	}
	if !entry.Enabled {
		t.Error("enabled should be true")
	}
	if !reflect.DeepEqual(entry.ConfigSearchPaths, []string{"/etc/nginx"}) {
		t.Errorf("config_search_paths = %v", entry.ConfigSearchPaths)
	}
	if entry.CVLFile != "component_configs/nginx.yaml" {
		t.Errorf("cvl_file = %q", entry.CVLFile)
	}
	if len(m.EnabledEntries()) != 1 {
		t.Error("enabled entries")
	}
}

func TestManifestErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"not a mapping", "- a\n"},
		{"entity not mapping", "nginx: yes\n"},
		{"unknown key", "nginx:\n  cvl_file: x\n  wat: 1\n"},
		{"missing cvl_file", "nginx:\n  enabled: true\n"},
		{"bad enabled type", "nginx:\n  cvl_file: x\n  enabled: maybe_not_bool_but_string\n"},
		{"bad rule_type", "nginx:\n  cvl_file: x\n  rule_type: nope\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseManifest("m.yaml", []byte(tt.src)); err == nil {
				t.Errorf("manifest %q accepted", tt.src)
			}
		})
	}
}

func TestParseMatchSpec(t *testing.T) {
	tests := []struct {
		in      string
		want    MatchSpec
		wantErr bool
	}{
		{"exact,all", MatchSpec{MatchExact, QuantAll}, false},
		{"substr ,any", MatchSpec{MatchSubstr, QuantAny}, false},
		{"regex, any", MatchSpec{MatchRegex, QuantAny}, false},
		{" substr , all ", MatchSpec{MatchSubstr, QuantAll}, false},
		{"bogus,all", MatchSpec{}, true},
		{"exact,some", MatchSpec{}, true},
		{"exact", MatchSpec{}, true},
	}
	for _, tt := range tests {
		got, err := ParseMatchSpec(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMatchSpec(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.wantErr && got != tt.want {
			t.Errorf("ParseMatchSpec(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
	// Round trip through String.
	for _, s := range []string{"exact,all", "substr,any", "regex,all"} {
		spec, err := ParseMatchSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		if spec.String() != s {
			t.Errorf("String() = %q, want %q", spec.String(), s)
		}
	}
	if (MatchSpec{}).String() != "" {
		t.Error("zero spec should render empty")
	}
}

func TestRuleTypeRoundTrip(t *testing.T) {
	for _, typ := range []RuleType{TypeTree, TypeSchema, TypePath, TypeScript, TypeComposite} {
		back, err := ParseRuleType(typ.String())
		if err != nil || back != typ {
			t.Errorf("round trip %v: %v, %v", typ, back, err)
		}
	}
	if _, err := ParseRuleType("nope"); err == nil {
		t.Error("bad type parsed")
	}
}

func TestParseRuleErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"unknown keyword", "config_name: x\nconfig_pth: [a]\n"},
		{"wrong group keyword", "config_name: x\nquery_constraints: \"a = ?\"\n"},
		{"no name keyword", "tags: [a]\n"},
		{"two name keywords", "config_name: x\npath_name: /y\nownership: \"0:0\"\n"},
		{"empty name", "config_name: \"\"\n"},
		{"bad match spec", "config_name: x\npreferred_value_match: fuzzy,all\n"},
		{"bad occurrence", "config_name: x\noccurrence: sometimes\n"},
		{"schema asserts nothing", "config_schema_name: x\n"},
		{"bad expect_rows", "config_schema_name: x\nexpect_rows: lots\n"},
		{"path asserts nothing", "path_name: /x\n"},
		{"bad ownership", "path_name: /x\nownership: root\n"},
		{"bad permission digits", "path_name: /x\npermission: 999\n"},
		{"permission wrong type", "path_name: /x\npermission: [6, 4, 4]\n"},
		{"script missing feature", "script_name: x\npreferred_value: [y]\n"},
		{"script asserts nothing", "script_name: x\nscript_feature: f\n"},
		{"composite missing expr", "composite_rule_name: x\n"},
		{"bad composite expr", "composite_rule_name: x\ncomposite_rule: \"a.b &&\"\n"},
		{"tags wrong type", "config_name: x\ntags: true\n"},
		{"manifest key in rule", "config_name: x\nenabled: true\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseRuleFile("f.yaml", []byte(tt.src)); err == nil {
				t.Errorf("rule %q accepted", tt.src)
			}
		})
	}
}

func TestKeywordSuggestion(t *testing.T) {
	_, err := ParseRuleFile("f.yaml", []byte("config_name: x\nconfig_pth: [a]\n"))
	if err == nil || !strings.Contains(err.Error(), "config_path") {
		t.Errorf("typo error should suggest config_path: %v", err)
	}
}

func TestRuleFileFormats(t *testing.T) {
	asSequence := "- config_name: a\n- config_name: b\n"
	rf, err := ParseRuleFile("f.yaml", []byte(asSequence))
	if err != nil || len(rf.Rules) != 2 {
		t.Errorf("sequence format: %d rules, %v", len(rf.Rules), err)
	}
	asMultiDoc := "config_name: a\n---\nconfig_name: b\n---\nconfig_name: c\n"
	rf, err = ParseRuleFile("f.yaml", []byte(asMultiDoc))
	if err != nil || len(rf.Rules) != 3 {
		t.Errorf("multi-doc format: %d rules, %v", len(rf.Rules), err)
	}
}

func TestParseRuleFileParentDirective(t *testing.T) {
	src := "parent_cvl_file: base/nginx.yaml\n---\nconfig_name: a\n"
	rf, err := ParseRuleFile("f.yaml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if rf.Parent != "base/nginx.yaml" || len(rf.Rules) != 1 {
		t.Errorf("parent = %q rules = %d", rf.Parent, len(rf.Rules))
	}
	dup := "parent_cvl_file: a\n---\nparent_cvl_file: b\n"
	if _, err := ParseRuleFile("f.yaml", []byte(dup)); err == nil {
		t.Error("duplicate parent accepted")
	}
}

func TestExplicitRuleType(t *testing.T) {
	src := "rule_type: config_tree\nconfig_name: x\n"
	r := parseOneRule(t, src)
	if r.Type != TypeTree {
		t.Errorf("type = %v", r.Type)
	}
}

func TestPermissionFormats(t *testing.T) {
	for _, src := range []string{
		"path_name: /x\npermission: 644\n",
		"path_name: /x\npermission: \"644\"\n",
		"path_name: /x\npermission: \"0644\"\n",
	} {
		r := parseOneRule(t, src)
		if r.Permission != 0o644 {
			t.Errorf("%q -> permission %o", src, r.Permission)
		}
	}
	r := parseOneRule(t, "path_name: /x\nmax_permission: 600\n")
	if r.MaxPermission != 0o600 || r.Permission != -1 {
		t.Errorf("max_permission = %o permission = %d", r.MaxPermission, r.Permission)
	}
}

func TestExistsRule(t *testing.T) {
	r := parseOneRule(t, "path_name: /etc/shadow\nexists: true\n")
	if r.Exists == nil || !*r.Exists {
		t.Error("exists not parsed")
	}
	r = parseOneRule(t, "path_name: /etc/telnetd.conf\nexists: false\n")
	if r.Exists == nil || *r.Exists {
		t.Error("exists:false not parsed")
	}
}

// --- inheritance ---

func readerFor(files map[string]string) FileReader {
	return func(path string) ([]byte, error) {
		content, ok := files[path]
		if !ok {
			return nil, fmt.Errorf("no such file %q", path)
		}
		return []byte(content), nil
	}
}

func TestInheritanceOverrideAndDisable(t *testing.T) {
	files := map[string]string{
		"base.yaml": strings.Join([]string{
			"- config_name: PermitRootLogin",
			"  preferred_value: [\"no\"]",
			"- config_name: Protocol",
			"  preferred_value: [\"2\"]",
			"- config_name: X11Forwarding",
			"  preferred_value: [\"no\"]",
		}, "\n"),
		"site.yaml": strings.Join([]string{
			"parent_cvl_file: base.yaml",
			"---",
			"# Site override: root login over ssh allowed from bastion.",
			"config_name: PermitRootLogin",
			"override: true",
			"preferred_value: [\"without-password\"]",
			"---",
			"config_name: X11Forwarding",
			"disabled: true",
			"---",
			"config_name: MaxAuthTries",
			"preferred_value: [\"4\"]",
		}, "\n"),
	}
	rules, err := ResolveRules(readerFor(files), "site.yaml")
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(rules))
	for i, r := range rules {
		names[i] = r.Name
	}
	want := []string{"PermitRootLogin", "Protocol", "MaxAuthTries"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("effective rules = %v, want %v", names, want)
	}
	// The override took the child's value and keeps parent position.
	if rules[0].PreferredValue[0] != "without-password" || !rules[0].Override {
		t.Errorf("override rule = %+v", rules[0])
	}
	// Rules keep provenance.
	if rules[1].Source != "base.yaml" || rules[0].Source != "site.yaml" {
		t.Errorf("sources = %q, %q", rules[1].Source, rules[0].Source)
	}
}

func TestInheritanceChain(t *testing.T) {
	files := map[string]string{
		"a.yaml": "config_name: one\n",
		"b.yaml": "parent_cvl_file: a.yaml\n---\nconfig_name: two\n",
		"c.yaml": "parent_cvl_file: b.yaml\n---\nconfig_name: three\n",
	}
	rules, err := ResolveRules(readerFor(files), "c.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Errorf("chain rules = %d", len(rules))
	}
}

func TestInheritanceCycle(t *testing.T) {
	files := map[string]string{
		"a.yaml": "parent_cvl_file: b.yaml\n---\nconfig_name: one\n",
		"b.yaml": "parent_cvl_file: a.yaml\n---\nconfig_name: two\n",
	}
	if _, err := ResolveRules(readerFor(files), "a.yaml"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestInheritanceMissingParent(t *testing.T) {
	files := map[string]string{"a.yaml": "parent_cvl_file: ghost.yaml\n---\nconfig_name: one\n"}
	if _, err := ResolveRules(readerFor(files), "a.yaml"); err == nil {
		t.Error("missing parent accepted")
	}
}

func TestDisableNonexistentRuleDropped(t *testing.T) {
	files := map[string]string{"a.yaml": "config_name: ghost\ndisabled: true\n---\nconfig_name: real\n"}
	rules, err := ResolveRules(readerFor(files), "a.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Name != "real" {
		t.Errorf("rules = %+v", rules)
	}
}

func TestFilterByTags(t *testing.T) {
	rules := []*Rule{
		{Name: "a", Tags: []string{"#cis", "#ssh"}},
		{Name: "b", Tags: []string{"#owasp"}},
		{Name: "c", Tags: []string{"#cis"}},
	}
	got := FilterByTags(rules, []string{"#cis"})
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "c" {
		t.Errorf("filtered = %+v", got)
	}
	if got := FilterByTags(rules, nil); len(got) != 3 {
		t.Error("empty filter should return all")
	}
	if got := FilterByTags(rules, []string{"#none"}); len(got) != 0 {
		t.Error("non-matching filter should return none")
	}
}

func TestFilterByEntityType(t *testing.T) {
	rules := []*Rule{
		{Name: "any"},
		{Name: "img", AppliesTo: []string{"image"}},
		{Name: "both", AppliesTo: []string{"image", "container"}},
	}
	got := FilterByEntityType(rules, "container")
	if len(got) != 2 || got[0].Name != "any" || got[1].Name != "both" {
		t.Errorf("filtered = %+v", got)
	}
}

// --- composite expressions ---

type mapResolver struct {
	rules  map[string]bool   // "entity/rule" -> passed
	values map[string]string // "entity/key[/section]" -> value
}

func (m mapResolver) RuleResult(entityName, ruleName string) (bool, bool) {
	v, ok := m.rules[entityName+"/"+ruleName]
	return v, ok
}

func (m mapResolver) ConfigValue(entityName, key, section string) (string, bool) {
	k := entityName + "/" + key
	if section != "" {
		k += "/" + section
	}
	v, ok := m.values[k]
	return v, ok
}

func TestCompositeEvalListing1(t *testing.T) {
	expr, err := ParseComposite(`mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen`)
	if err != nil {
		t.Fatal(err)
	}
	res := mapResolver{
		rules: map[string]bool{
			"sysctl/net.ipv4.ip_forward": true, // per-entity rule passed: forwarding disabled
			"nginx/listen":               true, // per-entity rule passed: ssl on listen
		},
		values: map[string]string{
			"mysql/ssl-ca/mysqld": "/etc/mysql/cacert.pem",
		},
	}
	ok, err := expr.Eval(res)
	if err != nil || !ok {
		t.Errorf("eval = %v, %v; want true", ok, err)
	}
	// Flip each leg and verify the conjunction fails.
	res.values["mysql/ssl-ca/mysqld"] = "/tmp/evil.pem"
	if ok, _ := expr.Eval(res); ok {
		t.Error("wrong cert should fail")
	}
	res.values["mysql/ssl-ca/mysqld"] = "/etc/mysql/cacert.pem"
	res.rules["sysctl/net.ipv4.ip_forward"] = false
	if ok, _ := expr.Eval(res); ok {
		t.Error("failing sysctl rule should fail")
	}
}

func TestCompositeOperators(t *testing.T) {
	res := mapResolver{
		rules:  map[string]bool{"a/p": true, "a/q": false},
		values: map[string]string{"b/x": "1"},
	}
	tests := []struct {
		src  string
		want bool
	}{
		{"a.p", true},
		{"a.q", false},
		{"!a.q", true},
		{"a.p && a.q", false},
		{"a.p || a.q", true},
		{"a.q || a.q", false},
		{"(a.p || a.q) && a.p", true},
		{"!(a.p && a.q)", true},
		{`b.x == "1"`, true},
		{`b.x == "2"`, false},
		{`b.x != "2"`, true},
		{`b.missing == "1"`, false},
		{`b.missing != "1"`, true},
		{"b.x", true},             // existence fallback
		{"b.missing", false},      // absent key
		{"a.p && b.x == 1", true}, // unquoted literal
	}
	for _, tt := range tests {
		expr, err := ParseComposite(tt.src)
		if err != nil {
			t.Errorf("parse %q: %v", tt.src, err)
			continue
		}
		got, err := expr.Eval(res)
		if err != nil || got != tt.want {
			t.Errorf("eval %q = %v (%v), want %v", tt.src, got, err, tt.want)
		}
	}
}

func TestCompositeParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"a.b &&",
		"&& a.b",
		"(a.b",
		"a.b ==",
		`a.b == "unterminated`,
		"justoneword",
		"a.",
		".b",
		"a.b.CONFIGPATH=[x].WRONG",
		"a.b extra",
	} {
		if _, err := ParseComposite(src); err == nil {
			t.Errorf("ParseComposite(%q) succeeded", src)
		}
	}
}

func TestCompositeStringRoundTrip(t *testing.T) {
	srcs := []string{
		`mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem" && sysctl.net.ipv4.ip_forward && nginx.listen`,
		"a.p || !b.q && c.r",
		`(a.p || b.q) && !c.r`,
		`x.y != "z"`,
	}
	res := mapResolver{
		rules:  map[string]bool{"a/p": true, "b/q": false, "c/r": true, "sysctl/net.ipv4.ip_forward": true, "nginx/listen": false},
		values: map[string]string{"mysql/ssl-ca/mysqld": "/etc/mysql/cacert.pem", "x/y": "z"},
	}
	for _, src := range srcs {
		e1, err := ParseComposite(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e2, err := ParseComposite(e1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", e1.String(), err)
		}
		v1, err1 := e1.Eval(res)
		v2, err2 := e2.Eval(res)
		if err1 != nil || err2 != nil || v1 != v2 {
			t.Errorf("round trip of %q changed semantics: %v vs %v", src, v1, v2)
		}
	}
}

// --- lint ---

func TestLintCleanListing(t *testing.T) {
	diags := Lint("f.yaml", []byte(listing2))
	if HasErrors(diags) {
		t.Errorf("listing 2 has lint errors: %v", diags)
	}
}

func TestLintFindings(t *testing.T) {
	src := "config_name: NoDescriptions\npreferred_value: [x]\n"
	diags := Lint("f.yaml", []byte(src))
	if HasErrors(diags) {
		t.Fatalf("unexpected errors: %v", diags)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.String())
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"missing description", "missing tags", "preferred_value without preferred_value_match"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint missing %q in:\n%s", want, joined)
		}
	}
}

func TestLintErrors(t *testing.T) {
	if diags := Lint("f.yaml", []byte("config_name: [not scalar\n")); !HasErrors(diags) {
		t.Error("yaml error not reported")
	}
	if diags := Lint("f.yaml", []byte("config_nme: x\n")); !HasErrors(diags) {
		t.Error("unknown keyword not reported")
	}
	dup := "config_name: a\n---\nconfig_name: a\n"
	if diags := Lint("f.yaml", []byte(dup)); !HasErrors(diags) {
		t.Error("duplicate rule not reported")
	}
}

func TestListing6CVLRuleLineCount(t *testing.T) {
	// The paper reports the PermitRootLogin rule takes 10 lines in CVL
	// (Listing 6). Reproduce that rule and count.
	rule := strings.Join([]string{
		`config_name: PermitRootLogin`,
		`tags: ["#security","#cis", "#cisubuntu14.04_5.2.8"]`,
		`config_path: [""]`,
		`config_description: "Enable root login."`,
		`file_context: ["sshd_config"]`,
		`preferred_value: [ "no" ]`,
		`preferred_value_match: substr,all`,
		`not_present_description: "PermitRootLogin is not present. It is enabled by default."`,
		`not_matched_preferred_value_description: "PermitRootLogin is present but it is enabled."`,
		`matched_description: "Root login is disabled."`,
	}, "\n")
	if got := len(strings.Split(rule, "\n")); got != 10 {
		t.Errorf("CVL encoding = %d lines, paper reports 10", got)
	}
	r := parseOneRule(t, rule)
	if r.Name != "PermitRootLogin" || r.Type != TypeTree {
		t.Errorf("rule = %+v", r)
	}
	if diags := Lint("f.yaml", []byte(rule)); HasErrors(diags) {
		t.Errorf("listing 6 rule has errors: %v", diags)
	}
}
