// Package cvl implements the Configuration Validation Language: the
// declarative, YAML-based rule language that is the paper's core
// contribution (§3.2). It provides rule and manifest parsing, the
// 46-keyword vocabulary, the five rule types (config tree, schema, path,
// script, composite), rule-file inheritance with overrides and disables,
// tag filtering, and the composite-rule expression language of Listing 1.
package cvl

import (
	"fmt"
	"strings"
)

// RuleType enumerates the five CVL rule types (§3.2 "Keywords Specific to
// Rule-Types").
type RuleType int

// Rule types.
const (
	// TypeTree validates hierarchical key-value configuration (Listing 2).
	TypeTree RuleType = iota + 1
	// TypeSchema validates SQL-table-like configuration (Listing 3).
	TypeSchema
	// TypePath validates path existence, ownership, permissions (Listing 4).
	TypePath
	// TypeScript validates runtime state extracted by a crawler plugin.
	TypeScript
	// TypeComposite aggregates rule results across entities (Listing 1).
	TypeComposite
)

// String returns the rule type name used in manifests and reports.
func (t RuleType) String() string {
	switch t {
	case TypeTree:
		return "config_tree"
	case TypeSchema:
		return "schema"
	case TypePath:
		return "path"
	case TypeScript:
		return "script"
	case TypeComposite:
		return "composite"
	default:
		return fmt.Sprintf("RuleType(%d)", int(t))
	}
}

// ParseRuleType converts a rule type name back to a RuleType.
func ParseRuleType(s string) (RuleType, error) {
	switch s {
	case "config_tree", "tree":
		return TypeTree, nil
	case "schema":
		return TypeSchema, nil
	case "path":
		return TypePath, nil
	case "script":
		return TypeScript, nil
	case "composite":
		return TypeComposite, nil
	default:
		return 0, fmt.Errorf("cvl: unknown rule type %q", s)
	}
}

// MatchKind is how a candidate value is compared with an expected value.
type MatchKind int

// Match kinds.
const (
	// MatchExact requires string equality.
	MatchExact MatchKind = iota + 1
	// MatchSubstr requires the expected value to occur as a substring.
	MatchSubstr
	// MatchRegex interprets the expected value as a regular expression.
	MatchRegex
)

// MatchQuant is how many expected values must match.
type MatchQuant int

// Match quantifiers.
const (
	// QuantAny passes when at least one expected value matches.
	QuantAny MatchQuant = iota + 1
	// QuantAll passes only when every expected value matches.
	QuantAll
)

// MatchSpec is a parsed "<kind>,<quant>" matcher such as "substr ,any" from
// Listing 2. The zero value means "unspecified"; the engine defaults it per
// context.
type MatchSpec struct {
	Kind  MatchKind
	Quant MatchQuant
}

// IsZero reports whether the spec was left unspecified.
func (m MatchSpec) IsZero() bool { return m.Kind == 0 && m.Quant == 0 }

// String renders the spec in CVL notation.
func (m MatchSpec) String() string {
	if m.IsZero() {
		return ""
	}
	kind := "exact"
	switch m.Kind {
	case MatchSubstr:
		kind = "substr"
	case MatchRegex:
		kind = "regex"
	}
	quant := "all"
	if m.Quant == QuantAny {
		quant = "any"
	}
	return kind + "," + quant
}

// ParseMatchSpec parses CVL matcher notation: "exact,all", "substr ,any",
// "regex,any". Whitespace around the comma is tolerated, as in the paper's
// listings.
func ParseMatchSpec(s string) (MatchSpec, error) {
	parts := strings.SplitN(s, ",", 2)
	if len(parts) != 2 {
		return MatchSpec{}, fmt.Errorf("cvl: match spec %q must be '<kind>,<quantifier>'", s)
	}
	var spec MatchSpec
	switch strings.TrimSpace(parts[0]) {
	case "exact":
		spec.Kind = MatchExact
	case "substr":
		spec.Kind = MatchSubstr
	case "regex":
		spec.Kind = MatchRegex
	default:
		return MatchSpec{}, fmt.Errorf("cvl: unknown match kind %q (want exact, substr, or regex)", parts[0])
	}
	switch strings.TrimSpace(parts[1]) {
	case "any":
		spec.Quant = QuantAny
	case "all":
		spec.Quant = QuantAll
	default:
		return MatchSpec{}, fmt.Errorf("cvl: unknown match quantifier %q (want any or all)", parts[1])
	}
	return spec, nil
}

// Rule is one parsed CVL rule of any type. Fields irrelevant to the rule's
// type are zero.
type Rule struct {
	// Type is the rule type, inferred from the name keyword or declared
	// with rule_type.
	Type RuleType
	// Name identifies the rule: the config key for tree rules, the check
	// name for schema/script rules, the path for path rules.
	Name string
	// Description is the human-readable rule description.
	Description string
	// Tags are compliance/filter tags such as "#cis" or "#cisubuntu14.04_2.1".
	Tags []string
	// Severity is an optional severity label (low/medium/high).
	Severity string
	// SuggestedAction is the remediation hint shown on failure (§3.1
	// "Output Processing").
	SuggestedAction string
	// Disabled removes the rule (typically set by an inheriting file).
	Disabled bool
	// Override marks the rule as intentionally replacing a parent rule.
	Override bool
	// AppliesTo restricts the rule to entity types (host, image, ...).
	AppliesTo []string

	// Value matching, shared by tree, schema, and script rules.
	PreferredValue        []string
	NonPreferredValue     []string
	PreferredMatch        MatchSpec
	NonPreferredMatch     MatchSpec
	MatchedDescription    string
	NotMatchedDescription string
	NotPresentDescription string

	// Tree rule fields.
	ConfigPath          []string
	FileContext         []string
	RequireOtherConfigs []string
	ValueSeparator      string
	CaseInsensitive     bool
	Occurrence          string // "any" (default), "all", or "first"
	AbsentPass          bool

	// Schema rule fields.
	QueryConstraints      string
	QueryConstraintsValue []string
	QueryColumns          []string
	ExpectRows            string // "", "0", "N", ">=N", "<=N"

	// Path rule fields.
	Ownership     string // "uid:gid"
	Permission    int    // exact octal permission; -1 when unset
	MaxPermission int    // at-most octal permission; -1 when unset
	Exists        *bool  // nil: must exist (default); otherwise asserted

	// Script rule fields.
	ScriptFeature string

	// Composite rule fields.
	CompositeExpr *CompositeExpr

	// Source is the rule file the rule came from, for diagnostics.
	Source string
	// Line is the 1-based position hint within the source, when known.
	Line int
}

// HasTag reports whether the rule carries the tag (exact match, including
// any leading '#').
func (r *Rule) HasTag(tag string) bool {
	for _, t := range r.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Key returns the identity used for inheritance overrides: type + name.
func (r *Rule) Key() string {
	return r.Type.String() + "/" + r.Name
}

// RuleFile is a parsed CVL rule file.
type RuleFile struct {
	// Path is where the file was loaded from.
	Path string
	// Parent is the optional parent rule file for inheritance.
	Parent string
	// Rules holds the file's rules in order.
	Rules []*Rule
}

// Manifest describes the entities to validate (§3.2 "Manifest", Listing 5).
type Manifest struct {
	// Entries are the per-entity manifest entries in file order.
	Entries []*ManifestEntry
}

// ManifestEntry is one entity stanza of a manifest.
type ManifestEntry struct {
	// Name is the entity key, e.g. "nginx" or "sysctl".
	Name string
	// Enabled gates whether the entity is validated.
	Enabled bool
	// ConfigSearchPaths are the locations to search for config files in.
	ConfigSearchPaths []string
	// CVLFile is the rule specification file for the entity.
	CVLFile string
	// ParentCVLFile optionally names a parent rule file to inherit from.
	ParentCVLFile string
	// RuleType optionally declares the dominant rule type for the entity.
	RuleType string
	// Tags optionally restrict which rules run (any-match).
	Tags []string
}

// Entry returns the manifest entry for the named entity.
func (m *Manifest) Entry(name string) (*ManifestEntry, bool) {
	for _, e := range m.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// EnabledEntries returns the entries with Enabled set, in order.
func (m *Manifest) EnabledEntries() []*ManifestEntry {
	out := make([]*ManifestEntry, 0, len(m.Entries))
	for _, e := range m.Entries {
		if e.Enabled {
			out = append(out, e)
		}
	}
	return out
}
