package cvl

// KeywordGroup classifies where a CVL keyword may appear.
type KeywordGroup int

// Keyword groups, following the paper's breakdown: 19 keywords common
// across rules and entity description, plus per-rule-type keywords
// (tree 9, schema 6, path 6, script 3, composite 3) — 46 in total.
const (
	GroupCommon KeywordGroup = iota + 1
	GroupTree
	GroupSchema
	GroupPath
	GroupScript
	GroupComposite
)

// String returns the group name.
func (g KeywordGroup) String() string {
	switch g {
	case GroupCommon:
		return "common"
	case GroupTree:
		return "config_tree"
	case GroupSchema:
		return "schema"
	case GroupPath:
		return "path"
	case GroupScript:
		return "script"
	case GroupComposite:
		return "composite"
	default:
		return "unknown"
	}
}

// Keywords is the complete CVL vocabulary. ConfigValidator interprets these
// keys during rule execution; anything else in a rule file is a lint error.
var Keywords = map[string]KeywordGroup{
	// Common across rules and entity description (19).
	"enabled":                   GroupCommon, // manifest: entity on/off switch
	"config_search_paths":       GroupCommon, // manifest: where to look for config files
	"cvl_file":                  GroupCommon, // manifest: entity rule file
	"parent_cvl_file":           GroupCommon, // manifest/rule file: inheritance parent
	"rule_type":                 GroupCommon, // explicit rule type declaration
	"tags":                      GroupCommon, // compliance/filter tags
	"preferred_value":           GroupCommon, // values to match
	"non_preferred_value":       GroupCommon, // values that must not match
	"preferred_value_match":     GroupCommon,
	"non_preferred_value_match": GroupCommon,
	"matched_description":       GroupCommon, // output on success
	"not_matched_preferred_value_description": GroupCommon, // output on failure
	"not_present_description":                 GroupCommon, // output when absent
	"description":                             GroupCommon, // generic rule description
	"severity":                                GroupCommon, // low / medium / high
	"suggested_action":                        GroupCommon, // remediation hint
	"disabled":                                GroupCommon, // per-rule disable (inheritance)
	"override":                                GroupCommon, // marks intentional parent override
	"applies_to":                              GroupCommon, // entity-type filter

	// Config tree rules (9).
	"config_name":           GroupTree,
	"config_description":    GroupTree,
	"config_path":           GroupTree,
	"file_context":          GroupTree,
	"require_other_configs": GroupTree,
	"value_separator":       GroupTree,
	"case_insensitive":      GroupTree,
	"occurrence":            GroupTree,
	"absent_pass":           GroupTree,

	// Schema rules (6).
	"config_schema_name":        GroupSchema,
	"config_schema_description": GroupSchema,
	"query_constraints":         GroupSchema,
	"query_constraints_value":   GroupSchema,
	"query_columns":             GroupSchema,
	"expect_rows":               GroupSchema,

	// Path rules (6).
	"path_name":        GroupPath,
	"path_description": GroupPath,
	"ownership":        GroupPath,
	"permission":       GroupPath,
	"max_permission":   GroupPath,
	"exists":           GroupPath,

	// Script rules (3).
	"script_name":        GroupScript,
	"script_feature":     GroupScript,
	"script_description": GroupScript,

	// Composite rules (3).
	"composite_rule_name":        GroupComposite,
	"composite_rule_description": GroupComposite,
	"composite_rule":             GroupComposite,
}

// KeywordCount returns how many keywords belong to the group; pass 0 for
// the total.
func KeywordCount(group KeywordGroup) int {
	if group == 0 {
		return len(Keywords)
	}
	n := 0
	for _, g := range Keywords {
		if g == group {
			n++
		}
	}
	return n
}

// typeNameKeyword maps each rule type to its discriminating name keyword.
var typeNameKeyword = map[RuleType]string{
	TypeTree:      "config_name",
	TypeSchema:    "config_schema_name",
	TypePath:      "path_name",
	TypeScript:    "script_name",
	TypeComposite: "composite_rule_name",
}

// AllowedGroups returns the keyword groups valid for a rule type: the
// common group plus the type's own group.
func AllowedGroups(t RuleType) map[KeywordGroup]bool {
	out := map[KeywordGroup]bool{GroupCommon: true}
	switch t {
	case TypeTree:
		out[GroupTree] = true
	case TypeSchema:
		out[GroupSchema] = true
	case TypePath:
		out[GroupPath] = true
	case TypeScript:
		out[GroupScript] = true
	case TypeComposite:
		out[GroupComposite] = true
	}
	return out
}
