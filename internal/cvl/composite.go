package cvl

import (
	"fmt"
	"strings"
)

// CompositeExpr is a parsed composite-rule expression (Listing 1):
//
//	mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE == "/etc/mysql/cacert.pem"
//	  && sysctl.net.ipv4.ip_forward && nginx.listen
//
// Grammar:
//
//	expr    := or
//	or      := and ('||' and)*
//	and     := unary ('&&' unary)*
//	unary   := '!'? primary
//	primary := '(' expr ')' | ref (('==' | '!=') literal)?
//	ref     := entity '.' key ('.CONFIGPATH=[' section '].VALUE')?
//
// A bare ref is truthy when the referenced per-entity rule passes (the rule
// engine "performs a logical conjunction/disjunction over the per-entity
// rule evaluations", §3.1); when no rule by that name exists, it falls back
// to configuration-key existence. A ref with the CONFIGPATH/VALUE suffix
// (or with a comparison operator) reads the configuration value directly.
type CompositeExpr struct {
	root compositeNode
	src  string
}

// String returns a canonical rendering that re-parses to an equivalent
// expression.
func (e *CompositeExpr) String() string {
	return e.root.render()
}

// Refs returns every entity reference in the expression, in order.
func (e *CompositeExpr) Refs() []CompositeRef {
	var out []CompositeRef
	e.root.collect(&out)
	return out
}

// CompositeRef is one entity reference in a composite expression.
type CompositeRef struct {
	// Entity is the manifest entity name, e.g. "mysql".
	Entity string
	// Key is the rule or configuration key, e.g. "ssl-ca" or
	// "net.ipv4.ip_forward".
	Key string
	// Section is the CONFIGPATH section, e.g. "mysqld"; empty when absent.
	Section string
	// WantValue is true when the ref reads a config value (the
	// ...CONFIGPATH=[x].VALUE form) rather than a rule result.
	WantValue bool
	// Op is "==", "!=", or "" for a bare (truthiness) reference.
	Op string
	// Literal is the quoted comparison operand.
	Literal string
}

func (r CompositeRef) render() string {
	var b strings.Builder
	b.WriteString(r.Entity)
	b.WriteByte('.')
	b.WriteString(r.Key)
	if r.WantValue {
		fmt.Fprintf(&b, ".CONFIGPATH=[%s].VALUE", r.Section)
	}
	if r.Op != "" {
		fmt.Fprintf(&b, " %s %q", r.Op, r.Literal)
	}
	return b.String()
}

// CompositeResolver supplies per-entity facts during evaluation.
type CompositeResolver interface {
	// RuleResult returns whether the named rule passed on the entity, and
	// whether such a rule result exists at all.
	RuleResult(entityName, ruleName string) (passed, found bool)
	// ConfigValue returns the configuration value for key (optionally
	// within section) on the entity, and whether it exists.
	ConfigValue(entityName, key, section string) (value string, found bool)
}

// Eval evaluates the expression against the resolver.
func (e *CompositeExpr) Eval(res CompositeResolver) (bool, error) {
	return e.root.eval(res)
}

type compositeNode interface {
	eval(res CompositeResolver) (bool, error)
	render() string
	collect(out *[]CompositeRef)
}

type binaryNode struct {
	op          string // "&&" or "||"
	left, right compositeNode
}

func (n *binaryNode) eval(res CompositeResolver) (bool, error) {
	l, err := n.left.eval(res)
	if err != nil {
		return false, err
	}
	if n.op == "&&" && !l {
		return false, nil
	}
	if n.op == "||" && l {
		return true, nil
	}
	return n.right.eval(res)
}

func (n *binaryNode) render() string {
	return "(" + n.left.render() + " " + n.op + " " + n.right.render() + ")"
}

func (n *binaryNode) collect(out *[]CompositeRef) {
	n.left.collect(out)
	n.right.collect(out)
}

type notNode struct{ inner compositeNode }

func (n *notNode) eval(res CompositeResolver) (bool, error) {
	v, err := n.inner.eval(res)
	return !v, err
}

func (n *notNode) render() string              { return "!" + n.inner.render() }
func (n *notNode) collect(out *[]CompositeRef) { n.inner.collect(out) }

type refNode struct{ ref CompositeRef }

func (n *refNode) eval(res CompositeResolver) (bool, error) {
	r := n.ref
	if r.Op != "" || r.WantValue {
		value, found := res.ConfigValue(r.Entity, r.Key, r.Section)
		if r.Op == "" {
			// Bare CONFIGPATH...VALUE ref: truthy when a non-empty value exists.
			return found && value != "", nil
		}
		if !found {
			// A missing key never equals a literal; != treats missing as true.
			return r.Op == "!=", nil
		}
		if r.Op == "==" {
			return value == r.Literal, nil
		}
		return value != r.Literal, nil
	}
	if passed, found := res.RuleResult(r.Entity, r.Key); found {
		return passed, nil
	}
	// Fallback: configuration-key existence.
	_, found := res.ConfigValue(r.Entity, r.Key, "")
	return found, nil
}

func (n *refNode) render() string              { return n.ref.render() }
func (n *refNode) collect(out *[]CompositeRef) { *out = append(*out, n.ref) }

// ParseComposite parses a composite-rule expression.
func ParseComposite(src string) (*CompositeExpr, error) {
	p := &compositeParser{src: src}
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("cvl: composite_rule: unexpected input at %q", p.src[p.pos:])
	}
	return &CompositeExpr{root: root, src: src}, nil
}

type compositeParser struct {
	src string
	pos int
}

func (p *compositeParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *compositeParser) errf(format string, args ...any) error {
	return fmt.Errorf("cvl: composite_rule: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *compositeParser) parseOr() (compositeNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.consume("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: "||", left: left, right: right}
	}
	return left, nil
}

func (p *compositeParser) parseAnd() (compositeNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.consume("&&") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &binaryNode{op: "&&", left: left, right: right}
	}
	return left, nil
}

func (p *compositeParser) parseUnary() (compositeNode, error) {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '!' && !strings.HasPrefix(p.src[p.pos:], "!=") {
		p.pos++
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &notNode{inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *compositeParser) parsePrimary() (compositeNode, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, p.errf("unexpected end of expression")
	}
	if p.src[p.pos] == '(' {
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, p.errf("missing ')'")
		}
		p.pos++
		return inner, nil
	}
	ref, err := p.parseRef()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.consume("==") {
		ref.Op = "=="
	} else if p.consume("!=") {
		ref.Op = "!="
	}
	if ref.Op != "" {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		ref.Literal = lit
	}
	return &refNode{ref: ref}, nil
}

// parseRef reads entity '.' key ('.CONFIGPATH=[' section '].VALUE')?.
func (p *compositeParser) parseRef() (CompositeRef, error) {
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if isRefChar(c) {
			p.pos++
			continue
		}
		// '=' is part of the ref only in the CONFIGPATH=[...] form.
		if c == '=' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '[' {
			p.pos++
			continue
		}
		break
	}
	raw := p.src[start:p.pos]
	if raw == "" {
		return CompositeRef{}, p.errf("expected an entity reference")
	}
	dot := strings.IndexByte(raw, '.')
	if dot <= 0 || dot == len(raw)-1 {
		return CompositeRef{}, p.errf("reference %q must be entity.key", raw)
	}
	ref := CompositeRef{Entity: raw[:dot]}
	rest := raw[dot+1:]
	const marker = ".CONFIGPATH=["
	if idx := strings.Index(rest, marker); idx >= 0 {
		tail := rest[idx+len(marker):]
		end := strings.Index(tail, "].VALUE")
		if end < 0 || end+len("].VALUE") != len(tail) {
			return CompositeRef{}, p.errf("reference %q: CONFIGPATH form must end with '].VALUE'", raw)
		}
		ref.Key = rest[:idx]
		ref.Section = tail[:end]
		ref.WantValue = true
	} else {
		ref.Key = rest
	}
	if ref.Key == "" {
		return CompositeRef{}, p.errf("reference %q has an empty key", raw)
	}
	return ref, nil
}

func (p *compositeParser) parseLiteral() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", p.errf("expected a literal after comparison operator")
	}
	c := p.src[p.pos]
	if c == '"' || c == '\'' {
		end := strings.IndexByte(p.src[p.pos+1:], c)
		if end < 0 {
			return "", p.errf("unterminated literal")
		}
		lit := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return lit, nil
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == ')' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("expected a literal")
	}
	return p.src[start:p.pos], nil
}

func (p *compositeParser) consume(op string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], op) {
		p.pos += len(op)
		return true
	}
	return false
}

func isRefChar(c byte) bool {
	return c == '.' || c == '-' || c == '_' || c == '/' || c == '[' || c == ']' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}
