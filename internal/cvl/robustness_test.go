package cvl

import (
	"math/rand"
	"testing"
)

// TestCompositeParserNoPanic throws random operator soup at the composite
// expression parser.
func TestCompositeParserNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	tokens := []string{
		"a.b", "x.y.z", "mysql.ssl-ca.CONFIGPATH=[mysqld].VALUE",
		"&&", "||", "!", "(", ")", "==", "!=", `"lit"`, "'l'", "bare",
		".", "..", "[", "]", "=", " ",
	}
	for i := 0; i < 3000; i++ {
		var src string
		for j := 0; j < 1+r.Intn(10); j++ {
			src += tokens[r.Intn(len(tokens))]
			if r.Intn(2) == 0 {
				src += " "
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", src, p)
				}
			}()
			_, _ = ParseComposite(src)
		}()
	}
}

// TestRuleParserNoPanic mutates valid rule documents.
func TestRuleParserNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(56))
	seeds := []string{listing1, listing2, listing3, listing4}
	alphabet := []byte("abc:-[]{}#'\"\n\t _,")
	for i := 0; i < 1500; i++ {
		input := []byte(seeds[r.Intn(len(seeds))])
		for j := 0; j < 1+r.Intn(6); j++ {
			pos := r.Intn(len(input))
			input[pos] = alphabet[r.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated rule: %v\n%s", p, input)
				}
			}()
			_, _ = ParseRuleFile("fuzz.yaml", input)
			_ = Lint("fuzz.yaml", input)
		}()
	}
}
