package cvl

import (
	"reflect"
	"strings"
	"testing"
)

// equivalentRules compares the semantic fields of two rules (ignoring
// Source/Line provenance).
func equivalentRules(a, b *Rule) bool {
	ca, cb := *a, *b
	ca.Source, cb.Source = "", ""
	ca.Line, cb.Line = 0, 0
	// Composite expressions compare by canonical rendering.
	if (ca.CompositeExpr == nil) != (cb.CompositeExpr == nil) {
		return false
	}
	if ca.CompositeExpr != nil {
		if ca.CompositeExpr.String() != cb.CompositeExpr.String() {
			return false
		}
		ca.CompositeExpr, cb.CompositeExpr = nil, nil
	}
	if (ca.Exists == nil) != (cb.Exists == nil) {
		return false
	}
	if ca.Exists != nil {
		if *ca.Exists != *cb.Exists {
			return false
		}
		ca.Exists, cb.Exists = nil, nil
	}
	return reflect.DeepEqual(ca, cb)
}

func TestFormatParseRoundTripListings(t *testing.T) {
	for _, src := range []string{listing1, listing2, listing3, listing4} {
		rf, err := ParseRuleFile("in.yaml", []byte(src))
		if err != nil {
			t.Fatal(err)
		}
		orig := rf.Rules[0]
		formatted, err := FormatRule(orig)
		if err != nil {
			t.Fatalf("format: %v", err)
		}
		back, err := ParseRuleFile("out.yaml", formatted)
		if err != nil {
			t.Fatalf("re-parse: %v\n%s", err, formatted)
		}
		if len(back.Rules) != 1 || !equivalentRules(orig, back.Rules[0]) {
			t.Errorf("round trip changed rule %q:\nformatted:\n%s\noriginal: %+v\nre-parsed: %+v",
				orig.Name, formatted, orig, back.Rules[0])
		}
	}
}

func TestFormatRuleFileWithParent(t *testing.T) {
	rf, err := ParseRuleFile("in.yaml", []byte(listing2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatRuleFile("base/nginx.yaml", rf.Rules)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRuleFile("out.yaml", out)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, out)
	}
	if back.Parent != "base/nginx.yaml" || len(back.Rules) != 1 {
		t.Errorf("parent = %q rules = %d", back.Parent, len(back.Rules))
	}
}

func TestFormatPermissionOctal(t *testing.T) {
	rf, err := ParseRuleFile("in.yaml", []byte(listing4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatRule(rf.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `permission: "644"`) {
		t.Errorf("octal permission not preserved:\n%s", out)
	}
}

func TestFormatExistsRule(t *testing.T) {
	rf, err := ParseRuleFile("in.yaml", []byte("path_name: /etc/hosts.equiv\nexists: false\n"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := FormatRule(rf.Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRuleFile("out.yaml", out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rules[0].Exists == nil || *back.Rules[0].Exists {
		t.Errorf("exists lost:\n%s", out)
	}
}
