package cvl

import (
	"strconv"

	"configvalidator/internal/yaml"
)

// FormatRule renders a rule back to CVL YAML. The output parses to an
// equivalent rule (checked by property tests), with keys emitted in the
// conventional order of the paper's listings.
func FormatRule(r *Rule) ([]byte, error) {
	m := yaml.NewMap()
	nameKW := typeNameKeyword[r.Type]
	m.Set(nameKW, r.Name)
	if r.Description != "" {
		m.Set(descriptionKeyword(r.Type), r.Description)
	}
	if len(r.Tags) > 0 {
		m.Set("tags", toAny(r.Tags))
	}
	if r.Severity != "" {
		m.Set("severity", r.Severity)
	}
	if r.Override {
		m.Set("override", true)
	}
	if r.Disabled {
		m.Set("disabled", true)
	}
	if len(r.AppliesTo) > 0 {
		m.Set("applies_to", toAny(r.AppliesTo))
	}

	switch r.Type {
	case TypeTree:
		if len(r.ConfigPath) > 0 {
			m.Set("config_path", toAny(r.ConfigPath))
		}
		if len(r.FileContext) > 0 {
			m.Set("file_context", toAny(r.FileContext))
		}
		if len(r.RequireOtherConfigs) > 0 {
			m.Set("require_other_configs", toAny(r.RequireOtherConfigs))
		}
		if r.ValueSeparator != "" {
			m.Set("value_separator", r.ValueSeparator)
		}
		if r.CaseInsensitive {
			m.Set("case_insensitive", true)
		}
		if r.Occurrence != "" {
			m.Set("occurrence", r.Occurrence)
		}
		if r.AbsentPass {
			m.Set("absent_pass", true)
		}
	case TypeSchema:
		if r.QueryConstraints != "" {
			m.Set("query_constraints", r.QueryConstraints)
		}
		if len(r.QueryConstraintsValue) > 0 {
			m.Set("query_constraints_value", toAny(r.QueryConstraintsValue))
		}
		if len(r.QueryColumns) > 0 {
			m.Set("query_columns", toAny(r.QueryColumns))
		}
		if r.ExpectRows != "" {
			m.Set("expect_rows", r.ExpectRows)
		}
	case TypePath:
		if r.Ownership != "" {
			m.Set("ownership", r.Ownership)
		}
		if r.Permission >= 0 {
			m.Set("permission", octalString(r.Permission))
		}
		if r.MaxPermission >= 0 {
			m.Set("max_permission", octalString(r.MaxPermission))
		}
		if r.Exists != nil {
			m.Set("exists", *r.Exists)
		}
	case TypeScript:
		m.Set("script_feature", r.ScriptFeature)
	case TypeComposite:
		if r.CompositeExpr != nil {
			m.Set("composite_rule", r.CompositeExpr.String())
		}
	}

	if len(r.PreferredValue) > 0 {
		m.Set("preferred_value", toAny(r.PreferredValue))
	}
	if !r.PreferredMatch.IsZero() {
		m.Set("preferred_value_match", r.PreferredMatch.String())
	}
	if len(r.NonPreferredValue) > 0 {
		m.Set("non_preferred_value", toAny(r.NonPreferredValue))
	}
	if !r.NonPreferredMatch.IsZero() {
		m.Set("non_preferred_value_match", r.NonPreferredMatch.String())
	}
	if r.MatchedDescription != "" {
		m.Set("matched_description", r.MatchedDescription)
	}
	if r.NotMatchedDescription != "" {
		m.Set("not_matched_preferred_value_description", r.NotMatchedDescription)
	}
	if r.NotPresentDescription != "" {
		m.Set("not_present_description", r.NotPresentDescription)
	}
	if r.SuggestedAction != "" {
		m.Set("suggested_action", r.SuggestedAction)
	}
	return yaml.Encode(m)
}

// FormatRuleFile renders a rule list (and optional parent reference) as a
// multi-document CVL file.
func FormatRuleFile(parent string, rules []*Rule) ([]byte, error) {
	var out []byte
	if parent != "" {
		m := yaml.NewMap()
		m.Set("parent_cvl_file", parent)
		enc, err := yaml.Encode(m)
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	for _, r := range rules {
		if len(out) > 0 {
			out = append(out, []byte("---\n")...)
		}
		enc, err := FormatRule(r)
		if err != nil {
			return nil, err
		}
		out = append(out, enc...)
	}
	return out, nil
}

// descriptionKeyword returns the type-specific description keyword, so
// formatted rules read like the paper's listings.
func descriptionKeyword(t RuleType) string {
	switch t {
	case TypeTree:
		return "config_description"
	case TypeSchema:
		return "config_schema_description"
	case TypePath:
		return "path_description"
	case TypeScript:
		return "script_description"
	case TypeComposite:
		return "composite_rule_description"
	default:
		return "description"
	}
}

// octalString renders a permission in the conventional octal digits
// ("644") that setOctal parses back.
func octalString(perm int) string {
	return strconv.FormatInt(int64(perm), 8)
}

func toAny(in []string) []any {
	out := make([]any, len(in))
	for i, s := range in {
		out[i] = s
	}
	return out
}
