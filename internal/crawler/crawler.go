// Package crawler implements the Config Extractor stage of ConfigValidator
// (§3.1): it walks an entity's configuration search paths, selects a lens
// for each discovered file, and produces normalized configuration data plus
// the file metadata that path rules assert on. It is the Go analogue of the
// agentless system crawler the paper builds on [1].
package crawler

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sort"

	"configvalidator/internal/entity"
	"configvalidator/internal/faults"
	"configvalidator/internal/lens"
)

// FileConfig is one discovered configuration file, normalized.
type FileConfig struct {
	// Path is the file's path inside the entity.
	Path string
	// LensName is the lens that parsed the file.
	LensName string
	// Result is the normalized tree or table; nil when Err is set.
	Result *lens.Result
	// Info is the file's metadata.
	Info entity.FileInfo
	// Err records a parse failure; the rule engine surfaces it as an
	// error-grade validation result rather than aborting the scan.
	Err error
}

// Options tune a crawl.
type Options struct {
	// MaxFileSize skips files larger than this many bytes (0 = 16 MiB).
	MaxFileSize int64
	// IncludeUnrecognized records files with no matching lens (with a nil
	// Result); by default they are skipped silently.
	IncludeUnrecognized bool
	// Faults arms fault injection on lens parsing (faults.OpParse). Nil —
	// the production default — is inert and costs one nil check.
	Faults *faults.Injector
	// Cache is an optional content-addressed parse cache shared across
	// every entity crawled through this crawler: identical file content
	// (by lens, path, and SHA-256) parses once fleet-wide. Nil disables
	// caching.
	Cache *ParseCache
}

// Crawler extracts configuration from entities using a lens registry.
type Crawler struct {
	registry *lens.Registry
	opts     Options
}

// New creates a crawler. A nil registry uses lens.Default().
func New(registry *lens.Registry, opts Options) *Crawler {
	if registry == nil {
		registry = lens.Default()
	}
	if opts.MaxFileSize == 0 {
		opts.MaxFileSize = 16 << 20
	}
	return &Crawler{registry: registry, opts: opts}
}

// Registry exposes the lens registry the crawler uses.
func (c *Crawler) Registry() *lens.Registry { return c.registry }

// CrawlPaths walks each search path on the entity and normalizes every
// recognized configuration file. Missing search paths are skipped (an
// entity without /etc/mysql simply has no MySQL configuration). Files are
// returned sorted by path, deduplicated across overlapping search paths.
//
// Failure granularity: a per-file problem (unreadable, oversized, or
// unparseable content, including a panicking lens) degrades that one
// FileConfig via its Err field and the crawl continues; a Walk failure is
// an entity-access failure (unreachable layer, flaky backend) and aborts
// with an error so the fleet's transient-retry policy can decide whether
// to re-scan the whole entity.
func (c *Crawler) CrawlPaths(e entity.Entity, searchPaths []string) ([]*FileConfig, error) {
	seen := make(map[string]bool)
	var out []*FileConfig
	for _, root := range searchPaths {
		err := e.Walk(root, func(fi entity.FileInfo) error {
			if seen[fi.Path] || fi.IsDir() {
				return nil
			}
			seen[fi.Path] = true
			fc := c.crawlFile(e, fi)
			if fc != nil {
				out = append(out, fc)
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, entity.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("crawl %s: %w", root, err)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

func (c *Crawler) crawlFile(e entity.Entity, fi entity.FileInfo) *FileConfig {
	l, ok := c.registry.ForFile(fi.Path)
	if !ok {
		if c.opts.IncludeUnrecognized {
			return &FileConfig{Path: fi.Path, Info: fi}
		}
		return nil
	}
	fc := &FileConfig{Path: fi.Path, LensName: l.Name(), Info: fi}
	if fi.Size > c.opts.MaxFileSize {
		fc.Err = fmt.Errorf("crawler: %s: file size %d exceeds limit %d", fi.Path, fi.Size, c.opts.MaxFileSize)
		return fc
	}
	c.readAndParse(e, fi, l, fc)
	return fc
}

// readAndParse fills fc from the entity. It is isolated per file: a
// panicking ReadFile or lens — a corrupt input hitting a parser bug —
// degrades this one file (fc.Err) instead of aborting the entity scan.
func (c *Crawler) readAndParse(e entity.Entity, fi entity.FileInfo, l lens.Lens, fc *FileConfig) {
	defer func() {
		if r := recover(); r != nil {
			fc.Result = nil
			fc.Err = fmt.Errorf("crawler: %s: read/parse panicked: %v", fi.Path, r)
		}
	}()
	content, err := e.ReadFile(fi.Path)
	if err != nil {
		fc.Err = fmt.Errorf("crawler: read %s: %w", fi.Path, err)
		return
	}
	// Fault injection is consulted before the cache so chaos drills hit
	// the same injection points whether or not a scan runs cache-warm.
	if err := c.opts.Faults.Check(faults.OpParse, fi.Path); err != nil {
		fc.Err = fmt.Errorf("crawler: parse %s: %w", fi.Path, err)
		return
	}
	if c.opts.Cache != nil {
		sum := sha256.Sum256(content)
		if res, ok := c.opts.Cache.get(l.Name(), fi.Path, sum); ok {
			fc.Result = res
			return
		}
		res, err := l.Parse(fi.Path, content)
		if err != nil {
			fc.Err = err
			return
		}
		c.opts.Cache.put(l.Name(), fi.Path, sum, res)
		fc.Result = res
		return
	}
	res, err := l.Parse(fi.Path, content)
	if err != nil {
		fc.Err = err
		return
	}
	fc.Result = res
}
