package crawler

import (
	"strings"
	"testing"

	"configvalidator/internal/entity"
	"configvalidator/internal/lens"
)

func testEntity() *entity.Mem {
	m := entity.NewMem("host", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no\n"), entity.WithMode(0o600))
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 0\n"))
	m.AddFile("/etc/nginx/nginx.conf", []byte("user www-data;\nhttp {\n  server {\n    listen 443 ssl;\n  }\n}\n"))
	m.AddFile("/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"))
	m.AddFile("/etc/motd", []byte("welcome\n")) // no lens
	m.AddFile("/etc/bad/nginx/nginx.conf", []byte("server {\n"))
	return m
}

func TestCrawlPaths(t *testing.T) {
	c := New(nil, Options{})
	configs, err := c.CrawlPaths(testEntity(), []string{"/etc"})
	if err != nil {
		t.Fatal(err)
	}
	byPath := make(map[string]*FileConfig, len(configs))
	for _, fc := range configs {
		byPath[fc.Path] = fc
	}
	sshd, ok := byPath["/etc/ssh/sshd_config"]
	if !ok || sshd.LensName != "sshd" || sshd.Err != nil {
		t.Fatalf("sshd config = %+v", sshd)
	}
	if v, _ := sshd.Result.Tree.ValueAt("PermitRootLogin"); v != "no" {
		t.Errorf("PermitRootLogin = %q", v)
	}
	fstab, ok := byPath["/etc/fstab"]
	if !ok || fstab.Result.Kind != lens.KindSchema {
		t.Fatalf("fstab = %+v", fstab)
	}
	if _, ok := byPath["/etc/motd"]; ok {
		t.Error("unrecognized file included by default")
	}
	// Metadata captured.
	if sshd.Info.Perm() != 0o600 {
		t.Errorf("sshd perm = %o", sshd.Info.Perm())
	}
	// Broken file recorded with error, not dropped, not fatal.
	bad, ok := byPath["/etc/bad/nginx/nginx.conf"]
	if !ok || bad.Err == nil || bad.Result != nil {
		t.Errorf("broken config = %+v", bad)
	}
}

func TestCrawlMissingAndOverlappingPaths(t *testing.T) {
	c := New(nil, Options{})
	configs, err := c.CrawlPaths(testEntity(), []string{"/etc/ssh", "/etc/ssh", "/etc", "/no/such/dir"})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, fc := range configs {
		if fc.Path == "/etc/ssh/sshd_config" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("sshd_config crawled %d times", count)
	}
}

func TestCrawlSortedOutput(t *testing.T) {
	c := New(nil, Options{})
	configs, err := c.CrawlPaths(testEntity(), []string{"/etc"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(configs); i++ {
		if configs[i-1].Path >= configs[i].Path {
			t.Errorf("output not sorted at %d: %s >= %s", i, configs[i-1].Path, configs[i].Path)
		}
	}
}

func TestCrawlIncludeUnrecognized(t *testing.T) {
	c := New(nil, Options{IncludeUnrecognized: true})
	configs, err := c.CrawlPaths(testEntity(), []string{"/etc"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fc := range configs {
		if fc.Path == "/etc/motd" && fc.Result == nil && fc.Err == nil {
			found = true
		}
	}
	if !found {
		t.Error("unrecognized file not included")
	}
}

func TestCrawlMaxFileSize(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/sysctl.conf", []byte(strings.Repeat("net.ipv4.ip_forward = 0\n", 100)))
	c := New(nil, Options{MaxFileSize: 10})
	configs, err := c.CrawlPaths(m, []string{"/etc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 || configs[0].Err == nil {
		t.Errorf("oversized file handling = %+v", configs)
	}
	if !strings.Contains(configs[0].Err.Error(), "exceeds limit") {
		t.Errorf("err = %v", configs[0].Err)
	}
}

func TestCrawlFilePathDirectly(t *testing.T) {
	// A search path can be a single file, as manifests sometimes list the
	// exact config file.
	c := New(nil, Options{})
	configs, err := c.CrawlPaths(testEntity(), []string{"/etc/sysctl.conf"})
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 || configs[0].LensName != "sysctl" {
		t.Errorf("configs = %+v", configs)
	}
}

func TestDefaultRegistryUsedWhenNil(t *testing.T) {
	c := New(nil, Options{})
	if c.Registry() == nil {
		t.Fatal("nil registry")
	}
	if _, ok := c.Registry().ByName("nginx"); !ok {
		t.Error("default registry missing nginx lens")
	}
}
