package crawler

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"testing"

	"configvalidator/internal/entity"
	"configvalidator/internal/lens"
)

type countingMetrics struct {
	mu                      sync.Mutex
	hits, misses, evictions int
}

func (m *countingMetrics) ParseCacheHit() {
	m.mu.Lock()
	m.hits++
	m.mu.Unlock()
}

func (m *countingMetrics) ParseCacheMiss() {
	m.mu.Lock()
	m.misses++
	m.mu.Unlock()
}

func (m *countingMetrics) ParseCacheEviction() {
	m.mu.Lock()
	m.evictions++
	m.mu.Unlock()
}

func treeResult(label string) *lens.Result {
	return &lens.Result{Kind: lens.KindTree}
}

func TestParseCacheLRUEviction(t *testing.T) {
	c := NewParseCache(2)
	m := &countingMetrics{}
	c.SetMetrics(m)
	sum := func(s string) [sha256.Size]byte { return sha256.Sum256([]byte(s)) }

	c.put("ini", "/a", sum("a"), treeResult("a"))
	c.put("ini", "/b", sum("b"), treeResult("b"))
	if _, ok := c.get("ini", "/a", sum("a")); !ok {
		t.Fatal("a missing after insert")
	}
	// a is now most recently used; inserting c must evict b.
	c.put("ini", "/c", sum("c"), treeResult("c"))
	if _, ok := c.get("ini", "/b", sum("b")); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.get("ini", "/a", sum("a")); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if _, ok := c.get("ini", "/c", sum("c")); !ok {
		t.Fatal("newest entry c missing")
	}

	stats := c.Stats()
	if stats.Entries != 2 || stats.Capacity != 2 {
		t.Errorf("entries/capacity = %d/%d, want 2/2", stats.Entries, stats.Capacity)
	}
	if stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", stats.Evictions)
	}
	if stats.Hits != 3 || stats.Misses != 1 {
		t.Errorf("hits/misses = %d/%d, want 3/1", stats.Hits, stats.Misses)
	}
	if m.hits != 3 || m.misses != 1 || m.evictions != 1 {
		t.Errorf("metrics sink saw hits=%d misses=%d evictions=%d, want 3/1/1", m.hits, m.misses, m.evictions)
	}
}

func TestParseCacheKeyDiscriminates(t *testing.T) {
	c := NewParseCache(10)
	sum := sha256.Sum256([]byte("same content"))
	c.put("ini", "/etc/my.cnf", sum, treeResult("x"))
	// Same content under a different lens or path is a different parse:
	// lenses embed the source path in their output.
	if _, ok := c.get("keyvalue", "/etc/my.cnf", sum); ok {
		t.Error("cache conflated two lenses for the same content")
	}
	if _, ok := c.get("ini", "/etc/other.cnf", sum); ok {
		t.Error("cache conflated two paths for the same content")
	}
	if _, ok := c.get("ini", "/etc/my.cnf", sha256.Sum256([]byte("other content"))); ok {
		t.Error("cache conflated two contents for the same path")
	}
}

func TestParseCacheNilSafety(t *testing.T) {
	var c *ParseCache
	sum := sha256.Sum256([]byte("x"))
	if _, ok := c.get("ini", "/a", sum); ok {
		t.Error("nil cache reported a hit")
	}
	c.put("ini", "/a", sum, treeResult("a")) // must not panic
	c.SetMetrics(&countingMetrics{})         // must not panic
	if s := c.Stats(); s != (ParseCacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", s)
	}
}

// TestCrawlerSharesCachedResult proves the fleet-dedup property end to
// end: two entities carrying byte-identical files share one parsed
// Result, and differing content does not.
func TestCrawlerSharesCachedResult(t *testing.T) {
	cache := NewParseCache(0)
	c := New(nil, Options{Cache: cache})

	shared := []byte("Port 22\nPermitRootLogin no\n")
	e1 := entity.NewMem("host-1", entity.TypeHost)
	e1.AddFile("/etc/ssh/sshd_config", shared)
	e2 := entity.NewMem("host-2", entity.TypeHost)
	e2.AddFile("/etc/ssh/sshd_config", shared)
	e3 := entity.NewMem("host-3", entity.TypeHost)
	e3.AddFile("/etc/ssh/sshd_config", []byte("Port 2222\n"))

	crawl := func(e entity.Entity) *FileConfig {
		t.Helper()
		out, err := c.CrawlPaths(e, []string{"/etc/ssh"})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("crawled %d files, want 1", len(out))
		}
		return out[0]
	}
	fc1, fc2, fc3 := crawl(e1), crawl(e2), crawl(e3)
	if fc1.Result != fc2.Result {
		t.Error("identical content across entities did not share one parsed Result")
	}
	if fc1.Result == fc3.Result {
		t.Error("different content shared a parsed Result")
	}
	stats := cache.Stats()
	if stats.Hits != 1 || stats.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 1/2", stats.Hits, stats.Misses)
	}
}

// TestCrawlerCacheSkipsParseErrors pins that failed parses are never
// cached: errors must be re-derived per occurrence so each report carries
// its own attribution.
func TestCrawlerCacheSkipsParseErrors(t *testing.T) {
	cache := NewParseCache(0)
	c := New(nil, Options{Cache: cache})
	bad := entity.NewMem("bad", entity.TypeHost)
	bad.AddFile("/etc/fstab", []byte("only two\n"))
	for i := 0; i < 2; i++ {
		out, err := c.CrawlPaths(bad, []string{"/etc/fstab"})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0].Err == nil {
			t.Fatalf("pass %d: expected one degraded file, got %+v", i, out)
		}
	}
	if stats := cache.Stats(); stats.Entries != 0 {
		t.Errorf("parse errors were cached: %d entries", stats.Entries)
	}
}

func TestParseCacheConcurrentAccess(t *testing.T) {
	cache := NewParseCache(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("/f%d", i%16)
				sum := sha256.Sum256([]byte(key))
				if _, ok := cache.get("ini", key, sum); !ok {
					cache.put("ini", key, sum, treeResult(key))
				}
			}
		}(w)
	}
	wg.Wait()
	stats := cache.Stats()
	if stats.Entries > 8 {
		t.Errorf("cache exceeded capacity: %d entries", stats.Entries)
	}
	if stats.Hits+stats.Misses != 8*200 {
		t.Errorf("lookups = %d, want %d", stats.Hits+stats.Misses, 8*200)
	}
}
