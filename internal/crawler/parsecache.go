package crawler

import (
	"container/list"
	"crypto/sha256"
	"sync"

	"configvalidator/internal/lens"
)

// CacheMetrics receives parse-cache events. *telemetry.Collector implements
// it; the interface lives here so the crawler does not import telemetry
// (which would cycle through the engine).
type CacheMetrics interface {
	ParseCacheHit()
	ParseCacheMiss()
	ParseCacheEviction()
}

// parseKey addresses one cached parse: the lens that produced it, the file
// path inside the entity, and the SHA-256 of the raw content. The content
// hash is what makes the cache fleet-scoped — identical files across
// thousands of images (the common case for /etc payloads, per ConfEx's
// cloud-scale observation) collapse to one parse. The path participates in
// the key because lenses embed the source path into the normalized output
// (tree roots, table File fields), so one content parsed under two names
// must not share a Result.
type parseKey struct {
	lens string
	path string
	sum  [sha256.Size]byte
}

// ParseCache is a bounded, content-addressed cache of normalized parse
// results, shared across every entity scanned through one crawler — the
// fleet-wide deduplication layer. Safe for concurrent use by any number of
// fleet workers and intra-entity rule evaluators.
//
// Cached Results are shared and must be treated as immutable; the rule
// engine only queries them. Eviction is LRU by entry count.
type ParseCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[parseKey]*list.Element

	hits, misses, evictions int64

	metrics CacheMetrics
}

type parseCacheEntry struct {
	key parseKey
	res *lens.Result
}

// DefaultParseCacheSize bounds a cache constructed with capacity <= 0.
const DefaultParseCacheSize = 4096

// NewParseCache creates a cache holding at most capacity parsed files;
// capacity <= 0 uses DefaultParseCacheSize.
func NewParseCache(capacity int) *ParseCache {
	if capacity <= 0 {
		capacity = DefaultParseCacheSize
	}
	return &ParseCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[parseKey]*list.Element),
	}
}

// SetMetrics attaches a metrics sink for hit/miss/eviction counters. A nil
// sink (the default) keeps counting internally only.
func (c *ParseCache) SetMetrics(m CacheMetrics) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.metrics = m
	c.mu.Unlock()
}

// get returns the cached result for (lensName, path, content-sum), if any.
// The caller hashes once and reuses the sum for the paired put.
func (c *ParseCache) get(lensName, path string, sum [sha256.Size]byte) (*lens.Result, bool) {
	if c == nil {
		return nil, false
	}
	key := parseKey{lens: lensName, path: path, sum: sum}
	c.mu.Lock()
	el, ok := c.entries[key]
	var m CacheMetrics
	var res *lens.Result
	if ok {
		c.ll.MoveToFront(el)
		c.hits++
		res = el.Value.(*parseCacheEntry).res
	} else {
		c.misses++
	}
	m = c.metrics
	c.mu.Unlock()
	if m != nil {
		if ok {
			m.ParseCacheHit()
		} else {
			m.ParseCacheMiss()
		}
	}
	return res, ok
}

// put stores a parse result, evicting the least recently used entry when
// the cache is full. Parse failures are never cached: an error must be
// re-derived (and re-attributed) per file occurrence.
func (c *ParseCache) put(lensName, path string, sum [sha256.Size]byte, res *lens.Result) {
	if c == nil || res == nil {
		return
	}
	key := parseKey{lens: lensName, path: path, sum: sum}
	var m CacheMetrics
	var evicted bool
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// Lost a race with a concurrent parse of the same content; keep
		// the incumbent so every sharer sees one canonical Result.
		c.ll.MoveToFront(el)
	} else {
		el = c.ll.PushFront(&parseCacheEntry{key: key, res: res})
		c.entries[key] = el
		if c.ll.Len() > c.capacity {
			oldest := c.ll.Back()
			c.ll.Remove(oldest)
			delete(c.entries, oldest.Value.(*parseCacheEntry).key)
			c.evictions++
			evicted = true
		}
	}
	m = c.metrics
	c.mu.Unlock()
	if evicted && m != nil {
		m.ParseCacheEviction()
	}
}

// ParseCacheStats is a point-in-time copy of a cache's counters.
type ParseCacheStats struct {
	// Hits and Misses count lookups; Evictions counts entries dropped at
	// capacity. Entries and Capacity describe current occupancy.
	Hits, Misses, Evictions int64
	Entries, Capacity       int
}

// Stats copies the current counters.
func (c *ParseCache) Stats() ParseCacheStats {
	if c == nil {
		return ParseCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return ParseCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
	}
}
