package crawler

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

// FeaturePlugin synthesizes a runtime feature from an entity's observable
// state — the Go analogue of the crawler's "application-specific plugins
// to extract runtime state" (paper §3.1). Plugins answer script rules on
// entities that cannot execute commands themselves (host directories,
// frames, tar archives): for example, deriving MySQL's SSL status from
// my.cnf when live `SHOW VARIABLES` output is unavailable.
type FeaturePlugin struct {
	// Name is the feature the plugin provides, e.g. "mysql.ssl".
	Name string
	// Synthesize derives the feature output from entity state. Returning
	// an error wrapping entity.ErrNoFeature means the plugin does not
	// apply to this entity.
	Synthesize func(e entity.Entity) (string, error)
}

// WithPlugins wraps an entity so that RunFeature falls back to the given
// plugins when the entity itself cannot answer. Native features always
// win: a live container's real docker.inspect output beats any synthesis.
func WithPlugins(e entity.Entity, plugins ...FeaturePlugin) entity.Entity {
	if len(plugins) == 0 {
		return e
	}
	byName := make(map[string]FeaturePlugin, len(plugins))
	for _, p := range plugins {
		byName[p.Name] = p
	}
	return &pluginEntity{base: e, plugins: byName}
}

type pluginEntity struct {
	base    entity.Entity
	plugins map[string]FeaturePlugin
}

var _ entity.Entity = (*pluginEntity)(nil)

// Name implements entity.Entity.
func (p *pluginEntity) Name() string { return p.base.Name() }

// Type implements entity.Entity.
func (p *pluginEntity) Type() entity.Type { return p.base.Type() }

// ReadFile implements entity.Entity.
func (p *pluginEntity) ReadFile(path string) ([]byte, error) { return p.base.ReadFile(path) }

// Stat implements entity.Entity.
func (p *pluginEntity) Stat(path string) (entity.FileInfo, error) { return p.base.Stat(path) }

// Walk implements entity.Entity.
func (p *pluginEntity) Walk(root string, fn func(entity.FileInfo) error) error {
	return p.base.Walk(root, fn)
}

// Packages implements entity.Entity.
func (p *pluginEntity) Packages() (*pkgdb.DB, error) { return p.base.Packages() }

// RunFeature implements entity.Entity: native first, then synthesis.
func (p *pluginEntity) RunFeature(name string) (string, error) {
	out, err := p.base.RunFeature(name)
	if err == nil {
		return out, nil
	}
	if !errors.Is(err, entity.ErrNoFeature) {
		return "", err
	}
	plugin, ok := p.plugins[name]
	if !ok {
		return "", err
	}
	return plugin.Synthesize(p.base)
}

// Features implements entity.Entity: the union of native features and
// plugins that apply to this entity.
func (p *pluginEntity) Features() []string {
	seen := make(map[string]bool)
	var out []string
	for _, f := range p.base.Features() {
		seen[f] = true
		out = append(out, f)
	}
	for name, plugin := range p.plugins {
		if seen[name] {
			continue
		}
		if _, err := plugin.Synthesize(p.base); err == nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// DefaultPlugins returns the built-in synthesis plugins, mirroring the
// crawler plugins the paper mentions for applications like MySQL.
func DefaultPlugins() []FeaturePlugin {
	return []FeaturePlugin{MySQLSSLPlugin(), SysctlRuntimePlugin()}
}

// MySQLSSLPlugin synthesizes the "mysql.ssl" feature (the `have_ssl`
// server variable) from the server configuration: SSL is considered
// available when ssl-ca and ssl-cert are configured.
func MySQLSSLPlugin() FeaturePlugin {
	return FeaturePlugin{
		Name: "mysql.ssl",
		Synthesize: func(e entity.Entity) (string, error) {
			for _, path := range []string{"/etc/mysql/my.cnf", "/etc/mysql/mysql.conf.d/mysqld.cnf"} {
				content, err := e.ReadFile(path)
				if err != nil {
					continue
				}
				text := string(content)
				if strings.Contains(text, "ssl-ca") && strings.Contains(text, "ssl-cert") {
					return "have_ssl YES\nhave_openssl YES\n", nil
				}
				return "have_ssl DISABLED\nhave_openssl DISABLED\n", nil
			}
			return "", fmt.Errorf("%w: mysql.ssl (no MySQL configuration found)", entity.ErrNoFeature)
		},
	}
}

// SysctlRuntimePlugin synthesizes "sysctl.runtime" — the `sysctl -a`
// analogue — from the persisted sysctl configuration. The paper (§2.1.3)
// notes sysctl.conf typically holds only a subset of the parameters
// `sysctl -a` reports; a synthesized view is correspondingly partial, and
// consumers needing the full runtime set must use a live feature.
func SysctlRuntimePlugin() FeaturePlugin {
	return FeaturePlugin{
		Name: "sysctl.runtime",
		Synthesize: func(e entity.Entity) (string, error) {
			content, err := e.ReadFile("/etc/sysctl.conf")
			if err != nil {
				return "", fmt.Errorf("%w: sysctl.runtime (no sysctl.conf)", entity.ErrNoFeature)
			}
			var b strings.Builder
			for _, line := range strings.Split(string(content), "\n") {
				line = strings.TrimSpace(line)
				if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
					continue
				}
				b.WriteString(line)
				b.WriteByte('\n')
			}
			return b.String(), nil
		},
	}
}
