package crawler

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"configvalidator/internal/entity"
)

func TestWithPluginsFallback(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\nssl-ca = /etc/mysql/ca.pem\nssl-cert = /etc/mysql/crt.pem\n"))
	wrapped := WithPlugins(m, DefaultPlugins()...)

	out, err := wrapped.RunFeature("mysql.ssl")
	if err != nil || !strings.Contains(out, "have_ssl YES") {
		t.Errorf("synthesized mysql.ssl = %q, %v", out, err)
	}
	// Unknown features still error.
	if _, err := wrapped.RunFeature("nope"); !errors.Is(err, entity.ErrNoFeature) {
		t.Errorf("unknown feature err = %v", err)
	}
}

func TestNativeFeatureWins(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\nssl-ca = /a\nssl-cert = /b\n"))
	m.SetFeature("mysql.ssl", "have_ssl DISABLED (live answer)\n")
	wrapped := WithPlugins(m, DefaultPlugins()...)
	out, err := wrapped.RunFeature("mysql.ssl")
	if err != nil || !strings.Contains(out, "live answer") {
		t.Errorf("native feature overridden: %q, %v", out, err)
	}
}

func TestMySQLSSLPluginDisabledAndAbsent(t *testing.T) {
	plugin := MySQLSSLPlugin()
	noSSL := entity.NewMem("h", entity.TypeHost)
	noSSL.AddFile("/etc/mysql/my.cnf", []byte("[mysqld]\nuser = mysql\n"))
	out, err := plugin.Synthesize(noSSL)
	if err != nil || !strings.Contains(out, "DISABLED") {
		t.Errorf("no-ssl config = %q, %v", out, err)
	}
	empty := entity.NewMem("h", entity.TypeHost)
	if _, err := plugin.Synthesize(empty); !errors.Is(err, entity.ErrNoFeature) {
		t.Errorf("absent mysql = %v", err)
	}
}

func TestSysctlRuntimePlugin(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/sysctl.conf", []byte("# comment\nnet.ipv4.ip_forward = 0\n\nkernel.randomize_va_space = 2\n"))
	out, err := SysctlRuntimePlugin().Synthesize(m)
	if err != nil {
		t.Fatal(err)
	}
	want := "net.ipv4.ip_forward = 0\nkernel.randomize_va_space = 2\n"
	if out != want {
		t.Errorf("out = %q", out)
	}
	empty := entity.NewMem("h", entity.TypeHost)
	if _, err := SysctlRuntimePlugin().Synthesize(empty); !errors.Is(err, entity.ErrNoFeature) {
		t.Errorf("absent sysctl.conf = %v", err)
	}
}

func TestFeaturesUnion(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 0\n"))
	m.SetFeature("native.feature", "x")
	wrapped := WithPlugins(m, DefaultPlugins()...)
	got := wrapped.Features()
	// mysql.ssl does not apply (no MySQL config); sysctl.runtime does.
	want := []string{"native.feature", "sysctl.runtime"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("features = %v, want %v", got, want)
	}
	// Entity contract is preserved through the wrapper.
	if wrapped.Name() != "h" || wrapped.Type() != entity.TypeHost {
		t.Error("identity lost through wrapper")
	}
	if _, err := wrapped.ReadFile("/etc/sysctl.conf"); err != nil {
		t.Error(err)
	}
	if _, err := wrapped.Stat("/etc/sysctl.conf"); err != nil {
		t.Error(err)
	}
	if db, err := wrapped.Packages(); err != nil || db == nil {
		t.Error(err)
	}
	count := 0
	if err := wrapped.Walk("/etc", func(entity.FileInfo) error { count++; return nil }); err != nil || count != 1 {
		t.Errorf("walk through wrapper: %d, %v", count, err)
	}
}

func TestWithPluginsNoopForEmptyList(t *testing.T) {
	m := entity.NewMem("h", entity.TypeHost)
	if WithPlugins(m) != entity.Entity(m) {
		t.Error("empty plugin list should return the entity unchanged")
	}
}
