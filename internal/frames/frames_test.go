package frames

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

func sampleEntity() *entity.Mem {
	m := entity.NewMem("web-01", entity.TypeHost)
	m.AddFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no\nPort 22\n"),
		entity.WithMode(0o600), entity.WithOwner(0, 0),
		entity.WithModTime(time.Date(2017, 12, 11, 10, 0, 0, 0, time.UTC)))
	m.AddFile("/etc/sysctl.conf", []byte("net.ipv4.ip_forward = 0\n"))
	m.AddFile("/etc/nginx/nginx.conf", []byte("user www-data;\n"))
	m.SetPackages([]pkgdb.Package{
		{Name: "nginx", Version: "1.10.3", Architecture: "amd64", Status: "install ok installed"},
	})
	m.SetFeature("sysctl.runtime", "net.ipv4.ip_forward = 0\nkernel.kptr_restrict = 1")
	return m
}

func capture(t *testing.T, e entity.Entity, roots []string) *Frame {
	t.Helper()
	f, err := Capture(e, roots, time.Date(2017, 12, 12, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCaptureAll(t *testing.T) {
	f := capture(t, sampleEntity(), nil)
	if f.Name != "web-01" || f.EntityType != entity.TypeHost {
		t.Errorf("header = %s/%s", f.Name, f.EntityType)
	}
	if f.NumFiles() != 3 {
		t.Errorf("files = %d", f.NumFiles())
	}
	if f.NumPackages() != 1 {
		t.Errorf("packages = %d", f.NumPackages())
	}
}

func TestCaptureSelectedRoots(t *testing.T) {
	f := capture(t, sampleEntity(), []string{"/etc/ssh", "/etc/nginx", "/nonexistent"})
	if f.NumFiles() != 2 {
		t.Errorf("files = %d", f.NumFiles())
	}
}

func TestCaptureDedupsOverlappingRoots(t *testing.T) {
	f := capture(t, sampleEntity(), []string{"/etc", "/etc/ssh"})
	if f.NumFiles() != 3 {
		t.Errorf("files = %d, want 3 (no duplicates)", f.NumFiles())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	src := sampleEntity()
	f := capture(t, src, nil)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != f.Name || back.EntityType != f.EntityType {
		t.Errorf("header mismatch: %s/%s", back.Name, back.EntityType)
	}
	if !back.Captured.Equal(f.Captured) {
		t.Errorf("captured = %v, want %v", back.Captured, f.Captured)
	}

	// The materialized entity reproduces the source's observable state,
	// including its original type (a frame of a host validates as a host).
	m := back.Entity()
	if m.Type() != entity.TypeHost {
		t.Errorf("materialized type = %v", m.Type())
	}
	data, err := m.ReadFile("/etc/ssh/sshd_config")
	if err != nil || !strings.Contains(string(data), "PermitRootLogin no") {
		t.Errorf("sshd_config = %q, %v", data, err)
	}
	fi, err := m.Stat("/etc/ssh/sshd_config")
	if err != nil || fi.Perm() != 0o600 || fi.Ownership() != "0:0" {
		t.Errorf("metadata = %+v, %v", fi, err)
	}
	if !fi.ModTime.Equal(time.Date(2017, 12, 11, 10, 0, 0, 0, time.UTC)) {
		t.Errorf("mtime = %v", fi.ModTime)
	}
	db, err := m.Packages()
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := db.Get("nginx"); !ok || p.Version != "1.10.3" || p.Status != "install ok installed" {
		t.Errorf("nginx = %+v ok=%v", p, ok)
	}
	out, err := m.RunFeature("sysctl.runtime")
	if err != nil || !strings.Contains(out, "kptr_restrict") {
		t.Errorf("feature = %q, %v", out, err)
	}
}

func TestDirectoryMetadataSurvivesFrame(t *testing.T) {
	src := entity.NewMem("h", entity.TypeHost)
	src.AddDir("/etc/cron.d", entity.WithMode(0o700), entity.WithOwner(0, 0))
	src.AddFile("/etc/cron.d/backup", []byte("17 2 * * * root /usr/local/bin/backup\n"), entity.WithMode(0o600))
	frame := capture(t, src, nil)
	var buf bytes.Buffer
	if err := frame.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := back.Entity().Stat("/etc/cron.d")
	if err != nil {
		t.Fatal(err)
	}
	if !fi.IsDir() || fi.Perm() != 0o700 {
		t.Errorf("directory metadata lost: %+v", fi)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
	}{
		{"empty stream", ""},
		{"not json", "garbage\n"},
		{"missing header", `{"type":"file","path":"/a"}` + "\n"},
		{"duplicate header", `{"type":"frame","name":"a","entity_type":"host","version":1}` + "\n" +
			`{"type":"frame","name":"b","entity_type":"host","version":1}` + "\n"},
		{"bad version", `{"type":"frame","name":"a","entity_type":"host","version":99}` + "\n"},
		{"bad entity type", `{"type":"frame","name":"a","entity_type":"moon","version":1}` + "\n"},
		{"bad timestamp", `{"type":"frame","name":"a","entity_type":"host","version":1,"captured":"yesterday"}` + "\n"},
		{"unknown record", `{"type":"frame","name":"a","entity_type":"host","version":1}` + "\n" + `{"type":"wat"}` + "\n"},
		{"bad base64", `{"type":"frame","name":"a","entity_type":"host","version":1}` + "\n" +
			`{"type":"file","path":"/a","content":"!!!"}` + "\n"},
		{"bad mtime", `{"type":"frame","name":"a","entity_type":"host","version":1}` + "\n" +
			`{"type":"file","path":"/a","content":"","mtime":"then"}` + "\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tt.src))
			if err == nil {
				t.Error("Read succeeded, want error")
			}
			if !errors.Is(err, ErrBadFrame) {
				t.Errorf("error %v should wrap ErrBadFrame", err)
			}
		})
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	src := `{"type":"frame","name":"a","entity_type":"host","version":1}` + "\n\n" +
		`{"type":"package","name":"p","pkg_version":"1"}` + "\n"
	f, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPackages() != 1 {
		t.Errorf("packages = %d", f.NumPackages())
	}
}

func TestBinaryContentRoundTrip(t *testing.T) {
	m := entity.NewMem("bin", entity.TypeImage)
	binary := []byte{0, 1, 2, 255, 254, '\n', 0}
	m.AddFile("/opt/blob", binary)
	f := capture(t, m, nil)
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := back.Entity().ReadFile("/opt/blob")
	if err != nil || !bytes.Equal(data, binary) {
		t.Errorf("binary round trip = %v, %v", data, err)
	}
}
