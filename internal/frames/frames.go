// Package frames implements system configuration frames: serialized
// snapshots of an entity's configuration state that can be validated
// offline, "without requiring any local installation or remote access"
// (paper §2.2 and [24]). A frame is a JSON-lines stream: a header record
// followed by directory, file, package, and feature records.
//
// The round-trip property that makes touchless validation sound is that
// validating a frame yields the same results as validating the live entity
// it was captured from; the integration tests assert this.
package frames

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"time"

	"configvalidator/internal/entity"
	"configvalidator/internal/pkgdb"
)

// Version is the frame format version written by this package.
const Version = 1

// record is one JSON line of a frame stream.
type record struct {
	Type string `json:"type"`

	// Header fields.
	Name       string `json:"name,omitempty"`
	EntityType string `json:"entity_type,omitempty"`
	Version    int    `json:"version,omitempty"`
	Captured   string `json:"captured,omitempty"`

	// File and directory fields.
	Path    string `json:"path,omitempty"`
	Mode    uint32 `json:"mode,omitempty"`
	UID     int    `json:"uid,omitempty"`
	GID     int    `json:"gid,omitempty"`
	ModTime string `json:"mtime,omitempty"`
	Content string `json:"content,omitempty"` // base64

	// Package fields.
	PkgVersion string `json:"pkg_version,omitempty"`
	Arch       string `json:"arch,omitempty"`
	Status     string `json:"status,omitempty"`

	// Feature fields.
	Output string `json:"output,omitempty"`
}

// Frame is an in-memory snapshot of an entity.
type Frame struct {
	// Name is the captured entity's name.
	Name string
	// EntityType is the captured entity's type.
	EntityType entity.Type
	// Captured is the capture timestamp.
	Captured time.Time

	files    []fileEntry
	dirs     []dirEntry
	packages []pkgdb.Package
	features []featureEntry
}

type fileEntry struct {
	path    string
	mode    fs.FileMode
	uid     int
	gid     int
	modTime time.Time
	content []byte
}

type dirEntry struct {
	path string
	mode fs.FileMode
	uid  int
	gid  int
}

type featureEntry struct {
	name   string
	output string
}

// ErrBadFrame reports a malformed frame stream.
var ErrBadFrame = errors.New("frames: malformed frame")

// Capture snapshots an entity. Each root in roots is walked recursively and
// every file found is recorded with content and metadata; when roots is
// empty the entire entity ("/") is captured. Package and feature state are
// always captured. Missing roots are skipped — a frame of an entity without
// /etc/mysql is still a valid frame.
func Capture(e entity.Entity, roots []string, now time.Time) (*Frame, error) {
	f := &Frame{Name: e.Name(), EntityType: e.Type(), Captured: now.UTC()}
	if len(roots) == 0 {
		roots = []string{"/"}
	}
	seen := make(map[string]bool)
	for _, root := range roots {
		err := e.Walk(root, func(fi entity.FileInfo) error {
			if seen[fi.Path] {
				return nil
			}
			seen[fi.Path] = true
			if fi.IsDir() {
				f.dirs = append(f.dirs, dirEntry{path: fi.Path, mode: fi.Mode, uid: fi.UID, gid: fi.GID})
				return nil
			}
			content, err := e.ReadFile(fi.Path)
			if err != nil {
				return fmt.Errorf("read %s: %w", fi.Path, err)
			}
			f.files = append(f.files, fileEntry{
				path:    fi.Path,
				mode:    fi.Mode,
				uid:     fi.UID,
				gid:     fi.GID,
				modTime: fi.ModTime,
				content: content,
			})
			return nil
		})
		if err != nil {
			if errors.Is(err, entity.ErrNotExist) {
				continue
			}
			return nil, fmt.Errorf("walk %s: %w", root, err)
		}
	}
	db, err := e.Packages()
	if err != nil {
		return nil, fmt.Errorf("packages: %w", err)
	}
	f.packages = db.All()
	for _, name := range e.Features() {
		out, err := e.RunFeature(name)
		if err != nil {
			return nil, fmt.Errorf("feature %s: %w", name, err)
		}
		f.features = append(f.features, featureEntry{name: name, output: out})
	}
	return f, nil
}

// Write serializes the frame as JSON lines.
func (f *Frame) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := record{
		Type:       "frame",
		Name:       f.Name,
		EntityType: f.EntityType.String(),
		Version:    Version,
		Captured:   f.Captured.Format(time.RFC3339),
	}
	if err := enc.Encode(header); err != nil {
		return fmt.Errorf("write header: %w", err)
	}
	for _, d := range f.dirs {
		rec := record{Type: "dir", Path: d.path, Mode: uint32(d.mode), UID: d.uid, GID: d.gid}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write dir %s: %w", d.path, err)
		}
	}
	for _, fe := range f.files {
		rec := record{
			Type:    "file",
			Path:    fe.path,
			Mode:    uint32(fe.mode),
			UID:     fe.uid,
			GID:     fe.gid,
			Content: base64.StdEncoding.EncodeToString(fe.content),
		}
		if !fe.modTime.IsZero() {
			rec.ModTime = fe.modTime.Format(time.RFC3339Nano)
		}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write file %s: %w", fe.path, err)
		}
	}
	for _, p := range f.packages {
		rec := record{Type: "package", Name: p.Name, PkgVersion: p.Version, Arch: p.Architecture, Status: p.Status}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write package %s: %w", p.Name, err)
		}
	}
	for _, ft := range f.features {
		rec := record{Type: "feature", Name: ft.name, Output: ft.output}
		if err := enc.Encode(rec); err != nil {
			return fmt.Errorf("write feature %s: %w", ft.name, err)
		}
	}
	return nil
}

// Read parses a frame stream written by Write.
func Read(r io.Reader) (*Frame, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	f := &Frame{}
	sawHeader := false
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(line, &rec); err != nil {
			// A stream cut off mid-line (size limit, broken connection)
			// surfaces here as a partial final token; report the
			// underlying read error, not a misleading parse error.
			if rerr := scanner.Err(); rerr != nil {
				return nil, fmt.Errorf("frames: read: %w", rerr)
			}
			return nil, fmt.Errorf("%w: line %d: %v", ErrBadFrame, lineNo, err)
		}
		switch rec.Type {
		case "frame":
			if sawHeader {
				return nil, fmt.Errorf("%w: line %d: duplicate header", ErrBadFrame, lineNo)
			}
			if rec.Version != Version {
				return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, rec.Version)
			}
			typ, err := entity.ParseType(rec.EntityType)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFrame, lineNo, err)
			}
			f.Name = rec.Name
			f.EntityType = typ
			if rec.Captured != "" {
				ts, err := time.Parse(time.RFC3339, rec.Captured)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad timestamp: %v", ErrBadFrame, lineNo, err)
				}
				f.Captured = ts
			}
			sawHeader = true
		case "dir":
			if !sawHeader {
				return nil, fmt.Errorf("%w: line %d: record before header", ErrBadFrame, lineNo)
			}
			f.dirs = append(f.dirs, dirEntry{path: rec.Path, mode: fs.FileMode(rec.Mode), uid: rec.UID, gid: rec.GID})
		case "file":
			if !sawHeader {
				return nil, fmt.Errorf("%w: line %d: record before header", ErrBadFrame, lineNo)
			}
			content, err := base64.StdEncoding.DecodeString(rec.Content)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: bad content: %v", ErrBadFrame, lineNo, err)
			}
			fe := fileEntry{
				path:    rec.Path,
				mode:    fs.FileMode(rec.Mode),
				uid:     rec.UID,
				gid:     rec.GID,
				content: content,
			}
			if rec.ModTime != "" {
				ts, err := time.Parse(time.RFC3339Nano, rec.ModTime)
				if err != nil {
					return nil, fmt.Errorf("%w: line %d: bad mtime: %v", ErrBadFrame, lineNo, err)
				}
				fe.modTime = ts
			}
			f.files = append(f.files, fe)
		case "package":
			f.packages = append(f.packages, pkgdb.Package{
				Name: rec.Name, Version: rec.PkgVersion, Architecture: rec.Arch, Status: rec.Status,
			})
		case "feature":
			f.features = append(f.features, featureEntry{name: rec.Name, output: rec.Output})
		default:
			return nil, fmt.Errorf("%w: line %d: unknown record type %q", ErrBadFrame, lineNo, rec.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("frames: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("%w: missing header", ErrBadFrame)
	}
	return f, nil
}

// Entity materializes the frame as an in-memory entity that validation can
// run against exactly as it would against the live source. The entity
// keeps the captured source's type (a frame of a host validates as a
// host), which is what makes touchless validation transparent to
// entity-type-scoped rules.
func (f *Frame) Entity() *entity.Mem {
	m := entity.NewMem(f.Name, f.EntityType)
	for _, d := range f.dirs {
		m.AddDir(d.path, entity.WithMode(d.mode), entity.WithOwner(d.uid, d.gid))
	}
	for _, fe := range f.files {
		m.AddFile(fe.path, fe.content,
			entity.WithMode(fe.mode),
			entity.WithOwner(fe.uid, fe.gid),
			entity.WithModTime(fe.modTime))
	}
	m.SetPackages(f.packages)
	for _, ft := range f.features {
		m.SetFeature(ft.name, ft.output)
	}
	return m
}

// NumFiles reports how many file records the frame holds.
func (f *Frame) NumFiles() int { return len(f.files) }

// NumPackages reports how many package records the frame holds.
func (f *Frame) NumPackages() int { return len(f.packages) }
