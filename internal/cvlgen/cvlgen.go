// Package cvlgen generates baseline CVL rules from existing configuration
// files — tooling for the paper's §6 outlook that "all applications will
// ship with their configuration profiles possibly defined in CVL". Given a
// known-good configuration, it emits a golden-config profile: one rule per
// parameter pinning the current value, which a rule author then prunes and
// generalizes (e.g. relaxing exact matches to regex ranges).
package cvlgen

import (
	"fmt"
	"path"
	"strings"

	"configvalidator/internal/configtree"
	"configvalidator/internal/cvl"
	"configvalidator/internal/lens"
	"configvalidator/internal/schema"
)

// Options tune generation.
type Options struct {
	// Tags are attached to every generated rule (default ["#generated"]).
	Tags []string
	// MaxRules bounds output (0 = 200); huge configs should be pruned by
	// a human anyway.
	MaxRules int
}

// FromFile normalizes a configuration file with the registry's lens and
// generates a golden-config rule set. A nil registry uses lens.Default().
func FromFile(registry *lens.Registry, filePath string, content []byte, opts Options) ([]*cvl.Rule, error) {
	if registry == nil {
		registry = lens.Default()
	}
	if len(opts.Tags) == 0 {
		opts.Tags = []string{"#generated"}
	}
	if opts.MaxRules == 0 {
		opts.MaxRules = 200
	}
	res, err := registry.Parse(filePath, content)
	if err != nil {
		return nil, fmt.Errorf("cvlgen: %w", err)
	}
	switch res.Kind {
	case lens.KindTree:
		return fromTree(res.Tree, filePath, opts), nil
	case lens.KindSchema:
		return fromTable(res.Table, filePath, opts), nil
	default:
		return nil, fmt.Errorf("cvlgen: unsupported normalized kind %v", res.Kind)
	}
}

// fromTree emits one rule per valued leaf: the key at its section path
// must keep its current value.
func fromTree(tree *configtree.Node, filePath string, opts Options) []*cvl.Rule {
	base := path.Base(filePath)
	var out []*cvl.Rule
	var walk func(prefix string, n *configtree.Node)
	walk = func(prefix string, n *configtree.Node) {
		for _, c := range n.Children {
			if len(out) >= opts.MaxRules {
				return
			}
			if len(c.Children) > 0 {
				childPrefix := c.Label
				if prefix != "" {
					childPrefix = prefix + "/" + c.Label
				}
				walk(childPrefix, c)
				continue
			}
			if c.Value == "" {
				// Bare flags become presence checks.
				out = append(out, &cvl.Rule{
					Type:                  cvl.TypeTree,
					Name:                  c.Label,
					Description:           fmt.Sprintf("Generated: %s must be present in %s.", c.Label, base),
					ConfigPath:            []string{prefix},
					FileContext:           []string{base},
					Tags:                  opts.Tags,
					MatchedDescription:    c.Label + " is present.",
					NotPresentDescription: c.Label + " is missing.",
					Permission:            -1,
					MaxPermission:         -1,
				})
				continue
			}
			out = append(out, &cvl.Rule{
				Type:                  cvl.TypeTree,
				Name:                  c.Label,
				Description:           fmt.Sprintf("Generated: %s must keep its baseline value in %s.", c.Label, base),
				ConfigPath:            []string{prefix},
				FileContext:           []string{base},
				PreferredValue:        []string{c.Value},
				PreferredMatch:        cvl.MatchSpec{Kind: cvl.MatchExact, Quant: cvl.QuantAny},
				Tags:                  opts.Tags,
				MatchedDescription:    fmt.Sprintf("%s is %q.", c.Label, c.Value),
				NotMatchedDescription: fmt.Sprintf("%s deviates from baseline %q.", c.Label, c.Value),
				NotPresentDescription: c.Label + " is missing.",
				Permission:            -1,
				MaxPermission:         -1,
			})
		}
	}
	walk("", tree)
	return dedupeByKey(out)
}

// fromTable emits one expect_rows rule per distinct first-column value:
// the row must keep existing.
func fromTable(t *schema.Table, filePath string, opts Options) []*cvl.Rule {
	if len(t.Columns) == 0 {
		return nil
	}
	keyCol := t.Columns[0]
	seen := make(map[string]bool)
	var out []*cvl.Rule
	for _, row := range t.Rows {
		if len(out) >= opts.MaxRules {
			break
		}
		key := row[0]
		if key == "" || seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, &cvl.Rule{
			Type:                  cvl.TypeSchema,
			Name:                  "baseline_" + sanitize(key),
			Description:           fmt.Sprintf("Generated: row with %s=%q must remain in %s.", keyCol, key, path.Base(filePath)),
			QueryConstraints:      keyCol + " = ?",
			QueryConstraintsValue: []string{key},
			ExpectRows:            ">=1",
			Tags:                  opts.Tags,
			MatchedDescription:    fmt.Sprintf("%s row %q present.", keyCol, key),
			NotMatchedDescription: fmt.Sprintf("%s row %q missing.", keyCol, key),
			Permission:            -1,
			MaxPermission:         -1,
		})
	}
	return out
}

func dedupeByKey(rules []*cvl.Rule) []*cvl.Rule {
	type ident struct{ name, path string }
	seen := make(map[ident]bool, len(rules))
	out := rules[:0]
	for _, r := range rules {
		id := ident{name: r.Name, path: strings.Join(r.ConfigPath, "|")}
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, r)
	}
	return disambiguateNames(out)
}

// disambiguateNames renames rules whose names collide after dedupe. A
// rule's identity within a file is its type/name key (Rule.Key), so two
// rules with the same name at different config paths would otherwise
// shadow each other under the merge semantics. Colliding names are
// qualified with section-path segments from the right (e.g. the
// send_redirects leaves under conf/all and conf/default become
// all_send_redirects and default_send_redirects), falling back to a
// numeric suffix if the full path still collides.
func disambiguateNames(rules []*cvl.Rule) []*cvl.Rule {
	byName := make(map[string]int, len(rules))
	for _, r := range rules {
		byName[r.Name]++
	}
	used := make(map[string]bool, len(rules))
	for _, r := range rules {
		if byName[r.Name] == 1 && !used[r.Name] {
			used[r.Name] = true
			continue
		}
		name := r.Name
		var segs []string
		if len(r.ConfigPath) > 0 {
			segs = strings.Split(r.ConfigPath[0], "/")
		}
		for i := len(segs) - 1; i >= 0 && used[name]; i-- {
			if segs[i] == "" {
				continue
			}
			name = sanitize(segs[i]) + "_" + name
		}
		for i := 2; used[name]; i++ {
			name = fmt.Sprintf("%s_%d", r.Name, i)
		}
		used[name] = true
		r.Name = name
	}
	return rules
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "_")
}
