package cvlgen

import (
	"strings"
	"testing"

	"configvalidator/internal/cvl"
	"configvalidator/internal/engine"
	"configvalidator/internal/entity"
)

const goldenSSHD = "Port 22\nPermitRootLogin no\nUsePAM yes\n"

func TestGenerateFromTreeConfig(t *testing.T) {
	rules, err := FromFile(nil, "/etc/ssh/sshd_config", []byte(goldenSSHD), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	byName := map[string]*cvl.Rule{}
	for _, r := range rules {
		byName[r.Name] = r
		if !r.HasTag("#generated") {
			t.Errorf("rule %s missing tag", r.Name)
		}
	}
	prl := byName["PermitRootLogin"]
	if prl == nil || prl.PreferredValue[0] != "no" || prl.FileContext[0] != "sshd_config" {
		t.Errorf("rule = %+v", prl)
	}
}

// TestGoldenProfileValidates is the core property: a generated profile
// passes against the file it was generated from and fails against a
// drifted copy.
func TestGoldenProfileValidates(t *testing.T) {
	rules, err := FromFile(nil, "/etc/ssh/sshd_config", []byte(goldenSSHD), Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(nil)

	same := entity.NewMem("same", entity.TypeHost)
	same.AddFile("/etc/ssh/sshd_config", []byte(goldenSSHD))
	rep, err := eng.ValidateRules(same, rules, []string{"/etc/ssh"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !r.Passed() {
			t.Errorf("golden profile failed on source: %s (%s)", r.Message, r.Detail)
		}
	}

	drifted := entity.NewMem("drift", entity.TypeHost)
	drifted.AddFile("/etc/ssh/sshd_config", []byte("Port 22\nPermitRootLogin yes\nUsePAM yes\n"))
	rep, err = eng.ValidateRules(drifted, rules, []string{"/etc/ssh"})
	if err != nil {
		t.Fatal(err)
	}
	fails := rep.Counts()[engine.StatusFail]
	if fails != 1 {
		t.Errorf("drift detected %d failures, want 1", fails)
	}
}

func TestGenerateNestedSections(t *testing.T) {
	conf := "[client]\nport = 3306\n\n[mysqld]\nbind-address = 127.0.0.1\nskip-networking\n"
	rules, err := FromFile(nil, "/etc/mysql/my.cnf", []byte(conf), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var bind, flag *cvl.Rule
	for _, r := range rules {
		switch r.Name {
		case "bind-address":
			bind = r
		case "skip-networking":
			flag = r
		}
	}
	if bind == nil || bind.ConfigPath[0] != "mysqld" {
		t.Errorf("bind-address rule = %+v", bind)
	}
	if flag == nil || len(flag.PreferredValue) != 0 {
		t.Errorf("bare flag should be a presence rule: %+v", flag)
	}
}

func TestGenerateFromSchemaConfig(t *testing.T) {
	fstab := "/dev/sda1 / ext4 defaults 0 1\n/dev/sda2 /tmp ext4 nodev 0 2\n"
	rules, err := FromFile(nil, "/etc/fstab", []byte(fstab), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	for _, r := range rules {
		if r.Type != cvl.TypeSchema || r.ExpectRows != ">=1" {
			t.Errorf("rule = %+v", r)
		}
	}
	// The profile validates against its source.
	ent := entity.NewMem("h", entity.TypeHost)
	ent.AddFile("/etc/fstab", []byte(fstab))
	rep, err := engine.New(nil).ValidateRules(ent, rules, []string{"/etc/fstab"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Results {
		if !r.Passed() {
			t.Errorf("schema profile failed: %s", r.Message)
		}
	}
}

func TestGeneratedRulesFormatAndLintClean(t *testing.T) {
	rules, err := FromFile(nil, "/etc/ssh/sshd_config", []byte(goldenSSHD), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cvl.FormatRuleFile("", rules)
	if err != nil {
		t.Fatal(err)
	}
	if diags := cvl.Lint("generated.yaml", out); cvl.HasErrors(diags) {
		t.Errorf("generated rules have lint errors: %v\n%s", diags, out)
	}
}

func TestMaxRulesBound(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 50; i++ {
		b.WriteString(strings.Repeat("x", i+1))
		b.WriteString(" = v\n")
	}
	rules, err := FromFile(nil, "/etc/sysctl.conf", []byte(b.String()), Options{MaxRules: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) > 10 {
		t.Errorf("rules = %d", len(rules))
	}
}

func TestUnknownFileType(t *testing.T) {
	if _, err := FromFile(nil, "/bin/ls", []byte{0x7f, 'E', 'L', 'F'}, Options{}); err == nil {
		t.Error("binary accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize("/dev/sda1"); got != "dev_sda1" {
		t.Errorf("sanitize = %q", got)
	}
}
