//go:build !unix

package fsutil

import "os"

// LockFile is a no-op on platforms without flock semantics: single-writer
// ownership is then enforced only by operator discipline, matching the
// pre-guard behavior.
func LockFile(f *os.File) error { return nil }
