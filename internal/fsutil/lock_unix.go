//go:build unix

package fsutil

import (
	"errors"
	"os"
	"syscall"
)

// LockFile places an exclusive, non-blocking advisory lock (flock) on f.
// A file already locked by another handle — in this process or any other —
// returns ErrLocked. The lock is tied to the open file description: it is
// released by Close and, critically for crash-safety, by process death,
// so a SIGKILLed owner never leaves a stale lock behind the way a lock
// *file* would.
func LockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return nil
		}
		if errors.Is(err, syscall.EINTR) {
			continue
		}
		if errors.Is(err, syscall.EWOULDBLOCK) {
			return ErrLocked
		}
		return err
	}
}
