package fsutil

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomicCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := WriteFileAtomic(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("content = %q", got)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode().Perm() != 0o644 {
		t.Errorf("perm = %v, want 0644", fi.Mode().Perm())
	}
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "artifact.json")
	if err := os.WriteFile(path, []byte("old"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new content"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new content" {
		t.Fatalf("content = %q", got)
	}
}

// TestWriteAtomicFailureLeavesTargetUntouched is the crash-safety contract:
// a writer that fails partway must leave the previous artifact intact and
// no temp litter behind.
func TestWriteAtomicFailureLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "artifact.json")
	if err := os.WriteFile(path, []byte("previous good artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := WriteAtomic(path, 0o644, func(w io.Writer) error {
		_, _ = w.Write([]byte("half a new artif")) // torn write
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped writer error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "previous good artifact" {
		t.Fatalf("target changed after failed write: %q, %v", got, rerr)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

func TestWriteAtomicMissingDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("want error for missing parent directory")
	}
}
